(* Quickstart: the complete pipeline on a 5-line application.
 *
 *   dune exec examples/quickstart.exe
 *
 * 1. write an MPI-style program against the simulator,
 * 2. trace it with ScalaTrace (compressed RSD/PRSD trace),
 * 3. generate a coNCePTuaL benchmark from the trace,
 * 4. run the generated benchmark and compare total times. *)

open Mpisim

(* Call-site markers play the role of ScalaTrace's stack signatures:
   declare one per MPI call site. *)
let s_recv = Mpi.site ~label:"halo_recv" __POS__
let s_send = Mpi.site ~label:"halo_send" __POS__
let s_wait = Mpi.site ~label:"halo_wait" __POS__
let s_norm = Mpi.site ~label:"norm" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

(* A small iterative stencil: 1-D ring halo exchange + residual norm. *)
let app (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  for _ = 1 to 100 do
    let left = (ctx.rank + n - 1) mod n and right = (ctx.rank + 1) mod n in
    let r = Mpi.irecv ~site:s_recv ctx ~src:(Call.Rank left) ~bytes:8192 in
    let s = Mpi.isend ~site:s_send ctx ~dst:right ~bytes:8192 in
    ignore (Mpi.waitall ~site:s_wait ctx [ r; s ]);
    Mpi.compute ctx 250e-6;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx

let () =
  let nranks = 16 in

  (* trace the application *)
  let trace, original = Scalatrace.Tracer.trace_run ~nranks app in
  Printf.printf "traced %d MPI events into %d RSDs (%s of trace text)\n\n"
    (Scalatrace.Trace.event_count trace)
    (Scalatrace.Trace.rsd_count trace)
    (Util.Table.fbytes (Scalatrace.Trace.text_size trace));

  (* generate the benchmark via the unified pipeline *)
  let module P = Benchgen.Pipeline in
  let report =
    match
      P.run
        { P.default with name = Some "quickstart stencil" }
        (P.From_trace trace)
    with
    | Ok (artifact, _warnings) -> artifact.P.report
    | Error e -> failwith (P.error_to_string e)
  in
  print_endline "generated coNCePTuaL benchmark:";
  print_endline "--------------------------------";
  print_string report.text;
  print_endline "--------------------------------";

  (* the generated text is a real program: parse it back and run it *)
  let program = Conceptual.Parse.program report.text in
  let result = Conceptual.Lower.run ~nranks program in
  Printf.printf "\noriginal application: %.4f s\ngenerated benchmark:  %.4f s (%+.2f%%)\n"
    original.elapsed result.outcome.elapsed
    (100. *. (result.outcome.elapsed -. original.elapsed) /. original.elapsed)
