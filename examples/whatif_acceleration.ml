(* What-if acceleration study (paper Section 5.4, Figure 7).
 *
 *   dune exec examples/whatif_acceleration.exe
 *
 * Generate a benchmark from NPB BT, then ask: "how much faster would the
 * application run if its computation were accelerated k-fold (e.g. by
 * GPUs)?"  Because the generated benchmark mimics computation with timed
 * delays, the study is a one-line AST rewrite per point — no porting of
 * the original application required. *)

module P = Benchgen.Pipeline

let () =
  let nranks = 64 in
  let net = Mpisim.Netmodel.ethernet_cluster in
  let bt = Option.get (Apps.Registry.find "bt") in

  Printf.printf "tracing BT class C on %d ranks and generating its benchmark...\n%!" nranks;
  let report =
    match
      P.run
        { P.default with name = Some "bt"; net = Some net }
        (P.From_app { nranks; app = bt.program ~cls:Apps.Params.C () })
    with
    | Ok (artifact, _) -> artifact.P.report
    | Error e -> failwith (P.error_to_string e)
  in

  (* Calibrate the baseline to an ARC-like cluster where communication
     dominates (see EXPERIMENTS.md), then sweep the compute scale. *)
  let baseline = Conceptual.Edit.scale_compute 0.00028 report.program in
  Printf.printf "%8s  %12s  %10s\n" "compute" "total time" "speedup";
  let t100 = ref 0. in
  List.iter
    (fun pct ->
      let variant =
        Conceptual.Edit.scale_compute (float_of_int pct /. 100.) baseline
      in
      let res = Conceptual.Lower.run ~net ~nranks variant in
      if pct = 100 then t100 := res.outcome.elapsed;
      Printf.printf "%7d%%  %12s  %9.2fx\n%!" pct
        (Util.Table.fsec res.outcome.elapsed)
        (!t100 /. res.outcome.elapsed))
    [ 100; 90; 80; 70; 60; 50; 40; 30; 20; 10; 0 ];
  print_endline
    "\nNote the Amdahl ceiling: accelerating computation 3.3x (the 30% row)\n\
     buys only ~20% of total time, and beyond that the curve flattens —\n\
     the communication subsystem sets the floor."
