(* Comparing data decompositions without porting anything (paper Sec 1:
 * "examine the impact of alternative application implementations such as
 * different data decompositions (causing different communication
 * patterns)").
 *
 *   dune exec examples/decomposition_study.exe
 *
 * The same logical halo-exchange workload can be decomposed as a 1-D ring
 * (2 neighbours, long boundaries) or a 2-D grid (4 neighbours, short
 * boundaries).  We generate a benchmark from each variant and run both on
 * two candidate machines — four results, zero application ports. *)

module P = Benchgen.Pipeline

let () =
  let nranks = 16 in
  let study name =
    let app = Option.get (Apps.Registry.find name) in
    match
      P.run
        { P.default with name = Some name }
        (P.From_app { nranks; app = app.program ~cls:Apps.Params.A () })
    with
    | Ok (artifact, _) -> artifact.P.report
    | Error e -> failwith (P.error_to_string e)
  in
  let ring = study "ring" and stencil = study "stencil2d" in
  Printf.printf
    "generated benchmarks: ring (%d statements), stencil2d (%d statements)\n\n"
    ring.statements stencil.statements;
  Printf.printf "%-12s %-22s %-22s\n" "" "1-D ring decomposition" "2-D grid decomposition";
  List.iter
    (fun (mname, net) ->
      let run (r : Benchgen.report) =
        (Conceptual.Lower.run ~net ~nranks r.program).outcome.elapsed
      in
      Printf.printf "%-12s %-22s %-22s\n" mname
        (Util.Table.fsec (run ring))
        (Util.Table.fsec (run stencil)))
    [ ("BG/L-like", Mpisim.Netmodel.bluegene_l);
      ("Ethernet", Mpisim.Netmodel.ethernet_cluster) ];
  print_endline
    "\nThe 2-D decomposition moves the same volume in four messages that are\n\
     a quarter the size, so its advantage shrinks as latency grows (the\n\
     Ethernet column closes much of the gap the torus shows) — exactly the\n\
     decomposition trade-off the paper proposes exploring on generated\n\
     benchmarks before touching the application."
