(* Releasing a performance benchmark for a proprietary code.
 *
 *   dune exec examples/proprietary_release.exe
 *
 * The scenario from the paper's introduction: a lab owns an
 * export-controlled application (here, the Sweep3D transport kernel
 * stands in for it) and wants a vendor to quote performance on new
 * hardware WITHOUT seeing the source.  The lab generates a benchmark,
 * ships the .ncptl text, and the vendor — who has only that text — runs
 * it on their machine model. *)

module P = Benchgen.Pipeline

let () =
  let nranks = 16 in

  (* ------------- the lab side ------------- *)
  let sweep = Option.get (Apps.Registry.find "sweep3d") in
  let report, original =
    match
      P.run
        { P.default with name = Some "sweep3d" }
        (P.From_app { nranks; app = sweep.program ~cls:Apps.Params.W () })
    with
    | Ok (artifact, _) ->
        (artifact.P.report, Option.get artifact.P.trace_outcome)
    | Error e -> failwith (P.error_to_string e)
  in
  let shipped_text = report.text in
  Printf.printf
    "lab: traced the classified code (%.2f virtual s on the production\n\
     machine) and generated a %d-statement benchmark; %d bytes of plain\n\
     text leave the building — no source, no numerics, no data.\n\n"
    original.elapsed report.statements (String.length shipped_text);

  (* the shipped artifact is human-readable; show a slice *)
  print_endline "first lines of the shipped benchmark:";
  String.split_on_char '\n' shipped_text
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> print_endline ("  | " ^ l));
  print_endline "  | ...";

  (* ------------- the vendor side ------------- *)
  (* The vendor has only [shipped_text].  They parse it and evaluate the
     candidate machines they are quoting. *)
  let program = Conceptual.Parse.program shipped_text in
  let quote name net =
    let res = Conceptual.Lower.run ~net ~nranks program in
    Printf.printf "vendor: on %-18s the workload takes %s\n" name
      (Util.Table.fsec res.outcome.elapsed)
  in
  print_newline ();
  quote "a BG/L-like torus" Mpisim.Netmodel.bluegene_l;
  quote "an Ethernet cluster" Mpisim.Netmodel.ethernet_cluster;

  (* ------------- fidelity check (normally only the lab can do this) --- *)
  let res = Conceptual.Lower.run ~nranks program in
  Printf.printf
    "\nfidelity: generated benchmark reproduces the original run within %+.2f%%\n"
    (100. *. (res.outcome.elapsed -. original.elapsed) /. original.elapsed)
