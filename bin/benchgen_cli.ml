(* Command-line front end for the benchmark generator.

     benchgen list
     benchgen trace    lu  -n 16 -c W          # show the compressed trace
     benchgen generate lu  -n 16 -c W -o lu.ncptl
     benchgen run      lu.ncptl -n 16 --net ethernet --compute-scale 0.5
     benchgen compare  lu  -n 16 -c W          # original vs generated timing *)

open Cmdliner
module Pipeline = Benchgen.Pipeline

(* ------------------------------------------------------------------ *)
(* Failure classes -> exit codes.  Every expected failure prints a
   diagnostic on stderr and exits with a distinct non-zero code instead
   of an uncaught-exception backtrace. *)

let exit_invalid = 2 (* out-of-range option values *)
let exit_potential_deadlock = 3 (* input application can hang (Fig. 5) *)
let exit_align = 4 (* collective misuse in the trace *)
let exit_trace_format = 5 (* unparseable trace file *)
let exit_deadlock = 6 (* simulated run deadlocked *)
let exit_stalled = 7 (* watchdog budget / retransmission budget hit *)
let exit_mpi = 8 (* MPI semantic error during simulation *)
let exit_io = 9 (* file-system failure *)
let exit_codegen = 10 (* generated/benchmark code failed to parse or lower *)
let exit_fuzz_violation = 11 (* fuzz campaign found a fidelity violation *)
let exit_unrecoverable = 12 (* damaged trace kept nothing usable *)
let exit_serve = 13 (* serve mode could not start (socket bind/setup) *)

let fail code msg =
  Printf.eprintf "benchgen: %s\n%!" msg;
  exit code

let code_of_gen_error = function
  | Benchgen.E_potential_deadlock _ -> exit_potential_deadlock
  | Benchgen.E_align _ -> exit_align
  | Benchgen.E_wildcard _ -> exit_mpi
  | Benchgen.E_trace_format _ -> exit_trace_format
  | Benchgen.E_io _ -> exit_io
  | Benchgen.E_codegen _ -> exit_codegen
  | Benchgen.E_unrecoverable_trace _ -> exit_unrecoverable

let guarded f =
  try f () with
  | Invalid_argument msg -> fail exit_invalid msg
  | Benchgen.Wildcard.Potential_deadlock msg ->
      fail exit_potential_deadlock ("potential deadlock: " ^ msg)
  | Benchgen.Align.Align_error msg ->
      fail exit_align ("collective alignment failed: " ^ msg)
  | Benchgen.Wildcard.Wildcard_error msg ->
      fail exit_mpi ("wildcard resolution failed: " ^ msg)
  | Scalatrace.Trace_io.Format_error msg ->
      fail exit_trace_format ("malformed trace: " ^ msg)
  | Mpisim.Engine.Deadlock msg -> fail exit_deadlock msg
  | Mpisim.Engine.Stalled msg -> fail exit_stalled msg
  | Mpisim.Engine.Mpi_error msg -> fail exit_mpi ("MPI error: " ^ msg)
  | Replay.Replay_error msg -> fail exit_mpi ("replay error: " ^ msg)
  (* Benchmark-code failures (unparseable or unlowerable .ncptl) are a
     distinct failure class from MPI semantic errors in a simulated run. *)
  | Conceptual.Parse.Parse_error msg -> fail exit_codegen ("parse error: " ^ msg)
  | Conceptual.Lower.Lower_error msg ->
      fail exit_codegen ("lowering error: " ^ msg)
  | Sys_error msg -> fail exit_io msg

let warn_all warnings =
  List.iter
    (fun w -> Printf.eprintf "benchgen: warning: %s\n%!" (Benchgen.warning_to_string w))
    warnings

(* ------------------------------------------------------------------ *)
(* Fault-injection and watchdog options, shared by the simulating
   subcommands. *)

type sim_opts = {
  fault : Mpisim.Fault.t option;
  max_events : int option;
  max_virtual_time : float option;
}

let sim_term =
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:
            "Enable deterministic fault injection seeded with $(docv); all \
             perturbations are reproducible functions of the seed.")
  in
  let drop_prob =
    Arg.(
      value
      & opt float 0.
      & info [ "drop-prob" ] ~docv:"P"
          ~doc:
            "Drop each transmission attempt with probability $(docv) (in \
             [0,1)); the engine retransmits with exponential backoff.")
  in
  let jitter =
    Arg.(
      value
      & opt float 0.
      & info [ "jitter" ] ~docv:"USEC"
          ~doc:"Mean extra wire latency per transfer, microseconds (exponential).")
  in
  let os_noise =
    Arg.(
      value
      & opt float 0.
      & info [ "os-noise" ] ~docv:"FRAC"
          ~doc:"Relative stddev of multiplicative compute jitter (OS noise).")
  in
  let max_retries =
    Arg.(
      value
      & opt int 8
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Retransmissions per message before declaring the run stalled.")
  in
  let max_events =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-events" ] ~docv:"N"
          ~doc:"Watchdog: abort with a stall diagnostic after $(docv) events.")
  in
  let max_time =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-time" ] ~docv:"SECONDS"
          ~doc:"Watchdog: abort once virtual time exceeds $(docv) seconds.")
  in
  let make seed drop jitter noise retries max_events max_virtual_time =
    let fault =
      if seed = None && drop = 0. && jitter = 0. && noise = 0. then None
      else
        Some
          (guarded (fun () ->
               Mpisim.Fault.make
                 ~seed:(Option.value ~default:1 seed)
                 ~drop_prob:drop ~jitter_mean:(jitter *. 1e-6) ~os_noise:noise
                 ~max_retries:retries ()))
    in
    { fault; max_events; max_virtual_time }
  in
  Term.(
    const make $ fault_seed $ drop_prob $ jitter $ os_noise $ max_retries
    $ max_events $ max_time)

(* ------------------------------------------------------------------ *)
(* Observability options: record pipeline/engine activity to a Chrome
   trace-event file (Perfetto-loadable) and/or dump the run's metrics
   registry as JSONL. *)

type obs_opts = { trace_out : string option; metrics_out : string option }

let obs_term =
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record pipeline-stage spans and engine samples to $(docv) as \
             Chrome trace-event JSON (load in Perfetto or chrome://tracing). \
             Timestamps are deterministic; same-seed runs produce identical \
             files.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Dump the run's metrics registry (counters, gauges, histograms) \
             to $(docv) as JSONL, one instrument per line.")
  in
  Term.(
    const (fun trace_out metrics_out -> { trace_out; metrics_out })
    $ trace_out $ metrics_out)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* The sink to run the pipeline with, plus a finisher that writes the
   requested artifacts once the run's metrics are known. *)
let obs_setup (o : obs_opts) =
  let recorder =
    match o.trace_out with
    | None -> None
    | Some _ -> Some (Obs.Exporter.recorder ())
  in
  let sink =
    match recorder with None -> Obs.Sink.nil | Some r -> Obs.Exporter.sink r
  in
  let finish (metrics : Obs.Metrics.t option) =
    (match (recorder, o.trace_out) with
    | Some r, Some path ->
        write_file path (Obs.Exporter.to_chrome_string r);
        Printf.printf "wrote %s (%d trace events)\n" path
          (Obs.Exporter.event_count r)
    | _ -> ());
    match (o.metrics_out, metrics) with
    | Some path, Some m ->
        write_file path (Obs.Metrics.to_jsonl m);
        Printf.printf "wrote %s\n" path
    | Some path, None ->
        write_file path "";
        Printf.printf "wrote %s (no metrics collected)\n" path
    | None, _ -> ()
  in
  (sink, finish)

let fault_counters (o : Mpisim.Engine.outcome) = function
  | None -> ()
  | Some _ ->
      Printf.printf "faults: dropped=%d retries=%d timeouts=%d\n" o.dropped
        o.retries o.timeouts

let net_conv =
  let parse = function
    | "bgl" | "bluegene" | "bluegene_l" -> Ok Mpisim.Netmodel.bluegene_l
    | "eth" | "ethernet" | "ethernet_cluster" -> Ok Mpisim.Netmodel.ethernet_cluster
    | s -> Error (`Msg (Printf.sprintf "unknown network model %S (bgl|ethernet)" s))
  in
  let print ppf n = Format.fprintf ppf "%a" Mpisim.Netmodel.pp n in
  Arg.conv (parse, print)

let cls_conv =
  let parse s =
    match Apps.Params.cls_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown class %S (S|W|A|B|C)" s))
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Apps.Params.cls_to_string c))

let nranks_arg =
  Arg.(value & opt int 16 & info [ "n"; "nranks" ] ~docv:"N" ~doc:"Number of MPI ranks.")

let cls_arg =
  Arg.(
    value
    & opt cls_conv Apps.Params.W
    & info [ "c"; "class" ] ~docv:"CLS" ~doc:"Problem class (S, W, A, B, C).")

let net_arg =
  Arg.(
    value
    & opt net_conv Mpisim.Netmodel.bluegene_l
    & info [ "net" ] ~docv:"MODEL" ~doc:"Network model: bgl or ethernet.")

(* --coll-alg is parsed in the run function (not an Arg.conv) so an
   unknown name exits with the documented invalid-option code 2, like
   --defect and the other typed-value options. *)
let coll_alg_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "coll-alg" ] ~docv:"ALG"
        ~doc:
          "Collective algorithm for simulator runs: $(b,monolithic) (the \
           analytic reference model, the default), $(b,ring), \
           $(b,recursive-doubling), $(b,binomial), $(b,rabenseifner), or \
           $(b,auto) (pick per operation, payload, and communicator size). \
           See `benchgen coll-algs`.")

let parse_coll_alg : string option -> Mpisim.Coll_alg.t = function
  | None -> `Monolithic
  | Some s -> (
      match Mpisim.Coll_alg.of_string s with
      | Ok a -> a
      | Error m -> fail exit_invalid m)

let app_arg =
  let apps = List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) apps))) None
    & info [] ~docv:"APP" ~doc:"Application name (see `benchgen list`).")

let resolve_app name wanted =
  let app = Option.get (Apps.Registry.find name) in
  let nranks = Apps.Registry.fit_nranks app ~wanted in
  if nranks <> wanted then
    Printf.eprintf "note: %s does not support %d ranks; using %d\n%!" name wanted nranks;
  (app, nranks)

let list_cmd =
  let doc = "List the traceable applications." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (a : Apps.Registry.app) -> Printf.printf "%-8s %s\n" a.name a.description)
            Apps.Registry.all)
      $ const ())

let coll_algs_cmd =
  let doc = "List the available collective algorithm strategies." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Every strategy accepted by $(b,--coll-alg).  A strategy that does \
         not apply to an operation or communicator size (e.g. \
         recursive-doubling on a non-power-of-two communicator) falls back \
         to $(b,monolithic) for that collective; strategy choice affects \
         timing only, never semantics.";
    ]
  in
  Cmd.v (Cmd.info "coll-algs" ~doc ~man)
    Term.(
      const (fun () ->
          List.iter
            (fun a ->
              Printf.printf "%-19s %s\n" (Mpisim.Coll_alg.name a)
                (Mpisim.Coll_alg.describe a))
            Mpisim.Coll_alg.all)
      $ const ())

let trace_cmd =
  let doc = "Trace an application; print the trace or save it to a file." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Save the trace to $(docv).")
  in
  let run name wanted cls net out sim =
    guarded @@ fun () ->
    let app, nranks = resolve_app name wanted in
    let trace, outcome =
      Scalatrace.Tracer.trace_run ~net ?fault:sim.fault
        ?max_events:sim.max_events ?max_virtual_time:sim.max_virtual_time
        ~nranks (app.program ~cls ())
    in
    (match out with
    | Some path ->
        Scalatrace.Trace_io.save trace ~path;
        Printf.printf "wrote %s\n" path
    | None -> Format.printf "%a@." Scalatrace.Trace.pp trace);
    Printf.printf
      "run: %.3f virtual seconds; trace: %d RSDs for %d MPI events (%s serialized)\n"
      outcome.elapsed (Scalatrace.Trace.rsd_count trace)
      (Scalatrace.Trace.event_count trace)
      (Util.Table.fbytes (Scalatrace.Trace.text_size trace));
    fault_counters outcome sim.fault
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ app_arg $ nranks_arg $ cls_arg $ net_arg $ out_arg $ sim_term)

(* Shared --recovery flag: how much trace damage the pipeline tolerates.
   [generate-from-trace] defaults to strict; [salvage] is tolerant by
   definition, so there strict is the opt-in. *)
let recovery_arg default =
  let recovery_conv =
    Arg.conv
      ( (fun s ->
          Result.map_error (fun m -> `Msg m) (Pipeline.recovery_of_string s)),
        fun ppf r -> Format.pp_print_string ppf (Pipeline.recovery_to_string r)
      )
  in
  Arg.(
    value
    & opt recovery_conv default
    & info [ "recovery" ] ~docv:"MODE"
        ~doc:
          "Damage tolerance for the input trace: $(b,strict) (any corruption \
           is an error), $(b,salvage) (load what survives, refuse if it \
           cannot be aligned), or $(b,best-effort) (additionally truncate to \
           the last consistent collective frontier).")

let generate_from_trace_cmd =
  let doc = "Generate a coNCePTuaL benchmark from a saved trace file." in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let run file out recovery =
    guarded @@ fun () ->
    match
      Pipeline.run { Pipeline.default with recovery } (Pipeline.From_file file)
    with
    | Error e -> fail (code_of_gen_error e) (Benchgen.error_to_string e)
    | Ok (artifact, warnings) -> (
        warn_all warnings;
        let report = artifact.Pipeline.report in
        match out with
        | Some path ->
            write_file path report.text;
            Printf.printf "wrote %s (%d statements)\n" path report.statements
        | None -> print_string report.text)
  in
  Cmd.v
    (Cmd.info "generate-from-trace" ~doc)
    Term.(const run $ file_arg $ out_arg $ recovery_arg `Strict)

let salvage_cmd =
  let doc = "Inspect and recover a damaged trace file." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Loads $(i,TRACE) with the tolerant salvage loader: damaged frames \
         are skipped, each rank stream is cut back to its longest \
         well-formed prefix, and a recovery report (frames dropped, ranks \
         missing, events lost per rank) is printed.  With $(b,-o) the \
         recovered trace is re-saved as a clean framed (v2) file.  Exit \
         status is 12 when nothing usable survived, or when \
         $(b,--recovery=strict) and the file shows any damage.";
    ]
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Re-save the recovered trace to $(docv).")
  in
  let run file out recovery =
    guarded @@ fun () ->
    match Scalatrace.Salvage.load ~path:file with
    | Error msg -> fail exit_unrecoverable (file ^ ": unrecoverable: " ^ msg)
    | Ok (trace, report) ->
        print_string (Scalatrace.Salvage.report_to_string report);
        if recovery = `Strict && Scalatrace.Salvage.is_degraded report then
          fail exit_unrecoverable
            (file ^ ": trace is damaged and --recovery=strict was requested");
        (match out with
        | Some path ->
            Scalatrace.Trace_io.save ~path trace;
            Printf.printf "wrote %s (%d events, %d ranks)\n" path
              (Scalatrace.Trace.event_count trace)
              (Scalatrace.Trace.nranks trace)
        | None -> ())
  in
  Cmd.v (Cmd.info "salvage" ~doc ~man)
    Term.(const run $ file_arg $ out_arg $ recovery_arg `Salvage)

let replay_cmd =
  let doc = "Replay a saved trace on the simulator (ScalaReplay)." in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let run file net sim =
    guarded @@ fun () ->
    let trace = Scalatrace.Trace_io.load ~path:file in
    let r =
      Replay.run ~net ?fault:sim.fault ?max_events:sim.max_events
        ?max_virtual_time:sim.max_virtual_time trace
    in
    Printf.printf "replayed %d MPI events in %.6f virtual seconds\n"
      (Scalatrace.Trace.event_count trace) r.outcome.elapsed;
    fault_counters r.outcome sim.fault
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ net_arg $ sim_term)

let generate_cmd =
  let doc = "Generate a benchmark (coNCePTuaL or C+MPI) from a trace." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let lang_arg =
    Arg.(
      value
      & opt (enum [ ("conceptual", `Conceptual); ("c", `C) ]) `Conceptual
      & info [ "lang" ] ~docv:"LANG" ~doc:"Target language: conceptual or c.")
  in
  let run name wanted cls net out lang coll sim obs =
    guarded @@ fun () ->
    let app, nranks = resolve_app name wanted in
    let sink, finish = obs_setup obs in
    let cfg =
      {
        Pipeline.default with
        name = Some name;
        net = Some net;
        fault = sim.fault;
        max_events = sim.max_events;
        max_virtual_time = sim.max_virtual_time;
        obs = sink;
        coll_alg = parse_coll_alg coll;
      }
    in
    match
      Pipeline.run cfg (Pipeline.From_app { nranks; app = app.program ~cls () })
    with
    | Error e -> fail (code_of_gen_error e) (Benchgen.error_to_string e)
    | Ok (artifact, warnings) ->
        warn_all warnings;
        let report = artifact.Pipeline.report in
        let text =
          match lang with
          | `Conceptual -> report.text
          | `C ->
              (* the C backend consumes the already-rewritten trace *)
              Benchgen.Cgen.program ~name artifact.Pipeline.resolved_trace
        in
        (match out with
        | Some path ->
            write_file path text;
            Printf.printf "wrote %s (%d statements%s%s)\n" path report.statements
              (if report.aligned then "; collectives aligned" else "")
              (if report.resolved then "; wildcards resolved" else "")
        | None -> print_string text);
        finish (Some artifact.Pipeline.metrics)
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const run $ app_arg $ nranks_arg $ cls_arg $ net_arg $ out_arg $ lang_arg
      $ coll_alg_arg $ sim_term $ obs_term)

let run_cmd =
  let doc = "Execute a .ncptl benchmark on the simulator." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Benchmark source.")
  in
  let scale_arg =
    Arg.(
      value
      & opt float 1.0
      & info [ "compute-scale" ] ~docv:"F"
          ~doc:"Multiply all COMPUTE durations by $(docv) (what-if studies).")
  in
  let run file wanted net scale sim =
    guarded @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    let program = Conceptual.Parse.program text in
    let program =
      if scale = 1.0 then program else Conceptual.Edit.scale_compute scale program
    in
    let res =
      Conceptual.Lower.run ~net ?fault:sim.fault ?max_events:sim.max_events
        ?max_virtual_time:sim.max_virtual_time ~nranks:wanted program
    in
    Printf.printf "total time: %.6f s  (%d messages, %s)\n" res.outcome.elapsed
      res.outcome.messages
      (Util.Table.fbytes res.outcome.p2p_bytes);
    fault_counters res.outcome sim.fault;
    List.iter
      (fun (label, vals) ->
        Printf.printf "log %S:" label;
        List.iter (fun (r, v) -> Printf.printf " [%d]=%.1fus" r v) vals;
        print_newline ())
      res.logs
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ nranks_arg $ net_arg $ scale_arg $ sim_term)

let stats_cmd =
  let doc = "Communication statistics of an application (or trace file)." in
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Analyze a saved trace instead of tracing APP.")
  in
  let app_opt =
    let apps = List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all in
    Arg.(
      value
      & pos 0 (some (enum (List.map (fun n -> (n, n)) apps))) None
      & info [] ~docv:"APP" ~doc:"Application name (omit when using --trace).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Additionally dump the statistics as a JSONL metrics file \
             (per-operation call/byte counters plus trace-shape gauges).")
  in
  let run app_name wanted cls net file metrics_out =
    guarded @@ fun () ->
    let trace =
      match (file, app_name) with
      | Some path, _ -> Scalatrace.Trace_io.load ~path
      | None, Some name ->
          let app, nranks = resolve_app name wanted in
          fst (Scalatrace.Tracer.trace_run ~net ~nranks (app.program ~cls ()))
      | None, None ->
          prerr_endline "either APP or --trace FILE is required";
          exit 1
    in
    let op_totals = Scalatrace.Analysis.op_totals trace in
    Printf.printf "ranks: %d; RSDs: %d; MPI events: %d; total compute: %s\n\n"
      (Scalatrace.Trace.nranks trace)
      (Scalatrace.Trace.rsd_count trace)
      (Scalatrace.Trace.event_count trace)
      (Util.Table.fsec (Scalatrace.Analysis.total_compute trace));
    List.iter
      (fun (name, calls, bytes) ->
        Printf.printf "%-20s %10d calls %14s\n" name calls (Util.Table.fbytes bytes))
      op_totals;
    print_newline ();
    if Scalatrace.Trace.nranks trace <= 32 then
      print_string
        (Scalatrace.Analysis.matrix_to_string (Scalatrace.Analysis.comm_matrix trace))
    else print_endline "(communication matrix omitted for > 32 ranks)";
    match metrics_out with
    | None -> ()
    | Some path ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.set m "trace.nranks"
          (float_of_int (Scalatrace.Trace.nranks trace));
        Obs.Metrics.set m "trace.rsds"
          (float_of_int (Scalatrace.Trace.rsd_count trace));
        Obs.Metrics.set m "trace.events"
          (float_of_int (Scalatrace.Trace.event_count trace));
        Obs.Metrics.set m "trace.total_compute_s"
          (Scalatrace.Analysis.total_compute trace);
        List.iter
          (fun (name, calls, bytes) ->
            let labels = [ ("op", name) ] in
            Obs.Metrics.inc m ~labels ~by:calls "trace.calls";
            Obs.Metrics.inc m ~labels ~by:bytes "trace.bytes")
          op_totals;
        write_file path (Obs.Metrics.to_jsonl m);
        Printf.printf "wrote %s\n" path
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const run $ app_opt $ nranks_arg $ cls_arg $ net_arg $ file_arg
      $ metrics_arg)

let compare_cmd =
  let doc = "Trace, generate, and compare original vs generated benchmark." in
  let noise_arg =
    Arg.(
      value
      & opt int 0
      & info [ "validate-under-noise" ] ~docv:"TRIALS"
          ~doc:
            "Additionally re-run both programs under $(docv) perturbed \
             network/fault scenarios and report the timing-error \
             distribution (0 = off).")
  in
  let run name wanted cls net trials coll sim obs =
    guarded @@ fun () ->
    let app, nranks = resolve_app name wanted in
    let sink, finish = obs_setup obs in
    let cfg =
      {
        Pipeline.default with
        name = Some name;
        net = Some net;
        fault = sim.fault;
        max_events = sim.max_events;
        max_virtual_time = sim.max_virtual_time;
        obs = sink;
        coll_alg = parse_coll_alg coll;
      }
    in
    let artifact, warnings =
      match
        Pipeline.run cfg
          (Pipeline.From_app { nranks; app = app.program ~cls () })
      with
      | Error e -> fail (code_of_gen_error e) (Benchgen.error_to_string e)
      | Ok v -> v
    in
    warn_all warnings;
    let report = artifact.Pipeline.report in
    let fid = Pipeline.validate cfg ~nranks (app.program ~cls ()) artifact in
    Printf.printf "original:  %.6f s\ngenerated: %.6f s\nerror:     %+.2f%%\n"
      fid.Pipeline.f_original.elapsed fid.Pipeline.f_generated.elapsed
      fid.Pipeline.f_error_pct;
    Printf.printf "passes:    align=%b wildcard=%b; %d statements from %d RSDs\n"
      report.aligned report.resolved report.statements report.final_rsds;
    fault_counters fid.Pipeline.f_generated sim.fault;
    (match fid.Pipeline.f_mpip_diff with
    | [] -> print_endline "mpiP:      identical per-operation statistics"
    | diffs ->
        print_endline
          "mpiP differences (Table 1 substitutions and AWAIT rewrites):";
        List.iter (fun d -> print_endline ("  " ^ d)) diffs);
    finish (Some artifact.Pipeline.metrics);
    if trials > 0 then begin
      let nr =
        Benchgen.validate_under_noise ~net ~trials ?fault:sim.fault ~nranks
          (app.program ~cls ()) report
      in
      Printf.printf "\nfidelity under noise (%d perturbed trials):\n" trials;
      Printf.printf "  clean baseline error: %+.2f%%\n" nr.nr_baseline_error_pct;
      List.iter
        (fun (s : Benchgen.noise_sample) ->
          Printf.printf
            "  seed=%-4d latency x%.2f bandwidth x%.2f  original %.6fs  \
             generated %.6fs  error %+.2f%%\n"
            s.ns_seed s.ns_latency_factor s.ns_bandwidth_factor s.ns_original
            s.ns_generated s.ns_error_pct)
        nr.nr_samples;
      Printf.printf
        "  mean |error| %.2f%%   max |error| %.2f%%   stddev %.2f%%\n"
        nr.nr_mean_abs_error_pct nr.nr_max_abs_error_pct nr.nr_stddev_error_pct
    end
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(
      const run $ app_arg $ nranks_arg $ cls_arg $ net_arg $ noise_arg
      $ coll_alg_arg $ sim_term $ obs_term)

let extrapolate_cmd =
  let doc =
    "Extrapolate traces from small rank counts and generate a benchmark for \
     a larger machine (paper Sec 6 / ScalaExtrap)."
  in
  let from_arg =
    Arg.(
      value
      & opt (list int) [ 4; 8; 16 ]
      & info [ "from" ] ~docv:"P1,P2,.." ~doc:"Rank counts to trace (>= 2).")
  in
  let target_arg =
    Arg.(
      value & opt int 64 & info [ "target" ] ~docv:"P" ~doc:"Target rank count.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let run name cls net froms target out =
    guarded @@ fun () ->
    let app = Option.get (Apps.Registry.find name) in
    let inputs =
      List.map
        (fun p ->
          let p = Apps.Registry.fit_nranks app ~wanted:p in
          fst (Scalatrace.Tracer.trace_run ~net ~nranks:p (app.program ~cls ())))
        froms
    in
    match Benchgen.Extrap.extrapolate inputs ~target with
    | exception Benchgen.Extrap.Extrap_error msg ->
        Printf.eprintf "cannot extrapolate %s: %s\n" name msg;
        exit 1
    | trace -> (
        let cfg =
          {
            Pipeline.default with
            name = Some (Printf.sprintf "%s (extrapolated to %d)" name target);
          }
        in
        let report =
          match Pipeline.run cfg (Pipeline.From_trace trace) with
          | Error e -> fail (code_of_gen_error e) (Benchgen.error_to_string e)
          | Ok (artifact, warnings) ->
              warn_all warnings;
              artifact.Pipeline.report
        in
        match out with
        | Some path ->
            write_file path report.text;
            Printf.printf "wrote %s (%d statements for %d tasks)\n" path
              report.statements target
        | None -> print_string report.text)
  in
  Cmd.v (Cmd.info "extrapolate" ~doc)
    Term.(const run $ app_arg $ cls_arg $ net_arg $ from_arg $ target_arg $ out_arg)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: random SPMD programs through the full pipeline, \
     checked against a semantic oracle."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Draws deadlock-free random programs (collectives from distinct call \
         sites, ANY_SOURCE/any-tag receives with unique matchings, split \
         communicators, every Table 1 collective), runs each through the \
         pipeline, and compares the original run, the resolved trace's \
         replay, and the generated benchmark on per-channel message \
         counts/bytes/order and collective participant sets.  Violations \
         are minimized by a deterministic shrinker and written to --out as \
         replayable .prog files.  Exit status is 11 when any violation was \
         found.";
    ]
  in
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")
  in
  let seed_start_arg =
    Arg.(
      value & opt int 1
      & info [ "seed-start" ] ~docv:"SEED" ~doc:"First seed (inclusive).")
  in
  let defect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "defect" ] ~docv:"DEFECT"
          ~doc:
            "Deliberately break the pipeline under test (self-test of the \
             oracle): skip-wildcard, scale-bytes[:K], or drop-tail.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write minimized counterexamples to $(docv)/cx-<seed>.prog (plus \
             a latest.prog alias).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:
            "Stop starting new cases (and interrupt shrinking) after $(docv) \
             seconds of wall-clock time.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Instead of a campaign, re-check one saved .prog file (a \
             counterexample or corpus entry).  A defect recorded in the file \
             is honored unless --defect overrides it.")
  in
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("differential", `Differential);
               ("neighbor", `Neighbor);
               ("corruption", `Corruption);
               ("serve", `Serve);
               ("coll", `Coll);
             ])
          `Differential
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Campaign kind: $(b,differential) (random programs vs a semantic \
             oracle, the default), $(b,neighbor) (the differential campaign \
             with half the phase draws biased to sparse neighborhood \
             collectives — random and stencil topologies over partial \
             participant sets), $(b,corruption) (seeded damage to framed \
             trace files, checking that every outcome is typed and that \
             best-effort recovery still yields replayable benchmarks), \
             $(b,serve) (seeded scenarios of clean/corrupt/hanging/crashing/\
             oversized jobs against the serve-mode supervisor, checking typed \
             responses only, no lost jobs, bounded queue, clean drain, and \
             same-seed byte-identical transcripts), or $(b,coll) (every \
             collective algorithm schedule vs the monolithic reference: the \
             whole app registry plus seeded random programs, checking \
             identical communication and exactly one completion event per \
             logical collective).")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Serve mode only: scenarios drive a simulated worker pool of \
             $(docv) persistent workers (crashing/hanging jobs across \
             workers, worker-kill injection, restart backoff, breaker trips, \
             poison-job quarantine).  1 (the default) keeps the single-worker \
             supervisor scenarios.")
  in
  let parse_defect s =
    match Pipeline.defect_of_string s with
    | Ok d -> d
    | Error m -> fail exit_invalid m
  in
  let run seeds seed_start defect out budget replay mode coll workers obs =
    guarded @@ fun () ->
    if workers < 1 then fail exit_invalid "--workers must be >= 1";
    let defect = Option.map parse_defect defect in
    let coll_alg = parse_coll_alg coll in
    let sink, finish = obs_setup obs in
    match (mode, replay) with
    | `Coll, _ ->
        let cfg =
          {
            Check.Collfuzz.default with
            seed_start;
            seeds;
            log = (fun m -> Printf.eprintf "benchgen: fuzz: %s\n%!" m);
          }
        in
        let s = Check.Collfuzz.run cfg in
        Printf.printf
          "coll fuzz: %d cases (%d apps, %d seeds per algorithm), %d \
           violations\n"
          s.Check.Collfuzz.cases s.Check.Collfuzz.apps_checked
          s.Check.Collfuzz.gen_checked
          (List.length s.Check.Collfuzz.violations);
        List.iter
          (fun (v : Check.Collfuzz.violation) ->
            Printf.printf "  %s under %s: %s\n" v.v_case v.v_alg v.v_what)
          s.Check.Collfuzz.violations;
        finish (Some s.Check.Collfuzz.metrics);
        if s.Check.Collfuzz.violations <> [] then exit exit_fuzz_violation
    | `Serve, _ ->
        let cfg =
          {
            Check.Servefuzz.seed_start;
            seeds;
            workers;
            log = (fun m -> Printf.eprintf "benchgen: fuzz: %s\n%!" m);
          }
        in
        let s = Check.Servefuzz.run cfg in
        Printf.printf
          "serve fuzz: %d scenarios, %d jobs submitted, %d violations\n"
          s.Check.Servefuzz.cases s.Check.Servefuzz.jobs
          (List.length s.Check.Servefuzz.violations);
        List.iter
          (fun (v : Check.Servefuzz.violation) ->
            Printf.printf "  seed %d: %s\n" v.v_seed v.v_what)
          s.Check.Servefuzz.violations;
        finish (Some s.Check.Servefuzz.metrics);
        if s.Check.Servefuzz.violations <> [] then exit exit_fuzz_violation
    | `Corruption, _ ->
        let cfg =
          {
            Check.Corrupt.default with
            seed_start;
            seeds;
            log = (fun m -> Printf.eprintf "benchgen: fuzz: %s\n%!" m);
          }
        in
        let s = Check.Corrupt.run cfg in
        Printf.printf
          "corruption fuzz: %d cases (%d strict-ok, %d salvaged, %d \
           unrecoverable); %d generated, %d replayed; %d violations\n"
          s.Check.Corrupt.cases s.Check.Corrupt.strict_ok
          s.Check.Corrupt.salvaged s.Check.Corrupt.unrecoverable
          s.Check.Corrupt.generated s.Check.Corrupt.replayed
          (List.length s.Check.Corrupt.violations);
        List.iter
          (fun (v : Check.Corrupt.violation) ->
            Printf.printf "  seed %d app %s %s: %s\n" v.v_seed v.v_app
              v.v_mutation v.v_what)
          s.Check.Corrupt.violations;
        finish (Some s.Check.Corrupt.metrics);
        if s.Check.Corrupt.violations <> [] then exit exit_fuzz_violation
    | (`Differential | `Neighbor), replay -> (
    match replay with
    | Some path -> (
        match Check.Corpus.of_string (Check.Corpus.load ~path) with
        | Error m -> fail exit_invalid (path ^ ": " ^ m)
        | Ok (prog, meta) -> (
            let defect =
              match (defect, meta.Check.Corpus.defect) with
              | (Some _ as d), _ -> d
              | None, Some s -> Some (parse_defect s)
              | None, None -> None
            in
            match Check.Oracle.check ?defect ~coll_alg prog with
            | Ok st ->
                Printf.printf
                  "replay %s: PASS (%d messages on %d channels, %d \
                   collectives)\n"
                  path st.Check.Oracle.s_messages st.Check.Oracle.s_channels
                  st.Check.Oracle.s_collectives;
                finish None
            | Error v ->
                Printf.printf "replay %s: VIOLATION: %s\n" path
                  (Check.Oracle.to_string v);
                finish None;
                exit exit_fuzz_violation))
    | None ->
        let cfg =
          {
            Check.Campaign.default with
            seed_start;
            seeds;
            defect;
            out_dir = out;
            time_budget_s = budget;
            sink;
            log = (fun m -> Printf.eprintf "benchgen: fuzz: %s\n%!" m);
            coll_alg;
            gen_mode = (if mode = `Neighbor then `Neighbor else `Mixed);
          }
        in
        let s = Check.Campaign.run cfg in
        Printf.printf "fuzz: %d cases, %d passed, %d violations, %d skipped\n"
          s.Check.Campaign.cases s.Check.Campaign.passed
          (List.length s.Check.Campaign.counterexamples)
          s.Check.Campaign.skipped;
        List.iter
          (fun (cx : Check.Campaign.counterexample) ->
            Printf.printf "  seed %d: %s (%d phases%s)\n" cx.cx_seed
              (Check.Oracle.to_string cx.cx_violation)
              (List.length cx.cx_prog.Check.Gen.phases)
              (match cx.cx_path with Some p -> "; " ^ p | None -> ""))
          s.Check.Campaign.counterexamples;
        finish (Some s.Check.Campaign.metrics);
        if s.Check.Campaign.counterexamples <> [] then exit exit_fuzz_violation)
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const run $ seeds_arg $ seed_start_arg $ defect_arg $ out_arg
      $ budget_arg $ replay_arg $ mode_arg $ coll_alg_arg $ workers_arg
      $ obs_term)

let serve_cmd =
  let doc =
    "Long-lived supervised service: accept many trace$(mu)benchmark jobs over \
     a line-delimited JSON protocol."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line from stdin (and, with \
         $(b,--socket), from connections to a Unix-domain socket) and \
         answers one typed JSON response per line.  Submissions \
         ($(b,{\"op\":\"submit\",\"id\":...,\"trace\":PATH})  or \
         $(b,{...,\"app\":NAME,\"nranks\":N,\"cls\":C})) enter a bounded \
         FIFO queue; beyond $(b,--queue-depth) they are shed with a typed \
         $(b,rejected (queue_full)) response.  Each job runs the pipeline in \
         a forked, deadline-killable worker under a supervision policy: a \
         per-attempt wall-clock deadline, bounded retries with exponential \
         backoff and seeded jitter, and recovery escalation \
         (strict $(mu) salvage $(mu) best-effort) so a job whose strict \
         generation fails degrades gracefully instead of failing hard.  One \
         poisoned job — crash, hang, heap corruption — can never take down \
         the server.";
      `P
        "$(b,{\"op\":\"health\"}) reports queue depth and outcome counters; \
         $(b,{\"op\":\"drain\"}) (or end-of-input on stdin) finishes every \
         queued job and exits; $(b,{\"op\":\"shutdown\"}) cancels queued \
         jobs (one typed $(b,cancelled) response each) and exits.  Requests \
         may override the policy per job (fields $(b,deadline_s), \
         $(b,max_retries), $(b,backoff_base_s), $(b,backoff_factor), \
         $(b,backoff_max_s), $(b,jitter), $(b,escalate), $(b,recovery)).  \
         Exit status is 13 when the server cannot start (e.g. socket bind \
         failure).";
      `P
        "With $(b,--workers) > 1 jobs run concurrently on a pool of \
         persistent forked workers; with $(b,--listen) the server also \
         accepts TCP connections.  $(b,SIGTERM)/$(b,SIGINT) trigger a \
         graceful drain (finish live jobs, emit the summary, remove the \
         socket file).";
    ]
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Also listen on a Unix-domain socket at $(docv) (created at \
             start, removed at exit).")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"HOST:PORT"
          ~doc:
            "Also listen on TCP at $(docv).  HOST may be an address, a \
             hostname, or empty/$(b,*) for all interfaces; PORT 0 picks a \
             free port (the bound address is logged to stderr).")
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Size of the persistent worker pool.  Jobs are dispatched \
             concurrently to idle workers; a crashed worker is restarted \
             with exponential backoff, a crash-looping worker slot is parked \
             by a circuit breaker, and a job that crashes 2 distinct workers \
             is quarantined with a typed $(b,poisoned) error.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Cap on accepted socket/TCP connections; beyond it a client \
             gets one typed $(b,rejected (conn_limit)) response and is \
             closed.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 16
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Per-connection cap on unresolved jobs; further submissions on \
             that connection are rejected with $(b,inflight_limit) until \
             responses drain.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close a socket/TCP connection after $(docv) seconds with no \
             traffic and no unresolved jobs.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission bound: jobs beyond $(docv) queued are shed with \
             $(b,rejected (queue_full)).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Default per-attempt wall-clock deadline; an attempt that \
             exceeds it is killed ($(b,deadline_exceeded)).")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Default retries per job after its first attempt.")
  in
  let backoff_base_arg =
    Arg.(
      value & opt float 0.05
      & info [ "backoff-base" ] ~docv:"SECONDS"
          ~doc:"Delay before the first retry.")
  in
  let backoff_factor_arg =
    Arg.(
      value & opt float 2.0
      & info [ "backoff-factor" ] ~docv:"F"
          ~doc:"Backoff multiplier per further retry.")
  in
  let backoff_max_arg =
    Arg.(
      value & opt float 5.0
      & info [ "backoff-max" ] ~docv:"SECONDS"
          ~doc:"Cap on the un-jittered backoff delay.")
  in
  let jitter_arg =
    Arg.(
      value & opt float 0.25
      & info [ "jitter" ] ~docv:"FRAC"
          ~doc:
            "Backoff jitter fraction: each delay is multiplied by a seeded \
             uniform draw from [1, 1+$(docv)).")
  in
  let no_escalate_arg =
    Arg.(
      value & flag
      & info [ "no-escalate" ]
          ~doc:
            "Do not escalate the recovery level across retries (every \
             attempt runs at $(b,--recovery)).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed for backoff jitter; a fixed seed makes retry schedules \
             reproducible.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"N"
          ~doc:
            "Reject request lines longer than $(docv) bytes with a typed \
             $(b,rejected (oversized)) response.")
  in
  let run socket listen workers max_conns max_inflight idle_timeout
      queue_depth deadline retries base factor cap jitter no_escalate seed
      recovery max_bytes obs =
    guarded @@ fun () ->
    if queue_depth < 1 then fail exit_invalid "--queue-depth must be >= 1";
    if workers < 1 then fail exit_invalid "--workers must be >= 1";
    if max_conns < 1 then fail exit_invalid "--max-conns must be >= 1";
    if max_inflight < 1 then fail exit_invalid "--max-inflight must be >= 1";
    (match idle_timeout with
    | Some t when t <= 0. -> fail exit_invalid "--idle-timeout must be > 0"
    | _ -> ());
    (match deadline with
    | Some d when d <= 0. -> fail exit_invalid "--deadline must be > 0"
    | _ -> ());
    let _sink, finish = obs_setup obs in
    let policy =
      {
        Serve.Policy.deadline_s = deadline;
        max_retries = retries;
        backoff_base_s = base;
        backoff_factor = factor;
        backoff_max_s = cap;
        jitter;
        escalate = not no_escalate;
        recovery;
      }
    in
    let cfg =
      {
        Serve.Server.default with
        socket;
        listen;
        queue_limit = queue_depth;
        wpolicy = { Serve.Pool.default_wpolicy with workers };
        policy;
        seed;
        max_request_bytes = max_bytes;
        max_conns;
        max_inflight;
        idle_timeout_s = idle_timeout;
        log = (fun m -> Printf.eprintf "benchgen: serve: %s\n%!" m);
      }
    in
    match Serve.Server.run cfg with
    | Error msg -> fail exit_serve msg
    | Ok metrics -> finish (Some metrics)
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ socket_arg $ listen_arg $ workers_arg $ max_conns_arg
      $ max_inflight_arg $ idle_timeout_arg $ queue_arg $ deadline_arg
      $ retries_arg $ backoff_base_arg $ backoff_factor_arg $ backoff_max_arg
      $ jitter_arg $ no_escalate_arg $ seed_arg $ recovery_arg `Strict
      $ max_bytes_arg $ obs_term)

let () =
  let doc = "automatic generation of executable communication specifications" in
  let info = Cmd.info "benchgen" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [
          list_cmd; coll_algs_cmd; trace_cmd; generate_cmd;
          generate_from_trace_cmd; run_cmd; replay_cmd; compare_cmd;
          extrapolate_cmd; stats_cmd; fuzz_cmd; salvage_cmd; serve_cmd;
        ]))
