open Mpisim

let t name f = Alcotest.test_case name `Quick f

let fin ctx = Mpi.finalize ctx

(* two-rank helper: rank 0 runs [f0], rank 1 runs [f1] *)
let pairwise f0 f1 =
  Mpi.run ~nranks:2 (fun ctx ->
      (if ctx.rank = 0 then f0 ctx else f1 ctx);
      fin ctx)

let p2p_tests =
  [
    t "blocking send/recv delivers" (fun () ->
        let got = ref (-1) in
        let _ =
          pairwise
            (fun ctx -> Mpi.send ctx ~dst:1 ~bytes:100)
            (fun ctx ->
              let st = Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:100 in
              got := st.received_bytes)
        in
        Alcotest.(check int) "bytes" 100 !got);
    t "status reports source and tag" (fun () ->
        let src = ref (-1) and tag = ref (-1) in
        let _ =
          pairwise
            (fun ctx -> Mpi.send ~tag:42 ctx ~dst:1 ~bytes:8)
            (fun ctx ->
              let st = Mpi.recv ctx ~src:Call.Any_source ~bytes:8 in
              src := st.actual_source;
              tag := st.actual_tag)
        in
        Alcotest.(check int) "src" 0 !src;
        Alcotest.(check int) "tag" 42 !tag);
    t "tag matching filters" (fun () ->
        (* rank0 sends tag 1 then tag 2; rank1 receives tag 2 first *)
        let order = ref [] in
        let _ =
          pairwise
            (fun ctx ->
              Mpi.send ~tag:1 ctx ~dst:1 ~bytes:10;
              Mpi.send ~tag:2 ctx ~dst:1 ~bytes:20)
            (fun ctx ->
              let a = Mpi.recv ~tag:(Call.Tag 2) ctx ~src:(Call.Rank 0) ~bytes:20 in
              let b = Mpi.recv ~tag:(Call.Tag 1) ctx ~src:(Call.Rank 0) ~bytes:10 in
              order := [ a.actual_tag; b.actual_tag ])
        in
        Alcotest.(check (list int)) "order" [ 2; 1 ] !order);
    t "non-overtaking per pair same tag" (fun () ->
        let sizes = ref [] in
        let _ =
          pairwise
            (fun ctx ->
              Mpi.send ctx ~dst:1 ~bytes:1;
              Mpi.send ctx ~dst:1 ~bytes:2;
              Mpi.send ctx ~dst:1 ~bytes:3)
            (fun ctx ->
              for _ = 1 to 3 do
                let st = Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:3 in
                sizes := st.received_bytes :: !sizes
              done)
        in
        Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !sizes));
    t "isend/irecv with waitall" (fun () ->
        let o =
          pairwise
            (fun ctx ->
              let s = Mpi.isend ctx ~dst:1 ~bytes:64 in
              ignore (Mpi.waitall ctx [ s ]))
            (fun ctx ->
              let r = Mpi.irecv ctx ~src:(Call.Rank 0) ~bytes:64 in
              let st = Mpi.wait ctx r in
              assert (st.received_bytes = 64))
        in
        Alcotest.(check int) "messages" 1 o.messages);
    t "wildcard matches earliest arrival deterministically" (fun () ->
        let first = ref (-1) in
        let _ =
          Mpi.run ~nranks:3 (fun ctx ->
              (if ctx.rank = 0 then begin
                 let st = Mpi.recv ctx ~src:Call.Any_source ~bytes:8 in
                 first := st.actual_source;
                 ignore (Mpi.recv ctx ~src:Call.Any_source ~bytes:8)
               end
               else begin
                 (* rank 2 sends later than rank 1 *)
                 Mpi.compute ctx (float_of_int ctx.rank *. 1e-3);
                 Mpi.send ctx ~dst:0 ~bytes:8
               end);
              fin ctx)
        in
        Alcotest.(check int) "first is rank 1" 1 !first);
    t "sendrecv exchange" (fun () ->
        let o =
          Mpi.run ~nranks:4 (fun ctx ->
              let right = (ctx.rank + 1) mod 4 and left = (ctx.rank + 3) mod 4 in
              ignore
                (Mpi.sendrecv ctx ~dst:right ~send_bytes:32 ~src:(Call.Rank left)
                   ~recv_bytes:32);
              fin ctx)
        in
        Alcotest.(check int) "messages" 4 o.messages);
    t "rendezvous timing waits for receiver" (fun () ->
        (* 1 MiB message: sender must wait for the delayed receiver *)
        let big = 1 lsl 20 in
        let o =
          pairwise
            (fun ctx -> Mpi.send ctx ~dst:1 ~bytes:big)
            (fun ctx ->
              Mpi.compute ctx 0.05;
              ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:big))
        in
        Alcotest.(check bool) "elapsed >= receiver delay" true (o.elapsed >= 0.05));
    t "eager send completes before receiver posts" (fun () ->
        (* sender finishes its send long before the receiver wakes up *)
        let sender_done = ref infinity in
        let _ =
          pairwise
            (fun ctx ->
              Mpi.send ctx ~dst:1 ~bytes:512;
              sender_done := Mpi.wtime ctx)
            (fun ctx ->
              Mpi.compute ctx 0.1;
              ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:512))
        in
        Alcotest.(check bool) "sender early" true (!sender_done < 0.01));
    t "self-send rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Mpi.run ~nranks:2 (fun ctx ->
                    if ctx.rank = 0 then Mpi.send ctx ~dst:0 ~bytes:1;
                    fin ctx));
             false
           with Engine.Mpi_error _ -> true));
  ]

let coll_tests =
  [
    t "barrier synchronizes clocks" (fun () ->
        let times = Array.make 4 0. in
        let _ =
          Mpi.run ~nranks:4 (fun ctx ->
              Mpi.compute ctx (float_of_int ctx.rank *. 0.01);
              Mpi.barrier ctx;
              times.(ctx.rank) <- Mpi.wtime ctx;
              fin ctx)
        in
        Array.iter
          (fun t' -> Alcotest.(check bool) "after slowest" true (t' >= 0.03))
          times);
    t "collective mismatch detected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Mpi.run ~nranks:2 (fun ctx ->
                    if ctx.rank = 0 then Mpi.barrier ctx
                    else Mpi.allreduce ctx ~bytes:8;
                    fin ctx));
             false
           with Engine.Mpi_error _ -> true));
    t "missing finalize detected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Mpi.run ~nranks:1 (fun _ -> ()));
             false
           with Engine.Mpi_error _ -> true));
    t "comm_split groups by color" (fun () ->
        let sizes = Array.make 6 0 in
        let _ =
          Mpi.run ~nranks:6 (fun ctx ->
              let c = Mpi.comm_split ctx ~color:(ctx.rank mod 2) ~key:ctx.rank in
              sizes.(ctx.rank) <- Mpi.comm_size c;
              fin ctx)
        in
        Array.iter (fun s -> Alcotest.(check int) "size 3" 3 s) sizes);
    t "comm_split key orders members" (fun () ->
        let local = Array.make 4 (-1) in
        let _ =
          Mpi.run ~nranks:4 (fun ctx ->
              (* reversed keys reverse the local numbering *)
              let c = Mpi.comm_split ctx ~color:0 ~key:(-ctx.rank) in
              local.(ctx.rank) <- Mpi.comm_rank c ctx;
              fin ctx)
        in
        Alcotest.(check (array int)) "reversed" [| 3; 2; 1; 0 |] local);
    t "comm_dup preserves membership" (fun () ->
        let ok = ref true in
        let _ =
          Mpi.run ~nranks:3 (fun ctx ->
              let c = Mpi.comm_dup ctx in
              if Mpi.comm_size c <> 3 || Mpi.comm_rank c ctx <> ctx.rank then
                ok := false;
              fin ctx)
        in
        Alcotest.(check bool) "dup" true !ok);
    t "p2p within subcommunicator uses local ranks" (fun () ->
        let got = ref (-1) in
        let _ =
          Mpi.run ~nranks:4 (fun ctx ->
              let c = Mpi.comm_split ctx ~color:(ctx.rank / 2) ~key:ctx.rank in
              (* world 2 is local 0 of the high group; world 3 local 1 *)
              if ctx.rank = 2 then Mpi.send ~comm:c ctx ~dst:1 ~bytes:8
              else if ctx.rank = 3 then begin
                let st = Mpi.recv ~comm:c ctx ~src:(Call.Rank 0) ~bytes:8 in
                got := st.actual_source
              end;
              fin ctx)
        in
        Alcotest.(check int) "local src" 0 !got);
    t "communicators isolate matching" (fun () ->
        (* same tag on two comms must not cross-match *)
        let ok = ref true in
        let _ =
          Mpi.run ~nranks:2 (fun ctx ->
              let c = Mpi.comm_dup ctx in
              if ctx.rank = 0 then begin
                Mpi.send ~comm:ctx.world ~tag:7 ctx ~dst:1 ~bytes:11;
                Mpi.send ~comm:c ~tag:7 ctx ~dst:1 ~bytes:22
              end
              else begin
                let a = Mpi.recv ~comm:c ~tag:(Call.Tag 7) ctx ~src:(Call.Rank 0) ~bytes:22 in
                let b =
                  Mpi.recv ~comm:ctx.world ~tag:(Call.Tag 7) ctx ~src:(Call.Rank 0) ~bytes:11
                in
                if a.received_bytes <> 22 || b.received_bytes <> 11 then ok := false
              end;
              fin ctx)
        in
        Alcotest.(check bool) "isolated" true !ok);
    t "allreduce cost grows with log p" (fun () ->
        let run p =
          (Mpi.run ~nranks:p (fun ctx ->
               Mpi.allreduce ctx ~bytes:8;
               fin ctx))
            .elapsed
        in
        Alcotest.(check bool) "monotone" true (run 16 > run 4));
    t "collectives ordered per communicator" (fun () ->
        (* two barriers in sequence complete without interference *)
        let o =
          Mpi.run ~nranks:3 (fun ctx ->
              Mpi.barrier ctx;
              Mpi.barrier ctx;
              Mpi.allreduce ctx ~bytes:4;
              fin ctx)
        in
        Alcotest.(check bool) "done" true (o.elapsed > 0.));
  ]

let engine_tests =
  [
    t "deadlock detection: mutual blocking recv" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (pairwise
                  (fun ctx -> ignore (Mpi.recv ctx ~src:(Call.Rank 1) ~bytes:8))
                  (fun ctx -> ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:8)));
             false
           with Engine.Deadlock _ -> true));
    t "determinism: identical runs identical clocks" (fun () ->
        let app (ctx : Mpi.ctx) =
          let n = ctx.nranks in
          for _ = 1 to 10 do
            let r = Mpi.irecv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes:2048 in
            let s = Mpi.isend ctx ~dst:((ctx.rank + 1) mod n) ~bytes:2048 in
            ignore (Mpi.waitall ctx [ r; s ]);
            Mpi.compute ctx 1e-5
          done;
          fin ctx
        in
        let a = Mpi.run ~nranks:8 app and b = Mpi.run ~nranks:8 app in
        Alcotest.(check (float 0.)) "elapsed" a.elapsed b.elapsed;
        Alcotest.(check int) "events" a.events b.events);
    t "compute advances virtual clock only" (fun () ->
        let o =
          Mpi.run ~nranks:1 (fun ctx ->
              Mpi.compute ctx 123.0;
              fin ctx)
        in
        Alcotest.(check bool) "elapsed" true (o.elapsed >= 123.0));
    t "compute rejects negative" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Mpi.run ~nranks:1 (fun ctx -> Mpi.compute ctx (-1.); fin ctx));
             false
           with Engine.Mpi_error _ -> true));
    t "outcome counts messages and bytes" (fun () ->
        let o =
          pairwise
            (fun ctx ->
              Mpi.send ctx ~dst:1 ~bytes:100;
              Mpi.send ctx ~dst:1 ~bytes:200)
            (fun ctx ->
              ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:100);
              ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:200))
        in
        Alcotest.(check int) "messages" 2 o.messages;
        Alcotest.(check int) "bytes" 300 o.p2p_bytes);
    t "unexpected messages counted" (fun () ->
        let o =
          pairwise
            (fun ctx -> Mpi.send ctx ~dst:1 ~bytes:10)
            (fun ctx ->
              Mpi.compute ctx 0.01;
              ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:10))
        in
        Alcotest.(check int) "unexpected" 1 o.unexpected);
    t "flow control stalls and recovers" (fun () ->
        (* flood a sleeping receiver past its unexpected buffer *)
        let net =
          { Netmodel.bluegene_l with unexpected_buffer_bytes = 4096; resume_latency = 1e-4 }
        in
        let o =
          Mpi.run ~net ~nranks:2 (fun ctx ->
              (if ctx.rank = 0 then
                 for _ = 1 to 20 do
                   Mpi.send ctx ~dst:1 ~bytes:1024
                 done
               else begin
                 Mpi.compute ctx 0.01;
                 for _ = 1 to 20 do
                   ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:1024)
                 done
               end);
              fin ctx)
        in
        Alcotest.(check bool) "stalled" true (o.flow_stalls > 0));
    t "oversize eager message still delivered (liveness)" (fun () ->
        let net = { Netmodel.bluegene_l with unexpected_buffer_bytes = 100 } in
        let o =
          Mpi.run ~net ~nranks:2 (fun ctx ->
              (if ctx.rank = 0 then Mpi.send ctx ~dst:1 ~bytes:1024
               else ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:1024));
              fin ctx)
        in
        Alcotest.(check int) "delivered" 1 o.messages);
    t "wtime monotone" (fun () ->
        let ok = ref true in
        let _ =
          Mpi.run ~nranks:1 (fun ctx ->
              let t1 = Mpi.wtime ctx in
              Mpi.compute ctx 1.0;
              let t2 = Mpi.wtime ctx in
              if t2 < t1 +. 1.0 then ok := false;
              fin ctx)
        in
        Alcotest.(check bool) "monotone" true !ok);
    t "perform outside run rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Engine.perform
                  { op = Call.Barrier; comm = Comm.world 2; site = Util.Callsite.unknown });
             false
           with Engine.Mpi_error _ -> true));
    t "nranks must be positive" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Mpi.run ~nranks:0 fin);
             false
           with Engine.Mpi_error _ -> true));
    t "many ranks ring completes" (fun () ->
        let o =
          Mpi.run ~nranks:128 (fun ctx ->
              let n = ctx.nranks in
              let r = Mpi.irecv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes:8 in
              let s = Mpi.isend ctx ~dst:((ctx.rank + 1) mod n) ~bytes:8 in
              ignore (Mpi.waitall ctx [ r; s ]);
              fin ctx)
        in
        Alcotest.(check int) "messages" 128 o.messages);
  ]

let comm_unit_tests =
  [
    t "world mapping" (fun () ->
        let c = Comm.world 4 in
        Alcotest.(check int) "size" 4 (Comm.size c);
        Alcotest.(check int) "w2l" 2 (Comm.world_of_local c 2);
        Alcotest.(check (option int)) "l2w" (Some 3) (Comm.local_of_world c 3));
    t "make rejects duplicates" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Comm.make ~id:1 ~members:[| 0; 1; 0 |]);
             false
           with Invalid_argument _ -> true));
    t "subcomm translation" (fun () ->
        let c = Comm.make ~id:5 ~members:[| 7; 3; 9 |] in
        Alcotest.(check int) "local 1 -> world 3" 3 (Comm.world_of_local c 1);
        Alcotest.(check (option int)) "world 9 -> local 2" (Some 2) (Comm.local_of_world c 9);
        Alcotest.(check (option int)) "non-member" None (Comm.local_of_world c 0);
        Alcotest.(check bool) "member" true (Comm.is_member c ~world:7));
    t "out of range local rank" (fun () ->
        let c = Comm.world 2 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Comm.world_of_local c 5);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Differential tests: the hash-indexed matcher must be observationally
   identical to the original list-scan matcher on every application.  A
   full outcome comparison (including per-rank finish times, which are
   bit-exact functions of the match decisions) catches any divergence in
   matching order. *)

let check_outcomes_equal name (a : Engine.outcome) (b : Engine.outcome) =
  Alcotest.(check (float 0.)) (name ^ ": elapsed") a.elapsed b.elapsed;
  Alcotest.(check (array (float 0.)))
    (name ^ ": finish_times") a.finish_times b.finish_times;
  Alcotest.(check int) (name ^ ": events") a.events b.events;
  Alcotest.(check int) (name ^ ": messages") a.messages b.messages;
  Alcotest.(check int) (name ^ ": p2p_bytes") a.p2p_bytes b.p2p_bytes;
  Alcotest.(check int) (name ^ ": unexpected") a.unexpected b.unexpected;
  Alcotest.(check int) (name ^ ": flow_stalls") a.flow_stalls b.flow_stalls

(* Some app/network combinations legitimately deadlock (the paper's
   Figure 5 scenario); the two matchers must then produce the *same*
   diagnostic — its queue depths and times are functions of the match
   decisions. *)
let check_same_fate name ?net ~nranks program =
  let run matcher =
    match Mpi.run ?net ~matcher ~nranks program with
    | o -> Ok o
    | exception Engine.Deadlock m -> Error ("deadlock: " ^ m)
    | exception Engine.Stalled m -> Error ("stalled: " ^ m)
  in
  match (run `Reference, run `Indexed) with
  | Ok a, Ok b -> check_outcomes_equal name a b
  | Error a, Error b -> Alcotest.(check string) (name ^ ": diagnostic") a b
  | Ok _, Error e | Error e, Ok _ ->
      Alcotest.failf "%s: one matcher completed, the other raised: %s" name e

(* Wildcard receives racing concrete ones, several tags per peer, and an
   unexpected-queue drain out of arrival order — the cases where indexed
   and list matching could plausibly disagree. *)
let wildcard_stress (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  if ctx.rank = 0 then begin
    for _ = 1 to (n - 1) * 2 do
      ignore (Mpi.recv ctx ~src:Call.Any_source ~tag:Call.Any_tag ~bytes:64)
    done;
    for r = n - 1 downto 1 do
      ignore (Mpi.recv ctx ~src:(Call.Rank r) ~tag:(Call.Tag 7) ~bytes:64)
    done;
    Mpi.finalize ctx
  end
  else begin
    Mpi.send ctx ~dst:0 ~tag:ctx.rank ~bytes:64;
    Mpi.send ctx ~dst:0 ~tag:(100 + ctx.rank) ~bytes:64;
    Mpi.compute ctx (0.001 *. float_of_int ctx.rank);
    Mpi.send ctx ~dst:0 ~tag:7 ~bytes:64;
    Mpi.finalize ctx
  end

let differential_tests =
  [
    t "indexed matcher = reference across the app registry" (fun () ->
        List.iter
          (fun (app : Apps.Registry.app) ->
            let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
            check_same_fate
              (Printf.sprintf "%s p=%d" app.name nranks)
              ~nranks (app.program ()))
          Apps.Registry.all);
    t "indexed matcher = reference under flow control (small buffers)" (fun () ->
        let net = Netmodel.ethernet_cluster in
        List.iter
          (fun name ->
            let app = Option.get (Apps.Registry.find name) in
            let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
            check_same_fate
              (Printf.sprintf "%s p=%d ethernet" name nranks)
              ~net ~nranks (app.program ()))
          [ "ring"; "stencil2d"; "sweep3d" ]);
    t "indexed matcher = reference on wildcard stress" (fun () ->
        List.iter
          (fun nranks ->
            check_same_fate
              (Printf.sprintf "wildcard stress p=%d" nranks)
              ~nranks wildcard_stress)
          [ 4; 16; 32 ]);
  ]

let suite =
  p2p_tests @ coll_tests @ engine_tests @ comm_unit_tests @ differential_tests
