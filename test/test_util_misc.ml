open Util

let t name f = Alcotest.test_case name `Quick f

let rng_tests =
  [
    t "deterministic for equal seeds" (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Rng.bits64 a) (Rng.bits64 b)
        done);
    t "different seeds differ" (fun () ->
        let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
        Alcotest.(check bool) "differ" true (Rng.bits64 a <> Rng.bits64 b));
    t "int respects bound" (fun () ->
        let r = Rng.create ~seed:3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "bound" true (v >= 0 && v < 17)
        done);
    t "int rejects non-positive bound" (fun () ->
        let r = Rng.create ~seed:3 in
        Alcotest.check_raises "bound" (Invalid_argument "Rng.int: bound <= 0")
          (fun () -> ignore (Rng.int r 0)));
    t "float in unit interval" (fun () ->
        let r = Rng.create ~seed:5 in
        for _ = 1 to 1000 do
          let v = Rng.float r in
          Alcotest.(check bool) "unit" true (v >= 0. && v < 1.)
        done);
    t "split independence" (fun () ->
        let base = Rng.create ~seed:11 in
        let a = Rng.split base ~index:0 in
        let base2 = Rng.create ~seed:11 in
        let a' = Rng.split base2 ~index:0 in
        Alcotest.(check int64) "reproducible" (Rng.bits64 a) (Rng.bits64 a'));
    t "repeated splits at the same index yield distinct streams" (fun () ->
        (* the split draw advances the parent, so each call derives a new
           child even for equal indices — the documented contract *)
        let base = Rng.create ~seed:29 in
        let children = List.init 8 (fun _ -> Rng.split base ~index:3) in
        let firsts = List.map Rng.bits64 children in
        let distinct = List.sort_uniq compare firsts in
        Alcotest.(check int) "all distinct" (List.length firsts)
          (List.length distinct));
    t "int is exactly uniform over small bounds" (fun () ->
        (* rejection sampling: every residue appears with equal probability;
           with modulo bias over 2^62 the skew for bound=3 would be
           invisible here, so instead check the full distribution is close
           AND that values cover the range *)
        let r = Rng.create ~seed:31 in
        let counts = Array.make 3 0 in
        let n = 30_000 in
        for _ = 1 to n do
          let v = Rng.int r 3 in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iter
          (fun c ->
            Alcotest.(check bool) "roughly uniform" true
              (abs (c - (n / 3)) < n / 30))
          counts);
    t "gaussian truncation" (fun () ->
        let r = Rng.create ~seed:13 in
        for _ = 1 to 500 do
          let v = Rng.gaussian r ~truncate_at_zero:true ~mean:0.01 ~stddev:0.1 () in
          Alcotest.(check bool) "non-negative" true (v >= 0.)
        done);
    t "gaussian mean roughly right" (fun () ->
        let r = Rng.create ~seed:17 in
        let n = 10000 in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. Rng.gaussian r ~mean:5.0 ~stddev:1.0 ()
        done;
        let m = !sum /. float_of_int n in
        Alcotest.(check bool) "close" true (Float.abs (m -. 5.0) < 0.05));
    t "exponential positive" (fun () ->
        let r = Rng.create ~seed:19 in
        for _ = 1 to 100 do
          Alcotest.(check bool) "pos" true (Rng.exponential r ~mean:2.0 >= 0.)
        done);
    t "shuffle permutes" (fun () ->
        let r = Rng.create ~seed:23 in
        let a = Array.init 50 Fun.id in
        Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted);
  ]

let pqueue_tests =
  [
    t "pop order by time" (fun () ->
        let q = Pqueue.create () in
        Pqueue.add q ~time:3. "c";
        Pqueue.add q ~time:1. "a";
        Pqueue.add q ~time:2. "b";
        Alcotest.(check (option (pair (float 0.) string))) "a" (Some (1., "a")) (Pqueue.pop q);
        Alcotest.(check (option (pair (float 0.) string))) "b" (Some (2., "b")) (Pqueue.pop q);
        Alcotest.(check (option (pair (float 0.) string))) "c" (Some (3., "c")) (Pqueue.pop q);
        Alcotest.(check bool) "empty" true (Pqueue.is_empty q));
    t "fifo among equal times" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun s -> Pqueue.add q ~time:1. s) [ "x"; "y"; "z" ];
        let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
        Alcotest.(check (list string)) "fifo" [ "x"; "y"; "z" ] order);
    t "rejects nan time" (fun () ->
        let q = Pqueue.create () in
        Alcotest.check_raises "nan" (Invalid_argument "Pqueue.add: non-finite time")
          (fun () -> Pqueue.add q ~time:Float.nan ()));
    t "peek_time" (fun () ->
        let q = Pqueue.create () in
        Alcotest.(check (option (float 0.))) "empty" None (Pqueue.peek_time q);
        Pqueue.add q ~time:5. ();
        Alcotest.(check (option (float 0.))) "peek" (Some 5.) (Pqueue.peek_time q));
    t "length" (fun () ->
        let q = Pqueue.create () in
        for i = 1 to 10 do Pqueue.add q ~time:(float_of_int i) i done;
        Alcotest.(check int) "len" 10 (Pqueue.length q));
  ]

let pqueue_props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"pqueue is a sorter" ~count:200
        QCheck.(small_list (float_range 0. 100.))
        (fun times ->
          let q = Pqueue.create () in
          List.iter (fun t -> Pqueue.add q ~time:t ()) times;
          let rec drain acc =
            match Pqueue.pop q with
            | None -> List.rev acc
            | Some (t, ()) -> drain (t :: acc)
          in
          drain [] = List.sort compare times);
      (* pop order = the reference semantics: sort by (time, insertion seq).
         A stable sort on time alone is exactly that, payload included. *)
      QCheck.Test.make ~name:"pqueue pop order is (time, seq) with FIFO ties"
        ~count:200
        QCheck.(small_list (int_range 0 5))
        (fun raw ->
          let items = List.mapi (fun i t -> (float_of_int t, i)) raw in
          let q = Pqueue.create () in
          List.iter (fun (t, i) -> Pqueue.add q ~time:t i) items;
          let rec drain acc =
            match Pqueue.pop q with
            | None -> List.rev acc
            | Some (t, i) -> drain ((t, i) :: acc)
          in
          drain []
          = List.stable_sort (fun (a, _) (b, _) -> compare a b) items);
      QCheck.Test.make ~name:"pqueue interleaved add/pop round-trips"
        ~count:200
        QCheck.(small_list (pair bool (int_range 0 9)))
        (fun ops ->
          (* model: a sorted association list with the same (time, seq) key *)
          let q = Pqueue.create () in
          let model = ref [] and seq = ref 0 in
          List.for_all
            (fun (is_pop, t) ->
              if is_pop then begin
                let expected =
                  match !model with
                  | [] -> None
                  | xs ->
                      let ((tm, _, v) as m) =
                        List.fold_left
                          (fun acc x ->
                            let (ta, sa, _) = acc and (tx, sx, _) = x in
                            if (tx, sx) < (ta, sa) then x else acc)
                          (List.hd xs) (List.tl xs)
                      in
                      model := List.filter (fun x -> x != m) !model;
                      Some (tm, v)
                in
                Pqueue.pop q = expected
              end
              else begin
                let tf = float_of_int t in
                Pqueue.add q ~time:tf !seq;
                model := (tf, !seq, !seq) :: !model;
                incr seq;
                Pqueue.length q = List.length !model
              end)
            ops);
    ]

let deque_tests =
  [
    t "fifo order" (fun () ->
        let d = Deque.create () in
        List.iter (fun i -> Deque.push_back d i) [ 1; 2; 3 ];
        Alcotest.(check (option int)) "peek" (Some 1) (Deque.peek_front d);
        Alcotest.(check (option int)) "1" (Some 1) (Deque.pop_front d);
        Alcotest.(check (option int)) "2" (Some 2) (Deque.pop_front d);
        Alcotest.(check (option int)) "3" (Some 3) (Deque.pop_front d);
        Alcotest.(check (option int)) "empty" None (Deque.pop_front d));
    t "survives growth past initial capacity" (fun () ->
        let d = Deque.create ~capacity:2 () in
        (* ring-buffer wraparound: interleave pushes and pops so head moves *)
        for i = 0 to 99 do
          Deque.push_back d i;
          if i mod 3 = 2 then ignore (Deque.pop_front d)
        done;
        let expected =
          List.filter (fun i -> i > 32) (List.init 100 Fun.id)
        in
        Alcotest.(check int) "length" (List.length expected) (Deque.length d);
        Alcotest.(check (list int)) "contents" expected (Deque.to_list d));
    t "remove_first removes only the first match" (fun () ->
        let d = Deque.create () in
        List.iter (fun i -> Deque.push_back d i) [ 1; 2; 3; 2; 4 ];
        Alcotest.(check (option int)) "removed" (Some 2)
          (Deque.remove_first (fun x -> x mod 2 = 0) d);
        Alcotest.(check (list int)) "rest" [ 1; 3; 2; 4 ] (Deque.to_list d);
        Alcotest.(check (option int)) "no match" None
          (Deque.remove_first (fun x -> x > 100) d));
    t "find_first and exists" (fun () ->
        let d = Deque.create () in
        List.iter (fun i -> Deque.push_back d i) [ 5; 6; 7 ];
        Alcotest.(check (option int)) "find" (Some 6)
          (Deque.find_first (fun x -> x mod 2 = 0) d);
        Alcotest.(check bool) "exists" true (Deque.exists (fun x -> x = 7) d);
        Alcotest.(check bool) "not exists" false (Deque.exists (fun x -> x = 8) d);
        Alcotest.(check (list int)) "find does not remove" [ 5; 6; 7 ]
          (Deque.to_list d));
    t "clear empties" (fun () ->
        let d = Deque.create () in
        List.iter (fun i -> Deque.push_back d i) [ 1; 2 ];
        Deque.clear d;
        Alcotest.(check bool) "empty" true (Deque.is_empty d);
        Alcotest.(check (option int)) "pop" None (Deque.pop_front d))
  ]

let deque_props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260806 |]))
    [
      (* model-based: a Deque behaves exactly like a FIFO list under any
         interleaving of push/pop/remove_first, including across growth *)
      QCheck.Test.make ~name:"deque matches list model" ~count:300
        QCheck.(list (pair (int_range 0 2) (int_range 0 9)))
        (fun ops ->
          let d = Deque.create ~capacity:1 () in
          let model = ref [] in
          List.for_all
            (fun (op, v) ->
              match op with
              | 0 ->
                  Deque.push_back d v;
                  model := !model @ [ v ];
                  Deque.length d = List.length !model
              | 1 -> (
                  let got = Deque.pop_front d in
                  match !model with
                  | [] -> got = None
                  | x :: rest ->
                      model := rest;
                      got = Some x)
              | _ -> (
                  let pred x = x = v in
                  let got = Deque.remove_first pred d in
                  match List.find_opt pred !model with
                  | None -> got = None
                  | Some x ->
                      let rec drop = function
                        | [] -> []
                        | y :: rest -> if pred y then rest else y :: drop rest
                      in
                      model := drop !model;
                      got = Some x)
              && Deque.to_list d = !model)
            ops);
    ]

let callsite_tests =
  [
    t "make distinct positions" (fun () ->
        let a = Callsite.make ("f.ml", 1, 0, 0) and b = Callsite.make ("f.ml", 2, 0, 0) in
        Alcotest.(check bool) "neq" false (Callsite.equal a b));
    t "label distinguishes" (fun () ->
        let a = Callsite.make ~label:"x" ("f.ml", 1, 0, 0) in
        let b = Callsite.make ~label:"y" ("f.ml", 1, 0, 0) in
        Alcotest.(check bool) "neq" false (Callsite.equal a b));
    t "equal reflexive" (fun () ->
        let a = Callsite.make ("f.ml", 1, 2, 3) in
        Alcotest.(check bool) "eq" true (Callsite.equal a a));
    t "synthetic" (fun () ->
        Alcotest.(check bool) "eq" true
          (Callsite.equal (Callsite.synthetic "gen1") (Callsite.synthetic "gen1"));
        Alcotest.(check bool) "neq" false
          (Callsite.equal (Callsite.synthetic "gen1") (Callsite.synthetic "gen2")));
    t "compare total order" (fun () ->
        let a = Callsite.make ("a.ml", 1, 0, 0) and b = Callsite.make ("b.ml", 1, 0, 0) in
        Alcotest.(check bool) "antisym" true
          (Callsite.compare a b = -Callsite.compare b a));
  ]

let stats_tests =
  [
    t "mape" (fun () ->
        Alcotest.(check (float 1e-9)) "mape" 10.
          (Stats.mape [ (100., 110.); (100., 90.) ]));
    t "mape skips zero reference" (fun () ->
        Alcotest.(check (float 1e-9)) "mape" 5. (Stats.mape [ (0., 3.); (100., 105.) ]));
    t "pct_error sign" (fun () ->
        Alcotest.(check (float 1e-9)) "neg" (-10.)
          (Stats.pct_error ~reference:100. ~measured:90.));
    t "geomean" (fun () ->
        Alcotest.(check (float 1e-9)) "geo" 4. (Stats.geomean [ 2.; 8. ]));
    t "table render aligns" (fun () ->
        let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
        Alcotest.(check bool) "has rule" true (String.length s > 0));
    t "fsec units" (fun () ->
        Alcotest.(check string) "s" "1.500 s" (Table.fsec 1.5);
        Alcotest.(check string) "ms" "2.50 ms" (Table.fsec 2.5e-3);
        Alcotest.(check string) "us" "3.00 us" (Table.fsec 3e-6);
        Alcotest.(check string) "ns" "5.0 ns" (Table.fsec 5e-9));
    t "fbytes units" (fun () ->
        Alcotest.(check string) "b" "512 B" (Table.fbytes 512);
        Alcotest.(check string) "k" "2.00 KiB" (Table.fbytes 2048));
  ]

let suite =
  rng_tests @ pqueue_tests @ pqueue_props @ deque_tests @ deque_props
  @ callsite_tests @ stats_tests
