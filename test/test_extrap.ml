(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

open Mpisim
open Scalatrace

let t name f = Alcotest.test_case name `Quick f

let s_r = Mpi.site __POS__
let s_s = Mpi.site __POS__
let s_w = Mpi.site __POS__
let s_a = Mpi.site __POS__
let s_f = Mpi.site __POS__

(* ring whose message size shrinks with p and iteration count is fixed *)
let ring (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  let bytes = 65536 / n in
  for _ = 1 to 50 do
    let r = Mpi.irecv ~site:s_r ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes in
    let s = Mpi.isend ~site:s_s ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:s_w ctx [ r; s ]);
    Mpi.compute ctx 1e-5;
    Mpi.allreduce ~site:s_a ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_f ctx

let trace_at p prog = fst (Tracer.trace_run ~nranks:p prog)

let fit_tests =
  [
    t "fit constant" (fun () ->
        match Benchgen.Extrap.fit [ (4, 7.); (8, 7.); (16, 7.) ] with
        | Some (predict, _) -> Alcotest.(check (float 1e-9)) "at 64" 7. (predict 64)
        | None -> Alcotest.fail "no fit");
    t "fit linear in p" (fun () ->
        match Benchgen.Extrap.fit [ (4, 9.); (8, 17.); (16, 33.) ] with
        | Some (predict, _) -> Alcotest.(check (float 1e-6)) "at 32" 65. (predict 32)
        | None -> Alcotest.fail "no fit");
    t "fit inverse p" (fun () ->
        match Benchgen.Extrap.fit [ (4, 16384.); (8, 8192.); (16, 4096.) ] with
        | Some (predict, _) -> Alcotest.(check (float 1e-3)) "at 64" 1024. (predict 64)
        | None -> Alcotest.fail "no fit");
    t "fit sqrt p" (fun () ->
        match Benchgen.Extrap.fit [ (4, 2.); (16, 4.); (64, 8.) ] with
        | Some (predict, _) -> Alcotest.(check (float 1e-6)) "at 256" 16. (predict 256)
        | None -> Alcotest.fail "no fit");
    t "fit log2 p" (fun () ->
        match Benchgen.Extrap.fit [ (4, 2.); (8, 3.); (16, 4.) ] with
        | Some (predict, _) -> Alcotest.(check (float 1e-6)) "at 64" 6. (predict 64)
        | None -> Alcotest.fail "no fit");
    t "no fit for erratic data" (fun () ->
        Alcotest.(check bool) "none" true
          (Benchgen.Extrap.fit [ (4, 1.); (8, 100.); (16, 2.); (32, 77.) ] = None));
    t "single sample has no model" (fun () ->
        Alcotest.(check bool) "none" true (Benchgen.Extrap.fit [ (4, 1.) ] = None));
  ]

let extrap_tests =
  [
    t "ring extrapolates structure, sizes and peers" (fun () ->
        let inputs = List.map (fun p -> trace_at p ring) [ 4; 8; 16 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:64 in
        let actual = trace_at 64 ring in
        Alcotest.(check int) "nranks" 64 (Trace.nranks ex);
        Alcotest.(check int) "rsds" (Trace.rsd_count actual) (Trace.rsd_count ex);
        Alcotest.(check int) "events" (Trace.event_count actual) (Trace.event_count ex);
        (* message size follows 65536/p *)
        let size = ref 0 in
        Tnode.iter_leaves
          (fun e -> if e.Event.kind = Event.E_isend then size := e.Event.bytes)
          (Trace.nodes ex);
        Alcotest.(check int) "bytes" 1024 !size);
    t "extrapolated benchmark time tracks the real one" (fun () ->
        let inputs = List.map (fun p -> trace_at p ring) [ 4; 8; 16 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:64 in
        let report = Benchgen.generate ~name:"ring64(extrapolated)" ex in
        let res = Conceptual.Lower.run ~nranks:64 report.program in
        let _, actual = Tracer.trace_run ~nranks:64 ring in
        let err =
          Float.abs (res.outcome.elapsed -. actual.elapsed) /. actual.elapsed *. 100.
        in
        Alcotest.(check bool) (Printf.sprintf "err=%.1f%%" err) true (err < 15.));
    t "ep extrapolates (constant structure)" (fun () ->
        let app = Option.get (Apps.Registry.find "ep") in
        let prog = app.program ~cls:Apps.Params.S () in
        let inputs = List.map (fun p -> trace_at p prog) [ 4; 8; 16 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:64 in
        let actual = trace_at 64 prog in
        Alcotest.(check int) "events" (Trace.event_count actual) (Trace.event_count ex));
    t "ft extrapolates alltoall sizes (1/p^2)" (fun () ->
        let app = Option.get (Apps.Registry.find "ft") in
        let prog = app.program ~cls:Apps.Params.S () in
        let inputs = List.map (fun p -> trace_at p prog) [ 4; 8; 16 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:64 in
        let actual = trace_at 64 prog in
        let a2a trace =
          let v = ref 0 in
          Tnode.iter_leaves
            (fun e -> if e.Event.kind = Event.E_alltoall then v := e.Event.bytes)
            (Trace.nodes trace);
          !v
        in
        (* the application truncates sz/p^2 to int while the fitted model
           rounds: allow 1 byte of quantization *)
        Alcotest.(check bool)
          (Printf.sprintf "pair bytes %d ~ %d" (a2a actual) (a2a ex))
          true
          (abs (a2a actual - a2a ex) <= 1));
    t "rejects structurally varying codes" (fun () ->
        (* CG's reduction has log2(px) unrolled stages: shape varies *)
        let app = Option.get (Apps.Registry.find "cg") in
        let prog = app.program ~cls:Apps.Params.S () in
        let inputs = List.map (fun p -> trace_at p prog) [ 4; 16 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Extrap.extrapolate inputs ~target:64);
             false
           with Benchgen.Extrap.Extrap_error _ -> true));
    t "rejects too-small target" (fun () ->
        let inputs = List.map (fun p -> trace_at p ring) [ 4; 8 ] in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Extrap.extrapolate inputs ~target:8);
             false
           with Benchgen.Extrap.Extrap_error _ -> true));
    t "rejects single input" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Extrap.extrapolate [ trace_at 4 ring ] ~target:16);
             false
           with Benchgen.Extrap.Extrap_error _ -> true));
    t "extrapolated trace passes generation round-trip" (fun () ->
        let inputs = List.map (fun p -> trace_at p ring) [ 4; 8; 16 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:32 in
        let report = Benchgen.generate ex in
        Alcotest.(check bool) "parses" true
          (Conceptual.Ast.equal report.program (Conceptual.Parse.program report.text)));
  ]

let stencil2d_tests =
  (* 2-D periodic halo exchange: the column-neighbour offset is sqrt(p),
     exactly the grid-shaped scaling the model family must recognize *)
  let s2_r = Mpisim.Mpi.site __POS__ and s2_s = Mpisim.Mpi.site __POS__ in
  let s2_w = Mpisim.Mpi.site __POS__ and s2_f = Mpisim.Mpi.site __POS__ in
  let stencil (ctx : Mpi.ctx) =
    let n = ctx.nranks in
    let px = int_of_float (sqrt (float_of_int n) +. 0.5) in
    for _ = 1 to 20 do
      let nbrs =
        [ (ctx.rank + 1) mod n; (ctx.rank + n - 1) mod n;
          (ctx.rank + px) mod n; (ctx.rank + n - px) mod n ]
      in
      let rs =
        List.map (fun s -> Mpi.irecv ~site:s2_r ctx ~src:(Call.Rank s) ~bytes:512) nbrs
      in
      let ss = List.map (fun d -> Mpi.isend ~site:s2_s ctx ~dst:d ~bytes:512) nbrs in
      ignore (Mpi.waitall ~site:s2_w ctx (rs @ ss));
      Mpi.compute ctx 2e-5
    done;
    Mpi.finalize ~site:s2_f ctx
  in
  [
    t "2-D stencil extrapolates sqrt(p) neighbour offsets" (fun () ->
        let inputs = List.map (fun p -> trace_at p stencil) [ 16; 36; 64 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:144 in
        let actual = trace_at 144 stencil in
        Alcotest.(check int) "events" (Trace.event_count actual) (Trace.event_count ex);
        (* the column offset must be 12 = sqrt(144) *)
        let offsets = ref [] in
        Tnode.iter_leaves
          (fun e ->
            match (e.Event.kind, e.Event.peer) with
            | Event.E_isend, Event.P_rel d -> offsets := d :: !offsets
            | _ -> ())
          (Trace.nodes ex);
        let offsets = List.sort_uniq compare !offsets in
        Alcotest.(check (list int)) "offsets" [ 1; 12; 132; 143 ] offsets);
    t "2-D stencil extrapolated benchmark runs and tracks time" (fun () ->
        let inputs = List.map (fun p -> trace_at p stencil) [ 16; 36; 64 ] in
        let ex = Benchgen.Extrap.extrapolate inputs ~target:100 in
        let report = Benchgen.generate ex in
        let res = Conceptual.Lower.run ~nranks:100 report.program in
        let _, actual = Tracer.trace_run ~nranks:100 stencil in
        let err =
          Float.abs (res.outcome.elapsed -. actual.elapsed) /. actual.elapsed *. 100.
        in
        Alcotest.(check bool) (Printf.sprintf "err=%.1f%%" err) true (err < 15.));
  ]

let cgen_tests =
  [
    t "c backend emits a full translation unit" (fun () ->
        let trace = trace_at 8 ring in
        let c = Benchgen.Cgen.program ~name:"ring" trace in
        List.iter
          (fun needle ->
            let found =
              let n = String.length needle and m = String.length c in
              let rec go i = i + n <= m && (String.sub c i n = needle || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) needle true found)
          [
            "MPI_Init"; "MPI_Finalize"; "MPI_Irecv"; "MPI_Isend"; "MPI_Waitall";
            "MPI_Allreduce"; "for (int it = 0; it < 50; it++)"; "spin_for_usecs";
          ]);
    t "c backend guards partial-participant operations" (fun () ->
        let s1 = Mpi.site __POS__ and s2 = Mpi.site __POS__ in
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then Mpi.send ~site:s1 ctx ~dst:1 ~bytes:8
           else if ctx.rank = 1 then ignore (Mpi.recv ~site:s2 ctx ~src:(Call.Rank 0) ~bytes:8));
          Mpi.finalize ~site:s_f ctx
        in
        let trace = trace_at 4 prog in
        let c = Benchgen.Cgen.program trace in
        let contains needle =
          let n = String.length needle and m = String.length c in
          let rec go i = i + n <= m && (String.sub c i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "rank guard" true (contains "if (rank == 0)"));
  ]

let suite = fit_tests @ extrap_tests @ stencil2d_tests @ cgen_tests
