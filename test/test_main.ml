let () =
  Alcotest.run "benchgen"
    [
      ("rank_set", Test_rank_set.suite);
      ("histogram", Test_histogram.suite);
      ("util", Test_util_misc.suite);
      ("engine", Test_engine.suite);
      ("fault", Test_fault.suite);
      ("collalg", Test_collalg.suite);
      ("scalatrace", Test_scalatrace.suite);
      ("merge_diff", Test_merge_diff.suite);
      ("conceptual", Test_conceptual.suite);
      ("benchgen", Test_benchgen.suite);
      ("pipeline", Test_pipeline.suite);
      ("extrap", Test_extrap.suite);
      ("codegen", Test_codegen.suite);
      ("fuzz", Test_fuzz.suite);
      ("check", Test_check.suite);
      ("trace_io", Test_trace_io.suite);
      ("salvage", Test_salvage.suite);
      ("timing", Test_timing.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
    ]
