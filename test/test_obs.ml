(* The observability layer: metrics registry, sink/exporter golden
   output, hook composition, pipeline spans, and the differential check
   that the deprecated Benchgen wrappers still behave exactly like
   Pipeline.run with a nil sink. *)
[@@@alert "-deprecated"]

module Json = Obs.Json
module Sink = Obs.Sink
module Metrics = Obs.Metrics
module Exporter = Obs.Exporter
module Pipeline = Benchgen.Pipeline

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_tests =
  [
    t "numbers render deterministically" (fun () ->
        let s f = Json.to_string (Json.Num f) in
        Alcotest.(check string) "integral" "3" (s 3.0);
        Alcotest.(check string) "negative integral" "-17" (s (-17.));
        Alcotest.(check string) "fractional" "12.5" (s 12.5);
        Alcotest.(check string) "zero" "0" (s 0.));
    t "round-trip through parse" (fun () ->
        let v =
          Json.Obj
            [
              ("a", Json.Arr [ Json.Num 1.; Json.Bool true; Json.Null ]);
              ("s", Json.Str "x \"quoted\"\nline");
              ("o", Json.Obj [ ("k", Json.Num 2.5) ]);
            ]
        in
        let s = Json.to_string v in
        Alcotest.(check bool) "parse(to_string v) = v" true (Json.parse s = v));
    t "malformed input raises Parse_error" (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "accepted malformed %S" s)
          [ "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"open"; "1 2" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Exporter: golden Chrome trace                                       *)

let sample_recorder () =
  let r = Exporter.recorder () in
  let s = Exporter.sink r in
  Sink.span_begin s ~pid:Sink.pipeline_pid ~tid:0 ~cat:"stage" ~ts:0. "trace";
  Sink.counter s ~pid:Sink.engine_pid ~tid:3 ~ts:12.5 "queues"
    [ ("posted", 2.); ("unexpected", 0.) ];
  Sink.instant s ~pid:Sink.engine_pid ~tid:1 ~cat:"fault"
    ~args:[ ("dst", Sink.A_int 0) ] ~ts:14. "fault.drop";
  Sink.span_end s ~pid:Sink.pipeline_pid ~tid:0 ~ts:20. "trace";
  r

let golden_chrome =
  String.concat ""
    [
      {|{"traceEvents":[|};
      {|{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"pipeline"}},|};
      {|{"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"engine"}},|};
      {|{"name":"trace","ph":"B","pid":1,"tid":0,"ts":0,"cat":"stage"},|};
      {|{"name":"queues","ph":"C","pid":2,"tid":3,"ts":12.5,"args":{"posted":2,"unexpected":0}},|};
      {|{"name":"fault.drop","ph":"i","pid":2,"tid":1,"ts":14,"cat":"fault","args":{"dst":0},"s":"t"},|};
      {|{"name":"trace","ph":"E","pid":1,"tid":0,"ts":20}|};
      {|],"displayTimeUnit":"ms"}|};
    ]

let exporter_tests =
  [
    t "chrome export matches golden byte-for-byte" (fun () ->
        Alcotest.(check string)
          "golden" golden_chrome
          (Exporter.to_chrome_string (sample_recorder ())));
    t "independent identical recordings serialize identically" (fun () ->
        Alcotest.(check string)
          "bit-reproducible"
          (Exporter.to_chrome_string (sample_recorder ()))
          (Exporter.to_chrome_string (sample_recorder ())));
    t "golden output passes structural validation" (fun () ->
        match Exporter.validate_chrome_string golden_chrome with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
    t "validator rejects mismatched and unclosed spans" (fun () ->
        let doc evs =
          Json.to_string
            (Json.Obj [ ("traceEvents", Json.Arr evs) ])
        in
        let span ph name =
          Json.Obj
            [
              ("name", Json.Str name); ("ph", Json.Str ph);
              ("pid", Json.Num 1.); ("tid", Json.Num 0.); ("ts", Json.Num 1.);
            ]
        in
        (match
           Exporter.validate_chrome_string
             (doc [ span "B" "a"; span "E" "b" ])
         with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "accepted E closing the wrong span");
        match Exporter.validate_chrome_string (doc [ span "B" "a" ]) with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "accepted an unclosed span");
    t "nil sink drops everything, tee feeds both" (fun () ->
        Sink.span_begin Sink.nil ~pid:1 ~tid:0 ~ts:0. "x";
        Sink.span_end Sink.nil ~pid:1 ~tid:0 ~ts:1. "x";
        let r1 = Exporter.recorder () and r2 = Exporter.recorder () in
        let s = Sink.tee (Exporter.sink r1) (Exporter.sink r2) in
        Sink.instant s ~pid:1 ~tid:0 ~ts:0. "hello";
        Alcotest.(check int) "r1" 1 (Exporter.event_count r1);
        Alcotest.(check int) "r2" 1 (Exporter.event_count r2));
  ]

(* ------------------------------------------------------------------ *)
(* Metrics: golden JSONL                                               *)

let golden_metrics =
  String.concat "\n"
    [
      {|{"name":"lat","labels":{},"type":"histogram","count":2,"sum":4,"min":1,"max":3,"mean":2}|};
      {|{"name":"mpi.calls","labels":{"op":"MPI_Send"},"type":"counter","value":3}|};
      {|{"name":"trace.input_rsds","labels":{},"type":"gauge","value":42}|};
      "";
    ]

let metrics_tests =
  [
    t "jsonl dump matches golden and sorts by (name, labels)" (fun () ->
        let m = Metrics.create () in
        Metrics.set m "trace.input_rsds" 42.;
        Metrics.inc m ~labels:[ ("op", "MPI_Send") ] ~by:3 "mpi.calls";
        Metrics.observe m "lat" 1.0;
        Metrics.observe m "lat" 3.0;
        Alcotest.(check string) "golden" golden_metrics (Metrics.to_jsonl m));
    t "every dumped line re-parses" (fun () ->
        let m = Metrics.create () in
        Metrics.inc m ~labels:[ ("b", "2"); ("a", "1") ] "c";
        Metrics.set m "g" 1.5;
        Metrics.observe m "h" 7.;
        String.split_on_char '\n' (Metrics.to_jsonl m)
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun l -> ignore (Metrics.line_of_string l)));
    t "label order does not split instruments" (fun () ->
        let m = Metrics.create () in
        Metrics.inc m ~labels:[ ("a", "1"); ("b", "2") ] "c";
        Metrics.inc m ~labels:[ ("b", "2"); ("a", "1") ] "c";
        Alcotest.(check (option int))
          "merged" (Some 2)
          (Metrics.counter_value m ~labels:[ ("a", "1"); ("b", "2") ] "c"));
    t "merge_into adds counters, overwrites gauges, merges histograms"
      (fun () ->
        let a = Metrics.create () and b = Metrics.create () in
        Metrics.inc a ~by:2 "c";
        Metrics.inc b ~by:5 "c";
        Metrics.set a "g" 1.;
        Metrics.set b "g" 9.;
        Metrics.observe a "h" 1.;
        Metrics.observe b "h" 3.;
        Metrics.merge_into a b;
        Alcotest.(check (option int)) "counter" (Some 7) (Metrics.counter_value a "c");
        Alcotest.(check (option (float 0.))) "gauge" (Some 9.) (Metrics.gauge_value a "g");
        match Metrics.histogram_stats a "h" with
        | Some (count, sum, _, _, _) ->
            Alcotest.(check int) "hist count" 2 count;
            Alcotest.(check (float 1e-9)) "hist sum" 4. sum
        | None -> Alcotest.fail "histogram lost in merge");
  ]

(* ------------------------------------------------------------------ *)
(* Hooks: compose ordering, observer bridge, collective completions    *)

let hooks_tests =
  [
    t "compose runs a's callback before b's at every point" (fun () ->
        let log = ref [] in
        let mk tag =
          {
            Mpisim.Hooks.nil with
            on_fault = (fun ~time:_ _ -> log := (tag ^ "fault") :: !log);
            on_collective_complete =
              (fun ~time:_ ~comm:_ ~name:_ ~participants:_ ->
                log := (tag ^ "coll") :: !log);
          }
        in
        let h = Mpisim.Hooks.compose (mk "a.") (mk "b.") in
        h.on_fault ~time:0.
          (Mpisim.Hooks.F_drop { src = 0; dst = 1; bytes = 8; attempt = 0 });
        h.on_collective_complete ~time:0. ~comm:0 ~name:"MPI_Barrier"
          ~participants:[| 0 |];
        Alcotest.(check (list string))
          "order"
          [ "a.fault"; "b.fault"; "a.coll"; "b.coll" ]
          (List.rev !log));
    t "observer bridges faults and collectives into instants" (fun () ->
        let r = Exporter.recorder () in
        let h = Mpisim.Hooks.observer (Exporter.sink r) in
        h.on_fault ~time:2e-6
          (Mpisim.Hooks.F_drop { src = 1; dst = 0; bytes = 64; attempt = 0 });
        h.on_collective_complete ~time:3e-6 ~comm:0 ~name:"MPI_Barrier"
          ~participants:[| 0; 1 |];
        let names =
          List.filter_map
            (function
              | Sink.Instant { name; ts; _ } -> Some (name, ts)
              | _ -> None)
            (Exporter.events r)
        in
        Alcotest.(check (list (pair string (float 1e-9))))
          "instants (virtual microseconds)"
          [ ("fault.drop", 2.); ("collective.MPI_Barrier", 3.) ]
          names);
    t "observer of a disabled sink is nil" (fun () ->
        let h = Mpisim.Hooks.observer Sink.nil in
        Alcotest.(check bool) "nil" true (h == Mpisim.Hooks.nil));
    t "engine fires on_collective_complete once per operation" (fun () ->
        let completions = ref [] in
        let hook =
          {
            Mpisim.Hooks.nil with
            on_collective_complete =
              (fun ~time:_ ~comm:_ ~name ~participants ->
                completions := (name, Array.length participants) :: !completions);
          }
        in
        let nranks = 4 in
        let s1 = Mpisim.Mpi.site __POS__ and s2 = Mpisim.Mpi.site __POS__ in
        let s3 = Mpisim.Mpi.site __POS__ in
        let app (ctx : Mpisim.Mpi.ctx) =
          Mpisim.Mpi.barrier ~site:s1 ctx;
          Mpisim.Mpi.allreduce ~site:s2 ctx ~bytes:8;
          Mpisim.Mpi.finalize ~site:s3 ctx
        in
        ignore (Mpisim.Mpi.run ~hooks:[ hook ] ~nranks app);
        let count name =
          List.length (List.filter (fun (n, _) -> n = name) !completions)
        in
        Alcotest.(check int) "one barrier" 1 (count "MPI_Barrier");
        Alcotest.(check int) "one allreduce" 1 (count "MPI_Allreduce");
        List.iter
          (fun (name, p) ->
            Alcotest.(check int) (name ^ " participants") nranks p)
          !completions);
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline spans and engine samples                                   *)

let ring_app (ctx : Mpisim.Mpi.ctx) =
  let n = ctx.nranks in
  for _ = 1 to 5 do
    let r =
      Mpisim.Mpi.irecv ctx ~src:(Mpisim.Call.Rank ((ctx.rank + n - 1) mod n))
        ~bytes:1024
    in
    let s = Mpisim.Mpi.isend ctx ~dst:((ctx.rank + 1) mod n) ~bytes:1024 in
    ignore (Mpisim.Mpi.waitall ctx [ r; s ]);
    Mpisim.Mpi.compute ctx 1e-6
  done;
  Mpisim.Mpi.finalize ctx

let run_instrumented () =
  let r = Exporter.recorder () in
  let cfg = { Pipeline.default with obs = Exporter.sink r } in
  match Pipeline.run cfg (Pipeline.From_app { nranks = 4; app = ring_app }) with
  | Ok (a, _) -> (r, a)
  | Error e -> Alcotest.fail (Pipeline.error_to_string e)

let span_tests =
  [
    t "every pipeline stage opens a span; trace validates" (fun () ->
        let r, _ = run_instrumented () in
        let doc = Exporter.to_chrome r in
        (match Exporter.validate_chrome doc with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
        let names = Exporter.span_names doc in
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (stage ^ " span present") true (List.mem stage names))
          [ "trace"; "align"; "wildcard"; "codegen" ]);
    t "engine emits per-rank and global counter samples" (fun () ->
        let r, _ = run_instrumented () in
        let counters =
          List.filter_map
            (function Sink.Counter { name; _ } -> Some name | _ -> None)
            (Exporter.events r)
        in
        Alcotest.(check bool) "queues" true (List.mem "queues" counters);
        Alcotest.(check bool) "engine" true (List.mem "engine" counters));
    t "same-seed instrumented runs export byte-identical traces" (fun () ->
        let r1, _ = run_instrumented () and r2, _ = run_instrumented () in
        Alcotest.(check string)
          "chrome" (Exporter.to_chrome_string r1) (Exporter.to_chrome_string r2));
    t "same-seed runs dump byte-identical metrics" (fun () ->
        let _, a1 = run_instrumented () and _, a2 = run_instrumented () in
        Alcotest.(check string)
          "jsonl" (Metrics.to_jsonl a1.Pipeline.metrics)
          (Metrics.to_jsonl a2.Pipeline.metrics));
    t "From_app populates simulator and mpiP metrics" (fun () ->
        let _, a = run_instrumented () in
        let m = a.Pipeline.metrics in
        (match Metrics.counter_value m "sim.events" with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.fail "sim.events missing");
        match Metrics.counter_value m ~labels:[ ("op", "MPI_Isend") ] "mpi.calls" with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.fail "mpi.calls{op=MPI_Isend} missing");
    t "validate appends fidelity metrics and spans" (fun () ->
        let r, a = run_instrumented () in
        let cfg = { Pipeline.default with obs = Exporter.sink r } in
        let fid = Pipeline.validate cfg ~nranks:4 ring_app a in
        Alcotest.(check bool)
          "error is finite" true (Float.is_finite fid.Pipeline.f_error_pct);
        (match Metrics.gauge_value a.Pipeline.metrics "fidelity.error_pct" with
        | Some _ -> ()
        | None -> Alcotest.fail "fidelity.error_pct gauge missing");
        let names = Exporter.span_names (Exporter.to_chrome r) in
        List.iter
          (fun stage ->
            Alcotest.(check bool)
              (stage ^ " span present") true (List.mem stage names))
          [ "replay"; "compare" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Differential: deprecated wrappers vs Pipeline.run with a nil sink   *)

let differential_tests =
  [
    t "generate_checked = Pipeline.run From_trace, whole app registry"
      (fun () ->
        List.iter
          (fun (app : Apps.Registry.app) ->
            let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
            let trace, _ =
              Scalatrace.Tracer.trace_run ~nranks (app.program ())
            in
            let old_r = Benchgen.generate_checked ~name:app.name trace in
            let new_r =
              Pipeline.run
                { Pipeline.default with name = Some app.name }
                (Pipeline.From_trace trace)
            in
            match (old_r, new_r) with
            | Ok (rep, ws), Ok (a, ws') ->
                Alcotest.(check string)
                  (app.name ^ ": text") rep.Benchgen.text a.Pipeline.report.text;
                Alcotest.(check int)
                  (app.name ^ ": warnings") (List.length ws) (List.length ws')
            | Error e, Error e' ->
                Alcotest.(check string)
                  (app.name ^ ": error")
                  (Benchgen.error_to_string e)
                  (Pipeline.error_to_string e')
            | _ -> Alcotest.failf "%s: wrapper and pipeline disagree" app.name)
          Apps.Registry.all);
    t "from_app = Pipeline.run From_app" (fun () ->
        let report, outcome = Benchgen.from_app ~name:"ring" ~nranks:4 ring_app in
        match
          Pipeline.run
            { Pipeline.default with name = Some "ring" }
            (Pipeline.From_app { nranks = 4; app = ring_app })
        with
        | Ok (a, _) ->
            Alcotest.(check string) "text" report.Benchgen.text a.Pipeline.report.text;
            let o = Option.get a.Pipeline.trace_outcome in
            Alcotest.(check int)
              "events" outcome.Mpisim.Engine.events o.Mpisim.Engine.events;
            Alcotest.(check (float 1e-12))
              "elapsed" outcome.Mpisim.Engine.elapsed o.Mpisim.Engine.elapsed
        | Error e -> Alcotest.fail (Pipeline.error_to_string e));
    t "wrappers pin coll_alg to the monolithic default" (fun () ->
        (* The removal schedule (benchgen.mli) freezes the wrappers: they
           gain no new config knobs, so they must behave exactly like a
           pipeline pinned to the `Monolithic default — even while other
           configs select schedule strategies. *)
        Alcotest.(check string)
          "default is monolithic" "monolithic"
          (Mpisim.Coll_alg.name Pipeline.default.coll_alg);
        let report, outcome = Benchgen.from_app ~name:"ring" ~nranks:4 ring_app in
        match
          Pipeline.run
            { Pipeline.default with name = Some "ring"; coll_alg = `Monolithic }
            (Pipeline.From_app { nranks = 4; app = ring_app })
        with
        | Ok (a, _) ->
            Alcotest.(check string)
              "text" report.Benchgen.text a.Pipeline.report.text;
            let o = Option.get a.Pipeline.trace_outcome in
            Alcotest.(check (float 1e-12))
              "elapsed" outcome.Mpisim.Engine.elapsed o.Mpisim.Engine.elapsed
        | Error e -> Alcotest.fail (Pipeline.error_to_string e));
    t "generate raises the documented exception on deadlock input" (fun () ->
        (* Figure 5's latent-deadlock shape: the wrapper must surface the
           same exception the historical API threw. *)
        let f1 = Mpisim.Mpi.site __POS__ and f2 = Mpisim.Mpi.site __POS__ in
        let f3 = Mpisim.Mpi.site __POS__ and f4 = Mpisim.Mpi.site __POS__ in
        let fig5 (ctx : Mpisim.Mpi.ctx) =
          if ctx.rank = 0 then Mpisim.Mpi.compute ctx 1e-3;
          (if ctx.rank = 1 then begin
             ignore
               (Mpisim.Mpi.recv ~site:f1 ctx ~src:Mpisim.Call.Any_source ~bytes:8);
             ignore (Mpisim.Mpi.recv ~site:f2 ctx ~src:(Mpisim.Call.Rank 0) ~bytes:8)
           end
           else if ctx.rank = 0 || ctx.rank = 2 then
             Mpisim.Mpi.send ~site:f3 ctx ~dst:1 ~bytes:8);
          Mpisim.Mpi.finalize ~site:f4 ctx
        in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:3 fig5 in
        (match Benchgen.generate_checked ~strategy:`Traversal trace with
        | Error (Benchgen.E_potential_deadlock _) -> ()
        | Ok _ -> Alcotest.fail "generate_checked missed the deadlock"
        | Error e -> Alcotest.failf "wrong error: %s" (Benchgen.error_to_string e));
        match
          Pipeline.run
            { Pipeline.default with strategy = Some `Traversal }
            (Pipeline.From_trace trace)
        with
        | Error (Pipeline.E_potential_deadlock _) -> ()
        | Ok _ -> Alcotest.fail "Pipeline.run missed the deadlock"
        | Error e -> Alcotest.failf "wrong error: %s" (Pipeline.error_to_string e));
  ]

let suite =
  json_tests @ exporter_tests @ metrics_tests @ hooks_tests @ span_tests
  @ differential_tests
