(* End-to-end smoke test for `benchgen serve`: start the real server
   (fork isolation, real deadlines), submit a good job, a corrupt-trace
   job, and a guaranteed-hanging job (a FIFO with no writer blocks its
   worker in open(2) until the deadline kill), and assert that every
   line that comes back is a typed protocol response, each job resolves
   the way its class demands, and the server drains to exit 0.  Run
   once over stdio (end-of-input is an implicit drain) and once over a
   Unix-domain socket.

   Usage: serve_smoke.exe PATH-TO-BENCHGEN-CLI *)

module P = Serve.Protocol

let cli = Sys.argv.(1)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_smoke: FAIL: " ^ s);
      exit 1)
    fmt

(* a wedged server must fail the test, not hang the build *)
let () = ignore (Unix.alarm 120)

let run_quiet args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process args.(0) args Unix.stdin null Unix.stderr in
  Unix.close null;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "setup command failed: %s" (String.concat " " (Array.to_list args))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

let good_trace = "smoke-serve-good.trace"
let corrupt_trace = "smoke-serve-corrupt.trace"
let hang_fifo = "smoke-serve-hang.fifo"

let () =
  run_quiet [| cli; "trace"; "ring"; "-n"; "4"; "-o"; good_trace |];
  write_file corrupt_trace "this is not a trace\x00\xff garbage";
  (try Unix.unlink hang_fifo with Unix.Unix_error _ -> ());
  Unix.mkfifo hang_fifo 0o600

let submit_lines =
  [
    Printf.sprintf {|{"op":"submit","id":"good","trace":"%s"}|} good_trace;
    Printf.sprintf
      {|{"op":"submit","id":"bad","trace":"%s","max_retries":0,"escalate":false}|}
      corrupt_trace;
    Printf.sprintf
      {|{"op":"submit","id":"hang","trace":"%s","deadline_s":0.5,"max_retries":0}|}
      hang_fifo;
  ]

(* every line the server emits must re-parse as a typed response *)
let parse_all lines =
  List.map
    (fun line ->
      match P.response_of_line line with
      | r -> r
      | exception _ -> fail "untyped response line: %s" line)
    lines

let find_result id responses =
  let rec go = function
    | [] -> fail "no terminal response for job %S" id
    | (P.Result_ok { id = i; _ } as r) :: _ when i = id -> r
    | (P.Result_error { id = i; _ } as r) :: _ when i = id -> r
    | _ :: rest -> go rest
  in
  go responses

let check_jobs responses =
  (match find_result "good" responses with
  | P.Result_ok { attempts = 1; info; _ } ->
      if info.P.ok_statements <= 0 then fail "good job generated nothing"
  | r -> fail "good job did not succeed: %s" (P.response_to_line r));
  (match find_result "bad" responses with
  | P.Result_error { error; _ } ->
      if error.P.e_tag <> "trace_format" then
        fail "corrupt job: tag %S, wanted trace_format" error.P.e_tag;
      if error.P.e_path <> Some corrupt_trace then
        fail "corrupt job: error does not carry the input path"
  | r -> fail "corrupt job did not fail: %s" (P.response_to_line r));
  (match find_result "hang" responses with
  | P.Result_error { error; _ } ->
      if error.P.e_tag <> "deadline_exceeded" then
        fail "hanging job: tag %S, wanted deadline_exceeded" error.P.e_tag
  | r -> fail "hanging job was not killed: %s" (P.response_to_line r));
  match List.rev responses with
  | P.Drained _ :: _ -> ()
  | r :: _ -> fail "last response is not drained: %s" (P.response_to_line r)
  | [] -> fail "no responses at all"

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let wait_exit_0 what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "%s exited %d, wanted 0" what n
  | _ -> fail "%s died on a signal" what

(* ------------------------------------------------------------------ *)
(* 1. stdio mode: submissions on stdin, EOF is an implicit drain       *)

let () =
  (* cloexec: the server must NOT inherit the write end of its own stdin
     pipe, or closing it here would never deliver the EOF that triggers
     the implicit drain (create_process's dup2 onto fd 0/1 clears the
     flag on the ends the server should see) *)
  let in_r, in_w = Unix.pipe ~cloexec:true () in
  let out_r, out_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process cli [| cli; "serve" |] in_r out_w Unix.stderr
  in
  Unix.close in_r;
  Unix.close out_w;
  let oc = Unix.out_channel_of_descr in_w in
  List.iter (fun l -> output_string oc (l ^ "\n")) submit_lines;
  close_out oc;
  let ic = Unix.in_channel_of_descr out_r in
  let responses = parse_all (read_lines ic) in
  close_in ic;
  check_jobs responses;
  wait_exit_0 "stdio server" pid;
  prerr_endline "serve_smoke: stdio mode ok"

(* ------------------------------------------------------------------ *)
(* 2. socket mode: same jobs over a Unix-domain socket, explicit drain *)

let () =
  (* the FIFO was consumed structurally? no — no writer ever appeared,
     but the killed worker's open() may have been interrupted; the FIFO
     itself is untouched and reusable *)
  let sock_path = "smoke-serve.sock" in
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock_path |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec connect tries =
    match Unix.connect sock (Unix.ADDR_UNIX sock_path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.1;
        connect (tries - 1)
  in
  connect 100;
  let oc = Unix.out_channel_of_descr sock in
  let ic = Unix.in_channel_of_descr (Unix.dup sock) in
  List.iter (fun l -> output_string oc (l ^ "\n")) submit_lines;
  output_string oc "{\"op\":\"drain\"}\n";
  flush oc;
  Unix.shutdown sock Unix.SHUTDOWN_SEND;
  let responses = parse_all (read_lines ic) in
  close_in ic;
  close_out oc;
  check_jobs responses;
  wait_exit_0 "socket server" pid;
  if Sys.file_exists sock_path then fail "socket file not removed on exit";
  prerr_endline "serve_smoke: socket mode ok"

(* ------------------------------------------------------------------ *)
(* Helpers for the multi-connection sections                           *)

let connect_unix sock_path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect sock (Unix.ADDR_UNIX sock_path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.1;
        go (tries - 1)
  in
  go 100;
  (Unix.out_channel_of_descr sock, Unix.in_channel_of_descr (Unix.dup sock))

let send oc line =
  output_string oc (line ^ "\n");
  flush oc

let recv ic what =
  match input_line ic with
  | line -> (
      match P.response_of_line line with
      | r -> r
      | exception _ -> fail "%s: untyped response line: %s" what line)
  | exception End_of_file -> fail "%s: connection closed early" what

(* ------------------------------------------------------------------ *)
(* 3. multi-client: two connections, interleaved jobs, routed replies  *)

let () =
  let sock_path = "smoke-serve-multi.sock" in
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock_path; "--workers"; "2" |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  let a_oc, a_ic = connect_unix sock_path in
  let b_oc, b_ic = connect_unix sock_path in
  (* interleave: both jobs in flight before either client reads *)
  send a_oc (Printf.sprintf {|{"op":"submit","id":"a-good","trace":"%s"}|} good_trace);
  send b_oc
    (Printf.sprintf
       {|{"op":"submit","id":"b-bad","trace":"%s","max_retries":0,"escalate":false}|}
       corrupt_trace);
  (match recv b_ic "client b" with
  | P.Accepted { id = "b-bad"; _ } -> ()
  | r -> fail "client b: wanted its own accept, got %s" (P.response_to_line r));
  (match recv b_ic "client b" with
  | P.Result_error { id = "b-bad"; error; _ } ->
      if error.P.e_tag <> "trace_format" then
        fail "client b: tag %S, wanted trace_format" error.P.e_tag
  | r -> fail "client b: wanted its own error, got %s" (P.response_to_line r));
  (match recv a_ic "client a" with
  | P.Accepted { id = "a-good"; _ } -> ()
  | r -> fail "client a: wanted its own accept, got %s" (P.response_to_line r));
  (match recv a_ic "client a" with
  | P.Result_ok { id = "a-good"; _ } -> ()
  | r -> fail "client a: wanted its own result, got %s" (P.response_to_line r));
  close_out b_oc;
  close_in b_ic;
  send a_oc {|{"op":"drain"}|};
  (match recv a_ic "client a" with
  | P.Drained _ -> ()
  | r -> fail "client a: wanted drained, got %s" (P.response_to_line r));
  close_out a_oc;
  close_in a_ic;
  wait_exit_0 "multi-client server" pid;
  prerr_endline "serve_smoke: multi-client mode ok"

(* ------------------------------------------------------------------ *)
(* 4. TCP mode: --listen on port 0, per-connection inflight cap        *)

let () =
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [|
        cli; "serve"; "--listen"; "127.0.0.1:0"; "--max-inflight"; "1";
        "--workers"; "1";
      |]
      null Unix.stdout err_w
  in
  Unix.close null;
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  (* the server logs the bound port (we asked for port 0) *)
  let rec find_port () =
    match input_line err_ic with
    | line -> (
        match
          Scanf.sscanf_opt line "benchgen: serve: serve: listening on %s@:%d"
            (fun _host port -> port)
        with
        | Some port -> port
        | None -> find_port ())
    | exception End_of_file -> fail "server exited before announcing its port"
  in
  let port = find_port () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let oc = Unix.out_channel_of_descr sock in
  let ic = Unix.in_channel_of_descr (Unix.dup sock) in
  (* pipeline: a hanging job (unresolved) then a second submit, which
     must bounce off --max-inflight 1 with a typed rejection *)
  send oc
    (Printf.sprintf
       {|{"op":"submit","id":"hang","trace":"%s","deadline_s":0.5,"max_retries":0}|}
       hang_fifo);
  send oc (Printf.sprintf {|{"op":"submit","id":"good","trace":"%s"}|} good_trace);
  (match recv ic "tcp" with
  | P.Accepted { id = "hang"; _ } -> ()
  | r -> fail "tcp: wanted hang accepted, got %s" (P.response_to_line r));
  (match recv ic "tcp" with
  | P.Rejected { id = Some "good"; reason = P.Inflight_limit { limit = 1 } } ->
      ()
  | r -> fail "tcp: wanted inflight_limit reject, got %s" (P.response_to_line r));
  (match recv ic "tcp" with
  | P.Result_error { id = "hang"; error; _ } ->
      if error.P.e_tag <> "deadline_exceeded" then
        fail "tcp: hang tag %S, wanted deadline_exceeded" error.P.e_tag
  | r -> fail "tcp: wanted hang killed, got %s" (P.response_to_line r));
  (* the slot freed: the same submission is admitted now *)
  send oc (Printf.sprintf {|{"op":"submit","id":"good","trace":"%s"}|} good_trace);
  (match recv ic "tcp" with
  | P.Accepted { id = "good"; _ } -> ()
  | r -> fail "tcp: wanted good accepted, got %s" (P.response_to_line r));
  (match recv ic "tcp" with
  | P.Result_ok { id = "good"; _ } -> ()
  | r -> fail "tcp: wanted good ok, got %s" (P.response_to_line r));
  send oc {|{"op":"drain"}|};
  (match recv ic "tcp" with
  | P.Drained _ -> ()
  | r -> fail "tcp: wanted drained, got %s" (P.response_to_line r));
  close_out oc;
  close_in ic;
  wait_exit_0 "tcp server" pid;
  close_in err_ic;
  prerr_endline "serve_smoke: tcp mode ok"
