(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

(* Pipeline fuzzing: random *correct* SPMD programs are pushed through
   trace -> align -> wildcard -> codegen -> parse -> run, and the result
   must terminate with exactly the original point-to-point statistics.

   Programs are built from globally consistent phases so that the input
   itself can never deadlock; whatever the generator emits must then also
   run to completion — the paper's central "correctness" property. *)

open Mpisim

let t name f = Alcotest.test_case name `Quick f

let s_ring_r = Mpi.site __POS__
let s_ring_s = Mpi.site __POS__
let s_ring_w = Mpi.site __POS__
let s_all = Mpi.site __POS__
let s_bcast = Mpi.site __POS__
let s_gather = Mpi.site __POS__
let s_pair = Mpi.site __POS__
let s_fan_r = Mpi.site __POS__
let s_fan_s = Mpi.site __POS__
let s_sub = Mpi.site __POS__
let s_fin = Mpi.site __POS__
let s_a2a = Mpi.site __POS__

(* One phase per draw; every phase is collectively consistent. *)
let phase rng (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  let bytes = 64 * (1 + Util.Rng.int rng 64) in
  match Util.Rng.int rng 8 with
  | 0 ->
      (* ring exchange *)
      let offset = 1 + Util.Rng.int rng (n - 1) in
      (* concrete tag: an any-tag receive here could steal a tag-99
         fan-in message and make the program racy *)
      let r =
        Mpi.irecv ~site:s_ring_r ~tag:(Call.Tag 0) ctx
          ~src:(Call.Rank ((ctx.rank + n - offset) mod n))
          ~bytes
      in
      let s = Mpi.isend ~site:s_ring_s ctx ~dst:((ctx.rank + offset) mod n) ~bytes in
      ignore (Mpi.waitall ~site:s_ring_w ctx [ r; s ])
  | 1 -> Mpi.allreduce ~site:s_all ctx ~bytes
  | 2 -> Mpi.bcast ~site:s_bcast ctx ~root:(Util.Rng.int rng n) ~bytes
  | 3 -> Mpi.gather ~site:s_gather ctx ~root:(Util.Rng.int rng n) ~bytes_per_rank:bytes
  | 4 ->
      (* disjoint pairwise exchange (n even: pair 2k <-> 2k+1) *)
      let mate = if ctx.rank mod 2 = 0 then ctx.rank + 1 else ctx.rank - 1 in
      if mate < n then
        ignore
          (Mpi.sendrecv ~site:s_pair ctx ~dst:mate ~send_bytes:bytes
             ~src:(Call.Rank mate) ~recv_bytes:bytes)
  | 5 ->
      (* wildcard fan-in to a root, on its own tag channel as real codes
         do (cf. LU): source order is free, phase identity is not *)
      let root = Util.Rng.int rng n in
      if ctx.rank = root then
        for _ = 2 to n do
          ignore
            (Mpi.recv ~site:s_fan_r ~tag:(Call.Tag 99) ctx ~src:Call.Any_source ~bytes)
        done
      else begin
        Mpi.compute ctx (float_of_int ctx.rank *. 1e-6);
        Mpi.send ~site:s_fan_s ~tag:99 ctx ~dst:root ~bytes
      end
  | 6 ->
      (* collective on a subgroup, via a split communicator *)
      let c = Mpi.comm_split ~site:s_sub ctx ~color:(ctx.rank mod 2) ~key:ctx.rank in
      Mpi.allreduce ~site:s_sub ~comm:c ctx ~bytes
  | 7 -> Mpi.alltoall ~site:s_a2a ctx ~bytes_per_pair:(max 4 (bytes / n))
  | _ -> assert false

let random_app ~seed (ctx : Mpi.ctx) =
  let rng = Util.Rng.create ~seed in
  let phases = 2 + Util.Rng.int rng 6 in
  let reps = 1 + Util.Rng.int rng 3 in
  (* the same phase list on every rank: draw choices up front *)
  for _ = 1 to reps do
    let rng_phase = Util.Rng.create ~seed:(seed * 7919) in
    for _ = 1 to phases do
      phase rng_phase ctx;
      Mpi.compute ctx 5e-6
    done
  done;
  Mpi.finalize ~site:s_fin ctx

let p2p_stats prof =
  List.filter_map
    (fun (e : Mpip.entry) ->
      match e.op_name with
      | "MPI_Send" | "MPI_Isend" -> Some (`S, e.calls, e.bytes)
      | "MPI_Recv" | "MPI_Irecv" -> Some (`R, e.calls, e.bytes)
      | _ -> None)
    (Mpip.entries prof)
  |> List.fold_left
       (fun (sc, sb, rc, rb) -> function
         | `S, c, b -> (sc + c, sb + b, rc, rb)
         | `R, c, b -> (sc, sb, rc + c, rb + b))
       (0, 0, 0, 0)

let pipeline_never_hangs =
  QCheck.Test.make ~name:"pipeline output always runs, with exact p2p stats"
    ~count:40
    QCheck.(pair (int_range 1 100000) (int_range 2 12))
    (fun (seed, nranks) ->
      let app = random_app ~seed in
      let report, _ = Benchgen.from_app ~name:"fuzz" ~nranks app in
      (* the generated text must be a valid program *)
      let reparsed = Conceptual.Parse.program report.text in
      if not (Conceptual.Ast.equal report.program reparsed) then false
      else begin
        let prof_o = Mpip.create () and prof_g = Mpip.create () in
        ignore (Mpi.run ~hooks:[ Mpip.hook prof_o ] ~nranks app);
        match Conceptual.Lower.run ~hooks:[ Mpip.hook prof_g ] ~nranks reparsed with
        | exception Engine.Deadlock _ -> false
        | _ -> p2p_stats prof_o = p2p_stats prof_g
      end)

let determinism =
  QCheck.Test.make ~name:"whole pipeline is deterministic" ~count:10
    QCheck.(int_range 1 100000)
    (fun seed ->
      let run () =
        let report, o = Benchgen.from_app ~name:"fuzz" ~nranks:6 (random_app ~seed) in
        (report.text, o.elapsed)
      in
      run () = run ())

let timing_sanity =
  QCheck.Test.make ~name:"generated time within 50% on random programs" ~count:15
    QCheck.(pair (int_range 1 100000) (int_range 2 10))
    (fun (seed, nranks) ->
      let app = random_app ~seed in
      let report, orig = Benchgen.from_app ~name:"fuzz" ~nranks app in
      let res = Conceptual.Lower.run ~nranks report.program in
      orig.elapsed = 0.
      || Float.abs (res.outcome.elapsed -. orig.elapsed) /. orig.elapsed < 0.5)

let suite =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [ pipeline_never_hangs; determinism; timing_sanity ]
  @ [
      t "fuzz app itself is a correct MPI program" (fun () ->
          for seed = 1 to 20 do
            ignore (Mpi.run ~nranks:5 (random_app ~seed))
          done);
    ]
