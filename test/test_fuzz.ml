(* Pipeline fuzzing over the typed generator in lib/check.

   Random *correct* SPMD programs — deadlock-free by construction
   (Check.Gen) — are pushed through trace -> align -> wildcard -> codegen
   -> parse -> run, and the differential oracle (Check.Oracle) must
   accept every one: per-channel happens-before order and collective
   participant sets must survive the pipeline exactly — the paper's
   central "correctness" property.

   The ad-hoc phase generator this file used to carry lives on as the
   fixed corpus under corpus/ (exercised by test_check.ml). *)

open Mpisim
module Gen = Check.Gen
module Oracle = Check.Oracle
module Pipeline = Benchgen.Pipeline

let t name f = Alcotest.test_case name `Quick f

let pipeline_of prog =
  Pipeline.run
    { Pipeline.default with name = Some "fuzz" }
    (Pipeline.From_app { nranks = prog.Gen.nranks; app = Gen.to_app prog })

let oracle_accepts =
  QCheck.Test.make ~name:"oracle accepts every generated program" ~count:40
    QCheck.(int_range 1 100000)
    (fun seed ->
      let prog = Gen.generate ~seed in
      match Oracle.check prog with
      | Ok _ -> true
      | Error v ->
          QCheck.Test.fail_reportf "seed %d: %s" seed (Oracle.to_string v))

let determinism =
  QCheck.Test.make ~name:"whole pipeline is deterministic" ~count:10
    QCheck.(int_range 1 100000)
    (fun seed ->
      let prog = Gen.generate ~seed in
      let run () =
        match pipeline_of prog with
        | Ok (a, _) ->
            ( a.Pipeline.report.text,
              Option.map
                (fun (o : Engine.outcome) -> o.elapsed)
                a.Pipeline.trace_outcome )
        | Error e -> (Pipeline.error_to_string e, None)
      in
      run () = run ())

(* Timing is only sanity-checked here, with a constant-factor bound:
   the generator deliberately exercises the Table 1 substitutions
   (allgather becomes reduce + multicast, gather becomes reduce, ...)
   and wildcard pinning, both of which change the cost model while
   preserving semantics.  Tight (< 50%) timing fidelity on realistic
   applications is test_timing.ml's job. *)
let timing_sanity =
  QCheck.Test.make ~name:"generated time within 5x on adversarial programs"
    ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let prog = Gen.generate ~seed in
      match pipeline_of prog with
      | Error e -> QCheck.Test.fail_reportf "%s" (Pipeline.error_to_string e)
      | Ok (a, _) ->
          let orig = Option.get a.Pipeline.trace_outcome in
          let res =
            Conceptual.Lower.run ~nranks:prog.Gen.nranks a.Pipeline.report.program
          in
          let gen = res.outcome.elapsed in
          orig.elapsed = 0.
          || (gen <= 5. *. orig.elapsed && orig.elapsed <= 5. *. gen))

let suite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [ oracle_accepts; determinism; timing_sanity ]
  @ [
      t "generated programs are correct MPI programs" (fun () ->
          for seed = 1 to 20 do
            let prog = Gen.generate ~seed in
            ignore (Mpi.run ~nranks:prog.Gen.nranks (Gen.to_app prog))
          done);
    ]
