open Mpisim
open Scalatrace

let t name f = Alcotest.test_case name `Quick f

let s1 = Mpi.site __POS__
let s2 = Mpi.site __POS__
let s3 = Mpi.site __POS__
let s4 = Mpi.site __POS__
let s5 = Mpi.site __POS__

(* ---------------------------------------------------------------- *)
(* Algorithm 1: collective alignment                                  *)

let align_tests =
  [
    t "merges per-branch barrier call sites (paper Figure 3)" (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then Mpi.barrier ~site:s1 ctx else Mpi.barrier ~site:s2 ctx);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:2 prog in
        Alcotest.(check bool) "unaligned before" true
          (Trace.has_unaligned_collectives trace);
        let aligned = Benchgen.Align.run trace in
        Alcotest.(check bool) "aligned after" false
          (Trace.has_unaligned_collectives aligned);
        (* exactly one barrier RSD with both ranks *)
        let barriers = ref 0 in
        Tnode.iter_leaves
          (fun e ->
            if e.Event.kind = Event.E_barrier then begin
              incr barriers;
              Alcotest.(check (list int)) "all ranks" [ 0; 1 ]
                (Util.Rank_set.to_list e.Event.ranks)
            end)
          (Trace.nodes aligned);
        Alcotest.(check int) "one barrier RSD" 1 !barriers);
    t "preserves per-rank event order and counts" (fun () ->
        let prog (ctx : Mpi.ctx) =
          for _ = 1 to 3 do
            if ctx.rank mod 2 = 0 then begin
              Mpi.send ~site:s1 ctx ~dst:(ctx.rank + 1) ~bytes:10;
              Mpi.allreduce ~site:s2 ctx ~bytes:8
            end
            else begin
              ignore (Mpi.recv ~site:s3 ctx ~src:(Call.Rank (ctx.rank - 1)) ~bytes:10);
              Mpi.allreduce ~site:s4 ctx ~bytes:8
            end
          done;
          Mpi.finalize ~site:s5 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        let aligned = Benchgen.Align.run trace in
        for r = 0 to 3 do
          Alcotest.(check int)
            (Printf.sprintf "rank %d" r)
            (Tnode.event_count_for (Trace.project trace ~rank:r) ~rank:r)
            (Tnode.event_count_for (Trace.project aligned ~rank:r) ~rank:r)
        done);
    t "aligns collectives on subcommunicators" (fun () ->
        let prog (ctx : Mpi.ctx) =
          let c = Mpi.comm_split ~site:s1 ctx ~color:(ctx.rank mod 2) ~key:ctx.rank in
          (if ctx.rank < 2 then Mpi.barrier ~site:s2 ~comm:c ctx
           else Mpi.barrier ~site:s3 ~comm:c ctx);
          Mpi.finalize ~site:s4 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        let aligned, ran = Benchgen.Align.align_if_needed trace in
        Alcotest.(check bool) "ran" true ran;
        Alcotest.(check bool) "clean" false (Trace.has_unaligned_collectives aligned));
    t "pre-check skips aligned traces" (fun () ->
        let prog (ctx : Mpi.ctx) =
          Mpi.barrier ~site:s1 ctx;
          Mpi.finalize ~site:s2 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        let _, ran = Benchgen.Align.align_if_needed trace in
        Alcotest.(check bool) "skipped" false ran);
    t "detects collective kind mismatch" (fun () ->
        (* build a broken trace by hand: rank 0 calls barrier where rank 1
           calls allreduce at the same slot; the engine would reject this
           at run time, so assemble the trace directly *)
        let mk kind rank =
          let h = Util.Histogram.create () in
          Util.Histogram.add h 0.;
          Tnode.Leaf
            {
              Event.site = (if rank = 0 then s1 else s2);
              kind; peer = Event.P_none; bytes = 8; vec = None; tag = 0; comm = 0;
              parts = None; dtime = h; ranks = Util.Rank_set.singleton rank; hcache = 0;
            }
        in
        let fin rank =
          let h = Util.Histogram.create () in
          Util.Histogram.add h 0.;
          Tnode.Leaf
            {
              Event.site = s5; kind = Event.E_finalize; peer = Event.P_none;
              bytes = 0; vec = None; tag = 0; comm = 0; parts = None; dtime = h;
              ranks = Util.Rank_set.singleton rank; hcache = 0;
            }
        in
        let trace =
          Trace.make ~nranks:2
            ~comms:[ (0, Util.Rank_set.all 2) ]
            ~nodes:
              [ mk Event.E_barrier 0; mk Event.E_allreduce 1; fin 0; fin 1 ]
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Align.run trace);
             false
           with Benchgen.Align.Align_error _ -> true));
  ]

(* ---------------------------------------------------------------- *)
(* Algorithm 2: wildcard resolution                                   *)

let wildcard_tests =
  [
    t "resolves wildcards to concrete senders" (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then
             for _ = 1 to 2 do
               ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:16)
             done
           else Mpi.send ~site:s2 ctx ~dst:0 ~bytes:16);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:3 prog in
        Alcotest.(check bool) "wild before" true (Trace.has_wildcards trace);
        let resolved = Benchgen.Wildcard.run trace in
        Alcotest.(check bool) "resolved" false (Trace.has_wildcards resolved));
    t "resolution conserves per-pair message counts" (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then
             for _ = 1 to 6 do
               ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:16)
             done
           else begin
             Mpi.compute ctx (float_of_int ctx.rank *. 1e-4);
             for _ = 1 to 2 do
               Mpi.send ~site:s2 ctx ~dst:0 ~bytes:16
             done
           end);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        let resolved = Benchgen.Wildcard.run trace in
        (* count resolved receives per source *)
        let per_src = Hashtbl.create 4 in
        let rec walk cursor =
          match Benchgen.Traversal.peek cursor with
          | None -> ()
          | Some (e, after) ->
              (match (e.Event.kind, Event.peer_of e ~rank:0 ~nranks:4) with
              | Event.E_recv, Some src ->
                  Hashtbl.replace per_src src
                    (1 + Option.value ~default:0 (Hashtbl.find_opt per_src src))
              | _ -> ());
              walk after
        in
        walk (Benchgen.Traversal.start (Trace.project resolved ~rank:0));
        List.iter
          (fun src ->
            Alcotest.(check int)
              (Printf.sprintf "from %d" src)
              2
              (Option.value ~default:0 (Hashtbl.find_opt per_src src)))
          [ 1; 2; 3 ]);
    t "resolved trace replays without deadlock" (fun () ->
        let app = Option.get (Apps.Registry.find "lu") in
        let trace, _ =
          Tracer.trace_run ~nranks:6 (app.program ~cls:Apps.Params.S ())
        in
        let resolved = Benchgen.Wildcard.run trace in
        let r = Replay.run resolved in
        Alcotest.(check bool) "ran" true (r.outcome.elapsed > 0.));
    t "timed strategy matches an actual execution" (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then begin
             ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:16);
             ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:16)
           end
           else begin
             Mpi.compute ctx (float_of_int ctx.rank *. 1e-3);
             Mpi.send ~site:s2 ctx ~dst:0 ~bytes:16
           end);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:3 prog in
        let resolved = Benchgen.Wildcard.run ~strategy:`Timed trace in
        Alcotest.(check bool) "no wildcards" false (Trace.has_wildcards resolved));
    t "detects the paper's Figure 5 deadlock" (fun () ->
        let prog (ctx : Mpi.ctx) =
          if ctx.rank = 0 then Mpi.compute ctx 1e-3;
          (if ctx.rank = 1 then begin
             ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:8);
             ignore (Mpi.recv ~site:s2 ctx ~src:(Call.Rank 0) ~bytes:8)
           end
           else if ctx.rank = 0 || ctx.rank = 2 then Mpi.send ~site:s3 ctx ~dst:1 ~bytes:8);
          Mpi.finalize ~site:s4 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:3 prog in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Wildcard.run ~strategy:`Traversal trace);
             false
           with Benchgen.Wildcard.Potential_deadlock _ -> true));
    t "pre-check skips wildcard-free traces" (fun () ->
        let prog (ctx : Mpi.ctx) =
          Mpi.barrier ~site:s1 ctx;
          Mpi.finalize ~site:s2 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:2 prog in
        let _, ran = Benchgen.Wildcard.resolve_if_needed trace in
        Alcotest.(check bool) "skipped" false ran);
    t "per-instance resolution splits alternating sources" (fun () ->
        (* rank 0 receives alternately from 1 and 2 in a loop; the resolved
           trace must give each source half the instances *)
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then
             for _ = 1 to 8 do
               ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:16)
             done
           else
             for _ = 1 to 4 do
               Mpi.compute ctx 1e-4;
               Mpi.send ~site:s2 ctx ~dst:0 ~bytes:16
             done);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:3 prog in
        let resolved = Benchgen.Wildcard.run trace in
        let count src =
          let n = ref 0 in
          let rec walk cursor =
            match Benchgen.Traversal.peek cursor with
            | None -> ()
            | Some (e, after) ->
                (if e.Event.kind = Event.E_recv
                    && Event.peer_of e ~rank:0 ~nranks:3 = Some src
                 then incr n);
                walk after
          in
          walk (Benchgen.Traversal.start (Trace.project resolved ~rank:0));
          !n
        in
        Alcotest.(check int) "from 1" 4 (count 1);
        Alcotest.(check int) "from 2" 4 (count 2));
  ]

(* ---------------------------------------------------------------- *)
(* Collective mapping (Table 1)                                       *)

let map_tests =
  let mk kind ?(peer = Event.P_none) ?(bytes = 100) ?vec () =
    let h = Util.Histogram.create () in
    Util.Histogram.add h 0.;
    {
      Event.site = s1; kind; peer; bytes; vec; tag = 0; comm = 0; parts = None;
      dtime = h; ranks = Util.Rank_set.all 4; hcache = 0;
    }
  in
  [
    t "barrier -> sync" (fun () ->
        Alcotest.(check bool) "sync" true
          (Benchgen.Collective_map.map ~p:4 (mk Event.E_barrier ()) = T_sync));
    t "bcast -> multicast with root" (fun () ->
        match Benchgen.Collective_map.map ~p:4 (mk Event.E_bcast ~peer:(Event.P_abs 2) ()) with
        | Benchgen.Collective_map.T_multicast { root = 2; bytes = 100 } -> ()
        | _ -> Alcotest.fail "wrong mapping");
    t "allreduce -> reduce to all" (fun () ->
        match Benchgen.Collective_map.map ~p:4 (mk Event.E_allreduce ()) with
        | Benchgen.Collective_map.T_reduce_all { bytes = 100 } -> ()
        | _ -> Alcotest.fail "wrong mapping");
    t "gatherv -> reduce with averaged size" (fun () ->
        match Benchgen.Collective_map.map ~p:4 (mk Event.E_gatherv ~peer:(Event.P_abs 0) ~bytes:100 ()) with
        | Benchgen.Collective_map.T_reduce { root = 0; bytes = 25 } -> ()
        | _ -> Alcotest.fail "wrong mapping");
    t "allgather -> reduce + multicast" (fun () ->
        match Benchgen.Collective_map.map ~p:4 (mk Event.E_allgather ~bytes:100 ()) with
        | Benchgen.Collective_map.T_reduce_multicast
            { reduce_bytes = 100; multicast_bytes = 400; _ } ->
            ()
        | _ -> Alcotest.fail "wrong mapping");
    t "alltoallv -> averaged exchange" (fun () ->
        match Benchgen.Collective_map.map ~p:4 (mk Event.E_alltoallv ~bytes:400 ()) with
        | Benchgen.Collective_map.T_alltoall { bytes = 100 } -> ()
        | _ -> Alcotest.fail "wrong mapping");
    t "reduce_scatter -> n reduces from vector" (fun () ->
        match
          Benchgen.Collective_map.map ~p:4
            (mk Event.E_reduce_scatter ~bytes:100 ~vec:[| 10; 20; 30; 40 |] ())
        with
        | Benchgen.Collective_map.T_reduce_per_member { bytes_per_member } ->
            Alcotest.(check (array int)) "vec" [| 10; 20; 30; 40 |] bytes_per_member
        | _ -> Alcotest.fail "wrong mapping");
    t "comm management skipped" (fun () ->
        Alcotest.(check bool) "skip" true
          (Benchgen.Collective_map.map ~p:4 (mk Event.E_comm_dup ()) = T_skip));
    t "p2p rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Collective_map.map ~p:4 (mk Event.E_send ()));
             false
           with Benchgen.Collective_map.Unmappable _ -> true));
    t "table has the paper's 8 rows plus the 2 neighborhood extensions"
      (fun () ->
        Alcotest.(check int) "rows" 10 (List.length Benchgen.Collective_map.table);
        List.iter
          (fun name ->
            Alcotest.(check bool) (name ^ " present") true
              (List.mem_assoc name Benchgen.Collective_map.table))
          [ "Neighbor_alltoall"; "Neighbor_allgather" ]);
  ]

let suite = align_tests @ wildcard_tests @ map_tests
