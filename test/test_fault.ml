(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

(* Fault injection, watchdog, and graceful-degradation tests. *)

open Mpisim

let t name f = Alcotest.test_case name `Quick f

let fin ctx = Mpi.finalize ctx

(* an 8-rank ring with some compute: enough traffic for the fault
   machinery to bite, small enough to run many times *)
let ring (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  for _ = 1 to 10 do
    let r = Mpi.irecv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes:2048 in
    let s = Mpi.isend ctx ~dst:((ctx.rank + 1) mod n) ~bytes:2048 in
    ignore (Mpi.waitall ctx [ r; s ]);
    Mpi.compute ctx 1e-5
  done;
  fin ctx

let plan_tests =
  [
    t "make validates its knobs" (fun () ->
        let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
        Alcotest.(check bool) "drop_prob > 1" true
          (rejects (fun () -> Fault.make ~seed:1 ~drop_prob:1.5 ()));
        Alcotest.(check bool) "drop_prob = 1" true
          (rejects (fun () -> Fault.make ~seed:1 ~drop_prob:1.0 ()));
        Alcotest.(check bool) "negative jitter" true
          (rejects (fun () -> Fault.make ~seed:1 ~jitter_mean:(-1.) ()));
        Alcotest.(check bool) "backoff < 1" true
          (rejects (fun () -> Fault.make ~seed:1 ~backoff:0.5 ()));
        Alcotest.(check bool) "negative retries" true
          (rejects (fun () -> Fault.make ~seed:1 ~max_retries:(-1) ()));
        Alcotest.(check bool) "bad window" true
          (rejects (fun () ->
               Fault.make ~seed:1
                 ~windows:
                   [ { Fault.w_from = 2.; w_until = 1.;
                       w_latency_factor = 1.; w_bandwidth_factor = 1. } ]
                 ())));
    t "none is a noop, a perturbing plan is not" (fun () ->
        Alcotest.(check bool) "none" true (Fault.is_noop Fault.none);
        Alcotest.(check bool) "seeded but inert" true
          (Fault.is_noop (Fault.make ~seed:7 ()));
        Alcotest.(check bool) "jitter" false
          (Fault.is_noop (Fault.make ~seed:7 ~jitter_mean:1e-6 ())));
    t "degradation windows compound" (fun () ->
        let w a b lf bf =
          { Fault.w_from = a; w_until = b; w_latency_factor = lf;
            w_bandwidth_factor = bf }
        in
        let plan =
          Fault.make ~seed:1 ~windows:[ w 1. 3. 2. 0.5; w 2. 4. 3. 1. ] ()
        in
        let check now want_l want_b =
          let l, b = Fault.degradation plan ~now in
          Alcotest.(check (float 1e-9)) "latency factor" want_l l;
          Alcotest.(check (float 1e-9)) "bandwidth factor" want_b b
        in
        check 0.5 1. 1.;
        check 1.5 2. 0.5;
        check 2.5 6. 0.5;
        (* overlap: 2 * 3 *)
        check 3.5 3. 1.;
        check 4.5 1. 1.);
    t "retransmission timeout backs off exponentially" (fun () ->
        let plan =
          Fault.make ~seed:1 ~retrans_timeout:1e-3 ~backoff:2. ~drop_prob:0.1 ()
        in
        Alcotest.(check (float 1e-12)) "attempt 0" 1e-3
          (Fault.timeout_after plan ~attempt:0);
        Alcotest.(check (float 1e-12)) "attempt 3" 8e-3
          (Fault.timeout_after plan ~attempt:3));
  ]

let determinism_tests =
  [
    t "same seed, same plan: bit-identical outcome" (fun () ->
        let fault =
          Fault.make ~seed:42 ~jitter_mean:2e-6 ~drop_prob:0.2 ~os_noise:0.05 ()
        in
        let a = Mpi.run ~fault ~nranks:8 ring in
        let b = Mpi.run ~fault ~nranks:8 ring in
        Alcotest.(check (float 0.)) "elapsed" a.elapsed b.elapsed;
        Alcotest.(check int) "events" a.events b.events;
        Alcotest.(check int) "dropped" a.dropped b.dropped;
        Alcotest.(check int) "retries" a.retries b.retries;
        Alcotest.(check int) "timeouts" a.timeouts b.timeouts);
    t "different seeds: different jitter, same logical traffic" (fun () ->
        let plan seed = Fault.make ~seed ~jitter_mean:5e-6 () in
        let a = Mpi.run ~fault:(plan 1) ~nranks:8 ring in
        let b = Mpi.run ~fault:(plan 2) ~nranks:8 ring in
        Alcotest.(check bool) "elapsed differs" true (a.elapsed <> b.elapsed);
        Alcotest.(check int) "messages" a.messages b.messages;
        Alcotest.(check int) "bytes" a.p2p_bytes b.p2p_bytes);
    t "drops do not change logical message/byte counts" (fun () ->
        let clean = Mpi.run ~nranks:8 ring in
        let fault = Fault.make ~seed:9 ~drop_prob:0.3 () in
        let faulty = Mpi.run ~fault ~nranks:8 ring in
        Alcotest.(check int) "messages" clean.messages faulty.messages;
        Alcotest.(check int) "bytes" clean.p2p_bytes faulty.p2p_bytes;
        Alcotest.(check bool) "drops happened" true (faulty.dropped > 0);
        Alcotest.(check bool) "recovered by retransmission" true
          (faulty.retries > 0));
    t "clean run reports zero fault counters" (fun () ->
        let o = Mpi.run ~nranks:8 ring in
        Alcotest.(check int) "dropped" 0 o.dropped;
        Alcotest.(check int) "retries" 0 o.retries;
        Alcotest.(check int) "timeouts" 0 o.timeouts);
    t "jitter slows the run down" (fun () ->
        let clean = Mpi.run ~nranks:8 ring in
        let fault = Fault.make ~seed:3 ~jitter_mean:1e-4 () in
        let jittered = Mpi.run ~fault ~nranks:8 ring in
        Alcotest.(check bool) "slower" true (jittered.elapsed > clean.elapsed));
    t "degradation window slows transfers inside it" (fun () ->
        let fault =
          Fault.make ~seed:1
            ~windows:
              [ { Fault.w_from = 0.; w_until = 1e9; w_latency_factor = 10.;
                  w_bandwidth_factor = 0.1 } ]
            ()
        in
        let clean = Mpi.run ~nranks:8 ring in
        let slow = Mpi.run ~fault ~nranks:8 ring in
        Alcotest.(check bool) "slower" true (slow.elapsed > clean.elapsed));
    t "per-rank slowdown stretches compute" (fun () ->
        let app (ctx : Mpi.ctx) =
          Mpi.compute ctx 1.0;
          fin ctx
        in
        let clean = Mpi.run ~nranks:2 app in
        let fault = Fault.make ~seed:1 ~slowdown:[ (0, 3.) ] () in
        let slow = Mpi.run ~fault ~nranks:2 app in
        Alcotest.(check bool) "3x compute" true (slow.elapsed >= 3.0);
        Alcotest.(check bool) "clean is 1x" true (clean.elapsed < 2.0));
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let resilience_tests =
  [
    t "every paper app completes and generates under drops" (fun () ->
        List.iter
          (fun (app : Apps.Registry.app) ->
            let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
            let fault = Fault.make ~seed:11 ~drop_prob:0.05 ~jitter_mean:1e-6 () in
            let report, outcome =
              Benchgen.from_app ~name:app.name ~fault ~nranks
                (app.program ~cls:Apps.Params.S ())
            in
            Alcotest.(check bool)
              (app.name ^ " generates") true
              (report.Benchgen.statements > 0);
            Alcotest.(check bool)
              (app.name ^ " finished") true
              (outcome.Engine.elapsed > 0.))
          Apps.Registry.paper_suite);
    t "retry exhaustion raises Stalled naming the budget" (fun () ->
        let fault = Fault.make ~seed:1 ~drop_prob:0.99 ~max_retries:2 () in
        match
          Mpi.run ~fault ~nranks:2 (fun ctx ->
              (if ctx.rank = 0 then Mpi.send ctx ~dst:1 ~bytes:64
               else ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:64));
              fin ctx)
        with
        | _ -> Alcotest.fail "expected Stalled"
        | exception Engine.Stalled msg ->
            Alcotest.(check bool) "mentions the budget" true
              (contains ~sub:"retransmission budget exhausted" msg);
            Alcotest.(check bool) "names the endpoints" true
              (contains ~sub:"0->1" msg));
  ]

let watchdog_tests =
  [
    t "event budget turns a long run into Stalled" (fun () ->
        match Mpi.run ~max_events:50 ~nranks:8 ring with
        | _ -> Alcotest.fail "expected Stalled"
        | exception Engine.Stalled msg ->
            Alcotest.(check bool) "names the budget" true
              (contains ~sub:"event budget exhausted" msg);
            Alcotest.(check bool) "lists a rank" true (contains ~sub:"rank 0" msg));
    t "virtual-time budget turns a long run into Stalled" (fun () ->
        match
          Mpi.run ~max_virtual_time:0.5 ~nranks:1 (fun ctx ->
              for _ = 1 to 100 do
                Mpi.compute ctx 0.1
              done;
              fin ctx)
        with
        | _ -> Alcotest.fail "expected Stalled"
        | exception Engine.Stalled msg ->
            Alcotest.(check bool) "names the budget" true
              (contains ~sub:"virtual-time budget exhausted" msg));
    t "budgets are validated" (fun () ->
        let rejects f = try ignore (f ()); false with Engine.Mpi_error _ -> true in
        Alcotest.(check bool) "max_events 0" true
          (rejects (fun () -> Mpi.run ~max_events:0 ~nranks:1 fin));
        Alcotest.(check bool) "negative max_virtual_time" true
          (rejects (fun () -> Mpi.run ~max_virtual_time:(-1.) ~nranks:1 fin)));
    t "generous budgets leave the run untouched" (fun () ->
        let a = Mpi.run ~nranks:8 ring in
        let b = Mpi.run ~max_events:1_000_000 ~max_virtual_time:1e6 ~nranks:8 ring in
        Alcotest.(check (float 0.)) "elapsed" a.elapsed b.elapsed;
        Alcotest.(check int) "events" a.events b.events);
    t "deadlock diagnostic names each stuck rank and its call" (fun () ->
        match
          Mpi.run ~nranks:2 (fun ctx ->
              let peer = 1 - ctx.rank in
              ignore (Mpi.recv ctx ~src:(Call.Rank peer) ~bytes:8);
              fin ctx)
        with
        | _ -> Alcotest.fail "expected Deadlock"
        | exception Engine.Deadlock msg ->
            Alcotest.(check bool) "rank 0" true (contains ~sub:"rank 0" msg);
            Alcotest.(check bool) "rank 1" true (contains ~sub:"rank 1" msg);
            Alcotest.(check bool) "call" true (contains ~sub:"MPI_Recv" msg));
    t "missing finalize is a typed error" (fun () ->
        match Mpi.run ~nranks:1 (fun _ -> ()) with
        | _ -> Alcotest.fail "expected Mpi_error"
        | exception Engine.Mpi_error msg ->
            Alcotest.(check bool) "mentions finalize" true
              (contains ~sub:"MPI_Finalize" msg));
  ]

(* ---------------------------------------------------------------- *)
(* Trace_io robustness: truncated or corrupted input must surface as
   Format_error, never as an unhandled exception or a crash.          *)

let reference_trace_text () =
  let trace, _ = Scalatrace.Tracer.trace_run ~nranks:4 ring in
  Scalatrace.Trace_io.to_text trace

let parses_or_format_error text =
  match Scalatrace.Trace_io.of_text text with
  | _ -> true
  | exception Scalatrace.Trace_io.Format_error _ -> true
  | exception _ -> false

let trace_io_tests =
  [
    t "round trip of the reference trace" (fun () ->
        let text = reference_trace_text () in
        let trace = Scalatrace.Trace_io.of_text text in
        Alcotest.(check int) "nranks" 4 (Scalatrace.Trace.nranks trace));
    t "every truncation is Ok or Format_error" (fun () ->
        let text = reference_trace_text () in
        let n = String.length text in
        for cut = 0 to 60 do
          let len = cut * n / 60 in
          Alcotest.(check bool)
            (Printf.sprintf "prefix %d" len)
            true
            (parses_or_format_error (String.sub text 0 len))
        done);
    t "corrupted bytes are Ok or Format_error" (fun () ->
        let text = reference_trace_text () in
        let n = String.length text in
        let rng = Util.Rng.create ~seed:1234 in
        for _ = 1 to 200 do
          let pos = Util.Rng.int rng n in
          let b = Bytes.of_string text in
          Bytes.set b pos (Char.chr (Util.Rng.int rng 256));
          Alcotest.(check bool)
            (Printf.sprintf "corrupt @%d" pos)
            true
            (parses_or_format_error (Bytes.to_string b))
        done);
    t "corrupted lines are Ok or Format_error" (fun () ->
        let text = reference_trace_text () in
        let lines = String.split_on_char '\n' text in
        List.iteri
          (fun i _ ->
            let mutated =
              List.filteri (fun j _ -> j <> i) lines |> String.concat "\n"
            in
            Alcotest.(check bool)
              (Printf.sprintf "drop line %d" i)
              true
              (parses_or_format_error mutated))
          lines);
  ]

(* ---------------------------------------------------------------- *)
(* Checked generation and the noise-validation harness.               *)

let s1 = Mpi.site __POS__
let s2 = Mpi.site __POS__
let s3 = Mpi.site __POS__
let s4 = Mpi.site __POS__

(* the paper's Figure 5: rank 1's wildcard receive can consume rank 0's
   message, after which the second receive from rank 0 hangs *)
let figure5 (ctx : Mpi.ctx) =
  if ctx.rank = 0 then Mpi.compute ctx 1e-3;
  (if ctx.rank = 1 then begin
     ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:8);
     ignore (Mpi.recv ~site:s2 ctx ~src:(Call.Rank 0) ~bytes:8)
   end
   else if ctx.rank = 0 || ctx.rank = 2 then Mpi.send ~site:s3 ctx ~dst:1 ~bytes:8);
  Mpi.finalize ~site:s4 ctx

let checked_tests =
  [
    t "generate_checked: clean trace yields Ok with no warnings" (fun () ->
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:4 ring in
        match Benchgen.generate_checked trace with
        | Error e -> Alcotest.fail (Benchgen.error_to_string e)
        | Ok (report, warnings) ->
            Alcotest.(check bool) "has statements" true
              (report.Benchgen.statements > 0);
            Alcotest.(check int) "no warnings" 0 (List.length warnings));
    t "generate_checked: wildcard resolution is reported as a warning"
      (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then begin
             ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:8);
             ignore (Mpi.recv ~site:s2 ctx ~src:Call.Any_source ~bytes:8)
           end
           else begin
             Mpi.compute ctx (float_of_int ctx.rank *. 1e-3);
             Mpi.send ~site:s3 ctx ~dst:0 ~bytes:8
           end);
          Mpi.finalize ~site:s4 ctx
        in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:3 prog in
        match Benchgen.generate_checked trace with
        | Error e -> Alcotest.fail (Benchgen.error_to_string e)
        | Ok (report, warnings) ->
            Alcotest.(check bool) "resolved" true report.Benchgen.resolved;
            Alcotest.(check bool) "warned" true
              (List.mem Benchgen.W_wildcard_resolved warnings));
    t "generate_checked: Figure 5 comes back as a typed error" (fun () ->
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:3 figure5 in
        match Benchgen.generate_checked ~strategy:`Traversal trace with
        | Ok _ -> Alcotest.fail "expected E_potential_deadlock"
        | Error (Benchgen.E_potential_deadlock _) -> ()
        | Error e -> Alcotest.fail (Benchgen.error_to_string e));
    t "generate_checked_file: garbage file is E_trace_format" (fun () ->
        let path = Filename.temp_file "benchgen" ".trace" in
        let oc = open_out path in
        output_string oc "this is not a trace\n";
        close_out oc;
        let r = Benchgen.generate_checked_file ~path () in
        Sys.remove path;
        match r with
        | Error (Benchgen.E_trace_format _) -> ()
        | Error e -> Alcotest.fail (Benchgen.error_to_string e)
        | Ok _ -> Alcotest.fail "expected E_trace_format");
    t "generate_checked_file: missing file is E_io" (fun () ->
        match
          Benchgen.generate_checked_file ~path:"/nonexistent/benchgen.trace" ()
        with
        | Error (Benchgen.E_io _) -> ()
        | Error e -> Alcotest.fail (Benchgen.error_to_string e)
        | Ok _ -> Alcotest.fail "expected E_io");
    t "validate_under_noise: reproducible sampled distribution" (fun () ->
        let report, _ = Benchgen.from_app ~nranks:4 ring in
        let run () =
          Benchgen.validate_under_noise ~trials:3 ~base_seed:5 ~nranks:4 ring
            report
        in
        let a = run () and b = run () in
        Alcotest.(check int) "trials" 3 (List.length a.Benchgen.nr_samples);
        Alcotest.(check (float 0.)) "reproducible mean"
          a.Benchgen.nr_mean_abs_error_pct b.Benchgen.nr_mean_abs_error_pct;
        Alcotest.(check bool) "max >= mean" true
          (a.Benchgen.nr_max_abs_error_pct
           >= a.Benchgen.nr_mean_abs_error_pct -. 1e-9);
        List.iter
          (fun (s : Benchgen.noise_sample) ->
            Alcotest.(check bool) "latency factor in [1,2)" true
              (s.Benchgen.ns_latency_factor >= 1.
              && s.Benchgen.ns_latency_factor < 2.);
            Alcotest.(check bool) "bandwidth factor in [0.5,1)" true
              (s.Benchgen.ns_bandwidth_factor >= 0.5
              && s.Benchgen.ns_bandwidth_factor < 1.))
          a.Benchgen.nr_samples);
    t "validate_under_noise rejects trials < 1" (fun () ->
        let report, _ = Benchgen.from_app ~nranks:4 ring in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.validate_under_noise ~trials:0 ~nranks:4 ring report);
             false
           with Invalid_argument _ -> true));
  ]

let suite =
  plan_tests @ determinism_tests @ resilience_tests @ watchdog_tests
  @ trace_io_tests @ checked_tests
