open Scalatrace
open Mpisim

let t name f = Alcotest.test_case name `Quick f

let site_a = Util.Callsite.synthetic "a"
let site_b = Util.Callsite.synthetic "b"

let mk_event ?(site = site_a) ?(kind = Event.E_send) ?(peer = Event.P_abs 1)
    ?(bytes = 100) ?(tag = 0) ?(comm = 0) ?(rank = 0) ?(dt = 0.) () =
  let h = Util.Histogram.create () in
  Util.Histogram.add h dt;
  {
    Event.site; kind; peer; bytes; vec = None; tag; comm; parts = None; dtime = h;
    ranks = Util.Rank_set.singleton rank; hcache = 0;
  }

let event_tests =
  [
    t "mergeable requires same site" (fun () ->
        Alcotest.(check bool) "same" true
          (Event.mergeable (mk_event ()) (mk_event ()));
        Alcotest.(check bool) "diff site" false
          (Event.mergeable (mk_event ()) (mk_event ~site:site_b ())));
    t "mergeable requires same size/tag/comm" (fun () ->
        Alcotest.(check bool) "bytes" false
          (Event.mergeable (mk_event ()) (mk_event ~bytes:1 ()));
        Alcotest.(check bool) "tag" false
          (Event.mergeable (mk_event ()) (mk_event ~tag:9 ()));
        Alcotest.(check bool) "comm" false
          (Event.mergeable (mk_event ()) (mk_event ~comm:2 ())));
    t "wildcard never merges with concrete" (fun () ->
        Alcotest.(check bool) "any vs abs" false
          (Event.mergeable
             (mk_event ~kind:Event.E_recv ~peer:Event.P_any ())
             (mk_event ~kind:Event.E_recv ~peer:(Event.P_abs 2) ())));
    t "absorb unions ranks, builds map" (fun () ->
        let a = mk_event ~rank:0 ~peer:(Event.P_abs 1) () in
        let b = mk_event ~rank:1 ~peer:(Event.P_abs 2) () in
        Event.absorb ~nranks:4 ~into:a b;
        Alcotest.(check (list int)) "ranks" [ 0; 1 ] (Util.Rank_set.to_list a.ranks);
        (* the map accumulates unsorted during merging; [generalize]
           normalizes it, so compare up to ordering here *)
        (match a.peer with
        | Event.P_map m ->
            Alcotest.(check (list (pair int int)))
              "map" [ (0, 1); (1, 2) ] (List.sort compare m)
        | _ -> Alcotest.fail "expected P_map"));
    t "generalize detects relative" (fun () ->
        let a = mk_event ~rank:0 ~peer:(Event.P_abs 1) () in
        Event.absorb ~nranks:4 ~into:a (mk_event ~rank:1 ~peer:(Event.P_abs 2) ());
        Event.absorb ~nranks:4 ~into:a (mk_event ~rank:3 ~peer:(Event.P_abs 0) ());
        Event.generalize ~nranks:4 a;
        (match a.peer with
        | Event.P_rel 1 -> ()
        | p -> Alcotest.failf "expected P_rel 1, got %s"
                 (match p with
                 | Event.P_rel d -> Printf.sprintf "P_rel %d" d
                 | Event.P_abs x -> Printf.sprintf "P_abs %d" x
                 | Event.P_map _ -> "P_map"
                 | Event.P_any -> "P_any"
                 | Event.P_none -> "P_none")));
    t "generalize detects constant" (fun () ->
        let a = mk_event ~rank:0 ~peer:(Event.P_abs 3) () in
        Event.absorb ~nranks:8 ~into:a (mk_event ~rank:1 ~peer:(Event.P_abs 3) ());
        Event.generalize ~nranks:8 a;
        Alcotest.(check bool) "abs" true (a.peer = Event.P_abs 3));
    t "peer_of resolves all forms" (fun () ->
        let rel = mk_event ~peer:(Event.P_rel 2) () in
        Alcotest.(check (option int)) "rel" (Some 1) (Event.peer_of rel ~rank:7 ~nranks:8);
        let m = mk_event ~peer:(Event.P_map [ (3, 5) ]) () in
        Alcotest.(check (option int)) "map" (Some 5) (Event.peer_of m ~rank:3 ~nranks:8);
        Alcotest.(check (option int)) "map miss" None (Event.peer_of m ~rank:4 ~nranks:8);
        let any = mk_event ~peer:Event.P_any () in
        Alcotest.(check (option int)) "any" None (Event.peer_of any ~rank:0 ~nranks:8));
    t "of_call translates comm-local to world" (fun () ->
        let comm = Comm.make ~id:3 ~members:[| 4; 6 |] in
        let call =
          { Call.op = Call.Send { dst = 1; bytes = 10; tag = 0 }; comm; site = site_a }
        in
        match Event.of_call ~world_rank:4 ~time_gap:0.5 call with
        | Some e ->
            Alcotest.(check bool) "peer world" true (e.peer = Event.P_abs 6);
            Alcotest.(check int) "comm id" 3 e.Event.comm;
            Alcotest.(check (float 1e-12)) "gap" 0.5 (Util.Histogram.mean e.Event.dtime)
        | None -> Alcotest.fail "expected event");
    t "of_call skips compute and wtime" (fun () ->
        let comm = Comm.world 2 in
        let mk op = { Call.op; comm; site = site_a } in
        Alcotest.(check bool) "compute" true
          (Event.of_call ~world_rank:0 ~time_gap:0. (mk (Call.Compute 1.)) = None);
        Alcotest.(check bool) "wtime" true
          (Event.of_call ~world_rank:0 ~time_gap:0. (mk Call.Wtime) = None));
    t "v-collective records vector" (fun () ->
        let comm = Comm.world 3 in
        let call =
          { Call.op = Call.Alltoallv { bytes_to = [| 1; 2; 3 |] }; comm; site = site_a }
        in
        match Event.of_call ~world_rank:1 ~time_gap:0. call with
        | Some e ->
            Alcotest.(check int) "total" 6 e.Event.bytes;
            Alcotest.(check bool) "vec" true (e.Event.vec = Some [| 1; 2; 3 |])
        | None -> Alcotest.fail "expected event");
  ]

(* -------------------------------------------------------------- *)
(* Compression                                                      *)

let leaf ?site ?kind ?peer ?bytes ?rank () =
  Tnode.Leaf (mk_event ?site ?kind ?peer ?bytes ?rank ())

let count_rsds nodes = Tnode.rsd_count nodes
let count_events nodes = Tnode.event_count nodes

let compress_tests =
  [
    t "repeated event folds into loop" (fun () ->
        let c = Compress.create ~nranks:4 () in
        for _ = 1 to 100 do
          Compress.push c (mk_event ())
        done;
        let nodes = Compress.contents c in
        Alcotest.(check int) "1 RSD" 1 (count_rsds nodes);
        Alcotest.(check int) "100 events" 100 (count_events nodes);
        match nodes with
        | [ Tnode.Loop { count = 100; _ } ] -> ()
        | _ -> Alcotest.fail "expected single 100x loop");
    t "alternating pair folds into loop of 2-body" (fun () ->
        let c = Compress.create ~nranks:4 () in
        for _ = 1 to 50 do
          Compress.push c (mk_event ~site:site_a ());
          Compress.push c (mk_event ~site:site_b ~kind:Event.E_recv ())
        done;
        match Compress.contents c with
        | [ Tnode.Loop { count = 50; body; _ } ] ->
            Alcotest.(check int) "body" 2 (List.length body)
        | nodes -> Alcotest.failf "expected one loop, got %d nodes" (List.length nodes));
    t "nested loops detected (paper Figure 2 shape)" (fun () ->
        (* inner pattern (a b) x3 followed by c, all repeated 10x *)
        let c = Compress.create ~nranks:4 () in
        for _ = 1 to 10 do
          for _ = 1 to 3 do
            Compress.push c (mk_event ~site:site_a ());
            Compress.push c (mk_event ~site:site_b ~kind:Event.E_recv ())
          done;
          Compress.push c (mk_event ~site:(Util.Callsite.synthetic "c") ~kind:Event.E_wait ~peer:Event.P_none ())
        done;
        let nodes = Compress.contents c in
        Alcotest.(check int) "3 RSDs" 3 (count_rsds nodes);
        Alcotest.(check int) "70 events" 70 (count_events nodes);
        match nodes with
        | [ Tnode.Loop { count = 10; body = [ Tnode.Loop { count = 3; _ }; _ ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected 10x [3x [a b]; c]");
    t "different peers do not fold" (fun () ->
        let c = Compress.create ~nranks:8 () in
        Compress.push c (mk_event ~peer:(Event.P_abs 1) ());
        Compress.push c (mk_event ~peer:(Event.P_abs 2) ());
        Compress.push c (mk_event ~peer:(Event.P_abs 1) ());
        Compress.push c (mk_event ~peer:(Event.P_abs 2) ());
        (* butterfly-like: fold allowed only as a 2-body loop, not 4x one event *)
        match Compress.contents c with
        | [ Tnode.Loop { count = 2; body; _ } ] ->
            Alcotest.(check int) "body" 2 (List.length body)
        | nodes -> Alcotest.failf "got %d RSDs" (count_rsds nodes));
    t "timing merges on fold" (fun () ->
        let c = Compress.create ~nranks:4 () in
        Compress.push c (mk_event ~dt:1.0 ());
        Compress.push c (mk_event ~dt:3.0 ());
        (match Compress.contents c with
        | [ Tnode.Loop { count = 2; body = [ Tnode.Leaf e ]; _ } ] ->
            Alcotest.(check int) "samples" 2 (Util.Histogram.count e.Event.dtime);
            Alcotest.(check (float 1e-9)) "mean" 2.0 (Util.Histogram.mean e.Event.dtime)
        | _ -> Alcotest.fail "expected fold"));
    t "window bounds loop body size" (fun () ->
        let c = Compress.create ~window:2 ~nranks:4 () in
        let sites = List.init 3 (fun i -> Util.Callsite.synthetic (string_of_int i)) in
        for _ = 1 to 4 do
          List.iter (fun s -> Compress.push c (mk_event ~site:s ())) sites
        done;
        (* body of 3 > window 2: no folding *)
        Alcotest.(check int) "unfolded" 12 (count_rsds (Compress.contents c)));
    t "foldable predicate blocks folds" (fun () ->
        let c =
          Compress.create ~nranks:4
            ~foldable:(fun e -> Util.Rank_set.cardinal e.Event.ranks = 1)
            ()
        in
        let shared = mk_event () in
        shared.Event.ranks <- Util.Rank_set.of_list [ 0; 1 ];
        Compress.push c (Event.copy shared);
        Compress.push c (Event.copy shared);
        Alcotest.(check int) "not folded" 2 (count_rsds (Compress.contents c)));
    t "compress_list equivalent to pushes" (fun () ->
        let mk () = List.init 20 (fun _ -> leaf ()) in
        let via_list = Compress.compress_list ~nranks:4 (mk ()) in
        Alcotest.(check int) "rsds" 1 (count_rsds via_list);
        Alcotest.(check int) "events" 20 (count_events via_list));
  ]

(* -------------------------------------------------------------- *)
(* Tracing end-to-end                                               *)

let s_r = Mpi.site __POS__
let s_s = Mpi.site __POS__
let s_w = Mpi.site __POS__
let s_f = Mpi.site __POS__

let ring iters (ctx : Mpi.ctx) =
  let n = ctx.nranks in
  for _ = 1 to iters do
    let r = Mpi.irecv ~site:s_r ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes:1024 in
    let s = Mpi.isend ~site:s_s ctx ~dst:((ctx.rank + 1) mod n) ~bytes:1024 in
    ignore (Mpi.waitall ~site:s_w ctx [ r; s ]);
    Mpi.compute ctx 1e-5
  done;
  Mpi.finalize ~site:s_f ctx

let tracer_tests =
  [
    t "ring compresses to constant RSDs (paper Sec 3.1)" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:16 (ring 500) in
        Alcotest.(check int) "4 RSDs" 4 (Trace.rsd_count trace);
        Alcotest.(check int) "events" (16 * ((3 * 500) + 1)) (Trace.event_count trace));
    t "trace size independent of rank count" (fun () ->
        let size p =
          let trace, _ = Tracer.trace_run ~nranks:p (ring 100) in
          Trace.rsd_count trace
        in
        Alcotest.(check int) "same" (size 4) (size 32));
    t "relative peers generalized" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:8 (ring 10) in
        let found = ref false in
        Tnode.iter_leaves
          (fun e ->
            if e.Event.kind = Event.E_isend then
              match e.Event.peer with Event.P_rel 1 -> found := true | _ -> ())
          (Trace.nodes trace);
        Alcotest.(check bool) "P_rel" true !found);
    t "projection covers every rank exactly" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:8 (ring 50) in
        for r = 0 to 7 do
          let events = Tnode.event_count_for (Trace.project trace ~rank:r) ~rank:r in
          Alcotest.(check int) (Printf.sprintf "rank %d" r) ((3 * 50) + 1) events
        done);
    t "compute time lands in dtime histograms" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 20) in
        let total = ref 0. in
        Tnode.iter_leaves
          (fun e -> total := !total +. Util.Histogram.sum e.Event.dtime)
          (Trace.nodes trace);
        (* 4 ranks x 19 gaps of ~10us between iterations *)
        Alcotest.(check bool) "compute captured" true (!total >= 4. *. 19. *. 0.9e-5));
    t "comm table records splits" (fun () ->
        let prog (ctx : Mpi.ctx) =
          let c = Mpi.comm_split ~site:s_s ctx ~color:(ctx.rank mod 2) ~key:ctx.rank in
          Mpi.barrier ~site:s_r ~comm:c ctx;
          Mpi.finalize ~site:s_f ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        Alcotest.(check bool) "3 comms" true (List.length (Trace.comms trace) >= 3));
    t "wildcard flag detection" (fun () ->
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then ignore (Mpi.recv ~site:s_r ctx ~src:Call.Any_source ~bytes:8)
           else if ctx.rank = 1 then Mpi.send ~site:s_s ctx ~dst:0 ~bytes:8);
          Mpi.finalize ~site:s_f ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:2 prog in
        Alcotest.(check bool) "has wildcards" true (Trace.has_wildcards trace);
        let trace2, _ = Tracer.trace_run ~nranks:2 (ring 5) in
        Alcotest.(check bool) "no wildcards" false (Trace.has_wildcards trace2));
    t "unaligned collective detection" (fun () ->
        let sa = Mpi.site __POS__ and sb = Mpi.site __POS__ in
        let prog (ctx : Mpi.ctx) =
          if ctx.rank mod 2 = 0 then Mpi.barrier ~site:sa ctx
          else Mpi.barrier ~site:sb ctx;
          Mpi.finalize ~site:s_f ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        Alcotest.(check bool) "unaligned" true (Trace.has_unaligned_collectives trace);
        let trace2, _ = Tracer.trace_run ~nranks:4 (ring 3) in
        Alcotest.(check bool) "aligned" false (Trace.has_unaligned_collectives trace2));
    t "trace text stable and non-empty" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 10) in
        let s1 = Trace.to_text trace and s2 = Trace.to_text trace in
        Alcotest.(check string) "stable" s1 s2;
        Alcotest.(check bool) "non-empty" true (String.length s1 > 50));
    t "boundary ranks produce distinct RSD groups" (fun () ->
        (* non-periodic pipeline: first and last rank have fewer events *)
        let s1 = Mpi.site __POS__ and s2 = Mpi.site __POS__ in
        let pipeline (ctx : Mpi.ctx) =
          for _ = 1 to 5 do
            if ctx.rank > 0 then
              ignore (Mpi.recv ~site:s1 ctx ~src:(Call.Rank (ctx.rank - 1)) ~bytes:64);
            if ctx.rank < ctx.nranks - 1 then
              Mpi.send ~site:s2 ctx ~dst:(ctx.rank + 1) ~bytes:64
          done;
          Mpi.finalize ~site:s_f ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:6 pipeline in
        (* every rank's projection must keep its own event count *)
        let events r = Tnode.event_count_for (Trace.project trace ~rank:r) ~rank:r in
        Alcotest.(check int) "head" (5 + 1) (events 0);
        Alcotest.(check int) "interior" (10 + 1) (events 3);
        Alcotest.(check int) "tail" (5 + 1) (events 5));
  ]

(* -------------------------------------------------------------- *)
(* Property: merge preserves per-rank projections                   *)

let projection_props =
  let app_of_seed seed (ctx : Mpi.ctx) =
    (* a deterministic random-ish SPMD program: mixes sends, collectives *)
    let n = ctx.nranks in
    let rng2 = Util.Rng.create ~seed in
    let iters = 1 + Util.Rng.int rng2 4 in
    for _ = 1 to iters do
      if n > 1 then begin
        let r =
          Mpi.irecv ~site:s_r ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes:256
        in
        let s = Mpi.isend ~site:s_s ctx ~dst:((ctx.rank + 1) mod n) ~bytes:256 in
        ignore (Mpi.waitall ~site:s_w ctx [ r; s ])
      end;
      if Util.Rng.int rng2 2 = 0 then Mpi.allreduce ~site:s_r ctx ~bytes:8
    done;
    Mpi.finalize ~site:s_f ctx
  in
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"merged trace preserves per-rank event counts" ~count:25
        QCheck.(pair (int_range 1 1000) (int_range 2 12))
        (fun (seed, p) ->
          let tracer = Tracer.create ~nranks:p () in
          ignore (Mpi.run ~hooks:[ Tracer.hook tracer ] ~nranks:p (app_of_seed seed));
          let locals = Tracer.local_traces tracer in
          let trace = Tracer.finish tracer in
          Array.for_all
            (fun r ->
              Tnode.event_count locals.(r)
              = Tnode.event_count_for (Trace.project trace ~rank:r) ~rank:r)
            (Array.init p Fun.id));
    ]

let suite = event_tests @ compress_tests @ tracer_tests @ projection_props

let analysis_tests =
  [
    t "comm matrix matches engine accounting" (fun () ->
        let trace, outcome = Tracer.trace_run ~nranks:8 (ring 25) in
        let m = Analysis.comm_matrix trace in
        let total_msgs =
          Array.fold_left
            (fun acc row -> Array.fold_left ( + ) acc row)
            0 m.Analysis.messages
        in
        let total_bytes =
          Array.fold_left
            (fun acc row -> Array.fold_left ( + ) acc row)
            0 m.Analysis.bytes
        in
        Alcotest.(check int) "messages" outcome.messages total_msgs;
        Alcotest.(check int) "bytes" outcome.p2p_bytes total_bytes);
    t "comm matrix places ring traffic on the superdiagonal" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 10) in
        let m = Analysis.comm_matrix trace in
        for i = 0 to 3 do
          Alcotest.(check int) "next" 10 m.Analysis.messages.(i).((i + 1) mod 4);
          Alcotest.(check int) "self" 0 m.Analysis.messages.(i).(i)
        done);
    t "op totals count instances across loops and ranks" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 10) in
        let totals = Analysis.op_totals trace in
        let calls name =
          match List.find_opt (fun (n, _, _) -> n = name) totals with
          | Some (_, c, _) -> c
          | None -> 0
        in
        Alcotest.(check int) "isend" 40 (calls "MPI_Isend");
        Alcotest.(check int) "irecv" 40 (calls "MPI_Irecv");
        Alcotest.(check int) "waitall" 40 (calls "MPI_Waitall");
        Alcotest.(check int) "finalize" 4 (calls "MPI_Finalize"));
    t "total compute reflects the gaps" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 50) in
        let total = Analysis.total_compute trace in
        (* 4 ranks x 49 inter-iteration gaps of ~10us *)
        Alcotest.(check bool) "captured" true (total >= 4. *. 49. *. 0.9e-5));
    t "matrix renders" (fun () ->
        let trace, _ = Tracer.trace_run ~nranks:4 (ring 5) in
        let s = Analysis.matrix_to_string (Analysis.comm_matrix trace) in
        Alcotest.(check bool) "non-empty" true (String.length s > 40));
  ]

let suite = suite @ analysis_tests
