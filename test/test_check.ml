(* The fuzzing subsystem's own tests (lib/check): the fixed corpus under
   corpus/ (the shapes the old ad-hoc test_fuzz generator drew from, now
   written down), serialization round-trips, the n = 2 degenerate cases,
   shrinker determinism, and the oracle's ability to catch each deliberate
   pipeline defect. *)

open Check.Gen
module Oracle = Check.Oracle
module Shrink = Check.Shrink
module Corpus = Check.Corpus

let t name f = Alcotest.test_case name `Quick f
let ok = Alcotest.(check bool)
let fail = Alcotest.fail

(* ---------------------------------------------------------------- *)
(* Fixed corpus *)

let corpus_files =
  [
    "ring"; "collectives"; "pairwise"; "fan_in"; "sub_comm"; "alltoall";
    "mixed"; "n2";
  ]

(* `dune runtest` runs in test/, `dune exec test/test_main.exe` in the
   project root: accept either working directory. *)
let corpus_path name =
  let p = Filename.concat "corpus" (name ^ ".prog") in
  if Sys.file_exists p then p else Filename.concat "test" p

let load name =
  let text = Corpus.load ~path:(corpus_path name) in
  match Corpus.of_string text with
  | Ok (p, meta) -> (p, meta)
  | Error e -> fail (Printf.sprintf "%s.prog: %s" name e)

let corpus_parses () = List.iter (fun name -> ignore (load name)) corpus_files

let corpus_passes_oracle () =
  List.iter
    (fun name ->
      let p, _ = load name in
      match Oracle.check p with
      | Ok stats -> ok (name ^ ": communicates") true (stats.s_messages > 0 || stats.s_collectives > 0)
      | Error v -> fail (Printf.sprintf "%s.prog: %s" name (Oracle.to_string v)))
    corpus_files

let corpus_roundtrip () =
  List.iter
    (fun name ->
      let p, _ = load name in
      let text = Corpus.to_string p in
      match Corpus.of_string text with
      | Ok (p', _) ->
          ok (name ^ ": program round-trips") true (p = p');
          ok (name ^ ": byte-stable") true (Corpus.to_string p' = text)
      | Error e -> fail (Printf.sprintf "%s.prog reserialized: %s" name e))
    corpus_files

let meta_roundtrip () =
  let p = generate ~seed:7 in
  let meta =
    { Corpus.seed = Some 7; defect = Some "scale-bytes:3"; note = Some "why" }
  in
  match Corpus.of_string (Corpus.to_string ~meta p) with
  | Ok (p', m) ->
      ok "program survives" true (p = p');
      ok "seed survives" true (m.seed = Some 7);
      ok "defect survives" true (m.defect = Some "scale-bytes:3")
  | Error e -> fail e

(* ---------------------------------------------------------------- *)
(* Generator and validation *)

let generator_always_valid () =
  for seed = 1 to 200 do
    match validate (generate ~seed) with
    | Ok () -> ()
    | Error e -> fail (Printf.sprintf "seed %d: %s" seed e)
  done

let rejects p msg =
  match validate p with Ok () -> fail msg | Error _ -> ()

(* n = 2 is where the off-by-ones live: a ring offset of 0 or n would
   self-send or wrap onto itself, and a 2-way split would leave singleton
   groups the lowering elides. *)
let n2_guards () =
  let base phases = { nranks = 2; reps = 1; phases } in
  rejects (base [ P_ring { offset = 0; bytes = 64 } ]) "ring offset 0";
  rejects (base [ P_ring { offset = 2; bytes = 64 } ]) "ring offset = nranks";
  rejects
    (base [ P_sub_coll { parts = 2; op = C_allreduce; root = 0; bytes = 64 } ])
    "2-way split of 2 ranks (singleton groups)";
  rejects
    (base [ P_fan_in { root = 0; tag = 0; bytes = 64; any_tag = false } ])
    "fan-in tag 0 (collides with the ring/pairwise channel)";
  rejects
    (base
       [
         P_fan_in { root = 0; tag = 5; bytes = 64; any_tag = false };
         P_fan_in { root = 1; tag = 5; bytes = 64; any_tag = true };
       ])
    "duplicate fan-in tags";
  rejects { nranks = 1; reps = 1; phases = [] } "nranks = 1";
  match validate (base [ P_ring { offset = 1; bytes = 64 } ]) with
  | Ok () -> ()
  | Error e -> fail ("legal n = 2 ring rejected: " ^ e)

(* ---------------------------------------------------------------- *)
(* Defect detection: each deliberately broken pipeline must be caught,
   with the violation classified as the kind the defect breaks. *)

let detects name defect expected_kinds () =
  let rec go seed =
    if seed > 12 then fail (name ^ ": no violation across 12 seeds")
    else
      match Oracle.check ~defect (generate ~seed) with
      | Ok _ -> go (seed + 1)
      | Error v ->
          if List.mem (Oracle.kind v) expected_kinds then ()
          else
            fail
              (Printf.sprintf "%s: unexpected violation class: %s" name
                 (Oracle.to_string v))
  in
  go 1

(* ---------------------------------------------------------------- *)
(* Shrinking *)

let first_failing defect =
  let rec go seed =
    if seed > 20 then fail "no violation across 20 seeds"
    else
      let p = generate ~seed in
      if Result.is_error (Oracle.check ~defect p) then p else go (seed + 1)
  in
  go 1

let shrinker_deterministic () =
  let defect = Benchgen.Pipeline.D_scale_bytes 2 in
  let p = first_failing defect in
  let still_fails q = Result.is_error (Oracle.check ~defect q) in
  let m1, s1 = Shrink.minimize ~still_fails p in
  let m2, s2 = Shrink.minimize ~still_fails p in
  ok "same evaluation count" true (s1 = s2);
  ok "byte-identical counterexample" true
    (Corpus.to_string m1 = Corpus.to_string m2);
  ok "minimized program still fails" true (still_fails m1);
  ok "minimal: at most 6 phases" true (List.length m1.phases <= 6);
  ok "minimal: no candidate still fails" true
    (let m3, _ = Shrink.minimize ~still_fails m1 in
     m3 = m1)

let shrinker_strictly_decreases () =
  (* a program that cannot fail under the real pipeline shrinks zero
     steps of progress: minimize must return it unchanged *)
  let p = { nranks = 4; reps = 1; phases = [ P_pairwise { bytes = 64 } ] } in
  let m, _ = Shrink.minimize ~still_fails:(fun _ -> true) p in
  ok "floor program is a fixpoint under always-fails" true
    (List.length m.phases <= 1)

let suite =
  [
    t "corpus files parse and validate" corpus_parses;
    t "corpus files pass the oracle" corpus_passes_oracle;
    t "corpus serialization round-trips byte-stably" corpus_roundtrip;
    t "seed/defect metadata round-trips" meta_roundtrip;
    t "generator output always validates (200 seeds)" generator_always_valid;
    t "n = 2 degenerate forms are guarded" n2_guards;
    t "oracle catches scale-bytes (channel bytes)"
      (detects "scale-bytes" (Benchgen.Pipeline.D_scale_bytes 2) [ "channels" ]);
    t "oracle catches skip-wildcard (codegen error)"
      (detects "skip-wildcard" Benchgen.Pipeline.D_skip_wildcard
         [ "pipeline_error" ]);
    t "oracle catches drop-tail (missing traffic)"
      (detects "drop-tail" Benchgen.Pipeline.D_drop_tail
         [ "channels"; "collectives"; "replay" ]);
    t "shrinker is deterministic and reaches a fixpoint" shrinker_deterministic;
    t "shrinker terminates on an always-failing floor" shrinker_strictly_decreases;
  ]
