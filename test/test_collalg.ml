(* Pluggable collective algorithm schedules (Mpisim.Coll_alg).

   Two layers of assurance:

   - schedule shape: each expander produces the textbook round structure
     (ring = p-1 rounds, recursive doubling = log2 p pairwise exchanges,
     binomial = doubling frontier, Rabenseifner = halving-then-doubling
     byte ladder with 2*bytes*(p-1)/p per-rank traffic), and `Auto's
     selection table resolves as documented;

   - semantics: every strategy is differentially equivalent to the
     `Monolithic reference — same per-channel bytes, same collective
     participant multisets, and exactly one on_collective_complete event
     per logical collective — across the whole app registry and a seeded
     Check.Gen campaign (Check.Collfuzz).

   The dispatch-accounting pin nails the cost contract down to the
   number: Netmodel.collective_dispatch is charged once per logical
   collective, so a recursive-doubling barrier at equal arrivals costs
   exactly the analytic Netmodel.barrier_cost. *)

open Mpisim
module Coll_alg = Mpisim.Coll_alg

let t name f = Alcotest.test_case name `Quick f
let net = Netmodel.bluegene_l
let allreduce bytes = Call.Allreduce { bytes }

let expand_exn a ~op ~p =
  match Coll_alg.expand a ~op ~p with
  | Some s -> s
  | None -> Alcotest.failf "%s: expected a schedule" (Coll_alg.name (a :> Coll_alg.t))

let shape_tests =
  [
    t "of_string round-trips every strategy" (fun () ->
        List.iter
          (fun a ->
            match Coll_alg.of_string (Coll_alg.name a) with
            | Ok a' ->
                Alcotest.(check string)
                  "round-trip" (Coll_alg.name a) (Coll_alg.name a')
            | Error m -> Alcotest.fail m)
          Coll_alg.all;
        Alcotest.(check bool)
          "unknown name rejected" true
          (Result.is_error (Coll_alg.of_string "hypercube")));
    t "ring allreduce: p-1 rounds of p full-vector transfers" (fun () ->
        let sched = expand_exn `Ring ~op:(allreduce 512) ~p:5 in
        Alcotest.(check int) "rounds" 4 (Coll_alg.round_count sched);
        List.iter
          (fun rnd ->
            Alcotest.(check int) "transfers" 5 (List.length rnd);
            List.iter
              (fun (x : Coll_alg.xfer) ->
                Alcotest.(check int) "full vector" 512 x.x_bytes;
                Alcotest.(check int)
                  "successor" ((x.x_src + 1) mod 5) x.x_dst)
              rnd)
          sched);
    t "recursive doubling: log2 p rounds, XOR partners, pow2 only"
      (fun () ->
        let sched = expand_exn `Recursive_doubling ~op:(allreduce 64) ~p:8 in
        Alcotest.(check int) "rounds" 3 (Coll_alg.round_count sched);
        List.iteri
          (fun k rnd ->
            List.iter
              (fun (x : Coll_alg.xfer) ->
                Alcotest.(check int) "partner" (x.x_src lxor (1 lsl k)) x.x_dst)
              rnd)
          sched;
        Alcotest.(check bool)
          "p=6 does not expand" true
          (Coll_alg.expand `Recursive_doubling ~op:(allreduce 64) ~p:6 = None);
        Alcotest.(check string)
          "p=6 falls back to monolithic" "monolithic"
          (Coll_alg.name
             (Coll_alg.select `Recursive_doubling ~op:(allreduce 64) ~p:6
               :> Coll_alg.t)));
    t "binomial bcast: frontier doubles, root relabelled" (fun () ->
        let op = Call.Bcast { root = 3; bytes = 100 } in
        let sched = expand_exn `Binomial ~op ~p:8 in
        Alcotest.(check (list int))
          "round sizes" [ 1; 2; 4 ]
          (List.map List.length sched);
        (match sched with
        | ({ x_src; _ } :: _) :: _ ->
            Alcotest.(check int) "root sends first" 3 x_src
        | _ -> Alcotest.fail "empty schedule");
        (* reduce is the same tree with every edge reversed, leaf-first *)
        let red =
          expand_exn `Binomial ~op:(Call.Reduce { root = 3; bytes = 100 }) ~p:8
        in
        Alcotest.(check (list int))
          "reduce round sizes" [ 4; 2; 1 ]
          (List.map List.length red);
        let last_xfer = List.hd (List.nth red 2) in
        Alcotest.(check int) "root receives last" 3 last_xfer.x_dst);
    t "rabenseifner: halving/doubling byte ladder, 2b(p-1)/p per rank"
      (fun () ->
        let p = 8 and bytes = 8192 in
        let sched = expand_exn `Rabenseifner ~op:(allreduce bytes) ~p in
        Alcotest.(check (list int))
          "byte ladder"
          [ 4096; 2048; 1024; 1024; 2048; 4096 ]
          (List.map
             (fun rnd -> (List.hd rnd : Coll_alg.xfer).x_bytes)
             sched);
        let sent = Coll_alg.bytes_sent_per_rank ~p sched in
        Array.iter
          (fun b ->
            Alcotest.(check int) "per-rank traffic" (2 * bytes * (p - 1) / p) b)
          sent);
    t "strategies never apply to p<2 or communicator management" (fun () ->
        Alcotest.(check bool)
          "p=1" false
          (Coll_alg.applies `Ring ~op:(allreduce 8) ~p:1);
        List.iter
          (fun op ->
            List.iter
              (fun a ->
                Alcotest.(check bool)
                  "management stays monolithic" false
                  (Coll_alg.applies a ~op ~p:8))
              Coll_alg.schedules)
          [ Call.Comm_dup; Call.Comm_split { color = 0; key = 0 }; Call.Finalize ]);
    t "auto selection table" (fun () ->
        let pick op p = Coll_alg.name (Coll_alg.select `Auto ~op ~p :> Coll_alg.t) in
        Alcotest.(check string)
          "small pow2 allreduce" "recursive-doubling"
          (pick (allreduce 64) 8);
        Alcotest.(check string)
          "large pow2 allreduce" "rabenseifner"
          (pick (allreduce 65536) 8);
        Alcotest.(check string)
          "large non-pow2 allreduce" "ring"
          (pick (allreduce 65536) 6);
        Alcotest.(check string) "bcast" "binomial"
          (pick (Call.Bcast { root = 0; bytes = 8 }) 6);
        Alcotest.(check string) "pow2 barrier" "recursive-doubling"
          (pick Call.Barrier 16);
        Alcotest.(check string) "non-pow2 barrier" "monolithic"
          (pick Call.Barrier 6));
    t "round_cost is built from the p2p wire parameters only" (fun () ->
        (* latency + 2*overhead + bytes*byte_time — no collective_dispatch:
           the engine charges dispatch once per logical collective, never
           per round (see the dispatch-accounting test below). *)
        Alcotest.(check (float 1e-15))
          "formula"
          (net.Netmodel.latency +. (2. *. net.Netmodel.overhead)
          +. (4096. *. net.Netmodel.byte_time))
          (Netmodel.round_cost net ~bytes:4096));
    t "timings: rounds cost Netmodel.round_cost under equal starts"
      (fun () ->
        let sched = expand_exn `Recursive_doubling ~op:(allreduce 1024) ~p:4 in
        let fin = Coll_alg.timings net sched ~start:(Array.make 4 0.) in
        let expect = 2. *. Netmodel.round_cost net ~bytes:1024 in
        Array.iter
          (fun f ->
            Alcotest.(check (float 1e-12)) "two rounds" expect f)
          fin);
    t "timings: monotone in start times" (fun () ->
        let sched = expand_exn `Ring ~op:(allreduce 256) ~p:4 in
        let start = [| 0.; 3e-6; 1e-6; 2e-6 |] in
        let fin = Coll_alg.timings net sched ~start in
        Array.iteri
          (fun i f ->
            Alcotest.(check bool) "finishes after start" true (f >= start.(i)))
          fin);
  ]

(* --- dispatch accounting ------------------------------------------- *)

(* Capture the completion time of the first collective in a run. *)
let first_completion ~coll_alg ~nranks program =
  let time = ref None in
  let hook =
    {
      Hooks.nil with
      on_collective_complete =
        (fun ~time:t ~comm:_ ~name:_ ~participants:_ ->
          if !time = None then time := Some t);
    }
  in
  let _ = Mpi.run ~hooks:[ hook ] ~net ~coll_alg ~nranks program in
  Option.get !time

let dispatch_tests =
  [
    t "dispatch charged once: RD barrier = analytic barrier cost" (fun () ->
        (* Equal arrivals at a pow2 barrier: the schedule path must price
           it exactly like the monolithic formula — one
           collective_dispatch plus log2 p zero-byte rounds.  A schedule
           that re-charged dispatch per round would fail this by
           (log2 p - 1) * collective_dispatch. *)
        let program ctx =
          Mpi.barrier ctx;
          Mpi.finalize ctx
        in
        let p = 4 in
        let analytic = Netmodel.barrier_cost net ~p in
        let mono = first_completion ~coll_alg:`Monolithic ~nranks:p program in
        let rd =
          first_completion ~coll_alg:`Recursive_doubling ~nranks:p program
        in
        Alcotest.(check (float 1e-12)) "monolithic" analytic mono;
        Alcotest.(check (float 1e-12)) "recursive doubling" analytic rd);
    t "same seed, same algorithm: byte-identical virtual outcome" (fun () ->
        let prog = Check.Gen.generate ~seed:7 in
        let app = Check.Gen.to_app prog in
        let run () =
          (Mpi.run ~net ~coll_alg:`Auto ~nranks:prog.Check.Gen.nranks app)
            .Engine.elapsed
        in
        Alcotest.(check bool) "deterministic" true (run () = run ()));
  ]

(* --- differential verification ------------------------------------- *)

let count_completions ~coll_alg ~nranks program =
  let n = ref 0 in
  let hook =
    {
      Hooks.nil with
      on_collective_complete =
        (fun ~time:_ ~comm:_ ~name:_ ~participants:_ -> incr n);
    }
  in
  let _ = Mpi.run ~hooks:[ hook ] ~coll_alg ~nranks program in
  !n

let differential_tests =
  [
    t "one completion event per logical collective, every strategy"
      (fun () ->
        let app = Option.get (Apps.Registry.find "cg") in
        let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
        let reference =
          count_completions ~coll_alg:`Monolithic ~nranks (app.program ())
        in
        Alcotest.(check bool) "reference fires" true (reference > 0);
        List.iter
          (fun coll_alg ->
            Alcotest.(check int)
              (Coll_alg.name coll_alg)
              reference
              (count_completions ~coll_alg ~nranks (app.program ())))
          Coll_alg.all);
    t "registry + 40-seed Gen campaign: all strategies match monolithic"
      (fun () ->
        let s = Check.Collfuzz.run Check.Collfuzz.default in
        Alcotest.(check int) "whole registry" 16 s.Check.Collfuzz.apps_checked;
        Alcotest.(check int) "40 seeds" 40 s.Check.Collfuzz.gen_checked;
        List.iter
          (fun (v : Check.Collfuzz.violation) ->
            Printf.eprintf "collfuzz: %s under %s: %s\n%!" v.v_case v.v_alg
              v.v_what)
          s.Check.Collfuzz.violations;
        Alcotest.(check int)
          "no violations" 0
          (List.length s.Check.Collfuzz.violations));
  ]

(* --- neighborhood schedules ----------------------------------------- *)

(* Deterministic pseudo-random per-participant topologies: offsets in
   [1, p-1], degree in [1, 3], a pure function of (seed, rank). *)
let random_per_rank ~seed ~p ~bytes =
  Array.init p (fun r ->
      let rng = Util.Rng.split (Util.Rng.create ~seed) ~index:r in
      let deg = 1 + Util.Rng.int rng 3 in
      let offs =
        List.init deg (fun _ -> 1 + Util.Rng.int rng (p - 1))
        |> List.sort_uniq compare |> Array.of_list
      in
      (offs, bytes))

let neighbor_count_completions ~coll_alg ~nranks program =
  let n = ref 0 in
  let hook =
    {
      Hooks.nil with
      on_collective_complete =
        (fun ~time:_ ~comm:_ ~name ~participants:_ ->
          if
            name = "MPI_Neighbor_alltoall" || name = "MPI_Neighbor_allgather"
          then incr n);
    }
  in
  let _ = Mpi.run ~hooks:[ hook ] ~coll_alg ~nranks program in
  !n

let neighbor_tests =
  [
    t "combined schedule: one round per offset, full-duplex shifts" (fun () ->
        let offsets = [ 1; 3 ] and p = 8 and bytes = 256 in
        let sched = Coll_alg.neighbor_combined ~p ~offsets ~bytes in
        Alcotest.(check int) "rounds" 2 (Coll_alg.round_count sched);
        List.iteri
          (fun k rnd ->
            let o = List.nth offsets k in
            Alcotest.(check int) "transfers" p (List.length rnd);
            List.iter
              (fun (x : Coll_alg.xfer) ->
                Alcotest.(check int) "cyclic shift" ((x.x_src + o) mod p) x.x_dst;
                Alcotest.(check int) "payload" bytes x.x_bytes)
              rnd)
          sched);
    t "combined bytes equal the naive per-neighbor sum, every rank" (fun () ->
        (* the message-combining rewrite may restructure rounds but must
           move exactly the per-neighbor volume of the naive expansion *)
        List.iter
          (fun (p, degree, bytes) ->
            let offsets = List.init degree (fun i -> 1 + (i * 2)) in
            let per_rank = Array.make p (Array.of_list offsets, bytes) in
            let combined =
              Coll_alg.bytes_sent_per_rank ~p
                (Coll_alg.neighbor_combined ~p ~offsets ~bytes)
            in
            let naive =
              Coll_alg.bytes_sent_per_rank ~p (Coll_alg.neighbor_naive ~per_rank)
            in
            Array.iteri
              (fun r b ->
                Alcotest.(check int)
                  (Printf.sprintf "p=%d deg=%d rank %d" p degree r)
                  (degree * bytes) b;
                Alcotest.(check int) "naive agrees" naive.(r) b)
              combined)
          [ (4, 1, 64); (8, 3, 512); (16, 2, 4096) ]);
    t "neighbor_schedule dispatch: isomorphic combines, irregular doesn't"
      (fun () ->
        let p = 8 and bytes = 128 in
        let iso = Array.make p ([| 1; 2 |], bytes) in
        Alcotest.(check int)
          "isomorphic: one round per offset" 2
          (Coll_alg.round_count (Coll_alg.neighbor_schedule ~per_rank:iso));
        let irregular = random_per_rank ~seed:3 ~p ~bytes in
        Alcotest.(check bool)
          "random topology really is irregular" true
          (Coll_alg.neighbor_isomorphic ~per_rank:irregular = None);
        Alcotest.(check int)
          "irregular: single concurrent round" 1
          (Coll_alg.round_count
             (Coll_alg.neighbor_schedule ~per_rank:irregular)));
    t "schedules are deterministic across seeds and repetition" (fun () ->
        for seed = 1 to 10 do
          let per_rank = random_per_rank ~seed ~p:12 ~bytes:96 in
          let again = random_per_rank ~seed ~p:12 ~bytes:96 in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: same schedule" seed)
            true
            (Coll_alg.neighbor_schedule ~per_rank
            = Coll_alg.neighbor_schedule ~per_rank:again);
          let fin () =
            Coll_alg.timings net
              (Coll_alg.neighbor_schedule ~per_rank)
              ~start:(Array.make 12 0.)
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: same timings" seed)
            true
            (fin () = fin ())
        done);
    t "one completion per logical neighborhood collective, every strategy"
      (fun () ->
        (* three logical collectives: a full-comm stencil alltoall, a
           partial-set allgather over the even ranks, and a second
           full-comm exchange — every strategy must fire exactly three
           completion events regardless of how rounds are expanded *)
        let nranks = 8 in
        let program (ctx : Mpi.ctx) =
          let nbrs l = Array.of_list (List.sort_uniq compare l) in
          Mpi.neighbor_alltoall ctx
            ~neighbors:(nbrs [ (ctx.rank + 1) mod nranks; (ctx.rank + 3) mod nranks ])
            ~bytes_per_neighbor:64;
          if ctx.rank mod 2 = 0 then begin
            let parts = Array.init (nranks / 2) (fun i -> 2 * i) in
            let q = Array.length parts in
            let me = ctx.rank / 2 in
            Mpi.neighbor_allgather ~parts ctx
              ~neighbors:(nbrs [ parts.((me + 1) mod q) ])
              ~bytes:32
          end;
          Mpi.neighbor_alltoall ctx
            ~neighbors:(nbrs [ (ctx.rank + 1) mod nranks ])
            ~bytes_per_neighbor:128;
          Mpi.finalize ctx
        in
        List.iter
          (fun coll_alg ->
            Alcotest.(check int)
              (Coll_alg.name coll_alg)
              3
              (neighbor_count_completions ~coll_alg ~nranks program))
          Coll_alg.all);
  ]

let suite = shape_tests @ dispatch_tests @ differential_tests @ neighbor_tests
