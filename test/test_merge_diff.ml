(* Differential tests for the indexed inter-rank merge and the indexed
   collective-alignment bookkeeping.

   The hash index inside {!Scalatrace.Merge} is a pure lookup structure:
   for every application the merged trace must be byte-identical to what
   the reference list-scan implementation produces, and per-rank
   projections must still equal the per-rank input streams.  The
   alignment side gets a wide-communicator exercise (the O(1) arrival
   bookkeeping) and unit tests for the overflow-safe rounded byte mean. *)

open Scalatrace

let t name f = Alcotest.test_case name `Quick f

(* Trace once, merge twice: [finish] leaves per-rank traces untouched. *)
let finish_both tr =
  let reference = Tracer.finish ~merge_impl:`Reference tr in
  let indexed = Tracer.finish ~merge_impl:`Indexed tr in
  (reference, indexed)

let check_identical ~nranks locals reference indexed =
  Alcotest.(check string)
    "identical trace bytes"
    (Trace.to_text reference) (Trace.to_text indexed);
  for r = 0 to nranks - 1 do
    Alcotest.(check int)
      (Printf.sprintf "projection of rank %d preserves its event count" r)
      (Tnode.event_count locals.(r))
      (Tnode.event_count_for (Trace.project indexed ~rank:r) ~rank:r)
  done

let registry_tests =
  List.map
    (fun (app : Apps.Registry.app) ->
      t (Printf.sprintf "indexed merge matches reference: %s" app.name)
        (fun () ->
          let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
          let tr = Tracer.create ~nranks () in
          ignore
            (Mpisim.Mpi.run ~hooks:[ Tracer.hook tr ] ~nranks
               (app.program ~cls:Apps.Params.S ()));
          let reference, indexed = finish_both tr in
          check_identical ~nranks (Tracer.local_traces tr) reference indexed))
    Apps.Registry.all

(* Random SPMD programs through both merges — the same generator the
   fuzzing subsystem draws from, so the phase vocabulary covers skewed
   collectives, fan-ins, and sub-communicators. *)
let gen_props =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260808 |]))
    [
      QCheck.Test.make
        ~name:"indexed merge matches reference on random programs" ~count:40
        QCheck.(int_range 0 1_000_000)
        (fun seed ->
          let prog = Check.Gen.generate ~seed in
          let nranks = prog.Check.Gen.nranks in
          let tr = Tracer.create ~nranks () in
          ignore
            (Mpisim.Mpi.run ~hooks:[ Tracer.hook tr ] ~nranks
               (Check.Gen.to_app prog));
          let reference, indexed = finish_both tr in
          Trace.to_text reference = Trace.to_text indexed);
    ]

(* -------------------------------------------------------------- *)
(* Alignment: wide communicators and the collective byte mean       *)

let site_x = Util.Callsite.synthetic "x"
let site_y = Util.Callsite.synthetic "y"

let coll_leaf ?(site = site_x) ?(kind = Event.E_allreduce) ?(comm = 0) ?parts
    ~bytes ranks =
  let h = Util.Histogram.create () in
  Util.Histogram.add h 0.;
  Tnode.Leaf
    {
      Event.site;
      kind;
      peer = Event.P_none;
      bytes;
      vec = None;
      tag = 0;
      comm;
      parts;
      dtime = h;
      ranks = Util.Rank_set.of_list ranks;
      hcache = 0;
    }

let aligned_coll_bytes trace =
  let aligned = Benchgen.Align.run trace in
  let bytes = ref None in
  Tnode.iter_leaves
    (fun e -> if e.Event.kind = Event.E_allreduce then bytes := Some e.Event.bytes)
    (Trace.nodes aligned);
  Option.get !bytes

let align_tests =
  [
    t "alignment completes on a wide skewed communicator" (fun () ->
        (* 512 ranks reach the same barrier from two call sites: Algorithm
           1 must hoist it to one RSD, and the arrival bookkeeping must
           stay sublinear in the member count while doing so *)
        let nranks = 512 in
        let sf = Util.Callsite.synthetic "fin" in
        let prog (ctx : Mpisim.Mpi.ctx) =
          if ctx.rank mod 2 = 0 then Mpisim.Mpi.barrier ~site:site_x ctx
          else Mpisim.Mpi.barrier ~site:site_y ctx;
          Mpisim.Mpi.allreduce ~site:site_x ctx ~bytes:8;
          Mpisim.Mpi.finalize ~site:sf ctx
        in
        let trace, _ = Tracer.trace_run ~nranks prog in
        Alcotest.(check bool)
          "skew detected" true
          (Trace.has_unaligned_collectives trace);
        let aligned = Benchgen.Align.run trace in
        Alcotest.(check bool)
          "aligned" false
          (Trace.has_unaligned_collectives aligned);
        Alcotest.(check int)
          "events preserved" (Trace.event_count trace)
          (Trace.event_count aligned));
    t "collective byte mean is overflow-safe" (fun () ->
        (* three ranks disagree on the allreduce size near max_int: the
           naive sum-then-divide would wrap negative *)
        let b = max_int - 1 and c = max_int - 7 in
        let trace =
          Trace.make ~nranks:3
            ~comms:[ (0, Util.Rank_set.all 3) ]
            ~nodes:[ coll_leaf ~bytes:b [ 0; 1 ]; coll_leaf ~bytes:c [ 2 ] ]
        in
        Alcotest.(check int)
          "exact mean" (max_int - 3)
          (aligned_coll_bytes trace));
    t "collective byte mean rounds half-up" (fun () ->
        let trace =
          Trace.make ~nranks:2
            ~comms:[ (0, Util.Rank_set.all 2) ]
            ~nodes:[ coll_leaf ~bytes:1 [ 0 ]; coll_leaf ~bytes:2 [ 1 ] ]
        in
        Alcotest.(check int) "mean of 1,2" 2 (aligned_coll_bytes trace);
        let trace3 =
          Trace.make ~nranks:3
            ~comms:[ (0, Util.Rank_set.all 3) ]
            ~nodes:[ coll_leaf ~bytes:1 [ 0; 1 ]; coll_leaf ~bytes:2 [ 2 ] ]
        in
        Alcotest.(check int) "mean of 1,1,2" 1 (aligned_coll_bytes trace3));
    t "non-member arrival raises a typed error" (fun () ->
        (* rank 2 reaches a collective on a communicator it is not part
           of: a malformed trace must fail with Align_error, not an
           assertion or a traversal-budget blowup *)
        let trace =
          Trace.make ~nranks:4
            ~comms:
              [ (0, Util.Rank_set.all 4); (1, Util.Rank_set.of_list [ 0; 1 ]) ]
            ~nodes:[ coll_leaf ~comm:1 ~bytes:8 [ 0; 1; 2 ] ]
        in
        match Benchgen.Align.run trace with
        | _ -> Alcotest.fail "expected Align_error"
        | exception Benchgen.Align.Align_error _ -> ());
    t "neighborhood arrival outside the declared participant set" (fun () ->
        (* rank 1 reaches a partial-participant neighborhood collective
           whose declared set is {0, 2}: the arrival must raise the typed
           Align_error naming the participant set, not stall or
           mis-account the arrival bitmap *)
        let parts = [| 0; 2 |] in
        let trace =
          Trace.make ~nranks:4
            ~comms:[ (0, Util.Rank_set.all 4) ]
            ~nodes:
              [
                coll_leaf ~kind:Event.E_neighbor_alltoall ~parts ~bytes:64
                  [ 0; 1; 2 ];
              ]
        in
        match Benchgen.Align.run trace with
        | _ -> Alcotest.fail "expected Align_error"
        | exception Benchgen.Align.Align_error msg ->
            Alcotest.(check bool)
              "message names the participant set" true
              (let has needle =
                 let nl = String.length needle and ml = String.length msg in
                 let rec go i =
                   i + nl <= ml && (String.sub msg i nl = needle || go (i + 1))
                 in
                 go 0
               in
               has "participant set" && has "{0,2}"));
  ]

let suite = registry_tests @ gen_props @ align_tests
