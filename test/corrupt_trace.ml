(* Deterministic trace-damage helper for the CLI smoke tests:

     corrupt_trace <in> <out> truncate   # cut at the last frame boundary
     corrupt_trace <in> <out> flip       # flip one payload byte

   Kept dependency-free so the dune rule can build it cheaply. *)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_all path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let frame_boundaries bytes =
  let n = String.length bytes in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let acc =
        if
          n - pos >= 6
          && String.sub bytes pos 6 = "frame "
          && (pos = 0 || bytes.[pos - 1] = '\n')
        then pos :: acc
        else acc
      in
      match String.index_from_opt bytes pos '\n' with
      | Some nl -> go (nl + 1) acc
      | None -> List.rev acc
  in
  go 0 []

let () =
  match Sys.argv with
  | [| _; input; output; mode |] -> (
      let bytes = read_all input in
      let bounds = frame_boundaries bytes in
      match mode with
      | "truncate" ->
          (* cut at the last interior frame boundary *)
          let cut =
            match List.rev bounds with
            | _end :: prev :: _ -> prev
            | [ only ] -> only
            | [] -> String.length bytes / 2
          in
          write_all output (String.sub bytes 0 cut)
      | "flip" ->
          (* flip a byte in the middle of the largest frame payload *)
          let b = Bytes.of_string bytes in
          let pos =
            match bounds with
            | _ :: _ :: third :: _ -> third + 40
            | _ -> Bytes.length b / 2
          in
          let pos = min pos (Bytes.length b - 1) in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
          write_all output (Bytes.to_string b)
      | m ->
          prerr_endline ("corrupt_trace: unknown mode " ^ m);
          exit 2)
  | _ ->
      prerr_endline "usage: corrupt_trace <in> <out> truncate|flip";
      exit 2
