(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

(* End-to-end pipeline tests: trace -> generate -> parse -> run, across the
   whole application suite, checking the paper's correctness criteria. *)

open Mpisim

let t name f = Alcotest.test_case name `Quick f

let cls = Apps.Params.S

let p2p_profile prof =
  List.filter_map
    (fun (e : Mpip.entry) ->
      match e.op_name with
      | "MPI_Send" | "MPI_Isend" -> Some (`Send, e.calls, e.bytes)
      | "MPI_Recv" | "MPI_Irecv" -> Some (`Recv, e.calls, e.bytes)
      | _ -> None)
    (Mpip.entries prof)
  |> List.fold_left
       (fun (sc, sb, rc, rb) (k, c, b) ->
         match k with
         | `Send -> (sc + c, sb + b, rc, rb)
         | `Recv -> (sc, sb, rc + c, rb + b))
       (0, 0, 0, 0)

let per_app name =
  let app = Option.get (Apps.Registry.find name) in
  let nranks = Apps.Registry.fit_nranks app ~wanted:(if name = "bt" || name = "sp" then 9 else 8) in
  [
    t (name ^ ": generated benchmark preserves p2p counts and volume") (fun () ->
        let report, _ = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
        let prof_o = Mpip.create () and prof_g = Mpip.create () in
        ignore (Mpi.run ~hooks:[ Mpip.hook prof_o ] ~nranks (app.program ~cls ()));
        ignore (Conceptual.Lower.run ~hooks:[ Mpip.hook prof_g ] ~nranks report.program);
        let sc, sb, rc, rb = p2p_profile prof_o in
        let sc', sb', rc', rb' = p2p_profile prof_g in
        Alcotest.(check int) "send calls" sc sc';
        Alcotest.(check int) "send bytes" sb sb';
        Alcotest.(check int) "recv calls" rc rc';
        Alcotest.(check int) "recv bytes" rb rb');
    t (name ^ ": generated text parses back to the same program") (fun () ->
        let report, _ = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
        Alcotest.(check bool) "round-trip" true
          (Conceptual.Ast.equal report.program (Conceptual.Parse.program report.text)));
    t (name ^ ": timing within 25% of the original") (fun () ->
        let report, orig = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
        let res = Conceptual.Lower.run ~nranks report.program in
        let err =
          Float.abs (res.outcome.elapsed -. orig.elapsed) /. orig.elapsed *. 100.
        in
        Alcotest.(check bool)
          (Printf.sprintf "err %.1f%%" err)
          true (err < 25.));
    t (name ^ ": generation is deterministic") (fun () ->
        let r1, _ = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
        let r2, _ = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
        Alcotest.(check string) "same text" r1.text r2.text);
  ]

let app_tests = List.concat_map per_app [ "bt"; "cg"; "ep"; "ft"; "is"; "lu"; "mg"; "sp"; "sweep3d" ]

let misc_tests =
  [
    t "report flags reflect the passes that ran" (fun () ->
        let sweep = Option.get (Apps.Registry.find "sweep3d") in
        (* 9 ranks -> 3x3 grid with an interior rank, so the two allreduce
           call sites really are rank-conditional *)
        let r, _ = Benchgen.from_app ~name:"sweep3d" ~nranks:9 (sweep.program ~cls ()) in
        Alcotest.(check bool) "aligned" true r.aligned;
        Alcotest.(check bool) "not resolved" false r.resolved;
        let lu = Option.get (Apps.Registry.find "lu") in
        let r2, _ = Benchgen.from_app ~name:"lu" ~nranks:8 (lu.program ~cls ()) in
        Alcotest.(check bool) "not aligned" false r2.aligned;
        Alcotest.(check bool) "resolved" true r2.resolved);
    t "generated code contains no communicator operations" (fun () ->
        let cg = Option.get (Apps.Registry.find "cg") in
        let r, _ = Benchgen.from_app ~name:"cg" ~nranks:8 (cg.program ~cls ()) in
        Alcotest.(check bool) "no comm_split in text" false
          (let re = "Comm_split" in
           let text = r.text in
           let len = String.length re in
           let rec find i =
             if i + len > String.length text then false
             else if String.sub text i len = re then true
             else find (i + 1)
           in
           find 0));
    t "statement count is sublinear in events" (fun () ->
        let ft = Option.get (Apps.Registry.find "ft") in
        let r, _ = Benchgen.from_app ~name:"ft" ~nranks:8 (ft.program ~cls:Apps.Params.W ()) in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:8 (ft.program ~cls:Apps.Params.W ()) in
        Alcotest.(check bool) "far fewer statements than events" true
          (r.statements * 5 < Scalatrace.Trace.event_count trace));
    t "compute_floor drops tiny gaps" (fun () ->
        let ep = Option.get (Apps.Registry.find "ep") in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:4 (ep.program ~cls ()) in
        let tight = Benchgen.generate ~compute_floor_usecs:1e9 trace in
        let has_compute =
          Conceptual.Ast.fold_stmts
            (fun acc s -> acc || match s with Conceptual.Ast.Compute _ -> true | _ -> false)
            false tight.program
        in
        Alcotest.(check bool) "no compute" false has_compute);
    t "what-if scaling halves run time (Sec 5.4 workflow)" (fun () ->
        let ep = Option.get (Apps.Registry.find "ep") in
        let r, _ = Benchgen.from_app ~name:"ep" ~nranks:4 (ep.program ~cls ()) in
        let full = (Conceptual.Lower.run ~nranks:4 r.program).outcome.elapsed in
        let half =
          (Conceptual.Lower.run ~nranks:4 (Conceptual.Edit.scale_compute 0.5 r.program))
            .outcome.elapsed
        in
        Alcotest.(check bool) "halved" true
          (half < 0.6 *. full && half > 0.4 *. full));
  ]

let replay_tests =
  [
    t "replay of a trace matches the original elapsed time" (fun () ->
        let mg = Option.get (Apps.Registry.find "mg") in
        let trace, orig = Scalatrace.Tracer.trace_run ~nranks:8 (mg.program ~cls ()) in
        let rep = Replay.run trace in
        let err =
          Float.abs (rep.outcome.elapsed -. orig.elapsed) /. orig.elapsed *. 100.
        in
        Alcotest.(check bool) (Printf.sprintf "err %.1f%%" err) true (err < 10.));
    t "replay records wildcard matches" (fun () ->
        let s1 = Mpi.site __POS__ and s2 = Mpi.site __POS__ and s3 = Mpi.site __POS__ in
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then
             for _ = 1 to 2 do
               ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:8)
             done
           else begin
             Mpi.compute ctx (float_of_int ctx.rank *. 1e-4);
             Mpi.send ~site:s2 ctx ~dst:0 ~bytes:8
           end);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:3 prog in
        let rep = Replay.run trace in
        let total =
          List.fold_left (fun acc (_, srcs) -> acc + List.length srcs) 0 rep.wildcard_matches
        in
        Alcotest.(check int) "2 matches" 2 total);
    t "replay respects compute_scale" (fun () ->
        let ep = Option.get (Apps.Registry.find "ep") in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:4 (ep.program ~cls ()) in
        let full = (Replay.run trace).outcome.elapsed in
        let tenth = (Replay.run ~compute_scale:0.1 trace).outcome.elapsed in
        Alcotest.(check bool) "scaled" true (tenth < 0.2 *. full));
    t "replay recreates subcommunicator collectives" (fun () ->
        let s1 = Mpi.site __POS__ and s2 = Mpi.site __POS__ and s3 = Mpi.site __POS__ in
        let prog (ctx : Mpi.ctx) =
          let c = Mpi.comm_split ~site:s1 ctx ~color:(ctx.rank mod 2) ~key:ctx.rank in
          Mpi.allreduce ~site:s2 ~comm:c ctx ~bytes:32;
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:4 prog in
        let rep = Replay.run trace in
        Alcotest.(check bool) "ran" true (rep.outcome.elapsed > 0.));
  ]

let apps_tests =
  [
    t "registry has the paper's nine codes plus synthetics" (fun () ->
        Alcotest.(check (list string)) "paper suite"
          [ "bt"; "cg"; "ep"; "ft"; "is"; "lu"; "mg"; "sp"; "sweep3d" ]
          (List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.paper_suite);
        Alcotest.(check int) "sixteen total" 16 (List.length Apps.Registry.all));
    t "rank constraints enforced" (fun () ->
        let bt = Option.get (Apps.Registry.find "bt") in
        Alcotest.(check bool) "16 square ok" true (bt.supports 16);
        Alcotest.(check bool) "8 not square" false (bt.supports 8);
        Alcotest.(check int) "fit" 16 (Apps.Registry.fit_nranks bt ~wanted:10));
    t "apps are deterministic across runs" (fun () ->
        List.iter
          (fun (app : Apps.Registry.app) ->
            let nranks = Apps.Registry.fit_nranks app ~wanted:4 in
            let a = Mpi.run ~nranks (app.program ~cls ()) in
            let b = Mpi.run ~nranks (app.program ~cls ()) in
            Alcotest.(check (float 0.)) (app.name ^ " elapsed") a.elapsed b.elapsed)
          Apps.Registry.all);
    t "synthetic apps generate cleanly end to end" (fun () ->
        List.iter
          (fun name ->
            let app = Option.get (Apps.Registry.find name) in
            let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
            let report, orig = Benchgen.from_app ~name ~nranks (app.program ~cls ()) in
            let res = Conceptual.Lower.run ~nranks report.program in
            let err =
              Float.abs (res.outcome.elapsed -. orig.elapsed) /. orig.elapsed *. 100.
            in
            Alcotest.(check bool) (Printf.sprintf "%s err %.1f%%" name err) true (err < 20.))
          [ "ring"; "stencil2d"; "butterfly" ]);
    t "decomp helpers" (fun () ->
        Alcotest.(check (pair int int)) "near_square 12" (3, 4) (Apps.Decomp.near_square 12);
        Alcotest.(check (pair int int)) "near_square 16" (4, 4) (Apps.Decomp.near_square 16);
        Alcotest.(check bool) "square" true (Apps.Decomp.is_square 36);
        Alcotest.(check bool) "pow2" true (Apps.Decomp.is_power_of_two 64);
        Alcotest.(check bool) "not pow2" false (Apps.Decomp.is_power_of_two 48);
        let px, py, pz = Apps.Decomp.factor3 8 in
        Alcotest.(check int) "factor3 product" 8 (px * py * pz));
    t "grid coordinates invert" (fun () ->
        for r = 0 to 11 do
          let x, y = Apps.Decomp.coords2 ~px:3 r in
          Alcotest.(check int) "inverse" r (Apps.Decomp.rank2 ~px:3 ~x ~y)
        done;
        for r = 0 to 23 do
          let x, y, z = Apps.Decomp.coords3 ~px:2 ~py:3 r in
          Alcotest.(check int) "inverse3" r (Apps.Decomp.rank3 ~px:2 ~py:3 ~x ~y ~z)
        done);
    t "neighbors respect boundaries" (fun () ->
        Alcotest.(check (option int)) "left edge" None
          (Apps.Decomp.neighbor2 ~px:3 ~py:3 ~rank:0 ~dx:(-1) ~dy:0);
        Alcotest.(check (option int)) "interior" (Some 5)
          (Apps.Decomp.neighbor2 ~px:3 ~py:3 ~rank:4 ~dx:1 ~dy:0);
        Alcotest.(check int) "periodic wraps" 2
          (Apps.Decomp.neighbor3_periodic ~px:3 ~py:1 ~pz:1 ~rank:0 ~dx:(-1) ~dy:0 ~dz:0));
  ]

let mpip_tests =
  [
    t "profiles counts and volumes" (fun () ->
        let prof = Mpip.create () in
        let _ =
          Mpi.run ~hooks:[ Mpip.hook prof ] ~nranks:2 (fun ctx ->
              (if ctx.rank = 0 then Mpi.send ctx ~dst:1 ~bytes:100
               else ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:100));
              Mpi.allreduce ctx ~bytes:8;
              Mpi.finalize ctx)
        in
        let find n =
          List.find (fun (e : Mpip.entry) -> e.op_name = n) (Mpip.entries prof)
        in
        Alcotest.(check int) "send" 1 (find "MPI_Send").calls;
        Alcotest.(check int) "send bytes" 100 (find "MPI_Send").bytes;
        Alcotest.(check int) "allreduce calls" 2 (find "MPI_Allreduce").calls;
        Alcotest.(check int) "allreduce bytes" 16 (find "MPI_Allreduce").bytes);
    t "diff is empty for identical runs" (fun () ->
        let prog (ctx : Mpi.ctx) =
          Mpi.barrier ctx;
          Mpi.finalize ctx
        in
        let a = Mpip.create () and b = Mpip.create () in
        ignore (Mpi.run ~hooks:[ Mpip.hook a ] ~nranks:2 prog);
        ignore (Mpi.run ~hooks:[ Mpip.hook b ] ~nranks:2 prog);
        Alcotest.(check (list string)) "no diff" [] (Mpip.diff a b);
        Alcotest.(check bool) "equal" true (Mpip.equal a b));
    t "diff reports discrepancies" (fun () ->
        let a = Mpip.create () and b = Mpip.create () in
        ignore
          (Mpi.run ~hooks:[ Mpip.hook a ] ~nranks:2 (fun ctx ->
               Mpi.barrier ctx;
               Mpi.finalize ctx));
        ignore
          (Mpi.run ~hooks:[ Mpip.hook b ] ~nranks:2 (fun ctx ->
               Mpi.allreduce ctx ~bytes:8;
               Mpi.finalize ctx));
        Alcotest.(check bool) "has diff" true (List.length (Mpip.diff a b) >= 2));
  ]

let suite = app_tests @ misc_tests @ replay_tests @ apps_tests @ mpip_tests
