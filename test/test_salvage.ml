(* The resilient-ingestion layer: framed (v2) round trips, v1 -> v2
   migration, golden frame headers, the salvage loader, degraded-mode
   generation, and the corruption-fuzz contract. *)

open Scalatrace

let t name f = Alcotest.test_case name `Quick f

(* Same structural signature as test_trace_io: per-rank event sequences
   plus shape counters. *)
let seq_sig trace rank =
  let out = ref [] in
  let rec go cursor =
    match Benchgen.Traversal.peek cursor with
    | None -> ()
    | Some (e, after) ->
        out :=
          ( Event.kind_name e.Event.kind,
            Event.peer_of e ~rank ~nranks:(Trace.nranks trace),
            e.Event.bytes, e.Event.tag, e.Event.comm )
          :: !out;
        go after
  in
  go (Benchgen.Traversal.start (Trace.project trace ~rank));
  List.rev !out

let roundtrip_equal a b =
  Trace.nranks a = Trace.nranks b
  && Trace.event_count a = Trace.event_count b
  && List.for_all
       (fun r -> seq_sig a r = seq_sig b r)
       (List.init (Trace.nranks a) Fun.id)

let app_trace ?(nranks = 8) name =
  let app = Option.get (Apps.Registry.find name) in
  let nranks = Apps.Registry.fit_nranks app ~wanted:nranks in
  let trace, _ =
    Tracer.trace_run ~nranks (app.program ~cls:Apps.Params.S ())
  in
  trace

(* v2 round trip for one registry app: the framed bytes must reload to a
   structurally identical trace, and re-saving must be byte-stable. *)
let framed_roundtrip name =
  t (name ^ " framed (v2) round trip is byte-stable") (fun () ->
      let trace = app_trace name in
      let bytes = Trace_io.to_framed trace in
      let trace' = Trace_io.of_string bytes in
      Alcotest.(check bool) "round-trip" true (roundtrip_equal trace trace');
      Alcotest.(check string) "byte-stable" bytes (Trace_io.to_framed trace'))

(* v1 -> v2 migration: load the line format, save framed, reload. *)
let migration name =
  t (name ^ " v1 -> v2 migration preserves the trace") (fun () ->
      let trace = app_trace name in
      let via_v1 = Trace_io.of_text (Trace_io.to_text trace) in
      let via_v2 = Trace_io.of_string (Trace_io.to_framed via_v1) in
      Alcotest.(check bool) "identity" true (roundtrip_equal trace via_v2))

let all_app_names =
  List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all

(* ------------------------------------------------------------------ *)
(* Damage helpers                                                       *)

let frame_boundaries bytes =
  let n = String.length bytes in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let acc =
        if
          n - pos >= 6
          && String.sub bytes pos 6 = "frame "
          && (pos = 0 || bytes.[pos - 1] = '\n')
        then pos :: acc
        else acc
      in
      match String.index_from_opt bytes pos '\n' with
      | Some nl -> go (nl + 1) acc
      | None -> List.rev acc
  in
  go 0 []

(* Drop one whole rank frame (header line through the next boundary). *)
let ablate_rank_frame bytes ~rank =
  let bs = frame_boundaries bytes in
  let prefix = Printf.sprintf "frame rank:%d " rank in
  let start =
    List.find
      (fun pos ->
        String.length bytes - pos > String.length prefix
        && String.sub bytes pos (String.length prefix) = prefix)
      bs
  in
  let stop =
    match List.find_opt (fun b -> b > start) bs with
    | Some b -> b
    | None -> String.length bytes
  in
  String.sub bytes 0 start
  ^ String.sub bytes stop (String.length bytes - stop)

let with_temp_file bytes f =
  let path = Filename.temp_file "salvage" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc bytes);
      f path)

let run_pipeline ~recovery path =
  Benchgen.Pipeline.run
    { Benchgen.Pipeline.default with recovery }
    (Benchgen.Pipeline.From_file path)

(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    t "golden v2 frame headers" (fun () ->
        (* Byte-level compatibility contract: magic line, then a header
           frame whose payload is "nranks 2" with its IEEE CRC32. *)
        let prog (ctx : Mpisim.Mpi.ctx) =
          if ctx.rank = 0 then Mpisim.Mpi.send ctx ~dst:1 ~bytes:64 ~tag:1
          else
            ignore
              (Mpisim.Mpi.recv ctx ~src:(Mpisim.Call.Rank 0)
                 ~tag:(Mpisim.Call.Tag 1) ~bytes:64);
          Mpisim.Mpi.finalize ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:2 prog in
        let bytes = Trace_io.to_framed trace in
        let expect_prefix =
          "scalatrace-frames 2\n"
          ^ "frame header 8 d9dd6a18\n" ^ "nranks 2\n"
          ^ "frame comms 12 57d0c0cf\n" ^ "comm 0 0:1:1\n"
        in
        Alcotest.(check string)
          "prefix" expect_prefix
          (String.sub bytes 0 (String.length expect_prefix));
        Alcotest.(check string)
          "frame_header helper" "frame header 8 d9dd6a18"
          (Trace_io.frame_header ~kind:"header" ~payload:"nranks 2"));
    t "crc32 matches the IEEE reference" (fun () ->
        (* "123456789" -> cbf43926 is the standard CRC-32 check value. *)
        Alcotest.(check string)
          "check value" "cbf43926"
          (Util.Crc32.to_hex (Util.Crc32.string "123456789")));
    t "salvage of an intact file is a clean report" (fun () ->
        let trace = app_trace "ring" ~nranks:4 in
        match Salvage.of_string (Trace_io.to_framed trace) with
        | Error m -> Alcotest.fail m
        | Ok (trace', report) ->
            Alcotest.(check bool) "equal" true (roundtrip_equal trace trace');
            Alcotest.(check bool)
              "not degraded" false
              (Salvage.is_degraded report));
    t "salvage recovers the surviving ranks of an ablated file" (fun () ->
        let trace = app_trace "ring" ~nranks:4 in
        let damaged = ablate_rank_frame (Trace_io.to_framed trace) ~rank:2 in
        match Salvage.of_string damaged with
        | Error m -> Alcotest.fail m
        | Ok (trace', report) ->
            Alcotest.(check bool) "degraded" true (Salvage.is_degraded report);
            Alcotest.(check (list int)) "rank 2 gone" [ 2 ] report.ranks_missing;
            Alcotest.(check int) "nranks kept" 4 (Trace.nranks trace');
            (* the other ranks' streams survive in full *)
            List.iter
              (fun r ->
                Alcotest.(check bool)
                  (Printf.sprintf "rank %d stream intact" r)
                  true
                  (seq_sig trace r = seq_sig trace' r))
              [ 0; 1; 3 ]);
    t "salvage of a v1 body truncation recovers a prefix" (fun () ->
        let trace = app_trace "ring" ~nranks:4 in
        let text = Trace_io.to_text trace in
        let cut = String.sub text 0 (String.length text * 2 / 3) in
        match Salvage.of_string cut with
        | Error m -> Alcotest.fail m
        | Ok (trace', report) ->
            Alcotest.(check int) "v1" 1 report.format_version;
            Alcotest.(check bool) "degraded" true (Salvage.is_degraded report);
            Alcotest.(check bool)
              "prefix only" true
              (Trace.event_count trace' <= Trace.event_count trace));
    t "strict pipeline rejects a damaged file" (fun () ->
        let trace = app_trace "ring" ~nranks:4 in
        let damaged = ablate_rank_frame (Trace_io.to_framed trace) ~rank:0 in
        with_temp_file damaged (fun path ->
            match run_pipeline ~recovery:`Strict path with
            | Error (Benchgen.E_trace_format _) -> ()
            | Error e -> Alcotest.fail (Benchgen.error_to_string e)
            | Ok _ -> Alcotest.fail "strict mode accepted a damaged trace"));
    t "salvage mode refuses a trace whose collectives cannot complete"
      (fun () ->
        (* cg ends in world collectives; ablating a rank leaves them
           unfinishable, and `Salvage (no truncation) must say so. *)
        let trace = app_trace "cg" ~nranks:8 in
        let damaged = ablate_rank_frame (Trace_io.to_framed trace) ~rank:3 in
        with_temp_file damaged (fun path ->
            match run_pipeline ~recovery:`Salvage path with
            | Error (Benchgen.E_unrecoverable_trace msg) ->
                let contains hay needle =
                  let nl = String.length needle and hl = String.length hay in
                  let rec go i =
                    i + nl <= hl
                    && (String.sub hay i nl = needle || go (i + 1))
                  in
                  go 0
                in
                Alcotest.(check bool)
                  "names the wait-for graph" true
                  (contains msg "waiting on")
            | Error e -> Alcotest.fail (Benchgen.error_to_string e)
            | Ok _ -> Alcotest.fail "`Salvage generated from a dead wait"));
    t "best-effort generates a runnable prefix from a damaged trace"
      (fun () ->
        let trace = app_trace "cg" ~nranks:8 in
        let damaged = ablate_rank_frame (Trace_io.to_framed trace) ~rank:3 in
        with_temp_file damaged (fun path ->
            match run_pipeline ~recovery:`Best_effort path with
            | Error e -> Alcotest.fail (Benchgen.error_to_string e)
            | Ok (artifact, warnings) ->
                let has p = List.exists p warnings in
                Alcotest.(check bool)
                  "W_salvaged" true
                  (has (function Benchgen.W_salvaged _ -> true | _ -> false));
                Alcotest.(check bool)
                  "W_truncated_frontier" true
                  (has (function
                    | Benchgen.W_truncated_frontier _ -> true
                    | _ -> false));
                (* the artifact must parse and replay *)
                let report = artifact.Benchgen.Pipeline.report in
                let program = Conceptual.Parse.program report.text in
                let res =
                  Conceptual.Lower.run ~max_events:500_000
                    ~nranks:(Trace.nranks trace) program
                in
                ignore res));
    t "v2 framing keeps neighborhood participant sets and offset vectors"
      (fun () ->
        (* seq_sig compares kind/peer/bytes/tag/comm but not parts/vec —
           this test pins the neighborhood metadata itself: a traced
           partial-participant exchange must reload with the same
           participant set and offset vector, and re-save byte-stably. *)
        let prog (ctx : Mpisim.Mpi.ctx) =
          if ctx.rank mod 2 = 0 then begin
            let parts = [| 0; 2 |] in
            let me = ctx.rank / 2 in
            Mpisim.Mpi.neighbor_alltoall ~parts ctx
              ~neighbors:[| parts.((me + 1) mod 2) |]
              ~bytes_per_neighbor:48
          end;
          Mpisim.Mpi.barrier ctx;
          Mpisim.Mpi.finalize ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:4 prog in
        let bytes = Trace_io.to_framed trace in
        let trace' = Trace_io.of_string bytes in
        Alcotest.(check string)
          "byte-stable" bytes
          (Trace_io.to_framed trace');
        let found = ref None in
        Tnode.iter_leaves
          (fun e ->
            if e.Event.kind = Event.E_neighbor_alltoall then found := Some e)
          (Trace.nodes trace');
        match !found with
        | None -> Alcotest.fail "neighbor event lost in the round trip"
        | Some e ->
            Alcotest.(check (option (array int)))
              "participant set survives" (Some [| 0; 2 |])
              (Option.map Array.copy e.Event.parts);
            Alcotest.(check (option (array int)))
              "offset vector survives" (Some [| 1 |])
              (Option.map Array.copy e.Event.vec);
            Alcotest.(check int) "payload" 48 e.Event.bytes);
    t "corruption campaign: typed outcomes only, salvaged traces replay"
      (fun () ->
        let s =
          Check.Corrupt.run
            { Check.Corrupt.default with seeds = 50; nranks = 4 }
        in
        List.iter
          (fun (v : Check.Corrupt.violation) ->
            Alcotest.fail
              (Printf.sprintf "seed %d app %s %s: %s" v.v_seed v.v_app
                 v.v_mutation v.v_what))
          s.violations;
        Alcotest.(check bool) "ran cases" true (s.cases > 50);
        Alcotest.(check bool)
          "every salvaged-and-generated case replayed" true
          (s.generated = s.replayed));
  ]

let suite =
  unit_tests
  @ List.map framed_roundtrip all_app_names
  @ List.map migration all_app_names
