(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

open Scalatrace
module A = Conceptual.Ast

let t name f = Alcotest.test_case name `Quick f

let site = Util.Callsite.synthetic "s"

let mk ?(kind = Event.E_send) ?(peer = Event.P_abs 1) ?(bytes = 64) ?(tag = 0)
    ?(ranks = Util.Rank_set.singleton 0) ?(dt = 0.) () =
  let h = Util.Histogram.create () in
  Util.Histogram.add h dt;
  { Event.site; kind; peer; bytes; vec = None; tag; comm = 0; parts = None; dtime = h; ranks;
    hcache = 0 }

let trace_of nodes =
  Trace.make ~nranks:8 ~comms:[ (0, Util.Rank_set.all 8) ] ~nodes

(* ---------------------------------------------------------------- *)
(* Traversal cursors                                                  *)

let cursor_tests =
  [
    t "cursor yields leaves in order" (fun () ->
        let e1 = mk ~bytes:1 () and e2 = mk ~bytes:2 () in
        let c = Benchgen.Traversal.start [ Tnode.Leaf e1; Tnode.Leaf e2 ] in
        (match Benchgen.Traversal.peek c with
        | Some (e, c2) -> (
            Alcotest.(check int) "first" 1 e.Event.bytes;
            match Benchgen.Traversal.peek c2 with
            | Some (e, c3) ->
                Alcotest.(check int) "second" 2 e.Event.bytes;
                Alcotest.(check bool) "end" true (Benchgen.Traversal.peek c3 = None)
            | None -> Alcotest.fail "missing second")
        | None -> Alcotest.fail "missing first"));
    t "cursor expands loops lazily" (fun () ->
        let e = mk () in
        let c =
          Benchgen.Traversal.start
            [ Tnode.loop ~count:3 [ Tnode.Leaf e ] ]
        in
        let rec count c n =
          match Benchgen.Traversal.peek c with
          | None -> n
          | Some (e', c') ->
              Alcotest.(check bool) "physical identity" true (e' == e);
              count c' (n + 1)
        in
        Alcotest.(check int) "3 instances" 3 (count c 0));
    t "cursor handles nested loops" (fun () ->
        let e = mk () in
        let inner = Tnode.loop ~count:4 [ Tnode.Leaf e ] in
        let c = Benchgen.Traversal.start [ Tnode.loop ~count:5 [ inner ] ] in
        let rec count c n =
          match Benchgen.Traversal.peek c with None -> n | Some (_, c') -> count c' (n + 1)
        in
        Alcotest.(check int) "20 instances" 20 (count c 0));
    t "consumed counts instances" (fun () ->
        let c =
          Benchgen.Traversal.start [ Tnode.loop ~count:2 [ Tnode.Leaf (mk ()) ] ]
        in
        match Benchgen.Traversal.peek c with
        | Some (_, c2) ->
            Alcotest.(check int) "one" 1 (Benchgen.Traversal.consumed c2)
        | None -> Alcotest.fail "peek");
    t "zero-count loop is skipped" (fun () ->
        let c =
          Benchgen.Traversal.start [ Tnode.loop ~count:0 [ Tnode.Leaf (mk ()) ] ]
        in
        Alcotest.(check bool) "empty" true (Benchgen.Traversal.peek c = None));
  ]

(* ---------------------------------------------------------------- *)
(* Code generation: peer grouping, statement shapes                   *)

let stmt_of_trace trace =
  let report = Benchgen.generate trace in
  (* strip the reset/log wrapper *)
  match report.program.A.body with
  | A.Reset _ :: rest -> List.filter (function A.Log _ -> false | _ -> true) rest
  | body -> body

let codegen_tests =
  [
    t "relative peers become modular task expressions" (fun () ->
        let e = mk ~kind:Event.E_isend ~peer:(Event.P_rel 1) ~ranks:(Util.Rank_set.all 8) () in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) () in
        match stmt_of_trace (trace_of [ Tnode.Leaf e; Tnode.Leaf fin ]) with
        | [ A.Send { src = A.All (Some v); dst; async = true; _ } ] ->
            Alcotest.(check int) "dst for rank 5" 6
              (A.eval_int [ (v, 5) ] dst);
            Alcotest.(check int) "wraps" 0 (A.eval_int [ (v, 7) ] dst)
        | _ -> Alcotest.fail "unexpected statements");
    t "negative offsets print as t - d" (fun () ->
        let e = mk ~kind:Event.E_recv ~peer:(Event.P_rel 7) ~ranks:(Util.Rank_set.all 8) () in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) () in
        let report = Benchgen.generate (trace_of [ Tnode.Leaf e; Tnode.Leaf fin ])
        in
        Alcotest.(check bool) "uses t - 1" true
          (let needle = "(t - 1) MOD 8" in
           let hay = report.text in
           let n = String.length needle and m = String.length hay in
           let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
           go 0));
    t "P_map splits into offset groups" (fun () ->
        (* ranks 0,1 send +1; ranks 4,5 send -1: two statements *)
        let e =
          mk ~kind:Event.E_send
            ~peer:(Event.P_map [ (0, 1); (1, 2); (4, 3); (5, 4) ])
            ~ranks:(Util.Rank_set.of_list [ 0; 1; 4; 5 ])
            ()
        in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) () in
        let sends =
          List.filter (function A.Send _ -> true | _ -> false)
            (stmt_of_trace (trace_of [ Tnode.Leaf e; Tnode.Leaf fin ]))
        in
        Alcotest.(check int) "two groups" 2 (List.length sends));
    t "collective over subcommunicator uses group task set" (fun () ->
        let members = Util.Rank_set.of_list [ 0; 2; 4; 6 ] in
        let e =
          mk ~kind:Event.E_allreduce ~peer:Event.P_none ~bytes:32 ~ranks:members ()
        in
        let e = { e with Event.comm = 1 } in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) () in
        let trace =
          Trace.make ~nranks:8
            ~comms:[ (0, Util.Rank_set.all 8); (1, members) ]
            ~nodes:[ Tnode.Leaf e; Tnode.Leaf fin ]
        in
        match stmt_of_trace trace with
        | [ A.Reduce { src = A.Group _ as g; dst = A.Group _; _ } ] ->
            Alcotest.(check (list int)) "members" [ 0; 2; 4; 6 ]
              (A.members g [] ~nranks:8)
        | _ -> Alcotest.fail "expected group reduce");
    t "unresolved wildcard is rejected" (fun () ->
        let e = mk ~kind:Event.E_recv ~peer:Event.P_any ~ranks:(Util.Rank_set.singleton 0) () in
        (* bypass the pipeline's wildcard pass by calling codegen directly *)
        Alcotest.(check bool) "raises" true
          (try
             ignore (Benchgen.Codegen.program (trace_of [ Tnode.Leaf e ]));
             false
           with Benchgen.Codegen.Codegen_error _ -> true));
    t "compute statements carry the mean gap" (fun () ->
        let e =
          mk ~kind:Event.E_barrier ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) ~dt:0.002 ()
        in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:(Util.Rank_set.all 8) () in
        let stmts = stmt_of_trace (trace_of [ Tnode.Leaf e; Tnode.Leaf fin ]) in
        match stmts with
        | [ A.Compute { usecs = A.Float us; _ }; A.Sync _ ] ->
            Alcotest.(check (float 0.5)) "2000us" 2000. us
        | _ -> Alcotest.fail "expected compute then sync");
    t "reduce_scatter expands to one reduce per member" (fun () ->
        let members = Util.Rank_set.all 4 in
        let e =
          {
            (mk ~kind:Event.E_reduce_scatter ~peer:Event.P_none ~bytes:100 ~ranks:members ())
            with
            Event.vec = Some [| 10; 20; 30; 40 |];
          }
        in
        let fin = mk ~kind:Event.E_finalize ~peer:Event.P_none ~ranks:members () in
        let trace =
          Trace.make ~nranks:4 ~comms:[ (0, members) ]
            ~nodes:[ Tnode.Leaf e; Tnode.Leaf fin ]
        in
        let reduces =
          List.filter (function A.Reduce _ -> true | _ -> false) (stmt_of_trace trace)
        in
        Alcotest.(check int) "4 reduces" 4 (List.length reduces));
  ]

(* ---------------------------------------------------------------- *)
(* Network model                                                      *)

let netmodel_tests =
  let open Mpisim in
  [
    t "transfer time is affine in size" (fun () ->
        let n = Netmodel.bluegene_l in
        let t0 = Netmodel.transfer_time n ~bytes:0 in
        let t1 = Netmodel.transfer_time n ~bytes:1000 in
        let t2 = Netmodel.transfer_time n ~bytes:2000 in
        Alcotest.(check (float 1e-12)) "affine" (t1 -. t0) (t2 -. t1);
        Alcotest.(check (float 1e-12)) "latency" n.latency t0);
    t "eager threshold boundary" (fun () ->
        let n = Netmodel.bluegene_l in
        Alcotest.(check bool) "at" true (Netmodel.is_eager n ~bytes:n.eager_threshold);
        Alcotest.(check bool) "above" false
          (Netmodel.is_eager n ~bytes:(n.eager_threshold + 1)));
    t "collective costs grow with participants" (fun () ->
        let n = Netmodel.ethernet_cluster in
        Alcotest.(check bool) "barrier" true
          (Netmodel.barrier_cost n ~p:64 > Netmodel.barrier_cost n ~p:4);
        Alcotest.(check bool) "bcast" true
          (Netmodel.bcast_cost n ~p:64 ~bytes:1024 > Netmodel.bcast_cost n ~p:4 ~bytes:1024);
        Alcotest.(check bool) "alltoall" true
          (Netmodel.alltoall_cost n ~p:64 ~total:4096
          > Netmodel.alltoall_cost n ~p:8 ~total:4096));
    t "collective costs grow with size" (fun () ->
        let n = Netmodel.bluegene_l in
        Alcotest.(check bool) "bcast" true
          (Netmodel.bcast_cost n ~p:8 ~bytes:(1 lsl 20)
          > Netmodel.bcast_cost n ~p:8 ~bytes:8));
    t "allreduce costs about two bcasts" (fun () ->
        let n = Netmodel.bluegene_l in
        let b = Netmodel.bcast_cost n ~p:16 ~bytes:1024 -. n.collective_dispatch in
        let a = Netmodel.allreduce_cost n ~p:16 ~bytes:1024 -. n.collective_dispatch in
        Alcotest.(check (float 1e-9)) "2x" (2. *. b) a);
  ]

let suite = cursor_tests @ codegen_tests @ netmodel_tests
