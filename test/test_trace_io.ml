(* Deliberately exercises the deprecated Benchgen wrappers: they must
   keep behaving exactly like Pipeline.run until they are removed (the
   differential check lives in test_obs.ml). *)
[@@@alert "-deprecated"]

open Mpisim
open Scalatrace

let t name f = Alcotest.test_case name `Quick f

let seq_sig trace rank =
  let out = ref [] in
  let rec go cursor =
    match Benchgen.Traversal.peek cursor with
    | None -> ()
    | Some (e, after) ->
        out :=
          ( Event.kind_name e.Event.kind,
            Event.peer_of e ~rank ~nranks:(Trace.nranks trace),
            e.Event.bytes, e.Event.tag, e.Event.comm )
          :: !out;
        go after
  in
  go (Benchgen.Traversal.start (Trace.project trace ~rank));
  List.rev !out

let roundtrip_equal a b =
  Trace.nranks a = Trace.nranks b
  && Trace.rsd_count a = Trace.rsd_count b
  && Trace.event_count a = Trace.event_count b
  && List.for_all
       (fun r -> seq_sig a r = seq_sig b r)
       (List.init (Trace.nranks a) Fun.id)

let app_roundtrip name =
  t (name ^ " trace round-trips through the file format") (fun () ->
      let app = Option.get (Apps.Registry.find name) in
      let nranks = Apps.Registry.fit_nranks app ~wanted:8 in
      let trace, _ = Tracer.trace_run ~nranks (app.program ~cls:Apps.Params.S ()) in
      let trace' = Trace_io.of_text (Trace_io.to_text trace) in
      Alcotest.(check bool) "round-trip" true (roundtrip_equal trace trace');
      (* timing means must survive *)
      let total t =
        let s = ref 0. in
        Tnode.iter_leaves (fun e -> s := !s +. Util.Histogram.sum e.Event.dtime) (Trace.nodes t);
        !s
      in
      Alcotest.(check (float 1e-9)) "timing sum" (total trace) (total trace'))

let unit_tests =
  [
    t "generation from a reloaded trace is identical" (fun () ->
        let app = Option.get (Apps.Registry.find "lu") in
        let trace, _ = Tracer.trace_run ~nranks:8 (app.program ~cls:Apps.Params.S ()) in
        let direct = Benchgen.generate ~name:"lu" trace in
        let reloaded = Benchgen.generate ~name:"lu" (Trace_io.of_text (Trace_io.to_text trace)) in
        Alcotest.(check string) "same benchmark" direct.text reloaded.text);
    t "save/load through a file" (fun () ->
        let app = Option.get (Apps.Registry.find "ep") in
        let trace, _ = Tracer.trace_run ~nranks:4 (app.program ~cls:Apps.Params.S ()) in
        let path = Filename.temp_file "trace" ".stf" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Trace_io.save trace ~path;
            Alcotest.(check bool) "round-trip" true
              (roundtrip_equal trace (Trace_io.load ~path))));
    t "bad magic rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Trace_io.of_text "something else\n");
             false
           with Trace_io.Format_error _ -> true));
    t "unterminated loop rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Trace_io.of_text "scalatrace-trace 1\nnranks 2\nloop 5\n");
             false
           with Trace_io.Format_error _ -> true));
    t "unknown op rejected with line number" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Trace_io.of_text
                  "scalatrace-trace 1\nnranks 2\nevent MPI_Bogus peer=none bytes=0 vec=- tag=0 comm=0 ranks=0:0:1 dt=1;0;0;0;0 site=\"f\" 1 2 \"\"\n");
             false
           with Trace_io.Format_error msg ->
             String.length msg > 0
             && String.sub msg 0 6 = "line 3"));
    t "wildcard and map peers survive" (fun () ->
        let s1 = Mpi.site __POS__ and s2 = Mpi.site __POS__ and s3 = Mpi.site __POS__ in
        let prog (ctx : Mpi.ctx) =
          (if ctx.rank = 0 then ignore (Mpi.recv ~site:s1 ctx ~src:Call.Any_source ~bytes:8)
           else if ctx.rank = 1 then Mpi.send ~site:s2 ctx ~dst:0 ~bytes:8);
          Mpi.finalize ~site:s3 ctx
        in
        let trace, _ = Tracer.trace_run ~nranks:3 prog in
        let trace' = Trace_io.of_text (Trace_io.to_text trace) in
        Alcotest.(check bool) "still wild" true (Trace.has_wildcards trace'));
  ]

let suite =
  List.map app_roundtrip [ "bt"; "cg"; "ep"; "ft"; "is"; "lu"; "mg"; "sp"; "sweep3d" ]
  @ unit_tests
