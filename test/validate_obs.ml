(* Smoke validator for CLI observability artifacts, driven from the dune
   runtest rule: two same-seed `benchgen generate` runs must export
   byte-identical Chrome traces covering every pipeline stage, and a
   metrics JSONL dump in which every line re-parses.

   Usage: validate_obs TRACE1 TRACE2 METRICS *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("validate_obs: " ^ msg); exit 1) fmt

let () =
  let trace1, trace2, metrics =
    match Sys.argv with
    | [| _; a; b; c |] -> (a, b, c)
    | _ -> die "usage: validate_obs TRACE1 TRACE2 METRICS"
  in
  let t1 = read_file trace1 and t2 = read_file trace2 in
  if t1 <> t2 then die "same-seed traces differ: %s vs %s" trace1 trace2;
  (match Obs.Exporter.validate_chrome_string (String.trim t1) with
  | Ok () -> ()
  | Error msg -> die "%s: %s" trace1 msg);
  let names = Obs.Exporter.span_names (Obs.Json.parse (String.trim t1)) in
  List.iter
    (fun stage ->
      if not (List.mem stage names) then
        die "%s: missing %S stage span (saw: %s)" trace1 stage
          (String.concat ", " names))
    [ "trace"; "align"; "wildcard"; "codegen" ];
  let lines =
    String.split_on_char '\n' (read_file metrics)
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then die "%s: empty metrics dump" metrics;
  List.iter
    (fun line ->
      match Obs.Metrics.line_of_string line with
      | _ -> ()
      | exception Obs.Json.Parse_error msg ->
          die "%s: bad line %S: %s" metrics line msg)
    lines;
  Printf.printf
    "validate_obs: OK (%d trace bytes, stages %s, %d metric lines)\n"
    (String.length t1) (String.concat "," names) (List.length lines)
