(* Serve mode: supervision policy (backoff schedule, recovery
   escalation), wire protocol round-trips, admission control, the
   supervisor's retry/deadline/crash-isolation behavior on a virtual
   clock, the seeded service fuzzer, and domain-safety of the metrics
   registry the server aggregates into. *)

module Policy = Serve.Policy
module P = Serve.Protocol
module Sup = Serve.Supervisor
module Pipeline = Benchgen.Pipeline

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Policy: backoff schedule and recovery escalation                    *)

let policy_tests =
  [
    t "backoff schedule is deterministic per seed" (fun () ->
        let schedule seed =
          let rng = Util.Rng.create ~seed in
          List.init 6 (fun i ->
              Policy.backoff_s Policy.default ~rng ~attempt:(i + 1))
        in
        Alcotest.(check (list (float 0.)))
          "same seed, same delays" (schedule 42) (schedule 42);
        Alcotest.(check bool)
          "different seed, different delays" true
          (schedule 42 <> schedule 43));
    t "backoff grows exponentially and respects the cap" (fun () ->
        let p =
          {
            Policy.default with
            backoff_base_s = 0.1;
            backoff_factor = 2.0;
            backoff_max_s = 0.5;
            jitter = 0.;
          }
        in
        let rng = Util.Rng.create ~seed:1 in
        let d attempt = Policy.backoff_s p ~rng ~attempt in
        Alcotest.(check (float 1e-9)) "attempt 1" 0.1 (d 1);
        Alcotest.(check (float 1e-9)) "attempt 2" 0.2 (d 2);
        Alcotest.(check (float 1e-9)) "attempt 3" 0.4 (d 3);
        Alcotest.(check (float 1e-9)) "attempt 4 capped" 0.5 (d 4);
        Alcotest.(check (float 1e-9)) "attempt 10 capped" 0.5 (d 10));
    t "jitter stays within [delay, delay*(1+jitter))" (fun () ->
        let p =
          {
            Policy.default with
            backoff_base_s = 1.0;
            backoff_factor = 1.0;
            backoff_max_s = 10.;
            jitter = 0.25;
          }
        in
        let rng = Util.Rng.create ~seed:7 in
        for _ = 1 to 200 do
          let d = Policy.backoff_s p ~rng ~attempt:1 in
          if d < 1.0 || d >= 1.25 then
            Alcotest.failf "jittered delay %f outside [1, 1.25)" d
        done);
    t "backoff_s rejects attempt < 1" (fun () ->
        let rng = Util.Rng.create ~seed:1 in
        match Policy.backoff_s Policy.default ~rng ~attempt:0 with
        | exception Invalid_argument _ -> ()
        | d -> Alcotest.failf "expected Invalid_argument, got %f" d);
    t "recovery escalates per retry and saturates" (fun () ->
        let p = { Policy.default with recovery = `Strict; escalate = true } in
        let r a = Policy.recovery_for_attempt p ~attempt:a in
        Alcotest.(check bool) "attempt 0 strict" true (r 0 = `Strict);
        Alcotest.(check bool) "attempt 1 salvage" true (r 1 = `Salvage);
        Alcotest.(check bool) "attempt 2 best-effort" true (r 2 = `Best_effort);
        Alcotest.(check bool) "attempt 9 saturates" true (r 9 = `Best_effort));
    t "escalation starts from the configured level" (fun () ->
        let p = { Policy.default with recovery = `Salvage } in
        Alcotest.(check bool) "attempt 0" true
          (Policy.recovery_for_attempt p ~attempt:0 = `Salvage);
        Alcotest.(check bool) "attempt 1" true
          (Policy.recovery_for_attempt p ~attempt:1 = `Best_effort));
    t "escalate=false pins every attempt" (fun () ->
        let p = { Policy.default with recovery = `Strict; escalate = false } in
        for a = 0 to 5 do
          Alcotest.(check bool)
            (Printf.sprintf "attempt %d" a)
            true
            (Policy.recovery_for_attempt p ~attempt:a = `Strict)
        done);
    t "override_from_json applies and validates fields" (fun () ->
        let j =
          Obs.Json.parse
            {|{"deadline_s":2.5,"max_retries":5,"recovery":"salvage",
               "escalate":false,"jitter":0.5}|}
        in
        (match Policy.override_from_json Policy.default j with
        | Error m -> Alcotest.failf "override failed: %s" m
        | Ok p ->
            Alcotest.(check (option (float 0.))) "deadline" (Some 2.5)
              p.Policy.deadline_s;
            Alcotest.(check int) "retries" 5 p.Policy.max_retries;
            Alcotest.(check bool) "recovery" true (p.Policy.recovery = `Salvage);
            Alcotest.(check bool) "escalate" false p.Policy.escalate);
        (match
           Policy.override_from_json Policy.default
             (Obs.Json.parse {|{"max_retries":-1}|})
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "negative max_retries accepted");
        match
          Policy.override_from_json Policy.default
            (Obs.Json.parse {|{"recovery":"yolo"}|})
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown recovery accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Protocol: parsing and rendering                                     *)

let sample_responses =
  [
    P.Accepted { id = "j1"; queue_depth = 3 };
    P.Rejected { id = Some "j2"; reason = P.Queue_full };
    P.Rejected { id = None; reason = P.Bad_request "not json" };
    P.Rejected { id = Some "big"; reason = P.Oversized { bytes = 999; limit = 100 } };
    P.Rejected { id = None; reason = P.Conn_limit { limit = 64 } };
    P.Rejected { id = Some "j9"; reason = P.Inflight_limit { limit = 16 } };
    P.Result_error
      {
        id = "jp";
        attempts = 2;
        error =
          {
            P.e_tag = "poisoned";
            e_path = None;
            e_retryable = false;
            e_detail = "job crashed 2 distinct workers; quarantined";
          };
      };
    P.Result_ok
      {
        id = "j3";
        attempts = 2;
        info =
          {
            P.ok_statements = 12;
            ok_final_rsds = 4;
            ok_recovery = "salvage";
            ok_warnings = [ ("salvaged", "6/8 frames intact") ];
            ok_text = Some "program text";
            ok_out = Some "/tmp/out.ncptl";
          };
      };
    P.Result_error
      {
        id = "j4";
        attempts = 3;
        error =
          {
            P.e_tag = "unrecoverable_trace";
            e_path = Some "/bad.trace";
            e_retryable = true;
            e_detail = "nothing survived";
          };
      };
    P.Cancelled { id = "j5" };
    P.Health_report
      {
        queue_depth = 1;
        queue_limit = 8;
        draining = false;
        submitted = 5;
        completed = 3;
        failed = 1;
        rejected = 0;
        cancelled = 0;
      };
    P.Drained { jobs_run = 4; cancelled = 1 };
  ]

let protocol_tests =
  [
    t "every response round-trips byte-identically" (fun () ->
        List.iter
          (fun r ->
            let line = P.response_to_line r in
            let r' = P.response_of_line line in
            Alcotest.(check bool)
              ("value round-trip: " ^ line)
              true (r = r');
            Alcotest.(check string) "byte round-trip" line
              (P.response_to_line r'))
          sample_responses);
    t "parse_request: submit with overrides" (fun () ->
        match
          P.parse_request ~default_policy:Policy.default ~max_bytes:4096
            {|{"op":"submit","id":"a","trace":"/t.trace","max_retries":0,"deadline_s":0.5}|}
        with
        | Ok (P.Submit s) ->
            Alcotest.(check string) "id" "a" s.P.sub_id;
            Alcotest.(check bool) "source" true (s.P.sub_source = P.J_file "/t.trace");
            Alcotest.(check int) "retries" 0 s.P.sub_policy.Policy.max_retries;
            Alcotest.(check (option (float 0.)))
              "deadline" (Some 0.5) s.P.sub_policy.Policy.deadline_s
        | Ok _ -> Alcotest.fail "wrong request kind"
        | Error (_, r) -> Alcotest.failf "rejected: %s" (P.reject_tag r));
    t "parse_request: app submit" (fun () ->
        match
          P.parse_request ~default_policy:Policy.default ~max_bytes:4096
            {|{"op":"submit","id":"b","app":"lu","nranks":8,"cls":"W"}|}
        with
        | Ok (P.Submit s) ->
            Alcotest.(check bool) "source" true
              (s.P.sub_source = P.J_app { app = "lu"; nranks = 8; cls = "W" })
        | _ -> Alcotest.fail "app submit did not parse");
    t "parse_request: control ops" (fun () ->
        let parse l =
          P.parse_request ~default_policy:Policy.default ~max_bytes:4096 l
        in
        Alcotest.(check bool) "health" true (parse {|{"op":"health"}|} = Ok P.Health);
        Alcotest.(check bool) "drain" true (parse {|{"op":"drain"}|} = Ok P.Drain);
        Alcotest.(check bool) "shutdown" true
          (parse {|{"op":"shutdown"}|} = Ok P.Shutdown));
    t "parse_request: oversized line is rejected unparsed" (fun () ->
        let line =
          {|{"op":"submit","id":"big","trace":"|} ^ String.make 200 'x' ^ {|"}|}
        in
        match P.parse_request ~default_policy:Policy.default ~max_bytes:100 line with
        | Error (_, P.Oversized { bytes; limit }) ->
            Alcotest.(check int) "limit echoed" 100 limit;
            Alcotest.(check int) "bytes echoed" (String.length line) bytes
        | _ -> Alcotest.fail "oversized line was not rejected");
    t "parse_request: garbage and bad requests are typed" (fun () ->
        let bad l =
          match
            P.parse_request ~default_policy:Policy.default ~max_bytes:4096 l
          with
          | Error (id, P.Bad_request _) -> id
          | Error (_, r) -> Alcotest.failf "wrong reject: %s" (P.reject_tag r)
          | Ok _ -> Alcotest.failf "accepted: %s" l
        in
        Alcotest.(check (option string)) "garbage" None (bad "not json at all");
        Alcotest.(check (option string)) "unknown op" None (bad {|{"op":"frobnicate"}|});
        (* a bad submit still echoes its id so the client can correlate *)
        Alcotest.(check (option string))
          "id recovered" (Some "x")
          (bad {|{"op":"submit","id":"x"}|});
        Alcotest.(check (option string))
          "ill-typed field" (Some "y")
          (bad {|{"op":"submit","id":"y","trace":"/t","max_retries":"three"}|}));
    t "reject tags are stable" (fun () ->
        Alcotest.(check string) "queue_full" "queue_full" (P.reject_tag P.Queue_full);
        Alcotest.(check string) "draining" "draining" (P.reject_tag P.Draining);
        Alcotest.(check string) "oversized" "oversized"
          (P.reject_tag (P.Oversized { bytes = 1; limit = 0 }));
        Alcotest.(check string) "bad_request" "bad_request"
          (P.reject_tag (P.Bad_request "m")));
    t "error_of_gen_error: stable tags, path, retryability" (fun () ->
        let e ?path g = P.error_of_gen_error ?path g in
        let io = e ~path:"/gone.trace" (Pipeline.E_io "no such file") in
        Alcotest.(check string) "io tag" "io" io.P.e_tag;
        Alcotest.(check (option string)) "io path" (Some "/gone.trace") io.P.e_path;
        Alcotest.(check bool) "io not retryable" false io.P.e_retryable;
        let cases =
          [
            (Pipeline.E_potential_deadlock "d", "potential_deadlock");
            (Pipeline.E_align "a", "align");
            (Pipeline.E_wildcard "w", "wildcard");
            (Pipeline.E_trace_format "t", "trace_format");
            (Pipeline.E_codegen "c", "codegen");
            (Pipeline.E_unrecoverable_trace "u", "unrecoverable_trace");
          ]
        in
        List.iter
          (fun (g, tag) ->
            let i = e g in
            Alcotest.(check string) ("tag " ^ tag) tag i.P.e_tag;
            Alcotest.(check bool) (tag ^ " retryable") true i.P.e_retryable)
          cases);
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor on a virtual clock                                       *)

let ok_info =
  {
    P.ok_statements = 4;
    ok_final_rsds = 2;
    ok_recovery = "strict";
    ok_warnings = [];
    ok_text = None;
    ok_out = None;
  }

let submit_of ?(policy = Policy.default) id =
  {
    P.sub_id = id;
    sub_source = P.J_file (id ^ ".trace");
    sub_policy = policy;
    sub_out = None;
    sub_emit_text = false;
  }

let sup_of ?(queue_limit = 8) runner =
  Sup.create ~queue_limit ~seed:1 ~runner ~clock:(Sup.sim_clock ()) ()

let supervisor_tests =
  [
    t "clean job: accepted then one ok result" (fun () ->
        let sup = sup_of (fun _ ~recovery:_ ~deadline_s:_ -> Sup.A_ok ok_info) in
        (match Sup.submit sup (submit_of "a") with
        | P.Accepted { id = "a"; queue_depth = 1 } -> ()
        | r -> Alcotest.failf "unexpected: %s" (P.response_to_line r));
        match Sup.run_next sup with
        | Some (P.Result_ok { id = "a"; attempts = 1; _ }) ->
            Alcotest.(check int) "queue empty" 0 (Sup.queue_length sup)
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
    t "retry escalates recovery until success" (fun () ->
        (* fails at strict and salvage, succeeds at best-effort: the
           escalation path the paper's damaged-trace story needs *)
        let seen = ref [] in
        let runner _ ~recovery ~deadline_s:_ =
          seen := recovery :: !seen;
          if recovery = `Best_effort then
            Sup.A_ok { ok_info with P.ok_recovery = "best-effort" }
          else
            Sup.A_error
              {
                P.e_tag = "unrecoverable_trace";
                e_path = None;
                e_retryable = true;
                e_detail = "needs weaker recovery";
              }
        in
        let policy = { Policy.default with max_retries = 2 } in
        let sup = sup_of runner in
        ignore (Sup.submit sup (submit_of ~policy "esc"));
        (match Sup.run_next sup with
        | Some (P.Result_ok { id = "esc"; attempts = 3; info }) ->
            Alcotest.(check string)
              "reports the successful level" "best-effort" info.P.ok_recovery
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
        Alcotest.(check bool)
          "ran strict, salvage, best-effort in order" true
          (List.rev !seen = [ `Strict; `Salvage; `Best_effort ]));
    t "retries exhausted: last error surfaces with attempt count" (fun () ->
        let runner _ ~recovery:_ ~deadline_s:_ =
          Sup.A_error
            {
              P.e_tag = "trace_format";
              e_path = Some "x.trace";
              e_retryable = true;
              e_detail = "always broken";
            }
        in
        let policy = { Policy.default with max_retries = 2 } in
        let sup = sup_of runner in
        ignore (Sup.submit sup (submit_of ~policy "f"));
        match Sup.run_next sup with
        | Some (P.Result_error { attempts = 3; error; _ }) ->
            Alcotest.(check string) "tag" "trace_format" error.P.e_tag;
            Alcotest.(check (option string)) "path" (Some "x.trace") error.P.e_path
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
    t "non-retryable error stops immediately" (fun () ->
        let calls = ref 0 in
        let runner _ ~recovery:_ ~deadline_s:_ =
          incr calls;
          Sup.A_error
            {
              P.e_tag = "io";
              e_path = Some "/gone.trace";
              e_retryable = false;
              e_detail = "no such file";
            }
        in
        let policy = { Policy.default with max_retries = 5 } in
        let sup = sup_of runner in
        ignore (Sup.submit sup (submit_of ~policy "io"));
        (match Sup.run_next sup with
        | Some (P.Result_error { attempts = 1; _ }) -> ()
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
        Alcotest.(check int) "runner called once" 1 !calls);
    t "deadline kill: timeout is typed and counted" (fun () ->
        let runner _ ~recovery:_ ~deadline_s:_ = Sup.A_timeout in
        let policy =
          { Policy.default with deadline_s = Some 0.5; max_retries = 1 }
        in
        let sup = sup_of runner in
        ignore (Sup.submit sup (submit_of ~policy "slow"));
        (match Sup.run_next sup with
        | Some (P.Result_error { attempts = 2; error; _ }) ->
            Alcotest.(check string) "tag" "deadline_exceeded" error.P.e_tag;
            Alcotest.(check bool) "retryable" true error.P.e_retryable
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
        Alcotest.(check (option int))
          "deadline_kills metric" (Some 2)
          (Obs.Metrics.counter_value (Sup.metrics sup) "serve.deadline_kills"));
    t "crash isolation: a raising runner never kills the supervisor"
      (fun () ->
        let runner _ ~recovery:_ ~deadline_s:_ =
          failwith "worker heap corruption"
        in
        let policy = { Policy.default with max_retries = 0 } in
        let sup = sup_of runner in
        ignore (Sup.submit sup (submit_of ~policy "boom"));
        (match Sup.run_next sup with
        | Some (P.Result_error { attempts = 1; error; _ }) ->
            Alcotest.(check string) "tag" "crashed" error.P.e_tag
        | Some r -> Alcotest.failf "unexpected: %s" (P.response_to_line r)
        | None -> Alcotest.fail "no response");
        (* the supervisor keeps serving after the crash *)
        let ok _ ~recovery:_ ~deadline_s:_ = Sup.A_ok ok_info in
        ignore ok;
        ignore (Sup.submit sup (submit_of ~policy "boom2"));
        match Sup.run_next sup with
        | Some (P.Result_error { id = "boom2"; _ }) -> ()
        | _ -> Alcotest.fail "supervisor did not survive the crash");
    t "queue-full load shedding" (fun () ->
        let sup =
          Sup.create ~queue_limit:2 ~seed:1
            ~runner:(fun _ ~recovery:_ ~deadline_s:_ -> Sup.A_ok ok_info)
            ~clock:(Sup.sim_clock ()) ()
        in
        ignore (Sup.submit sup (submit_of "a"));
        ignore (Sup.submit sup (submit_of "b"));
        (match Sup.submit sup (submit_of "c") with
        | P.Rejected { id = Some "c"; reason = P.Queue_full } -> ()
        | r -> Alcotest.failf "expected queue_full, got %s" (P.response_to_line r));
        Alcotest.(check int) "queue bounded" 2 (Sup.queue_length sup);
        Alcotest.(check (option int))
          "sheds counted" (Some 1)
          (Obs.Metrics.counter_value (Sup.metrics sup) "serve.sheds");
        (* freeing a slot re-opens admission *)
        ignore (Sup.run_next sup);
        match Sup.submit sup (submit_of "d") with
        | P.Accepted _ -> ()
        | r -> Alcotest.failf "expected accepted, got %s" (P.response_to_line r));
    t "drain finishes queued work and rejects new submits" (fun () ->
        let sup = sup_of (fun _ ~recovery:_ ~deadline_s:_ -> Sup.A_ok ok_info) in
        ignore (Sup.submit sup (submit_of "a"));
        ignore (Sup.submit sup (submit_of "b"));
        Sup.begin_drain sup;
        (match Sup.submit sup (submit_of "late") with
        | P.Rejected { reason = P.Draining; _ } -> ()
        | r -> Alcotest.failf "expected draining, got %s" (P.response_to_line r));
        let rs = Sup.drain sup in
        let lines = List.map P.response_to_line rs in
        Alcotest.(check int) "two results + summary" 3 (List.length rs);
        (match List.rev rs with
        | P.Drained { jobs_run = 2; cancelled = 0 } :: _ -> ()
        | _ ->
            Alcotest.failf "bad drain tail: %s" (String.concat " | " lines));
        Alcotest.(check int) "queue empty" 0 (Sup.queue_length sup));
    t "shutdown cancels queued jobs with typed responses" (fun () ->
        let sup = sup_of (fun _ ~recovery:_ ~deadline_s:_ -> Sup.A_ok ok_info) in
        ignore (Sup.submit sup (submit_of "a"));
        ignore (Sup.submit sup (submit_of "b"));
        match Sup.shutdown sup with
        | [ P.Cancelled { id = "a" }; P.Cancelled { id = "b" };
            P.Drained { jobs_run = 0; cancelled = 2 } ] ->
            Alcotest.(check bool) "draining afterwards" true (Sup.draining sup)
        | rs ->
            Alcotest.failf "unexpected shutdown transcript: %s"
              (String.concat " | " (List.map P.response_to_line rs)));
    t "backoff sleeps land on the supervisor's clock" (fun () ->
        let clock = Sup.sim_clock () in
        let fails = ref 2 in
        let runner _ ~recovery:_ ~deadline_s:_ =
          if !fails > 0 then begin
            decr fails;
            Sup.A_error
              {
                P.e_tag = "trace_format";
                e_path = None;
                e_retryable = true;
                e_detail = "transient";
              }
          end
          else Sup.A_ok ok_info
        in
        let policy =
          {
            Policy.default with
            max_retries = 2;
            backoff_base_s = 0.1;
            backoff_factor = 2.;
            jitter = 0.;
          }
        in
        let sup = Sup.create ~seed:1 ~runner ~clock () in
        ignore (Sup.submit sup (submit_of ~policy "r"));
        ignore (Sup.run_next sup);
        (* two retries => 0.1 + 0.2 seconds of virtual backoff *)
        Alcotest.(check (float 1e-6))
          "virtual time advanced by the schedule" 0.3
          (clock.Sup.now ()));
  ]

(* ------------------------------------------------------------------ *)
(* Worker pool: concurrent dispatch, crash restart, breaker, poison    *)

module Pool = Serve.Pool

let pool_sub ?(policy = Policy.default) id =
  {
    P.sub_id = id;
    sub_source = P.J_app { app = "x"; nranks = 4; cls = "A" };
    sub_policy = policy;
    sub_emit_text = false;
    sub_out = None;
  }

let dispatch_wids acts =
  List.filter_map
    (function Pool.Dispatch { wid; _ } -> Some wid | _ -> None)
    acts

let ok_behavior ?(dur = 0.01) () =
  Pool.Sim.B_ok { dur; statements = 4 }

let sim_pool ?queue_limit ?metrics ~workers () =
  Pool.create ?queue_limit ?metrics
    ~wpolicy:{ Pool.default_wpolicy with workers }
    ()

let last_result_at responses =
  List.fold_left
    (fun acc (at, r) ->
      match r with P.Result_ok _ | P.Result_error _ -> Float.max acc at | _ -> acc)
    0. responses

let pool_tests =
  [
    t "4 concurrent slow jobs finish in ~1x single-job wall-clock" (fun () ->
        let slow _ ~attempt:_ ~recovery:_ = ok_behavior ~dur:1.0 () in
        let timeline =
          List.init 4 (fun i ->
              (0.0, Pool.Sim.I_submit (pool_sub (Printf.sprintf "j%d" i))))
          @ [ (0.0, Pool.Sim.I_drain) ]
        in
        let run workers =
          Pool.Sim.run ~pool:(sim_pool ~workers ()) ~script:slow ~timeline ()
        in
        let wide = run 4 and narrow = run 1 in
        let oks rs =
          List.length
            (List.filter (fun (_, r) ->
                 match r with P.Result_ok _ -> true | _ -> false)
               rs)
        in
        Alcotest.(check int) "4 workers: all ok" 4 (oks wide);
        Alcotest.(check int) "1 worker: all ok" 4 (oks narrow);
        let t4 = last_result_at wide and t1 = last_result_at narrow in
        Alcotest.(check bool)
          (Printf.sprintf "4 workers ~1x (%.3fs)" t4)
          true (t4 < 1.5);
        Alcotest.(check bool)
          (Printf.sprintf "1 worker ~4x (%.3fs)" t1)
          true (t1 >= 4.0));
    t "worker crash mid-job: restart + retry succeeds elsewhere" (fun () ->
        (* worker 0 crashes on the first attempt; its restart backoff
           (0.1s) is longer than the job's retry backoff (<= 0.0625s),
           so the retry can only have run on worker 1 *)
        let script _ ~attempt ~recovery:_ =
          if attempt = 0 then
            Pool.Sim.B_crash { dur = 0.01; detail = "synthetic segfault" }
          else ok_behavior ()
        in
        let m = Obs.Metrics.create () in
        let rs =
          Pool.Sim.run
            ~pool:(sim_pool ~metrics:m ~workers:2 ())
            ~script
            ~timeline:
              [ (0.0, Pool.Sim.I_submit (pool_sub "j1")); (0.0, Pool.Sim.I_drain) ]
            ()
        in
        (match
           List.find_opt
             (fun (_, r) -> match r with P.Result_ok _ -> true | _ -> false)
             rs
         with
        | Some (at, P.Result_ok { attempts; _ }) ->
            Alcotest.(check int) "second attempt won" 2 attempts;
            Alcotest.(check bool)
              (Printf.sprintf "retry beat worker 0's restart (%.3fs)" at)
              true
              (at < 0.12)
        | _ -> Alcotest.fail "no ok result");
        Alcotest.(check (option int))
          "one abnormal death" (Some 1)
          (Obs.Metrics.counter_value m "serve.pool.deaths");
        Alcotest.(check bool) "slot restarted" true
          (Obs.Metrics.counter_value m "serve.pool.restarts" >= Some 1));
    t "poison job quarantined after crashing 2 distinct workers" (fun () ->
        let script (s : P.submit) ~attempt:_ ~recovery:_ =
          if s.P.sub_id = "poison" then
            Pool.Sim.B_crash { dur = 0.01; detail = "poison pill" }
          else ok_behavior ()
        in
        let m = Obs.Metrics.create () in
        let rs =
          Pool.Sim.run
            ~pool:(sim_pool ~metrics:m ~workers:3 ())
            ~script
            ~timeline:
              [
                (0.0, Pool.Sim.I_submit (pool_sub "poison"));
                (0.5, Pool.Sim.I_submit (pool_sub "after"));
                (0.5, Pool.Sim.I_drain);
              ]
            ()
        in
        (match
           List.find_opt
             (fun (_, r) ->
               match r with
               | P.Result_error { id = "poison"; _ } -> true
               | _ -> false)
             rs
         with
        | Some (_, P.Result_error { attempts; error; _ }) ->
            Alcotest.(check string) "typed poisoned" "poisoned"
              error.P.e_tag;
            Alcotest.(check bool) "not retryable" false error.P.e_retryable;
            Alcotest.(check int) "crashed exactly 2 workers" 2 attempts
        | _ -> Alcotest.fail "poison job got no terminal error");
        Alcotest.(check bool) "pool still serves" true
          (List.exists
             (fun (_, r) ->
               match r with P.Result_ok { id = "after"; _ } -> true | _ -> false)
             rs);
        Alcotest.(check (option int))
          "quarantine counted" (Some 1)
          (Obs.Metrics.counter_value m "serve.pool.quarantined"));
    t "breaker parks a crash-looping slot; probation is one-strike" (fun () ->
        let wp =
          {
            Pool.default_wpolicy with
            workers = 1;
            restart_backoff_base_s = 0.05;
            breaker_deaths = 2;
            breaker_window_s = 30.0;
            breaker_cooldown_s = 1.0;
          }
        in
        let m = Obs.Metrics.create () in
        let pool = Pool.create ~metrics:m ~wpolicy:wp () in
        ignore (Pool.boot pool);
        ignore (Pool.handle pool ~now:0.0 (Pool.E_spawned { wid = 0 }));
        ignore (Pool.handle pool ~now:0.1 (Pool.E_died { wid = 0; detail = "d1" }));
        Alcotest.(check string) "first death: backoff" "backoff"
          (Pool.worker_state_name pool 0);
        ignore (Pool.tick pool ~now:0.2);
        ignore (Pool.handle pool ~now:0.2 (Pool.E_spawned { wid = 0 }));
        ignore (Pool.handle pool ~now:0.3 (Pool.E_died { wid = 0; detail = "d2" }));
        Alcotest.(check string) "second death in window: parked" "parked"
          (Pool.worker_state_name pool 0);
        Alcotest.(check (option int))
          "breaker tripped" (Some 1)
          (Obs.Metrics.counter_value m "serve.pool.breaker_trips");
        (* cooldown elapses -> probation spawn *)
        ignore (Pool.tick pool ~now:1.4);
        Alcotest.(check string) "unparked" "starting"
          (Pool.worker_state_name pool 0);
        ignore (Pool.handle pool ~now:1.4 (Pool.E_spawned { wid = 0 }));
        ignore (Pool.handle pool ~now:1.5 (Pool.E_died { wid = 0; detail = "d3" }));
        Alcotest.(check string) "probation death re-parks immediately" "parked"
          (Pool.worker_state_name pool 0);
        Alcotest.(check (option int))
          "second trip" (Some 2)
          (Obs.Metrics.counter_value m "serve.pool.breaker_trips"));
    t "deadline kill respawns the slot and is not a breaker death" (fun () ->
        let policy =
          { Policy.default with deadline_s = Some 0.5; max_retries = 0 }
        in
        let script (s : P.submit) ~attempt:_ ~recovery:_ =
          if s.P.sub_id = "hang" then Pool.Sim.B_hang else ok_behavior ()
        in
        let m = Obs.Metrics.create () in
        let rs =
          Pool.Sim.run
            ~pool:(sim_pool ~metrics:m ~workers:1 ())
            ~script
            ~timeline:
              [
                (0.0, Pool.Sim.I_submit (pool_sub ~policy "hang"));
                (1.0, Pool.Sim.I_submit (pool_sub ~policy "next"));
                (1.0, Pool.Sim.I_drain);
              ]
            ()
        in
        (match
           List.find_opt
             (fun (_, r) ->
               match r with
               | P.Result_error { id = "hang"; _ } -> true
               | _ -> false)
             rs
         with
        | Some (_, P.Result_error { error; _ }) ->
            Alcotest.(check string) "typed timeout" "deadline_exceeded"
              error.P.e_tag
        | _ -> Alcotest.fail "hanging job got no terminal error");
        Alcotest.(check bool) "slot recovered for the next job" true
          (List.exists
             (fun (_, r) ->
               match r with P.Result_ok { id = "next"; _ } -> true | _ -> false)
             rs);
        Alcotest.(check (option int))
          "deadline kill counted" (Some 1)
          (Obs.Metrics.counter_value m "serve.deadline_kills");
        Alcotest.(check (option int))
          "not a breaker death" None
          (Obs.Metrics.counter_value m "serve.pool.deaths"));
    t "admission bounds live jobs; duplicate live ids rejected" (fun () ->
        let pool = sim_pool ~queue_limit:2 ~workers:1 () in
        ignore (Pool.boot pool);
        (* worker never spawns, so submissions stay queued (= live) *)
        let accept id =
          match Pool.submit pool ~now:0.0 (pool_sub id) with
          | P.Accepted _, _ -> true
          | _ -> false
        in
        Alcotest.(check bool) "j1 in" true (accept "j1");
        Alcotest.(check bool) "j2 in" true (accept "j2");
        (match Pool.submit pool ~now:0.0 (pool_sub "j3") with
        | P.Rejected { reason = P.Queue_full; _ }, [] -> ()
        | _ -> Alcotest.fail "overflow not shed");
        let pool4 = sim_pool ~queue_limit:8 ~workers:1 () in
        ignore (Pool.boot pool4);
        ignore (Pool.submit pool4 ~now:0.0 (pool_sub "dup"));
        match Pool.submit pool4 ~now:0.0 (pool_sub "dup") with
        | P.Rejected { reason = P.Bad_request _; id = Some "dup" }, [] -> ()
        | _ -> Alcotest.fail "duplicate live id accepted");
    t "dispatch picks FIFO job, lowest-numbered idle worker" (fun () ->
        let pool = sim_pool ~workers:3 () in
        ignore (Pool.boot pool);
        for wid = 0 to 2 do
          ignore (Pool.handle pool ~now:0.0 (Pool.E_spawned { wid }))
        done;
        let _, a1 = Pool.submit pool ~now:0.1 (pool_sub "a") in
        let _, a2 = Pool.submit pool ~now:0.1 (pool_sub "b") in
        Alcotest.(check (list int)) "a -> worker 0" [ 0 ] (dispatch_wids a1);
        Alcotest.(check (list int)) "b -> worker 1" [ 1 ] (dispatch_wids a2);
        let done_acts =
          Pool.handle pool ~now:0.2
            (Pool.E_result
               {
                 wid = 0;
                 outcome =
                   Sup.A_ok
                     {
                       P.ok_statements = 1;
                       ok_final_rsds = 1;
                       ok_recovery = "strict";
                       ok_warnings = [];
                       ok_text = None;
                       ok_out = None;
                     };
               })
        in
        ignore done_acts;
        let _, a3 = Pool.submit pool ~now:0.3 (pool_sub "c") in
        Alcotest.(check (list int)) "freed worker 0 reused" [ 0 ]
          (dispatch_wids a3));
    t "shutdown cancels queued and running jobs and kills workers" (fun () ->
        let pool = sim_pool ~workers:1 () in
        ignore (Pool.boot pool);
        ignore (Pool.handle pool ~now:0.0 (Pool.E_spawned { wid = 0 }));
        ignore (Pool.submit pool ~now:0.0 (pool_sub "j1"));
        (* j1 is busy on worker 0 *)
        ignore (Pool.submit pool ~now:0.0 (pool_sub "j2"));
        ignore (Pool.submit pool ~now:0.0 (pool_sub "j3"));
        let responses, acts = Pool.shutdown pool ~now:0.1 in
        let ids =
          List.filter_map
            (function P.Cancelled { id } -> Some id | _ -> None)
            responses
        in
        Alcotest.(check (list string))
          "queued first, then running" [ "j2"; "j3"; "j1" ] ids;
        (match List.rev responses with
        | P.Drained { jobs_run = 0; cancelled = 3 } :: _ -> ()
        | _ -> Alcotest.fail "summary missing or wrong");
        Alcotest.(check bool) "running worker killed" true
          (List.exists (function Pool.Kill { wid = 0 } -> true | _ -> false) acts);
        Alcotest.(check bool) "pool drains afterwards" true
          (Pool.draining pool && Pool.idle pool));
  ]

(* ------------------------------------------------------------------ *)
(* Service fuzzer                                                      *)

let fuzz_tests =
  [
    t "50-seed campaign: no violations" (fun () ->
        let s =
          Check.Servefuzz.run
            {
              Check.Servefuzz.seed_start = 1;
              seeds = 50;
              workers = 1;
              log = ignore;
            }
        in
        Alcotest.(check int) "cases" 50 s.Check.Servefuzz.cases;
        Alcotest.(check bool) "jobs submitted" true (s.Check.Servefuzz.jobs > 100);
        (match s.Check.Servefuzz.violations with
        | [] -> ()
        | v :: _ ->
            Alcotest.failf "%d violations; first: seed %d: %s"
              (List.length s.Check.Servefuzz.violations)
              v.Check.Servefuzz.v_seed v.Check.Servefuzz.v_what);
        (* the merged registry carries the serve.* instruments *)
        Alcotest.(check bool)
          "outcome counters merged" true
          (Obs.Metrics.counter_value s.Check.Servefuzz.metrics
             "servefuzz.jobs"
           <> None));
    t "same seed, byte-identical transcript" (fun () ->
        for seed = 1 to 10 do
          Alcotest.(check string)
            (Printf.sprintf "seed %d" seed)
            (Check.Servefuzz.transcript ~seed ())
            (Check.Servefuzz.transcript ~seed ())
        done);
    t "concurrent campaign (3 workers, 25 seeds): no violations" (fun () ->
        let s =
          Check.Servefuzz.run
            {
              Check.Servefuzz.seed_start = 1;
              seeds = 25;
              workers = 3;
              log = ignore;
            }
        in
        Alcotest.(check int) "cases" 25 s.Check.Servefuzz.cases;
        Alcotest.(check bool) "jobs submitted" true (s.Check.Servefuzz.jobs > 50);
        match s.Check.Servefuzz.violations with
        | [] -> ()
        | v :: _ ->
            Alcotest.failf "%d violations; first: seed %d: %s"
              (List.length s.Check.Servefuzz.violations)
              v.Check.Servefuzz.v_seed v.Check.Servefuzz.v_what);
    t "same seed, byte-identical concurrent transcript" (fun () ->
        for seed = 1 to 8 do
          Alcotest.(check string)
            (Printf.sprintf "seed %d" seed)
            (Check.Servefuzz.transcript ~workers:4 ~seed ())
            (Check.Servefuzz.transcript ~workers:4 ~seed ())
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry under concurrent mutation                          *)

let metrics_domain_tests =
  [
    t "parallel mutation from domains is safe and lossless" (fun () ->
        let m = Obs.Metrics.create () in
        let domains = 4 and per_domain = 5_000 in
        let worker i () =
          for k = 1 to per_domain do
            Obs.Metrics.inc m "shared.counter";
            Obs.Metrics.inc m ~labels:[ ("domain", string_of_int i) ]
              "per.domain";
            Obs.Metrics.set m "gauge" (float_of_int k);
            Obs.Metrics.observe m "histo" (float_of_int (k mod 10))
          done
        in
        let ds = List.init domains (fun i -> Domain.spawn (worker i)) in
        List.iter Domain.join ds;
        Alcotest.(check (option int))
          "no lost increments" (Some (domains * per_domain))
          (Obs.Metrics.counter_value m "shared.counter");
        for i = 0 to domains - 1 do
          Alcotest.(check (option int))
            (Printf.sprintf "domain %d counter" i)
            (Some per_domain)
            (Obs.Metrics.counter_value m
               ~labels:[ ("domain", string_of_int i) ]
               "per.domain")
        done;
        (* the dump must still be well-formed JSONL *)
        String.split_on_char '\n' (Obs.Metrics.to_jsonl m)
        |> List.iter (fun line ->
               if line <> "" then ignore (Obs.Json.parse line)));
  ]

let suite =
  policy_tests @ protocol_tests @ supervisor_tests @ pool_tests @ fuzz_tests
  @ metrics_domain_tests
