(* End-to-end smoke test for the worker pool: start `benchgen serve
   --workers 2`, dispatch a job that blocks its worker in open(2) on a
   writer-less FIFO, SIGKILL the worker's real pid mid-job, and assert
   the supervision chain live: the job is retried on the *other*
   worker, a second kill quarantines it with a typed `poisoned` error,
   the pool keeps serving, the drain exits 0, and the restart and
   quarantine counters land in the metrics export.  A second section
   checks SIGTERM: graceful drain, exit 0, socket file removed.

   Worker pids and dispatch routing are learned from the server's own
   stderr log ("pool: worker N spawned pid=P", "pool: job J -> worker
   N pid=P").

   Usage: pool_smoke.exe PATH-TO-BENCHGEN-CLI *)

module P = Serve.Protocol

let cli = Sys.argv.(1)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("pool_smoke: FAIL: " ^ s);
      exit 1)
    fmt

(* a wedged server must fail the test, not hang the build *)
let () = ignore (Unix.alarm 120)

let run_quiet args =
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid = Unix.create_process args.(0) args Unix.stdin null Unix.stderr in
  Unix.close null;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> fail "setup command failed: %s" (String.concat " " (Array.to_list args))

let good_trace = "pool-smoke-good.trace"
let hang_fifo = "pool-smoke-hang.fifo"
let sock_path = "pool-smoke.sock"
let metrics_path = "pool-smoke.metrics.jsonl"

let () =
  run_quiet [| cli; "trace"; "ring"; "-n"; "4"; "-o"; good_trace |];
  (try Unix.unlink hang_fifo with Unix.Unix_error _ -> ());
  Unix.mkfifo hang_fifo 0o600;
  try Unix.unlink sock_path with Unix.Unix_error _ -> ()

let wait_exit_0 what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> fail "%s exited %d, wanted 0" what n
  | _ -> fail "%s died on a signal" what

let connect_unix path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect sock (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.1;
        go (tries - 1)
  in
  go 100;
  (Unix.out_channel_of_descr sock, Unix.in_channel_of_descr (Unix.dup sock))

let send oc line =
  output_string oc (line ^ "\n");
  flush oc

let recv ic what =
  match input_line ic with
  | line -> (
      match P.response_of_line line with
      | r -> r
      | exception _ -> fail "%s: untyped response line: %s" what line)
  | exception End_of_file -> fail "%s: connection closed early" what

(* ------------------------------------------------------------------ *)
(* 1. kill a worker mid-job: retry elsewhere, then poison quarantine   *)

let () =
  let err_r, err_w = Unix.pipe ~cloexec:true () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [|
        cli; "serve"; "--socket"; sock_path; "--workers"; "2";
        "--metrics-out"; metrics_path;
      |]
      null Unix.stdout err_w
  in
  Unix.close null;
  Unix.close err_w;
  let err_ic = Unix.in_channel_of_descr err_r in
  (* scan the server's own log until [want] yields on a line *)
  let await_log what want =
    let rec go () =
      match input_line err_ic with
      | line -> ( match want line with Some v -> v | None -> go ())
      | exception End_of_file -> fail "server exited while waiting for %s" what
    in
    go ()
  in
  let dispatch_of line =
    Scanf.sscanf_opt line "benchgen: serve: pool: job %s -> worker %d pid=%d"
      (fun job wid wpid -> (job, wid, wpid))
  in
  let oc, ic = connect_unix sock_path in
  send oc
    (Printf.sprintf {|{"op":"submit","id":"victim","trace":"%s"}|} hang_fifo);
  (match recv ic "victim" with
  | P.Accepted { id = "victim"; _ } -> ()
  | r -> fail "victim not accepted: %s" (P.response_to_line r));
  let _, wid1, wpid1 =
    await_log "first dispatch" (fun l ->
        match dispatch_of l with
        | Some (("victim", _, _) as d) -> Some d
        | _ -> None)
  in
  Unix.kill wpid1 Sys.sigkill;
  (* the pool must retry on the *other* worker: slot wid1's restart
     backoff (0.1 s) outlasts the job's retry backoff (< 0.0625 s) *)
  let _, wid2, wpid2 =
    await_log "retry dispatch" (fun l ->
        match dispatch_of l with
        | Some (("victim", _, _) as d) -> Some d
        | _ -> None)
  in
  if wid2 = wid1 then fail "retry went back to the killed slot %d" wid1;
  Unix.kill wpid2 Sys.sigkill;
  (* two distinct workers crashed: the job must come back poisoned *)
  (match recv ic "victim" with
  | P.Result_error { id = "victim"; attempts; error } ->
      if error.P.e_tag <> "poisoned" then
        fail "victim tag %S, wanted poisoned" error.P.e_tag;
      if error.P.e_retryable then fail "poisoned must not be retryable";
      if attempts <> 2 then fail "victim attempts %d, wanted 2" attempts
  | r -> fail "victim not quarantined: %s" (P.response_to_line r));
  (* the pool recovers: a good job still completes *)
  send oc
    (Printf.sprintf {|{"op":"submit","id":"after","trace":"%s"}|} good_trace);
  (match recv ic "after" with
  | P.Accepted { id = "after"; _ } -> ()
  | r -> fail "after not accepted: %s" (P.response_to_line r));
  (match recv ic "after" with
  | P.Result_ok { id = "after"; _ } -> ()
  | r -> fail "after did not succeed: %s" (P.response_to_line r));
  send oc {|{"op":"drain"}|};
  (match recv ic "drain" with
  | P.Drained _ -> ()
  | r -> fail "wanted drained, got %s" (P.response_to_line r));
  close_out oc;
  close_in ic;
  wait_exit_0 "pool server" pid;
  close_in err_ic;
  (* the supervision counters must land in the metrics export *)
  let metrics =
    let ic = open_in metrics_path in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file ->
          close_in ic;
          acc
    in
    go []
  in
  let counter name =
    List.fold_left
      (fun acc line ->
        match
          ( Obs.Json.member "name" (Obs.Json.parse line),
            Obs.Json.member "value" (Obs.Json.parse line) )
        with
        | Some (Obs.Json.Str n), Some (Obs.Json.Num v) when n = name ->
            Float.max acc v
        | _ -> acc)
      Float.neg_infinity metrics
  in
  (* the second killed slot may still be in restart backoff when the
     drain lands, so only its sibling's respawn is guaranteed *)
  if counter "serve.pool.restarts" < 1.0 then
    fail "serve.pool.restarts %.0f, wanted >= 1" (counter "serve.pool.restarts");
  if counter "serve.pool.quarantined" < 1.0 then
    fail "serve.pool.quarantined %.0f, wanted >= 1"
      (counter "serve.pool.quarantined");
  if counter "serve.pool.deaths" < 2.0 then
    fail "serve.pool.deaths %.0f, wanted >= 2" (counter "serve.pool.deaths");
  prerr_endline "pool_smoke: kill/retry/quarantine ok"

(* ------------------------------------------------------------------ *)
(* 2. concurrency: 4 slow jobs on 4 workers take ~1x, not ~4x          *)

let () =
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock_path; "--workers"; "4" |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  let oc, ic = connect_unix sock_path in
  (* each job blocks its worker in open(2) on the writer-less FIFO for
     exactly its 0.6 s deadline — a deterministic slow job.  Serial
     execution would need >= 2.4 s; 4 workers need ~0.6 s. *)
  for i = 1 to 4 do
    send oc
      (Printf.sprintf
         {|{"op":"submit","id":"slow%d","trace":"%s","deadline_s":0.6,"max_retries":0}|}
         i hang_fifo)
  done;
  for i = 1 to 4 do
    match recv ic "slow accept" with
    | P.Accepted _ -> ()
    | r -> fail "slow%d not accepted: %s" i (P.response_to_line r)
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 4 do
    match recv ic "slow result" with
    | P.Result_error { error; _ } when error.P.e_tag = "deadline_exceeded" ->
        ()
    | r -> fail "wanted 4 deadline kills, got %s" (P.response_to_line r)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > 1.8 then
    fail "4 slow jobs on 4 workers took %.2fs, wanted ~0.6s (serial = 2.4s)"
      elapsed;
  send oc {|{"op":"drain"}|};
  (match recv ic "drain" with
  | P.Drained _ -> ()
  | r -> fail "wanted drained, got %s" (P.response_to_line r));
  close_out oc;
  close_in ic;
  wait_exit_0 "concurrency server" pid;
  Printf.eprintf "pool_smoke: 4-way concurrency ok (%.2fs)\n%!" elapsed

(* ------------------------------------------------------------------ *)
(* 3. SIGTERM: graceful drain, exit 0, socket removed                  *)

let () =
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock_path; "--workers"; "2" |]
      null Unix.stdout Unix.stderr
  in
  Unix.close null;
  let oc, ic = connect_unix sock_path in
  send oc
    (Printf.sprintf {|{"op":"submit","id":"term","trace":"%s"}|} good_trace);
  (match recv ic "term" with
  | P.Accepted { id = "term"; _ } -> ()
  | r -> fail "term not accepted: %s" (P.response_to_line r));
  Unix.kill pid Sys.sigterm;
  (* the in-flight job still completes before the drain finishes *)
  (match recv ic "term" with
  | P.Result_ok { id = "term"; _ } -> ()
  | r -> fail "term did not complete under SIGTERM: %s" (P.response_to_line r));
  close_out oc;
  close_in ic;
  wait_exit_0 "sigterm server" pid;
  if Sys.file_exists sock_path then fail "socket file not removed on SIGTERM";
  prerr_endline "pool_smoke: sigterm drain ok"
