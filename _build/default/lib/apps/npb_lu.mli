(** NPB LU: SSOR solver skeleton (2-D grid; lower/upper wavefront sweeps
    receiving inflow with MPI_ANY_SOURCE, boundary exchange, residual
    allreduces).  The suite's Algorithm 2 workload. *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
