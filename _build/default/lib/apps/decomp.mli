(** Process-grid decompositions shared by the application skeletons. *)

(** [near_square p] = [(px, py)] with [px * py = p], [px <= py], [px] the
    largest divisor of [p] at most [sqrt p]. *)
val near_square : int -> int * int

(** [factor3 p] = [(px, py, pz)] with product [p], as cubic as possible. *)
val factor3 : int -> int * int * int

val is_square : int -> bool
val is_power_of_two : int -> bool

(** Row-major 2-D coordinates: [coords2 ~px rank = (x, y)] with
    [rank = y * px + x]. *)
val coords2 : px:int -> int -> int * int

val rank2 : px:int -> x:int -> y:int -> int

(** Neighbor in a non-periodic 2-D grid; [None] at the boundary. *)
val neighbor2 : px:int -> py:int -> rank:int -> dx:int -> dy:int -> int option

(** 3-D coordinates and neighbors, row-major x-fastest. *)
val coords3 : px:int -> py:int -> int -> int * int * int

val rank3 : px:int -> py:int -> x:int -> y:int -> z:int -> int

val neighbor3 :
  px:int -> py:int -> pz:int -> rank:int -> dx:int -> dy:int -> dz:int -> int option

(** Periodic variant (wraps around). *)
val neighbor3_periodic :
  px:int -> py:int -> pz:int -> rank:int -> dx:int -> dy:int -> dz:int -> int
