(** Sweep3D: KBA wavefront transport kernel (2-D grid; 8 octant sweeps
    over k-blocks, plus a convergence allreduce invoked from different
    call sites on edge vs. interior ranks).  The suite's Algorithm 1
    workload. *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
