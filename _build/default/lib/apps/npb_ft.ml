(* FT — 3-D FFT skeleton.

   1-D (slab) decomposition: each iteration evolves the spectrum locally
   and performs the global transpose as an all-to-all over the full
   communicator, followed by a checksum allreduce — the classic
   alltoall-dominated NPB code. *)

open Mpisim

let name = "ft"
let supports p = Decomp.is_power_of_two p && p >= 2

let s_init = Mpi.site ~label:"ft_init" __POS__
let s_warm = Mpi.site ~label:"warmup_transpose" __POS__
let s_tr = Mpi.site ~label:"transpose" __POS__
let s_ck = Mpi.site ~label:"checksum" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (20. *. Params.iter_scale cls)) in
  let sz = Params.size_scale cls in
  let pair_bytes =
    max 256 (int_of_float (sz *. 6.4e7 /. float_of_int (p * p)))
  in
  let total_compute = Params.compute_scale cls *. 80. *. 16. /. float_of_int p in
  let work = total_compute /. float_of_int (niter + 1) in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  (* initial forward FFT with its transpose *)
  Params.compute rng ~mean:work ctx;
  Mpi.alltoall ~site:s_warm ctx ~bytes_per_pair:pair_bytes;
  for _ = 1 to niter do
    Params.compute rng ~mean:work ctx;
    Mpi.alltoall ~site:s_tr ctx ~bytes_per_pair:pair_bytes;
    Mpi.allreduce ~site:s_ck ctx ~bytes:16
  done;
  Mpi.finalize ~site:s_fin ctx
