(* Synthetic microbenchmarks.

   Not part of the paper's evaluation suite, but first-class apps so the
   CLI, tests, and the scaling/extrapolation experiments can drive them:
   the paper's own Figure 2 ring, a 2-D periodic halo stencil (whose
   column-neighbour offset scales as sqrt p, exercising extrapolation),
   and a butterfly (log2 p stages of XOR partners — a trace whose shape
   legitimately varies with p). *)

open Mpisim

let ring_name = "ring"
let ring_supports p = p >= 2

let r_recv = Mpi.site ~label:"ring_recv" __POS__
let r_send = Mpi.site ~label:"ring_send" __POS__
let r_wait = Mpi.site ~label:"ring_wait" __POS__
let r_fin = Mpi.site ~label:"finalize" __POS__

let ring_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:ring_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (1000. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 16384.)) in
  for _ = 1 to iters do
    let r = Mpi.irecv ~site:r_recv ctx ~src:(Call.Rank ((ctx.rank + n - 1) mod n)) ~bytes in
    let s = Mpi.isend ~site:r_send ctx ~dst:((ctx.rank + 1) mod n) ~bytes in
    ignore (Mpi.waitall ~site:r_wait ctx [ r; s ]);
    Params.compute rng ~mean:1e-5 ctx
  done;
  Mpi.finalize ~site:r_fin ctx

let stencil_name = "stencil2d"
let stencil_supports p = Decomp.is_square p && p >= 4

let s_recv = Mpi.site ~label:"halo_recv" __POS__
let s_send = Mpi.site ~label:"halo_send" __POS__
let s_wait = Mpi.site ~label:"halo_wait" __POS__
let s_norm = Mpi.site ~label:"norm" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let stencil_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:stencil_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let px = int_of_float (sqrt (float_of_int n) +. 0.5) in
  let iters = max 1 (int_of_float (100. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 65536. /. float_of_int px)) in
  for _ = 1 to iters do
    let nbrs =
      [ (ctx.rank + 1) mod n; (ctx.rank + n - 1) mod n;
        (ctx.rank + px) mod n; (ctx.rank + n - px) mod n ]
    in
    let rs = List.map (fun s -> Mpi.irecv ~site:s_recv ctx ~src:(Call.Rank s) ~bytes) nbrs in
    let ss = List.map (fun d -> Mpi.isend ~site:s_send ctx ~dst:d ~bytes) nbrs in
    ignore (Mpi.waitall ~site:s_wait ctx (rs @ ss));
    Params.compute rng ~mean:5e-5 ctx;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx

let butterfly_name = "butterfly"
let butterfly_supports p = Decomp.is_power_of_two p && p >= 2

let b_ex = Mpi.site ~label:"butterfly_exchange" __POS__
let b_fin = Mpi.site ~label:"finalize" __POS__

let butterfly_program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let rng = Params.rng_for ~app:butterfly_name ~seed ~rank:ctx.rank in
  let n = ctx.nranks in
  let iters = max 1 (int_of_float (50. *. Params.iter_scale cls)) in
  let bytes = max 64 (int_of_float (Params.size_scale cls *. 32768.)) in
  let stages =
    let rec go acc v = if v >= n then acc else go (acc + 1) (2 * v) in
    go 0 1
  in
  for _ = 1 to iters do
    for stage = 0 to stages - 1 do
      let partner = ctx.rank lxor (1 lsl stage) in
      ignore
        (Mpi.sendrecv ~site:b_ex ctx ~dst:partner ~send_bytes:bytes
           ~src:(Call.Rank partner) ~recv_bytes:bytes);
      Params.compute rng ~mean:2e-5 ctx
    done
  done;
  Mpi.finalize ~site:b_fin ctx
