(* Sweep3D — the KBA wavefront neutron-transport kernel.

   2-D process grid; for each of the 8 octants the sweep processes
   k-blocks in wavefront order: receive inflow from the two upstream
   neighbors, compute the block, send outflow downstream.  The octant
   direction determines which neighbors are up- and downstream.

   After each outer iteration every rank joins a global convergence
   allreduce — but corner/edge ranks reach it from a different source
   line than interior ranks (mirroring the rank-conditional collective
   calls of Figure 3), so the trace contains per-call-site partial
   collectives and exercises Algorithm 1. *)

open Mpisim

let name = "sweep3d"
let supports p = p >= 4

let s_rx = Mpi.site ~label:"sweep_recv_x" __POS__
let s_ry = Mpi.site ~label:"sweep_recv_y" __POS__
let s_sx = Mpi.site ~label:"sweep_send_x" __POS__
let s_sy = Mpi.site ~label:"sweep_send_y" __POS__
let s_conv_edge = Mpi.site ~label:"converge_edge" __POS__
let s_conv_inner = Mpi.site ~label:"converge_inner" __POS__
let s_init = Mpi.site ~label:"sweep_init" __POS__
let s_flux = Mpi.site ~label:"flux_sum" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let px, py = Decomp.near_square p in
  let x, y = Decomp.coords2 ~px ctx.rank in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (4. *. Params.iter_scale cls)) in
  let kblocks = 6 in
  let sz = Params.size_scale cls in
  let angle_bytes = max 64 (int_of_float (sz *. 1.2e5 /. float_of_int px)) in
  let total_compute = Params.compute_scale cls *. 200. *. 16. /. float_of_int p in
  let work = total_compute /. float_of_int (niter * 8 * kblocks) in
  let octants = [ (1, 1); (1, -1); (-1, 1); (-1, -1); (1, 1); (1, -1); (-1, 1); (-1, -1) ] in
  let nb dx dy = Decomp.neighbor2 ~px ~py ~rank:ctx.rank ~dx ~dy in
  let on_edge = x = 0 || x = px - 1 || y = 0 || y = py - 1 in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:128;
  for _ = 1 to niter do
    List.iter
      (fun (dx, dy) ->
        for _ = 1 to kblocks do
          (match nb (-dx) 0 with
          | Some up -> ignore (Mpi.recv ~site:s_rx ctx ~src:(Call.Rank up) ~bytes:angle_bytes)
          | None -> ());
          (match nb 0 (-dy) with
          | Some up -> ignore (Mpi.recv ~site:s_ry ctx ~src:(Call.Rank up) ~bytes:angle_bytes)
          | None -> ());
          Params.compute rng ~mean:work ctx;
          (match nb dx 0 with
          | Some down -> Mpi.send ~site:s_sx ctx ~dst:down ~bytes:angle_bytes
          | None -> ());
          match nb 0 dy with
          | Some down -> Mpi.send ~site:s_sy ctx ~dst:down ~bytes:angle_bytes
          | None -> ()
        done)
      octants;
    (* rank-conditional call sites for the same global collective *)
    if on_edge then Mpi.allreduce ~site:s_conv_edge ctx ~bytes:8
    else Mpi.allreduce ~site:s_conv_inner ctx ~bytes:8
  done;
  Mpi.reduce ~site:s_flux ctx ~root:0 ~bytes:64;
  Mpi.finalize ~site:s_fin ctx
