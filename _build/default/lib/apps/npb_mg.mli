(** NPB MG: multigrid V-cycle skeleton (power-of-two ranks; 3-D periodic
    halo exchanges with level-dependent face sizes + norm allreduce). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
