type cls = S | W | A | B | C

let cls_of_string = function
  | "S" | "s" -> Some S
  | "W" | "w" -> Some W
  | "A" | "a" -> Some A
  | "B" | "b" -> Some B
  | "C" | "c" -> Some C
  | _ -> None

let cls_to_string = function S -> "S" | W -> "W" | A -> "A" | B -> "B" | C -> "C"

let iter_scale = function
  | S -> 0.1
  | W -> 0.2
  | A -> 0.4
  | B -> 0.7
  | C -> 1.0

let size_scale = function
  | S -> 0.0625
  | W -> 0.125
  | A -> 0.25
  | B -> 0.5
  | C -> 1.0

let compute_scale = function
  | S -> 0.01
  | W -> 0.05
  | A -> 0.2
  | B -> 0.5
  | C -> 1.0

let compute rng ~mean ctx =
  if mean > 0. then begin
    let t =
      Util.Rng.gaussian rng ~truncate_at_zero:true ~mean ~stddev:(0.015 *. mean) ()
    in
    if t > 0. then Mpisim.Mpi.compute ctx t
  end

let rng_for ~app ~seed ~rank =
  let h = Hashtbl.hash (app, seed) in
  Util.Rng.split (Util.Rng.create ~seed:h) ~index:rank
