(* SP — scalar pentadiagonal solver skeleton.

   Same multi-partition structure as BT but with more, smaller pipeline
   messages per solve (the pentadiagonal factorization exchanges two
   bands) and a different compute/communication balance. *)

open Mpisim

let name = "sp"
let supports p = Decomp.is_square p && p >= 4

let s_init = Mpi.site ~label:"sp_init" __POS__
let s_face_r = Mpi.site ~label:"copy_faces_recv" __POS__
let s_face_s = Mpi.site ~label:"copy_faces_send" __POS__
let s_face_w = Mpi.site ~label:"copy_faces_wait" __POS__
let s_fwd_r1 = Mpi.site ~label:"solve_fwd_recv1" __POS__
let s_fwd_r2 = Mpi.site ~label:"solve_fwd_recv2" __POS__
let s_fwd_s1 = Mpi.site ~label:"solve_fwd_send1" __POS__
let s_fwd_s2 = Mpi.site ~label:"solve_fwd_send2" __POS__
let s_bwd_r = Mpi.site ~label:"solve_bwd_recv" __POS__
let s_bwd_s = Mpi.site ~label:"solve_bwd_send" __POS__
let s_resid = Mpi.site ~label:"residual" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let line_solve ctx rng ~coord ~extent ~peer ~bytes ~work =
  if coord > 0 then begin
    ignore (Mpi.recv ~site:s_fwd_r1 ctx ~src:(Call.Rank (peer (-1))) ~bytes ~tag:(Call.Tag 1));
    ignore (Mpi.recv ~site:s_fwd_r2 ctx ~src:(Call.Rank (peer (-1))) ~bytes ~tag:(Call.Tag 2))
  end;
  Params.compute rng ~mean:work ctx;
  if coord < extent - 1 then begin
    Mpi.send ~site:s_fwd_s1 ctx ~dst:(peer 1) ~bytes ~tag:1;
    Mpi.send ~site:s_fwd_s2 ctx ~dst:(peer 1) ~bytes ~tag:2
  end;
  if coord < extent - 1 then
    ignore (Mpi.recv ~site:s_bwd_r ctx ~src:(Call.Rank (peer 1)) ~bytes ~tag:(Call.Tag 3));
  Params.compute rng ~mean:work ctx;
  if coord > 0 then Mpi.send ~site:s_bwd_s ctx ~dst:(peer (-1)) ~bytes ~tag:3

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let sq = int_of_float (sqrt (float_of_int p) +. 0.5) in
  let x, y = Decomp.coords2 ~px:sq ctx.rank in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (20. *. Params.iter_scale cls)) in
  let sz = Params.size_scale cls in
  let face_bytes = max 64 (int_of_float (sz *. 2.0e6 /. float_of_int p)) in
  let line_bytes = max 64 (face_bytes / 8) in
  let total_compute = Params.compute_scale cls *. 1100. *. 16. /. float_of_int p in
  let per_iter = total_compute /. float_of_int niter in
  let rhs_work = 0.35 *. per_iter in
  let solve_work = 0.65 *. per_iter /. (3. *. 2. *. float_of_int sq) in
  let wrap v = ((v mod sq) + sq) mod sq in
  let torus dx dy = Decomp.rank2 ~px:sq ~x:(wrap (x + dx)) ~y:(wrap (y + dy)) in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  for _ = 1 to niter do
    Params.compute rng ~mean:rhs_work ctx;
    let neighbors = [ torus (-1) 0; torus 1 0; torus 0 (-1); torus 0 1 ] in
    let recvs =
      List.map
        (fun nb -> Mpi.irecv ~site:s_face_r ctx ~src:(Call.Rank nb) ~bytes:face_bytes)
        neighbors
    in
    let sends =
      List.map (fun nb -> Mpi.isend ~site:s_face_s ctx ~dst:nb ~bytes:face_bytes) neighbors
    in
    ignore (Mpi.waitall ~site:s_face_w ctx (recvs @ sends));
    line_solve ctx rng ~coord:x ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x:(x + d) ~y)
      ~bytes:line_bytes ~work:solve_work;
    line_solve ctx rng ~coord:y ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x ~y:(y + d))
      ~bytes:line_bytes ~work:solve_work;
    line_solve ctx rng ~coord:y ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x ~y:(y + d))
      ~bytes:line_bytes ~work:solve_work
  done;
  Mpi.allreduce ~site:s_resid ctx ~bytes:40;
  Mpi.finalize ~site:s_fin ctx
