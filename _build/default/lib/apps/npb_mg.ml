(* MG — multigrid V-cycle skeleton.

   3-D periodic decomposition.  Each iteration descends the grid
   hierarchy (restriction) and climbs back (prolongation + smoothing);
   at every level each rank exchanges halo faces with its six neighbors,
   with face sizes shrinking 4x per coarser level, and a residual-norm
   allreduce closes the iteration. *)

open Mpisim

let name = "mg"
let supports p = Decomp.is_power_of_two p && p >= 2

let s_init = Mpi.site ~label:"mg_init" __POS__
let s_halo_r = Mpi.site ~label:"halo_recv" __POS__
let s_halo_s = Mpi.site ~label:"halo_send" __POS__
let s_halo_w = Mpi.site ~label:"halo_wait" __POS__
let s_norm = Mpi.site ~label:"norm" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let px, py, pz = Decomp.factor3 p in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (15. *. Params.iter_scale cls)) in
  let levels = 4 in
  let sz = Params.size_scale cls in
  let top_face = max 64 (int_of_float (sz *. 5.2e5 /. float_of_int p)) in
  let total_compute = Params.compute_scale cls *. 55. *. 16. /. float_of_int p in
  (* work per level halves with coarsening; normalize so the sum of all
     level visits over an iteration equals per_iter *)
  let per_iter = total_compute /. float_of_int niter in
  let weight l = 1.0 /. float_of_int (1 lsl (2 * (levels - l))) in
  let weight_sum =
    2.0 *. List.fold_left ( +. ) 0. (List.init levels (fun i -> weight (i + 1)))
  in
  let level_work l = per_iter *. weight l /. weight_sum in
  let halo ~bytes =
    let dirs =
      [ (-1, 0, 0); (1, 0, 0); (0, -1, 0); (0, 1, 0); (0, 0, -1); (0, 0, 1) ]
    in
    let neighbors =
      List.filter_map
        (fun (dx, dy, dz) ->
          let nb = Decomp.neighbor3_periodic ~px ~py ~pz ~rank:ctx.rank ~dx ~dy ~dz in
          if nb = ctx.rank then None else Some nb)
        dirs
      |> List.sort_uniq compare
    in
    let recvs =
      List.map (fun nb -> Mpi.irecv ~site:s_halo_r ctx ~src:(Call.Rank nb) ~bytes) neighbors
    in
    let sends = List.map (fun nb -> Mpi.isend ~site:s_halo_s ctx ~dst:nb ~bytes) neighbors in
    ignore (Mpi.waitall ~site:s_halo_w ctx (recvs @ sends))
  in
  let face_at l = max 64 (top_face / (1 lsl (2 * (levels - l)))) in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  for _ = 1 to niter do
    (* down-sweep: restrict to coarser grids *)
    for l = levels downto 1 do
      Params.compute rng ~mean:(level_work l) ctx;
      halo ~bytes:(face_at l)
    done;
    (* up-sweep: prolongate and smooth *)
    for l = 1 to levels do
      Params.compute rng ~mean:(level_work l) ctx;
      halo ~bytes:(face_at l)
    done;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx
