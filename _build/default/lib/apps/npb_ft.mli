(** NPB FT: 3-D FFT skeleton (power-of-two ranks; global transposes as
    world alltoalls + checksum allreduce per iteration). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
