(** NPB SP: scalar-pentadiagonal solver skeleton (square grid; BT-like
    structure with two forward bands per line solve). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
