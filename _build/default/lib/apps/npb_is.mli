(** NPB IS: integer-sort skeleton (power-of-two ranks; bucket-size
    allreduce, boundary alltoall, skewed-row alltoallv key exchange). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
