lib/apps/npb_sp.ml: Call Decomp List Mpi Mpisim Params
