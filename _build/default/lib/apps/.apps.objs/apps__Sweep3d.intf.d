lib/apps/sweep3d.mli: Mpisim Params
