lib/apps/npb_ep.mli: Mpisim Params
