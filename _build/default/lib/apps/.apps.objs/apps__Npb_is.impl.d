lib/apps/npb_is.ml: Array Decomp Mpi Mpisim Params
