lib/apps/params.mli: Mpisim Util
