lib/apps/npb_bt.ml: Call Decomp List Mpi Mpisim Params
