lib/apps/npb_sp.mli: Mpisim Params
