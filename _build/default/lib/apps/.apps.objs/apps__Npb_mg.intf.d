lib/apps/npb_mg.mli: Mpisim Params
