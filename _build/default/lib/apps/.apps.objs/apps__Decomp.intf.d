lib/apps/decomp.mli:
