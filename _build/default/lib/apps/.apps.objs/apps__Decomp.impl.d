lib/apps/decomp.ml:
