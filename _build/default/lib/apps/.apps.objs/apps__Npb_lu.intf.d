lib/apps/npb_lu.mli: Mpisim Params
