lib/apps/sweep3d.ml: Call Decomp List Mpi Mpisim Params
