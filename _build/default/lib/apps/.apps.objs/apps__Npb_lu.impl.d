lib/apps/npb_lu.ml: Call Decomp Fun List Mpi Mpisim Params
