lib/apps/npb_cg.ml: Call Decomp Mpi Mpisim Params
