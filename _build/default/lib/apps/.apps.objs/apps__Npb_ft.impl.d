lib/apps/npb_ft.ml: Decomp Mpi Mpisim Params
