lib/apps/npb_is.mli: Mpisim Params
