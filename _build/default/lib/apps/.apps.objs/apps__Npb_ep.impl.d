lib/apps/npb_ep.ml: Mpi Mpisim Params Util
