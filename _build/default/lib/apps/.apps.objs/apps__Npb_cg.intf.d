lib/apps/npb_cg.mli: Mpisim Params
