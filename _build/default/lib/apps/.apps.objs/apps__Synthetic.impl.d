lib/apps/synthetic.ml: Call Decomp List Mpi Mpisim Params
