lib/apps/npb_mg.ml: Call Decomp List Mpi Mpisim Params
