lib/apps/params.ml: Hashtbl Mpisim Util
