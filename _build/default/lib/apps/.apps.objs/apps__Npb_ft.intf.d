lib/apps/npb_ft.mli: Mpisim Params
