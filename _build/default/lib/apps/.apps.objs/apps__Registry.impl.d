lib/apps/registry.ml: List Mpisim Npb_bt Npb_cg Npb_ep Npb_ft Npb_is Npb_lu Npb_mg Npb_sp Params Sweep3d Synthetic
