lib/apps/npb_bt.mli: Mpisim Params
