lib/apps/registry.mli: Mpisim Params
