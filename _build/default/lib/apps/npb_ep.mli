(** NPB EP: embarrassingly parallel skeleton (any rank count; compute
    chunks with mild static imbalance + three small allreduces). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
