(* IS — integer-sort skeleton.

   Each ranking iteration computes local bucket counts, combines bucket
   sizes with an allreduce, exchanges partition boundaries with a small
   alltoall, and redistributes the keys with an alltoallv whose per-rank
   row reflects a mildly skewed key distribution — the v-collective that
   exercises Table 1's size averaging. *)

open Mpisim

let name = "is"
let supports p = Decomp.is_power_of_two p && p >= 2

let s_sizes = Mpi.site ~label:"bucket_sizes" __POS__
let s_bounds = Mpi.site ~label:"partition_bounds" __POS__
let s_keys = Mpi.site ~label:"key_redistribute" __POS__
let s_verify = Mpi.site ~label:"verify" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (10. *. Params.iter_scale cls)) in
  let sz = Params.size_scale cls in
  let keys_per_rank = max 1024 (int_of_float (sz *. 5.4e8 /. float_of_int p)) in
  let base_row = keys_per_rank * 4 / p in
  (* skewed but stationary key distribution: the same row every iteration
     so the trace compresses across iterations *)
  let row =
    Array.init p (fun d ->
        let skew = 1.0 +. (0.3 *. sin (float_of_int ((ctx.rank * 7) + (d * 3)))) in
        max 64 (int_of_float (float_of_int base_row *. skew)))
  in
  let total_compute = Params.compute_scale cls *. 45. *. 16. /. float_of_int p in
  let work = total_compute /. float_of_int (niter * 2) in
  for _ = 1 to niter do
    Params.compute rng ~mean:work ctx;
    Mpi.allreduce ~site:s_sizes ctx ~bytes:(1024 * 4);
    Mpi.alltoall ~site:s_bounds ctx ~bytes_per_pair:4;
    Mpi.alltoallv ~site:s_keys ctx ~bytes_to:row;
    Params.compute rng ~mean:work ctx
  done;
  Mpi.allreduce ~site:s_verify ctx ~bytes:8;
  Mpi.finalize ~site:s_fin ctx
