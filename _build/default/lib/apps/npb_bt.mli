(** NPB BT: block-tridiagonal solver skeleton (square process grid;
    torus face exchanges + x/y/z line-solve pipelines). *)

val name : string

(** Valid rank counts. *)
val supports : int -> bool

(** The simulator program; [cls] scales sizes/iterations/compute (default
    class C), [seed] drives the deterministic compute-time jitter. *)
val program :
  ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit
