(** The application suite: NPB 3.3 communication skeletons plus Sweep3D —
    the test programs of the paper's Section 5. *)

type app = {
  name : string;
  description : string;
  supports : int -> bool;  (** valid rank counts *)
  program : ?cls:Params.cls -> ?seed:int -> unit -> Mpisim.Mpi.ctx -> unit;
}

(** The paper's nine codes (BT CG EP FT IS LU MG SP, Sweep3D) followed by
    three synthetic microbenchmarks (ring, stencil2d, butterfly). *)
val all : app list

(** The paper's evaluation suite only (first nine). *)
val paper_suite : app list

val find : string -> app option

(** The smallest supported rank count >= [wanted]. *)
val fit_nranks : app -> wanted:int -> int
