(* LU — SSOR solver skeleton.

   2-D pencil decomposition.  Each pseudo-time iteration runs a lower-
   triangular and an upper-triangular wavefront sweep over the k-planes:
   a rank receives its inflow faces from the two upstream neighbors using
   MPI_ANY_SOURCE — the messages arrive in arbitrary order, exactly the
   nondeterminism Section 4.4 targets — computes the plane, and pushes
   outflow faces downstream with blocking sends.  A boundary exchange and
   periodic residual allreduces complete the iteration. *)

open Mpisim

let name = "lu"
let supports p = p >= 4 && fst (Decomp.near_square p) > 1

let s_low_r = Mpi.site ~label:"blts_recv_any" __POS__
let s_low_s = Mpi.site ~label:"blts_send" __POS__
let s_up_r = Mpi.site ~label:"buts_recv_any" __POS__
let s_up_s = Mpi.site ~label:"buts_send" __POS__
let s_ex3_r = Mpi.site ~label:"exchange3_recv" __POS__
let s_ex3_s = Mpi.site ~label:"exchange3_send" __POS__
let s_ex3_w = Mpi.site ~label:"exchange3_wait" __POS__
let s_resid = Mpi.site ~label:"residual" __POS__
let s_init = Mpi.site ~label:"lu_init" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let px, py = Decomp.near_square p in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (12. *. Params.iter_scale cls)) in
  let nz = 8 in
  let sz = Params.size_scale cls in
  let face_bytes = max 64 (int_of_float (sz *. 1.6e5 /. float_of_int px)) in
  let ex3_bytes = max 64 (int_of_float (sz *. 6.4e5 /. float_of_int px)) in
  let total_compute = Params.compute_scale cls *. 300. *. 16. /. float_of_int p in
  let work = total_compute /. float_of_int (niter * 2 * nz) in
  let nb dx dy = Decomp.neighbor2 ~px ~py ~rank:ctx.rank ~dx ~dy in
  (* wavefront sweep from one corner: receive the inflow faces in
     whatever order they arrive, compute, send outflow downstream *)
  let sweep ~recv_site ~send_site ~upstream ~downstream =
    for _ = 1 to nz do
      List.iter
        (fun nbr ->
          match nbr with
          | Some _ ->
              ignore
                (Mpi.recv ~site:recv_site ctx ~src:Call.Any_source
                   ~tag:(Call.Tag 10) ~bytes:face_bytes)
          | None -> ())
        upstream;
      Params.compute rng ~mean:work ctx;
      List.iter
        (fun nbr ->
          match nbr with
          | Some d -> Mpi.send ~site:send_site ctx ~dst:d ~tag:10 ~bytes:face_bytes
          | None -> ())
        downstream
    done
  in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  for it = 1 to niter do
    (* lower-triangular: wavefront from the (0,0) corner *)
    sweep ~recv_site:s_low_r ~send_site:s_low_s
      ~upstream:[ nb (-1) 0; nb 0 (-1) ]
      ~downstream:[ nb 1 0; nb 0 1 ];
    (* upper-triangular: wavefront from the opposite corner *)
    sweep ~recv_site:s_up_r ~send_site:s_up_s
      ~upstream:[ nb 1 0; nb 0 1 ]
      ~downstream:[ nb (-1) 0; nb 0 (-1) ];
    (* exchange_3: boundary data with all existing neighbors *)
    let neighbors = List.filter_map Fun.id [ nb (-1) 0; nb 1 0; nb 0 (-1); nb 0 1 ] in
    let recvs =
      List.map
        (fun nbr ->
          Mpi.irecv ~site:s_ex3_r ctx ~src:(Call.Rank nbr) ~tag:(Call.Tag 20)
            ~bytes:ex3_bytes)
        neighbors
    in
    let sends =
      List.map
        (fun nbr -> Mpi.isend ~site:s_ex3_s ctx ~dst:nbr ~tag:20 ~bytes:ex3_bytes)
        neighbors
    in
    ignore (Mpi.waitall ~site:s_ex3_w ctx (recvs @ sends));
    if it mod 5 = 0 then Mpi.allreduce ~site:s_resid ctx ~bytes:40
  done;
  Mpi.allreduce ~site:s_resid ctx ~bytes:40;
  Mpi.finalize ~site:s_fin ctx
