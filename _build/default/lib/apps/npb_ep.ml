(* EP — embarrassingly parallel skeleton.

   Long independent Gaussian-pair generation (modelled as compute chunks
   with mild load imbalance) followed by three small allreduces combining
   the counts and sums.  The most compute-bound code in the suite. *)

open Mpisim

let name = "ep"
let supports p = p >= 1

let s_sx = Mpi.site ~label:"sum_sx" __POS__
let s_sy = Mpi.site ~label:"sum_sy" __POS__
let s_q = Mpi.site ~label:"sum_counts" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let chunks = 16 in
  let total_compute = Params.compute_scale cls *. 100. *. 16. /. float_of_int p in
  (* +-2% static imbalance across ranks, deterministic *)
  let imbalance = 1.0 +. (0.02 *. (Util.Rng.float rng -. 0.5) *. 2.) in
  let work = total_compute *. imbalance /. float_of_int chunks in
  for _ = 1 to chunks do
    Params.compute rng ~mean:work ctx
  done;
  Mpi.allreduce ~site:s_sx ctx ~bytes:8;
  Mpi.allreduce ~site:s_sy ctx ~bytes:8;
  Mpi.allreduce ~site:s_q ctx ~bytes:80;
  Mpi.finalize ~site:s_fin ctx
