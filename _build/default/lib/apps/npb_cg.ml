(* CG — conjugate-gradient skeleton.

   Processes form a 2-D grid.  Each CG iteration exchanges a partition
   boundary with the transpose partner and then runs a recursive-halving
   reduction across the process row for the two inner products, with a
   global residual allreduce closing the iteration — the communication
   structure of NPB CG's sparse matrix-vector product. *)

open Mpisim

let name = "cg"
let supports p = Decomp.is_power_of_two p && p >= 2

let s_init = Mpi.site ~label:"cg_init" __POS__
let s_tr_r = Mpi.site ~label:"transpose_recv" __POS__
let s_tr_s = Mpi.site ~label:"transpose_send" __POS__
let s_tr_w = Mpi.site ~label:"transpose_wait" __POS__
let s_red_r = Mpi.site ~label:"rowsum_recv" __POS__
let s_red_s = Mpi.site ~label:"rowsum_send" __POS__
let s_norm = Mpi.site ~label:"norm_allreduce" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let px, py = Decomp.near_square p in
  let x, y = Decomp.coords2 ~px ctx.rank in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (15. *. Params.iter_scale cls)) in
  let inner = 8 in
  let sz = Params.size_scale cls in
  let boundary_bytes = max 64 (int_of_float (sz *. 1.2e6 /. float_of_int px)) in
  let total_compute = Params.compute_scale cls *. 150. *. 16. /. float_of_int p in
  let work = total_compute /. float_of_int (niter * inner) in
  (* transpose partner: mirrored coordinates (exact when the grid is
     square; reversal otherwise) *)
  let partner =
    if px = py then Decomp.rank2 ~px ~x:y ~y:x else p - 1 - ctx.rank
  in
  let log2 n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 n
  in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  for _ = 1 to niter do
    for _ = 1 to inner do
      Params.compute rng ~mean:work ctx;
      (* boundary exchange with the transpose partner *)
      if partner <> ctx.rank then begin
        let r = Mpi.irecv ~site:s_tr_r ctx ~src:(Call.Rank partner) ~bytes:boundary_bytes in
        let s = Mpi.isend ~site:s_tr_s ctx ~dst:partner ~bytes:boundary_bytes in
        ignore (Mpi.waitall ~site:s_tr_w ctx [ r; s ])
      end;
      (* recursive halving across the process row for the inner product *)
      for stage = 0 to log2 px - 1 do
        let mask = 1 lsl stage in
        let peer_x = x lxor mask in
        if peer_x < px then begin
          let peer = Decomp.rank2 ~px ~x:peer_x ~y in
          if x land mask = 0 then begin
            ignore (Mpi.recv ~site:s_red_r ctx ~src:(Call.Rank peer) ~bytes:16);
            Mpi.send ~site:s_red_s ctx ~dst:peer ~bytes:16
          end
          else begin
            Mpi.send ~site:s_red_s ctx ~dst:peer ~bytes:16;
            ignore (Mpi.recv ~site:s_red_r ctx ~src:(Call.Rank peer) ~bytes:16)
          end
        end
      done
    done;
    Mpi.allreduce ~site:s_norm ctx ~bytes:8
  done;
  Mpi.finalize ~site:s_fin ctx
