(* BT — block-tridiagonal solver skeleton.

   Multi-partition decomposition on a square process grid (p must be a
   perfect square).  Each iteration exchanges cell faces with the four
   torus neighbors (large asynchronous messages), then performs the x-, y-
   and z-line solves, each a forward and a backward pipeline sweep along
   one grid dimension with computation between hops.  Collectives appear
   only at startup and shutdown, matching the paper's description of BT as
   almost exclusively asynchronous point-to-point. *)

open Mpisim

let name = "bt"
let supports p = Decomp.is_square p && p >= 4

let s_init = Mpi.site ~label:"bt_init" __POS__
let s_face_r = Mpi.site ~label:"copy_faces_recv" __POS__
let s_face_s = Mpi.site ~label:"copy_faces_send" __POS__
let s_face_w = Mpi.site ~label:"copy_faces_wait" __POS__
let s_fwd_r = Mpi.site ~label:"solve_fwd_recv" __POS__
let s_fwd_s = Mpi.site ~label:"solve_fwd_send" __POS__
let s_bwd_r = Mpi.site ~label:"solve_bwd_recv" __POS__
let s_bwd_s = Mpi.site ~label:"solve_bwd_send" __POS__
let s_resid = Mpi.site ~label:"residual" __POS__
let s_fin = Mpi.site ~label:"finalize" __POS__

(* Pipeline sweep along one axis of the process grid.  [coord]/[extent]
   position this rank on the axis; [peer d] is the rank [d] steps along. *)
let line_solve ctx rng ~coord ~extent ~peer ~bytes ~work =
  (* forward elimination *)
  if coord > 0 then ignore (Mpi.recv ~site:s_fwd_r ctx ~src:(Call.Rank (peer (-1))) ~bytes);
  Params.compute rng ~mean:work ctx;
  if coord < extent - 1 then Mpi.send ~site:s_fwd_s ctx ~dst:(peer 1) ~bytes;
  (* back substitution *)
  if coord < extent - 1 then
    ignore (Mpi.recv ~site:s_bwd_r ctx ~src:(Call.Rank (peer 1)) ~bytes);
  Params.compute rng ~mean:work ctx;
  if coord > 0 then Mpi.send ~site:s_bwd_s ctx ~dst:(peer (-1)) ~bytes

let program ?(cls = Params.C) ?(seed = 42) () (ctx : Mpi.ctx) =
  let p = ctx.nranks in
  let sq = int_of_float (sqrt (float_of_int p) +. 0.5) in
  let x, y = Decomp.coords2 ~px:sq ctx.rank in
  let rng = Params.rng_for ~app:name ~seed ~rank:ctx.rank in
  let niter = max 1 (int_of_float (15. *. Params.iter_scale cls)) in
  let sz = Params.size_scale cls in
  let face_bytes = max 64 (int_of_float (sz *. 2.5e6 /. float_of_int p)) in
  let line_bytes = max 64 (face_bytes / 5) in
  (* total compute calibrated to ~1000 virtual seconds at 16 ranks, class C *)
  let total_compute = Params.compute_scale cls *. 1000. *. 16. /. float_of_int p in
  let per_iter = total_compute /. float_of_int niter in
  let rhs_work = 0.4 *. per_iter in
  let solve_work = 0.6 *. per_iter /. (3. *. 2. *. float_of_int sq) in
  let wrap v = ((v mod sq) + sq) mod sq in
  let torus dx dy = Decomp.rank2 ~px:sq ~x:(wrap (x + dx)) ~y:(wrap (y + dy)) in
  Mpi.bcast ~site:s_init ctx ~root:0 ~bytes:64;
  for _ = 1 to niter do
    (* compute_rhs *)
    Params.compute rng ~mean:rhs_work ctx;
    (* copy_faces: exchange with the four torus neighbors *)
    let neighbors = [ torus (-1) 0; torus 1 0; torus 0 (-1); torus 0 1 ] in
    let recvs =
      List.map
        (fun nb -> Mpi.irecv ~site:s_face_r ctx ~src:(Call.Rank nb) ~bytes:face_bytes)
        neighbors
    in
    let sends =
      List.map (fun nb -> Mpi.isend ~site:s_face_s ctx ~dst:nb ~bytes:face_bytes) neighbors
    in
    ignore (Mpi.waitall ~site:s_face_w ctx (recvs @ sends));
    (* x, y and z solves: pipelines along the grid rows and columns (the
       z sweep reuses the x axis, as in the multi-partition scheme) *)
    line_solve ctx rng ~coord:x ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x:(x + d) ~y)
      ~bytes:line_bytes ~work:solve_work;
    line_solve ctx rng ~coord:y ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x ~y:(y + d))
      ~bytes:line_bytes ~work:solve_work;
    line_solve ctx rng ~coord:x ~extent:sq
      ~peer:(fun d -> Decomp.rank2 ~px:sq ~x:(x + d) ~y)
      ~bytes:line_bytes ~work:solve_work
  done;
  Mpi.allreduce ~site:s_resid ctx ~bytes:40;
  Mpi.finalize ~site:s_fin ctx
