let near_square p =
  let rec best d acc =
    if d * d > p then acc else best (d + 1) (if p mod d = 0 then d else acc)
  in
  let px = best 1 1 in
  (px, p / px)

let factor3 p =
  (* largest divisor <= cube root, then near_square of the rest *)
  let rec best d acc =
    if d * d * d > p then acc else best (d + 1) (if p mod d = 0 then d else acc)
  in
  let px = best 1 1 in
  let py, pz = near_square (p / px) in
  (px, py, pz)

let is_square p =
  let r = int_of_float (sqrt (float_of_int p) +. 0.5) in
  r * r = p

let is_power_of_two p = p > 0 && p land (p - 1) = 0

let coords2 ~px rank = (rank mod px, rank / px)
let rank2 ~px ~x ~y = (y * px) + x

let neighbor2 ~px ~py ~rank ~dx ~dy =
  let x, y = coords2 ~px rank in
  let x' = x + dx and y' = y + dy in
  if x' < 0 || x' >= px || y' < 0 || y' >= py then None
  else Some (rank2 ~px ~x:x' ~y:y')

let coords3 ~px ~py rank =
  let x = rank mod px in
  let y = rank / px mod py in
  let z = rank / (px * py) in
  (x, y, z)

let rank3 ~px ~py ~x ~y ~z = (z * px * py) + (y * px) + x

let neighbor3 ~px ~py ~pz ~rank ~dx ~dy ~dz =
  let x, y, z = coords3 ~px ~py rank in
  let x' = x + dx and y' = y + dy and z' = z + dz in
  if x' < 0 || x' >= px || y' < 0 || y' >= py || z' < 0 || z' >= pz then None
  else Some (rank3 ~px ~py ~x:x' ~y:y' ~z:z')

let neighbor3_periodic ~px ~py ~pz ~rank ~dx ~dy ~dz =
  let x, y, z = coords3 ~px ~py rank in
  let wrap v n = ((v mod n) + n) mod n in
  rank3 ~px ~py ~x:(wrap (x + dx) px) ~y:(wrap (y + dy) py) ~z:(wrap (z + dz) pz)
