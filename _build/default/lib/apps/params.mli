(** Problem classes and timing calibration for the application suite.

    The NPB classes are preserved in spirit: message sizes and iteration
    counts scale with the class, and per-phase computation times are
    calibrated so that whole-application virtual run times at 16–64 ranks
    have the same order of magnitude as the paper's Figure 6.  Problem
    sizes are scaled down from the real class C so every simulation
    completes in seconds of wall-clock time; the benchmark generator is
    size-agnostic, so this does not affect any claim being reproduced. *)

type cls = S | W | A | B | C

val cls_of_string : string -> cls option
val cls_to_string : cls -> string

(** Multiplier applied to iteration counts (1.0 at class C). *)
val iter_scale : cls -> float

(** Multiplier applied to message sizes (1.0 at class C). *)
val size_scale : cls -> float

(** Multiplier applied to compute phases (1.0 at class C). *)
val compute_scale : cls -> float

(** [compute rng ~mean ctx] — advance the rank's clock by a jittered
    compute phase (~1.5% gaussian noise, deterministic via [rng]).  Zero and
    negative means are skipped. *)
val compute : Util.Rng.t -> mean:float -> Mpisim.Mpi.ctx -> unit

(** Deterministic per-rank RNG for an application run. *)
val rng_for : app:string -> seed:int -> rank:int -> Util.Rng.t
