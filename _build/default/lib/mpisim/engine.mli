(** Deterministic discrete-event simulation of an MPI machine.

    Each rank runs as a cooperative fiber (OCaml effects).  Fibers advance
    only when the event loop resumes them, and events are processed in
    strictly increasing virtual-time order (ties broken FIFO), so a whole
    run is a deterministic function of the program, the rank count, and the
    {!Netmodel}.  Message semantics follow MPI: tag/source matching with
    wildcards, non-overtaking per sender/receiver pair, eager vs.
    rendezvous protocols, unexpected-message queueing with copy cost, and
    sender flow control when a receiver's unexpected buffer fills.

    Applications do not call this module directly — they use the {!Mpi}
    wrapper — but tests exercise it through the same entry point. *)

exception Deadlock of string
(** Raised when no event is pending but some rank has not finished; the
    message lists each stuck rank with its blocking call. *)

exception Mpi_error of string
(** Semantic misuse: collective mismatch on a communicator, a rank
    returning without [MPI_Finalize], invalid arguments. *)

type ctx = { rank : int; nranks : int; world : Comm.t }

(** Cumulative run metrics. *)
type outcome = {
  elapsed : float;  (** max over ranks of finish time *)
  finish_times : float array;
  events : int;  (** discrete events processed *)
  messages : int;  (** point-to-point messages injected *)
  p2p_bytes : int;
  unexpected : int;  (** messages queued before their receive was posted *)
  flow_stalls : int;  (** sends delayed by receiver-side flow control *)
}

(** [run ~nranks program] simulates [program] on every rank.

    @param hooks interposition clients, called in registration order.
    @param net the network model (default {!Netmodel.bluegene_l}). *)
val run :
  ?hooks:Hooks.t list -> ?net:Netmodel.t -> nranks:int -> (ctx -> unit) -> outcome

(** [perform call] — issue an MPI call from inside a running rank fiber.
    Used by {!Mpi}; calling it outside [run] raises [Mpi_error]. *)
val perform : Call.t -> Call.value
