lib/mpisim/engine.mli: Call Comm Hooks Netmodel
