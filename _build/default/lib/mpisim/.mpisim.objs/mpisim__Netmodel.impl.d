lib/mpisim/netmodel.ml: Format
