lib/mpisim/mpi.mli: Call Comm Engine Hooks Netmodel Util
