lib/mpisim/netmodel.mli: Format
