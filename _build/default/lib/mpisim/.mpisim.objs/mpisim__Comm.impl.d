lib/mpisim/comm.ml: Array Format Hashtbl Printf
