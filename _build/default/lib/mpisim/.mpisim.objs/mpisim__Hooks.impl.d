lib/mpisim/hooks.ml: Call
