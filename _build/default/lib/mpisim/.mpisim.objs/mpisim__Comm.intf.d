lib/mpisim/comm.mli: Format
