lib/mpisim/hooks.mli: Call
