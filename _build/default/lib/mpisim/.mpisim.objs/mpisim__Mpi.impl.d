lib/mpisim/mpi.ml: Call Comm Engine Option Printf Util
