lib/mpisim/engine.ml: Array Buffer Call Comm Effect Float Format Hashtbl Hooks List Netmodel Option Printf Util
