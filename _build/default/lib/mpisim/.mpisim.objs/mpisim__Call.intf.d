lib/mpisim/call.mli: Comm Format Util
