lib/mpisim/call.ml: Array Comm Format List Util
