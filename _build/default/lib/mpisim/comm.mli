(** MPI communicators.

    A communicator is an ordered subset of the world ranks, renumbered from
    0.  Every communication operation names its peers in communicator-local
    ranks; the simulator (and, later, the benchmark generator's
    absolute-rank translation) converts through the tables kept here. *)

type t

(** Unique id; the world communicator of a run always has id 0. *)
val id : t -> int

val size : t -> int

(** [world n] — the primordial communicator over ranks [0..n-1]. *)
val world : int -> t

(** [make ~id ~members] — a communicator whose local rank [i] is world rank
    [members.(i)].  @raise Invalid_argument on duplicate members. *)
val make : id:int -> members:int array -> t

(** [world_of_local t r] translates a [t]-local rank to a world rank.
    @raise Invalid_argument if [r] is out of range. *)
val world_of_local : t -> int -> int

(** [local_of_world t w] is the [t]-local rank of world rank [w], if a
    member. *)
val local_of_world : t -> int -> int option

val is_member : t -> world:int -> bool

(** All members as world ranks, in local-rank order. *)
val members : t -> int array

val is_world : t -> bool

val pp : Format.formatter -> t -> unit
