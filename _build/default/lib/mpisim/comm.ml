type t = {
  id : int;
  members : int array; (* local rank -> world rank *)
  inverse : (int, int) Hashtbl.t; (* world rank -> local rank *)
}

let id t = t.id
let size t = Array.length t.members

let make ~id ~members =
  let inverse = Hashtbl.create (Array.length members) in
  Array.iteri
    (fun local world ->
      if Hashtbl.mem inverse world then
        invalid_arg "Comm.make: duplicate member rank";
      Hashtbl.add inverse world local)
    members;
  { id; members = Array.copy members; inverse }

let world n = make ~id:0 ~members:(Array.init n (fun i -> i))

let world_of_local t r =
  if r < 0 || r >= Array.length t.members then
    invalid_arg
      (Printf.sprintf "Comm.world_of_local: rank %d outside communicator %d (size %d)"
         r t.id (Array.length t.members));
  t.members.(r)

let local_of_world t w = Hashtbl.find_opt t.inverse w

let is_member t ~world = Hashtbl.mem t.inverse world

let members t = Array.copy t.members

let is_world t = t.id = 0

let pp ppf t =
  Format.fprintf ppf "comm%d(size=%d)" t.id (Array.length t.members)
