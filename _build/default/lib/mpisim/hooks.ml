type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
}

let nil =
  {
    on_enter = (fun ~world_rank:_ ~time:_ _ -> ());
    on_return = (fun ~world_rank:_ ~time:_ _ _ -> ());
  }
