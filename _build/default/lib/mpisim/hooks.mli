(** PMPI-style interposition.

    Clients (the ScalaTrace tracer, the mpiP-like profiler) register hooks
    that observe every MPI call a rank makes, with virtual timestamps.
    [on_enter] fires when the application invokes the call; [on_return]
    fires when the call completes and the application resumes.  [Compute]
    and [Wtime] pseudo-calls are reported too; clients that only care about
    MPI events filter them with {!Call.is_compute}. *)

type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
}

(** A hook that does nothing; override the fields you need. *)
val nil : t
