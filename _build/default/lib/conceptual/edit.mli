(** Programmatic what-if edits of generated benchmarks (Section 5.4).

    Because generated benchmarks are plain coNCePTuaL ASTs, experiments
    like "how fast would the application run if computation were 3x
    faster?" are single AST rewrites followed by a re-run. *)

(** Multiply every COMPUTE duration by a non-negative factor (0 models an
    infinitely fast processor). *)
val scale_compute : float -> Ast.program -> Ast.program

(** Multiply every message/collective payload by a factor (rounding to
    whole bytes, minimum 1 when the original was positive). *)
val scale_messages : float -> Ast.program -> Ast.program

(** Total microseconds of COMPUTE statements, loops expanded (constant
    trip counts only), for reporting. *)
val static_compute_usecs : Ast.program -> float
