(** English-like concrete syntax (the .ncptl file the generator emits).

    The output round-trips: [Parse.program (Pretty.program p)] yields a
    program structurally equal to [p].  Statements are sequenced with THEN;
    loop and conditional bodies are brace-delimited; verbs agree with their
    subject ("ALL TASKS SEND", "TASK 0 MULTICASTS"). *)

val expr : Ast.expr -> string
val pred : Ast.pred -> string
val tasks : Ast.tasks -> string
val stmt : Ast.stmt -> string

(** Full program text, comments included. *)
val program : Ast.program -> string

val pp_program : Format.formatter -> Ast.program -> unit
