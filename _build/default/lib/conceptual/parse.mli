(** Parser for the concrete syntax emitted by {!Pretty}.

    [Parse.program (Pretty.program p)] is structurally equal to [p] — the
    round-trip property the test suite checks — so generated .ncptl files
    are first-class, editable sources: what-if studies can edit the text
    and re-run it. *)

exception Parse_error of string
(** Message includes line number and the offending token. *)

val program : string -> Ast.program

(** Parse a single statement sequence (no comments), for tests and
    interactive use. *)
val stmts : string -> Ast.stmt list
