lib/conceptual/edit.ml: Ast Float List
