lib/conceptual/lower.ml: Ast Float Fun Hashtbl List Mpisim Printf Util
