lib/conceptual/edit.mli: Ast
