lib/conceptual/pretty.mli: Ast Format
