lib/conceptual/ast.ml: Float Fun List Util
