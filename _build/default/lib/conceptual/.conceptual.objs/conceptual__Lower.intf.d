lib/conceptual/lower.mli: Ast Mpisim
