lib/conceptual/ast.mli: Util
