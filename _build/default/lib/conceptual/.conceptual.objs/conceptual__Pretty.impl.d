lib/conceptual/pretty.ml: Ast Buffer Format List Printf String
