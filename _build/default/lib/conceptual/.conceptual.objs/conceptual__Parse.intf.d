lib/conceptual/parse.mli: Ast
