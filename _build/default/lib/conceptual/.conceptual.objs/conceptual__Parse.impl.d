lib/conceptual/parse.ml: Array Ast List Option Printf String
