type t = {
  window : int;
  nranks : int;
  foldable : Event.t -> bool;
  mutable rev : Tnode.t list; (* most recent node first *)
}

let create ?(window = 64) ?(foldable = fun _ -> true) ~nranks () =
  if window < 1 then invalid_arg "Compress.create: window < 1";
  { window; nranks; foldable; rev = [] }

let rec all_foldable t = function
  | Tnode.Leaf e -> t.foldable e
  | Tnode.Loop { body; _ } -> List.for_all (all_foldable t) body

(* [split_at n l] = (first n elements, rest); None if too short. *)
let split_at n l =
  let rec go acc n l =
    if n = 0 then Some (List.rev acc, l)
    else match l with [] -> None | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let equiv_lists a b =
  List.length a = List.length b && List.for_all2 Tnode.equiv_ranks a b

(* Rule A: the w nodes just appended repeat the body of the PRSD right
   before them -> bump its iteration count. *)
let try_extend t w =
  match split_at w t.rev with
  | None -> false
  | Some (tail_rev, rest) -> (
      match rest with
      | Tnode.Loop { count; body } :: older when List.length body = w ->
          let tail = List.rev tail_rev in
          if equiv_lists body tail && List.for_all (all_foldable t) tail then begin
            List.iter2 (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n) body tail;
            t.rev <- Tnode.Loop { count = count + 1; body } :: older;
            true
          end
          else false
      | _ -> false)

(* Rule B: the last 2w nodes are two equivalent halves -> new 2-iteration
   PRSD. *)
let try_fold t w =
  match split_at (2 * w) t.rev with
  | None -> false
  | Some (tail_rev, older) -> (
      match split_at w tail_rev with
      | None -> false
      | Some (newer_rev, earlier_rev) ->
          let newer = List.rev newer_rev and earlier = List.rev earlier_rev in
          if
            equiv_lists earlier newer
            && List.for_all (all_foldable t) earlier
            && List.for_all (all_foldable t) newer
          then begin
            List.iter2
              (fun into n -> Tnode.absorb ~nranks:t.nranks ~into n)
              earlier newer;
            t.rev <- Tnode.Loop { count = 2; body = earlier } :: older;
            true
          end
          else false)

let rec compress_tail t =
  let rec try_windows w =
    if w > t.window then false
    else if try_extend t w || try_fold t w then true
    else try_windows (w + 1)
  in
  if try_windows 1 then compress_tail t

let push_node t n =
  t.rev <- n :: t.rev;
  compress_tail t

let push t e = push_node t (Tnode.Leaf e)

let contents t = List.rev t.rev

let compress_list ?window ?foldable ~nranks nodes =
  let t = create ?window ?foldable ~nranks () in
  List.iter (push_node t) nodes;
  contents t
