(** Trace (de)serialization.

    A line-oriented text format for saving compressed traces to disk and
    loading them back — the equivalent of ScalaTrace's trace files, which
    is what gets handed to the benchmark generator in the paper's
    workflow (Figure 1).  The format stores the full RSD/PRSD structure,
    communicator table, peers, sizes, tags, and the timing summaries
    (count/sum/min/max/first of each histogram; the bucket detail is
    dropped, which only affects quantile reconstruction, not the means
    that drive generation and replay).

    [of_text (to_text t)] yields a trace whose structure, projections,
    and timing means equal [t]'s. *)

exception Format_error of string
(** Parse failure; the message includes the offending line number. *)

val to_text : Trace.t -> string
val of_text : string -> Trace.t

val save : Trace.t -> path:string -> unit
val load : path:string -> Trace.t
