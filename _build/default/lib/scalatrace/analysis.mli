(** Trace analysis: aggregate communication statistics.

    Computed from the compressed trace without expanding it per rank pair
    more than once — the kind of summary the paper's users need to sanity
    check a generated benchmark against its source application. *)

(** Bytes and messages exchanged between each ordered rank pair
    (point-to-point only; wildcard receives are attributed by the sender
    once resolved, and ignored otherwise). *)
type matrix = { nranks : int; messages : int array array; bytes : int array array }

val comm_matrix : Trace.t -> matrix

(** Totals per operation kind: (name, calls, bytes). *)
val op_totals : Trace.t -> (string * int * int) list

(** Total computation time across all ranks (sum of dtime sums). *)
val total_compute : Trace.t -> float

(** Render the matrix as an aligned table (bytes, with K/M suffixes);
    rows are senders, columns receivers. *)
val matrix_to_string : matrix -> string
