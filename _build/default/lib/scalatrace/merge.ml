(* Merge one rank's node list into the global list.

   Greedy alignment: walk the incoming list; for each node, scan the
   not-yet-consumed part of the global list (up to [lookahead] nodes) for
   the first equivalent node; merge into it, emitting any skipped global
   nodes unchanged.  If none matches, the incoming node is inserted at the
   current position.  Both orders are preserved, so the per-rank
   projections of the result equal the inputs. *)

let merge_into_global ~nranks ~lookahead global incoming =
  let rec find_match n candidates depth =
    match candidates with
    | [] -> None
    | g :: rest ->
        if Tnode.equiv g n then Some depth
        else if depth + 1 >= lookahead then None
        else find_match n rest (depth + 1)
  in
  let rec go acc global incoming =
    match incoming with
    | [] -> List.rev_append acc global
    | n :: in_rest -> (
        match find_match n global 0 with
        | Some depth ->
            (* consume global nodes up to and including the match *)
            let rec consume acc global d =
              match (global, d) with
              | g :: g_rest, 0 ->
                  Tnode.absorb ~nranks ~into:g n;
                  (g :: acc, g_rest)
              | g :: g_rest, d -> consume (g :: acc) g_rest (d - 1)
              | [], _ -> assert false
            in
            let acc, g_rest = consume acc global depth in
            go acc g_rest in_rest
        | None -> go (n :: acc) global in_rest)
  in
  go [] global incoming

let merge_node_lists ?(lookahead = 256) ~nranks segments =
  List.fold_left
    (fun global seg ->
      merge_into_global ~nranks ~lookahead global (List.map Tnode.copy seg))
    [] segments

let merge ?(lookahead = 256) ~nranks ~comms locals =
  (* absorb mutates the nodes it merges, so work on deep copies and leave
     the callers' per-rank traces untouched *)
  let locals = Array.map (List.map Tnode.copy) locals in
  let global =
    Array.fold_left
      (fun global local -> merge_into_global ~nranks ~lookahead global local)
      [] locals
  in
  let global = Tnode.map_leaves (fun e -> Event.generalize ~nranks e; e) global in
  (* A final compression pass can fold rank-uniform structure that only
     becomes foldable after merging. *)
  let global = Compress.compress_list ~nranks global in
  Trace.make ~nranks ~comms ~nodes:global
