(** The global (inter-rank merged) application trace.

    This is the exchange format between ScalaTrace and the benchmark
    generator: a compressed node sequence whose per-rank projections equal
    the per-rank event streams, plus the membership table of every
    communicator the application created. *)

type t

val make :
  nranks:int -> comms:(int * Util.Rank_set.t) list -> nodes:Tnode.t list -> t

val nranks : t -> int
val nodes : t -> Tnode.t list

(** Communicator memberships, sorted by id; id 0 is the world. *)
val comms : t -> (int * Util.Rank_set.t) list

(** Members of one communicator. @raise Not_found for unknown ids. *)
val comm_members : t -> int -> Util.Rank_set.t

(** Replace the node sequence (trace-rewriting passes). *)
val with_nodes : t -> Tnode.t list -> t

(** {1 Size and content metrics} *)

val rsd_count : t -> int
val event_count : t -> int

(** Serialized size in bytes of {!to_text} — the "trace file size" proxy
    used by the scaling experiments. *)
val text_size : t -> int

(** [project t ~rank] — the event-node sequence rank [rank] executes. *)
val project : t -> rank:int -> Tnode.t list

(** True if any receive event uses MPI_ANY_SOURCE — the O(r) pre-check of
    Section 4.4. *)
val has_wildcards : t -> bool

(** True if some collective call site covers only part of its
    communicator — the O(r) pre-check of Section 4.3. *)
val has_unaligned_collectives : t -> bool

val to_text : t -> string
val pp : Format.formatter -> t -> unit
