(** On-the-fly intra-rank loop compression.

    Implements ScalaTrace's sliding-window tail compression: after each
    event is appended, the compressor tries (a) to extend an existing PRSD
    whose body matches the new tail and (b) to fold the last [2w] nodes
    into a new 2-iteration PRSD when the two halves are equivalent, for
    window sizes [w = 1..window].  Successful folds cascade, so nested
    source loops become nested PRSDs.  Compression is O(window · depth)
    per event, which is what lets traces be collected greedily without
    buffering the whole event stream. *)

type t

(** [create ~nranks ()] — [window] bounds the loop-body length that can be
    detected (default 64).  [foldable] restricts which leaves may enter a
    PRSD: folds containing a leaf with [foldable e = false] are rejected.
    Trace-rebuilding passes use it to keep shared (multi-rank) collective
    RSDs out of per-rank loops, so the final inter-rank merge can unify
    them; the global merge's own compression then re-folds the loops. *)
val create :
  ?window:int -> ?foldable:(Event.t -> bool) -> nranks:int -> unit -> t

val push : t -> Event.t -> unit

(** Append an already-built node (RSD or PRSD) and recompress the tail;
    used by trace-rewriting passes that emit whole nodes. *)
val push_node : t -> Tnode.t -> unit

(** Compressed trace in chronological order.  The compressor can keep
    receiving events afterwards. *)
val contents : t -> Tnode.t list

(** [compress_list ~nranks nodes] — run the same tail compression over an
    existing node list (used by the generator when appending RSDs to its
    output queue, cf. "Compress T_out" in Algorithm 1). *)
val compress_list :
  ?window:int -> ?foldable:(Event.t -> bool) -> nranks:int -> Tnode.t list -> Tnode.t list
