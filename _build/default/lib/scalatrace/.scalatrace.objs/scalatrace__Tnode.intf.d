lib/scalatrace/tnode.mli: Event Format
