lib/scalatrace/analysis.ml: Array Buffer Event Hashtbl List Option Printf String Tnode Trace Util
