lib/scalatrace/merge.mli: Tnode Trace Util
