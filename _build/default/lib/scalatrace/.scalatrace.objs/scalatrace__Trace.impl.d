lib/scalatrace/trace.ml: Event Format List String Tnode Util
