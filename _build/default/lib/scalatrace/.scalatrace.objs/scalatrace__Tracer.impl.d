lib/scalatrace/tracer.ml: Array Compress Event List Merge Mpisim Util
