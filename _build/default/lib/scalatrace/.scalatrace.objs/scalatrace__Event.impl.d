lib/scalatrace/event.ml: Array Float Format List Mpisim Option Util
