lib/scalatrace/event.mli: Format Mpisim Util
