lib/scalatrace/analysis.mli: Trace
