lib/scalatrace/trace_io.ml: Array Buffer Event Fun In_channel List Printf String Tnode Trace Util
