lib/scalatrace/compress.mli: Event Tnode
