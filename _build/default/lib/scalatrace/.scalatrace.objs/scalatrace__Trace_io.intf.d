lib/scalatrace/trace_io.mli: Trace
