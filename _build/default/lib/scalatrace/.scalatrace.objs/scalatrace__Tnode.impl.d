lib/scalatrace/tnode.ml: Event Format List Util
