lib/scalatrace/compress.ml: Event List Tnode
