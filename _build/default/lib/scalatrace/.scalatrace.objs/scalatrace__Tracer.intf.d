lib/scalatrace/tracer.mli: Mpisim Tnode Trace
