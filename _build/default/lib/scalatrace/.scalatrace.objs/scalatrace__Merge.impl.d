lib/scalatrace/merge.ml: Array Compress Event List Tnode Trace
