lib/scalatrace/trace.mli: Format Tnode Util
