(** Aligned ASCII tables and series plots for the experiment harness.

    The benchmark harness prints every reproduced paper table/figure as an
    aligned text table (and, for figures, an optional dot plot).  All layout
    logic lives here so `bench/main.ml` stays declarative. *)

type align = Left | Right

(** [render ~header rows] lays out [rows] under [header] with per-column
    alignment inferred (numeric-looking columns right-aligned), returning a
    ready-to-print string including a rule under the header. *)
val render : header:string list -> string list list -> string

(** [render_aligned ~header ~aligns rows] with explicit alignment. *)
val render_aligned : header:string list -> aligns:align list -> string list list -> string

(** [print ~title ~header rows] prints a titled table to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** [series_plot ~title ~x_label ~y_label points] renders a coarse ASCII
    scatter/line plot of [(x, y)] points, sorted by [x]. *)
val series_plot :
  title:string -> x_label:string -> y_label:string -> (float * float) list -> string

(** Format helpers shared across the harness: [fsec] renders seconds in
    engineering style (["1.234 s"], ["850.2 ms"]); [fpct] a signed
    percentage (["+2.9%"]); [fbytes] byte counts (["1.5 MiB"]). *)

val fsec : float -> string
val fpct : float -> string
val fbytes : int -> string
