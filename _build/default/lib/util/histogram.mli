(** Scalable summaries of computation-time samples.

    ScalaTrace does not store one duration per call instance; it compresses
    all durations observed at a call path — across loop iterations and
    ranks — into a small fixed-size summary (Ratn et al., ICS'08).  This
    module provides that summary: exact count/sum/min/max/mean/variance plus
    a bounded exponential-bucket histogram, and separate tracking of the
    first sample (the paper notes the first loop iteration usually differs
    from the rest). *)

type t

(** [create ()] is an empty summary. *)
val create : unit -> t

(** [add t x] records sample [x] (seconds; must be finite and [>= 0.]). *)
val add : t -> float -> unit

val count : t -> int
val sum : t -> float

(** [min_value], [max_value], [mean]: 0. when empty. *)

val min_value : t -> float
val max_value : t -> float
val mean : t -> float

(** Population variance; 0. when empty. *)
val variance : t -> float

val stddev : t -> float

(** Value of the first sample added; 0. when empty. *)
val first_sample : t -> float

(** Mean of all samples except the first; falls back to {!mean} when fewer
    than two samples were added. *)
val rest_mean : t -> float

(** [quantile t q] approximates the [q]-quantile (0 <= q <= 1) from the
    bucketed histogram; exact min/max at the extremes. *)
val quantile : t -> float -> float

(** [draw t ~u] draws a reconstruction value: the mean of a bucket chosen by
    uniform deviate [u] in [0,1).  Used when replaying compute time from a
    trace without storing per-instance values. *)
val draw : t -> u:float -> float

(** Reconstruct a summary from serialized statistics (count/sum/min/max/
    first).  Bucket detail is approximated: all mass lands at the mean, so
    means and extremes are exact but interior quantiles are not. *)
val of_stats :
  count:int -> sum:float -> min:float -> max:float -> first:float -> t

(** Merge the second summary into the first (inter-node trace merging).
    The merged [first_sample] is the first node's. *)
val merge_into : t -> t -> unit

val copy : t -> t

(** Multiply all recorded magnitudes by [k >= 0.] (what-if scaling of
    compute phases, Section 5.4). *)
val scale : t -> float -> t

val equal_stats : t -> t -> bool

val pp : Format.formatter -> t -> unit
