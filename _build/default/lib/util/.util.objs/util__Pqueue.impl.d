lib/util/pqueue.ml: Array Float
