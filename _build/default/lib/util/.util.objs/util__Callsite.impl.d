lib/util/callsite.ml: Format Hashtbl Int Printf Scanf String
