lib/util/table.mli:
