lib/util/rng.mli:
