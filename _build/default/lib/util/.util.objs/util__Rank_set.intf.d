lib/util/rank_set.mli: Format
