lib/util/pqueue.mli:
