lib/util/stats.mli:
