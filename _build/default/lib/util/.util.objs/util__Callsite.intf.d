lib/util/callsite.mli: Format
