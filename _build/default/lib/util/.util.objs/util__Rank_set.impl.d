lib/util/rank_set.ml: Format List
