(** Compact sets of MPI ranks.

    Rank sets appear in every RSD of a compressed trace, so they are stored
    as sorted lists of disjoint, stride-aware intervals: [{first; last;
    stride}] denotes [first, first+stride, ..., last].  This keeps the
    common cases — "all ranks", "every k-th rank", "one rank" — at constant
    size regardless of the communicator size, which is what makes trace and
    generated-benchmark sizes sublinear in the process count. *)

type t

val empty : t
val is_empty : t -> bool

val singleton : int -> t

(** [range ?stride first last] is [first, first+stride, ..., last].
    @raise Invalid_argument if [stride <= 0] or [last < first]. *)
val range : ?stride:int -> int -> int -> t

(** [all n] is ranks [0..n-1]. *)
val all : int -> t

val of_list : int list -> t
val to_list : t -> int list

val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val cardinal : t -> int

val min_elt : t -> int option
val max_elt : t -> int option

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val map : (int -> int) -> t -> t

(** Number of intervals in the internal representation; a proxy for the
    serialized size of the set. *)
val interval_count : t -> int

(** Intervals as [(first, last, stride)] triples, in increasing order. *)
val intervals : t -> (int * int * int) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Total order, for use as a map key. *)
val compare : t -> t -> int
