type t = { file : string; line : int; col : int; label : string }

let make ?(label = "") (file, line, col, _) = { file; line; col; label }

let synthetic name = { file = "<gen>"; line = 0; col = 0; label = name }

let unknown = { file = "<unknown>"; line = 0; col = 0; label = "" }

let equal a b =
  a.line = b.line && a.col = b.col && String.equal a.file b.file
  && String.equal a.label b.label

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.label b.label
          | c -> c)
      | c -> c)
  | c -> c

let hash t = Hashtbl.hash (t.file, t.line, t.col, t.label)

let encode t = Printf.sprintf "%S %d %d %S" t.file t.line t.col t.label

let decode s =
  try Scanf.sscanf s "%S %d %d %S" (fun file line col label -> { file; line; col; label })
  with Scanf.Scan_failure _ | End_of_file ->
    invalid_arg ("Callsite.decode: " ^ s)

let label t = t.label

let pp ppf t =
  if t.label <> "" then Format.fprintf ppf "%s:%d[%s]" t.file t.line t.label
  else Format.fprintf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Format.asprintf "%a" pp t
