(** Call-site signatures.

    ScalaTrace distinguishes trace events by the call stack that issued
    them; this is what lets it keep one RSD per source location and what
    Algorithm 1 relies on to recognize that two RSDs are distinct call sites
    of the same collective.  OCaml has no cheap stack unwinding, so
    applications label their MPI calls explicitly with [__POS__]-derived
    sites, which gives the same discriminating power. *)

type t

(** [make __POS__] or [make ~label:"exchange" __POS__]. *)
val make : ?label:string -> string * int * int * int -> t

(** [synthetic name] — a site for generated code, keyed only by [name]. *)
val synthetic : string -> t

val unknown : t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Reversible single-line encoding, for trace files. *)
val encode : t -> string

(** @raise Invalid_argument on malformed input. *)
val decode : string -> t

val label : t -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
