(* Array-based binary min-heap keyed by (time, seq). *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int; mutable next_seq : int }

let create () = { heap = [||]; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let dummy = t.heap.(0) in
    let heap = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let add t ~time v =
  if not (Float.is_finite time) then invalid_arg "Pqueue.add: non-finite time";
  let entry = { time; seq = t.next_seq; value = v } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let is_empty t = t.size = 0
let length t = t.size
