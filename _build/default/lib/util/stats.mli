(** Small numeric helpers used across the evaluation harness. *)

(** [mape pairs] is the mean absolute percentage error, in percent, of
    [(reference, measured)] pairs — the paper's headline accuracy metric
    (100% * |measured - reference| / reference, averaged).  Pairs with a
    zero reference are skipped. *)
val mape : (float * float) list -> float

(** [pct_error ~reference ~measured] is the signed percentage error. *)
val pct_error : reference:float -> measured:float -> float

val mean : float list -> float
val geomean : float list -> float
val max_abs : float list -> float
