let pct_error ~reference ~measured =
  100. *. (measured -. reference) /. reference

let mape pairs =
  let errs =
    List.filter_map
      (fun (reference, measured) ->
        if reference = 0. then None
        else Some (Float.abs (pct_error ~reference ~measured)))
      pairs
  in
  match errs with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
      let logsum = List.fold_left (fun a x -> a +. log x) 0. xs in
      exp (logsum /. float_of_int (List.length xs))

let max_abs xs = List.fold_left (fun a x -> Float.max a (Float.abs x)) 0. xs
