(** Mutable min-priority queue on [(time, sequence)] keys.

    The discrete-event engine pops events in increasing virtual-time order;
    the strictly increasing sequence number breaks ties deterministically
    (FIFO among simultaneous events), which is essential for reproducible
    simulations. *)

type 'a t

val create : unit -> 'a t

(** [add t ~time v] enqueues [v]; insertion order is remembered for
    tie-breaking. @raise Invalid_argument on non-finite [time]. *)
val add : 'a t -> time:float -> 'a -> unit

(** Remove and return the minimum element with its time. *)
val pop : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option
val is_empty : 'a t -> bool
val length : 'a t -> int
