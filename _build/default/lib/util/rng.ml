(* splitmix64 (Steele, Lea, Flood 2014): tiny state, passes BigCrush, and
   trivially splittable — ideal for reproducible per-rank streams. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t ~index =
  (* Hash the parent state (without consuming it deterministically would be
     position-dependent; we consume one draw so repeated splits differ). *)
  let s = bits64 t in
  { state = mix (Int64.logxor s (mix (Int64.of_int index))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* keep 62 bits so the value stays non-negative on 63-bit OCaml ints *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t =
  (* 53 high bits -> [0,1) *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1. /. 9007199254740992.)

let uniform t a b = a +. ((b -. a) *. float t)

let exponential t ~mean =
  let u = float t in
  -. mean *. log (1. -. u)

let gaussian t ?(truncate_at_zero = false) ~mean ~stddev () =
  let u1 = float t and u2 = float t in
  let u1 = if u1 <= 0. then Float.min_float else u1 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  let x = mean +. (stddev *. z) in
  if truncate_at_zero && x < 0. then 0. else x

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
