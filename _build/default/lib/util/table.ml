type align = Left | Right

let looks_numeric s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9')
         || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'E' || c = '%'
         || c = ' ' || c = 'x')
       s

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let widths header rows =
  let ncols = List.length header in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell)) row
  in
  feed header;
  List.iter feed rows;
  w

let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do decr n done;
  String.sub s 0 !n

let render_aligned ~header ~aligns rows =
  let w = widths header rows in
  let aligns = Array.of_list aligns in
  let align_of i = if i < Array.length aligns then aligns.(i) else Left in
  let line row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) w.(i) cell)
    |> String.concat "  "
    |> rtrim
  in
  let rule =
    Array.to_list w |> List.map (fun n -> String.make n '-') |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let render ~header rows =
  let ncols = List.length header in
  let numeric = Array.make ncols true in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols && not (looks_numeric cell) then numeric.(i) <- false)
        row)
    rows;
  let aligns = List.init ncols (fun i -> if numeric.(i) then Right else Left) in
  render_aligned ~header ~aligns rows

let print ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header rows)

let series_plot ~title ~x_label ~y_label points =
  let points = List.sort (fun (a, _) (b, _) -> compare a b) points in
  match points with
  | [] -> Printf.sprintf "== %s == (no data)" title
  | _ ->
      let xs = List.map fst points and ys = List.map snd points in
      let xmin = List.fold_left min infinity xs and xmax = List.fold_left max neg_infinity xs in
      let ymin = List.fold_left min infinity ys and ymax = List.fold_left max neg_infinity ys in
      let h = 16 and w = 60 in
      let grid = Array.make_matrix h w ' ' in
      let xspan = if xmax > xmin then xmax -. xmin else 1. in
      let yspan = if ymax > ymin then ymax -. ymin else 1. in
      List.iter
        (fun (x, y) ->
          let cx = int_of_float ((x -. xmin) /. xspan *. float_of_int (w - 1)) in
          let cy = int_of_float ((y -. ymin) /. yspan *. float_of_int (h - 1)) in
          grid.(h - 1 - cy).(cx) <- '*')
        points;
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
      Buffer.add_string buf (Printf.sprintf "%s (vertical: %.4g .. %.4g)\n" y_label ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Buffer.add_string buf (String.init w (fun i -> row.(i)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("  +" ^ String.make w '-' ^ "\n");
      Buffer.add_string buf
        (Printf.sprintf "   %s (horizontal: %.4g .. %.4g)" x_label xmin xmax);
      Buffer.contents buf

let fsec s =
  if s >= 1. then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.2f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.2f us" (s *. 1e6)
  else Printf.sprintf "%.1f ns" (s *. 1e9)

let fpct p = Printf.sprintf "%+.1f%%" p

let fbytes n =
  let f = float_of_int n in
  if f >= 1073741824. then Printf.sprintf "%.2f GiB" (f /. 1073741824.)
  else if f >= 1048576. then Printf.sprintf "%.2f MiB" (f /. 1048576.)
  else if f >= 1024. then Printf.sprintf "%.2f KiB" (f /. 1024.)
  else Printf.sprintf "%d B" n
