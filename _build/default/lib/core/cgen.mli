(** A second code-generation backend: C + MPI.

    The paper's trace-traversal framework "invokes a language-dependent
    code generator for each RSD and PRSD … by implementing a generator for
    a different target language, we can easily generate code for languages
    other than coNCePTuaL".  This module is that demonstration: the same
    {!Codegen.walk} drives a generator that emits compilable-looking
    C + MPI source instead of coNCePTuaL.

    The output is for human consumption and for contrast with the
    coNCePTuaL backend (the paper's §2 argues trace-size-proportional C is
    what *other* systems produce); it is not executed by this repository. *)

(** [program ?name trace] — a complete C translation unit: includes,
    helpers, and a [main] whose body mirrors the trace structure. *)
val program : ?name:string -> Scalatrace.Trace.t -> string
