(** Trace-to-code generation framework.

    As in the paper, a language-independent walker traverses the (aligned,
    wildcard-free) trace and calls a pluggable per-RSD/per-PRSD generator;
    the coNCePTuaL generator is the primary instance, and any other target
    language can be added by implementing another {!generator}. *)

(** A language-dependent code generator.  ['s] is a statement/fragment. *)
type 's generator = {
  gen_rsd : Scalatrace.Event.t -> 's list;
      (** code for one RSD (called once per RSD, not per instance) *)
  gen_loop : count:int -> 's list -> 's list;  (** wrap a PRSD body *)
}

(** [walk trace g] applies [g] over the trace structure. *)
val walk : Scalatrace.Trace.t -> 's generator -> 's list

exception Codegen_error of string
(** Raised on events that cannot be expressed: an unresolved wildcard
    (run {!Wildcard} first) or a peerless point-to-point event. *)

(** The coNCePTuaL generator over [walk]: computation gaps become COMPUTE
    statements, point-to-point RSDs become SEND/RECEIVE with peers grouped
    into relative or absolute task expressions, collectives go through
    {!Collective_map}, and communicator-management events vanish (all task
    sets are absolute, per paper Section 4.2).

    @param compute_floor_usecs gaps shorter than this are dropped
           (default 0.05us — below measurement noise). *)
val conceptual :
  ?compute_floor_usecs:float -> Scalatrace.Trace.t -> Conceptual.Ast.stmt generator

(** [program ?name trace] — the complete generated benchmark: header
    comments, counter reset, body, final LOG of elapsed time. *)
val program :
  ?name:string -> ?compute_floor_usecs:float -> Scalatrace.Trace.t ->
  Conceptual.Ast.program
