module Traversal = Traversal
module Align = Align
module Wildcard = Wildcard
module Collective_map = Collective_map
module Codegen = Codegen
module Cgen = Cgen
module Extrap = Extrap

type report = {
  program : Conceptual.Ast.program;
  text : string;
  aligned : bool;
  resolved : bool;
  input_rsds : int;
  final_rsds : int;
  statements : int;
}

let generate ?name ?compute_floor_usecs trace =
  let input_rsds = Scalatrace.Trace.rsd_count trace in
  let trace, aligned = Align.align_if_needed trace in
  let trace, resolved = Wildcard.resolve_if_needed trace in
  let program = Codegen.program ?name ?compute_floor_usecs trace in
  let text = Conceptual.Pretty.program program in
  {
    program;
    text;
    aligned;
    resolved;
    input_rsds;
    final_rsds = Scalatrace.Trace.rsd_count trace;
    statements = Conceptual.Ast.size program;
  }

let generate_text ?name ?compute_floor_usecs trace =
  (generate ?name ?compute_floor_usecs trace).text

let from_app ?name ?net ?compute_floor_usecs ~nranks app =
  let trace, outcome = Scalatrace.Tracer.trace_run ?net ~nranks app in
  (generate ?name ?compute_floor_usecs trace, outcome)
