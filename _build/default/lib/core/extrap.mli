(** Trace extrapolation across rank counts (the paper's Section 6 future
    work, after Wu & Mueller's ScalaExtrap \[26\]).

    Given traces of the *same* application at several small rank counts,
    synthesize the trace of a larger run — and therefore a benchmark for a
    machine size never actually traced.  The inputs are aligned
    structurally (same RSD/PRSD shape at every position); every varying
    quantity — loop counts, message sizes, wait widths, rank-set interval
    bounds, relative-peer offsets, computation times — is fitted against a
    small family of scaling models (constant, p, sqrt p, log2 p, 1/p,
    1/sqrt p, 1/p^2, p^2) and evaluated at the target rank count.

    Like ScalaExtrap, this works for SPMD codes whose trace *structure* is
    rank-count invariant (stencils, rings, alltoall codes).  Codes whose
    shape changes with p — e.g. log2(p) unrolled butterfly stages, or
    process-grid boundary classes that appear and disappear — are detected
    and rejected with {!Extrap_error} rather than extrapolated wrongly. *)

exception Extrap_error of string

(** [extrapolate traces ~target] — [traces] must contain at least two
    traces of the same program at distinct rank counts, in any order.
    @raise Extrap_error when the traces disagree structurally, a quantity
    fits none of the scaling models, or [target] is not larger than the
    largest input. *)
val extrapolate : Scalatrace.Trace.t list -> target:int -> Scalatrace.Trace.t

(** The fitted model for a sequence of [(rank count, value)] samples, for
    diagnostics and tests: returns a closure evaluating the model and its
    human-readable form (e.g. ["32768/p"]). *)
val fit : (int * float) list -> ((int -> float) * string) option
