lib/core/traversal.mli: Scalatrace Util
