lib/core/collective_map.ml: Array Event Printf Scalatrace
