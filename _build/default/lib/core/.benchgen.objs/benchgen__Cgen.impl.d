lib/core/cgen.ml: Buffer Codegen Event Hashtbl List Printf Scalatrace String Trace Util
