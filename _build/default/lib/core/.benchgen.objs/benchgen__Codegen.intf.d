lib/core/codegen.mli: Conceptual Scalatrace
