lib/core/align.mli: Scalatrace
