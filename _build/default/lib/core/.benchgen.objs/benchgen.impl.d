lib/core/benchgen.ml: Align Cgen Codegen Collective_map Conceptual Extrap Scalatrace Traversal Wildcard
