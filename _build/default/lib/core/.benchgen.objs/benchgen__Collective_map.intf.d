lib/core/collective_map.mli: Scalatrace
