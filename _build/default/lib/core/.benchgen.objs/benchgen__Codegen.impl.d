lib/core/codegen.ml: Array Collective_map Conceptual Event Float List Option Printf Scalatrace Tnode Trace Util
