lib/core/benchgen.mli: Align Cgen Codegen Collective_map Conceptual Extrap Mpisim Scalatrace Traversal Wildcard
