lib/core/cgen.mli: Scalatrace
