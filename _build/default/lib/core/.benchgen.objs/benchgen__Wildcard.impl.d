lib/core/wildcard.ml: Array Buffer Compress Event Hashtbl List Mpisim Option Printf Replay Scalatrace Tnode Trace Traversal Util
