lib/core/wildcard.mli: Mpisim Scalatrace
