lib/core/traversal.ml: Array Compress Event List Merge Scalatrace Tnode Trace Util
