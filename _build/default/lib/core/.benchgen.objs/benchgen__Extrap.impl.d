lib/core/extrap.ml: Event Float List Printf Scalatrace String Tnode Trace Util
