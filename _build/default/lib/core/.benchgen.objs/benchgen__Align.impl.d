lib/core/align.ml: Array Event Hashtbl List Option Printf Scalatrace Trace Traversal Util
