lib/core/extrap.mli: Scalatrace
