(** Algorithm 1 — aligning collective operations (paper Section 4.3).

    MPI lets different source lines issue what is dynamically one
    collective operation; ScalaTrace then records one partial-participant
    RSD per call site.  This pass walks the trace on behalf of every rank,
    parking each rank at each collective until all other members of the
    communicator arrive, then re-emits a single RSD covering the full
    participant set — the trace-level equivalent of hoisting the collective
    out of rank conditionals.  Point-to-point events pass through
    unchanged; per-rank event order is preserved; the output is
    recompressed.  Complexity O(p·e); use {!Scalatrace.Trace.has_unaligned_collectives}
    (O(r)) to decide whether the pass is needed. *)

exception Align_error of string
(** Collective mismatch: members of one communicator reach different
    collective operations at the same logical slot, or their parameters
    disagree on the root. *)

val run : Scalatrace.Trace.t -> Scalatrace.Trace.t

(** [align_if_needed t] runs the O(r) pre-check and the pass only when
    required; returns the (possibly unchanged) trace and whether the pass
    ran. *)
val align_if_needed : Scalatrace.Trace.t -> Scalatrace.Trace.t * bool
