(** End-to-end benchmark generation pipeline (paper Figure 1, right half).

    trace → \[collective alignment if needed\] → \[wildcard resolution if
    needed\] → coNCePTuaL code generation.  Both trace-rewriting passes are
    gated by their O(r) pre-checks. *)

(** Re-exported pipeline stages. *)

module Traversal = Traversal
module Align = Align
module Wildcard = Wildcard
module Collective_map = Collective_map
module Codegen = Codegen
module Cgen = Cgen
module Extrap = Extrap

type report = {
  program : Conceptual.Ast.program;
  text : string;  (** pretty-printed .ncptl source *)
  aligned : bool;  (** Algorithm 1 ran *)
  resolved : bool;  (** Algorithm 2 ran *)
  input_rsds : int;
  final_rsds : int;  (** RSDs after the rewriting passes *)
  statements : int;  (** statements in the generated program *)
}

(** @raise Wildcard.Potential_deadlock when the input application can
    deadlock (paper Figure 5) — reported rather than generating a hanging
    benchmark.
    @raise Align.Align_error on collective misuse in the trace. *)
val generate :
  ?name:string -> ?compute_floor_usecs:float -> Scalatrace.Trace.t -> report

(** [generate_text] — just the .ncptl source. *)
val generate_text :
  ?name:string -> ?compute_floor_usecs:float -> Scalatrace.Trace.t -> string

(** Convenience: trace an application under the given network model and
    generate its benchmark in one call.  Returns the report plus the
    original run's outcome (for timing-fidelity comparisons). *)
val from_app :
  ?name:string ->
  ?net:Mpisim.Netmodel.t ->
  ?compute_floor_usecs:float ->
  nranks:int ->
  (Mpisim.Mpi.ctx -> unit) ->
  report * Mpisim.Engine.outcome
