bench/micro.ml: Analyze Apps Bechamel Benchgen Benchmark Conceptual Hashtbl Instance Lazy List Measure Mpisim Option Printf Replay Scalatrace Staged Test Time Toolkit
