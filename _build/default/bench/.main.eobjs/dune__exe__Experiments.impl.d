bench/experiments.ml: Apps Array Benchgen Conceptual List Mpip Mpisim Option Printf Replay Scalatrace Stats Table Unix Util
