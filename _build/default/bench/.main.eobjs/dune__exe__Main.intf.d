bench/main.mli:
