(* Command-line front end for the benchmark generator.

     benchgen list
     benchgen trace    lu  -n 16 -c W          # show the compressed trace
     benchgen generate lu  -n 16 -c W -o lu.ncptl
     benchgen run      lu.ncptl -n 16 --net ethernet --compute-scale 0.5
     benchgen compare  lu  -n 16 -c W          # original vs generated timing *)

open Cmdliner

let net_conv =
  let parse = function
    | "bgl" | "bluegene" | "bluegene_l" -> Ok Mpisim.Netmodel.bluegene_l
    | "eth" | "ethernet" | "ethernet_cluster" -> Ok Mpisim.Netmodel.ethernet_cluster
    | s -> Error (`Msg (Printf.sprintf "unknown network model %S (bgl|ethernet)" s))
  in
  let print ppf n = Format.fprintf ppf "%a" Mpisim.Netmodel.pp n in
  Arg.conv (parse, print)

let cls_conv =
  let parse s =
    match Apps.Params.cls_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown class %S (S|W|A|B|C)" s))
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (Apps.Params.cls_to_string c))

let nranks_arg =
  Arg.(value & opt int 16 & info [ "n"; "nranks" ] ~docv:"N" ~doc:"Number of MPI ranks.")

let cls_arg =
  Arg.(
    value
    & opt cls_conv Apps.Params.W
    & info [ "c"; "class" ] ~docv:"CLS" ~doc:"Problem class (S, W, A, B, C).")

let net_arg =
  Arg.(
    value
    & opt net_conv Mpisim.Netmodel.bluegene_l
    & info [ "net" ] ~docv:"MODEL" ~doc:"Network model: bgl or ethernet.")

let app_arg =
  let apps = List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all in
  Arg.(
    required
    & pos 0 (some (enum (List.map (fun n -> (n, n)) apps))) None
    & info [] ~docv:"APP" ~doc:"Application name (see `benchgen list`).")

let resolve_app name wanted =
  let app = Option.get (Apps.Registry.find name) in
  let nranks = Apps.Registry.fit_nranks app ~wanted in
  if nranks <> wanted then
    Printf.eprintf "note: %s does not support %d ranks; using %d\n%!" name wanted nranks;
  (app, nranks)

let list_cmd =
  let doc = "List the traceable applications." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun (a : Apps.Registry.app) -> Printf.printf "%-8s %s\n" a.name a.description)
            Apps.Registry.all)
      $ const ())

let trace_cmd =
  let doc = "Trace an application; print the trace or save it to a file." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Save the trace to $(docv).")
  in
  let run name wanted cls net out =
    let app, nranks = resolve_app name wanted in
    let trace, outcome =
      Scalatrace.Tracer.trace_run ~net ~nranks (app.program ~cls ())
    in
    (match out with
    | Some path ->
        Scalatrace.Trace_io.save trace ~path;
        Printf.printf "wrote %s\n" path
    | None -> Format.printf "%a@." Scalatrace.Trace.pp trace);
    Printf.printf
      "run: %.3f virtual seconds; trace: %d RSDs for %d MPI events (%s serialized)\n"
      outcome.elapsed (Scalatrace.Trace.rsd_count trace)
      (Scalatrace.Trace.event_count trace)
      (Util.Table.fbytes (Scalatrace.Trace.text_size trace))
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ app_arg $ nranks_arg $ cls_arg $ net_arg $ out_arg)

let generate_from_trace_cmd =
  let doc = "Generate a coNCePTuaL benchmark from a saved trace file." in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let run file out =
    let trace = Scalatrace.Trace_io.load ~path:file in
    let report = Benchgen.generate ~name:file trace in
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc report.text;
        close_out oc;
        Printf.printf "wrote %s (%d statements)\n" path report.statements
    | None -> print_string report.text
  in
  Cmd.v (Cmd.info "generate-from-trace" ~doc) Term.(const run $ file_arg $ out_arg)

let replay_cmd =
  let doc = "Replay a saved trace on the simulator (ScalaReplay)." in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")
  in
  let run file net =
    let trace = Scalatrace.Trace_io.load ~path:file in
    let r = Replay.run ~net trace in
    Printf.printf "replayed %d MPI events in %.6f virtual seconds\n"
      (Scalatrace.Trace.event_count trace) r.outcome.elapsed
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ net_arg)

let generate_cmd =
  let doc = "Generate a benchmark (coNCePTuaL or C+MPI) from a trace." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let lang_arg =
    Arg.(
      value
      & opt (enum [ ("conceptual", `Conceptual); ("c", `C) ]) `Conceptual
      & info [ "lang" ] ~docv:"LANG" ~doc:"Target language: conceptual or c.")
  in
  let run name wanted cls net out lang =
    let app, nranks = resolve_app name wanted in
    let report, _ =
      Benchgen.from_app ~name ~net ~nranks (app.program ~cls ())
    in
    let text =
      match lang with
      | `Conceptual -> report.Benchgen.text
      | `C ->
          (* regenerate via the C backend from the same rewritten trace *)
          let trace, _ =
            Scalatrace.Tracer.trace_run ~net ~nranks (app.program ~cls ())
          in
          let trace, _ = Benchgen.Align.align_if_needed trace in
          let trace, _ = Benchgen.Wildcard.resolve_if_needed trace in
          Benchgen.Cgen.program ~name trace
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d statements%s%s)\n" path report.statements
          (if report.aligned then "; collectives aligned" else "")
          (if report.resolved then "; wildcards resolved" else "")
    | None -> print_string text)
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ app_arg $ nranks_arg $ cls_arg $ net_arg $ out_arg $ lang_arg)

let run_cmd =
  let doc = "Execute a .ncptl benchmark on the simulator." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Benchmark source.")
  in
  let scale_arg =
    Arg.(
      value
      & opt float 1.0
      & info [ "compute-scale" ] ~docv:"F"
          ~doc:"Multiply all COMPUTE durations by $(docv) (what-if studies).")
  in
  let run file wanted net scale =
    let text = In_channel.with_open_text file In_channel.input_all in
    let program = Conceptual.Parse.program text in
    let program =
      if scale = 1.0 then program else Conceptual.Edit.scale_compute scale program
    in
    let res = Conceptual.Lower.run ~net ~nranks:wanted program in
    Printf.printf "total time: %.6f s  (%d messages, %s)\n" res.outcome.elapsed
      res.outcome.messages
      (Util.Table.fbytes res.outcome.p2p_bytes);
    List.iter
      (fun (label, vals) ->
        Printf.printf "log %S:" label;
        List.iter (fun (r, v) -> Printf.printf " [%d]=%.1fus" r v) vals;
        print_newline ())
      res.logs
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ nranks_arg $ net_arg $ scale_arg)

let stats_cmd =
  let doc = "Communication statistics of an application (or trace file)." in
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Analyze a saved trace instead of tracing APP.")
  in
  let app_opt =
    let apps = List.map (fun (a : Apps.Registry.app) -> a.name) Apps.Registry.all in
    Arg.(
      value
      & pos 0 (some (enum (List.map (fun n -> (n, n)) apps))) None
      & info [] ~docv:"APP" ~doc:"Application name (omit when using --trace).")
  in
  let run app_name wanted cls net file =
    let trace =
      match (file, app_name) with
      | Some path, _ -> Scalatrace.Trace_io.load ~path
      | None, Some name ->
          let app, nranks = resolve_app name wanted in
          fst (Scalatrace.Tracer.trace_run ~net ~nranks (app.program ~cls ()))
      | None, None ->
          prerr_endline "either APP or --trace FILE is required";
          exit 1
    in
    Printf.printf "ranks: %d; RSDs: %d; MPI events: %d; total compute: %s\n\n"
      (Scalatrace.Trace.nranks trace)
      (Scalatrace.Trace.rsd_count trace)
      (Scalatrace.Trace.event_count trace)
      (Util.Table.fsec (Scalatrace.Analysis.total_compute trace));
    List.iter
      (fun (name, calls, bytes) ->
        Printf.printf "%-20s %10d calls %14s\n" name calls (Util.Table.fbytes bytes))
      (Scalatrace.Analysis.op_totals trace);
    print_newline ();
    if Scalatrace.Trace.nranks trace <= 32 then
      print_string
        (Scalatrace.Analysis.matrix_to_string (Scalatrace.Analysis.comm_matrix trace))
    else print_endline "(communication matrix omitted for > 32 ranks)"
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ app_opt $ nranks_arg $ cls_arg $ net_arg $ file_arg)

let compare_cmd =
  let doc = "Trace, generate, and compare original vs generated benchmark." in
  let run name wanted cls net =
    let app, nranks = resolve_app name wanted in
    let report, orig =
      Benchgen.from_app ~name ~net ~nranks (app.program ~cls ())
    in
    let prof_o = Mpip.create () and prof_g = Mpip.create () in
    ignore (Mpisim.Mpi.run ~hooks:[ Mpip.hook prof_o ] ~net ~nranks (app.program ~cls ()));
    let res =
      Conceptual.Lower.run ~hooks:[ Mpip.hook prof_g ] ~net ~nranks report.program
    in
    Printf.printf "original:  %.6f s\ngenerated: %.6f s\nerror:     %+.2f%%\n"
      orig.elapsed res.outcome.elapsed
      (100. *. (res.outcome.elapsed -. orig.elapsed) /. orig.elapsed);
    Printf.printf "passes:    align=%b wildcard=%b; %d statements from %d RSDs\n"
      report.aligned report.resolved report.statements report.final_rsds;
    let diffs = Mpip.diff prof_o prof_g in
    if diffs = [] then print_endline "mpiP:      identical per-operation statistics"
    else begin
      print_endline "mpiP differences (Table 1 substitutions and AWAIT rewrites):";
      List.iter (fun d -> print_endline ("  " ^ d)) diffs
    end
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ app_arg $ nranks_arg $ cls_arg $ net_arg)

let extrapolate_cmd =
  let doc =
    "Extrapolate traces from small rank counts and generate a benchmark for \
     a larger machine (paper Sec 6 / ScalaExtrap)."
  in
  let from_arg =
    Arg.(
      value
      & opt (list int) [ 4; 8; 16 ]
      & info [ "from" ] ~docv:"P1,P2,.." ~doc:"Rank counts to trace (>= 2).")
  in
  let target_arg =
    Arg.(
      value & opt int 64 & info [ "target" ] ~docv:"P" ~doc:"Target rank count.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the benchmark to $(docv).")
  in
  let run name cls net froms target out =
    let app = Option.get (Apps.Registry.find name) in
    let inputs =
      List.map
        (fun p ->
          let p = Apps.Registry.fit_nranks app ~wanted:p in
          fst (Scalatrace.Tracer.trace_run ~net ~nranks:p (app.program ~cls ())))
        froms
    in
    match Benchgen.Extrap.extrapolate inputs ~target with
    | exception Benchgen.Extrap.Extrap_error msg ->
        Printf.eprintf "cannot extrapolate %s: %s\n" name msg;
        exit 1
    | trace -> (
        let report =
          Benchgen.generate ~name:(Printf.sprintf "%s (extrapolated to %d)" name target)
            trace
        in
        match out with
        | Some path ->
            let oc = open_out path in
            output_string oc report.text;
            close_out oc;
            Printf.printf "wrote %s (%d statements for %d tasks)\n" path
              report.statements target
        | None -> print_string report.text)
  in
  Cmd.v (Cmd.info "extrapolate" ~doc)
    Term.(const run $ app_arg $ cls_arg $ net_arg $ from_arg $ target_arg $ out_arg)

let () =
  let doc = "automatic generation of executable communication specifications" in
  let info = Cmd.info "benchgen" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [
          list_cmd; trace_cmd; generate_cmd; generate_from_trace_cmd; run_cmd;
          replay_cmd; compare_cmd; extrapolate_cmd; stats_cmd;
        ]))
