open Util

let check = Alcotest.(check (list int))

let t name f = Alcotest.test_case name `Quick f

let basics =
  [
    t "empty" (fun () -> check "empty" [] (Rank_set.to_list Rank_set.empty));
    t "singleton" (fun () -> check "s" [ 5 ] (Rank_set.to_list (Rank_set.singleton 5)));
    t "range" (fun () ->
        check "r" [ 2; 3; 4; 5 ] (Rank_set.to_list (Rank_set.range 2 5)));
    t "range stride" (fun () ->
        check "r" [ 0; 3; 6; 9 ] (Rank_set.to_list (Rank_set.range ~stride:3 0 9)));
    t "range stride truncates" (fun () ->
        check "r" [ 1; 4; 7 ] (Rank_set.to_list (Rank_set.range ~stride:3 1 8)));
    t "range rejects bad stride" (fun () ->
        Alcotest.check_raises "stride" (Invalid_argument "Rank_set.range: stride <= 0")
          (fun () -> ignore (Rank_set.range ~stride:0 0 3)));
    t "all" (fun () -> check "all" [ 0; 1; 2; 3 ] (Rank_set.to_list (Rank_set.all 4)));
    t "all zero" (fun () -> check "all0" [] (Rank_set.to_list (Rank_set.all 0)));
    t "of_list dedups and sorts" (fun () ->
        check "d" [ 1; 2; 9 ] (Rank_set.to_list (Rank_set.of_list [ 9; 1; 2; 1; 9 ])));
    t "of_list finds stride" (fun () ->
        Alcotest.(check int)
          "intervals" 1
          (Rank_set.interval_count (Rank_set.of_list [ 0; 4; 8; 12 ])));
    t "mem" (fun () ->
        let s = Rank_set.range ~stride:2 0 8 in
        Alcotest.(check bool) "in" true (Rank_set.mem 4 s);
        Alcotest.(check bool) "out" false (Rank_set.mem 3 s);
        Alcotest.(check bool) "beyond" false (Rank_set.mem 10 s));
    t "add remove" (fun () ->
        let s = Rank_set.add 3 (Rank_set.of_list [ 1; 2 ]) in
        check "add" [ 1; 2; 3 ] (Rank_set.to_list s);
        check "remove" [ 1; 3 ] (Rank_set.to_list (Rank_set.remove 2 s)));
    t "min max" (fun () ->
        let s = Rank_set.of_list [ 7; 3; 9 ] in
        Alcotest.(check (option int)) "min" (Some 3) (Rank_set.min_elt s);
        Alcotest.(check (option int)) "max" (Some 9) (Rank_set.max_elt s);
        Alcotest.(check (option int)) "min empty" None (Rank_set.min_elt Rank_set.empty));
    t "cardinal" (fun () ->
        Alcotest.(check int) "card" 5 (Rank_set.cardinal (Rank_set.range ~stride:2 0 8)));
    t "interval compression of all-n" (fun () ->
        Alcotest.(check int) "one interval" 1
          (Rank_set.interval_count (Rank_set.all 1000)));
    t "pp strided" (fun () ->
        Alcotest.(check string) "pp" "{0-9:3}"
          (Rank_set.to_string (Rank_set.range ~stride:3 0 9)));
    t "map" (fun () ->
        check "map" [ 1; 3; 5 ]
          (Rank_set.to_list (Rank_set.map (fun r -> (2 * r) + 1) (Rank_set.all 3))));
    t "filter" (fun () ->
        check "filter" [ 0; 2; 4 ]
          (Rank_set.to_list (Rank_set.filter (fun r -> r mod 2 = 0) (Rank_set.all 6))));
  ]

let set_ops =
  [
    t "union" (fun () ->
        check "u" [ 0; 1; 2; 3; 4 ]
          (Rank_set.to_list
             (Rank_set.union (Rank_set.of_list [ 0; 2; 4 ]) (Rank_set.of_list [ 1; 3 ]))));
    t "inter" (fun () ->
        check "i" [ 2; 4 ]
          (Rank_set.to_list
             (Rank_set.inter (Rank_set.of_list [ 0; 2; 4 ]) (Rank_set.range 1 4))));
    t "diff" (fun () ->
        check "d" [ 0; 4 ]
          (Rank_set.to_list
             (Rank_set.diff (Rank_set.of_list [ 0; 2; 4 ]) (Rank_set.of_list [ 2 ]))));
    t "subset" (fun () ->
        Alcotest.(check bool) "sub" true
          (Rank_set.subset (Rank_set.of_list [ 1; 3 ]) (Rank_set.all 4));
        Alcotest.(check bool) "not sub" false
          (Rank_set.subset (Rank_set.of_list [ 5 ]) (Rank_set.all 4)));
    t "equal ignores construction" (fun () ->
        Alcotest.(check bool) "eq" true
          (Rank_set.equal (Rank_set.of_list [ 0; 1; 2 ]) (Rank_set.range 0 2)));
  ]

let gen_set =
  QCheck.map
    (fun l -> Rank_set.of_list (List.map abs l))
    QCheck.(small_list small_int)

let props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"to_list sorted and unique" ~count:200 gen_set (fun s ->
          let l = Rank_set.to_list s in
          l = List.sort_uniq compare l);
      QCheck.Test.make ~name:"union is commutative" ~count:200
        (QCheck.pair gen_set gen_set) (fun (a, b) ->
          Rank_set.equal (Rank_set.union a b) (Rank_set.union b a));
      QCheck.Test.make ~name:"inter subset of both" ~count:200
        (QCheck.pair gen_set gen_set) (fun (a, b) ->
          let i = Rank_set.inter a b in
          Rank_set.subset i a && Rank_set.subset i b);
      QCheck.Test.make ~name:"diff disjoint from b" ~count:200
        (QCheck.pair gen_set gen_set) (fun (a, b) ->
          Rank_set.is_empty (Rank_set.inter (Rank_set.diff a b) b));
      QCheck.Test.make ~name:"cardinal = |to_list|" ~count:200 gen_set (fun s ->
          Rank_set.cardinal s = List.length (Rank_set.to_list s));
      QCheck.Test.make ~name:"mem agrees with to_list" ~count:200
        (QCheck.pair gen_set QCheck.small_int) (fun (s, r) ->
          let r = abs r in
          Rank_set.mem r s = List.mem r (Rank_set.to_list s));
      QCheck.Test.make ~name:"interval encoding roundtrips" ~count:200 gen_set
        (fun s ->
          let rebuilt =
            List.concat_map
              (fun (first, last, stride) ->
                let rec up v acc = if v > last then acc else up (v + stride) (v :: acc) in
                up first [])
              (Rank_set.intervals s)
          in
          Rank_set.equal s (Rank_set.of_list rebuilt));
    ]

let suite = basics @ set_ops @ props
