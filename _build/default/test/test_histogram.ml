open Util

let t name f = Alcotest.test_case name `Quick f
let feq = Alcotest.(check (float 1e-9))
(* bucketed quantiles are accurate to one bucket width (~20%) *)
let feq_rel msg a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %g ~ %g" msg a b)
    true
    (Float.abs (a -. b) <= 0.2 *. Float.max 1e-12 (Float.abs a))

let unit_tests =
  [
    t "empty" (fun () ->
        let h = Histogram.create () in
        Alcotest.(check int) "count" 0 (Histogram.count h);
        feq "mean" 0. (Histogram.mean h);
        feq "min" 0. (Histogram.min_value h);
        feq "max" 0. (Histogram.max_value h));
    t "single sample" (fun () ->
        let h = Histogram.create () in
        Histogram.add h 0.5;
        Alcotest.(check int) "count" 1 (Histogram.count h);
        feq "mean" 0.5 (Histogram.mean h);
        feq "first" 0.5 (Histogram.first_sample h);
        feq "variance" 0. (Histogram.variance h));
    t "mean/min/max exact" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 6.0 ];
        feq "mean" 3.0 (Histogram.mean h);
        feq "min" 1.0 (Histogram.min_value h);
        feq "max" 6.0 (Histogram.max_value h);
        feq "sum" 12.0 (Histogram.sum h));
    t "first vs rest" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 10.0; 1.0; 1.0; 1.0 ];
        feq "first" 10.0 (Histogram.first_sample h);
        feq "rest" 1.0 (Histogram.rest_mean h));
    t "rejects negative" (fun () ->
        let h = Histogram.create () in
        Alcotest.check_raises "neg"
          (Invalid_argument "Histogram.add: sample must be finite and non-negative")
          (fun () -> Histogram.add h (-1.0)));
    t "rejects nan" (fun () ->
        let h = Histogram.create () in
        Alcotest.check_raises "nan"
          (Invalid_argument "Histogram.add: sample must be finite and non-negative")
          (fun () -> Histogram.add h Float.nan));
    t "merge combines counts and extremes" (fun () ->
        let a = Histogram.create () and b = Histogram.create () in
        List.iter (Histogram.add a) [ 1.0; 2.0 ];
        List.iter (Histogram.add b) [ 0.5; 4.0 ];
        Histogram.merge_into a b;
        Alcotest.(check int) "count" 4 (Histogram.count a);
        feq "min" 0.5 (Histogram.min_value a);
        feq "max" 4.0 (Histogram.max_value a);
        feq "first (kept)" 1.0 (Histogram.first_sample a));
    t "merge into empty takes first" (fun () ->
        let a = Histogram.create () and b = Histogram.create () in
        Histogram.add b 2.0;
        Histogram.merge_into a b;
        feq "first" 2.0 (Histogram.first_sample a));
    t "quantile bounds" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 0.001; 0.002; 0.004; 0.008 ];
        feq "q0" 0.001 (Histogram.quantile h 0.);
        feq "q1" 0.008 (Histogram.quantile h 1.);
        let med = Histogram.quantile h 0.5 in
        Alcotest.(check bool) "median in range" true (med >= 0.001 && med <= 0.008));
    t "scale" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 1.0; 3.0 ];
        let s = Histogram.scale h 0.5 in
        feq "mean" 1.0 (Histogram.mean s);
        feq "min" 0.5 (Histogram.min_value s);
        feq "max" 1.5 (Histogram.max_value s);
        Alcotest.(check int) "count" 2 (Histogram.count s));
    t "scale by zero" (fun () ->
        let h = Histogram.create () in
        Histogram.add h 5.0;
        let s = Histogram.scale h 0. in
        feq "mean" 0. (Histogram.mean s));
    t "copy independent" (fun () ->
        let h = Histogram.create () in
        Histogram.add h 1.0;
        let c = Histogram.copy h in
        Histogram.add h 100.0;
        Alcotest.(check int) "copy count" 1 (Histogram.count c));
    t "draw within range" (fun () ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) [ 0.01; 0.02; 0.03 ];
        List.iter
          (fun u ->
            let v = Histogram.draw h ~u in
            Alcotest.(check bool) "in range" true (v >= 0.01 && v <= 0.03))
          [ 0.0; 0.3; 0.7; 0.99 ]);
    t "mean reconstruction error small" (fun () ->
        (* bucketing must reconstruct quantiles within ~5% *)
        let h = Histogram.create () in
        for i = 1 to 1000 do
          Histogram.add h (float_of_int i *. 1e-6)
        done;
        feq_rel "median" 500e-6 (Histogram.quantile h 0.5));
  ]

let gen_samples =
  QCheck.(list_of_size (Gen.int_range 1 50) (map (fun f -> Float.abs f +. 1e-9) float))

let props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"mean = sum/count" ~count:200 gen_samples (fun l ->
          let h = Histogram.create () in
          List.iter (Histogram.add h) l;
          let n = List.length l in
          Float.abs
            ((Histogram.sum h /. float_of_int n) -. Histogram.mean h)
          < 1e-9);
      QCheck.Test.make ~name:"merge mean = pooled mean" ~count:200
        (QCheck.pair gen_samples gen_samples) (fun (a, b) ->
          let ha = Histogram.create () and hb = Histogram.create () in
          List.iter (Histogram.add ha) a;
          List.iter (Histogram.add hb) b;
          Histogram.merge_into ha hb;
          let pooled =
            List.fold_left ( +. ) 0. (a @ b) /. float_of_int (List.length a + List.length b)
          in
          Float.abs (Histogram.mean ha -. pooled) <= 1e-9 *. (1. +. pooled));
      QCheck.Test.make ~name:"self-merge preserves mean" ~count:100 gen_samples
        (fun l ->
          let h = Histogram.create () in
          List.iter (Histogram.add h) l;
          let m = Histogram.mean h in
          Histogram.merge_into h (Histogram.copy h);
          Float.abs (Histogram.mean h -. m) <= 1e-9 *. (1. +. m));
      QCheck.Test.make ~name:"quantiles monotone" ~count:100 gen_samples (fun l ->
          let h = Histogram.create () in
          List.iter (Histogram.add h) l;
          Histogram.quantile h 0.25 <= Histogram.quantile h 0.75);
      QCheck.Test.make ~name:"scale scales mean" ~count:100
        (QCheck.pair gen_samples (QCheck.float_range 0. 10.)) (fun (l, k) ->
          let h = Histogram.create () in
          List.iter (Histogram.add h) l;
          let s = Histogram.scale h k in
          Float.abs (Histogram.mean s -. (k *. Histogram.mean h))
          <= 1e-9 *. (1. +. Histogram.mean h));
    ]

let suite = unit_tests @ props
