open Conceptual
module A = Ast

let t name f = Alcotest.test_case name `Quick f

let eval_tests =
  [
    t "arithmetic" (fun () ->
        Alcotest.(check int) "mod"
          3
          (A.eval_int [] (A.Bin (A.Mod, A.Int 7, A.Int 4)));
        Alcotest.(check int) "negative mod is non-negative" 3
          (A.eval_int [] (A.Bin (A.Mod, A.Int (-1), A.Int 4)));
        Alcotest.(check int) "precedence-free tree" 14
          (A.eval_int [] (A.Bin (A.Add, A.Int 2, A.Bin (A.Mul, A.Int 3, A.Int 4)))));
    t "variables" (fun () ->
        Alcotest.(check int) "var" 11
          (A.eval_int [ ("t", 5) ] (A.Bin (A.Add, A.Var "t", A.Int 6))));
    t "unbound variable raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (A.eval_int [] (A.Var "nope"));
             false
           with A.Eval_error _ -> true));
    t "division by zero raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (A.eval_int [] (A.Bin (A.Div, A.Int 1, A.Int 0)));
             false
           with A.Eval_error _ -> true));
    t "predicates" (fun () ->
        let p =
          A.And (A.Cmp (A.Ge, A.Var "t", A.Int 2), A.Divides (A.Int 3, A.Var "t"))
        in
        Alcotest.(check bool) "3 ok" true (A.eval_pred [ ("t", 3) ] p);
        Alcotest.(check bool) "4 no" false (A.eval_pred [ ("t", 4) ] p);
        Alcotest.(check bool) "0 no" false (A.eval_pred [ ("t", 0) ] p));
    t "tasks membership" (fun () ->
        let g = A.Group { var = "t"; pred = A.Cmp (A.Lt, A.Var "t", A.Int 3) } in
        Alcotest.(check (list int)) "members" [ 0; 1; 2 ] (A.members g [] ~nranks:8);
        Alcotest.(check bool) "mem" true (A.mem g [] ~rank:2 ~nranks:8);
        Alcotest.(check bool) "out of world" false (A.mem (A.All None) [] ~rank:9 ~nranks:8));
    t "tasks_of_rank_set forms" (fun () ->
        Alcotest.(check bool) "all" true
          (A.tasks_of_rank_set ~nranks:4 (Util.Rank_set.all 4) = A.All (Some "t"));
        Alcotest.(check bool) "single" true
          (A.tasks_of_rank_set ~nranks:4 (Util.Rank_set.singleton 2) = A.Single (A.Int 2));
        match A.tasks_of_rank_set ~nranks:16 (Util.Rank_set.range ~stride:4 0 12) with
        | A.Group { var = "t"; _ } as g ->
            Alcotest.(check (list int)) "members" [ 0; 4; 8; 12 ]
              (A.members g [] ~nranks:16)
        | _ -> Alcotest.fail "expected group");
    t "size counts nested statements" (fun () ->
        let p =
          {
            A.comments = [];
            body =
              [
                A.For
                  {
                    count = A.Int 2;
                    body = [ A.Sync (A.All None); A.Await (A.All None) ];
                  };
              ];
          }
        in
        Alcotest.(check int) "size" 3 (A.size p));
  ]

(* -------------------------------------------------------------- *)
(* Random program generator for round-trip property                 *)

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof [ map (fun i -> A.Int (abs i mod 64)) int; return (A.Var "t") ]
        else
          frequency
            [
              (2, map (fun i -> A.Int (abs i mod 64)) int);
              (1, return (A.Var "t"));
              ( 2,
                map3
                  (fun op a b -> A.Bin (op, a, b))
                  (oneofl [ A.Add; A.Sub; A.Mul; A.Div; A.Mod ])
                  (self (n / 2)) (self (n / 2)) );
            ]))

let gen_pred =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          map2
            (fun op (a, b) -> A.Cmp (op, a, b))
            (oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ])
            (pair (gen_expr >|= Fun.id) gen_expr)
        else
          frequency
            [
              ( 3,
                map2
                  (fun op (a, b) -> A.Cmp (op, a, b))
                  (oneofl [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ])
                  (pair gen_expr gen_expr) );
              (1, map2 (fun a b -> A.And (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> A.Or (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> A.Not a) (self (n / 2)));
              (1, map2 (fun k e -> A.Divides (k, e)) gen_expr gen_expr);
            ]))

let gen_tasks =
  QCheck.Gen.(
    oneof
      [
        return (A.All None);
        return (A.All (Some "t"));
        map (fun e -> A.Single e) gen_expr;
        map (fun p -> A.Group { var = "t"; pred = p }) gen_pred;
      ])

let gen_stmt =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let atomic =
          oneof
            [
              map3
                (fun src dst (b, async, tag) ->
                  A.Send
                    {
                      src; async;
                      bytes = A.Int (abs b mod 10000);
                      dst; tag = abs tag mod 4;
                      implicit_recv = false;
                    })
                gen_tasks gen_expr
                (triple int bool int);
              map3
                (fun dst src (b, async, tag) ->
                  A.Receive
                    { dst; async; bytes = A.Int (abs b mod 10000); src;
                      tag = (if tag mod 5 = 0 then -1 else abs tag mod 4) })
                gen_tasks gen_expr
                (triple int bool int);
              map (fun t -> A.Await t) gen_tasks;
              map (fun t -> A.Sync t) gen_tasks;
              map2 (fun src dst ->
                  A.Multicast { src; bytes = A.Int 128; dst })
                gen_tasks gen_tasks;
              map2 (fun src dst -> A.Reduce { src; bytes = A.Int 64; dst })
                gen_tasks gen_tasks;
              map (fun t -> A.Alltoall { tasks = t; bytes = A.Int 32 }) gen_tasks;
              map2
                (fun t f ->
                  A.Compute { tasks = t; usecs = A.Float (Float.abs f +. 0.001) })
                gen_tasks (float_bound_exclusive 1000.);
              map2
                (fun t a ->
                  A.Log
                    { tasks = t;
                      agg =
                        (match a mod 5 with
                         | 0 -> Some A.Mean | 1 -> Some A.Median
                         | 2 -> Some A.Minimum | 3 -> Some A.Maximum
                         | _ -> None);
                      label = "series" })
                gen_tasks int;
              map (fun t -> A.Reset t) gen_tasks;
            ]
        in
        if n <= 1 then atomic
        else
          frequency
            [
              (6, atomic);
              ( 1,
                map2
                  (fun c body -> A.For { count = A.Int (1 + (abs c mod 5)); body })
                  int
                  (list_size (int_range 1 3) (self (n / 2))) );
              ( 1,
                map
                  (fun body ->
                    A.For_each { var = "i"; first = A.Int 0; last = A.Int 3; body })
                  (list_size (int_range 1 3) (self (n / 2))) );
              ( 1,
                map3
                  (fun c th el -> A.If { cond = c; then_ = th; else_ = el })
                  gen_pred
                  (list_size (int_range 1 2) (self (n / 2)))
                  (list_size (int_range 0 2) (self (n / 2))) );
            ]))

let gen_program =
  QCheck.make
    ~print:(fun p -> Pretty.program p)
    QCheck.Gen.(
      map
        (fun body -> { A.comments = [ "generated" ]; body })
        (list_size (int_range 1 6) gen_stmt))

let roundtrip_props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"pretty/parse round-trip" ~count:500 gen_program
        (fun p -> A.equal p (Parse.program (Pretty.program p)));
    ]

let parse_tests =
  [
    t "parses the paper's Section 3.2 program" (fun () ->
        let src =
          "FOR 1000 REPETITIONS {\n\
          \  ALL TASKS RESET THEIR COUNTERS THEN\n\
          \  ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK (t + 1) MOD 8 THEN\n\
          \  ALL TASKS AWAIT COMPLETION THEN\n\
          \  TASK 0 LOGS elapsed_usecs AS \"Time (us)\"\n\
           }"
        in
        match Parse.stmts src with
        | [ A.For { count = A.Int 1000; body } ] ->
            Alcotest.(check int) "4 stmts" 4 (List.length body)
        | _ -> Alcotest.fail "unexpected parse");
    t "parses SUCH THAT with DIVIDES (paper Sec 4.1 example)" (fun () ->
        match
          Parse.stmts "TASKS xyz SUCH THAT 3 DIVIDES xyz REDUCE A 8 BYTE MESSAGE TO TASK 0"
        with
        | [ A.Reduce { src = A.Group { var = "xyz"; _ }; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    t "comments preserved" (fun () ->
        let p = Parse.program "# hello\n# world\nALL TASKS SYNCHRONIZE\n" in
        Alcotest.(check (list string)) "comments" [ "hello"; "world" ] p.A.comments);
    t "parse error has location" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Parse.program "ALL TASKS FLY");
             false
           with Parse.Parse_error msg -> String.length msg > 0));
    t "using tag round trip" (fun () ->
        match Parse.stmts "TASK 0 SENDS A 8 BYTE MESSAGE TO TASK 1 USING TAG 7 WITH NO IMPLICIT RECEIVE" with
        | [ A.Send { tag = 7; implicit_recv = false; _ } ] -> ()
        | _ -> Alcotest.fail "tag lost");
    t "using any tag" (fun () ->
        match Parse.stmts "TASK 0 RECEIVES A 8 BYTE MESSAGE FROM TASK 1 USING ANY TAG" with
        | [ A.Receive { tag = -1; _ } ] -> ()
        | _ -> Alcotest.fail "any tag lost");
    t "empty input" (fun () ->
        Alcotest.(check bool) "empty" true ((Parse.program "").A.body = []));
    t "parses the paper's Section 3.2 program verbatim (with MEDIAN)" (fun () ->
        let src =
          "FOR 1000 REPETITIONS {\n\
          \  ALL TASKS RESET THEIR COUNTERS THEN\n\
          \  ALL TASKS t ASYNCHRONOUSLY SEND A 1024 BYTE MESSAGE TO TASK t + 1 THEN\n\
          \  ALL TASKS AWAIT COMPLETION THEN\n\
          \  ALL TASKS LOG THE MEDIAN OF elapsed_usecs AS \"Time (us)\"\n\
           }"
        in
        match Parse.stmts src with
        | [ A.For { body = [ _; _; _; A.Log { agg = Some A.Median; _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected parse");
    t "log aggregates reduce per rank" (fun () ->
        let p =
          Parse.program
            "FOR 4 REPETITIONS {\n\
             ALL TASKS RESET THEIR COUNTERS THEN\n\
             ALL TASKS COMPUTE FOR 100.0 MICROSECONDS THEN\n\
             TASK 0 LOGS THE MAXIMUM OF elapsed_usecs AS \"m\"\n\
             }"
        in
        let res = Lower.run ~nranks:2 p in
        match res.logs with
        | [ ("m", [ (0, v) ]) ] ->
            Alcotest.(check bool) "one aggregated entry ~100us" true (v >= 99. && v < 200.)
        | _ -> Alcotest.fail "expected a single aggregated value");
  ]

(* -------------------------------------------------------------- *)
(* Lowering semantics                                               *)

let lower_tests =
  [
    t "implicit receive pairs up" (fun () ->
        let p =
          Parse.program
            "ALL TASKS t SEND A 100 BYTE MESSAGE TO TASK (t + 1) MOD 4"
        in
        let res = Lower.run ~nranks:4 p in
        Alcotest.(check int) "messages" 4 res.outcome.messages);
    t "explicit receives require WITH NO IMPLICIT RECEIVE" (fun () ->
        let p =
          Parse.program
            "ALL TASKS t ASYNCHRONOUSLY RECEIVE A 10 BYTE MESSAGE FROM TASK (t + 3) MOD 4 THEN\n\
             ALL TASKS t SEND A 10 BYTE MESSAGE TO TASK (t + 1) MOD 4 WITH NO IMPLICIT RECEIVE THEN\n\
             ALL TASKS AWAIT COMPLETION"
        in
        let res = Lower.run ~nranks:4 p in
        Alcotest.(check int) "messages" 4 res.outcome.messages);
    t "compute accumulates" (fun () ->
        let p = Parse.program "ALL TASKS COMPUTE FOR 2500.0 MICROSECONDS" in
        let res = Lower.run ~nranks:2 p in
        Alcotest.(check bool) "elapsed" true (res.outcome.elapsed >= 2.5e-3));
    t "reduce to all lowers to allreduce" (fun () ->
        let p = Parse.program "ALL TASKS t REDUCE A 64 BYTE MESSAGE TO ALL TASKS t" in
        let prof = Mpip.create () in
        ignore (Lower.run ~hooks:[ Mpip.hook prof ] ~nranks:4 p);
        let e = List.find (fun (e : Mpip.entry) -> e.op_name = "MPI_Allreduce") (Mpip.entries prof) in
        Alcotest.(check int) "calls" 4 e.calls);
    t "multicast from group member lowers to bcast" (fun () ->
        let p = Parse.program "TASK 2 MULTICASTS A 32 BYTE MESSAGE TO ALL TASKS" in
        let prof = Mpip.create () in
        ignore (Lower.run ~hooks:[ Mpip.hook prof ] ~nranks:4 p);
        let e = List.find (fun (e : Mpip.entry) -> e.op_name = "MPI_Bcast") (Mpip.entries prof) in
        Alcotest.(check int) "calls" 4 e.calls);
    t "group collective creates subcommunicator" (fun () ->
        let p =
          Parse.program "TASKS t SUCH THAT t < 2 SYNCHRONIZE THEN ALL TASKS SYNCHRONIZE"
        in
        let res = Lower.run ~nranks:4 p in
        Alcotest.(check bool) "ran" true (res.outcome.elapsed > 0.));
    t "log and reset produce series" (fun () ->
        let p =
          Parse.program
            "FOR 3 REPETITIONS {\n\
             ALL TASKS RESET THEIR COUNTERS THEN\n\
             ALL TASKS COMPUTE FOR 100.0 MICROSECONDS THEN\n\
             TASK 0 LOGS elapsed_usecs AS \"iter\"\n\
             }"
        in
        let res = Lower.run ~nranks:2 p in
        match res.logs with
        | [ ("iter", vals) ] ->
            Alcotest.(check int) "3 entries" 3 (List.length vals);
            List.iter
              (fun (_, v) -> Alcotest.(check bool) "~100us" true (v >= 99. && v < 200.))
              vals
        | _ -> Alcotest.fail "expected one series");
    t "for each binds loop variable" (fun () ->
        let p =
          Parse.program
            "FOR EACH i IN {1, ..., 3} {\nTASK 0 COMPUTES FOR i * 100.0 MICROSECONDS\n}"
        in
        let res = Lower.run ~nranks:1 p in
        Alcotest.(check bool) "sum is 600us" true
          (res.outcome.elapsed >= 600e-6 && res.outcome.elapsed < 700e-6));
    t "if condition selects branch" (fun () ->
        let p =
          Parse.program
            "FOR EACH i IN {0, ..., 1} {\n\
             IF i = 0 THEN {\nTASK 0 COMPUTES FOR 100.0 MICROSECONDS\n} ELSE {\n\
             TASK 0 COMPUTES FOR 900.0 MICROSECONDS\n}\n}"
        in
        let res = Lower.run ~nranks:1 p in
        Alcotest.(check bool) "1000us total" true
          (res.outcome.elapsed >= 1000e-6 && res.outcome.elapsed < 1100e-6));
    t "multicast with multi-task source rejected" (fun () ->
        let p = Parse.program "ALL TASKS MULTICAST A 8 BYTE MESSAGE TO ALL TASKS" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lower.run ~nranks:2 p);
             false
           with Lower.Lower_error _ -> true));
    t "send outside world rejected" (fun () ->
        let p = Parse.program "TASK 0 SENDS A 8 BYTE MESSAGE TO TASK 99" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Lower.run ~nranks:2 p);
             false
           with Lower.Lower_error _ -> true));
    t "deterministic logs across runs" (fun () ->
        let p =
          Parse.program
            "ALL TASKS t SEND A 2048 BYTE MESSAGE TO TASK (t + 1) MOD 8 THEN\n\
             TASK 0 LOGS elapsed_usecs AS \"T\""
        in
        let v1 = Lower.run ~nranks:8 p and v2 = Lower.run ~nranks:8 p in
        Alcotest.(check bool) "equal logs" true (v1.logs = v2.logs));
  ]

let edit_tests =
  [
    t "scale_compute scales durations" (fun () ->
        let p = Parse.program "ALL TASKS COMPUTE FOR 1000.0 MICROSECONDS" in
        let p2 = Edit.scale_compute 0.5 p in
        let res = Lower.run ~nranks:1 p2 in
        Alcotest.(check bool) "halved" true
          (res.outcome.elapsed >= 500e-6 && res.outcome.elapsed < 600e-6));
    t "scale_compute 0 removes compute" (fun () ->
        let p = Parse.program "ALL TASKS COMPUTE FOR 1000.0 MICROSECONDS" in
        let res = Lower.run ~nranks:1 (Edit.scale_compute 0. p) in
        Alcotest.(check bool) "zero" true (res.outcome.elapsed < 1e-4));
    t "scale_messages scales bytes" (fun () ->
        let p = Parse.program "TASK 0 SENDS A 1000 BYTE MESSAGE TO TASK 1" in
        let prof = Mpip.create () in
        ignore (Lower.run ~hooks:[ Mpip.hook prof ] ~nranks:2 (Edit.scale_messages 2.0 p));
        Alcotest.(check int) "doubled" 4000 (Mpip.total_bytes prof));
    t "static_compute_usecs expands loops" (fun () ->
        let p =
          Parse.program "FOR 10 REPETITIONS {\nALL TASKS COMPUTE FOR 5.0 MICROSECONDS\n}"
        in
        Alcotest.(check (float 1e-6)) "50" 50.0 (Edit.static_compute_usecs p));
    t "negative factor rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Edit.scale_compute (-1.) { A.comments = []; body = [] });
             false
           with Invalid_argument _ -> true));
  ]

let suite = eval_tests @ roundtrip_props @ parse_tests @ lower_tests @ edit_tests
