(* Golden tests for the engine's timing semantics: the analytic LogGP-like
   costs must come out exactly, so that simulated times are explainable
   from the network model's parameters. *)

open Mpisim

let t name f = Alcotest.test_case name `Quick f

let feq = Alcotest.(check (float 1e-12))

(* a quiet model with clean numbers: L=10us, o=1us, G=1ns/B, rx=0 *)
let net =
  {
    Netmodel.latency = 10e-6;
    overhead = 1e-6;
    byte_time = 1e-9;
    rx_copy_per_byte = 0.;
    eager_threshold = 4096;
    unexpected_copy_per_byte = 0.;
    unexpected_buffer_bytes = 1 lsl 30;
    resume_latency = 0.;
    collective_dispatch = 2e-6;
  }

let fin ctx = Mpi.finalize ctx

let elapsed_of prog = (Mpi.run ~net ~nranks:2 prog).elapsed

let golden_tests =
  [
    t "eager pre-posted latency: o + L + bytes*G + rx(o)" (fun () ->
        (* receiver posts first; sender fires at t=0 *)
        let e =
          elapsed_of (fun ctx ->
              (if ctx.rank = 1 then
                 ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:1000)
               else Mpi.send ctx ~dst:1 ~bytes:1000);
              fin ctx)
        in
        (* finalize adds a barrier: ceil(log2 2)=1 stage of (L + 2o) +
           dispatch, starting when the recv completes *)
        let recv_done = 1e-6 +. 10e-6 +. 1000e-9 +. 1e-6 in
        let barrier = 2e-6 +. (10e-6 +. 2e-6) in
        feq "elapsed" (recv_done +. barrier) e);
    t "rendezvous waits for the receiver" (fun () ->
        let delay = 1e-3 in
        let e =
          elapsed_of (fun ctx ->
              (if ctx.rank = 1 then begin
                 Mpi.compute ctx delay;
                 ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:100_000)
               end
               else Mpi.send ctx ~dst:1 ~bytes:100_000);
              fin ctx)
        in
        (* handshake at post time (RTS arrived long before), then
           L + bytes*G transfer, + o receive cost, + finalize barrier *)
        let post = delay +. 1e-6 in
        let recv_done = post +. 10e-6 +. 100_000e-9 +. 1e-6 in
        let barrier = 2e-6 +. (10e-6 +. 2e-6) in
        feq "elapsed" (recv_done +. barrier) e);
    t "unexpected eager message pays the copy cost" (fun () ->
        let net = { net with unexpected_copy_per_byte = 5e-9 } in
        let o =
          Mpi.run ~net ~nranks:2 (fun ctx ->
              (if ctx.rank = 0 then Mpi.send ctx ~dst:1 ~bytes:1000
               else begin
                 Mpi.compute ctx 1e-3;
                 ignore (Mpi.recv ctx ~src:(Call.Rank 0) ~bytes:1000)
               end);
              fin ctx)
        in
        (* recv completes at post + o + bytes*(rx+unexpected copy) *)
        let recv_done = 1e-3 +. 1e-6 +. 1e-6 +. (1000. *. 5e-9) in
        let barrier = 2e-6 +. (10e-6 +. 2e-6) in
        feq "elapsed" (recv_done +. barrier) o.elapsed);
    t "barrier cost is log2(p) stages" (fun () ->
        List.iter
          (fun (p, stages) ->
            let e =
              (Mpi.run ~net ~nranks:p (fun ctx ->
                   Mpi.barrier ctx;
                   fin ctx))
                .elapsed
            in
            (* one barrier + the finalize barrier *)
            let one = 2e-6 +. (float_of_int stages *. (10e-6 +. 2e-6)) in
            feq (Printf.sprintf "p=%d" p) (2. *. one) e)
          [ (2, 1); (4, 2); (8, 3); (16, 4); (5, 3) ]);
    t "bcast scales with payload" (fun () ->
        let e bytes =
          (Mpi.run ~net ~nranks:4 (fun ctx ->
               Mpi.bcast ctx ~root:0 ~bytes;
               fin ctx))
            .elapsed
        in
        (* 2 stages, each + bytes*G *)
        feq "delta" (2. *. 10_000. *. 1e-9) (e 10_000 -. e 0));
    t "nic serialization queues a burst" (fun () ->
        (* two senders to one receiver: second transfer starts after the
           first finishes on the receiver's inbound link *)
        let o =
          Mpi.run ~net ~nranks:3 (fun ctx ->
              (if ctx.rank > 0 then Mpi.send ctx ~dst:0 ~bytes:4000
               else begin
                 ignore (Mpi.recv ctx ~src:(Call.Rank 1) ~bytes:4000);
                 ignore (Mpi.recv ctx ~src:(Call.Rank 2) ~bytes:4000)
               end);
              fin ctx)
        in
        (* arrival1 = o+L+4000G; arrival2 = arrival1 + 4000G (queued);
           second recv completes at arrival2 + o; finalize barrier on top
           (p=3 -> 2 stages) *)
        let arrival2 = 1e-6 +. 10e-6 +. (2. *. 4000e-9) in
        let done2 = arrival2 +. 1e-6 in
        let barrier = 2e-6 +. (2. *. (10e-6 +. 2e-6)) in
        feq "elapsed" (done2 +. barrier) o.elapsed);
    t "compute times add exactly" (fun () ->
        let e =
          (Mpi.run ~net ~nranks:1 (fun ctx ->
               Mpi.compute ctx 0.5;
               Mpi.compute ctx 0.25;
               fin ctx))
            .elapsed
        in
        feq "sum" (0.75 +. 2e-6) e (* finalize on 1 rank: 0 stages *));
  ]

let replay_mode_tests =
  [
    t "draw-based replay is deterministic per seed" (fun () ->
        let app = Option.get (Apps.Registry.find "mg") in
        let trace, _ =
          Scalatrace.Tracer.trace_run ~nranks:8 (app.program ~cls:Apps.Params.S ())
        in
        let a = (Replay.run ~compute:(Replay.Draw 7) trace).outcome.elapsed in
        let b = (Replay.run ~compute:(Replay.Draw 7) trace).outcome.elapsed in
        Alcotest.(check (float 0.)) "same seed" a b);
    t "draw-based replay stays close to mean-based" (fun () ->
        let app = Option.get (Apps.Registry.find "ep") in
        let trace, _ =
          Scalatrace.Tracer.trace_run ~nranks:4 (app.program ~cls:Apps.Params.S ())
        in
        let mean = (Replay.run trace).outcome.elapsed in
        let draw = (Replay.run ~compute:(Replay.Draw 1) trace).outcome.elapsed in
        Alcotest.(check bool) "within 25%" true
          (Float.abs (draw -. mean) /. mean < 0.25));
  ]

let suite = golden_tests @ replay_mode_tests
