test/test_util_misc.ml: Alcotest Array Callsite Float Fun List Option Pqueue QCheck QCheck_alcotest Random Rng Stats String Table Util
