test/test_extrap.ml: Alcotest Apps Benchgen Call Conceptual Event Float List Mpi Mpisim Option Printf Scalatrace String Tnode Trace Tracer
