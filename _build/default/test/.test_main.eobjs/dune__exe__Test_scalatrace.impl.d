test/test_scalatrace.ml: Alcotest Analysis Array Call Comm Compress Event Fun List Mpi Mpisim Printf QCheck QCheck_alcotest Random Scalatrace String Tnode Trace Tracer Util
