test/test_timing.ml: Alcotest Apps Call Float List Mpi Mpisim Netmodel Option Printf Replay Scalatrace
