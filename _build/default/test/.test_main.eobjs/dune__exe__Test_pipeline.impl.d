test/test_pipeline.ml: Alcotest Apps Benchgen Call Conceptual Float List Mpi Mpip Mpisim Option Printf Replay Scalatrace String
