test/test_benchgen.ml: Alcotest Apps Benchgen Call Event Hashtbl List Mpi Mpisim Option Printf Replay Scalatrace Tnode Trace Tracer Util
