test/test_engine.ml: Alcotest Array Call Comm Engine List Mpi Mpisim Netmodel Util
