test/test_codegen.ml: Alcotest Benchgen Conceptual Event List Mpisim Netmodel Scalatrace String Tnode Trace Util
