test/test_conceptual.ml: Alcotest Ast Conceptual Edit Float Fun List Lower Mpip Parse Pretty QCheck QCheck_alcotest Random String Util
