test/test_histogram.ml: Alcotest Float Gen Histogram List Printf QCheck QCheck_alcotest Random Util
