test/test_rank_set.ml: Alcotest List QCheck QCheck_alcotest Random Rank_set Util
