test/test_fuzz.ml: Alcotest Benchgen Call Conceptual Engine Float List Mpi Mpip Mpisim QCheck QCheck_alcotest Random Util
