test/test_trace_io.ml: Alcotest Apps Benchgen Call Event Filename Fun List Mpi Mpisim Option Scalatrace String Sys Tnode Trace Trace_io Tracer Util
