open Util

let t name f = Alcotest.test_case name `Quick f

let rng_tests =
  [
    t "deterministic for equal seeds" (fun () ->
        let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Rng.bits64 a) (Rng.bits64 b)
        done);
    t "different seeds differ" (fun () ->
        let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
        Alcotest.(check bool) "differ" true (Rng.bits64 a <> Rng.bits64 b));
    t "int respects bound" (fun () ->
        let r = Rng.create ~seed:3 in
        for _ = 1 to 1000 do
          let v = Rng.int r 17 in
          Alcotest.(check bool) "bound" true (v >= 0 && v < 17)
        done);
    t "int rejects non-positive bound" (fun () ->
        let r = Rng.create ~seed:3 in
        Alcotest.check_raises "bound" (Invalid_argument "Rng.int: bound <= 0")
          (fun () -> ignore (Rng.int r 0)));
    t "float in unit interval" (fun () ->
        let r = Rng.create ~seed:5 in
        for _ = 1 to 1000 do
          let v = Rng.float r in
          Alcotest.(check bool) "unit" true (v >= 0. && v < 1.)
        done);
    t "split independence" (fun () ->
        let base = Rng.create ~seed:11 in
        let a = Rng.split base ~index:0 in
        let base2 = Rng.create ~seed:11 in
        let a' = Rng.split base2 ~index:0 in
        Alcotest.(check int64) "reproducible" (Rng.bits64 a) (Rng.bits64 a'));
    t "gaussian truncation" (fun () ->
        let r = Rng.create ~seed:13 in
        for _ = 1 to 500 do
          let v = Rng.gaussian r ~truncate_at_zero:true ~mean:0.01 ~stddev:0.1 () in
          Alcotest.(check bool) "non-negative" true (v >= 0.)
        done);
    t "gaussian mean roughly right" (fun () ->
        let r = Rng.create ~seed:17 in
        let n = 10000 in
        let sum = ref 0. in
        for _ = 1 to n do
          sum := !sum +. Rng.gaussian r ~mean:5.0 ~stddev:1.0 ()
        done;
        let m = !sum /. float_of_int n in
        Alcotest.(check bool) "close" true (Float.abs (m -. 5.0) < 0.05));
    t "exponential positive" (fun () ->
        let r = Rng.create ~seed:19 in
        for _ = 1 to 100 do
          Alcotest.(check bool) "pos" true (Rng.exponential r ~mean:2.0 >= 0.)
        done);
    t "shuffle permutes" (fun () ->
        let r = Rng.create ~seed:23 in
        let a = Array.init 50 Fun.id in
        Rng.shuffle r a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted);
  ]

let pqueue_tests =
  [
    t "pop order by time" (fun () ->
        let q = Pqueue.create () in
        Pqueue.add q ~time:3. "c";
        Pqueue.add q ~time:1. "a";
        Pqueue.add q ~time:2. "b";
        Alcotest.(check (option (pair (float 0.) string))) "a" (Some (1., "a")) (Pqueue.pop q);
        Alcotest.(check (option (pair (float 0.) string))) "b" (Some (2., "b")) (Pqueue.pop q);
        Alcotest.(check (option (pair (float 0.) string))) "c" (Some (3., "c")) (Pqueue.pop q);
        Alcotest.(check bool) "empty" true (Pqueue.is_empty q));
    t "fifo among equal times" (fun () ->
        let q = Pqueue.create () in
        List.iter (fun s -> Pqueue.add q ~time:1. s) [ "x"; "y"; "z" ];
        let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
        Alcotest.(check (list string)) "fifo" [ "x"; "y"; "z" ] order);
    t "rejects nan time" (fun () ->
        let q = Pqueue.create () in
        Alcotest.check_raises "nan" (Invalid_argument "Pqueue.add: non-finite time")
          (fun () -> Pqueue.add q ~time:Float.nan ()));
    t "peek_time" (fun () ->
        let q = Pqueue.create () in
        Alcotest.(check (option (float 0.))) "empty" None (Pqueue.peek_time q);
        Pqueue.add q ~time:5. ();
        Alcotest.(check (option (float 0.))) "peek" (Some 5.) (Pqueue.peek_time q));
    t "length" (fun () ->
        let q = Pqueue.create () in
        for i = 1 to 10 do Pqueue.add q ~time:(float_of_int i) i done;
        Alcotest.(check int) "len" 10 (Pqueue.length q));
  ]

let pqueue_props =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]))
    [
      QCheck.Test.make ~name:"pqueue is a sorter" ~count:200
        QCheck.(small_list (float_range 0. 100.))
        (fun times ->
          let q = Pqueue.create () in
          List.iter (fun t -> Pqueue.add q ~time:t ()) times;
          let rec drain acc =
            match Pqueue.pop q with
            | None -> List.rev acc
            | Some (t, ()) -> drain (t :: acc)
          in
          drain [] = List.sort compare times);
    ]

let callsite_tests =
  [
    t "make distinct positions" (fun () ->
        let a = Callsite.make ("f.ml", 1, 0, 0) and b = Callsite.make ("f.ml", 2, 0, 0) in
        Alcotest.(check bool) "neq" false (Callsite.equal a b));
    t "label distinguishes" (fun () ->
        let a = Callsite.make ~label:"x" ("f.ml", 1, 0, 0) in
        let b = Callsite.make ~label:"y" ("f.ml", 1, 0, 0) in
        Alcotest.(check bool) "neq" false (Callsite.equal a b));
    t "equal reflexive" (fun () ->
        let a = Callsite.make ("f.ml", 1, 2, 3) in
        Alcotest.(check bool) "eq" true (Callsite.equal a a));
    t "synthetic" (fun () ->
        Alcotest.(check bool) "eq" true
          (Callsite.equal (Callsite.synthetic "gen1") (Callsite.synthetic "gen1"));
        Alcotest.(check bool) "neq" false
          (Callsite.equal (Callsite.synthetic "gen1") (Callsite.synthetic "gen2")));
    t "compare total order" (fun () ->
        let a = Callsite.make ("a.ml", 1, 0, 0) and b = Callsite.make ("b.ml", 1, 0, 0) in
        Alcotest.(check bool) "antisym" true
          (Callsite.compare a b = -Callsite.compare b a));
  ]

let stats_tests =
  [
    t "mape" (fun () ->
        Alcotest.(check (float 1e-9)) "mape" 10.
          (Stats.mape [ (100., 110.); (100., 90.) ]));
    t "mape skips zero reference" (fun () ->
        Alcotest.(check (float 1e-9)) "mape" 5. (Stats.mape [ (0., 3.); (100., 105.) ]));
    t "pct_error sign" (fun () ->
        Alcotest.(check (float 1e-9)) "neg" (-10.)
          (Stats.pct_error ~reference:100. ~measured:90.));
    t "geomean" (fun () ->
        Alcotest.(check (float 1e-9)) "geo" 4. (Stats.geomean [ 2.; 8. ]));
    t "table render aligns" (fun () ->
        let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
        Alcotest.(check bool) "has rule" true (String.length s > 0));
    t "fsec units" (fun () ->
        Alcotest.(check string) "s" "1.500 s" (Table.fsec 1.5);
        Alcotest.(check string) "ms" "2.50 ms" (Table.fsec 2.5e-3);
        Alcotest.(check string) "us" "3.00 us" (Table.fsec 3e-6);
        Alcotest.(check string) "ns" "5.0 ns" (Table.fsec 5e-9));
    t "fbytes units" (fun () ->
        Alcotest.(check string) "b" "512 B" (Table.fbytes 512);
        Alcotest.(check string) "k" "2.00 KiB" (Table.fbytes 2048));
  ]

let suite = rng_tests @ pqueue_tests @ pqueue_props @ callsite_tests @ stats_tests
