examples/proprietary_release.mli:
