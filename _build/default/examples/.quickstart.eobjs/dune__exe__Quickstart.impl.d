examples/quickstart.ml: Benchgen Call Conceptual Mpi Mpisim Printf Scalatrace Util
