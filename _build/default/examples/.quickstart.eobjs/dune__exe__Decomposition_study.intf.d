examples/decomposition_study.mli:
