examples/decomposition_study.ml: Apps Benchgen Conceptual List Mpisim Option Printf Util
