examples/whatif_acceleration.ml: Apps Benchgen Conceptual List Mpisim Option Printf Util
