examples/whatif_acceleration.mli:
