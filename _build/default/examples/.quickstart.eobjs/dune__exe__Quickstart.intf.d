examples/quickstart.mli:
