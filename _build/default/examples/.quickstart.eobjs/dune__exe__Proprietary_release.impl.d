examples/proprietary_release.ml: Apps Benchgen Conceptual List Mpisim Option Printf String Util
