open Mpisim

(* 5 ranks. comm_split: {0,1,2} color 0, {3,4} color 1 effectively just
   giving 0,1,2 a subcomm. Rank 2 computes 100s then joins bcast on the
   subcomm. Root 0 and rank 1 enter bcast at ~0. After bcast, root sends
   to world rank 3. Rank 4 computes 50s then sends to rank 3. Rank 3 does
   two wildcard recvs and prints source order + its clock progression. *)
let prog (ctx : Mpi.ctx) =
  let sub = Mpi.comm_split ctx ~color:(if ctx.rank <= 2 then 0 else 1) ~key:ctx.rank in
  match ctx.rank with
  | 0 ->
      Mpi.bcast ~comm:sub ctx ~root:0 ~bytes:8;
      Printf.printf "root resumed at %g\n%!" (Mpi.wtime ctx);
      Mpi.send ctx ~dst:3 ~bytes:8 ~tag:1
  | 1 | 2 ->
      if ctx.rank = 2 then Mpi.compute ctx 100.;
      Mpi.bcast ~comm:sub ctx ~root:0 ~bytes:8
  | 4 ->
      Mpi.compute ctx 50.;
      Mpi.send ctx ~dst:3 ~bytes:8 ~tag:1
  | 3 ->
      let s1 = Mpi.recv ctx ~src:Call.Any_source ~bytes:8 in
      let t1 = Mpi.wtime ctx in
      let s2 = Mpi.recv ctx ~src:Call.Any_source ~bytes:8 in
      let t2 = Mpi.wtime ctx in
      Printf.printf "recv order: first from %d at %g, second from %d at %g\n%!"
        s1.Call.actual_source t1 s2.Call.actual_source t2
  | _ -> ()

let () =
  List.iter
    (fun (label, alg) ->
      Printf.printf "=== %s ===\n%!" label;
      let o = Mpi.run ~coll_alg:alg ~nranks:5 prog in
      Printf.printf "elapsed %g\n%!" o.Engine.elapsed)
    [ ("monolithic", `Monolithic); ("binomial", `Binomial) ]
