(* Experiment harness: regenerates every table and figure of the paper.
   Run with no arguments for the full sequence, or name experiments:

     dune exec bench/main.exe                 # everything except micro
     dune exec bench/main.exe -- fig6 fig7    # a subset
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks *)

let experiments =
  [
    ("table1", "Table 1 mapping + volume-preservation validation", Experiments.table1);
    ("correctness", "Sec 5.2 mpiP statistics comparison", Experiments.correctness);
    ("replay", "Sec 5.2 ScalaReplay per-event comparison", Experiments.replay_check);
    ("fig6", "Figure 6 timing accuracy across the suite", Experiments.fig6);
    ("fig7", "Figure 7 BT what-if acceleration study", Experiments.fig7);
    ("scaling", "trace/benchmark size scaling claims", Experiments.scaling);
    ("algo", "Algorithms 1/2 cost scaling", Experiments.algo);
    ("deadlock", "Figure 5 deadlock detection", Experiments.deadlock);
    ("extrap", "extension: rank-count extrapolation (paper Sec 6)", Experiments.extrap);
    ("ablation", "ablations: wildcard strategy, window, compute floor", Experiments.ablation);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let wall name f =
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
  in
  match args with
  | [] ->
      print_endline
        "Reproduction harness for 'Automatic Generation of Executable\n\
         Communication Specifications from Parallel Applications'";
      List.iter (fun (name, _, f) -> wall name f) experiments
  | [ "micro" ] -> Micro.run ()
  | "perf" :: rest -> wall "perf" (Perf.run ~quick:(List.mem "--quick" rest))
  | [ "perf-smoke" ] -> wall "perf-smoke" Perf.smoke
  | [ "list" ] ->
      List.iter (fun (n, d, _) -> Printf.printf "%-12s %s\n" n d) experiments;
      print_endline "micro        bechamel micro-benchmarks of the pipeline";
      print_endline
        "perf         engine/compressor perf-regression suite -> \
         BENCH_engine.json (add --quick for the smoke-test mode)";
      print_endline
        "perf-smoke   wall-clock guard on the indexed merge path (runs \
         under dune runtest)"
  | names ->
      List.iter
        (fun n ->
          if n = "micro" then Micro.run ()
          else
            match List.find_opt (fun (n', _, _) -> n' = n) experiments with
            | Some (name, _, f) -> wall name f
            | None ->
                Printf.eprintf "unknown experiment %S (try 'list')\n" n;
                exit 1)
        names
