(* Perf-regression harness for the engine hot paths.

   Two parts, both wall-clock timed:

   - an engine microbenchmark that floods one receiver's matching queues
     (unexpected queue drained out of arrival order, then a deep pre-posted
     receive queue), run once with the [`Reference] list matcher and once
     with the [`Indexed] hash matcher — the speedup column is the point of
     the exercise;
   - the end-to-end pipeline (trace -> align -> wildcard -> generate) over
     the NPB suite at several rank counts, with per-stage times and a
     traced-events-per-second figure.

   Results go to BENCH_engine.json in the working directory.  [--quick]
   shrinks every dimension and then re-parses the emitted JSON — that mode
   runs under [dune runtest] as a bitrot smoke test, so it must stay fast
   and must not assert anything about timings. *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Engine microbenchmark                                               *)

(* Generous buffers: the point is queue search cost, not flow control. *)
let micro_net =
  { Mpisim.Netmodel.bluegene_l with unexpected_buffer_bytes = max_int / 2 }

(* Phase 1: every sender floods rank 0 while it computes, so all messages
   land in the unexpected queue; rank 0 then drains newest-senders-first,
   the worst case for a list scan.  Phase 2: rank 0 pre-posts every
   receive, senders fire only after a delay, so each arrival searches a
   deep posted queue. *)
let matching_stress ~msgs_per_rank (ctx : Mpisim.Mpi.ctx) =
  let module Mpi = Mpisim.Mpi in
  let n = ctx.nranks and k = msgs_per_rank in
  if ctx.rank = 0 then begin
    Mpi.compute ctx 1.0;
    for r = n - 1 downto 1 do
      for i = k - 1 downto 0 do
        ignore
          (Mpi.recv ctx ~src:(Mpisim.Call.Rank r) ~tag:(Mpisim.Call.Tag (1000 + i))
             ~bytes:32)
      done
    done;
    let reqs = ref [] in
    for r = 1 to n - 1 do
      for i = 0 to k - 1 do
        reqs :=
          Mpi.irecv ctx ~src:(Mpisim.Call.Rank r) ~tag:(Mpisim.Call.Tag (2000 + i))
            ~bytes:32
          :: !reqs
      done
    done;
    ignore (Mpi.waitall ctx (List.rev !reqs));
    Mpi.finalize ctx
  end
  else begin
    for i = 0 to k - 1 do
      Mpi.send ctx ~dst:0 ~tag:(1000 + i) ~bytes:32
    done;
    (* later ranks go first, so arrivals match late posts *)
    Mpi.compute ctx (2.0 +. (float_of_int (n - ctx.rank) *. 1e-4));
    for i = 0 to k - 1 do
      Mpi.send ctx ~dst:0 ~tag:(2000 + i) ~bytes:32
    done;
    Mpi.finalize ctx
  end

type micro_run = { wall_s : float; events : int; events_per_s : float }

let run_micro ~matcher ~nranks ~msgs_per_rank =
  let outcome, dt =
    wall (fun () ->
        Mpisim.Mpi.run ~net:micro_net ~matcher ~nranks
          (matching_stress ~msgs_per_rank))
  in
  { wall_s = dt; events = outcome.Mpisim.Engine.events;
    events_per_s = float_of_int outcome.Mpisim.Engine.events /. Float.max dt 1e-9 }

(* ------------------------------------------------------------------ *)
(* Merge stress: reference vs indexed inter-rank merge                 *)

(* The high-RSD regime that made MG fall off a cliff, distilled: trace
   the [hirsd] stress app once, then run {!Scalatrace.Merge} over the
   same per-rank traces with both implementations.  The merged traces
   must be byte-identical — the index is a pure lookup structure. *)

type merge_run = {
  g_nranks : int;
  g_rsds : int;
  g_events : int;
  reference_s : float;
  indexed_s : float;
}

let run_merge_stress ~nranks ~cls =
  let app =
    match Apps.Registry.find "hirsd" with
    | Some a -> a
    | None -> failwith "hirsd app missing from registry"
  in
  let t = Scalatrace.Tracer.create ~nranks () in
  ignore
    (Mpisim.Mpi.run ~hooks:[ Scalatrace.Tracer.hook t ] ~nranks
       (app.program ~cls ()));
  let reference, reference_s =
    wall (fun () -> Scalatrace.Tracer.finish ~merge_impl:`Reference t)
  in
  let indexed, indexed_s =
    wall (fun () -> Scalatrace.Tracer.finish ~merge_impl:`Indexed t)
  in
  if Scalatrace.Trace.to_text reference <> Scalatrace.Trace.to_text indexed
  then failwith "merge implementations disagree on the merged trace";
  {
    g_nranks = nranks;
    g_rsds = Scalatrace.Trace.rsd_count indexed;
    g_events = Scalatrace.Trace.event_count indexed;
    reference_s;
    indexed_s;
  }

let merge_json m =
  Obs.Json.Obj
    [
      ("nranks", Obs.Json.Num (float_of_int m.g_nranks));
      ("rsds", Obs.Json.Num (float_of_int m.g_rsds));
      ("events", Obs.Json.Num (float_of_int m.g_events));
      ("reference_s", Obs.Json.Num m.reference_s);
      ("indexed_s", Obs.Json.Num m.indexed_s);
      ("speedup", Obs.Json.Num (m.reference_s /. Float.max m.indexed_s 1e-9));
    ]

(* ------------------------------------------------------------------ *)
(* Collective-algorithm microbenchmark                                  *)

(* One allreduce per iteration under each schedule strategy, at the
   suite's rank counts and a latency-bound/bandwidth-bound payload pair.
   The virtual column is the model's verdict (deterministic — the number
   selection tuning cares about); the wall column is the expansion
   overhead of the schedule path itself. *)

type collalg_run = {
  c_alg : string;
  c_nranks : int;
  c_bytes : int;
  c_virtual_s : float;  (** simulated seconds per allreduce *)
  c_wall_s : float;  (** host seconds for the whole run *)
}

let run_collalg ~coll_alg ~nranks ~bytes ~iters =
  let program (ctx : Mpisim.Mpi.ctx) =
    for _ = 1 to iters do
      Mpisim.Mpi.allreduce ctx ~bytes
    done;
    Mpisim.Mpi.finalize ctx
  in
  let outcome, dt =
    wall (fun () -> Mpisim.Mpi.run ~net:micro_net ~coll_alg ~nranks program)
  in
  {
    c_alg = Mpisim.Coll_alg.name coll_alg;
    c_nranks = nranks;
    c_bytes = bytes;
    c_virtual_s = outcome.Mpisim.Engine.elapsed /. float_of_int iters;
    c_wall_s = dt;
  }

let run_collalg_suite ~rank_counts ~iters =
  List.concat_map
    (fun nranks ->
      List.concat_map
        (fun bytes ->
          List.map
            (fun coll_alg ->
              let r = run_collalg ~coll_alg ~nranks ~bytes ~iters in
              Printf.printf
                "  %-19s p=%-5d %7dB  %.2f us/allreduce  (%.3fs wall)\n%!"
                r.c_alg r.c_nranks r.c_bytes (r.c_virtual_s *. 1e6) r.c_wall_s;
              r)
            Mpisim.Coll_alg.all)
        [ 64; 65536 ])
    rank_counts

let collalg_json c =
  Obs.Json.Obj
    [
      ("alg", Obs.Json.Str c.c_alg);
      ("nranks", Obs.Json.Num (float_of_int c.c_nranks));
      ("bytes", Obs.Json.Num (float_of_int c.c_bytes));
      ("virtual_s", Obs.Json.Num c.c_virtual_s);
      ("wall_s", Obs.Json.Num c.c_wall_s);
    ]

(* ------------------------------------------------------------------ *)
(* Neighborhood-collective microbenchmark                               *)

(* A sparse stencil exchange (power-of-two offsets) timed under both
   schedule expansions: the message-combining isomorphic form (one round
   per offset) and the naive single-round per-link expansion.  The two
   move identical bytes — checked here — so the virtual columns isolate
   what the round structure costs, and the wall columns what the
   expansion itself costs at scale. *)

type neighbor_run = {
  n_nranks : int;
  n_degree : int;
  n_bytes : int;
  n_combined_virtual_s : float;
  n_naive_virtual_s : float;
  n_combined_wall_s : float;
  n_naive_wall_s : float;
}

let run_neighbor ~nranks ~degree ~bytes =
  let offsets = List.init degree (fun i -> 1 lsl i) in
  let per_rank = Array.make nranks (Array.of_list offsets, bytes) in
  let net = Mpisim.Netmodel.bluegene_l in
  let start () = Array.make nranks 0. in
  let combined, combined_wall_s =
    wall (fun () ->
        Mpisim.Coll_alg.timings net
          (Mpisim.Coll_alg.neighbor_combined ~p:nranks ~offsets ~bytes)
          ~start:(start ()))
  in
  let naive, naive_wall_s =
    wall (fun () ->
        Mpisim.Coll_alg.timings net
          (Mpisim.Coll_alg.neighbor_naive ~per_rank)
          ~start:(start ()))
  in
  let sent sched = Mpisim.Coll_alg.bytes_sent_per_rank ~p:nranks sched in
  let total a = Array.fold_left ( + ) 0 a in
  let cb = total (sent (Mpisim.Coll_alg.neighbor_combined ~p:nranks ~offsets ~bytes)) in
  let nb = total (sent (Mpisim.Coll_alg.neighbor_naive ~per_rank)) in
  if cb <> nb then
    failwith
      (Printf.sprintf
         "neighbor schedules disagree on bytes moved: combined=%d naive=%d" cb
         nb);
  let vmax a = Array.fold_left Float.max 0. a in
  {
    n_nranks = nranks;
    n_degree = degree;
    n_bytes = bytes;
    n_combined_virtual_s = vmax combined;
    n_naive_virtual_s = vmax naive;
    n_combined_wall_s = combined_wall_s;
    n_naive_wall_s = naive_wall_s;
  }

let run_neighbor_suite ~rank_counts =
  List.concat_map
    (fun nranks ->
      List.map
        (fun (degree, bytes) ->
          let r = run_neighbor ~nranks ~degree ~bytes in
          Printf.printf
            "  p=%-5d deg=%d %7dB  combined %.2f us  naive %.2f us  (wall \
             %.4fs / %.4fs)\n%!"
            r.n_nranks r.n_degree r.n_bytes
            (r.n_combined_virtual_s *. 1e6)
            (r.n_naive_virtual_s *. 1e6)
            r.n_combined_wall_s r.n_naive_wall_s;
          r)
        [ (2, 512); (4, 65536) ])
    rank_counts

let neighbor_json r =
  Obs.Json.Obj
    [
      ("nranks", Obs.Json.Num (float_of_int r.n_nranks));
      ("degree", Obs.Json.Num (float_of_int r.n_degree));
      ("bytes", Obs.Json.Num (float_of_int r.n_bytes));
      ("combined_virtual_s", Obs.Json.Num r.n_combined_virtual_s);
      ("naive_virtual_s", Obs.Json.Num r.n_naive_virtual_s);
      ("combined_wall_s", Obs.Json.Num r.n_combined_wall_s);
      ("naive_wall_s", Obs.Json.Num r.n_naive_wall_s);
    ]

(* ------------------------------------------------------------------ *)
(* End-to-end pipeline over the application suite                      *)

type app_run = {
  a_name : string;
  a_nranks : int;
  trace_s : float;
  align_s : float;
  wildcard_s : float;
  generate_s : float;
  a_events : int;
  a_events_per_s : float;
  input_rsds : int;
  final_rsds : int;
}

let run_app (app : Apps.Registry.app) ~wanted =
  let nranks = Apps.Registry.fit_nranks app ~wanted in
  let (trace, outcome), trace_s =
    wall (fun () -> Scalatrace.Tracer.trace_run ~nranks (app.program ()))
  in
  let aligned, align_s = wall (fun () -> Benchgen.Align.run trace) in
  let resolved, wildcard_s = wall (fun () -> Benchgen.Wildcard.run aligned) in
  let report, generate_s =
    wall (fun () ->
        match
          Benchgen.Pipeline.run
            { Benchgen.Pipeline.default with name = Some app.name }
            (Benchgen.Pipeline.From_trace resolved)
        with
        | Ok (a, _) -> a.Benchgen.Pipeline.report
        | Error e -> failwith (Benchgen.Pipeline.error_to_string e))
  in
  {
    a_name = app.name;
    a_nranks = nranks;
    trace_s;
    align_s;
    wildcard_s;
    generate_s;
    a_events = outcome.Mpisim.Engine.events;
    a_events_per_s =
      float_of_int outcome.Mpisim.Engine.events /. Float.max trace_s 1e-9;
    input_rsds = report.Benchgen.input_rsds;
    final_rsds = report.Benchgen.final_rsds;
  }

(* ------------------------------------------------------------------ *)
(* JSON out, via the observability layer's shared value type            *)

let jint i = Obs.Json.Num (float_of_int i)

let micro_json m =
  Obs.Json.Obj
    [
      ("wall_s", Obs.Json.Num m.wall_s);
      ("events", jint m.events);
      ("events_per_s", Obs.Json.Num m.events_per_s);
    ]

let app_json a =
  Obs.Json.Obj
    [
      ("app", Obs.Json.Str a.a_name);
      ("nranks", jint a.a_nranks);
      ("trace_s", Obs.Json.Num a.trace_s);
      ("align_s", Obs.Json.Num a.align_s);
      ("wildcard_s", Obs.Json.Num a.wildcard_s);
      ("generate_s", Obs.Json.Num a.generate_s);
      ("events", jint a.a_events);
      ("events_per_s", Obs.Json.Num a.a_events_per_s);
      ("input_rsds", jint a.input_rsds);
      ("final_rsds", jint a.final_rsds);
    ]

let emit ~path ~mode ~micro_nranks ~msgs_per_rank ~reference ~indexed ~merge
    ~collalg ~neighbor ~apps =
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "bench-engine/1");
        ("mode", Obs.Json.Str mode);
        ( "micro",
          Obs.Json.Obj
            [
              ("nranks", jint micro_nranks);
              ("msgs_per_rank", jint msgs_per_rank);
              ("reference", micro_json reference);
              ("indexed", micro_json indexed);
              ( "speedup",
                Obs.Json.Num
                  (indexed.events_per_s /. Float.max reference.events_per_s 1e-9)
              );
            ] );
        ("merge", merge_json merge);
        ("collalg", Obs.Json.Arr (List.map collalg_json collalg));
        ("neighbor", Obs.Json.Arr (List.map neighbor_json neighbor));
        ("apps", Obs.Json.Arr (List.map app_json apps));
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* JSON self-check: re-parse our own output                             *)

exception Bad_json of string

let validate_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Obs.Json.parse (String.trim s) with
  | exception Obs.Json.Parse_error msg -> raise (Bad_json msg)
  | Obs.Json.Obj _ as j ->
      List.iter
        (fun k ->
          if Obs.Json.member k j = None then
            raise (Bad_json ("missing top-level key: " ^ k)))
        [ "schema"; "micro"; "collalg"; "neighbor"; "apps" ]
  | _ -> raise (Bad_json "top level is not an object")

(* ------------------------------------------------------------------ *)

let run ~quick () =
  let micro_nranks = if quick then 64 else 256 in
  let msgs_per_rank = if quick then 4 else 32 in
  Printf.printf
    "engine microbenchmark: %d ranks x %d msgs/rank, reference vs indexed \
     matcher\n%!"
    micro_nranks msgs_per_rank;
  let reference = run_micro ~matcher:`Reference ~nranks:micro_nranks ~msgs_per_rank in
  let indexed = run_micro ~matcher:`Indexed ~nranks:micro_nranks ~msgs_per_rank in
  if reference.events <> indexed.events then
    failwith
      (Printf.sprintf
         "matcher implementations disagree on event count: reference=%d \
          indexed=%d"
         reference.events indexed.events);
  let speedup = indexed.events_per_s /. Float.max reference.events_per_s 1e-9 in
  Printf.printf
    "  reference: %8.0f events/s (%.3fs)\n  indexed:   %8.0f events/s \
     (%.3fs)\n  speedup:   %.1fx\n%!"
    reference.events_per_s reference.wall_s indexed.events_per_s indexed.wall_s
    speedup;
  let merge_nranks = if quick then 8 else 64 in
  let merge_cls = if quick then Apps.Params.S else Apps.Params.C in
  Printf.printf
    "merge stress: hirsd at %d ranks, reference vs indexed inter-rank merge\n%!"
    merge_nranks;
  let merge = run_merge_stress ~nranks:merge_nranks ~cls:merge_cls in
  Printf.printf
    "  %d rsds / %d events; reference %.3fs, indexed %.3fs (%.1fx)\n%!"
    merge.g_rsds merge.g_events merge.reference_s merge.indexed_s
    (merge.reference_s /. Float.max merge.indexed_s 1e-9);
  let collalg_counts = if quick then [ 64 ] else [ 64; 256; 1024 ] in
  let collalg_iters = if quick then 1 else 4 in
  Printf.printf
    "collective algorithms: allreduce per strategy, p in {%s}\n%!"
    (String.concat ", " (List.map string_of_int collalg_counts));
  let collalg =
    run_collalg_suite ~rank_counts:collalg_counts ~iters:collalg_iters
  in
  let neighbor_counts = if quick then [ 64 ] else [ 64; 256; 1024 ] in
  Printf.printf
    "neighborhood collectives: sparse exchange, combined vs naive schedules, \
     p in {%s}\n%!"
    (String.concat ", " (List.map string_of_int neighbor_counts));
  let neighbor = run_neighbor_suite ~rank_counts:neighbor_counts in
  let apps, counts =
    if quick then
      ( List.filter
          (fun (a : Apps.Registry.app) ->
            List.mem a.name [ "cg"; "mg"; "ring" ])
          Apps.Registry.all,
        [ 16 ] )
    else (Apps.Registry.paper_suite, [ 64; 256; 1024 ])
  in
  let app_runs =
    List.concat_map
      (fun wanted ->
        List.map
          (fun app ->
            let r = run_app app ~wanted in
            Printf.printf
              "  %-8s p=%-4d trace %.3fs  align %.3fs  wildcard %.3fs  \
               generate %.3fs  (%.0f events/s)\n%!"
              r.a_name r.a_nranks r.trace_s r.align_s r.wildcard_s r.generate_s
              r.a_events_per_s;
            r)
          apps)
      counts
  in
  let path = "BENCH_engine.json" in
  emit ~path ~mode:(if quick then "quick" else "full") ~micro_nranks
    ~msgs_per_rank ~reference ~indexed ~merge ~collalg ~neighbor
    ~apps:app_runs;
  Printf.printf "wrote %s\n%!" path;
  if quick then begin
    validate_json path;
    Printf.printf "quick mode: JSON parses and has the expected shape\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Perf smoke: a wall-clock guard on the indexed merge path            *)

(* Runs under [dune runtest].  The budget is deliberately generous —
   ~100x the expected time on an unloaded machine — so it never flakes
   on a busy box, yet still catches the complexity class regressing:
   before the indexed merge, this workload took minutes, not seconds. *)
let smoke () =
  let budget_s = 60. in
  let m, total_s =
    wall (fun () -> run_merge_stress ~nranks:32 ~cls:Apps.Params.A)
  in
  Printf.printf
    "perf smoke: hirsd 32 ranks, %d rsds; reference merge %.3fs, indexed \
     %.3fs, total %.3fs (budget %.0fs)\n%!"
    m.g_rsds m.reference_s m.indexed_s total_s budget_s;
  if m.indexed_s > budget_s then
    failwith
      (Printf.sprintf
         "perf smoke: indexed merge took %.1fs, over the %.0fs budget — the \
          merge complexity class has regressed"
         m.indexed_s budget_s)
