(* Bechamel micro-benchmarks of the generator pipeline itself: how fast is
   trace compression, merging, alignment, wildcard resolution, code
   generation, and parsing.  One Test.make per stage. *)

open Bechamel
open Toolkit

let ring iters (ctx : Mpisim.Mpi.ctx) =
  let s1 = Mpisim.Mpi.site __POS__ and s2 = Mpisim.Mpi.site __POS__ in
  let s3 = Mpisim.Mpi.site __POS__ in
  let n = ctx.nranks in
  for _ = 1 to iters do
    let r =
      Mpisim.Mpi.irecv ~site:s1 ctx
        ~src:(Mpisim.Call.Rank ((ctx.rank + n - 1) mod n))
        ~bytes:1024
    in
    let s = Mpisim.Mpi.isend ~site:s2 ctx ~dst:((ctx.rank + 1) mod n) ~bytes:1024 in
    ignore (Mpisim.Mpi.waitall ~site:s3 ctx [ r; s ]);
    Mpisim.Mpi.compute ctx 1e-6
  done;
  Mpisim.Mpi.finalize ~site:(Mpisim.Mpi.site __POS__) ctx

let sweep_trace =
  lazy
    (let app = Option.get (Apps.Registry.find "sweep3d") in
     fst (Scalatrace.Tracer.trace_run ~nranks:16 (app.program ~cls:Apps.Params.W ())))

let lu_trace =
  lazy
    (let app = Option.get (Apps.Registry.find "lu") in
     fst (Scalatrace.Tracer.trace_run ~nranks:16 (app.program ~cls:Apps.Params.W ())))

let ring_trace = lazy (fst (Scalatrace.Tracer.trace_run ~nranks:16 (ring 200)))

let ncptl_text =
  lazy
    (match
       Benchgen.Pipeline.run
         { Benchgen.Pipeline.default with name = Some "lu" }
         (Benchgen.Pipeline.From_trace (Lazy.force lu_trace))
     with
    | Ok (a, _) -> a.Benchgen.Pipeline.report.text
    | Error e -> failwith (Benchgen.Pipeline.error_to_string e))

let tests =
  [
    Test.make ~name:"simulate: ring 16 ranks x 200 iters" (Staged.stage (fun () ->
        ignore (Mpisim.Mpi.run ~nranks:16 (ring 200))));
    Test.make ~name:"trace+compress: ring 16 ranks x 200 iters"
      (Staged.stage (fun () ->
           ignore (Scalatrace.Tracer.trace_run ~nranks:16 (ring 200))));
    Test.make ~name:"align: sweep3d 16 ranks" (Staged.stage (fun () ->
        ignore (Benchgen.Align.run (Lazy.force sweep_trace))));
    Test.make ~name:"wildcard: lu 16 ranks" (Staged.stage (fun () ->
        ignore (Benchgen.Wildcard.run ~strategy:`Traversal (Lazy.force lu_trace))));
    Test.make ~name:"replay: ring trace" (Staged.stage (fun () ->
        ignore (Replay.run (Lazy.force ring_trace))));
    Test.make ~name:"codegen: ring trace" (Staged.stage (fun () ->
        ignore (Benchgen.Codegen.program (Lazy.force ring_trace))));
    Test.make ~name:"parse: generated lu benchmark" (Staged.stage (fun () ->
        ignore (Conceptual.Parse.program (Lazy.force ncptl_text))));
  ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== generator pipeline micro-benchmarks (bechamel, monotonic clock) ==\n";
  List.iter
    (fun test ->
      let name = Test.Elt.name (List.hd (Test.elements test)) in
      let raw = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun _ v ->
          match Analyze.OLS.estimates v with
          | Some [ est ] ->
              if est > 1e6 then Printf.printf "  %-45s %12.3f ms/run\n" name (est /. 1e6)
              else Printf.printf "  %-45s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n" name)
        analysis)
    tests
