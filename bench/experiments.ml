(* The experiment harness: one function per reproduced table/figure.
   Each prints an aligned ASCII table (plus a dot plot for figures) and
   returns nothing; `main.ml` dispatches. *)

open Util

let fig6_sizes (app : Apps.Registry.app) =
  (* BT/SP need square rank counts; everything else powers of two. *)
  match app.name with
  | "bt" | "sp" -> [ 16; 36; 64; 144 ]
  | _ -> [ 16; 32; 64; 128 ]

let cls = Apps.Params.W
let cls_name = Apps.Params.cls_to_string cls

module Pipeline = Benchgen.Pipeline

(* Local shims over the unified pipeline: the harness has no recovery
   story, so any typed pipeline error just aborts the experiment. *)
let gen ?name ?compute_floor_usecs trace =
  match
    Pipeline.run
      { Pipeline.default with name; compute_floor_usecs }
      (Pipeline.From_trace trace)
  with
  | Ok (a, _) -> a.Pipeline.report
  | Error e -> failwith (Pipeline.error_to_string e)

let gen_app ?name ?net ~nranks app =
  match
    Pipeline.run
      { Pipeline.default with name; net }
      (Pipeline.From_app { nranks; app })
  with
  | Ok (a, _) -> (a.Pipeline.report, Option.get a.Pipeline.trace_outcome)
  | Error e -> failwith (Pipeline.error_to_string e)

let generate_for (app : Apps.Registry.app) ~nranks =
  gen_app ~name:app.name ~nranks (app.program ~cls ())

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)

let table1 () =
  Table.print ~title:"Table 1: mapping of MPI collectives to coNCePTuaL"
    ~header:[ "MPI collective"; "coNCePTuaL implementation" ]
    (List.map (fun (a, b) -> [ a; b ]) Benchgen.Collective_map.table);
  (* validation: one synthetic app per collective; the generated benchmark
     must preserve the per-rank data volume through the substitution *)
  let p = 8 in
  let site = Mpisim.Mpi.site in
  let mk name f : string list =
    let prog (ctx : Mpisim.Mpi.ctx) =
      f ctx;
      Mpisim.Mpi.finalize ~site:(site __POS__) ctx
    in
    let report, _ = gen_app ~name ~nranks:p prog in
    let res = Conceptual.Lower.run ~nranks:p report.program in
    let prof_o = Mpip.create () and prof_g = Mpip.create () in
    ignore (Mpisim.Mpi.run ~hooks:[ Mpip.hook prof_o ] ~nranks:p prog);
    ignore
      (Conceptual.Lower.run ~hooks:[ Mpip.hook prof_g ] ~nranks:p report.program);
    let vol t =
      List.fold_left
        (fun acc (e : Mpip.entry) ->
          match e.op_name with
          | "MPI_Comm_split" | "MPI_Comm_dup" | "MPI_Finalize" -> acc
          | _ -> acc + e.bytes)
        0 (Mpip.entries t)
    in
    ignore res;
    let vo = vol prof_o and vg = vol prof_g in
    [
      name;
      Table.fbytes vo;
      Table.fbytes vg;
      (if vo = 0 && vg = 0 then "+0.0%"
       else
         Table.fpct
           (Stats.pct_error ~reference:(float_of_int vo) ~measured:(float_of_int vg)));
    ]
  in
  let s1 = site __POS__ and s2 = site __POS__ and s3 = site __POS__ in
  let s4 = site __POS__ and s5 = site __POS__ and s6 = site __POS__ in
  let s7 = site __POS__ and s8 = site __POS__ and s9 = site __POS__ in
  let s10 = site __POS__ and s11 = site __POS__ and s12 = site __POS__ in
  let vec = Array.init p (fun i -> 512 * (i + 1)) in
  let rows =
    [
      mk "Barrier" (fun ctx -> Mpisim.Mpi.barrier ~site:s1 ctx);
      mk "Bcast" (fun ctx -> Mpisim.Mpi.bcast ~site:s2 ctx ~root:2 ~bytes:4096);
      mk "Reduce" (fun ctx -> Mpisim.Mpi.reduce ~site:s3 ctx ~root:1 ~bytes:2048);
      mk "Allreduce" (fun ctx -> Mpisim.Mpi.allreduce ~site:s4 ctx ~bytes:1024);
      mk "Gather" (fun ctx -> Mpisim.Mpi.gather ~site:s5 ctx ~root:0 ~bytes_per_rank:512);
      mk "Gatherv" (fun ctx -> Mpisim.Mpi.gatherv ~site:s6 ctx ~root:0 ~bytes_from:vec);
      mk "Allgather" (fun ctx -> Mpisim.Mpi.allgather ~site:s7 ctx ~bytes_per_rank:256);
      mk "Allgatherv" (fun ctx -> Mpisim.Mpi.allgatherv ~site:s8 ctx ~bytes_from:vec);
      mk "Scatter" (fun ctx -> Mpisim.Mpi.scatter ~site:s9 ctx ~root:3 ~bytes_per_rank:512);
      mk "Scatterv" (fun ctx -> Mpisim.Mpi.scatterv ~site:s10 ctx ~root:3 ~bytes_to:vec);
      mk "Alltoall" (fun ctx -> Mpisim.Mpi.alltoall ~site:s11 ctx ~bytes_per_pair:128);
      mk "Reduce_scatter" (fun ctx ->
          Mpisim.Mpi.reduce_scatter ~site:s12 ctx ~bytes_per_rank:vec);
    ]
  in
  Table.print
    ~title:
      "Table 1 validation: per-rank data volume, original MPI collective vs \
       generated coNCePTuaL (8 ranks)"
    ~header:[ "collective"; "original volume"; "generated volume"; "error" ]
    rows

(* ------------------------------------------------------------------ *)
(* Section 5.2: communication correctness (mpiP statistics)             *)

(* Wait-family and communicator-management calls are never compared: the
   generator legitimately rewrites them (AWAIT COMPLETION, absolute task
   groups).  Collectives are compared after mapping through Table 1. *)
let correctness () =
  let rows =
    List.map
      (fun (app : Apps.Registry.app) ->
        let nranks = Apps.Registry.fit_nranks app ~wanted:16 in
        let report, _ = generate_for app ~nranks in
        let prof_o = Mpip.create () and prof_g = Mpip.create () in
        ignore (Mpisim.Mpi.run ~hooks:[ Mpip.hook prof_o ] ~nranks (app.program ~cls ()));
        ignore
          (Conceptual.Lower.run ~hooks:[ Mpip.hook prof_g ] ~nranks report.program);
        let p2p_ops = [ "MPI_Send"; "MPI_Isend"; "MPI_Recv"; "MPI_Irecv" ] in
        let count t names kind =
          List.fold_left
            (fun acc (e : Mpip.entry) ->
              if List.mem e.op_name names then
                acc + (match kind with `Calls -> e.calls | `Bytes -> e.bytes)
              else acc)
            0 (Mpip.entries t)
        in
        (* sends+isends vs sends+isends, recvs likewise: the generator may
           turn a blocking op into its nonblocking twin but never changes
           direction or volume *)
        let sends = [ "MPI_Send"; "MPI_Isend" ] and recvs = [ "MPI_Recv"; "MPI_Irecv" ] in
        let ok_p2p =
          count prof_o sends `Calls = count prof_g sends `Calls
          && count prof_o recvs `Calls = count prof_g recvs `Calls
          && count prof_o p2p_ops `Bytes = count prof_g p2p_ops `Bytes
        in
        let coll_ops =
          [
            "MPI_Barrier"; "MPI_Bcast"; "MPI_Reduce"; "MPI_Allreduce"; "MPI_Gather";
            "MPI_Gatherv"; "MPI_Allgather"; "MPI_Allgatherv"; "MPI_Scatter";
            "MPI_Scatterv"; "MPI_Alltoall"; "MPI_Alltoallv"; "MPI_Reduce_scatter";
          ]
        in
        let co = count prof_o coll_ops `Calls and cg = count prof_g coll_ops `Calls in
        let vo = count prof_o coll_ops `Bytes and vg = count prof_g coll_ops `Bytes in
        [
          app.name;
          string_of_int nranks;
          (if ok_p2p then "exact" else "MISMATCH");
          Printf.sprintf "%d -> %d" co cg;
          Table.fpct
            (if vo = 0 then 0.
             else Stats.pct_error ~reference:(float_of_int vo) ~measured:(float_of_int vg));
        ])
      Apps.Registry.paper_suite
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Sec 5.2: mpiP comparison, original vs generated benchmark (class %s)"
         cls_name)
    ~header:
      [ "app"; "ranks"; "p2p calls+volume"; "collective calls"; "coll volume err" ]
    rows;
  print_endline
    "  (collective call counts differ only by Table 1 substitutions, e.g.\n\
    \   Allgather -> REDUCE + MULTICAST; volume errors come from the\n\
    \   documented size averaging of the v-collectives)"

(* ------------------------------------------------------------------ *)
(* Section 5.2: per-event semantics via replay                          *)

let replay_check () =
  let rows =
    List.map
      (fun (app : Apps.Registry.app) ->
        let nranks = Apps.Registry.fit_nranks app ~wanted:16 in
        let trace, orig = Scalatrace.Tracer.trace_run ~nranks (app.program ~cls ()) in
        (* replay the original trace *)
        let rep = Replay.run trace in
        (* re-trace the generated benchmark and replay that trace *)
        let report = gen ~name:app.name trace in
        let tracer2 = Scalatrace.Tracer.create ~nranks () in
        ignore
          (Mpisim.Mpi.run
             ~hooks:[ Scalatrace.Tracer.hook tracer2 ]
             ~nranks
             (Conceptual.Lower.compile ~nranks report.program));
        let trace2 = Scalatrace.Tracer.finish tracer2 in
        let rep2 = Replay.run trace2 in
        let e1 = Scalatrace.Trace.event_count trace
        and e2 = Scalatrace.Trace.event_count trace2 in
        [
          app.name;
          string_of_int e1;
          string_of_int e2;
          Table.fsec rep.outcome.elapsed;
          Table.fsec rep2.outcome.elapsed;
          Table.fpct
            (Stats.pct_error ~reference:rep.outcome.elapsed
               ~measured:rep2.outcome.elapsed);
          Table.fpct (Stats.pct_error ~reference:orig.elapsed ~measured:rep.outcome.elapsed);
        ])
      Apps.Registry.paper_suite
  in
  Table.print
    ~title:
      "Sec 5.2: ScalaReplay comparison (replayed original trace vs replayed \
       trace of the generated benchmark)"
    ~header:
      [
        "app"; "orig events"; "gen events"; "replay(orig)"; "replay(gen)";
        "replay err"; "replay vs app";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 6: timing accuracy                                            *)

let fig6 () =
  let all_pairs = ref [] in
  let rows =
    List.concat_map
      (fun (app : Apps.Registry.app) ->
        List.map
          (fun nranks ->
            let report, orig = generate_for app ~nranks in
            let res = Conceptual.Lower.run ~nranks report.program in
            all_pairs := (orig.elapsed, res.outcome.elapsed) :: !all_pairs;
            [
              app.name;
              string_of_int nranks;
              Table.fsec orig.elapsed;
              Table.fsec res.outcome.elapsed;
              Table.fpct
                (Stats.pct_error ~reference:orig.elapsed ~measured:res.outcome.elapsed);
              (if report.aligned then "align" else "-");
              (if report.resolved then "wildcard" else "-");
              string_of_int report.statements;
            ])
          (fig6_sizes app))
      Apps.Registry.paper_suite
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 6: total execution time, original application vs generated \
          benchmark (class %s, Blue Gene/L model)"
         cls_name)
    ~header:
      [ "app"; "nodes"; "T_app"; "T_conceptual"; "error"; "alg.1"; "alg.2"; "stmts" ]
    rows;
  Printf.printf "\n  mean absolute percentage error: %.1f%%  (paper: 2.9%%)\n"
    (Stats.mape !all_pairs)

(* ------------------------------------------------------------------ *)
(* Figure 7: what-if acceleration study                                 *)

let fig7 () =
  let app = Option.get (Apps.Registry.find "bt") in
  let nranks = 64 in
  let net = Mpisim.Netmodel.ethernet_cluster in
  let report, _ =
    gen_app ~name:"bt" ~net ~nranks (app.program ~cls:Apps.Params.C ())
  in
  (* ARC-like calibration: the cluster's CPUs are much faster than Blue
     Gene/L's, so the baseline compute is scaled until communication is
     ~70% of the run, the Amdahl fraction implied by the paper's "3.3x
     compute speedup -> 21% total reduction". *)
  let baseline = Conceptual.Edit.scale_compute 0.00028 report.program in
  let points = [ 100; 90; 80; 70; 60; 50; 40; 30; 20; 10; 0 ] in
  let results =
    List.map
      (fun pct ->
        let p = Conceptual.Edit.scale_compute (float_of_int pct /. 100.) baseline in
        let res = Conceptual.Lower.run ~net ~nranks p in
        (pct, res.outcome))
      points
  in
  let t100 = (List.assoc 100 results).elapsed in
  let t30 = (List.assoc 30 results).elapsed in
  Table.print
    ~title:
      "Figure 7: BT what-if study, 64 tasks, Ethernet model (compute scaled \
       100% .. 0%)"
    ~header:[ "compute"; "total time"; "vs 100%"; "flow stalls"; "unexpected" ]
    (List.map
       (fun (pct, (o : Mpisim.Engine.outcome)) ->
         [
           Printf.sprintf "%d%%" pct;
           Table.fsec o.elapsed;
           Table.fpct (Stats.pct_error ~reference:t100 ~measured:o.elapsed);
           string_of_int o.flow_stalls;
           string_of_int o.unexpected;
         ])
       results);
  print_endline
    (Table.series_plot ~title:"Figure 7 (series)" ~x_label:"% of original compute"
       ~y_label:"total time (s)"
       (List.map (fun (p, (o : Mpisim.Engine.outcome)) -> (float_of_int p, o.elapsed)) results));
  Printf.printf
    "\n\
    \  3.3x compute speedup (100%% -> 30%%) cuts total time by %.0f%%  (paper: 21%%)\n\
    \  below ~20%% the curve flattens: accelerating computation further buys\n\
    \  almost nothing (paper additionally observed a terminal *increase*,\n\
    \  driven by OS/network noise amplification that this deterministic\n\
    \  simulator excludes by design; see EXPERIMENTS.md)\n"
    (100. *. (t100 -. t30) /. t100)

(* ------------------------------------------------------------------ *)
(* Trace/benchmark size scaling (Section 2 claims)                      *)

let scaling () =
  let ring iters (ctx : Mpisim.Mpi.ctx) =
    let s1 = Mpisim.Mpi.site __POS__ and s2 = Mpisim.Mpi.site __POS__ in
    let s3 = Mpisim.Mpi.site __POS__ in
    let n = ctx.nranks in
    for _ = 1 to iters do
      let r =
        Mpisim.Mpi.irecv ~site:s1 ctx
          ~src:(Mpisim.Call.Rank ((ctx.rank + n - 1) mod n))
          ~bytes:1024
      in
      let s = Mpisim.Mpi.isend ~site:s2 ctx ~dst:((ctx.rank + 1) mod n) ~bytes:1024 in
      ignore (Mpisim.Mpi.waitall ~site:s3 ctx [ r; s ]);
      Mpisim.Mpi.compute ctx 1e-6
    done;
    Mpisim.Mpi.finalize ~site:(Mpisim.Mpi.site __POS__) ctx
  in
  let rows_ranks =
    List.map
      (fun p ->
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:p (ring 1000) in
        let report = gen ~name:"ring" trace in
        [
          string_of_int p;
          string_of_int (Scalatrace.Trace.event_count trace);
          string_of_int (Scalatrace.Trace.rsd_count trace);
          Table.fbytes (Scalatrace.Trace.text_size trace);
          string_of_int report.statements;
        ])
      [ 4; 8; 16; 32; 64; 128 ]
  in
  Table.print
    ~title:"Trace and benchmark size vs rank count (ring, 1000 iterations)"
    ~header:[ "ranks"; "MPI events"; "RSDs"; "trace size"; "generated stmts" ]
    rows_ranks;
  let rows_iters =
    List.map
      (fun iters ->
        let trace, _ = Scalatrace.Tracer.trace_run ~nranks:16 (ring iters) in
        let report = gen ~name:"ring" trace in
        [
          string_of_int iters;
          string_of_int (Scalatrace.Trace.event_count trace);
          string_of_int (Scalatrace.Trace.rsd_count trace);
          Table.fbytes (Scalatrace.Trace.text_size trace);
          string_of_int report.statements;
        ])
      [ 10; 100; 1000; 10000 ]
  in
  Table.print
    ~title:"Trace and benchmark size vs communication events (ring, 16 ranks)"
    ~header:[ "iterations"; "MPI events"; "RSDs"; "trace size"; "generated stmts" ]
    rows_iters

(* ------------------------------------------------------------------ *)
(* Algorithm cost scaling (Sections 4.3/4.4 complexity claims)          *)

let algo () =
  let rows =
    List.map
      (fun p ->
        let sweep = Option.get (Apps.Registry.find "sweep3d") in
        let lu = Option.get (Apps.Registry.find "lu") in
        let t_sweep, _ = Scalatrace.Tracer.trace_run ~nranks:p (sweep.program ~cls ()) in
        let t_lu, _ = Scalatrace.Tracer.trace_run ~nranks:p (lu.program ~cls ()) in
        let time f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let (_, pre1) = time (fun () -> Scalatrace.Trace.has_unaligned_collectives t_sweep) in
        let (_, t_align) = time (fun () -> Benchgen.Align.run t_sweep) in
        let (_, pre2) = time (fun () -> Scalatrace.Trace.has_wildcards t_lu) in
        let (_, t_wild) = time (fun () -> Benchgen.Wildcard.run t_lu) in
        [
          string_of_int p;
          string_of_int (Scalatrace.Trace.event_count t_sweep);
          Table.fsec pre1;
          Table.fsec t_align;
          string_of_int (Scalatrace.Trace.event_count t_lu);
          Table.fsec pre2;
          Table.fsec t_wild;
        ])
      [ 8; 16; 32; 64 ]
  in
  Table.print
    ~title:
      "Algorithm costs: O(r) pre-checks vs O(p*e) passes (align on Sweep3D, \
       wildcard on LU)"
    ~header:
      [
        "ranks"; "sweep3d events"; "align pre-check"; "align pass"; "lu events";
        "wildcard pre-check"; "wildcard pass";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 5: deadlock detection                                         *)

let deadlock () =
  let f1 = Mpisim.Mpi.site __POS__ and f2 = Mpisim.Mpi.site __POS__ in
  let f3 = Mpisim.Mpi.site __POS__ and f4 = Mpisim.Mpi.site __POS__ in
  let fig5 (ctx : Mpisim.Mpi.ctx) =
    (* rank 0 delays its send so the traced execution completes (the
       wildcard matches rank 2 first); Algorithm 2's traversal order then
       exposes the latent deadlock of Figure 5 *)
    if ctx.rank = 0 then Mpisim.Mpi.compute ctx 1e-3;
    (if ctx.rank = 1 then begin
       ignore (Mpisim.Mpi.recv ~site:f1 ctx ~src:Mpisim.Call.Any_source ~bytes:8);
       ignore (Mpisim.Mpi.recv ~site:f2 ctx ~src:(Mpisim.Call.Rank 0) ~bytes:8)
     end
     else if ctx.rank = 0 || ctx.rank = 2 then
       Mpisim.Mpi.send ~site:f3 ctx ~dst:1 ~bytes:8);
    Mpisim.Mpi.finalize ~site:f4 ctx
  in
  let trace, outcome = Scalatrace.Tracer.trace_run ~nranks:3 fig5 in
  Printf.printf
    "\n== Figure 5: deadlock detection ==\noriginal execution completed in %s \
     (wildcard matched the deterministic first arrival)\n"
    (Table.fsec outcome.elapsed);
  (try
     let _ = Benchgen.Wildcard.run ~strategy:`Traversal trace in
     print_endline "UNEXPECTED: no deadlock detected"
   with Benchgen.Wildcard.Potential_deadlock msg ->
     Printf.printf "Algorithm 2 reports: %s\n" msg);
  print_endline
    "  (the generator refuses to emit a benchmark that could hang, exactly\n\
    \   the Section 4.4 behaviour)"

(* ------------------------------------------------------------------ *)
(* Extension: ScalaExtrap-style rank-count extrapolation (paper Sec 6)  *)

let extrap () =
  let base_sizes = [ 4; 8; 16 ] in
  let targets = [ 32; 64; 128 ] in
  let codes =
    [ ("ep", (Option.get (Apps.Registry.find "ep")).program ~cls:Apps.Params.S ());
      ("ft", (Option.get (Apps.Registry.find "ft")).program ~cls:Apps.Params.S ());
      ("is", (Option.get (Apps.Registry.find "is")).program ~cls:Apps.Params.S ());
    ]
  in
  let rows =
    List.concat_map
      (fun (name, prog) ->
        let inputs =
          List.map (fun p -> fst (Scalatrace.Tracer.trace_run ~nranks:p prog)) base_sizes
        in
        List.filter_map
          (fun target ->
            match Benchgen.Extrap.extrapolate inputs ~target with
            | exception Benchgen.Extrap.Extrap_error msg ->
                Some [ name; string_of_int target; "-"; "-"; "not extrapolable: " ^ msg ]
            | ex ->
                let report = gen ~name ex in
                let predicted =
                  (Conceptual.Lower.run ~nranks:target report.program).outcome.elapsed
                in
                let _, actual = Scalatrace.Tracer.trace_run ~nranks:target prog in
                Some
                  [
                    name;
                    string_of_int target;
                    Table.fsec actual.elapsed;
                    Table.fsec predicted;
                    Table.fpct
                      (Stats.pct_error ~reference:actual.elapsed ~measured:predicted);
                  ])
          targets)
      codes
  in
  Table.print
    ~title:
      "Extension (paper Sec 6): benchmarks extrapolated from traces at \
       {4,8,16} ranks, vs actually running the application"
    ~header:[ "app"; "target ranks"; "T_app (actual)"; "T_extrapolated"; "error" ]
    rows;
  (* a structurally varying code is refused, not mis-extrapolated *)
  let cg = Option.get (Apps.Registry.find "cg") in
  let inputs =
    List.map
      (fun p -> fst (Scalatrace.Tracer.trace_run ~nranks:p (cg.program ~cls:Apps.Params.S ())))
      [ 4; 16 ]
  in
  (match Benchgen.Extrap.extrapolate inputs ~target:64 with
  | exception Benchgen.Extrap.Extrap_error msg ->
      Printf.printf "\n  cg correctly refused: %s\n" msg
  | _ -> print_endline "\n  UNEXPECTED: cg extrapolated despite varying structure")

(* ------------------------------------------------------------------ *)
(* Ablations of the generator's design choices                          *)

let ablation () =
  (* 1. wildcard resolution strategy: paper's untimed Algorithm 2 vs the
     timed (replay-based) variant, on LU *)
  let lu = Option.get (Apps.Registry.find "lu") in
  let trace, orig = Scalatrace.Tracer.trace_run ~nranks:16 (lu.program ~cls ()) in
  let strategies = [ ("traversal (Alg.2)", `Traversal); ("timed (replay)", `Timed) ] in
  let rows =
    List.map
      (fun (name, strategy) ->
        let t0 = Unix.gettimeofday () in
        match Benchgen.Wildcard.run ~strategy trace with
        | exception Benchgen.Wildcard.Potential_deadlock _ ->
            [ name; "-"; "-"; "reported potential deadlock" ]
        | resolved -> (
            let cost = Unix.gettimeofday () -. t0 in
            let report = gen ~name:"lu" resolved in
            match Conceptual.Lower.run ~nranks:16 report.program with
            | exception Mpisim.Engine.Deadlock _ ->
                [ name; Table.fsec cost; "-"; "generated benchmark hangs" ]
            | res ->
                [
                  name;
                  Table.fsec cost;
                  Table.fsec res.outcome.elapsed;
                  Table.fpct
                    (Stats.pct_error ~reference:orig.elapsed
                       ~measured:res.outcome.elapsed);
                ]))
      strategies
  in
  Table.print
    ~title:"Ablation: wildcard resolution strategy (LU, 16 ranks)"
    ~header:[ "strategy"; "resolution cost"; "generated time"; "vs original" ]
    rows;
  (* 2. compression window: trace size vs window for a long-bodied loop *)
  let body_len = 24 in
  let prog (ctx : Mpisim.Mpi.ctx) =
    let sites =
      Array.init body_len (fun i -> Util.Callsite.synthetic (Printf.sprintf "s%d" i))
    in
    for _ = 1 to 50 do
      Array.iter
        (fun site ->
          Mpisim.Mpi.allreduce ~site ctx ~bytes:8)
        sites
    done;
    Mpisim.Mpi.finalize ~site:(Util.Callsite.synthetic "fin") ctx
  in
  let rows =
    List.map
      (fun window ->
        let tracer = Scalatrace.Tracer.create ~window ~nranks:4 () in
        ignore (Mpisim.Mpi.run ~hooks:[ Scalatrace.Tracer.hook tracer ] ~nranks:4 prog);
        (* per-rank traces show the window's effect; the inter-rank merge
           re-compresses with the default window and would mask it *)
        let local = (Scalatrace.Tracer.local_traces tracer).(0) in
        [
          string_of_int window;
          string_of_int (Scalatrace.Tnode.rsd_count local);
          string_of_int (Scalatrace.Tnode.event_count local);
        ])
      [ 4; 8; 16; 23; 24; 64 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Ablation: compression window vs per-rank trace size (loop body of %d \
          distinct call sites; the window must reach the body length before \
          the loop folds)"
         body_len)
    ~header:[ "window"; "rank-0 RSDs"; "rank-0 events" ]
    rows;
  (* 3. compute floor: statement count vs the floor that drops tiny gaps *)
  let mg = Option.get (Apps.Registry.find "mg") in
  let trace_mg, _ = Scalatrace.Tracer.trace_run ~nranks:8 (mg.program ~cls ()) in
  let rows =
    List.map
      (fun floor ->
        let report = gen ~compute_floor_usecs:floor trace_mg in
        let res = Conceptual.Lower.run ~nranks:8 report.program in
        [
          Printf.sprintf "%g us" floor;
          string_of_int report.statements;
          Table.fsec res.outcome.elapsed;
        ])
      [ 0.0; 0.05; 1000.0; 20000.0; 1e6 ]
  in
  Table.print
    ~title:"Ablation: COMPUTE floor vs generated size and fidelity (MG, 8 ranks)"
    ~header:[ "floor"; "statements"; "generated time" ]
    rows
