module Pipeline = Benchgen.Pipeline

type 'a verdict = V of 'a | Timed_out | Died of string

(* Marshaled over the worker pipe: the function's value or the
   exception it raised.  Only immediate data crosses the boundary. *)
type 'a wire = W_value of 'a | W_raised of string

let run_forked (type a) ~deadline_s (f : unit -> a) : a verdict =
  (* Flush before forking: the child inherits the parent's channel
     buffers, and its exit must not replay half-written output. *)
  flush stdout;
  flush stderr;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (* Worker.  Never let control return into the parent's event
         loop: compute, marshal, hard-exit (no at_exit, no channel
         flushing — the inherited buffers belong to the parent). *)
      Unix.close rd;
      let result : a wire =
        try W_value (f ()) with exn -> W_raised (Printexc.to_string exn)
      in
      let payload = Marshal.to_bytes result [] in
      let rec write_all off =
        if off < Bytes.length payload then
          let n = Unix.write wr payload off (Bytes.length payload - off) in
          write_all (off + n)
      in
      (try write_all 0 with _ -> ());
      (try Unix.close wr with _ -> ());
      Unix._exit 0
  | pid -> (
      Unix.close wr;
      let deadline =
        Option.map (fun d -> Util.Clock.monotonic_s () +. d) deadline_s
      in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 65536 in
      let kill_child () =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      in
      let rec read_all () =
        let timeout =
          match deadline with
          | None -> -1.
          | Some d -> Float.max 0. (d -. Util.Clock.monotonic_s ())
        in
        match Unix.select [ rd ] [] [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
        | [], _, _ ->
            Unix.close rd;
            kill_child ();
            Timed_out
        | _ -> (
            match Unix.read rd chunk 0 (Bytes.length chunk) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all ()
            | 0 -> (
                Unix.close rd;
                let _, status = Unix.waitpid [] pid in
                match status with
                | Unix.WEXITED 0 -> (
                    match
                      (Marshal.from_bytes
                         (Buffer.to_bytes buf)
                         0
                        : a wire)
                    with
                    | W_value v -> V v
                    | W_raised msg -> Died msg
                    | exception _ -> Died "worker produced no parseable result")
                | Unix.WEXITED n ->
                    Died (Printf.sprintf "worker exited with status %d" n)
                | Unix.WSIGNALED s ->
                    Died (Printf.sprintf "worker killed by signal %d" s)
                | Unix.WSTOPPED _ -> Died "worker stopped")
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                read_all ())
      in
      read_all ())

(* ------------------------------------------------------------------ *)
(* The production attempt: one Pipeline.run in a worker process.       *)

(* Result shape marshaled back from the worker: everything the
   response needs, nothing pipeline-internal. *)
type worker_result =
  | R_ok of Protocol.ok_info
  | R_error of Protocol.error_info

let attempt (sub : Protocol.submit) ~recovery : worker_result =
  let non_retryable tag detail =
    R_error
      { Protocol.e_tag = tag; e_path = None; e_retryable = false;
        e_detail = detail }
  in
  let run_pipeline ?path cfg source =
    match Pipeline.run cfg source with
    | Error e -> R_error (Protocol.error_of_gen_error ?path e)
    | Ok (artifact, warnings) ->
        let report = artifact.Pipeline.report in
        (match sub.sub_out with
        | None -> ()
        | Some out ->
            let oc = open_out out in
            output_string oc report.Pipeline.text;
            close_out oc);
        R_ok
          {
            Protocol.ok_statements = report.Pipeline.statements;
            ok_final_rsds = report.Pipeline.final_rsds;
            (* overwritten by the supervisor with the attempt's level *)
            ok_recovery = Pipeline.recovery_to_string recovery;
            ok_warnings =
              List.map
                (fun w ->
                  (Pipeline.warning_tag w, Pipeline.warning_to_string w))
                warnings;
            ok_text =
              (if sub.sub_emit_text then Some report.Pipeline.text else None);
            ok_out = sub.sub_out;
          }
  in
  match sub.sub_source with
  | Protocol.J_file path ->
      let cfg =
        { Pipeline.default with recovery; name = Some sub.sub_id }
      in
      run_pipeline ~path cfg (Pipeline.From_file path)
  | Protocol.J_app { app; nranks; cls } -> (
      match Apps.Registry.find app with
      | None ->
          non_retryable "unknown_app"
            (Printf.sprintf "no registered application named %S" app)
      | Some a -> (
          match Apps.Params.cls_of_string cls with
          | None ->
              non_retryable "bad_class"
                (Printf.sprintf "unknown problem class %S (S|W|A|B|C)" cls)
          | Some cls ->
              let nranks = Apps.Registry.fit_nranks a ~wanted:nranks in
              let cfg =
                { Pipeline.default with recovery; name = Some sub.sub_id }
              in
              run_pipeline cfg
                (Pipeline.From_app { nranks; app = a.program ~cls () })))

let pipeline_runner sub ~recovery ~deadline_s =
  match run_forked ~deadline_s (fun () -> attempt sub ~recovery) with
  | V (R_ok info) -> Supervisor.A_ok info
  | V (R_error e) -> Supervisor.A_error e
  | Timed_out -> Supervisor.A_timeout
  | Died msg -> Supervisor.A_crashed msg
