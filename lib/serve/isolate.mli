(** Process isolation for serve-mode attempts.

    Each attempt runs the pipeline in a forked worker process: a
    poisoned job — one that raises, corrupts its heap, calls [exit],
    segfaults, or simply never returns — can never take down the
    supervisor.  The parent enforces the per-attempt wall-clock
    deadline by [SIGKILL]ing the worker, which is reported as
    {!Supervisor.A_timeout}; abnormal worker deaths become
    {!Supervisor.A_crashed}. *)

(** How one attempt's work terminated. *)
type 'a verdict =
  | V of 'a  (** worker completed and returned this value *)
  | Timed_out  (** killed at the deadline *)
  | Died of string  (** abnormal exit (signal, nonzero status, bad result) *)

(** [run_forked ~deadline_s f] — run [f ()] in a forked child, marshal
    its result (or the exception it raised, as [Died]) back over a
    pipe, and [SIGKILL] the child if [deadline_s] elapses first.  The
    returned value must be marshalable (no closures, no custom
    blocks). *)
val run_forked : deadline_s:float option -> (unit -> 'a) -> 'a verdict

(** Result shape marshaled back from a worker: everything the response
    needs, nothing pipeline-internal. *)
type worker_result =
  | R_ok of Protocol.ok_info
  | R_error of Protocol.error_info

(** [attempt sub ~recovery] — one pipeline attempt, run {e in the
    calling process}: build the {!Benchgen.Pipeline.config} from the
    job, run it at [recovery], write [sub_out] if requested.  This is
    the body both execution engines share: {!run_forked} wraps it in a
    fresh fork per attempt; {!Worker} runs it in a persistent pool
    worker's loop. *)
val attempt :
  Protocol.submit -> recovery:Benchgen.Pipeline.recovery -> worker_result

(** The production runner: builds a {!Benchgen.Pipeline.config} from
    the job (source, recovery level, output path), runs
    [Pipeline.run] in a forked worker under the deadline, and maps the
    result to a typed {!Supervisor.attempt_outcome} (errors carry the
    stable tag and the trace path). *)
val pipeline_runner : Supervisor.runner
