(** The concurrent worker-pool scheduler: a deterministic, I/O-free
    state machine that supervises N persistent worker slots.

    This module never forks, reads, writes, sleeps, or looks at a
    clock.  Every call takes [~now] and returns a list of {!action}s
    for the environment to perform; everything the environment observes
    (a worker came up, an attempt finished, a worker died) comes back
    as an {!event}.  Two environments drive it:

    - {!Server} performs actions against real forked {!Worker}
      processes and feeds events from its [select] loop;
    - {!Sim} performs them against scripted synthetic workers on a
      virtual clock, which is how every policy below is unit-tested
      and how [Check.Servefuzz]'s concurrent scenarios run —
      same seed, byte-identical transcript.

    Supervision semantics on top of the single-worker {!Supervisor}
    policies (per-attempt deadline, bounded retries with seeded
    exponential backoff, recovery escalation):

    - {e Dispatch}: FIFO job order onto the lowest-numbered idle
      worker.
    - {e Deadline}: a busy worker that exceeds the job's per-attempt
      deadline is [SIGKILL]ed and immediately respawned; the attempt
      counts as [A_timeout] (not as a worker death — the worker was
      healthy, the job was slow).
    - {e Restart backoff}: a worker slot that dies abnormally is
      respawned after an exponential backoff (reset by a completed
      attempt).
    - {e Circuit breaker}: a slot that dies [breaker_deaths] times
      within [breaker_window_s] is {e parked} for
      [breaker_cooldown_s]; the pool degrades to the remaining slots.
      On unparking the slot runs one {e probation} attempt: dying
      again re-parks it immediately.
    - {e Poison quarantine}: a job whose attempts crashed
      [poison_crashes] {e distinct} workers is failed with a typed
      ["poisoned"] error instead of burning the rest of the pool. *)

(** Worker-pool supervision knobs (per-job policy lives in
    {!Policy.t} on each submit). *)
type wpolicy = {
  workers : int;  (** worker slots (>= 1) *)
  restart_backoff_base_s : float;
  restart_backoff_factor : float;
  restart_backoff_max_s : float;
      (** respawn delay after the k-th consecutive abnormal death:
          [base * factor^(k-1)], capped *)
  breaker_deaths : int;  (** deaths within the window that trip the breaker *)
  breaker_window_s : float;
  breaker_cooldown_s : float;  (** how long a tripped slot stays parked *)
  poison_crashes : int;
      (** distinct workers a single job may crash before it is
          quarantined (default 2) *)
}

val default_wpolicy : wpolicy

(** What the environment must do, in list order. *)
type action =
  | Spawn of { wid : int }
      (** start a worker process for this slot; feed [E_spawned] when
          it is up *)
  | Kill of { wid : int }
      (** [SIGKILL] the slot's process (deadline or shutdown); no
          [E_died] should follow — the pool already accounted for it *)
  | Dispatch of {
      wid : int;
      sub : Protocol.submit;
      attempt : int;  (** 0-based *)
      recovery : Benchgen.Pipeline.recovery;
      deadline_s : float option;
    }  (** send the attempt to the slot's worker *)
  | Respond of Protocol.response
      (** deliver to the job's submitter (terminal responses only) *)
  | Note of string  (** log line (never part of the wire transcript) *)

(** What the environment observed. *)
type event =
  | E_spawned of { wid : int }  (** the slot's worker process is up *)
  | E_result of { wid : int; outcome : Supervisor.attempt_outcome }
      (** the worker returned an attempt result (it survives; an
          [A_crashed] here means the attempt raised, not that the
          process died) *)
  | E_died of { wid : int; detail : string }
      (** the worker process died abnormally (EOF/EPIPE on its pipe);
          counts toward the breaker, and toward job poisoning if the
          slot was busy *)

type t

(** [create ~wpolicy ()].  [queue_limit] (default 64) bounds {e live}
    jobs (queued + awaiting-retry + running); [seed] drives per-job
    backoff jitter via {!Util.Rng.split}; [metrics] accumulates
    [serve.*] and [serve.pool.*]. *)
val create :
  ?queue_limit:int ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  wpolicy:wpolicy ->
  unit ->
  t

(** Initial [Spawn] for every slot.  Call once, before any events. *)
val boot : t -> action list

(** Admission: returns the [Accepted]/[Rejected] response for the
    submitter plus any dispatch actions.  Shedding counts {e live}
    jobs; a duplicate live id is [Bad_request]. *)
val submit : t -> now:float -> Protocol.submit -> Protocol.response * action list

(** Record an out-of-band rejection (parse failure, oversized line,
    connection/inflight caps) in the counters. *)
val reject : t -> ?id:string -> Protocol.reject_reason -> Protocol.response

val handle : t -> now:float -> event -> action list

(** Fire everything due at [now]: deadline kills, restart-backoff and
    breaker-cooldown expiries, retry-backoff releases, then dispatch.
    Idempotent when nothing is due. *)
val tick : t -> now:float -> action list

(** Earliest future instant at which {!tick} has work ([None]: only an
    event can change anything).  Strictly greater than the last [tick]
    time — event loops use it as their select timeout. *)
val next_wakeup : t -> float option

(** Stop admitting; running and queued jobs finish normally. *)
val begin_drain : t -> unit

val draining : t -> bool

(** No live jobs (nothing queued, delayed, or running). *)
val idle : t -> bool

(** Queued + awaiting-retry jobs (excludes running). *)
val queue_length : t -> int

val queue_limit : t -> int
val health : t -> Protocol.response
val drained_summary : t -> cancelled:int -> Protocol.response

(** Cancel every live job ([Cancelled] responses in queue order, then
    the [Drained] summary) and [Kill] every running worker.  The pool
    drains afterwards; the environment should stop pumping. *)
val shutdown : t -> now:float -> Protocol.response list * action list

val metrics : t -> Obs.Metrics.t

(** ["starting"] | ["idle"] | ["busy"] | ["backoff"] | ["parked"] —
    for tests and health logging. *)
val worker_state_name : t -> int -> string

(** {2 Simulated environment}

    Drives a pool entirely on virtual time against scripted worker
    behaviors — the concurrent analogue of [Supervisor.sim_clock].
    Deterministic: same pool seed + script + timeline produce the same
    timestamped outcomes, byte for byte. *)
module Sim : sig
  (** How a scripted worker handles one dispatched attempt. *)
  type behavior =
    | B_ok of { dur : float; statements : int }
    | B_error of { dur : float; error : Protocol.error_info }
    | B_crash of { dur : float; detail : string }
        (** the worker process dies [dur] after dispatch *)
    | B_hang  (** never answers; only a deadline kill frees the slot *)

  type script =
    Protocol.submit ->
    attempt:int ->
    recovery:Benchgen.Pipeline.recovery ->
    behavior

  type input =
    | I_submit of Protocol.submit
    | I_kill of int  (** kill slot [wid]'s worker out of band *)
    | I_health
    | I_drain
    | I_shutdown

  (** [run ~pool ~script ~timeline ()] — boot the pool, play the
      (time-ascending) timeline, pump events until quiescent, then (if
      draining and idle) append the [Drained] summary.  Returns every
      response with its virtual timestamp, in emission order.
      [spawn_delay_s] (default 0.01) is the simulated worker startup
      time. *)
  val run :
    ?spawn_delay_s:float ->
    pool:t ->
    script:script ->
    timeline:(float * input) list ->
    unit ->
    (float * Protocol.response) list
end
