module Pipeline = Benchgen.Pipeline

(* Marshaled parent -> child.  Only immediate data: the submit and the
   recovery level are closure-free by construction. *)
type request = { rq_sub : Protocol.submit; rq_recovery : Pipeline.recovery }

type reply =
  | R_result of Isolate.worker_result
  | R_raised of string

type t = {
  wid : int;
  pid : int;
  to_child : Unix.file_descr;
  from_child : Unix.file_descr;
  rbuf : Buffer.t;
  mutable dead : bool;
}

let pid t = t.pid
let wid t = t.wid
let fd t = t.from_child
let pipe_fds t = [ t.to_child; t.from_child ]

(* ------------------------------------------------------------------ *)
(* Framing: Marshal's own header carries the payload length, so the
   stream needs no extra length prefix — read the header, then exactly
   [data_size] more bytes. *)

let write_value fd v =
  let payload = Marshal.to_bytes v [] in
  let rec go off =
    if off < Bytes.length payload then
      match Unix.write fd payload off (Bytes.length payload - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Child side: blocking read of one marshaled value; [None] on EOF
   (including EOF mid-value — the parent is gone either way). *)
let read_value_blocking fd =
  let rec read_exact buf off len =
    if len = 0 then true
    else
      match Unix.read fd buf off len with
      | 0 -> false
      | n -> read_exact buf (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact buf off len
  in
  let hdr = Bytes.create Marshal.header_size in
  if not (read_exact hdr 0 Marshal.header_size) then None
  else begin
    let dlen = Marshal.data_size hdr 0 in
    let payload = Bytes.create (Marshal.header_size + dlen) in
    Bytes.blit hdr 0 payload 0 Marshal.header_size;
    if not (read_exact payload Marshal.header_size dlen) then None
    else Some (Marshal.from_bytes payload 0)
  end

(* ------------------------------------------------------------------ *)
(* Child loop                                                          *)

let child_loop rd wr : unit =
  let rec loop () =
    match (read_value_blocking rd : request option) with
    | None -> Unix._exit 0
    | Some { rq_sub; rq_recovery } ->
        let reply =
          try R_result (Isolate.attempt rq_sub ~recovery:rq_recovery)
          with exn -> R_raised (Printexc.to_string exn)
        in
        (try write_value wr (reply : reply)
         with _ -> Unix._exit 0);
        loop ()
  in
  loop ()

let spawn ~wid ~close_fds () =
  (* Flush before forking: the child inherits the parent's channel
     buffers, and must not replay half-written output. *)
  flush stdout;
  flush stderr;
  let req_r, req_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close res_r;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        (close_fds ());
      (* fd 0/1 may be the stdio protocol stream: anything the pipeline
         prints must not corrupt it, and reads must not steal requests *)
      (try
         let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
         Unix.dup2 devnull Unix.stdin;
         Unix.dup2 devnull Unix.stdout;
         if devnull <> Unix.stdin && devnull <> Unix.stdout then
           Unix.close devnull
       with Unix.Unix_error _ -> ());
      child_loop req_r res_w;
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close res_w;
      { wid; pid; to_child = req_w; from_child = res_r;
        rbuf = Buffer.create 256; dead = false }

(* ------------------------------------------------------------------ *)
(* Parent side                                                         *)

let send t sub ~recovery =
  write_value t.to_child { rq_sub = sub; rq_recovery = recovery }

let read_step t =
  let chunk = Bytes.create 65536 in
  match Unix.read t.from_child chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> `Eof
  | 0 -> `Eof
  | n -> (
      Buffer.add_subbytes t.rbuf chunk 0 n;
      let len = Buffer.length t.rbuf in
      if len < Marshal.header_size then `Again
      else
        let data = Buffer.to_bytes t.rbuf in
        let total = Marshal.header_size + Marshal.data_size data 0 in
        if len < total then `Again
        else begin
          let reply : reply = Marshal.from_bytes data 0 in
          Buffer.clear t.rbuf;
          (* one reply per request; anything beyond is a protocol bug *)
          if len > total then
            Buffer.add_subbytes t.rbuf data total (len - total);
          `Reply reply
        end)

let kill t =
  if not t.dead then begin
    t.dead <- true;
    (try Unix.kill t.pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] t.pid) with Unix.Unix_error _ -> ());
    (try Unix.close t.to_child with Unix.Unix_error _ -> ());
    try Unix.close t.from_child with Unix.Unix_error _ -> ()
  end
