type config = {
  socket : string option;
  listen : string option;
  stdio : bool;
  queue_limit : int;
  wpolicy : Pool.wpolicy;
  policy : Policy.t;
  seed : int;
  max_request_bytes : int;
  max_conns : int;
  max_inflight : int;
  idle_timeout_s : float option;
  metrics : Obs.Metrics.t option;
  log : string -> unit;
}

let default =
  {
    socket = None;
    listen = None;
    stdio = true;
    queue_limit = 64;
    wpolicy = { Pool.default_wpolicy with workers = 1 };
    policy = Policy.default;
    seed = 1;
    max_request_bytes = 1 lsl 20;
    max_conns = 64;
    max_inflight = 16;
    idle_timeout_s = None;
    metrics = None;
    log = ignore;
  }

(* One client: stdin/stdout or an accepted socket/TCP connection.
   Connections are blocking; [select] gates every read, so a read
   never blocks on an idle peer. *)
type conn = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_name : string;
  c_rbuf : Buffer.t;  (** bytes read but not yet split into lines *)
  mutable c_eof : bool;
  mutable c_dead : bool;  (** write side failed; drop its responses *)
  mutable c_inflight : int;  (** accepted jobs not yet resolved *)
  mutable c_last : float;  (** last read activity, for idle timeout *)
}

type state = {
  cfg : config;
  pool : Pool.t;
  slots : Worker.t option array;
  stdio_conn : conn option;
  mutable conns : conn list;  (** accepted connections, newest first *)
  mutable listeners : (Unix.file_descr * string) list;
  (* Jobs complete out of submission order across workers, so terminal
     responses are routed by job id. *)
  routes : (string, conn) Hashtbl.t;
  mutable drain_waiters : conn list;
  mutable finished : bool;
  stop : bool ref;  (** set by SIGTERM/SIGINT *)
}

let mtr st = Pool.metrics st.pool

let write_response st conn (resp : Protocol.response) =
  if not conn.c_dead then begin
    let line = Protocol.response_to_line resp ^ "\n" in
    let bytes = Bytes.of_string line in
    let rec go off =
      if off < Bytes.length bytes then
        match Unix.write conn.c_out bytes off (Bytes.length bytes - off) with
        | n -> go (off + n)
        | exception
            Unix.Unix_error
              ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
            conn.c_dead <- true;
            Obs.Metrics.inc (mtr st) "serve.orphaned";
            st.cfg.log
              (Printf.sprintf "client %s went away; dropping response"
                 conn.c_name)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0
  end
  else Obs.Metrics.inc (mtr st) "serve.orphaned"

(* Terminal responses go to the connection that submitted the job. *)
let route_response st (resp : Protocol.response) =
  match resp with
  | Protocol.Result_ok { id; _ }
  | Protocol.Result_error { id; _ }
  | Protocol.Cancelled { id } -> (
      match Hashtbl.find_opt st.routes id with
      | Some conn ->
          Hashtbl.remove st.routes id;
          conn.c_inflight <- conn.c_inflight - 1;
          write_response st conn resp
      | None ->
          Obs.Metrics.inc (mtr st) "serve.orphaned";
          st.cfg.log (Printf.sprintf "serve: no route for job %s" id))
  | resp -> (
      (* the pool only Responds with terminal shapes; fall back sanely *)
      match st.stdio_conn with
      | Some c -> write_response st c resp
      | None -> st.cfg.log "serve: unroutable response dropped")

let now () = Util.Clock.monotonic_s ()

(* Descriptors a freshly forked worker must not inherit: every client
   connection, every listener, and the other workers' pipes.  (Its own
   stdin/stdout are redirected to /dev/null by [Worker.spawn].) *)
let fds_to_close st =
  let conns = List.concat_map (fun c -> [ c.c_in ]) st.conns in
  let listeners = List.map fst st.listeners in
  let workers =
    Array.to_list st.slots
    |> List.concat_map (function Some w -> Worker.pipe_fds w | None -> [])
  in
  conns @ listeners @ workers

(* Perform the pool's actions against the real worker processes.  The
   recursion is bounded: Spawn feeds E_spawned which can Dispatch,
   whose send failure feeds E_died, which backs the slot off. *)
let rec perform_actions st acts = List.iter (perform_action st) acts

and perform_action st = function
  | Pool.Respond r -> route_response st r
  | Pool.Note m -> st.cfg.log m
  | Pool.Spawn { wid } -> spawn_slot st wid
  | Pool.Kill { wid } -> kill_slot st wid
  | Pool.Dispatch { wid; sub; recovery; _ } -> dispatch_slot st wid sub recovery

and spawn_slot st wid =
  kill_slot st wid;
  let w = Worker.spawn ~wid ~close_fds:(fun () -> fds_to_close st) () in
  st.slots.(wid) <- Some w;
  st.cfg.log (Printf.sprintf "pool: worker %d spawned pid=%d" wid (Worker.pid w));
  perform_actions st (Pool.handle st.pool ~now:(now ()) (Pool.E_spawned { wid }))

and kill_slot st wid =
  match st.slots.(wid) with
  | None -> ()
  | Some w ->
      Worker.kill w;
      st.slots.(wid) <- None

and dispatch_slot st wid sub recovery =
  match st.slots.(wid) with
  | None -> worker_died st wid "dispatched to a dead worker slot"
  | Some w -> (
      st.cfg.log
        (Printf.sprintf "pool: job %s -> worker %d pid=%d"
           sub.Protocol.sub_id wid (Worker.pid w));
      try Worker.send w sub ~recovery
      with _ -> worker_died st wid "write to worker failed")

and worker_died st wid detail =
  kill_slot st wid;
  perform_actions st (Pool.handle st.pool ~now:(now ()) (Pool.E_died { wid; detail }))

let handle_line st conn line =
  if String.trim line = "" then ()
  else
    match
      Protocol.parse_request ~default_policy:st.cfg.policy
        ~max_bytes:st.cfg.max_request_bytes line
    with
    | Error (id, reason) ->
        write_response st conn (Pool.reject st.pool ?id reason)
    | Ok (Protocol.Submit sub) ->
        if conn.c_inflight >= st.cfg.max_inflight then
          write_response st conn
            (Pool.reject st.pool ~id:sub.sub_id
               (Protocol.Inflight_limit { limit = st.cfg.max_inflight }))
        else begin
          let resp, acts = Pool.submit st.pool ~now:(now ()) sub in
          (match resp with
          | Protocol.Accepted _ ->
              Hashtbl.replace st.routes sub.sub_id conn;
              conn.c_inflight <- conn.c_inflight + 1
          | _ -> ());
          write_response st conn resp;
          perform_actions st acts
        end
    | Ok Protocol.Health -> write_response st conn (Pool.health st.pool)
    | Ok Protocol.Drain ->
        Pool.begin_drain st.pool;
        st.drain_waiters <- conn :: st.drain_waiters
    | Ok Protocol.Shutdown ->
        (* Cancel live jobs: each Cancelled goes to its submitter, the
           summary to the requester. *)
        let responses, acts = Pool.shutdown st.pool ~now:(now ()) in
        List.iter
          (fun r ->
            match r with
            | Protocol.Cancelled _ -> route_response st r
            | r -> write_response st conn r)
          responses;
        perform_actions st acts;
        st.finished <- true

(* Split [conn.c_rbuf] into complete lines and handle each. *)
let process_buffer st conn ~flush_partial =
  let data = Buffer.contents conn.c_rbuf in
  let n = String.length data in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | Some i ->
        handle_line st conn (String.sub data start (i - start));
        go (i + 1)
    | None ->
        Buffer.clear conn.c_rbuf;
        if start < n then
          if flush_partial then
            (* EOF with an unterminated final line: treat it as a line *)
            handle_line st conn (String.sub data start (n - start))
          else Buffer.add_substring conn.c_rbuf data start (n - start)
  in
  go 0

let read_conn st conn =
  conn.c_last <- now ();
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_in chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      conn.c_eof <- true;
      process_buffer st conn ~flush_partial:true
  | 0 ->
      conn.c_eof <- true;
      process_buffer st conn ~flush_partial:true
  | n ->
      Buffer.add_subbytes conn.c_rbuf chunk 0 n;
      process_buffer st conn ~flush_partial:false

let accept_conn st lfd lname =
  match Unix.accept lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | client, _ ->
      if List.length st.conns >= st.cfg.max_conns then begin
        let resp =
          Pool.reject st.pool (Protocol.Conn_limit { limit = st.cfg.max_conns })
        in
        let line = Protocol.response_to_line resp ^ "\n" in
        (try
           ignore
             (Unix.write client (Bytes.of_string line) 0 (String.length line))
         with Unix.Unix_error _ -> ());
        (try Unix.close client with Unix.Unix_error _ -> ());
        st.cfg.log
          (Printf.sprintf "serve: refused %s connection (cap %d)" lname
             st.cfg.max_conns)
      end
      else
        st.conns <-
          {
            c_in = client;
            c_out = client;
            c_name = lname;
            c_rbuf = Buffer.create 256;
            c_eof = false;
            c_dead = false;
            c_inflight = 0;
            c_last = now ();
          }
          :: st.conns

(* Drop connections that can neither send requests nor receive
   responses anymore; close idle ones past the timeout. *)
let prune_conns st tnow =
  let keep c =
    let waiter = List.memq c st.drain_waiters in
    let closed =
      c.c_dead || (c.c_eof && c.c_inflight = 0 && not waiter)
    in
    let idle_out =
      match st.cfg.idle_timeout_s with
      | Some limit
        when (not closed) && (not waiter)
             && c.c_inflight = 0
             && tnow -. c.c_last > limit ->
          Obs.Metrics.inc (mtr st) "serve.conn.idle_closed";
          st.cfg.log
            (Printf.sprintf "serve: closing idle %s connection" c.c_name);
          true
      | _ -> false
    in
    if closed || idle_out then begin
      (try Unix.close c.c_in with Unix.Unix_error _ -> ());
      false
    end
    else true
  in
  st.conns <- List.filter keep st.conns

let finish_drain st =
  let summary = Pool.drained_summary st.pool ~cancelled:0 in
  (match st.drain_waiters with
  | [] -> (
      (* drain was implied by EOF or a signal: summarize to stdio *)
      match st.stdio_conn with
      | Some conn -> write_response st conn summary
      | None -> ())
  | waiters ->
      List.iter (fun c -> write_response st c summary) (List.rev waiters));
  st.finished <- true

(* ------------------------------------------------------------------ *)
(* Listener setup                                                      *)

let unix_listener path =
  try
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Ok fd
  with
  | Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))
  | Sys_error msg -> Error ("cannot listen: " ^ msg)

let tcp_listener ~log spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "--listen %s: expected HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | None -> Error (Printf.sprintf "--listen %s: bad port %S" spec port_s)
      | Some port -> (
          let addr =
            if host = "" || host = "*" then Ok Unix.inet_addr_any
            else
              match Unix.inet_addr_of_string host with
              | a -> Ok a
              | exception _ -> (
                  match Unix.gethostbyname host with
                  | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0
                    ->
                      Ok h_addr_list.(0)
                  | _ | (exception Not_found) ->
                      Error
                        (Printf.sprintf "--listen %s: cannot resolve %S" spec
                           host))
          in
          match addr with
          | Error _ as e -> e
          | Ok addr -> (
              try
                let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
                Unix.setsockopt fd Unix.SO_REUSEADDR true;
                Unix.bind fd (Unix.ADDR_INET (addr, port));
                Unix.listen fd 64;
                (match Unix.getsockname fd with
                | Unix.ADDR_INET (a, p) ->
                    log
                      (Printf.sprintf "serve: listening on %s:%d"
                         (Unix.string_of_inet_addr a) p)
                | _ -> ());
                Ok fd
              with Unix.Unix_error (e, _, _) ->
                Error
                  (Printf.sprintf "cannot listen on %s: %s" spec
                     (Unix.error_message e)))))

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)

let select_timeout st tnow =
  let pool_wake = Pool.next_wakeup st.pool in
  let idle_wake =
    match st.cfg.idle_timeout_s with
    | None -> None
    | Some limit ->
        List.fold_left
          (fun acc c ->
            if c.c_eof || c.c_dead || c.c_inflight > 0 then acc
            else Util.Clock.earliest acc (Some (c.c_last +. limit)))
          None st.conns
  in
  match Util.Clock.earliest pool_wake idle_wake with
  | None -> -1.
  | Some at -> Float.max 0. (at -. tnow)

let serve_loop st =
  while not st.finished do
    let tnow = now () in
    if !(st.stop) && not (Pool.draining st.pool) then begin
      st.cfg.log "serve: signal received; draining";
      Pool.begin_drain st.pool
    end;
    perform_actions st (Pool.tick st.pool ~now:tnow);
    prune_conns st tnow;
    (* stdio EOF with no listener means no more requests are coming —
       drain implicitly so piped clients get results *)
    (match st.stdio_conn with
    | Some c when c.c_eof && st.listeners = [] && not (Pool.draining st.pool)
      ->
        Pool.begin_drain st.pool
    | _ -> ());
    if Pool.draining st.pool && Pool.idle st.pool then finish_drain st
    else if not st.finished then begin
      let conn_of_fd = Hashtbl.create 16 in
      let fds = ref [] in
      (match st.stdio_conn with
      | Some c when not c.c_eof ->
          Hashtbl.replace conn_of_fd c.c_in c;
          fds := c.c_in :: !fds
      | _ -> ());
      List.iter
        (fun c ->
          if not c.c_eof then begin
            Hashtbl.replace conn_of_fd c.c_in c;
            fds := c.c_in :: !fds
          end)
        st.conns;
      List.iter (fun (fd, _) -> fds := fd :: !fds) st.listeners;
      Array.iter
        (function Some w -> fds := Worker.fd w :: !fds | None -> ())
        st.slots;
      match Unix.select !fds [] [] (select_timeout st tnow) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if st.finished then ()
              else
                match List.assoc_opt fd st.listeners with
                | Some lname -> accept_conn st fd lname
                | None -> (
                    let slot = ref None in
                    Array.iter
                      (function
                        | Some w when Worker.fd w = fd -> slot := Some w
                        | _ -> ())
                      st.slots;
                    match !slot with
                    | Some w -> (
                        let wid = Worker.wid w in
                        match Worker.read_step w with
                        | `Again -> ()
                        | `Eof -> worker_died st wid "worker process died"
                        | `Reply (Worker.R_result r) ->
                            let outcome =
                              match r with
                              | Isolate.R_ok info -> Supervisor.A_ok info
                              | Isolate.R_error e -> Supervisor.A_error e
                            in
                            perform_actions st
                              (Pool.handle st.pool ~now:(now ())
                                 (Pool.E_result { wid; outcome }))
                        | `Reply (Worker.R_raised msg) ->
                            (* the attempt raised in-process; the worker
                               itself is alive and reusable *)
                            perform_actions st
                              (Pool.handle st.pool ~now:(now ())
                                 (Pool.E_result
                                    { wid; outcome = Supervisor.A_crashed msg }))
                        | exception _ ->
                            worker_died st wid "garbled worker reply")
                    | None -> (
                        match Hashtbl.find_opt conn_of_fd fd with
                        | Some conn -> read_conn st conn
                        | None -> ())))
            readable
    end
  done

let run cfg =
  (* A client closing its socket mid-write must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stop = ref false in
  let old_term = ref None and old_int = ref None in
  (try
     old_term :=
       Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)));
     old_int :=
       Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)))
   with Invalid_argument _ | Sys_error _ -> ());
  let restore_signals () =
    (match !old_term with
    | Some b -> ( try Sys.set_signal Sys.sigterm b with _ -> ())
    | None -> ());
    match !old_int with
    | Some b -> ( try Sys.set_signal Sys.sigint b with _ -> ())
    | None -> ()
  in
  let pool =
    Pool.create ~queue_limit:cfg.queue_limit ~seed:cfg.seed ?metrics:cfg.metrics
      ~wpolicy:cfg.wpolicy ()
  in
  let listeners =
    let ( let* ) = Result.bind in
    let* unix =
      match cfg.socket with
      | None -> Ok []
      | Some path ->
          Result.map (fun fd -> [ (fd, "unix-socket") ]) (unix_listener path)
    in
    let* tcp =
      match cfg.listen with
      | None -> Ok []
      | Some spec ->
          Result.map (fun fd -> [ (fd, "tcp") ]) (tcp_listener ~log:cfg.log spec)
    in
    Ok (unix @ tcp)
  in
  match listeners with
  | Error msg ->
      restore_signals ();
      Error msg
  | Ok listeners ->
      let st =
        {
          cfg;
          pool;
          slots = Array.make cfg.wpolicy.Pool.workers None;
          stdio_conn =
            (if cfg.stdio then
               Some
                 {
                   c_in = Unix.stdin;
                   c_out = Unix.stdout;
                   c_name = "stdio";
                   c_rbuf = Buffer.create 256;
                   c_eof = false;
                   c_dead = false;
                   c_inflight = 0;
                   c_last = now ();
                 }
             else None);
          conns = [];
          listeners;
          routes = Hashtbl.create 64;
          drain_waiters = [];
          finished = false;
          stop;
        }
      in
      perform_actions st (Pool.boot st.pool);
      (try serve_loop st
       with exn -> cfg.log ("serve loop error: " ^ Printexc.to_string exn));
      (* kill workers, close sockets, remove the socket file *)
      Array.iteri (fun wid _ -> kill_slot st wid) st.slots;
      List.iter
        (fun c -> try Unix.close c.c_in with Unix.Unix_error _ -> ())
        st.conns;
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        st.listeners;
      (match cfg.socket with
      | Some path -> ( try Sys.remove path with Sys_error _ -> ())
      | None -> ());
      restore_signals ();
      Ok (Pool.metrics st.pool)
