type config = {
  socket : string option;
  stdio : bool;
  queue_limit : int;
  policy : Policy.t;
  seed : int;
  max_request_bytes : int;
  runner : Supervisor.runner;
  metrics : Obs.Metrics.t option;
  log : string -> unit;
}

let default =
  {
    socket = None;
    stdio = true;
    queue_limit = 64;
    policy = Policy.default;
    seed = 1;
    max_request_bytes = 1 lsl 20;
    runner = Isolate.pipeline_runner;
    metrics = None;
    log = ignore;
  }

(* One client: stdin/stdout or an accepted socket connection. *)
type conn = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_name : string;
  c_rbuf : Buffer.t;  (** bytes read but not yet split into lines *)
  mutable c_eof : bool;
  mutable c_dead : bool;  (** write side failed; drop its responses *)
}

type state = {
  cfg : config;
  sup : Supervisor.t;
  mutable conns : conn list;
  listener : Unix.file_descr option;
  (* Jobs complete in FIFO submit order (the supervisor queue is FIFO
     and one job runs at a time), so a parallel FIFO of submitters
     routes each terminal response to its connection. *)
  route : conn Queue.t;
  mutable drain_waiters : conn list;
  mutable finished : bool;
}

let write_response st conn (resp : Protocol.response) =
  if not conn.c_dead then begin
    let line = Protocol.response_to_line resp ^ "\n" in
    let bytes = Bytes.of_string line in
    let rec go off =
      if off < Bytes.length bytes then
        match Unix.write conn.c_out bytes off (Bytes.length bytes - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _)
          ->
            conn.c_dead <- true;
            Obs.Metrics.inc (Supervisor.metrics st.sup) "serve.orphaned";
            st.cfg.log
              (Printf.sprintf "client %s went away; dropping response"
                 conn.c_name)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0
  end
  else Obs.Metrics.inc (Supervisor.metrics st.sup) "serve.orphaned"

let handle_line st conn line =
  if String.trim line = "" then ()
  else
    match
      Protocol.parse_request ~default_policy:st.cfg.policy
        ~max_bytes:st.cfg.max_request_bytes line
    with
    | Error (id, reason) ->
        write_response st conn (Supervisor.reject st.sup ?id reason)
    | Ok (Protocol.Submit sub) ->
        let resp = Supervisor.submit st.sup sub in
        (match resp with
        | Protocol.Accepted _ -> Queue.add conn st.route
        | _ -> ());
        write_response st conn resp
    | Ok Protocol.Health -> write_response st conn (Supervisor.health st.sup)
    | Ok Protocol.Drain ->
        Supervisor.begin_drain st.sup;
        st.drain_waiters <- conn :: st.drain_waiters
    | Ok Protocol.Shutdown ->
        (* Cancel queued jobs: each Cancelled goes to its submitter, the
           summary to the requester. *)
        let responses = Supervisor.shutdown st.sup in
        List.iter
          (fun r ->
            match r with
            | Protocol.Cancelled _ ->
                let target =
                  match Queue.take_opt st.route with
                  | Some c -> c
                  | None -> conn
                in
                write_response st target r
            | _ -> write_response st conn r)
          responses;
        st.finished <- true

(* Split [conn.c_rbuf] into complete lines and handle each. *)
let process_buffer st conn ~flush_partial =
  let data = Buffer.contents conn.c_rbuf in
  let n = String.length data in
  let rec go start =
    match String.index_from_opt data start '\n' with
    | Some i ->
        handle_line st conn (String.sub data start (i - start));
        go (i + 1)
    | None ->
        Buffer.clear conn.c_rbuf;
        if start < n then
          if flush_partial then
            (* EOF with an unterminated final line: treat it as a line *)
            handle_line st conn (String.sub data start (n - start))
          else Buffer.add_substring conn.c_rbuf data start (n - start)
  in
  go 0

let read_conn st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.c_in chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      conn.c_eof <- true;
      process_buffer st conn ~flush_partial:true
  | 0 ->
      conn.c_eof <- true;
      process_buffer st conn ~flush_partial:true
  | n ->
      Buffer.add_subbytes conn.c_rbuf chunk 0 n;
      process_buffer st conn ~flush_partial:false

(* Deliver one completed job's response to its submitter. *)
let run_one st =
  match Supervisor.run_next st.sup with
  | None -> ()
  | Some resp ->
      let target = Queue.take_opt st.route in
      (match target with
      | Some conn -> write_response st conn resp
      | None -> st.cfg.log "no route for completed job (dropping response)")

let finish_drain st =
  let summary =
    Protocol.Drained
      {
        jobs_run =
          (match Supervisor.health st.sup with
          | Protocol.Health_report h -> h.completed + h.failed
          | _ -> 0);
        cancelled = 0;
      }
  in
  (match st.drain_waiters with
  | [] -> (
      (* drain was implied by stdin EOF: summarize to stdout if alive *)
      match List.find_opt (fun c -> c.c_name = "stdio") st.conns with
      | Some conn -> write_response st conn summary
      | None -> ())
  | waiters -> List.iter (fun c -> write_response st c summary) (List.rev waiters));
  st.finished <- true

let run cfg =
  (* A client closing its socket mid-write must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sup =
    Supervisor.create ~queue_limit:cfg.queue_limit ~seed:cfg.seed
      ?metrics:cfg.metrics ~runner:cfg.runner ~clock:Supervisor.system_clock ()
  in
  let listener =
    match cfg.socket with
    | None -> Ok None
    | Some path -> (
        try
          if Sys.file_exists path then Sys.remove path;
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd 16;
          Ok (Some fd)
        with
        | Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot listen on %s: %s" path
                 (Unix.error_message e))
        | Sys_error msg -> Error ("cannot listen: " ^ msg))
  in
  match listener with
  | Error _ as e -> e
  | Ok listener ->
      let st =
        {
          cfg;
          sup;
          conns =
            (if cfg.stdio then
               [
                 {
                   c_in = Unix.stdin;
                   c_out = Unix.stdout;
                   c_name = "stdio";
                   c_rbuf = Buffer.create 256;
                   c_eof = false;
                   c_dead = false;
                 };
               ]
             else []);
          listener;
          route = Queue.create ();
          drain_waiters = [];
          finished = false;
        }
      in
      let stdio_conn = List.nth_opt st.conns 0 in
      let rec loop () =
        if st.finished then ()
        else begin
          let live =
            List.filter (fun c -> not c.c_eof) st.conns
          in
          let fds = List.map (fun c -> c.c_in) live in
          let fds =
            match st.listener with Some l -> l :: fds | None -> fds
          in
          let have_work = Supervisor.queue_length st.sup > 0 in
          (* Consume every pending request before running the next job,
             so shedding decisions see the full backlog; block only when
             idle. *)
          let timeout = if have_work || Supervisor.draining st.sup then 0. else -1. in
          let readable =
            if fds = [] then []
            else
              match Unix.select fds [] [] timeout with
              | r, _, _ -> r
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          List.iter
            (fun fd ->
              if Some fd = st.listener then begin
                match Unix.accept fd with
                | client, _ ->
                    Unix.set_nonblock client;
                    Unix.clear_nonblock client;
                    st.conns <-
                      st.conns
                      @ [
                          {
                            c_in = client;
                            c_out = client;
                            c_name = "socket";
                            c_rbuf = Buffer.create 256;
                            c_eof = false;
                            c_dead = false;
                          };
                        ]
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              end
              else
                match List.find_opt (fun c -> c.c_in = fd) st.conns with
                | Some conn -> read_conn st conn
                | None -> ())
            readable;
          (* stdio EOF in stdio-only mode means: no more requests are
             coming — drain implicitly so piped clients get results. *)
          (match stdio_conn with
          | Some c when c.c_eof && st.listener = None ->
              Supervisor.begin_drain st.sup
          | _ -> ());
          if st.finished then ()
          else if Supervisor.queue_length st.sup > 0 then begin
            run_one st;
            loop ()
          end
          else if Supervisor.draining st.sup then finish_drain st
          else if readable = [] && fds = [] then
            (* nothing to read, nothing queued, no way to get work *)
            Supervisor.begin_drain st.sup
          else loop ()
        end
      in
      (try loop ()
       with exn ->
         cfg.log ("serve loop error: " ^ Printexc.to_string exn));
      (* close sockets, remove the socket file *)
      List.iter
        (fun c ->
          if c.c_name = "socket" then (
            try Unix.close c.c_in with Unix.Unix_error _ -> ()))
        st.conns;
      (match (st.listener, cfg.socket) with
      | Some fd, Some path ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Sys.remove path with Sys_error _ -> ())
      | _ -> ());
      Ok (Supervisor.metrics st.sup)
