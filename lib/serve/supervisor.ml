module Pipeline = Benchgen.Pipeline

type clock = { now : unit -> float; sleep : float -> unit }

let system_clock =
  { now = Util.Clock.monotonic_s; sleep = Util.Clock.sleep_s }

let sim_clock () =
  let t = ref 0. in
  { now = (fun () -> !t); sleep = (fun d -> if d > 0. then t := !t +. d) }

type attempt_outcome =
  | A_ok of Protocol.ok_info
  | A_error of Protocol.error_info
  | A_timeout
  | A_crashed of string

type runner =
  Protocol.submit ->
  recovery:Pipeline.recovery ->
  deadline_s:float option ->
  attempt_outcome

(* Shared failure classification: the single-worker supervisor and the
   worker pool must describe the same outcome with the same wire error,
   or the fuzzer's transcript contract would depend on which engine ran
   the job. *)
let attempt_error ~(policy : Policy.t) ~path ~recovery = function
  | A_error e -> e
  | A_timeout ->
      {
        Protocol.e_tag = "deadline_exceeded";
        e_path = path;
        e_retryable = true;
        e_detail =
          Printf.sprintf
            "attempt exceeded its %.3f s wall-clock deadline (recovery %s) \
             and was killed"
            (Option.value ~default:0. policy.Policy.deadline_s)
            (Pipeline.recovery_to_string recovery);
      }
  | A_crashed msg ->
      {
        Protocol.e_tag = "crashed";
        e_path = path;
        e_retryable = true;
        e_detail = "worker died abnormally: " ^ msg;
      }
  | A_ok _ -> invalid_arg "Supervisor.attempt_error: A_ok is not a failure"

type t = {
  runner : runner;
  clock : clock;
  rng : Util.Rng.t;  (** parent stream; each job splits a child *)
  queue : Protocol.submit Queue.t;
  q_limit : int;
  metrics : Obs.Metrics.t;
  mutable seq : int;  (** executed-job counter, feeds [Rng.split] *)
  mutable is_draining : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable cancelled : int;
  mutable depth_max : int;
}

let create ?(queue_limit = 64) ?(seed = 1) ?metrics ~runner ~clock () =
  if queue_limit < 1 then invalid_arg "Supervisor.create: queue_limit < 1";
  {
    runner;
    clock;
    rng = Util.Rng.create ~seed;
    queue = Queue.create ();
    q_limit = queue_limit;
    metrics = (match metrics with Some m -> m | None -> Obs.Metrics.create ());
    seq = 0;
    is_draining = false;
    submitted = 0;
    completed = 0;
    failed = 0;
    rejected = 0;
    cancelled = 0;
    depth_max = 0;
  }

let queue_length t = Queue.length t.queue
let queue_limit t = t.q_limit
let metrics t = t.metrics
let draining t = t.is_draining
let begin_drain t = t.is_draining <- true

let set_depth_gauges t =
  let d = Queue.length t.queue in
  if d > t.depth_max then t.depth_max <- d;
  Obs.Metrics.set t.metrics "serve.queue_depth" (float_of_int d);
  Obs.Metrics.set t.metrics "serve.queue_depth_max" (float_of_int t.depth_max)

let reject t ?id reason =
  t.rejected <- t.rejected + 1;
  Obs.Metrics.inc t.metrics
    ~labels:[ ("reason", Protocol.reject_tag reason) ]
    "serve.rejected";
  Protocol.Rejected { id; reason }

let submit t (sub : Protocol.submit) =
  t.submitted <- t.submitted + 1;
  Obs.Metrics.inc t.metrics "serve.submitted";
  if t.is_draining then reject t ~id:sub.sub_id Protocol.Draining
  else if Queue.length t.queue >= t.q_limit then begin
    Obs.Metrics.inc t.metrics "serve.sheds";
    reject t ~id:sub.sub_id Protocol.Queue_full
  end
  else begin
    Queue.add sub t.queue;
    Obs.Metrics.inc t.metrics "serve.accepted";
    set_depth_gauges t;
    Protocol.Accepted { id = sub.sub_id; queue_depth = Queue.length t.queue }
  end

(* One job, run to a terminal response under the supervision policy.
   Attempt [k] (0-based) runs at the policy's escalated recovery level
   for [k]; failures classified retryable are retried after a jittered
   exponential backoff until the retry budget is spent. *)
let run_job t (sub : Protocol.submit) =
  let policy = sub.sub_policy in
  let id = sub.sub_id in
  let job_rng = Util.Rng.split t.rng ~index:t.seq in
  t.seq <- t.seq + 1;
  let started = t.clock.now () in
  let job_labels = [ ("id", id) ] in
  let run_attempt attempt =
    let recovery = Policy.recovery_for_attempt policy ~attempt in
    Obs.Metrics.inc t.metrics "serve.attempts";
    let outcome =
      (* Exception isolation: a runner that raises poisons one attempt,
         never the supervisor. *)
      try t.runner sub ~recovery ~deadline_s:policy.deadline_s
      with exn -> A_crashed (Printexc.to_string exn)
    in
    (outcome, recovery)
  in
  let path_of_sub = Protocol.submit_path sub in
  let error_of_outcome recovery outcome =
    attempt_error ~policy ~path:path_of_sub ~recovery outcome
  in
  let rec go attempt =
    match run_attempt attempt with
    | A_ok info, recovery ->
        t.completed <- t.completed + 1;
        Obs.Metrics.inc t.metrics ~labels:[ ("class", "ok") ] "serve.outcomes";
        let info =
          { info with Protocol.ok_recovery = Pipeline.recovery_to_string recovery }
        in
        Protocol.Result_ok { id; attempts = attempt + 1; info }
    | outcome, recovery ->
        (match outcome with
        | A_timeout -> Obs.Metrics.inc t.metrics "serve.deadline_kills"
        | A_crashed _ -> Obs.Metrics.inc t.metrics "serve.crashes"
        | _ -> ());
        let error = error_of_outcome recovery outcome in
        if error.Protocol.e_retryable && attempt < policy.max_retries then begin
          let delay =
            Policy.backoff_s policy ~rng:job_rng ~attempt:(attempt + 1)
          in
          Obs.Metrics.inc t.metrics "serve.retries";
          Obs.Metrics.observe t.metrics "serve.backoff_s" delay;
          t.clock.sleep delay;
          go (attempt + 1)
        end
        else begin
          t.failed <- t.failed + 1;
          Obs.Metrics.inc t.metrics
            ~labels:[ ("class", error.Protocol.e_tag) ]
            "serve.outcomes";
          Protocol.Result_error { id; attempts = attempt + 1; error }
        end
  in
  let response = go 0 in
  let attempts =
    match response with
    | Protocol.Result_ok { attempts; _ } | Protocol.Result_error { attempts; _ }
      ->
        attempts
    | _ -> 0
  in
  Obs.Metrics.set t.metrics ~labels:job_labels "serve.job.attempts"
    (float_of_int attempts);
  Obs.Metrics.set t.metrics ~labels:job_labels "serve.job.elapsed_s"
    (t.clock.now () -. started);
  response

let run_next t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some sub ->
      set_depth_gauges t;
      Some (run_job t sub)

let health t =
  Protocol.Health_report
    {
      queue_depth = Queue.length t.queue;
      queue_limit = t.q_limit;
      draining = t.is_draining;
      submitted = t.submitted;
      completed = t.completed;
      failed = t.failed;
      rejected = t.rejected;
      cancelled = t.cancelled;
    }

let drained_summary t cancelled_now =
  Protocol.Drained { jobs_run = t.completed + t.failed; cancelled = cancelled_now }

let drain t =
  begin_drain t;
  let rec go acc =
    match run_next t with None -> List.rev acc | Some r -> go (r :: acc)
  in
  let results = go [] in
  results @ [ drained_summary t 0 ]

let shutdown t =
  begin_drain t;
  let cancelled = ref [] in
  Queue.iter
    (fun (sub : Protocol.submit) ->
      t.cancelled <- t.cancelled + 1;
      Obs.Metrics.inc t.metrics "serve.cancelled";
      cancelled := Protocol.Cancelled { id = sub.sub_id } :: !cancelled)
    t.queue;
  Queue.clear t.queue;
  set_depth_gauges t;
  List.rev !cancelled @ [ drained_summary t (List.length !cancelled) ]
