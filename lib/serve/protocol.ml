module Json = Obs.Json
module Pipeline = Benchgen.Pipeline

type job_source =
  | J_file of string
  | J_app of { app : string; nranks : int; cls : string }

type submit = {
  sub_id : string;
  sub_source : job_source;
  sub_policy : Policy.t;
  sub_out : string option;
  sub_emit_text : bool;
}

type request = Submit of submit | Health | Drain | Shutdown

type reject_reason =
  | Queue_full
  | Draining
  | Oversized of { bytes : int; limit : int }
  | Bad_request of string
  | Conn_limit of { limit : int }
  | Inflight_limit of { limit : int }

let reject_tag = function
  | Queue_full -> "queue_full"
  | Draining -> "draining"
  | Oversized _ -> "oversized"
  | Bad_request _ -> "bad_request"
  | Conn_limit _ -> "conn_limit"
  | Inflight_limit _ -> "inflight_limit"

type error_info = {
  e_tag : string;
  e_path : string option;
  e_retryable : bool;
  e_detail : string;
}

type ok_info = {
  ok_statements : int;
  ok_final_rsds : int;
  ok_recovery : string;
  ok_warnings : (string * string) list;
  ok_text : string option;
  ok_out : string option;
}

type response =
  | Accepted of { id : string; queue_depth : int }
  | Rejected of { id : string option; reason : reject_reason }
  | Result_ok of { id : string; attempts : int; info : ok_info }
  | Result_error of { id : string; attempts : int; error : error_info }
  | Cancelled of { id : string }
  | Health_report of {
      queue_depth : int;
      queue_limit : int;
      draining : bool;
      submitted : int;
      completed : int;
      failed : int;
      rejected : int;
      cancelled : int;
    }
  | Drained of { jobs_run : int; cancelled : int }

let submit_path (sub : submit) =
  match sub.sub_source with J_file path -> Some path | J_app _ -> None

let error_of_gen_error ?path e =
  (* An escalated recovery level can turn a strict load/align failure
     into a degraded success, so almost every pipeline error is worth a
     retry.  [E_io] (missing file, permission) is not: no recovery mode
     conjures the file. *)
  let retryable = match e with Pipeline.E_io _ -> false | _ -> true in
  {
    e_tag = Pipeline.error_tag e;
    e_path = path;
    e_retryable = retryable;
    e_detail = Pipeline.error_to_string e;
  }

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let member_string j name =
  match Json.member name j with
  | Some (Json.Str s) -> Ok (Some s)
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" name)

let member_int j name =
  match Json.member name j with
  | Some (Json.Num v) when Float.is_integer v -> Ok (Some (int_of_float v))
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)

let member_bool j name =
  match Json.member name j with
  | Some (Json.Bool b) -> Ok (Some b)
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let ( let* ) = Result.bind

let parse_submit ~default_policy j =
  let* id = member_string j "id" in
  let* id =
    match id with None -> Error "submit requires an \"id\"" | Some s -> Ok s
  in
  let* trace = member_string j "trace" in
  let* app = member_string j "app" in
  let* source =
    match (trace, app) with
    | Some path, None -> Ok (J_file path)
    | None, Some app ->
        let* nranks = member_int j "nranks" in
        let* cls = member_string j "cls" in
        Ok
          (J_app
             {
               app;
               nranks = Option.value ~default:16 nranks;
               cls = Option.value ~default:"W" cls;
             })
    | Some _, Some _ -> Error "submit takes \"trace\" or \"app\", not both"
    | None, None -> Error "submit requires \"trace\" or \"app\""
  in
  let* policy = Policy.override_from_json default_policy j in
  let* out = member_string j "out" in
  let* emit_text = member_bool j "emit_text" in
  Ok
    (Submit
       {
         sub_id = id;
         sub_source = source;
         sub_policy = policy;
         sub_out = out;
         sub_emit_text = Option.value ~default:false emit_text;
       })

let parse_request ~default_policy ~max_bytes line =
  if String.length line > max_bytes then
    Error (None, Oversized { bytes = String.length line; limit = max_bytes })
  else
    match Json.parse line with
    | exception Json.Parse_error msg ->
        Error (None, Bad_request ("malformed JSON: " ^ msg))
    | j -> (
        (* best-effort id extraction so even a bad request's rejection
           can be correlated by the client *)
        let id =
          match Json.member "id" j with Some (Json.Str s) -> Some s | _ -> None
        in
        match Json.member "op" j with
        | Some (Json.Str "submit") -> (
            match parse_submit ~default_policy j with
            | Ok r -> Ok r
            | Error msg -> Error (id, Bad_request msg))
        | Some (Json.Str "health") -> Ok Health
        | Some (Json.Str "drain") -> Ok Drain
        | Some (Json.Str "shutdown") -> Ok Shutdown
        | Some (Json.Str op) ->
            Error (id, Bad_request (Printf.sprintf "unknown op %S" op))
        | _ -> Error (id, Bad_request "request requires a string \"op\""))

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)

let opt_str name v rest =
  match v with None -> rest | Some s -> (name, Json.Str s) :: rest

let num i = Json.Num (float_of_int i)

let reject_fields = function
  | Oversized { bytes; limit } ->
      [ ("bytes", num bytes); ("limit", num limit) ]
  | Bad_request detail -> [ ("detail", Json.Str detail) ]
  | Conn_limit { limit } | Inflight_limit { limit } -> [ ("limit", num limit) ]
  | Queue_full | Draining -> []

let error_json e =
  Json.Obj
    (("tag", Json.Str e.e_tag)
     ::
     opt_str "path" e.e_path
       [
         ("retryable", Json.Bool e.e_retryable);
         ("detail", Json.Str e.e_detail);
       ])

let response_to_json = function
  | Accepted { id; queue_depth } ->
      Json.Obj
        [
          ("type", Json.Str "accepted");
          ("id", Json.Str id);
          ("queue_depth", num queue_depth);
        ]
  | Rejected { id; reason } ->
      Json.Obj
        (("type", Json.Str "rejected")
        :: opt_str "id" id
             (("reason", Json.Str (reject_tag reason)) :: reject_fields reason)
        )
  | Result_ok { id; attempts; info } ->
      Json.Obj
        ([
           ("type", Json.Str "result");
           ("id", Json.Str id);
           ("ok", Json.Bool true);
           ("attempts", num attempts);
           ("recovery", Json.Str info.ok_recovery);
           ("statements", num info.ok_statements);
           ("final_rsds", num info.ok_final_rsds);
           ( "warnings",
             Json.Arr
               (List.map
                  (fun (tag, detail) ->
                    Json.Obj
                      [ ("tag", Json.Str tag); ("detail", Json.Str detail) ])
                  info.ok_warnings) );
         ]
        @ opt_str "text" info.ok_text (opt_str "out" info.ok_out []))
  | Result_error { id; attempts; error } ->
      Json.Obj
        [
          ("type", Json.Str "result");
          ("id", Json.Str id);
          ("ok", Json.Bool false);
          ("attempts", num attempts);
          ("error", error_json error);
        ]
  | Cancelled { id } ->
      Json.Obj [ ("type", Json.Str "cancelled"); ("id", Json.Str id) ]
  | Health_report h ->
      Json.Obj
        [
          ("type", Json.Str "health");
          ("queue_depth", num h.queue_depth);
          ("queue_limit", num h.queue_limit);
          ("draining", Json.Bool h.draining);
          ("submitted", num h.submitted);
          ("completed", num h.completed);
          ("failed", num h.failed);
          ("rejected", num h.rejected);
          ("cancelled", num h.cancelled);
        ]
  | Drained { jobs_run; cancelled } ->
      Json.Obj
        [
          ("type", Json.Str "drained");
          ("jobs_run", num jobs_run);
          ("cancelled", num cancelled);
        ]

let response_to_line r = Json.to_string (response_to_json r)

(* ------------------------------------------------------------------ *)
(* Response parsing (tests, fuzzer contract checks, smoke clients)     *)

let bad msg = raise (Json.Parse_error ("response: " ^ msg))

let get_str j name =
  match Json.member name j with Some (Json.Str s) -> s | _ -> bad ("missing " ^ name)

let get_int j name =
  match Json.member name j with
  | Some (Json.Num v) -> int_of_float v
  | _ -> bad ("missing " ^ name)

let get_bool j name =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> bad ("missing " ^ name)

let opt_str_of j name =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let response_of_line line =
  let j = Json.parse line in
  match Json.member "type" j with
  | Some (Json.Str "accepted") ->
      Accepted { id = get_str j "id"; queue_depth = get_int j "queue_depth" }
  | Some (Json.Str "rejected") ->
      let reason =
        match get_str j "reason" with
        | "queue_full" -> Queue_full
        | "draining" -> Draining
        | "oversized" ->
            Oversized { bytes = get_int j "bytes"; limit = get_int j "limit" }
        | "bad_request" ->
            Bad_request (Option.value ~default:"" (opt_str_of j "detail"))
        | "conn_limit" -> Conn_limit { limit = get_int j "limit" }
        | "inflight_limit" -> Inflight_limit { limit = get_int j "limit" }
        | r -> bad ("unknown reject reason " ^ r)
      in
      Rejected { id = opt_str_of j "id"; reason }
  | Some (Json.Str "result") ->
      let id = get_str j "id" and attempts = get_int j "attempts" in
      if get_bool j "ok" then
        let warnings =
          match Json.member "warnings" j with
          | Some (Json.Arr ws) ->
              List.map
                (fun w -> (get_str w "tag", get_str w "detail"))
                ws
          | _ -> bad "missing warnings"
        in
        Result_ok
          {
            id;
            attempts;
            info =
              {
                ok_statements = get_int j "statements";
                ok_final_rsds = get_int j "final_rsds";
                ok_recovery = get_str j "recovery";
                ok_warnings = warnings;
                ok_text = opt_str_of j "text";
                ok_out = opt_str_of j "out";
              };
          }
      else
        let e =
          match Json.member "error" j with
          | Some e ->
              {
                e_tag = get_str e "tag";
                e_path = opt_str_of e "path";
                e_retryable = get_bool e "retryable";
                e_detail = get_str e "detail";
              }
          | None -> bad "missing error"
        in
        Result_error { id; attempts; error = e }
  | Some (Json.Str "cancelled") -> Cancelled { id = get_str j "id" }
  | Some (Json.Str "health") ->
      Health_report
        {
          queue_depth = get_int j "queue_depth";
          queue_limit = get_int j "queue_limit";
          draining = get_bool j "draining";
          submitted = get_int j "submitted";
          completed = get_int j "completed";
          failed = get_int j "failed";
          rejected = get_int j "rejected";
          cancelled = get_int j "cancelled";
        }
  | Some (Json.Str "drained") ->
      Drained
        { jobs_run = get_int j "jobs_run"; cancelled = get_int j "cancelled" }
  | Some (Json.Str t) -> bad ("unknown type " ^ t)
  | _ -> bad "missing type"
