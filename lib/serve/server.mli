(** The long-lived [benchgen serve] process: accepts line-delimited
    JSON requests over stdin/stdout, a Unix-domain socket, and/or a
    TCP listener, feeds them through a {!Pool} of persistent forked
    workers, and routes each job's terminal response back to the
    connection that submitted it (by job id — jobs complete out of
    submission order once [workers > 1]).

    Event-loop shape: one [select] over every client connection, every
    listener, and every worker's reply pipe; its timeout is the pool's
    {!Pool.next_wakeup} (deadline kills, restart backoffs, retry
    releases) folded with the earliest connection idle expiry.

    Backpressure and limits:
    - [queue_limit] bounds live jobs (shed with [queue_full]);
    - [max_conns] caps accepted socket/TCP connections — beyond it a
      client gets one typed [conn_limit] rejection and is closed;
    - [max_inflight] caps unresolved jobs per connection
      ([inflight_limit] rejections);
    - [idle_timeout_s] closes socket/TCP connections with no traffic
      and no unresolved jobs.

    Shutdown is deterministic:
    - a [drain] request (or end-of-input on stdin when there is no
      listener, or [SIGTERM]/[SIGINT]) stops admission, finishes every
      live job, emits the [drained] summary, and exits cleanly,
      removing the socket file;
    - a [shutdown] request stops admission, cancels every live job
      (one [cancelled] response each), kills the running workers,
      emits the summary, and exits cleanly.

    A client that disappears mid-job does not kill the server: its
    responses are dropped (counted as [serve.orphaned]) and [SIGPIPE]
    is ignored. *)

type config = {
  socket : string option;  (** listen on this Unix-domain socket *)
  listen : string option;  (** listen on this TCP [host:port] *)
  stdio : bool;  (** serve stdin/stdout (default [true]) *)
  queue_limit : int;
  wpolicy : Pool.wpolicy;  (** worker count + supervision knobs *)
  policy : Policy.t;  (** per-job default; requests may override *)
  seed : int;  (** backoff-jitter seed *)
  max_request_bytes : int;  (** longer lines are rejected as [oversized] *)
  max_conns : int;  (** accepted-connection cap *)
  max_inflight : int;  (** unresolved jobs per connection *)
  idle_timeout_s : float option;  (** close idle socket/TCP connections *)
  metrics : Obs.Metrics.t option;
  log : string -> unit;  (** server-side diagnostics (stderr) *)
}

(** [stdio]-only, queue 64, 1 worker, default policies, seed 1, 1 MiB
    request cap, 64 connections, 16 inflight per connection, no idle
    timeout, silent log. *)
val default : config

(** Run the serve loop until drain/shutdown.  Returns the pool's
    metrics registry on clean exit, or [Error msg] on a fatal
    environment failure (socket bind, bad listen address). *)
val run : config -> (Obs.Metrics.t, string) result
