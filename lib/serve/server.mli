(** The long-lived [benchgen serve] process: accepts line-delimited
    JSON requests over stdin/stdout and (optionally) a Unix-domain
    socket, feeds them through a {!Supervisor}, and routes each job's
    terminal response back to the connection that submitted it.

    Event-loop shape: all readable input is consumed (admitting or
    shedding every pending submission) {e before} the next queued job
    runs, so admission control sees the real backlog; one job runs at a
    time in a forked, deadline-killable worker ({!Isolate}).

    Shutdown is deterministic:
    - a [drain] request (or end-of-input on stdin in stdio mode) stops
      admission, finishes every queued job in order, emits the
      [drained] summary, and exits cleanly;
    - a [shutdown] request stops admission, cancels every queued job
      (one [cancelled] response each, in queue order), emits the
      summary, and exits cleanly.

    A client that disappears mid-job does not kill the server: its
    responses are dropped (counted as [serve.orphaned]) and [SIGPIPE]
    is ignored. *)

type config = {
  socket : string option;  (** listen on this Unix-domain socket too *)
  stdio : bool;  (** serve stdin/stdout (default [true]) *)
  queue_limit : int;
  policy : Policy.t;  (** per-job default; requests may override *)
  seed : int;  (** backoff-jitter seed *)
  max_request_bytes : int;  (** longer lines are rejected as [oversized] *)
  runner : Supervisor.runner;
  metrics : Obs.Metrics.t option;
  log : string -> unit;  (** server-side diagnostics (stderr) *)
}

(** [stdio]-only, queue 64, default policy, seed 1, 1 MiB request
    cap, {!Isolate.pipeline_runner}, silent log. *)
val default : config

(** Run the serve loop until drain/shutdown.  Returns the supervisor's
    metrics registry on clean exit, or [Error msg] on a fatal
    environment failure (socket bind, unreadable stdin). *)
val run : config -> (Obs.Metrics.t, string) result
