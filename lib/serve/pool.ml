module Pipeline = Benchgen.Pipeline

type wpolicy = {
  workers : int;
  restart_backoff_base_s : float;
  restart_backoff_factor : float;
  restart_backoff_max_s : float;
  breaker_deaths : int;
  breaker_window_s : float;
  breaker_cooldown_s : float;
  poison_crashes : int;
}

let default_wpolicy =
  {
    workers = 4;
    restart_backoff_base_s = 0.1;
    restart_backoff_factor = 2.0;
    restart_backoff_max_s = 5.0;
    breaker_deaths = 3;
    breaker_window_s = 30.0;
    breaker_cooldown_s = 60.0;
    poison_crashes = 2;
  }

type action =
  | Spawn of { wid : int }
  | Kill of { wid : int }
  | Dispatch of {
      wid : int;
      sub : Protocol.submit;
      attempt : int;
      recovery : Pipeline.recovery;
      deadline_s : float option;
    }
  | Respond of Protocol.response
  | Note of string

type event =
  | E_spawned of { wid : int }
  | E_result of { wid : int; outcome : Supervisor.attempt_outcome }
  | E_died of { wid : int; detail : string }

type job = {
  j_sub : Protocol.submit;
  j_rng : Util.Rng.t;  (** per-job backoff-jitter stream *)
  j_started : float;
  mutable j_attempt : int;  (** attempts completed so far *)
  mutable j_crashed : int list;  (** distinct wids this job took down *)
}

type wstate =
  | W_starting
  | W_idle
  | W_busy of {
      job : job;
      deadline_at : float option;
      recovery : Pipeline.recovery;
    }
  | W_backoff of { until : float }
  | W_parked of { until : float }

type worker = {
  wid : int;
  mutable state : wstate;
  mutable deaths : float list;  (** abnormal-death times, newest first *)
  mutable deaths_row : int;  (** consecutive; feeds the restart backoff *)
  mutable probation : bool;  (** one-strike period after unparking *)
}

type t = {
  wpolicy : wpolicy;
  q_limit : int;
  metrics : Obs.Metrics.t;
  rng : Util.Rng.t;  (** parent stream; each job splits a child *)
  ws : worker array;
  ready : job Queue.t;
  mutable delayed : (float * job) list;  (** awaiting retry; time-ascending *)
  mutable seq : int;
  mutable is_draining : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable rejected : int;
  mutable cancelled : int;
  mutable depth_max : int;
}

let create ?(queue_limit = 64) ?(seed = 1) ?metrics ~wpolicy () =
  if queue_limit < 1 then invalid_arg "Pool.create: queue_limit < 1";
  if wpolicy.workers < 1 then invalid_arg "Pool.create: workers < 1";
  if wpolicy.poison_crashes < 1 then
    invalid_arg "Pool.create: poison_crashes < 1";
  let metrics =
    match metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let t =
    {
      wpolicy;
      q_limit = queue_limit;
      metrics;
      rng = Util.Rng.create ~seed;
      ws =
        Array.init wpolicy.workers (fun wid ->
            {
              wid;
              state = W_starting;
              deaths = [];
              deaths_row = 0;
              probation = false;
            });
      ready = Queue.create ();
      delayed = [];
      seq = 0;
      is_draining = false;
      submitted = 0;
      completed = 0;
      failed = 0;
      rejected = 0;
      cancelled = 0;
      depth_max = 0;
    }
  in
  Obs.Metrics.set metrics "serve.pool.workers" (float_of_int wpolicy.workers);
  t

let queue_length t = Queue.length t.ready + List.length t.delayed
let queue_limit t = t.q_limit
let metrics t = t.metrics
let draining t = t.is_draining
let begin_drain t = t.is_draining <- true

let busy_count t =
  Array.fold_left
    (fun n w -> match w.state with W_busy _ -> n + 1 | _ -> n)
    0 t.ws

(* Admission bounds *live* jobs — queued, awaiting retry, and running —
   so a retry re-entering the queue can never overflow it. *)
let live t = queue_length t + busy_count t
let idle t = live t = 0

let set_depth_gauges t =
  let d = queue_length t in
  if d > t.depth_max then t.depth_max <- d;
  Obs.Metrics.set t.metrics "serve.queue_depth" (float_of_int d);
  Obs.Metrics.set t.metrics "serve.queue_depth_max" (float_of_int t.depth_max)

let set_pool_gauges t =
  let busy = ref 0 and idle = ref 0 and parked = ref 0 and down = ref 0 in
  Array.iter
    (fun w ->
      match w.state with
      | W_busy _ -> incr busy
      | W_idle -> incr idle
      | W_parked _ -> incr parked
      | W_starting | W_backoff _ -> incr down)
    t.ws;
  Obs.Metrics.set t.metrics "serve.pool.busy" (float_of_int !busy);
  Obs.Metrics.set t.metrics "serve.pool.idle" (float_of_int !idle);
  Obs.Metrics.set t.metrics "serve.pool.parked" (float_of_int !parked);
  Obs.Metrics.set t.metrics "serve.pool.down" (float_of_int !down)

let worker_state_name t wid =
  match t.ws.(wid).state with
  | W_starting -> "starting"
  | W_idle -> "idle"
  | W_busy _ -> "busy"
  | W_backoff _ -> "backoff"
  | W_parked _ -> "parked"

let boot t =
  set_pool_gauges t;
  Array.to_list (Array.map (fun w -> Spawn { wid = w.wid }) t.ws)

(* Stable time-ascending insert: equal release times keep FIFO order. *)
let rec insert_by_time l ((at, _) as entry) =
  match l with
  | [] -> [ entry ]
  | ((at0, _) as hd) :: tl ->
      if at < at0 then entry :: l else hd :: insert_by_time tl entry

let reject t ?id reason =
  t.rejected <- t.rejected + 1;
  Obs.Metrics.inc t.metrics
    ~labels:[ ("reason", Protocol.reject_tag reason) ]
    "serve.rejected";
  Protocol.Rejected { id; reason }

let live_ids t =
  let ids = ref [] in
  Queue.iter (fun j -> ids := j.j_sub.Protocol.sub_id :: !ids) t.ready;
  List.iter (fun (_, j) -> ids := j.j_sub.Protocol.sub_id :: !ids) t.delayed;
  Array.iter
    (fun w ->
      match w.state with
      | W_busy { job; _ } -> ids := job.j_sub.Protocol.sub_id :: !ids
      | _ -> ())
    t.ws;
  !ids

(* FIFO job onto the lowest-numbered idle worker. *)
let dispatch_ready t ~now =
  let acts = ref [] in
  let idle_wid () =
    let r = ref None in
    Array.iter
      (fun w ->
        if !r = None && w.state = W_idle then r := Some w.wid)
      t.ws;
    !r
  in
  let continue = ref true in
  while !continue do
    match (Queue.is_empty t.ready, idle_wid ()) with
    | false, Some wid ->
        let job = Queue.take t.ready in
        let policy = job.j_sub.Protocol.sub_policy in
        let recovery =
          Policy.recovery_for_attempt policy ~attempt:job.j_attempt
        in
        let deadline_at =
          Option.map (fun d -> now +. d) policy.Policy.deadline_s
        in
        t.ws.(wid).state <- W_busy { job; deadline_at; recovery };
        Obs.Metrics.inc t.metrics "serve.attempts";
        Obs.Metrics.inc t.metrics "serve.pool.dispatches";
        acts :=
          Dispatch
            {
              wid;
              sub = job.j_sub;
              attempt = job.j_attempt;
              recovery;
              deadline_s = policy.Policy.deadline_s;
            }
          :: !acts
    | _ -> continue := false
  done;
  set_depth_gauges t;
  set_pool_gauges t;
  List.rev !acts

let submit t ~now (sub : Protocol.submit) =
  t.submitted <- t.submitted + 1;
  Obs.Metrics.inc t.metrics "serve.submitted";
  if t.is_draining then (reject t ~id:sub.sub_id Protocol.Draining, [])
  else if live t >= t.q_limit then begin
    Obs.Metrics.inc t.metrics "serve.sheds";
    (reject t ~id:sub.sub_id Protocol.Queue_full, [])
  end
  else if List.mem sub.sub_id (live_ids t) then
    ( reject t ~id:sub.sub_id
        (Protocol.Bad_request
           (Printf.sprintf "job id %S is already live" sub.sub_id)),
      [] )
  else begin
    let job =
      {
        j_sub = sub;
        j_rng = Util.Rng.split t.rng ~index:t.seq;
        j_started = now;
        j_attempt = 0;
        j_crashed = [];
      }
    in
    t.seq <- t.seq + 1;
    Queue.add job t.ready;
    Obs.Metrics.inc t.metrics "serve.accepted";
    set_depth_gauges t;
    let resp =
      Protocol.Accepted { id = sub.sub_id; queue_depth = queue_length t }
    in
    (resp, dispatch_ready t ~now)
  end

(* ------------------------------------------------------------------ *)
(* Attempt resolution (shared by results, deaths, and deadline kills)  *)

let job_terminal t ~now job resp =
  let labels = [ ("id", job.j_sub.Protocol.sub_id) ] in
  Obs.Metrics.set t.metrics ~labels "serve.job.attempts"
    (float_of_int job.j_attempt);
  Obs.Metrics.set t.metrics ~labels "serve.job.elapsed_s"
    (now -. job.j_started);
  Respond resp

(* The job's just-finished attempt failed with [error]; retry with
   backoff if the policy allows, otherwise answer terminally. *)
let resolve_failure t ~now job (error : Protocol.error_info) =
  let policy = job.j_sub.Protocol.sub_policy in
  let id = job.j_sub.Protocol.sub_id in
  if error.e_retryable && job.j_attempt - 1 < policy.Policy.max_retries
  then begin
    let delay = Policy.backoff_s policy ~rng:job.j_rng ~attempt:job.j_attempt in
    Obs.Metrics.inc t.metrics "serve.retries";
    Obs.Metrics.observe t.metrics "serve.backoff_s" delay;
    t.delayed <- insert_by_time t.delayed (now +. delay, job);
    set_depth_gauges t;
    []
  end
  else begin
    t.failed <- t.failed + 1;
    Obs.Metrics.inc t.metrics
      ~labels:[ ("class", error.Protocol.e_tag) ]
      "serve.outcomes";
    [
      job_terminal t ~now job
        (Protocol.Result_error { id; attempts = job.j_attempt; error });
    ]
  end

let classify t ~now job ~recovery outcome =
  (match outcome with
  | Supervisor.A_timeout -> Obs.Metrics.inc t.metrics "serve.deadline_kills"
  | Supervisor.A_crashed _ -> Obs.Metrics.inc t.metrics "serve.crashes"
  | _ -> ());
  match outcome with
  | Supervisor.A_ok info ->
      t.completed <- t.completed + 1;
      Obs.Metrics.inc t.metrics ~labels:[ ("class", "ok") ] "serve.outcomes";
      let info =
        {
          info with
          Protocol.ok_recovery = Pipeline.recovery_to_string recovery;
        }
      in
      [
        job_terminal t ~now job
          (Protocol.Result_ok
             {
               id = job.j_sub.Protocol.sub_id;
               attempts = job.j_attempt;
               info;
             });
      ]
  | outcome ->
      let error =
        Supervisor.attempt_error
          ~policy:job.j_sub.Protocol.sub_policy
          ~path:(Protocol.submit_path job.j_sub)
          ~recovery outcome
      in
      resolve_failure t ~now job error

(* ------------------------------------------------------------------ *)
(* Worker-death bookkeeping: breaker + restart backoff                 *)

let restart_delay t (w : worker) =
  let p = t.wpolicy in
  let raw =
    p.restart_backoff_base_s
    *. (p.restart_backoff_factor ** float_of_int (max 0 (w.deaths_row - 1)))
  in
  Float.min p.restart_backoff_max_s raw

let record_death t ~now (w : worker) =
  Obs.Metrics.inc t.metrics "serve.pool.deaths";
  w.deaths_row <- w.deaths_row + 1;
  w.deaths <-
    now
    :: List.filter (fun d -> now -. d <= t.wpolicy.breaker_window_s) w.deaths;
  if w.probation || List.length w.deaths >= t.wpolicy.breaker_deaths then begin
    let until = now +. t.wpolicy.breaker_cooldown_s in
    w.probation <- false;
    w.state <- W_parked { until };
    Obs.Metrics.inc t.metrics "serve.pool.breaker_trips";
    [
      Note
        (Printf.sprintf
           "pool: worker %d parked for %.1fs (%d deaths in %.0fs window)"
           w.wid t.wpolicy.breaker_cooldown_s (List.length w.deaths)
           t.wpolicy.breaker_window_s);
    ]
  end
  else begin
    let delay = restart_delay t w in
    w.state <- W_backoff { until = now +. delay };
    [
      Note
        (Printf.sprintf "pool: worker %d died; restarting in %.3fs" w.wid
           delay);
    ]
  end

let poison_error job =
  let wids = List.sort compare job.j_crashed in
  {
    Protocol.e_tag = "poisoned";
    e_path = Protocol.submit_path job.j_sub;
    e_retryable = false;
    e_detail =
      Printf.sprintf
        "job crashed %d distinct workers (%s); quarantined to protect the pool"
        (List.length wids)
        (String.concat ", "
           (List.map (fun w -> "worker " ^ string_of_int w) wids));
  }

let handle t ~now event =
  match event with
  | E_spawned { wid } ->
      let w = t.ws.(wid) in
      (match w.state with
      | W_starting -> w.state <- W_idle
      | _ -> ());
      set_pool_gauges t;
      dispatch_ready t ~now
  | E_result { wid; outcome } -> (
      let w = t.ws.(wid) in
      match w.state with
      | W_busy { job; recovery; _ } ->
          w.state <- W_idle;
          (* a completed attempt proves the slot healthy *)
          w.deaths_row <- 0;
          w.probation <- false;
          job.j_attempt <- job.j_attempt + 1;
          let responds = classify t ~now job ~recovery outcome in
          set_pool_gauges t;
          responds @ dispatch_ready t ~now
      | _ ->
          [
            Note
              (Printf.sprintf
                 "pool: dropping result from %s worker %d"
                 (worker_state_name t wid) wid);
          ])
  | E_died { wid; detail } -> (
      let w = t.ws.(wid) in
      match w.state with
      | W_backoff _ | W_parked _ ->
          (* already accounted down; a late EOF changes nothing *)
          [ Note (Printf.sprintf "pool: stale death of worker %d ignored" wid) ]
      | (W_starting | W_idle | W_busy _) as prev ->
          let job_responds =
            match prev with
            | W_busy { job; recovery; _ } ->
                Obs.Metrics.inc t.metrics "serve.crashes";
                job.j_attempt <- job.j_attempt + 1;
                if not (List.mem wid job.j_crashed) then
                  job.j_crashed <- wid :: job.j_crashed;
                if List.length job.j_crashed >= t.wpolicy.poison_crashes
                then begin
                  t.failed <- t.failed + 1;
                  Obs.Metrics.inc t.metrics
                    ~labels:[ ("class", "poisoned") ]
                    "serve.outcomes";
                  Obs.Metrics.inc t.metrics "serve.pool.quarantined";
                  let error = poison_error job in
                  Note
                    (Printf.sprintf "pool: job %s quarantined: %s"
                       job.j_sub.Protocol.sub_id error.Protocol.e_detail)
                  :: [
                       job_terminal t ~now job
                         (Protocol.Result_error
                            {
                              id = job.j_sub.Protocol.sub_id;
                              attempts = job.j_attempt;
                              error;
                            });
                     ]
                end
                else
                  let error =
                    Supervisor.attempt_error
                      ~policy:job.j_sub.Protocol.sub_policy
                      ~path:(Protocol.submit_path job.j_sub)
                      ~recovery (Supervisor.A_crashed detail)
                  in
                  resolve_failure t ~now job error
            | _ -> []
          in
          let breaker_notes = record_death t ~now w in
          set_pool_gauges t;
          job_responds @ breaker_notes @ dispatch_ready t ~now)

let tick t ~now =
  let acts = ref [] in
  let push a = acts := a :: !acts in
  (* 1. release retries whose backoff elapsed (time order = FIFO) *)
  let ripe, later = List.partition (fun (at, _) -> at <= now) t.delayed in
  t.delayed <- later;
  List.iter (fun (_, job) -> Queue.add job t.ready) ripe;
  (* 2. deadline kills: the worker was healthy, the job was slow — the
     slot respawns immediately and the kill is not a breaker death *)
  Array.iter
    (fun w ->
      match w.state with
      | W_busy { job; deadline_at = Some d; recovery } when d <= now ->
          push (Kill { wid = w.wid });
          push (Spawn { wid = w.wid });
          w.state <- W_starting;
          Obs.Metrics.inc t.metrics "serve.pool.restarts";
          push
            (Note
               (Printf.sprintf
                  "pool: worker %d killed at job %s's deadline; respawning"
                  w.wid job.j_sub.Protocol.sub_id));
          job.j_attempt <- job.j_attempt + 1;
          List.iter push (classify t ~now job ~recovery Supervisor.A_timeout)
      | _ -> ())
    t.ws;
  (* 3. restart-backoff and breaker-cooldown expiries *)
  Array.iter
    (fun w ->
      match w.state with
      | W_backoff { until } when until <= now ->
          w.state <- W_starting;
          Obs.Metrics.inc t.metrics "serve.pool.restarts";
          push (Spawn { wid = w.wid })
      | W_parked { until } when until <= now ->
          w.state <- W_starting;
          w.probation <- true;
          Obs.Metrics.inc t.metrics "serve.pool.restarts";
          push
            (Note
               (Printf.sprintf
                  "pool: worker %d unparked on probation" w.wid));
          push (Spawn { wid = w.wid })
      | _ -> ())
    t.ws;
  set_pool_gauges t;
  List.rev !acts @ dispatch_ready t ~now

let next_wakeup t =
  let e = Util.Clock.earliest in
  let delayed = match t.delayed with [] -> None | (at, _) :: _ -> Some at in
  Array.fold_left
    (fun acc w ->
      match w.state with
      | W_busy { deadline_at; _ } -> e acc deadline_at
      | W_backoff { until } | W_parked { until } -> e acc (Some until)
      | W_starting | W_idle -> acc)
    delayed t.ws

let health t =
  Protocol.Health_report
    {
      queue_depth = queue_length t;
      queue_limit = t.q_limit;
      draining = t.is_draining;
      submitted = t.submitted;
      completed = t.completed;
      failed = t.failed;
      rejected = t.rejected;
      cancelled = t.cancelled;
    }

let drained_summary t ~cancelled =
  Protocol.Drained { jobs_run = t.completed + t.failed; cancelled }

let shutdown t ~now =
  ignore now;
  begin_drain t;
  let cancels = ref [] in
  let cancel (job : job) =
    t.cancelled <- t.cancelled + 1;
    Obs.Metrics.inc t.metrics "serve.cancelled";
    Protocol.Cancelled { id = job.j_sub.Protocol.sub_id }
  in
  Queue.iter (fun j -> cancels := cancel j :: !cancels) t.ready;
  Queue.clear t.ready;
  List.iter (fun (_, j) -> cancels := cancel j :: !cancels) t.delayed;
  t.delayed <- [];
  let kills = ref [] in
  Array.iter
    (fun w ->
      match w.state with
      | W_busy { job; _ } ->
          cancels := cancel job :: !cancels;
          kills := Kill { wid = w.wid } :: !kills;
          w.state <- W_starting
      | _ -> ())
    t.ws;
  set_depth_gauges t;
  set_pool_gauges t;
  let cancels = List.rev !cancels in
  ( cancels @ [ drained_summary t ~cancelled:(List.length cancels) ],
    List.rev !kills )

(* ------------------------------------------------------------------ *)
(* Simulated environment                                               *)

module Sim = struct
  type behavior =
    | B_ok of { dur : float; statements : int }
    | B_error of { dur : float; error : Protocol.error_info }
    | B_crash of { dur : float; detail : string }
    | B_hang

  type script =
    Protocol.submit ->
    attempt:int ->
    recovery:Pipeline.recovery ->
    behavior

  type input =
    | I_submit of Protocol.submit
    | I_kill of int
    | I_health
    | I_drain
    | I_shutdown

  type op = O_complete of Supervisor.attempt_outcome | O_die of string

  let run ?(spawn_delay_s = 0.01) ~pool ~script ~timeline () =
    let nw = Array.length pool.ws in
    let outcomes = ref [] in
    let now = ref 0. in
    let spawns = ref [] in
    let ops : (float * op) option array = Array.make nw None in
    let finished = ref false in
    let record r = outcomes := (!now, r) :: !outcomes in
    let perform acts =
      List.iter
        (fun a ->
          match a with
          | Spawn { wid } ->
              spawns := insert_by_time !spawns (!now +. spawn_delay_s, wid)
          | Kill { wid } -> ops.(wid) <- None
          | Dispatch { wid; sub; attempt; recovery; deadline_s = _ } -> (
              match script sub ~attempt ~recovery with
              | B_ok { dur; statements } ->
                  let info =
                    {
                      Protocol.ok_statements = statements;
                      ok_final_rsds = statements / 2;
                      ok_recovery = Pipeline.recovery_to_string recovery;
                      ok_warnings = [];
                      ok_text = None;
                      ok_out = None;
                    }
                  in
                  ops.(wid) <-
                    Some (!now +. dur, O_complete (Supervisor.A_ok info))
              | B_error { dur; error } ->
                  ops.(wid) <-
                    Some (!now +. dur, O_complete (Supervisor.A_error error))
              | B_crash { dur; detail } ->
                  ops.(wid) <- Some (!now +. dur, O_die detail)
              | B_hang -> ops.(wid) <- None)
          | Respond r -> record r
          | Note _ -> ())
        acts
    in
    perform (boot pool);
    let timeline = ref timeline in
    (* Candidate sources, ranked for deterministic same-time ordering:
       pool wakeups fire before spawn completions, before worker ops,
       before external inputs. *)
    let pick () =
      let best = ref None in
      let consider time rank payload =
        match !best with
        | Some (bt, br, _) when bt < time || (bt = time && br <= rank) -> ()
        | _ -> best := Some (time, rank, payload)
      in
      (match next_wakeup pool with
      | Some at -> consider at 0 `Tick
      | None -> ());
      (match !spawns with
      | (at, wid) :: _ -> consider at 1 (`Spawn wid)
      | [] -> ());
      Array.iteri
        (fun wid slot ->
          match slot with
          | Some (at, op) -> consider at 2 (`Op (wid, op))
          | None -> ())
        ops;
      (match !timeline with
      | (at, inp) :: _ -> consider at 3 (`Input inp)
      | [] -> ());
      !best
    in
    let alive wid =
      match pool.ws.(wid).state with
      | W_starting | W_idle | W_busy _ -> true
      | W_backoff _ | W_parked _ -> false
    in
    let guard = ref 0 in
    let quiescent = ref false in
    while (not !quiescent) && not !finished do
      incr guard;
      if !guard > 500_000 then
        failwith "Pool.Sim.run: scenario does not quiesce";
      match pick () with
      | None -> quiescent := true
      | Some (at, _, payload) -> (
          now := Float.max !now at;
          match payload with
          | `Tick -> perform (tick pool ~now:!now)
          | `Spawn wid ->
              spawns := List.tl !spawns;
              perform (handle pool ~now:!now (E_spawned { wid }))
          | `Op (wid, op) ->
              ops.(wid) <- None;
              perform
                (handle pool ~now:!now
                   (match op with
                   | O_complete outcome -> E_result { wid; outcome }
                   | O_die detail -> E_died { wid; detail }))
          | `Input inp -> (
              timeline := List.tl !timeline;
              match inp with
              | I_submit sub ->
                  let resp, acts = submit pool ~now:!now sub in
                  record resp;
                  perform acts
              | I_kill wid ->
                  ops.(wid) <- None;
                  spawns := List.filter (fun (_, w) -> w <> wid) !spawns;
                  if alive wid then
                    perform
                      (handle pool ~now:!now
                         (E_died { wid; detail = "killed by signal 9" }))
              | I_health -> record (health pool)
              | I_drain -> begin_drain pool
              | I_shutdown ->
                  let responses, acts = shutdown pool ~now:!now in
                  List.iter record responses;
                  perform acts;
                  finished := true))
    done;
    if draining pool && idle pool && not !finished then
      record (drained_summary pool ~cancelled:0);
    List.rev !outcomes
end
