(** The serve-mode wire protocol: line-delimited JSON.

    One request per line in, one response per line out, over stdin /
    stdout or a Unix-domain socket.  Every line the server emits is one
    of the typed {!response}s below — a client never sees prose-only
    failures, and every error carries a stable machine-readable [tag]
    (and the input file [path] when there is one), so clients can
    triage without parsing messages.

    Requests:
    {v
    {"op":"submit","id":"j1","trace":"/path/to/file.trace"}
    {"op":"submit","id":"j2","app":"lu","nranks":8,"cls":"W"}
    {"op":"health"}   {"op":"drain"}   {"op":"shutdown"}
    v}
    A submit may carry per-job policy overrides ([deadline_s],
    [max_retries], [backoff_base_s], [backoff_factor], [backoff_max_s],
    [jitter], [escalate], [recovery]) plus [out] (write the generated
    benchmark to this path) and [emit_text] (inline the .ncptl text in
    the response).

    Responses (all carry ["type"]):
    {v
    {"type":"accepted","id":"j1","queue_depth":2}
    {"type":"rejected","id":"j9","reason":"queue_full"}
    {"type":"result","id":"j1","ok":true,"attempts":1,"recovery":"strict",
     "statements":12,"final_rsds":3,"warnings":[{"tag":"salvaged","detail":"..."}]}
    {"type":"result","id":"j2","ok":false,"attempts":3,
     "error":{"tag":"unrecoverable_trace","path":"/bad.trace","retryable":true,"detail":"..."}}
    {"type":"cancelled","id":"j3"}
    {"type":"health","queue_depth":1,"queue_limit":8,"draining":false,
     "submitted":5,"completed":3,"failed":0,"rejected":1,"cancelled":0}
    {"type":"drained","jobs_run":7,"cancelled":0}
    v}

    Rendering uses {!Obs.Json}, which is deterministic, so equal
    responses serialize byte-identically — the fuzzer's same-seed
    transcript check depends on this. *)

type job_source =
  | J_file of string  (** path to a serialized trace *)
  | J_app of { app : string; nranks : int; cls : string }
      (** registry application to trace first *)

type submit = {
  sub_id : string;
  sub_source : job_source;
  sub_policy : Policy.t;  (** server default + request overrides *)
  sub_out : string option;  (** write the generated .ncptl here *)
  sub_emit_text : bool;  (** inline the .ncptl text in the response *)
}

type request = Submit of submit | Health | Drain | Shutdown

type reject_reason =
  | Queue_full  (** admission control shed the job *)
  | Draining  (** server is draining; no new work *)
  | Oversized of { bytes : int; limit : int }
      (** request line exceeds the configured maximum *)
  | Bad_request of string  (** unparseable or ill-typed request *)
  | Conn_limit of { limit : int }
      (** server is at its connection cap; this connection is closed
          after the rejection is written *)
  | Inflight_limit of { limit : int }
      (** this connection already has [limit] unresolved jobs
          (backpressure; resubmit after a result arrives) *)

(** ["queue_full"] | ["draining"] | ["oversized"] | ["bad_request"] |
    ["conn_limit"] | ["inflight_limit"]. *)
val reject_tag : reject_reason -> string

type error_info = {
  e_tag : string;
      (** stable machine tag: a {!Benchgen.Pipeline.error_tag}, or one
          of the serve-level tags ["deadline_exceeded"], ["crashed"],
          ["poisoned"] (the job's attempts killed two distinct pool
          workers and it was quarantined), ["unknown_app"],
          ["bad_class"] *)
  e_path : string option;  (** input trace file, when the job had one *)
  e_retryable : bool;
      (** whether the supervisor considers this failure worth retrying
          (with escalated recovery) *)
  e_detail : string;  (** human-readable diagnostic *)
}

type ok_info = {
  ok_statements : int;
  ok_final_rsds : int;
  ok_recovery : string;  (** recovery level of the successful attempt *)
  ok_warnings : (string * string) list;  (** (stable tag, detail) *)
  ok_text : string option;  (** .ncptl text when [sub_emit_text] *)
  ok_out : string option;  (** path written when [sub_out] *)
}

type response =
  | Accepted of { id : string; queue_depth : int }
  | Rejected of { id : string option; reason : reject_reason }
  | Result_ok of { id : string; attempts : int; info : ok_info }
  | Result_error of { id : string; attempts : int; error : error_info }
  | Cancelled of { id : string }  (** job was queued when the server shut down *)
  | Health_report of {
      queue_depth : int;
      queue_limit : int;
      draining : bool;
      submitted : int;
      completed : int;
      failed : int;
      rejected : int;
      cancelled : int;
    }
  | Drained of { jobs_run : int; cancelled : int }

(** The input trace path of a submit, when its source is a file. *)
val submit_path : submit -> string option

(** [error_of_gen_error ?path e] maps a typed pipeline error to the
    wire shape: tag from {!Benchgen.Pipeline.error_tag}, [path]
    attached structurally, retryability classified (everything except
    [E_io] can improve under an escalated recovery level). *)
val error_of_gen_error :
  ?path:string -> Benchgen.Pipeline.gen_error -> error_info

(** [parse_request ~default_policy ~max_bytes line] — parse one request
    line.  Lines longer than [max_bytes] are rejected as [Oversized]
    without being parsed; malformed JSON, unknown ops, and ill-typed
    fields as [Bad_request] (with the request's [id] echoed when it
    could still be extracted). *)
val parse_request :
  default_policy:Policy.t ->
  max_bytes:int ->
  string ->
  (request, string option * reject_reason) result

val response_to_json : response -> Obs.Json.t

(** Deterministic one-line rendering (no trailing newline). *)
val response_to_line : response -> string

(** Parse a response line back (used by tests, the fuzzer, and smoke
    clients).  @raise Obs.Json.Parse_error on non-protocol lines. *)
val response_of_line : string -> response
