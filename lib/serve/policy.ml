module Pipeline = Benchgen.Pipeline

type t = {
  deadline_s : float option;
  max_retries : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  jitter : float;
  escalate : bool;
  recovery : Pipeline.recovery;
}

let default =
  {
    deadline_s = None;
    max_retries = 2;
    backoff_base_s = 0.05;
    backoff_factor = 2.0;
    backoff_max_s = 5.0;
    jitter = 0.25;
    escalate = true;
    recovery = `Strict;
  }

let backoff_s t ~rng ~attempt =
  if attempt < 1 then invalid_arg "Policy.backoff_s: attempt < 1";
  let raw =
    t.backoff_base_s *. (t.backoff_factor ** float_of_int (attempt - 1))
  in
  let capped = Float.min t.backoff_max_s raw in
  capped *. (1. +. (t.jitter *. Util.Rng.float rng))

let recovery_rank = function `Strict -> 0 | `Salvage -> 1 | `Best_effort -> 2
let recovery_of_rank = function 0 -> `Strict | 1 -> `Salvage | _ -> `Best_effort

let recovery_for_attempt t ~attempt =
  if not t.escalate then t.recovery
  else recovery_of_rank (min 2 (recovery_rank t.recovery + attempt))

(* ------------------------------------------------------------------ *)
(* Request-object overrides                                            *)

let ( let* ) = Result.bind

let field_num j name =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.Num v) -> Ok (Some v)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" name)

let field_bool j name =
  match Obs.Json.member name j with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let override_from_json t j =
  let* deadline = field_num j "deadline_s" in
  let* retries = field_num j "max_retries" in
  let* base = field_num j "backoff_base_s" in
  let* factor = field_num j "backoff_factor" in
  let* cap = field_num j "backoff_max_s" in
  let* jitter = field_num j "jitter" in
  let* escalate = field_bool j "escalate" in
  let* recovery =
    match Obs.Json.member "recovery" j with
    | None | Some Obs.Json.Null -> Ok None
    | Some (Obs.Json.Str s) ->
        Result.map Option.some (Pipeline.recovery_of_string s)
    | Some _ -> Error "field \"recovery\" must be a string"
  in
  let* () =
    match retries with
    | Some r when r < 0. -> Error "max_retries must be >= 0"
    | _ -> Ok ()
  in
  let* () =
    match deadline with
    | Some d when d <= 0. -> Error "deadline_s must be > 0"
    | _ -> Ok ()
  in
  Ok
    {
      deadline_s = (match deadline with None -> t.deadline_s | d -> d);
      max_retries =
        (match retries with
        | None -> t.max_retries
        | Some r -> int_of_float r);
      backoff_base_s = Option.value ~default:t.backoff_base_s base;
      backoff_factor = Option.value ~default:t.backoff_factor factor;
      backoff_max_s = Option.value ~default:t.backoff_max_s cap;
      jitter = Option.value ~default:t.jitter jitter;
      escalate = Option.value ~default:t.escalate escalate;
      recovery = Option.value ~default:t.recovery recovery;
    }
