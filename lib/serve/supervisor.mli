(** The serve-mode job supervisor: a bounded FIFO queue of pipeline
    jobs, each run under its {!Policy.t} — per-attempt deadline,
    bounded retries with seeded exponential backoff, recovery
    escalation, and exception isolation (a runner that raises is a
    ["crashed"] attempt, never a supervisor crash).

    The supervisor is deliberately {e deterministic and I/O-free}: how
    attempts actually execute (forked worker processes, in-process
    calls, or the fuzzer's synthetic jobs) is the injected {!runner}'s
    business, and time comes from the injected {!clock}.  Under
    {!sim_clock} and a deterministic runner, a fixed seed yields a
    byte-identical response transcript — the contract the serve fuzzer
    checks.

    Responsibilities split: the supervisor decides {e admission}
    (bounded queue, load shedding), {e scheduling} (FIFO), and
    {e recovery policy} (retry / escalate / give up); the runner
    decides {e execution} (and enforces the per-attempt deadline,
    reporting {!A_timeout} when it kills the attempt). *)

(** Time source.  [now] is monotonic seconds; [sleep] blocks for the
    backoff delays. *)
type clock = { now : unit -> float; sleep : float -> unit }

(** {!Util.Clock} wall time; [sleep] really sleeps. *)
val system_clock : clock

(** A fresh virtual clock starting at [0.]; [sleep] advances [now]
    instantly.  Deterministic tests and the serve fuzzer run on this. *)
val sim_clock : unit -> clock

type attempt_outcome =
  | A_ok of Protocol.ok_info
  | A_error of Protocol.error_info
  | A_timeout  (** the attempt hit its wall-clock deadline and was killed *)
  | A_crashed of string  (** the attempt died abnormally *)

(** Execute one attempt of a job at the given recovery level, honoring
    [deadline_s].  A raised exception is isolated into {!A_crashed}. *)
type runner =
  Protocol.submit ->
  recovery:Benchgen.Pipeline.recovery ->
  deadline_s:float option ->
  attempt_outcome

(** Map a failed attempt to the wire error: [A_error] passes through,
    [A_timeout] becomes ["deadline_exceeded"], [A_crashed] becomes
    ["crashed"] (both retryable).  Shared by this supervisor and the
    worker {!Pool} so both engines describe the same failure with the
    same response.  @raise Invalid_argument on [A_ok]. *)
val attempt_error :
  policy:Policy.t ->
  path:string option ->
  recovery:Benchgen.Pipeline.recovery ->
  attempt_outcome ->
  Protocol.error_info

type t

(** [create ~runner ~clock ()].  [queue_limit] (default 64) bounds the
    number of queued jobs; submissions beyond it are shed.  [seed]
    (default 1) drives backoff jitter: each executed job gets an
    independent {!Util.Rng.split} stream, so schedules are reproducible
    regardless of interleaving.  [metrics] (default a fresh registry)
    accumulates the [serve.*] instruments. *)
val create :
  ?queue_limit:int ->
  ?seed:int ->
  ?metrics:Obs.Metrics.t ->
  runner:runner ->
  clock:clock ->
  unit ->
  t

(** Admission control: enqueue and return [Accepted] (with the new
    queue depth), or shed with [Rejected Queue_full] / [Rejected
    Draining].  Never runs the job. *)
val submit : t -> Protocol.submit -> Protocol.response

(** Record an out-of-band rejection (parse failure, oversized line) in
    the supervisor's counters and return the [Rejected] response. *)
val reject : t -> ?id:string -> Protocol.reject_reason -> Protocol.response

(** Pop the oldest queued job and run it to a terminal response
    ([Result_ok] / [Result_error]), applying the full supervision
    policy: per-attempt deadline (enforced by the runner), retries with
    backoff sleeps on the supervisor's clock, recovery escalation, and
    crash isolation.  [None] when the queue is empty. *)
val run_next : t -> Protocol.response option

val queue_length : t -> int
val queue_limit : t -> int

(** Stop admitting: all subsequent submits are [Rejected Draining]. *)
val begin_drain : t -> unit

val draining : t -> bool

(** Finish every queued job (in order), then return the terminal
    responses followed by a [Drained] summary. *)
val drain : t -> Protocol.response list

(** Cancel every queued job: one [Cancelled] per job (in order),
    followed by a [Drained] summary.  The supervisor drains afterwards
    (no new admissions). *)
val shutdown : t -> Protocol.response list

val health : t -> Protocol.response
val metrics : t -> Obs.Metrics.t
