(** Per-job supervision policy for serve mode.

    A policy bounds one job's resource use (wall-clock deadline per
    attempt), its failure handling (bounded retries with exponential
    backoff and seeded jitter), and its degradation path (the recovery
    level escalates [`Strict] → [`Salvage] → [`Best_effort] across
    retries, so a job whose strict generation fails can still produce a
    runnable — if shorter — benchmark instead of failing hard).

    All randomness (jitter) flows through an explicit {!Util.Rng.t}, so
    a supervisor with a fixed seed produces a bit-identical backoff
    schedule — the serve fuzzer and the unit tests rely on this. *)

type t = {
  deadline_s : float option;
      (** wall-clock budget for {e each attempt}; the attempt is killed
          (fork isolation) or abandoned when it is exceeded.  [None]
          disables the deadline. *)
  max_retries : int;  (** retries after the first attempt (so a job runs
          at most [max_retries + 1] times) *)
  backoff_base_s : float;  (** delay before the first retry *)
  backoff_factor : float;  (** delay multiplier per further retry *)
  backoff_max_s : float;  (** cap on the un-jittered delay *)
  jitter : float;
      (** jitter fraction in [0, 1]: the delay is multiplied by a
          uniform draw from [1, 1 + jitter) *)
  escalate : bool;
      (** escalate the recovery level by one step per retry (saturating
          at [`Best_effort]); when [false] every attempt runs at
          [recovery] *)
  recovery : Benchgen.Pipeline.recovery;  (** recovery level of the first attempt *)
}

(** deadline [None]; 2 retries; backoff 50 ms doubling, capped at 5 s,
    jitter 0.25; escalation on; [`Strict] first attempt. *)
val default : t

(** [backoff_s t ~rng ~attempt] is the delay before retry [attempt]
    (1-based: [1] precedes the second run of the job):
    [min backoff_max_s (backoff_base_s * backoff_factor^(attempt-1))]
    times a jitter draw from [rng].
    @raise Invalid_argument if [attempt < 1]. *)
val backoff_s : t -> rng:Util.Rng.t -> attempt:int -> float

(** Recovery level of attempt [attempt] (0-based: [0] is the first
    run): [recovery] stepped [attempt] levels toward [`Best_effort]
    when [escalate], else [recovery]. *)
val recovery_for_attempt : t -> attempt:int -> Benchgen.Pipeline.recovery

(** [override_from_json t j] reads the optional policy fields of a
    submit request object ([deadline_s], [max_retries],
    [backoff_base_s], [backoff_factor], [backoff_max_s], [jitter],
    [escalate], [recovery]) on top of [t].  Unknown recovery spellings
    and ill-typed fields are errors. *)
val override_from_json : t -> Obs.Json.t -> (t, string) result
