(** A persistent forked pool worker.

    Unlike {!Isolate.run_forked} (a fresh fork per attempt), a pool
    worker is forked once per {!Pool.Spawn} and then loops: read one
    marshaled request from its request pipe, run {!Isolate.attempt} in
    its own process, marshal the reply back, repeat.  The fork cost is
    paid per worker lifetime instead of per attempt; crash isolation is
    unchanged (a segfaulting or [exit]ing job kills only the worker,
    which the pool observes as EOF on the reply pipe and restarts).

    In-process exceptions raised by an attempt are caught inside the
    worker and reported as {!R_raised} — the worker {e survives} them;
    only hard process deaths surface as {!read_step} [`Eof]. *)

type reply =
  | R_result of Isolate.worker_result
  | R_raised of string  (** the attempt raised; the worker is still up *)

type t

(** [spawn ~wid ~close_fds ()] forks a worker for slot [wid].  The
    child closes every descriptor in [close_fds ()] (client
    connections, listeners, the other workers' pipes) and redirects
    its stdin/stdout to [/dev/null] — fd 1 may be a protocol stream in
    the parent and must never receive stray bytes — then enters the
    request loop.  Never returns in the child. *)
val spawn : wid:int -> close_fds:(unit -> Unix.file_descr list) -> unit -> t

val pid : t -> int
val wid : t -> int

(** The reply pipe's read end, for the server's [select] set. *)
val fd : t -> Unix.file_descr

(** Both pipe ends, for sibling workers' [close_fds] lists. *)
val pipe_fds : t -> Unix.file_descr list

(** Write one attempt request to the worker.  @raise Unix.Unix_error
    (e.g. [EPIPE]) if the worker is dead — the caller should treat
    that as the worker's death. *)
val send :
  t -> Protocol.submit -> recovery:Benchgen.Pipeline.recovery -> unit

(** Non-blocking-style incremental read, to be called when {!fd} is
    readable: consume available bytes and return a complete reply once
    one has accumulated.  [`Eof] means the worker died (or exited).
    @raise Failure on an undecodable reply stream. *)
val read_step : t -> [ `Reply of reply | `Eof | `Again ]

(** [SIGKILL] the worker, reap it, close its pipes.  Idempotent. *)
val kill : t -> unit
