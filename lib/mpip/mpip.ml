type cell = { mutable calls : int; mutable bytes : int }

type t = { table : (string, cell) Hashtbl.t }

type entry = { op_name : string; calls : int; bytes : int }

let create () = { table = Hashtbl.create 32 }

let record t ~world_rank ~(call : Mpisim.Call.t) =
  match call.op with
  | Compute _ | Wtime -> ()
  | op ->
      let name = Mpisim.Call.op_name op in
      let cell =
        match Hashtbl.find_opt t.table name with
        | Some c -> c
        | None ->
            let c = { calls = 0; bytes = 0 } in
            Hashtbl.replace t.table name c;
            c
      in
      let p = Mpisim.Comm.size call.comm in
      let rank =
        match Mpisim.Comm.local_of_world call.comm world_rank with
        | Some l -> l
        | None -> 0
      in
      cell.calls <- cell.calls + 1;
      cell.bytes <- cell.bytes + Mpisim.Call.local_bytes op ~p ~rank

let hook t =
  {
    Mpisim.Hooks.nil with
    on_enter = (fun ~world_rank ~time:_ call -> record t ~world_rank ~call);
  }

let entries t =
  Hashtbl.fold
    (fun op_name (c : cell) acc -> { op_name; calls = c.calls; bytes = c.bytes } :: acc)
    t.table []
  |> List.sort (fun a b -> String.compare a.op_name b.op_name)

let total_calls t = List.fold_left (fun acc e -> acc + e.calls) 0 (entries t)
let total_bytes t = List.fold_left (fun acc e -> acc + e.bytes) 0 (entries t)

let diff a b =
  let names =
    List.sort_uniq String.compare
      (List.map (fun e -> e.op_name) (entries a)
      @ List.map (fun e -> e.op_name) (entries b))
  in
  List.filter_map
    (fun name ->
      let find t =
        match Hashtbl.find_opt t.table name with
        | Some c -> (c.calls, c.bytes)
        | None -> (0, 0)
      in
      let ca, ba = find a and cb, bb = find b in
      if ca = cb && ba = bb then None
      else
        Some
          (Printf.sprintf "%s: calls %d vs %d, bytes %d vs %d" name ca cb ba bb))
    names

let equal a b = diff a b = []

let record_metrics t (m : Obs.Metrics.t) =
  List.iter
    (fun e ->
      let labels = [ ("op", e.op_name) ] in
      Obs.Metrics.inc m ~labels ~by:e.calls "mpi.calls";
      Obs.Metrics.inc m ~labels ~by:e.bytes "mpi.bytes")
    (entries t)

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%-20s %8d calls %12d bytes@." e.op_name e.calls e.bytes)
    (entries t)
