(** mpiP-like lightweight MPI profiling.

    Gathers per-operation event counts and byte volumes across all ranks of
    a simulated run.  Section 5.2 of the paper verifies generated
    benchmarks by checking that these statistics match the original
    application's exactly; this module provides both the collection hook
    and the comparison. *)

type t

(** Per-operation aggregate. *)
type entry = { op_name : string; calls : int; bytes : int }

val create : unit -> t

(** The {!Mpisim.Hooks.t} to pass to [Mpi.run].  [Compute] and [MPI_Wtime]
    pseudo-calls are not profiled. *)
val hook : t -> Mpisim.Hooks.t

(** Aggregates sorted by operation name. *)
val entries : t -> entry list

val total_calls : t -> int
val total_bytes : t -> int

(** [diff a b] lists human-readable discrepancies between two profiles;
    empty means the profiles agree (same ops, counts, and volumes). *)
val diff : t -> t -> string list

val equal : t -> t -> bool

(** Fold the profile into a metrics registry: counters ["mpi.calls"] and
    ["mpi.bytes"], one label set [("op", <operation>)] per operation. *)
val record_metrics : t -> Obs.Metrics.t -> unit

val pp : Format.formatter -> t -> unit
