(** The MPI-like API applications are written against.

    Every function must be called from inside a rank fiber running under
    {!Engine.run} (re-exported here as {!run}).  Ranks in arguments and
    results are communicator-local; [?comm] defaults to the world
    communicator.  [?site] attaches a call-site signature used by the
    tracer's loop compression and by the benchmark generator's collective
    alignment; pass [~site:(Util.Callsite.make __POS__)] (or use the
    [site] helper) at distinct source locations. *)

type ctx = Engine.ctx = { rank : int; nranks : int; world : Comm.t }

(** Alias for [Util.Callsite.make]: [site __POS__] or
    [site ~label:"exchange" __POS__]. *)
val site : ?label:string -> string * int * int * int -> Util.Callsite.t

val run :
  ?hooks:Hooks.t list ->
  ?net:Netmodel.t ->
  ?fault:Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?matcher:Matchq.impl ->
  ?coll_alg:Coll_alg.t ->
  ?obs:Obs.Sink.t ->
  ?obs_sample_every:int ->
  nranks:int ->
  (ctx -> unit) ->
  Engine.outcome

(** {1 Point-to-point} *)

val send :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?tag:int -> ctx -> dst:int -> bytes:int -> unit

val isend :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?tag:int -> ctx -> dst:int -> bytes:int ->
  Call.request

val recv :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?tag:Call.tag_match -> ctx ->
  src:Call.source -> bytes:int -> Call.status

val irecv :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?tag:Call.tag_match -> ctx ->
  src:Call.source -> bytes:int -> Call.request

val wait : ?site:Util.Callsite.t -> ctx -> Call.request -> Call.status
val waitall : ?site:Util.Callsite.t -> ctx -> Call.request list -> Call.status array

(** [sendrecv] posts the receive, sends, then waits for both — the usual
    deadlock-free exchange. *)
val sendrecv :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?tag:int -> ctx ->
  dst:int -> send_bytes:int -> src:Call.source -> recv_bytes:int -> Call.status

(** {1 Collectives} *)

val barrier : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> unit
val bcast : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes:int -> unit
val reduce : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes:int -> unit
val allreduce : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes:int -> unit

val gather :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes_per_rank:int -> unit

val gatherv :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes_from:int array -> unit

val allgather : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes_per_rank:int -> unit
val allgatherv : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes_from:int array -> unit

val scatter :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes_per_rank:int -> unit

val scatterv :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> root:int -> bytes_to:int array -> unit

val alltoall : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes_per_pair:int -> unit
val alltoallv : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes_to:int array -> unit

val reduce_scatter :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> bytes_per_rank:int array -> unit

(** {1 Neighborhood collectives}

    Sparse collectives over per-rank neighbor lists.  [?parts] is the
    declared participant set (sorted communicator-local ranks; default
    the whole communicator): every rank in it must make the call, and
    the operation synchronizes exactly that set — not the whole
    communicator.  [neighbors] is this caller's sorted
    communicator-local neighbor list, a subset of the participant set
    without the caller.  When every participant declares the same
    rank-relative offsets (a stencil), the engine prices the exchange
    with a compact message-combining round schedule (see {!Coll_alg}). *)

val neighbor_alltoall :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?parts:int array -> ctx ->
  neighbors:int array -> bytes_per_neighbor:int -> unit

val neighbor_allgather :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ?parts:int array -> ctx ->
  neighbors:int array -> bytes:int -> unit

(** {1 Communicator management} *)

val comm_split :
  ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> color:int -> key:int -> Comm.t

val comm_dup : ?site:Util.Callsite.t -> ?comm:Comm.t -> ctx -> Comm.t

(** {1 Environment} *)

(** [compute ctx seconds] — local work: advances this rank's clock. *)
val compute : ?site:Util.Callsite.t -> ctx -> float -> unit

val wtime : ctx -> float
val finalize : ?site:Util.Callsite.t -> ctx -> unit

(** [comm_rank comm ctx] / [comm_size comm] — local rank of the caller and
    size. @raise Engine.Mpi_error if the caller is not a member. *)
val comm_rank : Comm.t -> ctx -> int

val comm_size : Comm.t -> int
