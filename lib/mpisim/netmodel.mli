(** Network performance model.

    A LogGP-flavoured analytic model extended with the two MPI-library
    mechanisms the paper's Figure 7 discussion hinges on: an
    unexpected-message queue with a per-byte copy penalty, and sender-side
    flow control with a stall/resume cost once a receiver's unexpected
    buffer fills.  All times are seconds, sizes bytes. *)

type t = {
  latency : float;  (** wire latency L per message *)
  overhead : float;  (** CPU overhead o per send/recv call *)
  byte_time : float;  (** per-byte transfer time G (1/bandwidth) *)
  rx_copy_per_byte : float;
      (** receiver-side per-byte processing cost: every arriving message
          occupies the receiver's progress engine for
          [overhead + bytes * rx_copy_per_byte], serialized per rank — the
          "messages arriving faster than they can be processed" mechanism
          of the paper's Section 5.4 discussion *)
  eager_threshold : int;
      (** messages of at most this many bytes use the eager protocol;
          larger ones rendezvous *)
  unexpected_copy_per_byte : float;
      (** extra receiver cost per byte when the matching receive was posted
          after the (eager) message arrived *)
  unexpected_buffer_bytes : int;
      (** per-receiver capacity for buffered unexpected eager data; when
          exceeded, senders stall until the receiver drains *)
  resume_latency : float;
      (** penalty for re-starting a flow-controlled sender *)
  collective_dispatch : float;
      (** fixed software cost added to every collective.  Invariant: it is
          charged {b once per logical collective} per rank, never once per
          schedule round — both the analytic costs below (which bake it in)
          and the engine's pluggable-schedule path ({!Coll_alg}) obey this;
          per-round costs come from the p2p parameters via {!round_cost}.
          Pinned by the [dispatch charged once] unit test. *)
}

(** Parameters evoking Blue Gene/L's torus+tree interconnect: low latency,
    high bandwidth, large eager buffers. *)
val bluegene_l : t

(** Parameters evoking a commodity Ethernet cluster: high latency, modest
    bandwidth, small unexpected buffers — the Section 5.4 platform where
    Figure 7's non-monotonic behaviour appears. *)
val ethernet_cluster : t

(** [scale ?latency ?bandwidth t] — a perturbed copy of [t]: wire latency
    and CPU overhead multiplied by [latency], bandwidth multiplied by
    [bandwidth] (i.e. per-byte time divided).  Used by the noise-validation
    harness to probe timing fidelity under degraded networks.
    @raise Invalid_argument on non-positive factors. *)
val scale : ?latency:float -> ?bandwidth:float -> t -> t

(** Point-to-point transfer time for a [bytes]-sized message, excluding
    queueing effects: [latency + bytes * byte_time]. *)
val transfer_time : t -> bytes:int -> float

val is_eager : t -> bytes:int -> bool

(** Cost of one round of a collective schedule ({!Coll_alg}) moving
    [bytes] between two ranks that enter the round together:
    [latency + 2*overhead + bytes*byte_time].  Excludes
    [collective_dispatch], which the engine charges once per logical
    collective, not per round. *)
val round_cost : t -> bytes:int -> float

(** Analytic completion costs of collectives once all participants have
    arrived, as functions of participant count [p] and payload size. *)

val barrier_cost : t -> p:int -> float
val bcast_cost : t -> p:int -> bytes:int -> float
val reduce_cost : t -> p:int -> bytes:int -> float
val allreduce_cost : t -> p:int -> bytes:int -> float

(** Rooted gather/scatter with possibly per-rank sizes; [total] is the sum
    over non-root participants. *)
val gather_cost : t -> p:int -> total:int -> float

val allgather_cost : t -> p:int -> total:int -> float
val alltoall_cost : t -> p:int -> total:int -> float

(** Sparse neighborhood exchange: [degree] serialized stages of [bytes]
    each — the dense all-to-all cost restricted to the caller's neighbor
    count. *)
val neighbor_cost : t -> degree:int -> bytes:int -> float

val reduce_scatter_cost : t -> p:int -> total:int -> float

val pp : Format.formatter -> t -> unit
