(** Message-matching queues of the simulation engine.

    MPI matching is FIFO per pattern: a posted receive consumes the
    earliest-arriving unexpected message whose (source, tag, communicator)
    it accepts, and an arriving message completes the earliest-posted
    receive that accepts it.  Both directions admit wildcards
    ([MPI_ANY_SOURCE] / [MPI_ANY_TAG]) on the receive side only.

    Two interchangeable implementations back each queue:

    - [`Indexed] — a hash index keyed by (src, tag, comm) over
      {!Util.Deque} FIFOs, giving amortized O(1) matching for concrete
      patterns.  Wildcard receives still scan in arrival order (the
      engine's deterministic wildcard policy), and an arriving message
      checks at most the four posted-pattern buckets that could accept it.
    - [`Reference] — the original O(n) list scan, kept as the semantic
      oracle for differential tests and for the perf harness's baseline.

    Both produce identical matches on every input; [test/test_engine.ml]
    asserts this across the full application registry. *)

type protocol = Eager | Rendezvous

type msg = {
  m_src : int; (* world ranks *)
  m_dst : int;
  m_tag : int;
  m_bytes : int;
  m_comm : int;
  m_protocol : protocol;
  m_arrival : float; (* eager: data arrival; rendezvous: RTS arrival *)
  m_send_req : int;
  mutable m_reserved : bool; (* counted against dst's unexpected buffer *)
}

type posted = {
  p_req : int;
  p_src : int option; (* world rank; None = MPI_ANY_SOURCE *)
  p_tag : int option; (* None = MPI_ANY_TAG *)
  p_comm : int;
  p_time : float;
}

(** Does message [m] satisfy posted pattern [p]? *)
val msg_matches_posted : msg -> posted -> bool

type impl = [ `Indexed | `Reference ]

(** Unexpected-message queue: messages that arrived before a matching
    receive was posted, consumed in arrival order. *)
module Unexpected : sig
  type t

  val create : impl -> t
  val length : t -> int
  val add : t -> msg -> unit

  (** [take t p] — remove and return the earliest-arriving message
      matching [p], if any. *)
  val take : t -> posted -> msg option

  (** Observability depths.  [bucket_count] is the number of allocated
      (src, tag, comm) index buckets ([0] for [`Reference], which has no
      index); [raw_length] is the master arrival deque's physical length
      including dead cells — [raw_length t - length t] measures garbage
      awaiting compaction. *)
  val bucket_count : t -> int

  val raw_length : t -> int
end

(** Posted-receive queue: receives waiting for their message, consumed in
    post order. *)
module Posted : sig
  type t

  val create : impl -> t
  val length : t -> int
  val add : t -> posted -> unit

  (** [take t ~src ~tag ~comm] — remove and return the earliest-posted
      receive accepting a message with these coordinates, if any. *)
  val take : t -> src:int -> tag:int -> comm:int -> posted option

  (** Non-destructive: would [take] succeed? *)
  val mem : t -> src:int -> tag:int -> comm:int -> bool

  (** Allocated pattern-shape buckets in the index; [0] for
      [`Reference]. *)
  val bucket_count : t -> int
end
