type alg =
  [ `Monolithic | `Ring | `Recursive_doubling | `Binomial | `Rabenseifner ]

type t = [ alg | `Auto ]

type xfer = { x_src : int; x_dst : int; x_bytes : int }
type round = xfer list
type schedule = round list

let name : t -> string = function
  | `Monolithic -> "monolithic"
  | `Ring -> "ring"
  | `Recursive_doubling -> "recursive-doubling"
  | `Binomial -> "binomial"
  | `Rabenseifner -> "rabenseifner"
  | `Auto -> "auto"

let all : t list =
  [ `Monolithic; `Ring; `Recursive_doubling; `Binomial; `Rabenseifner; `Auto ]

let schedules : alg list =
  [ `Ring; `Recursive_doubling; `Binomial; `Rabenseifner ]

let of_string s : (t, string) result =
  match List.find_opt (fun a -> name a = s) all with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown collective algorithm %S (expected %s)" s
           (String.concat ", " (List.map name all)))

let describe : t -> string = function
  | `Monolithic -> "analytic Netmodel cost (the reference and oracle)"
  | `Ring -> "ring: p-1 rounds; allreduce (full vector), allgather"
  | `Recursive_doubling ->
      "pairwise XOR exchanges, log2 p rounds; allreduce, barrier, \
       allgather; power-of-two communicators"
  | `Binomial -> "binomial tree, ceil(log2 p) rounds; bcast, reduce"
  | `Rabenseifner ->
      "reduce-scatter + allgather allreduce, 2*log2 p rounds; \
       power-of-two communicators"
  | `Auto -> "pick per operation, payload, and communicator size"

let is_pow2 p = p > 0 && p land (p - 1) = 0

(* Payloads at most this size count as latency-bound for `Auto (the
   classic MPICH-style switch point). *)
let auto_small_bytes = 4096

let applies (a : alg) ~(op : Call.op) ~p =
  if p < 2 then a = `Monolithic
  else
    match (a, op) with
    | `Monolithic, _ -> true
    | _, (Call.Comm_split _ | Call.Comm_dup | Call.Finalize) -> false
    | `Ring, (Call.Allreduce _ | Call.Allgather _) -> true
    | `Ring, _ -> false
    | `Recursive_doubling, (Call.Allreduce _ | Call.Barrier | Call.Allgather _)
      ->
        is_pow2 p
    | `Recursive_doubling, _ -> false
    | `Binomial, (Call.Bcast _ | Call.Reduce _) -> true
    | `Binomial, _ -> false
    | `Rabenseifner, Call.Allreduce _ -> is_pow2 p
    | `Rabenseifner, _ -> false

(* The `Auto mapping (also the README selection table — keep in sync):
   latency-bound cases take the fewest rounds, bandwidth-bound cases the
   least per-rank traffic; anything a schedule cannot express stays
   monolithic. *)
let auto_pick ~(op : Call.op) ~p : alg =
  match op with
  | Call.Allreduce { bytes } ->
      if bytes <= auto_small_bytes then
        if is_pow2 p then `Recursive_doubling else `Monolithic
      else if is_pow2 p then `Rabenseifner
      else `Ring
  | Call.Bcast _ | Call.Reduce _ -> `Binomial
  | Call.Barrier -> if is_pow2 p then `Recursive_doubling else `Monolithic
  | Call.Allgather { bytes_per_rank } ->
      if bytes_per_rank * p > auto_small_bytes then `Ring
      else if is_pow2 p then `Recursive_doubling
      else `Monolithic
  | _ -> `Monolithic

let select (t : t) ~op ~p : alg =
  let a = match t with `Auto -> auto_pick ~op ~p | #alg as a -> a in
  if applies a ~op ~p then a else `Monolithic

(* ------------------------------------------------------------------ *)
(* Schedule construction.  All builders assume [applies] held.          *)

let log2 p =
  let rec go acc n = if n >= p then acc else go (acc + 1) (n * 2) in
  if p <= 1 then 0 else go 0 1

(* Ring: in every round each rank passes one block to its successor. *)
let ring_rounds ~p ~bytes_of_round =
  List.init (p - 1) (fun k ->
      List.init p (fun r ->
          { x_src = r; x_dst = (r + 1) mod p; x_bytes = bytes_of_round k }))

(* Recursive doubling: round k pairs r with r lxor 2^k; both directions
   of the exchange are transfers of the same round. *)
let rd_rounds ~p ~bytes_of_round =
  List.init (log2 p) (fun k ->
      let d = 1 lsl k in
      List.init p (fun r -> { x_src = r; x_dst = r lxor d; x_bytes = bytes_of_round k }))

(* Binomial broadcast relabelled so the root is virtual rank 0: in round
   k every informed rank v < 2^k forwards to v + 2^k (when it exists). *)
let binomial_bcast_rounds ~p ~root ~bytes =
  let unlabel v = (v + root) mod p in
  List.init (log2 p) (fun k ->
      let d = 1 lsl k in
      List.filter (fun v -> v < d && v + d < p) (List.init p Fun.id)
      |> List.map (fun v ->
             { x_src = unlabel v; x_dst = unlabel (v + d); x_bytes = bytes }))

(* Binomial reduce: the broadcast tree with every edge reversed and the
   rounds run leaf-to-root. *)
let binomial_reduce_rounds ~p ~root ~bytes =
  binomial_bcast_rounds ~p ~root ~bytes
  |> List.rev_map
       (List.map (fun x -> { x with x_src = x.x_dst; x_dst = x.x_src }))

(* Rabenseifner allreduce: recursive-halving reduce-scatter (high-bit
   partners, payload halves each round) then recursive-doubling allgather
   (low-bit partners, payload doubles back).  Per-rank traffic totals
   2 * bytes * (p-1)/p. *)
let rabenseifner_rounds ~p ~bytes =
  let h = log2 p in
  let exchange d b =
    List.init p (fun r -> { x_src = r; x_dst = r lxor d; x_bytes = b })
  in
  let reduce_scatter =
    List.init h (fun k -> exchange (1 lsl (h - 1 - k)) (bytes asr (k + 1)))
  in
  let allgather =
    List.init h (fun k -> exchange (1 lsl k) (bytes asr (h - k)))
  in
  reduce_scatter @ allgather

let expand (a : alg) ~(op : Call.op) ~p : schedule option =
  if not (applies a ~op ~p) || a = `Monolithic then None
  else
    match (a, op) with
    | `Ring, Call.Allreduce { bytes } ->
        Some (ring_rounds ~p ~bytes_of_round:(fun _ -> bytes))
    | `Ring, Call.Allgather { bytes_per_rank } ->
        Some (ring_rounds ~p ~bytes_of_round:(fun _ -> bytes_per_rank))
    | `Recursive_doubling, Call.Allreduce { bytes } ->
        Some (rd_rounds ~p ~bytes_of_round:(fun _ -> bytes))
    | `Recursive_doubling, Call.Barrier ->
        Some (rd_rounds ~p ~bytes_of_round:(fun _ -> 0))
    | `Recursive_doubling, Call.Allgather { bytes_per_rank } ->
        Some (rd_rounds ~p ~bytes_of_round:(fun k -> bytes_per_rank lsl k))
    | `Binomial, Call.Bcast { root; bytes } ->
        Some (binomial_bcast_rounds ~p ~root ~bytes)
    | `Binomial, Call.Reduce { root; bytes } ->
        Some (binomial_reduce_rounds ~p ~root ~bytes)
    | `Rabenseifner, Call.Allreduce { bytes } ->
        Some (rabenseifner_rounds ~p ~bytes)
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Sparse neighborhood schedules (message-combining for sparse
   collectives, arxiv 1606.07676).  Participants are indexed by position
   in the declared participant set; an offset o means "the participant o
   positions after me, cyclically". *)

(* Isomorphic case: every participant declares the same relative offset
   set and payload — one compact round per offset. *)
let neighbor_combined ~p ~offsets ~bytes =
  List.map
    (fun o ->
      List.init p (fun r ->
          { x_src = r; x_dst = (r + o) mod p; x_bytes = bytes }))
    offsets

(* General case: all per-participant transfers issued concurrently in a
   single round (each link is independent; nothing serializes them). *)
let neighbor_naive ~per_rank =
  let p = Array.length per_rank in
  let rnd = ref [] in
  Array.iteri
    (fun r (offsets, bytes) ->
      Array.iter
        (fun o ->
          rnd := { x_src = r; x_dst = (r + o) mod p; x_bytes = bytes } :: !rnd)
        offsets)
    per_rank;
  [ List.rev !rnd ]

let neighbor_isomorphic ~per_rank =
  if Array.length per_rank = 0 then None
  else
    let offs0, b0 = per_rank.(0) in
    if Array.for_all (fun (o, b) -> b = b0 && o = offs0) per_rank then
      Some (Array.to_list offs0, b0)
    else None

let neighbor_schedule ~per_rank =
  match neighbor_isomorphic ~per_rank with
  | Some (offsets, bytes) ->
      neighbor_combined ~p:(Array.length per_rank) ~offsets ~bytes
  | None -> neighbor_naive ~per_rank

(* ------------------------------------------------------------------ *)
(* Timing a schedule                                                    *)

(* Per-rank ready times folded round by round.  Departures are computed
   against a snapshot of the state at round entry, so the two legs of a
   pairwise exchange overlap (full-duplex) instead of serializing; with
   equal starts one round of a [bytes]-sized exchange costs exactly
   [Netmodel.round_cost ~bytes]. *)
let timings (net : Netmodel.t) (sched : schedule) ~(start : float array) =
  let ready = Array.copy start in
  List.iter
    (fun rnd ->
      let base = Array.copy ready in
      List.iter
        (fun { x_src; x_dst; x_bytes } ->
          let depart = base.(x_src) +. net.Netmodel.overhead in
          let arrive =
            depart +. net.Netmodel.latency
            +. (float_of_int x_bytes *. net.Netmodel.byte_time)
          in
          let finished = arrive +. net.Netmodel.overhead in
          if depart > ready.(x_src) then ready.(x_src) <- depart;
          if finished > ready.(x_dst) then ready.(x_dst) <- finished)
        rnd)
    sched;
  ready

let round_count = List.length

let bytes_sent_per_rank ~p sched =
  let sent = Array.make p 0 in
  List.iter
    (List.iter (fun { x_src; x_bytes; _ } ->
         sent.(x_src) <- sent.(x_src) + x_bytes))
    sched;
  sent
