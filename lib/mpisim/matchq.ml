type protocol = Eager | Rendezvous

type msg = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_bytes : int;
  m_comm : int;
  m_protocol : protocol;
  m_arrival : float;
  m_send_req : int;
  mutable m_reserved : bool;
}

type posted = {
  p_req : int;
  p_src : int option;
  p_tag : int option;
  p_comm : int;
  p_time : float;
}

let msg_matches_posted (m : msg) (p : posted) =
  m.m_comm = p.p_comm
  && (match p.p_src with None -> true | Some s -> s = m.m_src)
  && match p.p_tag with None -> true | Some t -> t = m.m_tag

type impl = [ `Indexed | `Reference ]

(* Remove the first element satisfying [pred]; None if absent.  The
   reference implementations below are the engine's original list scans,
   kept verbatim as the semantic oracle. *)
let take_first pred lst =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        if pred x then Some (x, List.rev_append acc rest) else go (x :: acc) rest
  in
  go [] lst

let bucket tbl key =
  match Hashtbl.find_opt tbl key with
  | Some dq -> dq
  | None ->
      let dq = Util.Deque.create ~capacity:4 () in
      Hashtbl.replace tbl key dq;
      dq

(* ------------------------------------------------------------------ *)

module Unexpected = struct
  (* Arrival order is the matching order.  Concrete (src, tag, comm)
     patterns pop the head of their bucket; wildcard patterns scan the
     master arrival deque.  A cell taken through a bucket stays in the
     master deque (and vice versa) flagged [dead] until it reaches a
     head, so both views always agree on the earliest live match. *)
  type cell = { msg : msg; seq : int; mutable dead : bool }

  type indexed = {
    mutable next_seq : int;
    mutable live : int;
    buckets : (int * int * int, cell Util.Deque.t) Hashtbl.t; (* src, tag, comm *)
    mutable order : cell Util.Deque.t;
  }

  type t = Indexed of indexed | Reference of msg list ref

  let create : impl -> t = function
    | `Indexed ->
        Indexed
          {
            next_seq = 0;
            live = 0;
            buckets = Hashtbl.create 64;
            order = Util.Deque.create ();
          }
    | `Reference -> Reference (ref [])

  let length = function
    | Indexed ix -> ix.live
    | Reference l -> List.length !l

  let add t m =
    match t with
    | Reference l -> l := !l @ [ m ]
    | Indexed ix ->
        let cell = { msg = m; seq = ix.next_seq; dead = false } in
        ix.next_seq <- ix.next_seq + 1;
        ix.live <- ix.live + 1;
        Util.Deque.push_back (bucket ix.buckets (m.m_src, m.m_tag, m.m_comm)) cell;
        Util.Deque.push_back ix.order cell

  let rec pop_live dq =
    match Util.Deque.pop_front dq with
    | Some c when c.dead -> pop_live dq
    | other -> other

  let rec drop_dead_head dq =
    match Util.Deque.peek_front dq with
    | Some c when c.dead ->
        ignore (Util.Deque.pop_front dq);
        drop_dead_head dq
    | _ -> ()

  (* Cells killed through the bucket view accumulate mid-deque in [order];
     rebuild it once the dead outnumber the live. *)
  let compact ix =
    if Util.Deque.length ix.order > (2 * ix.live) + 32 then begin
      let fresh = Util.Deque.create ~capacity:(ix.live + 1) () in
      Util.Deque.iter (fun c -> if not c.dead then Util.Deque.push_back fresh c) ix.order;
      ix.order <- fresh
    end

  let take t (p : posted) =
    match t with
    | Reference l -> (
        match take_first (fun m -> msg_matches_posted m p) !l with
        | Some (m, rest) ->
            l := rest;
            Some m
        | None -> None)
    | Indexed ix -> (
        let found =
          match (p.p_src, p.p_tag) with
          | Some s, Some tg -> (
              match Hashtbl.find_opt ix.buckets (s, tg, p.p_comm) with
              | None -> None
              | Some dq -> pop_live dq)
          | _ ->
              (* Wildcard: earliest arrival wins, so scan the master deque.
                 The cell found is necessarily at the live head of its own
                 bucket; mark it dead and let that bucket skip it later. *)
              drop_dead_head ix.order;
              Util.Deque.find_first
                (fun c -> (not c.dead) && msg_matches_posted c.msg p)
                ix.order
        in
        match found with
        | None -> None
        | Some c ->
            c.dead <- true;
            ix.live <- ix.live - 1;
            compact ix;
            Some c.msg)

  let bucket_count = function
    | Indexed ix -> Hashtbl.length ix.buckets
    | Reference _ -> 0

  let raw_length = function
    | Indexed ix -> Util.Deque.length ix.order
    | Reference l -> List.length !l
end

(* ------------------------------------------------------------------ *)

module Posted = struct
  (* Post order is the matching order.  Patterns bucket by their exact
     shape — (src|ANY, tag|ANY, comm) — so an arriving message can only
     match the head of one of four buckets; the earliest post sequence
     among those heads wins.  Cells never die in place: a posted receive
     is always consumed from the head of its bucket. *)
  type cell = { post : posted; seq : int }

  let any = min_int (* wildcard slot in a bucket key; never a valid rank/tag *)

  type indexed = {
    mutable next_seq : int;
    mutable live : int;
    buckets : (int * int * int, cell Util.Deque.t) Hashtbl.t;
  }

  type t = Indexed of indexed | Reference of posted list ref

  let create : impl -> t = function
    | `Indexed ->
        Indexed { next_seq = 0; live = 0; buckets = Hashtbl.create 64 }
    | `Reference -> Reference (ref [])

  let length = function
    | Indexed ix -> ix.live
    | Reference l -> List.length !l

  let key_of (p : posted) =
    ( (match p.p_src with Some s -> s | None -> any),
      (match p.p_tag with Some t -> t | None -> any),
      p.p_comm )

  let add t p =
    match t with
    | Reference l -> l := !l @ [ p ]
    | Indexed ix ->
        let cell = { post = p; seq = ix.next_seq } in
        ix.next_seq <- ix.next_seq + 1;
        ix.live <- ix.live + 1;
        Util.Deque.push_back (bucket ix.buckets (key_of p)) cell

  let candidate_keys ~src ~tag ~comm =
    [ (src, tag, comm); (src, any, comm); (any, tag, comm); (any, any, comm) ]

  let best_bucket ix ~src ~tag ~comm =
    List.fold_left
      (fun best key ->
        match Hashtbl.find_opt ix.buckets key with
        | None -> best
        | Some dq -> (
            match Util.Deque.peek_front dq with
            | None -> best
            | Some c -> (
                match best with
                | Some (bc, _) when bc.seq <= c.seq -> best
                | _ -> Some (c, dq))))
      None
      (candidate_keys ~src ~tag ~comm)

  let take t ~src ~tag ~comm =
    match t with
    | Reference l -> (
        let matches (p : posted) =
          msg_matches_posted
            {
              m_src = src; m_dst = -1; m_tag = tag; m_bytes = 0; m_comm = comm;
              m_protocol = Eager; m_arrival = 0.; m_send_req = -1;
              m_reserved = false;
            }
            p
        in
        match take_first matches !l with
        | Some (p, rest) ->
            l := rest;
            Some p
        | None -> None)
    | Indexed ix -> (
        match best_bucket ix ~src ~tag ~comm with
        | None -> None
        | Some (c, dq) ->
            ignore (Util.Deque.pop_front dq);
            ix.live <- ix.live - 1;
            Some c.post)

  let mem t ~src ~tag ~comm =
    match t with
    | Reference l ->
        List.exists
          (fun (p : posted) ->
            p.p_comm = comm
            && (match p.p_src with None -> true | Some s -> s = src)
            && match p.p_tag with None -> true | Some t' -> t' = tag)
          !l
    | Indexed ix -> best_bucket ix ~src ~tag ~comm <> None

  let bucket_count = function
    | Indexed ix -> Hashtbl.length ix.buckets
    | Reference _ -> 0
end
