type t = {
  latency : float;
  overhead : float;
  byte_time : float;
  rx_copy_per_byte : float;
  eager_threshold : int;
  unexpected_copy_per_byte : float;
  unexpected_buffer_bytes : int;
  resume_latency : float;
  collective_dispatch : float;
}

(* BG/L: ~3 us torus latency, ~150 MB/s per link usable in this era's MPI,
   generous eager limit and buffering (the network has hardware flow
   control and deep packet buffers). *)
let bluegene_l =
  {
    latency = 3.0e-6;
    overhead = 1.0e-6;
    byte_time = 1.0 /. 150.0e6;
    rx_copy_per_byte = 0.1e-9;
    eager_threshold = 65536;
    unexpected_copy_per_byte = 0.25e-9;
    unexpected_buffer_bytes = 32 * 1024 * 1024;
    resume_latency = 10.0e-6;
    collective_dispatch = 2.0e-6;
  }

(* Gigabit-Ethernet cluster: ~50 us latency, ~110 MB/s, small socket
   buffers so unexpected traffic quickly triggers flow control. *)
let ethernet_cluster =
  {
    latency = 50.0e-6;
    overhead = 5.0e-6;
    byte_time = 1.0 /. 110.0e6;
    rx_copy_per_byte = 2.0e-9;
    eager_threshold = 65536;
    unexpected_copy_per_byte = 20.0e-9;
    unexpected_buffer_bytes = 64 * 1024;
    resume_latency = 1.0e-3;
    collective_dispatch = 10.0e-6;
  }

let scale ?(latency = 1.0) ?(bandwidth = 1.0) t =
  if latency <= 0. || bandwidth <= 0. then
    invalid_arg "Netmodel.scale: factors must be positive";
  {
    t with
    latency = t.latency *. latency;
    overhead = t.overhead *. latency;
    byte_time = t.byte_time /. bandwidth;
  }

let transfer_time t ~bytes = t.latency +. (float_of_int bytes *. t.byte_time)

let is_eager t ~bytes = bytes <= t.eager_threshold

let log2_ceil p =
  let rec go acc n = if n >= p then acc else go (acc + 1) (n * 2) in
  if p <= 1 then 0 else go 0 1

let stage t ~bytes =
  t.latency +. (2. *. t.overhead) +. (float_of_int bytes *. t.byte_time)

(* One schedule round under pluggable collective algorithms is priced by
   the same p2p wire parameters; [collective_dispatch] is deliberately
   absent here — the engine charges it once per logical collective. *)
let round_cost = stage

let barrier_cost t ~p =
  t.collective_dispatch +. (float_of_int (log2_ceil p) *. stage t ~bytes:0)

let bcast_cost t ~p ~bytes =
  t.collective_dispatch +. (float_of_int (log2_ceil p) *. stage t ~bytes)

let reduce_cost t ~p ~bytes = bcast_cost t ~p ~bytes

let allreduce_cost t ~p ~bytes =
  t.collective_dispatch +. (2. *. float_of_int (log2_ceil p) *. stage t ~bytes)

(* Root serializes p-1 point-to-point transfers; one wire latency up front. *)
let gather_cost t ~p ~total =
  t.collective_dispatch +. t.latency
  +. (float_of_int (p - 1) *. 2. *. t.overhead)
  +. (float_of_int total *. t.byte_time)

(* Ring algorithm: p-1 stages, each moving total/p bytes. *)
let allgather_cost t ~p ~total =
  let per_stage = if p = 0 then 0 else total / max 1 p in
  t.collective_dispatch +. (float_of_int (p - 1) *. stage t ~bytes:per_stage)

let alltoall_cost t ~p ~total =
  let per_stage = if p <= 1 then total else total / (p - 1) in
  t.collective_dispatch +. (float_of_int (p - 1) *. stage t ~bytes:per_stage)

(* Sparse neighbor exchange: one stage per neighbor, each moving the
   per-neighbor payload — the dense [alltoall_cost] restricted to the
   caller's degree instead of p-1 partners. *)
let neighbor_cost t ~degree ~bytes =
  t.collective_dispatch +. (float_of_int (max 0 degree) *. stage t ~bytes)

let reduce_scatter_cost t ~p ~total =
  (* reduce of the full vector then scatter of the pieces *)
  reduce_cost t ~p ~bytes:total +. gather_cost t ~p ~total

let pp ppf t =
  Format.fprintf ppf
    "net{L=%.2gus o=%.2gus bw=%.0fMB/s eager<=%dB ubuf=%dKiB}"
    (t.latency *. 1e6) (t.overhead *. 1e6)
    (1. /. t.byte_time /. 1e6)
    t.eager_threshold
    (t.unexpected_buffer_bytes / 1024)
