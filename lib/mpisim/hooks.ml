type fault_event =
  | F_drop of { src : int; dst : int; bytes : int; attempt : int }
  | F_retransmit of { src : int; dst : int; bytes : int; attempt : int }

type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
  on_fault : time:float -> fault_event -> unit;
}

let nil =
  {
    on_enter = (fun ~world_rank:_ ~time:_ _ -> ());
    on_return = (fun ~world_rank:_ ~time:_ _ _ -> ());
    on_fault = (fun ~time:_ _ -> ());
  }
