type fault_event =
  | F_drop of { src : int; dst : int; bytes : int; attempt : int }
  | F_retransmit of { src : int; dst : int; bytes : int; attempt : int }

type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
  on_fault : time:float -> fault_event -> unit;
  on_collective_complete :
    time:float -> comm:int -> name:string -> participants:int array -> unit;
  on_p2p_match :
    time:float -> src:int -> dst:int -> tag:int -> bytes:int -> comm:int -> unit;
      (* fired once per point-to-point message, at the moment it pairs
         with a posted receive; [src]/[dst] are world ranks, so per-channel
         firing order is the message-matching (happens-before) order *)
}

let nil =
  {
    on_enter = (fun ~world_rank:_ ~time:_ _ -> ());
    on_return = (fun ~world_rank:_ ~time:_ _ _ -> ());
    on_fault = (fun ~time:_ _ -> ());
    on_collective_complete =
      (fun ~time:_ ~comm:_ ~name:_ ~participants:_ -> ());
    on_p2p_match =
      (fun ~time:_ ~src:_ ~dst:_ ~tag:_ ~bytes:_ ~comm:_ -> ());
  }

let compose a b =
  {
    on_enter =
      (fun ~world_rank ~time call ->
        a.on_enter ~world_rank ~time call;
        b.on_enter ~world_rank ~time call);
    on_return =
      (fun ~world_rank ~time call v ->
        a.on_return ~world_rank ~time call v;
        b.on_return ~world_rank ~time call v);
    on_fault =
      (fun ~time ev ->
        a.on_fault ~time ev;
        b.on_fault ~time ev);
    on_collective_complete =
      (fun ~time ~comm ~name ~participants ->
        a.on_collective_complete ~time ~comm ~name ~participants;
        b.on_collective_complete ~time ~comm ~name ~participants);
    on_p2p_match =
      (fun ~time ~src ~dst ~tag ~bytes ~comm ->
        a.on_p2p_match ~time ~src ~dst ~tag ~bytes ~comm;
        b.on_p2p_match ~time ~src ~dst ~tag ~bytes ~comm);
  }

(* Engine virtual time is seconds; trace timestamps are microseconds. *)
let usecs t = t *. 1e6

let observer (sink : Obs.Sink.t) =
  if not sink.enabled then nil
  else
    {
      nil with
      on_fault =
        (fun ~time ev ->
          let name, src, dst, bytes, attempt =
            match ev with
            | F_drop { src; dst; bytes; attempt } ->
                ("fault.drop", src, dst, bytes, attempt)
            | F_retransmit { src; dst; bytes; attempt } ->
                ("fault.retransmit", src, dst, bytes, attempt)
          in
          Obs.Sink.instant sink ~pid:Obs.Sink.engine_pid ~tid:src ~cat:"fault"
            ~args:
              [
                ("dst", Obs.Sink.A_int dst);
                ("bytes", Obs.Sink.A_int bytes);
                ("attempt", Obs.Sink.A_int attempt);
              ]
            ~ts:(usecs time) name);
      on_collective_complete =
        (fun ~time ~comm ~name ~participants ->
          Obs.Sink.instant sink ~pid:Obs.Sink.engine_pid ~tid:0
            ~cat:"collective"
            ~args:
              [
                ("comm", Obs.Sink.A_int comm);
                ("participants", Obs.Sink.A_int (Array.length participants));
              ]
            ~ts:(usecs time) ("collective." ^ name));
    }
