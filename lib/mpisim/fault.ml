type window = {
  w_from : float;
  w_until : float;
  w_latency_factor : float;
  w_bandwidth_factor : float;
}

type t = {
  seed : int;
  jitter_mean : float;
  drop_prob : float;
  max_retries : int;
  retrans_timeout : float;
  backoff : float;
  windows : window list;
  slowdown : (int * float) list;
  os_noise : float;
}

let make ?(jitter_mean = 0.) ?(drop_prob = 0.) ?(max_retries = 8)
    ?(retrans_timeout = 1e-3) ?(backoff = 2.) ?(windows = []) ?(slowdown = [])
    ?(os_noise = 0.) ~seed () =
  if not (Float.is_finite jitter_mean) || jitter_mean < 0. then
    invalid_arg "Fault.make: jitter_mean must be finite and non-negative";
  if not (Float.is_finite drop_prob) || drop_prob < 0. || drop_prob >= 1. then
    invalid_arg "Fault.make: drop_prob must be in [0, 1)";
  if max_retries < 0 then invalid_arg "Fault.make: max_retries must be >= 0";
  if not (Float.is_finite retrans_timeout) || retrans_timeout <= 0. then
    invalid_arg "Fault.make: retrans_timeout must be positive";
  if not (Float.is_finite backoff) || backoff < 1. then
    invalid_arg "Fault.make: backoff must be >= 1";
  if not (Float.is_finite os_noise) || os_noise < 0. then
    invalid_arg "Fault.make: os_noise must be finite and non-negative";
  List.iter
    (fun w ->
      if w.w_until < w.w_from || w.w_latency_factor <= 0. || w.w_bandwidth_factor <= 0.
      then invalid_arg "Fault.make: malformed degradation window")
    windows;
  List.iter
    (fun (r, f) ->
      if r < 0 || f <= 0. || not (Float.is_finite f) then
        invalid_arg "Fault.make: malformed per-rank slowdown")
    slowdown;
  { seed; jitter_mean; drop_prob; max_retries; retrans_timeout; backoff;
    windows; slowdown; os_noise }

let none = make ~seed:0 ()

let is_noop t =
  t.jitter_mean = 0. && t.drop_prob = 0. && t.windows = [] && t.slowdown = []
  && t.os_noise = 0.

type stats = {
  mutable retries : int;
  mutable timeouts : int;
  mutable dropped : int;
}

type runtime = { rt_plan : t; rt_rng : Util.Rng.t; rt_stats : stats }

let start plan =
  {
    rt_plan = plan;
    rt_rng = Util.Rng.create ~seed:plan.seed;
    rt_stats = { retries = 0; timeouts = 0; dropped = 0 };
  }

let plan rt = rt.rt_plan
let stats rt = rt.rt_stats

let draw_jitter rt =
  if rt.rt_plan.jitter_mean = 0. then 0.
  else Util.Rng.exponential rt.rt_rng ~mean:rt.rt_plan.jitter_mean

let draw_drop rt =
  rt.rt_plan.drop_prob > 0. && Util.Rng.float rt.rt_rng < rt.rt_plan.drop_prob

let degradation t ~now =
  List.fold_left
    (fun (lf, bf) w ->
      if now >= w.w_from && now < w.w_until then
        (lf *. w.w_latency_factor, bf *. w.w_bandwidth_factor)
      else (lf, bf))
    (1., 1.) t.windows

let compute_factor rt ~rank =
  let static =
    match List.assoc_opt rank rt.rt_plan.slowdown with Some f -> f | None -> 1.
  in
  let noise =
    if rt.rt_plan.os_noise = 0. then 1.
    else
      Util.Rng.gaussian rt.rt_rng ~truncate_at_zero:true ~mean:1.
        ~stddev:rt.rt_plan.os_noise ()
  in
  static *. noise

let timeout_after t ~attempt =
  t.retrans_timeout *. (t.backoff ** float_of_int attempt)

let pp ppf t =
  Format.fprintf ppf
    "fault{seed=%d jitter=%.2gus drop=%.3g retries<=%d rto=%.2gms windows=%d \
     slowdown=%d noise=%.2g}"
    t.seed (t.jitter_mean *. 1e6) t.drop_prob t.max_retries
    (t.retrans_timeout *. 1e3)
    (List.length t.windows) (List.length t.slowdown) t.os_noise
