(** Deterministic, seeded fault injection for the simulator.

    A fault {e plan} describes how a run is perturbed; all stochastic
    choices derive from an explicit {!Util.Rng} stream seeded from
    [seed], and draws are consumed in simulation-event order, so a run
    under a given plan is exactly as reproducible as a clean run: same
    plan, same program, same network ⇒ bit-identical {!Engine.outcome}.

    Four perturbation families are modelled:

    - {b latency jitter} — every wire transfer pays an extra
      exponentially distributed delay with mean [jitter_mean];
    - {b transient link degradation} — during each {!window} the wire
      latency and per-byte time are multiplied by the window's factors
      (an Ethernet congestion burst, a failing switch port);
    - {b compute slowdown / OS noise} — per-rank static multipliers on
      every [Compute] interval plus a multiplicative Gaussian jitter
      with relative standard deviation [os_noise];
    - {b message drops with retransmission} — each injection attempt of
      an eager payload or a rendezvous RTS is lost with probability
      [drop_prob]; the engine retransmits after a timeout that backs
      off exponentially, giving up (and raising {!Engine.Stalled}) after
      [max_retries] retries. *)

(** A transient degradation window in virtual time.  A transfer departing
    at [t] with [w_from <= t < w_until] sees its latency multiplied by
    [w_latency_factor] and its per-byte time by [w_bandwidth_factor]. *)
type window = {
  w_from : float;
  w_until : float;
  w_latency_factor : float;
  w_bandwidth_factor : float;
}

type t = {
  seed : int;
  jitter_mean : float;  (** mean extra wire delay per transfer, seconds *)
  drop_prob : float;  (** per-attempt loss probability, in [0, 1) *)
  max_retries : int;  (** retransmissions before giving up *)
  retrans_timeout : float;  (** initial retransmission timeout, seconds *)
  backoff : float;  (** timeout multiplier per retry, >= 1 *)
  windows : window list;  (** transient link degradation *)
  slowdown : (int * float) list;  (** per-rank compute multipliers *)
  os_noise : float;  (** relative stddev of compute jitter *)
}

(** Build a plan; unspecified knobs are inert.
    @raise Invalid_argument on out-of-range values ([drop_prob] outside
    [0, 1), negative jitter/noise/timeout, [backoff < 1],
    [max_retries < 0], non-positive slowdown factors or malformed
    windows). *)
val make :
  ?jitter_mean:float ->
  ?drop_prob:float ->
  ?max_retries:int ->
  ?retrans_timeout:float ->
  ?backoff:float ->
  ?windows:window list ->
  ?slowdown:(int * float) list ->
  ?os_noise:float ->
  seed:int ->
  unit ->
  t

(** A plan that perturbs nothing (all knobs inert). *)
val none : t

(** [true] when the plan perturbs nothing — the engine then skips the
    fault machinery entirely. *)
val is_noop : t -> bool

(** Injection counters accumulated by the engine during one run. *)
type stats = {
  mutable retries : int;  (** retransmission attempts performed *)
  mutable timeouts : int;  (** sender timeout expirations *)
  mutable dropped : int;  (** transmission attempts lost in flight *)
}

(** Per-run mutable state: the plan, its RNG stream, and counters. *)
type runtime

val start : t -> runtime
val plan : runtime -> t
val stats : runtime -> stats

(** Next extra wire delay; [0.] (no stream consumption) when
    [jitter_mean = 0]. *)
val draw_jitter : runtime -> float

(** Whether the next transmission attempt is lost; [false] (no stream
    consumption) when [drop_prob = 0]. *)
val draw_drop : runtime -> bool

(** [(latency_factor, bandwidth_factor)] in effect at [now]; [(1., 1.)]
    outside every window.  Overlapping windows compound. *)
val degradation : t -> now:float -> float * float

(** Multiplier applied to a [Compute] interval on [rank]: the static
    slowdown times one OS-noise draw (truncated below at 0). *)
val compute_factor : runtime -> rank:int -> float

(** Timeout before retransmission attempt [attempt] (0-based):
    [retrans_timeout * backoff^attempt]. *)
val timeout_after : t -> attempt:int -> float

val pp : Format.formatter -> t -> unit
