type request = int

type source = Rank of int | Any_source

type tag_match = Tag of int | Any_tag

type status = { actual_source : int; actual_tag : int; received_bytes : int }

type op =
  | Send of { dst : int; bytes : int; tag : int }
  | Isend of { dst : int; bytes : int; tag : int }
  | Recv of { src : source; bytes : int; tag : tag_match }
  | Irecv of { src : source; bytes : int; tag : tag_match }
  | Wait of request
  | Waitall of request list
  | Barrier
  | Bcast of { root : int; bytes : int }
  | Reduce of { root : int; bytes : int }
  | Allreduce of { bytes : int }
  | Gather of { root : int; bytes_per_rank : int }
  | Gatherv of { root : int; bytes_from : int array }
  | Allgather of { bytes_per_rank : int }
  | Allgatherv of { bytes_from : int array }
  | Scatter of { root : int; bytes_per_rank : int }
  | Scatterv of { root : int; bytes_to : int array }
  | Alltoall of { bytes_per_pair : int }
  | Alltoallv of { bytes_to : int array }
  | Reduce_scatter of { bytes_per_rank : int array }
  | Neighbor_alltoall of {
      parts : int array;
      neighbors : int array;
      bytes_per_neighbor : int;
    }
  | Neighbor_allgather of { parts : int array; neighbors : int array; bytes : int }
  | Comm_split of { color : int; key : int }
  | Comm_dup
  | Compute of float
  | Wtime
  | Finalize

type t = { op : op; comm : Comm.t; site : Util.Callsite.t }

type value =
  | V_unit
  | V_request of request
  | V_status of status
  | V_statuses of status array
  | V_comm of Comm.t
  | V_time of float

let is_collective = function
  | Barrier | Bcast _ | Reduce _ | Allreduce _ | Gather _ | Gatherv _
  | Allgather _ | Allgatherv _ | Scatter _ | Scatterv _ | Alltoall _
  | Alltoallv _ | Reduce_scatter _ | Neighbor_alltoall _ | Neighbor_allgather _
  | Comm_split _ | Comm_dup | Finalize ->
      true
  | Send _ | Isend _ | Recv _ | Irecv _ | Wait _ | Waitall _ | Compute _
  | Wtime ->
      false

let is_compute = function Compute _ -> true | _ -> false

let op_name = function
  | Send _ -> "MPI_Send"
  | Isend _ -> "MPI_Isend"
  | Recv _ -> "MPI_Recv"
  | Irecv _ -> "MPI_Irecv"
  | Wait _ -> "MPI_Wait"
  | Waitall _ -> "MPI_Waitall"
  | Barrier -> "MPI_Barrier"
  | Bcast _ -> "MPI_Bcast"
  | Reduce _ -> "MPI_Reduce"
  | Allreduce _ -> "MPI_Allreduce"
  | Gather _ -> "MPI_Gather"
  | Gatherv _ -> "MPI_Gatherv"
  | Allgather _ -> "MPI_Allgather"
  | Allgatherv _ -> "MPI_Allgatherv"
  | Scatter _ -> "MPI_Scatter"
  | Scatterv _ -> "MPI_Scatterv"
  | Alltoall _ -> "MPI_Alltoall"
  | Alltoallv _ -> "MPI_Alltoallv"
  | Reduce_scatter _ -> "MPI_Reduce_scatter"
  | Neighbor_alltoall _ -> "MPI_Neighbor_alltoall"
  | Neighbor_allgather _ -> "MPI_Neighbor_allgather"
  | Comm_split _ -> "MPI_Comm_split"
  | Comm_dup -> "MPI_Comm_dup"
  | Compute _ -> "compute"
  | Wtime -> "MPI_Wtime"
  | Finalize -> "MPI_Finalize"

let sum = Array.fold_left ( + ) 0

let local_bytes op ~p ~rank =
  match op with
  | Send { bytes; _ } | Isend { bytes; _ } -> bytes
  | Recv { bytes; _ } | Irecv { bytes; _ } -> bytes
  | Wait _ | Waitall _ | Barrier | Comm_split _ | Comm_dup | Compute _
  | Wtime | Finalize ->
      0
  | Bcast { bytes; _ } | Reduce { bytes; _ } | Allreduce { bytes } -> bytes
  | Gather { root; bytes_per_rank } | Scatter { root; bytes_per_rank } ->
      if rank = root then bytes_per_rank * p else bytes_per_rank
  | Gatherv { root; bytes_from } ->
      if rank = root then sum bytes_from else bytes_from.(rank)
  | Scatterv { root; bytes_to } ->
      if rank = root then sum bytes_to else bytes_to.(rank)
  | Allgather { bytes_per_rank } -> bytes_per_rank * p
  | Allgatherv { bytes_from } -> sum bytes_from
  | Alltoall { bytes_per_pair } -> bytes_per_pair * p
  | Alltoallv { bytes_to } -> sum bytes_to
  | Reduce_scatter { bytes_per_rank } -> sum bytes_per_rank
  | Neighbor_alltoall { neighbors; bytes_per_neighbor; _ } ->
      Array.length neighbors * bytes_per_neighbor
  | Neighbor_allgather { neighbors; bytes; _ } -> Array.length neighbors * bytes

let pp_op ppf op =
  let name = op_name op in
  match op with
  | Send { dst; bytes; tag } | Isend { dst; bytes; tag } ->
      Format.fprintf ppf "%s(dst=%d,%dB,tag=%d)" name dst bytes tag
  | Recv { src; bytes; tag } | Irecv { src; bytes; tag } ->
      let src_s = match src with Rank r -> string_of_int r | Any_source -> "ANY" in
      let tag_s = match tag with Tag t -> string_of_int t | Any_tag -> "ANY" in
      Format.fprintf ppf "%s(src=%s,%dB,tag=%s)" name src_s bytes tag_s
  | Wait r -> Format.fprintf ppf "%s(req=%d)" name r
  | Waitall rs -> Format.fprintf ppf "%s(%d reqs)" name (List.length rs)
  | Neighbor_alltoall { parts; neighbors; bytes_per_neighbor } ->
      Format.fprintf ppf "%s(|parts|=%d,deg=%d,%dB)" name (Array.length parts)
        (Array.length neighbors) bytes_per_neighbor
  | Neighbor_allgather { parts; neighbors; bytes } ->
      Format.fprintf ppf "%s(|parts|=%d,deg=%d,%dB)" name (Array.length parts)
        (Array.length neighbors) bytes
  | Compute d -> Format.fprintf ppf "compute(%.3gs)" d
  | _ -> Format.pp_print_string ppf name
