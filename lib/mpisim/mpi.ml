type ctx = Engine.ctx = { rank : int; nranks : int; world : Comm.t }

let site ?label pos = Util.Callsite.make ?label pos

let run = Engine.run

let call ?(site = Util.Callsite.unknown) ~comm op : Call.value =
  Engine.perform { op; comm; site }

let bad_value op =
  raise (Engine.Mpi_error ("unexpected result value for " ^ Call.op_name op))

let unit_call ?site ~comm op =
  match call ?site ~comm op with V_unit -> () | _ -> bad_value op

let send ?site ?comm ?(tag = 0) (ctx : ctx) ~dst ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Send { dst; bytes; tag })

let isend ?site ?comm ?(tag = 0) (ctx : ctx) ~dst ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  let op = Call.Isend { dst; bytes; tag } in
  match call ?site ~comm op with V_request r -> r | _ -> bad_value op

let recv ?site ?comm ?(tag = Call.Any_tag) (ctx : ctx) ~src ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  let op = Call.Recv { src; bytes; tag } in
  match call ?site ~comm op with V_status s -> s | _ -> bad_value op

let irecv ?site ?comm ?(tag = Call.Any_tag) (ctx : ctx) ~src ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  let op = Call.Irecv { src; bytes; tag } in
  match call ?site ~comm op with V_request r -> r | _ -> bad_value op

let wait ?site (ctx : ctx) req =
  let op = Call.Wait req in
  match call ?site ~comm:ctx.world op with V_status s -> s | _ -> bad_value op

let waitall ?site (ctx : ctx) reqs =
  let op = Call.Waitall reqs in
  match call ?site ~comm:ctx.world op with
  | V_statuses s -> s
  | _ -> bad_value op

let sendrecv ?site ?comm ?(tag = 0) (ctx : ctx) ~dst ~send_bytes ~src ~recv_bytes =
  let comm = Option.value ~default:ctx.world comm in
  let r = irecv ?site ~comm ~tag:(Call.Tag tag) ctx ~src ~bytes:recv_bytes in
  send ?site ~comm ~tag ctx ~dst ~bytes:send_bytes;
  wait ?site ctx r

let barrier ?site ?comm (ctx : ctx) =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm Call.Barrier

let bcast ?site ?comm (ctx : ctx) ~root ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Bcast { root; bytes })

let reduce ?site ?comm (ctx : ctx) ~root ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Reduce { root; bytes })

let allreduce ?site ?comm (ctx : ctx) ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Allreduce { bytes })

let gather ?site ?comm (ctx : ctx) ~root ~bytes_per_rank =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Gather { root; bytes_per_rank })

let gatherv ?site ?comm (ctx : ctx) ~root ~bytes_from =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Gatherv { root; bytes_from })

let allgather ?site ?comm (ctx : ctx) ~bytes_per_rank =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Allgather { bytes_per_rank })

let allgatherv ?site ?comm (ctx : ctx) ~bytes_from =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Allgatherv { bytes_from })

let scatter ?site ?comm (ctx : ctx) ~root ~bytes_per_rank =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Scatter { root; bytes_per_rank })

let scatterv ?site ?comm (ctx : ctx) ~root ~bytes_to =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Scatterv { root; bytes_to })

let alltoall ?site ?comm (ctx : ctx) ~bytes_per_pair =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Alltoall { bytes_per_pair })

let alltoallv ?site ?comm (ctx : ctx) ~bytes_to =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Alltoallv { bytes_to })

let reduce_scatter ?site ?comm (ctx : ctx) ~bytes_per_rank =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Reduce_scatter { bytes_per_rank })

let neighbor_alltoall ?site ?comm ?(parts = [||]) (ctx : ctx) ~neighbors
    ~bytes_per_neighbor =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm
    (Call.Neighbor_alltoall { parts; neighbors; bytes_per_neighbor })

let neighbor_allgather ?site ?comm ?(parts = [||]) (ctx : ctx) ~neighbors
    ~bytes =
  let comm = Option.value ~default:ctx.world comm in
  unit_call ?site ~comm (Call.Neighbor_allgather { parts; neighbors; bytes })

let comm_split ?site ?comm (ctx : ctx) ~color ~key =
  let comm = Option.value ~default:ctx.world comm in
  let op = Call.Comm_split { color; key } in
  match call ?site ~comm op with V_comm c -> c | _ -> bad_value op

let comm_dup ?site ?comm (ctx : ctx) =
  let comm = Option.value ~default:ctx.world comm in
  let op = Call.Comm_dup in
  match call ?site ~comm op with V_comm c -> c | _ -> bad_value op

let compute ?site (ctx : ctx) seconds =
  unit_call ?site ~comm:ctx.world (Call.Compute seconds)

let wtime (ctx : ctx) =
  let op = Call.Wtime in
  match call ~comm:ctx.world op with V_time t -> t | _ -> bad_value op

let finalize ?site (ctx : ctx) = unit_call ?site ~comm:ctx.world Call.Finalize

let comm_rank comm (ctx : ctx) =
  match Comm.local_of_world comm ctx.rank with
  | Some l -> l
  | None ->
      raise
        (Engine.Mpi_error
           (Printf.sprintf "rank %d is not a member of communicator %d" ctx.rank
              (Comm.id comm)))

let comm_size = Comm.size
