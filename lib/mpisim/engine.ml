exception Deadlock of string
exception Mpi_error of string
exception Stalled of string

type ctx = { rank : int; nranks : int; world : Comm.t }

type outcome = {
  elapsed : float;
  finish_times : float array;
  events : int;
  messages : int;
  p2p_bytes : int;
  unexpected : int;
  flow_stalls : int;
  retries : int;
  timeouts : int;
  dropped : int;
}

type _ Effect.t += Mpi_call : Call.t -> Call.value Effect.t

let perform call =
  try Effect.perform (Mpi_call call)
  with Effect.Unhandled _ ->
    raise (Mpi_error "MPI call performed outside Engine.run")

(* ------------------------------------------------------------------ *)
(* Internal state                                                      *)

type fiber = (Call.value, unit) Effect.Deep.continuation

(* Message and posted-receive records (and the matching queues that hold
   them) live in {!Matchq}; [Mq.msg] travels the virtual wire, [Mq.posted]
   waits in a rank's receive queue. *)
module Mq = Matchq

(* An eager send whose injection is stalled by receiver flow control. *)
type parked = {
  q_src : int;
  q_tag : int;
  q_bytes : int;
  q_comm : int;
  q_call_time : float;
  q_send_req : int;
}

type wait_shape = W_send | W_recv | W_wait | W_waitall

type req_state = {
  r_id : int;
  r_kind : [ `Send | `Recv ];
  mutable r_done : float option;
  mutable r_status : Call.status option;
  mutable r_waiter : waiter option;
}

and waiter = {
  w_rank : int;
  w_reqs : int array;
  mutable w_remaining : int;
  mutable w_latest : float;
  w_block_time : float;
  w_shape : wait_shape;
}

type rank_state = {
  rs_rank : int;
  mutable rs_clock : float;
  mutable rs_finished : bool;
  mutable rs_finalized : bool;
  mutable rs_current : Call.t option;
  rs_posted : Mq.Posted.t; (* post order *)
  rs_unexpected : Mq.Unexpected.t; (* arrival order *)
  mutable rs_buffered : int; (* bytes of reserved unexpected eager data *)
  rs_parked : parked Util.Deque.t; (* FIFO *)
  mutable rs_proc_free : float;
      (* when the rank's message-progress engine is next available;
         arriving messages are processed serially *)
  mutable rs_nic_free : float;
      (* when the rank's inbound link is next free: transfers into one
         receiver serialize on the wire, so message bursts queue *)
}

type coll_state = {
  c_comm : Comm.t;
  c_name : string;
  c_parts : int array;
      (* world ranks of the declared participant set (the whole
         communicator for everything but neighborhood collectives) *)
  mutable c_arrivals : (int * float * Call.op) list;
}

type event =
  | E_start of int
  | E_resume of int * Call.value
  | E_deliver of Mq.msg
  | E_retransmit of Mq.msg * int  (* next transmission attempt, 0-based *)

type state = {
  net : Netmodel.t;
  nranks : int;
  ranks : rank_state array;
  events : event Util.Pqueue.t;
  reqs : (int, req_state) Hashtbl.t;
  mutable next_req : int;
  mutable next_comm : int;
  comms : (int, Comm.t) Hashtbl.t;
  (* Collectives are keyed by (communicator id, participant-set
     signature, per-rank arrival slot).  The signature is "" for
     full-communicator operations — the historical keying — and the
     encoded declared participant set for neighborhood collectives, so
     disjoint participant groups on one communicator progress
     independently. *)
  colls : (int * string * int, coll_state) Hashtbl.t;
  coll_seq : (int * string * int, int) Hashtbl.t;
  coll_alg : Coll_alg.t;
  hooks : Hooks.t list;
  fibers : fiber option array;
  fault : Fault.runtime option;
  max_events : int option;
  max_virtual_time : float option;
  obs : Obs.Sink.t;
  obs_sample_every : int;
  mutable now : float;
  mutable n_events : int;
  mutable n_msgs : int;
  mutable n_bytes : int;
  mutable n_unexpected : int;
  mutable n_stalls : int;
  mutable n_inflight_bytes : int; (* bytes injected but not yet delivered *)
}

let schedule st ~time ev = Util.Pqueue.add st.events ~time ev

let fire_enter st rank call =
  let time = st.ranks.(rank).rs_clock in
  List.iter (fun (h : Hooks.t) -> h.on_enter ~world_rank:rank ~time call) st.hooks

let fire_fault st ev =
  List.iter (fun (h : Hooks.t) -> h.on_fault ~time:st.now ev) st.hooks

let fire_return st rank time call v =
  List.iter (fun (h : Hooks.t) -> h.on_return ~world_rank:rank ~time call v) st.hooks

let fire_collective_complete st ~time ~comm ~name ~participants =
  List.iter
    (fun (h : Hooks.t) -> h.on_collective_complete ~time ~comm ~name ~participants)
    st.hooks

(* ------------------------------------------------------------------ *)
(* Observability sampling                                              *)

(* Engine virtual time is seconds; trace timestamps are microseconds. *)
let obs_ts t = t *. 1e6

(* Per-rank queue depths plus engine-wide totals, emitted as Chrome
   counter tracks.  Purely a function of simulation state at a virtual
   time, so sampled traces stay deterministic. *)
let obs_sample st =
  let ts = obs_ts st.now in
  Array.iter
    (fun rs ->
      Obs.Sink.counter st.obs ~pid:Obs.Sink.engine_pid ~tid:rs.rs_rank ~ts
        "queues"
        [
          ("posted", float_of_int (Mq.Posted.length rs.rs_posted));
          ("posted_buckets", float_of_int (Mq.Posted.bucket_count rs.rs_posted));
          ("unexpected", float_of_int (Mq.Unexpected.length rs.rs_unexpected));
          ( "unexpected_raw",
            float_of_int (Mq.Unexpected.raw_length rs.rs_unexpected) );
          ( "unexpected_buckets",
            float_of_int (Mq.Unexpected.bucket_count rs.rs_unexpected) );
          ("parked", float_of_int (Util.Deque.length rs.rs_parked));
          ("buffered_bytes", float_of_int rs.rs_buffered);
        ])
    st.ranks;
  let fault_series =
    match st.fault with
    | None -> []
    | Some f ->
        let fs = Fault.stats f in
        [
          ("retries", float_of_int fs.retries);
          ("timeouts", float_of_int fs.timeouts);
          ("dropped", float_of_int fs.dropped);
        ]
  in
  Obs.Sink.counter st.obs ~pid:Obs.Sink.engine_pid ~tid:0 ~ts "engine"
    ([
       ("inflight_bytes", float_of_int st.n_inflight_bytes);
       ("events", float_of_int st.n_events);
       ("messages", float_of_int st.n_msgs);
       ("unexpected_total", float_of_int st.n_unexpected);
       ("flow_stalls", float_of_int st.n_stalls);
     ]
    @ fault_series)

let comm_of st cid =
  match Hashtbl.find_opt st.comms cid with
  | Some c -> c
  | None -> raise (Mpi_error (Printf.sprintf "unknown communicator id %d" cid))

let new_req st kind =
  let id = st.next_req in
  st.next_req <- id + 1;
  let r = { r_id = id; r_kind = kind; r_done = None; r_status = None; r_waiter = None } in
  Hashtbl.replace st.reqs id r;
  r

let find_req st id =
  match Hashtbl.find_opt st.reqs id with
  | Some r -> r
  | None -> raise (Mpi_error (Printf.sprintf "unknown or freed request %d" id))

let dummy_status : Call.status =
  { actual_source = -1; actual_tag = -1; received_bytes = 0 }

let status_of_req st id =
  match (find_req st id).r_status with Some s -> s | None -> dummy_status

(* Resume value owed to a blocked Wait/Send/Recv once its requests finish. *)
let waiter_value st (w : waiter) : Call.value =
  match w.w_shape with
  | W_send -> V_unit
  | W_recv | W_wait -> V_status (status_of_req st w.w_reqs.(0))
  | W_waitall -> V_statuses (Array.map (fun id -> status_of_req st id) w.w_reqs)

let waiter_done st (w : waiter) =
  schedule st ~time:(Float.max w.w_block_time w.w_latest)
    (E_resume (w.w_rank, waiter_value st w))

let complete_req st (r : req_state) ~time ?status () =
  assert (r.r_done = None);
  r.r_done <- Some time;
  (match status with Some _ -> r.r_status <- status | None -> ());
  match r.r_waiter with
  | None -> ()
  | Some w ->
      w.w_remaining <- w.w_remaining - 1;
      w.w_latest <- Float.max w.w_latest time;
      if w.w_remaining = 0 then waiter_done st w

(* Block [rank]'s fiber until every request in [reqs] completes. *)
let block_on_reqs st rank shape reqs =
  let rs = st.ranks.(rank) in
  let w =
    {
      w_rank = rank;
      w_reqs = Array.of_list reqs;
      w_remaining = 0;
      w_latest = rs.rs_clock;
      w_block_time = rs.rs_clock;
      w_shape = shape;
    }
  in
  let pending =
    List.fold_left
      (fun pending id ->
        let r = find_req st id in
        match r.r_done with
        | Some t ->
            w.w_latest <- Float.max w.w_latest t;
            pending
        | None ->
            if r.r_waiter <> None then
              raise (Mpi_error (Printf.sprintf "request %d waited on twice" id));
            r.r_waiter <- Some w;
            pending + 1)
      0 reqs
  in
  w.w_remaining <- pending;
  if pending = 0 then waiter_done st w

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let rank_lines st buf =
  Array.iter
    (fun rs ->
      if not rs.rs_finished then begin
        let call =
          match rs.rs_current with
          | Some c ->
              Format.asprintf "%a at %a" Call.pp_op c.op Util.Callsite.pp c.site
          | None -> "<not started>"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "\n  rank %d at t=%.6fs blocked in %s (posted=%d unexpected=%d \
              parked=%d buffered=%dB)"
             rs.rs_rank rs.rs_clock call
             (Mq.Posted.length rs.rs_posted)
             (Mq.Unexpected.length rs.rs_unexpected)
             (Util.Deque.length rs.rs_parked) rs.rs_buffered)
      end)
    st.ranks

(* Who is each unfinished rank actually waiting for?  Point-to-point calls
   name their peer directly; a rank parked in a collective waits for the
   members that have not reached its pending instance.  Peers that have
   already finished can never arrive — those are the [missing] set. *)
let wait_edges st =
  let finished w = w >= 0 && w < st.nranks && st.ranks.(w).rs_finished in
  let edges = ref [] in
  Array.iter
    (fun rs ->
      if not rs.rs_finished then
        match rs.rs_current with
        | None -> ()
        | Some c ->
            let what =
              Format.asprintf "%a at %a" Call.pp_op c.Call.op Util.Callsite.pp
                c.Call.site
            in
            let world_of l = Comm.world_of_local c.Call.comm l in
            let waiting_on =
              match c.Call.op with
              | Call.Recv { src = Call.Rank s; _ }
              | Call.Irecv { src = Call.Rank s; _ } ->
                  [ world_of s ]
              | Call.Send { dst; _ } | Call.Isend { dst; _ } -> [ world_of dst ]
              | Call.Recv { src = Call.Any_source; _ }
              | Call.Irecv { src = Call.Any_source; _ }
              | Call.Wait _ | Call.Waitall _ | Call.Compute _ | Call.Wtime ->
                  []
              | _ ->
                  (* collective: comm members absent from the pending
                     instance this rank has arrived at *)
                  let cid = Comm.id c.Call.comm in
                  let pending =
                    Hashtbl.fold
                      (fun (kcid, _, _) cs acc ->
                        if
                          kcid = cid
                          && List.exists
                               (fun (w, _, _) -> w = rs.rs_rank)
                               cs.c_arrivals
                        then Some cs
                        else acc)
                      st.colls None
                  in
                  (match pending with
                  | None -> []
                  | Some cs ->
                      cs.c_parts |> Array.to_list
                      |> List.filter (fun w ->
                             not
                               (List.exists
                                  (fun (a, _, _) -> a = w)
                                  cs.c_arrivals)))
            in
            let missing = List.filter finished waiting_on in
            edges :=
              Util.Waitgraph.edge ~rank:rs.rs_rank ~what ~waiting_on ~missing
                ()
              :: !edges)
    st.ranks;
  List.rev !edges

let add_wait_graph st buf =
  match wait_edges st with
  | [] -> ()
  | edges -> Buffer.add_string buf ("\n" ^ Util.Waitgraph.format edges)

let deadlock_report st =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "simulation deadlock; stuck ranks:";
  rank_lines st buf;
  add_wait_graph st buf;
  Buffer.contents buf

let stalled_report st ~reason =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "simulation stalled: %s after %d events at t=%.6fs; \
                     unfinished ranks:" reason st.n_events st.now);
  rank_lines st buf;
  add_wait_graph st buf;
  Buffer.contents buf

(* Per-transfer fault effects at departure time [depart]:
   (latency factor, bandwidth factor, additive jitter). *)
let wire_fault st ~depart =
  match st.fault with
  | None -> (1., 1., 0.)
  | Some f ->
      let lf, bf = Fault.degradation (Fault.plan f) ~now:depart in
      (lf, bf, Fault.draw_jitter f)

(* Inbound transfers serialize on the receiver's link. *)
let wire_arrival st (d : rank_state) ~depart ~bytes =
  let net = st.net in
  let lat_f, bw_f, jitter = wire_fault st ~depart in
  let start = Float.max (depart +. (net.latency *. lat_f) +. jitter) d.rs_nic_free in
  let arrival = start +. (float_of_int bytes *. net.byte_time *. bw_f) in
  d.rs_nic_free <- arrival;
  arrival

(* Inject one transmission attempt of [m], departing at [depart].  Under
   fault injection the attempt may be lost: the sender then times out and
   retransmits with exponential backoff, and after [max_retries] lost
   retransmissions the run is declared {!Stalled} rather than hanging on a
   receive that can never complete.  [attempt] is 0 for the original
   transmission. *)
let transmit st (m : Mq.msg) ~depart ~attempt =
  let lost = match st.fault with Some f -> Fault.draw_drop f | None -> false in
  if lost then begin
    let f = Option.get st.fault in
    let fs = Fault.stats f in
    fs.dropped <- fs.dropped + 1;
    fire_fault st
      (Hooks.F_drop { src = m.m_src; dst = m.m_dst; bytes = m.m_bytes; attempt });
    let p = Fault.plan f in
    if attempt >= p.max_retries then begin
      (* The receiver is now waiting on a message that will never come;
         say exactly which pair and tag gave up, in wait-for-graph form. *)
      let doomed =
        Util.Waitgraph.edge ~rank:m.m_dst
          ~what:
            (Printf.sprintf "receive of %dB message (tag %d)" m.m_bytes
               m.m_tag)
          ~waiting_on:[ m.m_src ] ()
      in
      raise
        (Stalled
           (stalled_report st
              ~reason:
                (Printf.sprintf
                   "message %d->%d (%dB, tag %d) lost %d times; \
                    retransmission budget exhausted\n%s"
                   m.m_src m.m_dst m.m_bytes m.m_tag (attempt + 1)
                   (Util.Waitgraph.format
                      ~header:"undeliverable message:" [ doomed ]))))
    end
    else begin
      fs.timeouts <- fs.timeouts + 1;
      schedule st
        ~time:(depart +. Fault.timeout_after p ~attempt)
        (E_retransmit (m, attempt + 1))
    end
  end
  else begin
    (match st.fault with
    | Some f when attempt > 0 ->
        (Fault.stats f).retries <- (Fault.stats f).retries + 1;
        fire_fault st
          (Hooks.F_retransmit
             { src = m.m_src; dst = m.m_dst; bytes = m.m_bytes; attempt })
    | _ -> ());
    let arrival =
      match m.m_protocol with
      | Mq.Eager -> wire_arrival st st.ranks.(m.m_dst) ~depart ~bytes:m.m_bytes
      | Mq.Rendezvous ->
          (* only the RTS control message travels now; it does not occupy
             the receiver's inbound link *)
          let lat_f, _, jitter = wire_fault st ~depart in
          depart +. (st.net.latency *. lat_f) +. jitter
    in
    st.n_inflight_bytes <- st.n_inflight_bytes + m.m_bytes;
    schedule st ~time:arrival (E_deliver { m with m_arrival = arrival })
  end

(* Drain flow-controlled senders after [bytes] were released at [time]. *)
let rec release_buffer st (d : rank_state) ~bytes ~time =
  d.rs_buffered <- d.rs_buffered - bytes;
  drain_parked st d ~time

and drain_parked st (d : rank_state) ~time =
  match Util.Deque.peek_front d.rs_parked with
  | None -> ()
  | Some q ->
      if d.rs_buffered + q.q_bytes <= st.net.unexpected_buffer_bytes then begin
        ignore (Util.Deque.pop_front d.rs_parked);
        d.rs_buffered <- d.rs_buffered + q.q_bytes;
        inject_parked st d q ~time ~reserved:true;
        drain_parked st d ~time
      end

and inject_parked st (d : rank_state) (q : parked) ~time ~reserved =
  let net = st.net in
  let ti =
    Float.max time (q.q_call_time +. net.overhead) +. net.resume_latency
  in
  transmit st
    {
      Mq.m_src = q.q_src;
      m_dst = d.rs_rank;
      m_tag = q.q_tag;
      m_bytes = q.q_bytes;
      m_comm = q.q_comm;
      m_protocol = Mq.Eager;
      m_arrival = 0.;
      m_send_req = q.q_send_req;
      m_reserved = reserved;
    }
    ~depart:ti ~attempt:0;
  complete_req st (find_req st q.q_send_req) ~time:ti ()

(* Message processing occupies the receiver's progress engine serially:
   completion = max(ready, proc_free) + overhead + bytes * rx_copy
   (+ the extra unexpected-queue copy when applicable). *)
let rx_complete st (d : rank_state) ~ready ~bytes ~unexpected =
  let net = st.net in
  let cost =
    net.overhead
    +. (float_of_int bytes *. net.rx_copy_per_byte)
    +. (if unexpected then float_of_int bytes *. net.unexpected_copy_per_byte
        else 0.)
  in
  let tc = Float.max ready d.rs_proc_free +. cost in
  d.rs_proc_free <- tc;
  tc

(* Status seen by the receiver, with the source translated back into the
   receiving communicator's local numbering. *)
let recv_status st (m : Mq.msg) : Call.status =
  let comm = comm_of st m.m_comm in
  let local =
    match Comm.local_of_world comm m.m_src with
    | Some l -> l
    | None ->
        raise
          (Mpi_error
             (Printf.sprintf "sender %d not a member of communicator %d"
                m.m_src m.m_comm))
  in
  { actual_source = local; actual_tag = m.m_tag; received_bytes = m.m_bytes }

(* Every path that pairs a message with a posted receive funnels through
   here, so [on_p2p_match] fires exactly once per message, in matching
   order. *)
let complete_recv st (m : Mq.msg) recv_req ~time =
  List.iter
    (fun (h : Hooks.t) ->
      h.on_p2p_match ~time ~src:m.m_src ~dst:m.m_dst ~tag:m.m_tag
        ~bytes:m.m_bytes ~comm:m.m_comm)
    st.hooks;
  complete_req st recv_req ~time ~status:(recv_status st m) ()

(* A message has physically arrived at its destination. *)
let deliver st (m : Mq.msg) =
  st.n_inflight_bytes <- st.n_inflight_bytes - m.m_bytes;
  let d = st.ranks.(m.m_dst) in
  let ta = m.m_arrival in
  match Mq.Posted.take d.rs_posted ~src:m.m_src ~tag:m.m_tag ~comm:m.m_comm with
  | Some p -> (
      let recv_req = find_req st p.p_req in
      match m.m_protocol with
      | Mq.Eager ->
          let tc = rx_complete st d ~ready:ta ~bytes:m.m_bytes ~unexpected:false in
          (* the receive buffer holds the payload until it is processed *)
          if m.m_reserved then release_buffer st d ~bytes:m.m_bytes ~time:tc;
          complete_recv st m recv_req ~time:tc
      | Mq.Rendezvous ->
          (* Handshake completes on RTS arrival; then the payload moves. *)
          let data_arrival = wire_arrival st d ~depart:ta ~bytes:m.m_bytes in
          complete_req st (find_req st m.m_send_req) ~time:data_arrival ();
          let tc =
            rx_complete st d ~ready:data_arrival ~bytes:m.m_bytes ~unexpected:false
          in
          complete_recv st m recv_req ~time:tc)
  | None ->
      Mq.Unexpected.add d.rs_unexpected m;
      st.n_unexpected <- st.n_unexpected + 1

let parked_matches_posted (q : parked) (p : Mq.posted) =
  q.q_comm = p.p_comm
  && (match p.p_src with None -> true | Some s -> s = q.q_src)
  && match p.p_tag with None -> true | Some t -> t = q.q_tag

(* The receiver posts a receive: match the unexpected queue in arrival
   order (the simulator's deterministic wildcard policy), or un-stall a
   flow-controlled sender whose message this receive will consume. *)
let post_recv st rank (p : Mq.posted) =
  let d = st.ranks.(rank) in
  match Mq.Unexpected.take d.rs_unexpected p with
  | Some m -> (
      let recv_req = find_req st p.p_req in
      match m.m_protocol with
      | Mq.Eager ->
          let tc =
            rx_complete st d ~ready:p.p_time ~bytes:m.m_bytes ~unexpected:true
          in
          if m.m_reserved then release_buffer st d ~bytes:m.m_bytes ~time:tc;
          complete_recv st m recv_req ~time:tc
      | Mq.Rendezvous ->
          let data_arrival = wire_arrival st d ~depart:p.p_time ~bytes:m.m_bytes in
          complete_req st (find_req st m.m_send_req) ~time:data_arrival ();
          let tc =
            rx_complete st d ~ready:data_arrival ~bytes:m.m_bytes ~unexpected:false
          in
          complete_recv st m recv_req ~time:tc)
  | None -> (
      Mq.Posted.add d.rs_posted p;
      (* Liveness: if the message this receive is waiting for is parked at
         a flow-controlled sender, force its injection past the full
         buffer — it will match the posted receive, not the buffer. *)
      match Util.Deque.remove_first (fun q -> parked_matches_posted q p) d.rs_parked with
      | Some q -> inject_parked st d q ~time:p.p_time ~reserved:false
      | None -> ())

(* ------------------------------------------------------------------ *)
(* Point-to-point calls                                                *)

let do_send st rank (call : Call.t) ~blocking ~dst ~bytes ~tag =
  let net = st.net in
  let comm = call.comm in
  let dst_world = Comm.world_of_local comm dst in
  if dst_world = rank then
    raise (Mpi_error (Printf.sprintf "rank %d sending to itself" rank));
  let rs = st.ranks.(rank) in
  let t0 = rs.rs_clock in
  let req = new_req st `Send in
  st.n_msgs <- st.n_msgs + 1;
  st.n_bytes <- st.n_bytes + bytes;
  let return_at time =
    if blocking then block_on_reqs st rank W_send [ req.r_id ]
    else schedule st ~time (E_resume (rank, V_request req.r_id))
  in
  if Netmodel.is_eager net ~bytes then begin
    let d = st.ranks.(dst_world) in
    let earlier_parked = Util.Deque.exists (fun q -> q.q_src = rank) d.rs_parked in
    (* a message that can never fit the buffer is admitted anyway once a
       matching receive is posted (it drains straight into the
       application); liveness depends on this *)
    let oversize = bytes > net.unexpected_buffer_bytes in
    let has_posted =
      Mq.Posted.mem d.rs_posted ~src:rank ~tag ~comm:(Comm.id comm)
    in
    if
      (not earlier_parked)
      && ((has_posted && oversize)
         || d.rs_buffered + bytes <= net.unexpected_buffer_bytes)
    then begin
      (* every eager payload occupies the receiver's buffer from injection
         until the receiver has processed it *)
      let reserved = true in
      d.rs_buffered <- d.rs_buffered + bytes;
      let ti = t0 +. net.overhead in
      transmit st
        {
          Mq.m_src = rank; m_dst = dst_world; m_tag = tag; m_bytes = bytes;
          m_comm = Comm.id comm; m_protocol = Mq.Eager; m_arrival = 0.;
          m_send_req = req.r_id; m_reserved = reserved;
        }
        ~depart:ti ~attempt:0;
      complete_req st req ~time:ti ();
      return_at ti
    end
    else begin
      (* Receiver's unexpected buffer is full (or ordering requires queueing
         behind an earlier stalled message): flow control stalls this send. *)
      st.n_stalls <- st.n_stalls + 1;
      Util.Deque.push_back d.rs_parked
        {
          q_src = rank; q_tag = tag; q_bytes = bytes;
          q_comm = Comm.id comm; q_call_time = t0; q_send_req = req.r_id;
        };
      return_at (t0 +. net.overhead)
    end
  end
  else begin
    (* Rendezvous: only the RTS travels now. *)
    transmit st
      {
        Mq.m_src = rank; m_dst = dst_world; m_tag = tag; m_bytes = bytes;
        m_comm = Comm.id comm; m_protocol = Mq.Rendezvous;
        m_arrival = 0.; m_send_req = req.r_id; m_reserved = false;
      }
      ~depart:(t0 +. net.overhead) ~attempt:0;
    return_at (t0 +. net.overhead)
  end

let do_recv st rank (call : Call.t) ~blocking ~src ~bytes:_ ~tag =
  let comm = call.comm in
  let rs = st.ranks.(rank) in
  let t0 = rs.rs_clock in
  let req = new_req st `Recv in
  let p_src =
    match (src : Call.source) with
    | Any_source -> None
    | Rank r ->
        let w = Comm.world_of_local comm r in
        if w = rank then
          raise (Mpi_error (Printf.sprintf "rank %d receiving from itself" rank));
        Some w
  in
  let p_tag = match (tag : Call.tag_match) with Any_tag -> None | Tag t -> Some t in
  let p =
    {
      Mq.p_req = req.r_id; p_src; p_tag; p_comm = Comm.id comm;
      p_time = t0 +. st.net.overhead;
    }
  in
  post_recv st rank p;
  if blocking then block_on_reqs st rank W_recv [ req.r_id ]
  else schedule st ~time:(t0 +. st.net.overhead) (E_resume (rank, V_request req.r_id))

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)

(* Invariant: a collective is finished only once every member has arrived,
   so its arrival list is non-empty wherever the cost and result are
   computed.  A violation is an engine bug; report it with enough context
   to debug rather than dying on a bare [Failure "hd"]. *)
let first_arrival ~key (c : coll_state) =
  match c.c_arrivals with
  | a :: _ -> a
  | [] ->
      let cid, _, slot = key in
      let members =
        c.c_parts |> Array.to_list |> List.map string_of_int
        |> String.concat ","
      in
      raise
        (Mpi_error
           (Printf.sprintf
              "internal invariant violated: collective %s (communicator %d, \
               slot %d) completed with an empty arrival list; participants \
               {%s}"
              c.c_name cid slot members))

let coll_cost st ~key (c : coll_state) =
  let net = st.net in
  let p = Comm.size c.c_comm in
  let sum = Array.fold_left ( + ) 0 in
  (* Representative op: the root's where rooted sizes matter, else any. *)
  let op_of_rank want_root =
    let found =
      List.find_opt (fun (w, _, _) ->
          match Comm.local_of_world c.c_comm w with
          | Some l -> l = want_root
          | None -> false)
        c.c_arrivals
    in
    match found with
    | Some (_, _, op) -> op
    | None -> let (_, _, op) = first_arrival ~key c in op
  in
  let (_, _, any_op) = first_arrival ~key c in
  match any_op with
  | Barrier -> Netmodel.barrier_cost net ~p
  | Bcast { root; _ } -> (
      match op_of_rank root with
      | Bcast { bytes; _ } -> Netmodel.bcast_cost net ~p ~bytes
      | _ -> assert false)
  | Reduce { root; _ } -> (
      match op_of_rank root with
      | Reduce { bytes; _ } -> Netmodel.reduce_cost net ~p ~bytes
      | _ -> assert false)
  | Allreduce { bytes } -> Netmodel.allreduce_cost net ~p ~bytes
  | Gather { root; _ } -> (
      match op_of_rank root with
      | Gather { bytes_per_rank; _ } ->
          Netmodel.gather_cost net ~p ~total:((p - 1) * bytes_per_rank)
      | _ -> assert false)
  | Gatherv { root; _ } -> (
      match op_of_rank root with
      | Gatherv { bytes_from; _ } -> Netmodel.gather_cost net ~p ~total:(sum bytes_from)
      | _ -> assert false)
  | Scatter { root; _ } -> (
      match op_of_rank root with
      | Scatter { bytes_per_rank; _ } ->
          Netmodel.gather_cost net ~p ~total:((p - 1) * bytes_per_rank)
      | _ -> assert false)
  | Scatterv { root; _ } -> (
      match op_of_rank root with
      | Scatterv { bytes_to; _ } -> Netmodel.gather_cost net ~p ~total:(sum bytes_to)
      | _ -> assert false)
  | Allgather { bytes_per_rank } ->
      Netmodel.allgather_cost net ~p ~total:(p * bytes_per_rank)
  | Allgatherv { bytes_from } -> Netmodel.allgather_cost net ~p ~total:(sum bytes_from)
  | Alltoall { bytes_per_pair } ->
      Netmodel.alltoall_cost net ~p ~total:(p * bytes_per_pair)
  | Alltoallv _ ->
      (* Bottleneck rank's row determines the cost. *)
      let worst =
        List.fold_left
          (fun acc (_, _, op) ->
            match op with
            | Call.Alltoallv { bytes_to } -> max acc (sum bytes_to)
            | _ -> acc)
          0 c.c_arrivals
      in
      Netmodel.alltoall_cost net ~p ~total:worst
  | Reduce_scatter { bytes_per_rank } ->
      Netmodel.reduce_scatter_cost net ~p ~total:(sum bytes_per_rank)
  | Neighbor_alltoall _ | Neighbor_allgather _ ->
      (* Bottleneck caller: its degree and payload bound the exchange. *)
      List.fold_left
        (fun acc (_, _, op) ->
          match op with
          | Call.Neighbor_alltoall { neighbors; bytes_per_neighbor; _ } ->
              Float.max acc
                (Netmodel.neighbor_cost net ~degree:(Array.length neighbors)
                   ~bytes:bytes_per_neighbor)
          | Call.Neighbor_allgather { neighbors; bytes; _ } ->
              Float.max acc
                (Netmodel.neighbor_cost net
                   ~degree:(Array.length neighbors)
                   ~bytes)
          | _ -> acc)
        (Netmodel.neighbor_cost net ~degree:0 ~bytes:0)
        c.c_arrivals
  | Comm_split _ | Comm_dup | Finalize -> Netmodel.barrier_cost net ~p
  | Send _ | Isend _ | Recv _ | Irecv _ | Wait _ | Waitall _ | Compute _ | Wtime ->
      assert false

let split_comms st (c : coll_state) =
  (* color -> members ordered by (key, world rank) *)
  let by_color = Hashtbl.create 8 in
  List.iter
    (fun (w, _, op) ->
      match op with
      | Call.Comm_split { color; key } ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_color color) in
          Hashtbl.replace by_color color ((key, w) :: cur)
      | _ -> assert false)
    c.c_arrivals;
  let colors = Hashtbl.fold (fun color _ acc -> color :: acc) by_color [] in
  let colors = List.sort compare colors in
  let assignment = Hashtbl.create 8 in
  List.iter
    (fun color ->
      let members =
        Hashtbl.find by_color color |> List.sort compare |> List.map snd
        |> Array.of_list
      in
      let id = st.next_comm in
      st.next_comm <- id + 1;
      let comm = Comm.make ~id ~members in
      Hashtbl.replace st.comms id comm;
      Array.iter (fun w -> Hashtbl.replace assignment w comm) members)
    colors;
  fun w -> Hashtbl.find assignment w

(* The representative op of a collective: the root's where rooted payload
   sizes matter (the root's [bytes] drives schedule expansion), else any
   arrival's. *)
let representative_op ~key (c : coll_state) =
  let (_, _, any_op) = first_arrival ~key c in
  let of_rank want_root =
    match
      List.find_opt
        (fun (w, _, _) ->
          match Comm.local_of_world c.c_comm w with
          | Some l -> l = want_root
          | None -> false)
        c.c_arrivals
    with
    | Some (_, _, op) -> op
    | None -> any_op
  in
  match any_op with
  | Call.Bcast { root; _ } | Call.Reduce { root; _ } -> of_rank root
  | op -> op

(* Neighborhood collectives under a pluggable strategy: participants are
   indexed by position in the declared participant set; each arrival's
   neighbor list becomes a relative-offset array in that indexing.  When
   every participant declares the same offsets the schedule is the
   message-combining (isomorphic) form, otherwise the naive per-link
   expansion — {!Coll_alg.neighbor_schedule} decides. *)
let neighbor_times st (c : coll_state) =
  let comm = c.c_comm in
  let q = Array.length c.c_parts in
  let pos_of_world = Hashtbl.create q in
  Array.iteri (fun i w -> Hashtbl.replace pos_of_world w i) c.c_parts;
  let per_rank = Array.make q ([||], 0) in
  let start = Array.make q 0. in
  List.iter
    (fun (w, t, op) ->
      match Hashtbl.find_opt pos_of_world w with
      | None -> ()
      | Some i ->
          let neighbors, bytes =
            match op with
            | Call.Neighbor_alltoall { neighbors; bytes_per_neighbor; _ } ->
                (neighbors, bytes_per_neighbor)
            | Call.Neighbor_allgather { neighbors; bytes; _ } -> (neighbors, bytes)
            | _ -> ([||], 0)
          in
          let offsets =
            Array.map
              (fun nb ->
                let nb_world = Comm.world_of_local comm nb in
                match Hashtbl.find_opt pos_of_world nb_world with
                | Some j -> (j - i + q) mod q
                | None -> 0)
              neighbors
          in
          Array.sort compare offsets;
          per_rank.(i) <- (offsets, bytes);
          start.(i) <- t +. st.net.collective_dispatch)
    c.c_arrivals;
  let fin = Coll_alg.timings st.net (Coll_alg.neighbor_schedule ~per_rank) ~start in
  Some (fun w ->
      match Hashtbl.find_opt pos_of_world w with
      | Some i -> Some fin.(i)
      | None -> None)

(* Under a pluggable strategy, a lookup from world rank to schedule
   completion time, or [None] for the monolithic analytic path.
   Communicator management and [Finalize] always stay monolithic (they
   synchronize, they do not move data). *)
let coll_schedule_times st ~key (c : coll_state) =
  match st.coll_alg with
  | `Monolithic -> None
  | sel -> (
      let (_, _, any_op) = first_arrival ~key c in
      match any_op with
      | Call.Comm_split _ | Call.Comm_dup | Call.Finalize -> None
      | Call.Neighbor_alltoall _ | Call.Neighbor_allgather _ ->
          neighbor_times st c
      | _ -> (
          let p = Comm.size c.c_comm in
          let op = representative_op ~key c in
          match Coll_alg.expand (Coll_alg.select sel ~op ~p) ~op ~p with
          | None -> None
          | Some sched ->
              (* Each rank enters the schedule when it arrives, paying the
                 dispatch cost once per logical collective. *)
              let start = Array.make p 0. in
              List.iter
                (fun (w, t, _) ->
                  match Comm.local_of_world c.c_comm w with
                  | Some l -> start.(l) <- t +. st.net.collective_dispatch
                  | None -> ())
                c.c_arrivals;
              let fin = Coll_alg.timings st.net sched ~start in
              Some
                (fun w ->
                  match Comm.local_of_world c.c_comm w with
                  | Some l -> Some fin.(l)
                  | None -> None)))

let finish_collective st key (c : coll_state) =
  Hashtbl.remove st.colls key;
  let t_all =
    List.fold_left (fun acc (_, t, _) -> Float.max acc t) 0. c.c_arrivals
  in
  let (_, _, any_op) = first_arrival ~key c in
  let value_for =
    match any_op with
    | Call.Comm_split _ ->
        let lookup = split_comms st c in
        fun w -> Call.V_comm (lookup w)
    | Call.Comm_dup ->
        let id = st.next_comm in
        st.next_comm <- id + 1;
        let comm = Comm.make ~id ~members:(Comm.members c.c_comm) in
        Hashtbl.replace st.comms id comm;
        fun _ -> Call.V_comm comm
    | Call.Finalize ->
        fun w ->
          st.ranks.(w).rs_finalized <- true;
          Call.V_unit
    | _ -> fun _ -> Call.V_unit
  in
  let participants =
    Array.of_list (List.rev_map (fun (w, _, _) -> w) c.c_arrivals)
  in
  let cid = match key with k, _, _ -> k in
  (* Whichever strategy runs, exactly one completion event fires for the
     logical collective, timestamped at its last rank's completion. *)
  match coll_schedule_times st ~key c with
  | None ->
      let done_at = t_all +. coll_cost st ~key c in
      List.iter
        (fun (w, _, _) -> schedule st ~time:done_at (E_resume (w, value_for w)))
        c.c_arrivals;
      fire_collective_complete st ~time:done_at ~comm:cid ~name:c.c_name
        ~participants
  | Some fin_of ->
      let done_at =
        List.fold_left
          (fun acc (w, _, _) ->
            match fin_of w with Some t -> Float.max acc t | None -> acc)
          t_all c.c_arrivals
      in
      List.iter
        (fun (w, _, _) ->
          let at = match fin_of w with Some t -> t | None -> done_at in
          schedule st ~time:at (E_resume (w, value_for w)))
        c.c_arrivals;
      fire_collective_complete st ~time:done_at ~comm:cid ~name:c.c_name
        ~participants

(* Declared participant set of a neighborhood collective, validated for
   the calling rank: strictly increasing communicator-local ranks, within
   the communicator, containing the caller; the neighbor list strictly
   increasing, a subset of the participant set, never the caller.  [[||]]
   participants mean the whole communicator.  Returns the participant-set
   signature (the keying component) and the world ranks of the set;
   non-neighborhood operations synchronize the whole communicator under
   the empty signature. *)
let participant_set rank (call : Call.t) =
  let comm = call.comm in
  let size = Comm.size comm in
  let whole () = ("", Comm.members comm) in
  match call.op with
  | Call.Neighbor_alltoall { parts; neighbors; _ }
  | Call.Neighbor_allgather { parts; neighbors; _ } ->
      let name = Call.op_name call.op in
      let local =
        match Comm.local_of_world comm rank with
        | Some l -> l
        | None -> assert false (* membership checked by the caller *)
      in
      let check_sorted what a =
        Array.iteri
          (fun i v ->
            if v < 0 || v >= size then
              raise
                (Mpi_error
                   (Printf.sprintf
                      "rank %d: %s %s names local rank %d outside \
                       communicator %d (size %d)"
                      rank name what v (Comm.id comm) size));
            if i > 0 && a.(i - 1) >= v then
              raise
                (Mpi_error
                   (Printf.sprintf
                      "rank %d: %s %s must be strictly increasing" rank name
                      what)))
          a
      in
      let in_parts =
        if Array.length parts = 0 then fun _ -> true
        else begin
          check_sorted "participant set" parts;
          if not (Array.exists (fun v -> v = local) parts) then
            raise
              (Mpi_error
                 (Printf.sprintf
                    "rank %d (local %d) calls %s but is not in its declared \
                     participant set"
                    rank local name));
          fun v -> Array.exists (fun u -> u = v) parts
        end
      in
      check_sorted "neighbor list" neighbors;
      Array.iter
        (fun nb ->
          if nb = local then
            raise
              (Mpi_error
                 (Printf.sprintf "rank %d: %s neighbor list contains itself"
                    rank name));
          if not (in_parts nb) then
            raise
              (Mpi_error
                 (Printf.sprintf
                    "rank %d: %s neighbor %d is outside the declared \
                     participant set"
                    rank name nb)))
        neighbors;
      if Array.length parts = 0 then whole ()
      else
        ( String.concat "," (Array.to_list (Array.map string_of_int parts)),
          Array.map (fun l -> Comm.world_of_local comm l) parts )
  | _ -> whole ()

let do_collective st rank (call : Call.t) =
  let comm = call.comm in
  if not (Comm.is_member comm ~world:rank) then
    raise
      (Mpi_error
         (Printf.sprintf "rank %d calling %s on communicator %d it is not in"
            rank (Call.op_name call.op) (Comm.id comm)));
  let cid = Comm.id comm in
  let psig, parts = participant_set rank call in
  let slot =
    Option.value ~default:0 (Hashtbl.find_opt st.coll_seq (cid, psig, rank))
  in
  Hashtbl.replace st.coll_seq (cid, psig, rank) (slot + 1);
  let key = (cid, psig, slot) in
  let c =
    match Hashtbl.find_opt st.colls key with
    | Some c -> c
    | None ->
        let c =
          {
            c_comm = comm;
            c_name = Call.op_name call.op;
            c_parts = parts;
            c_arrivals = [];
          }
        in
        Hashtbl.replace st.colls key c;
        c
  in
  if c.c_name <> Call.op_name call.op then
    raise
      (Mpi_error
         (Printf.sprintf
            "collective mismatch on communicator %d: rank %d calls %s at %s \
             but another rank called %s"
            cid rank (Call.op_name call.op)
            (Util.Callsite.to_string call.site)
            c.c_name));
  c.c_arrivals <- (rank, st.ranks.(rank).rs_clock, call.op) :: c.c_arrivals;
  if List.length c.c_arrivals = Array.length c.c_parts then
    finish_collective st key c

(* ------------------------------------------------------------------ *)
(* Call dispatch                                                       *)

let handle_call st rank (call : Call.t) (k : fiber) =
  let rs = st.ranks.(rank) in
  st.fibers.(rank) <- Some k;
  rs.rs_current <- Some call;
  fire_enter st rank call;
  match call.op with
  | Send { dst; bytes; tag } -> do_send st rank call ~blocking:true ~dst ~bytes ~tag
  | Isend { dst; bytes; tag } -> do_send st rank call ~blocking:false ~dst ~bytes ~tag
  | Recv { src; bytes; tag } -> do_recv st rank call ~blocking:true ~src ~bytes ~tag
  | Irecv { src; bytes; tag } -> do_recv st rank call ~blocking:false ~src ~bytes ~tag
  | Wait r -> block_on_reqs st rank W_wait [ r ]
  | Waitall rs_ -> block_on_reqs st rank W_waitall rs_
  | Compute d ->
      if not (Float.is_finite d) || d < 0. then
        raise (Mpi_error "compute: duration must be finite and non-negative");
      let d =
        match st.fault with
        | Some f -> d *. Fault.compute_factor f ~rank
        | None -> d
      in
      schedule st ~time:(rs.rs_clock +. d) (E_resume (rank, V_unit))
  | Wtime -> schedule st ~time:rs.rs_clock (E_resume (rank, V_time rs.rs_clock))
  | Barrier | Bcast _ | Reduce _ | Allreduce _ | Gather _ | Gatherv _
  | Allgather _ | Allgatherv _ | Scatter _ | Scatterv _ | Alltoall _
  | Alltoallv _ | Reduce_scatter _ | Neighbor_alltoall _ | Neighbor_allgather _
  | Comm_split _ | Comm_dup | Finalize ->
      do_collective st rank call

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)

let run ?(hooks = []) ?(net = Netmodel.bluegene_l) ?fault ?max_events
    ?max_virtual_time ?(matcher : Matchq.impl = `Indexed)
    ?(coll_alg : Coll_alg.t = `Monolithic) ?(obs = Obs.Sink.nil)
    ?(obs_sample_every = 256) ~nranks program =
  if nranks < 1 then raise (Mpi_error "run: nranks must be >= 1");
  if obs_sample_every < 1 then
    raise (Mpi_error "run: obs_sample_every must be >= 1");
  (* With a live sink, transport incidents and collective completions are
     observed through the standard hook mechanism. *)
  let hooks = if obs.Obs.Sink.enabled then hooks @ [ Hooks.observer obs ] else hooks in
  (match max_events with
  | Some m when m <= 0 -> raise (Mpi_error "run: max_events must be positive")
  | _ -> ());
  (match max_virtual_time with
  | Some t when not (Float.is_finite t) || t <= 0. ->
      raise (Mpi_error "run: max_virtual_time must be positive and finite")
  | _ -> ());
  let fault =
    match fault with
    | Some plan when not (Fault.is_noop plan) -> Some (Fault.start plan)
    | _ -> None
  in
  let world = Comm.world nranks in
  let st =
    {
      net;
      nranks;
      ranks =
        Array.init nranks (fun rank ->
            {
              rs_rank = rank; rs_clock = 0.; rs_finished = false;
              rs_finalized = false; rs_current = None;
              rs_posted = Mq.Posted.create matcher;
              rs_unexpected = Mq.Unexpected.create matcher;
              rs_buffered = 0;
              rs_parked = Util.Deque.create ~capacity:4 ();
              rs_proc_free = 0.; rs_nic_free = 0.;
            });
      events = Util.Pqueue.create ();
      reqs = Hashtbl.create 1024;
      next_req = 0;
      next_comm = 1;
      comms = Hashtbl.create 16;
      colls = Hashtbl.create 64;
      coll_seq = Hashtbl.create 64;
      coll_alg;
      hooks;
      fibers = Array.make nranks None;
      fault;
      max_events;
      max_virtual_time;
      obs;
      obs_sample_every;
      now = 0.;
      n_events = 0;
      n_msgs = 0;
      n_bytes = 0;
      n_unexpected = 0;
      n_stalls = 0;
      n_inflight_bytes = 0;
    }
  in
  Hashtbl.replace st.comms 0 world;
  let start_fiber rank =
    let body () =
      program { rank; nranks; world };
      let rs = st.ranks.(rank) in
      if not rs.rs_finalized then
        raise
          (Mpi_error (Printf.sprintf "rank %d returned without MPI_Finalize" rank));
      rs.rs_finished <- true
    in
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Mpi_call call ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    handle_call st rank call k)
            | _ -> None);
      }
  in
  let resume rank v =
    let rs = st.ranks.(rank) in
    rs.rs_clock <- Float.max rs.rs_clock st.now;
    (match rs.rs_current with
    | Some call -> fire_return st rank rs.rs_clock call v
    | None -> ());
    rs.rs_current <- None;
    match st.fibers.(rank) with
    | None -> raise (Mpi_error (Printf.sprintf "resume of idle rank %d" rank))
    | Some k ->
        st.fibers.(rank) <- None;
        Effect.Deep.continue k v
  in
  for rank = 0 to nranks - 1 do
    schedule st ~time:0. (E_start rank)
  done;
  let rec loop () =
    match Util.Pqueue.pop st.events with
    | None ->
        if Array.exists (fun rs -> not rs.rs_finished) st.ranks then
          raise (Deadlock (deadlock_report st))
    | Some (t, ev) ->
        st.now <- t;
        st.n_events <- st.n_events + 1;
        (* Watchdog: a run that exceeds its budgets is reported as Stalled
           with a per-rank diagnostic instead of spinning forever. *)
        (match st.max_events with
        | Some budget when st.n_events > budget ->
            raise
              (Stalled
                 (stalled_report st
                    ~reason:
                      (Printf.sprintf "event budget exhausted (max_events = %d)"
                         budget)))
        | _ -> ());
        (match st.max_virtual_time with
        | Some budget when t > budget ->
            raise
              (Stalled
                 (stalled_report st
                    ~reason:
                      (Printf.sprintf
                         "virtual-time budget exhausted (max_virtual_time = \
                          %gs)"
                         budget)))
        | _ -> ());
        (match ev with
        | E_start rank -> start_fiber rank
        | E_resume (rank, v) -> resume rank v
        | E_deliver m -> deliver st m
        | E_retransmit (m, attempt) -> transmit st m ~depart:t ~attempt);
        if st.obs.Obs.Sink.enabled && st.n_events mod st.obs_sample_every = 0
        then obs_sample st;
        loop ()
  in
  loop ();
  if st.obs.Obs.Sink.enabled then obs_sample st;
  let finish_times = Array.map (fun rs -> rs.rs_clock) st.ranks in
  let fstats =
    match st.fault with
    | Some f -> Fault.stats f
    | None -> { Fault.retries = 0; timeouts = 0; dropped = 0 }
  in
  {
    elapsed = Array.fold_left Float.max 0. finish_times;
    finish_times;
    events = st.n_events;
    messages = st.n_msgs;
    p2p_bytes = st.n_bytes;
    unexpected = st.n_unexpected;
    flow_stalls = st.n_stalls;
    retries = fstats.retries;
    timeouts = fstats.timeouts;
    dropped = fstats.dropped;
  }
