(** Deterministic discrete-event simulation of an MPI machine.

    Each rank runs as a cooperative fiber (OCaml effects).  Fibers advance
    only when the event loop resumes them, and events are processed in
    strictly increasing virtual-time order (ties broken FIFO), so a whole
    run is a deterministic function of the program, the rank count, the
    {!Netmodel}, and the {!Fault} plan (whose stochastic draws are consumed
    in event order from a seeded stream).  Message semantics follow MPI:
    tag/source matching with wildcards, non-overtaking per sender/receiver
    pair, eager vs. rendezvous protocols, unexpected-message queueing with
    copy cost, and sender flow control when a receiver's unexpected buffer
    fills.

    Applications do not call this module directly — they use the {!Mpi}
    wrapper — but tests exercise it through the same entry point. *)

exception Deadlock of string
(** Raised when no event is pending but some rank has not finished; the
    message lists each stuck rank with its blocking call and queue
    depths. *)

exception Mpi_error of string
(** Semantic misuse: collective mismatch on a communicator, a rank
    returning without [MPI_Finalize], invalid arguments. *)

exception Stalled of string
(** Raised when the run cannot make useful progress even though events are
    still pending: the [max_events] or [max_virtual_time] watchdog budget
    was exhausted, or a message exceeded its retransmission budget under
    fault injection.  The message names the reason and lists every
    unfinished rank with its blocking call and queue depths — a would-be
    infinite run becomes a diagnostic instead. *)

type ctx = { rank : int; nranks : int; world : Comm.t }

(** Cumulative run metrics. *)
type outcome = {
  elapsed : float;  (** max over ranks of finish time *)
  finish_times : float array;
  events : int;  (** discrete events processed *)
  messages : int;  (** point-to-point messages injected (logical sends;
                       retransmissions are counted in [retries]) *)
  p2p_bytes : int;
  unexpected : int;  (** messages queued before their receive was posted *)
  flow_stalls : int;  (** sends delayed by receiver-side flow control *)
  retries : int;  (** retransmission attempts performed (fault injection) *)
  timeouts : int;  (** sender timeout expirations (fault injection) *)
  dropped : int;  (** transmission attempts lost in flight (fault injection) *)
}

(** [run ~nranks program] simulates [program] on every rank.

    @param hooks interposition clients, called in registration order.
    @param net the network model (default {!Netmodel.bluegene_l}).
    @param fault seeded fault-injection plan; an inert plan (or none)
      skips the fault machinery entirely.
    @param max_events watchdog: raise {!Stalled} once this many discrete
      events have been processed.
    @param max_virtual_time watchdog: raise {!Stalled} once virtual time
      exceeds this many seconds.
    @param matcher message-matching implementation (default [`Indexed],
      the hash-indexed O(1) matcher; [`Reference] is the original list
      scan, kept as the semantic oracle for differential tests and perf
      baselines — see {!Matchq}).
    @param coll_alg collective algorithm selection (default
      [`Monolithic], the original analytic model — the reference
      strategy, so default timings are unchanged).  Other selections
      expand applicable collectives into round schedules priced by the
      p2p wire parameters ({!Coll_alg}); inapplicable combinations fall
      back to [`Monolithic].  Strategy choice affects timing only: it
      never changes matching, message contents, deadlock behaviour, or
      how many {!Hooks.on_collective_complete} events fire (exactly one
      per logical collective).
    @param obs observability sink (default {!Obs.Sink.nil}).  With an
      enabled sink the engine emits per-rank queue-depth counter samples
      (posted / unexpected / parked depths, matcher bucket and raw deque
      lengths, buffered bytes), an engine-wide counter track (bytes in
      flight, event / message / stall totals, fault counters), and — via
      an automatically appended {!Hooks.observer} — fault and
      collective-completion instants.  All timestamps are virtual
      microseconds, so sampled traces are deterministic.  With the [nil]
      sink every observation point is a single flag test.
    @param obs_sample_every emit queue-depth samples every this many
      discrete events (default 256; must be >= 1). *)
val run :
  ?hooks:Hooks.t list ->
  ?net:Netmodel.t ->
  ?fault:Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?matcher:Matchq.impl ->
  ?coll_alg:Coll_alg.t ->
  ?obs:Obs.Sink.t ->
  ?obs_sample_every:int ->
  nranks:int ->
  (ctx -> unit) ->
  outcome

(** [perform call] — issue an MPI call from inside a running rank fiber.
    Used by {!Mpi}; calling it outside [run] raises [Mpi_error]. *)
val perform : Call.t -> Call.value
