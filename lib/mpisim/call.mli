(** Descriptors for the MPI operations the simulator understands.

    Ranks and peers inside [op] are communicator-local (as in real MPI
    argument lists); the engine translates through {!Comm}. *)

(** Request handle for nonblocking operations. *)
type request = int

type source = Rank of int | Any_source

(** Tag matching; [Any_tag] is MPI_ANY_TAG. *)
type tag_match = Tag of int | Any_tag

type status = {
  actual_source : int;  (** communicator-local rank of the matched sender *)
  actual_tag : int;
  received_bytes : int;
}

type op =
  | Send of { dst : int; bytes : int; tag : int }
  | Isend of { dst : int; bytes : int; tag : int }
  | Recv of { src : source; bytes : int; tag : tag_match }
  | Irecv of { src : source; bytes : int; tag : tag_match }
  | Wait of request
  | Waitall of request list
  | Barrier
  | Bcast of { root : int; bytes : int }
  | Reduce of { root : int; bytes : int }
  | Allreduce of { bytes : int }
  | Gather of { root : int; bytes_per_rank : int }
  | Gatherv of { root : int; bytes_from : int array }
  | Allgather of { bytes_per_rank : int }
  | Allgatherv of { bytes_from : int array }
  | Scatter of { root : int; bytes_per_rank : int }
  | Scatterv of { root : int; bytes_to : int array }
  | Alltoall of { bytes_per_pair : int }
  | Alltoallv of { bytes_to : int array }
  | Reduce_scatter of { bytes_per_rank : int array }
  | Neighbor_alltoall of {
      parts : int array;
          (** sorted communicator-local ranks of the declared participant
              set; [[||]] means the whole communicator.  Every participant
              must call the operation (it synchronizes the set), but data
              moves only along each caller's [neighbors]. *)
      neighbors : int array;
          (** this caller's sorted communicator-local neighbor list; must be
              a subset of the participant set and must not contain the
              caller *)
      bytes_per_neighbor : int;
    }
      (** sparse all-to-all: a distinct [bytes_per_neighbor]-sized block to
          each neighbor *)
  | Neighbor_allgather of { parts : int array; neighbors : int array; bytes : int }
      (** sparse allgather: the same [bytes]-sized block to every neighbor *)
  | Comm_split of { color : int; key : int }
  | Comm_dup
  | Compute of float  (** local work for the given number of seconds *)
  | Wtime
  | Finalize

type t = { op : op; comm : Comm.t; site : Util.Callsite.t }

(** Value a call resumes its caller with. *)
type value =
  | V_unit
  | V_request of request
  | V_status of status
  | V_statuses of status array
  | V_comm of Comm.t
  | V_time of float

val is_collective : op -> bool
val is_compute : op -> bool

(** Human-readable MPI-style name, e.g. ["MPI_Isend"]. *)
val op_name : op -> string

(** Bytes this rank contributes to the operation (its send/recv volume as
    used by profiling); [p] is the communicator size, [rank] the caller's
    local rank. *)
val local_bytes : op -> p:int -> rank:int -> int

val pp_op : Format.formatter -> op -> unit
