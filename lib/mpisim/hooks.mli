(** PMPI-style interposition.

    Clients (the ScalaTrace tracer, the mpiP-like profiler) register hooks
    that observe every MPI call a rank makes, with virtual timestamps.
    [on_enter] fires when the application invokes the call; [on_return]
    fires when the call completes and the application resumes.  [Compute]
    and [Wtime] pseudo-calls are reported too; clients that only care about
    MPI events filter them with {!Call.is_compute}.

    When fault injection is active ({!Fault}), [on_fault] additionally
    reports transport-level incidents invisible to the application: a
    transmission attempt lost in flight, and the retransmission that
    follows its timeout.  Build hooks with [{ nil with ... }] so adding
    observation points stays source-compatible. *)

(** A transport incident under fault injection.  [attempt] is 0 for the
    original transmission, [n] for the n-th retransmission. *)
type fault_event =
  | F_drop of { src : int; dst : int; bytes : int; attempt : int }
  | F_retransmit of { src : int; dst : int; bytes : int; attempt : int }

type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
  on_fault : time:float -> fault_event -> unit;
}

(** A hook that does nothing; override the fields you need. *)
val nil : t
