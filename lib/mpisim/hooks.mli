(** PMPI-style interposition.

    Clients (the ScalaTrace tracer, the mpiP-like profiler, the
    observability layer) register hooks that observe every MPI call a rank
    makes, with virtual timestamps.  [on_enter] fires when the application
    invokes the call; [on_return] fires when the call completes and the
    application resumes.  [Compute] and [Wtime] pseudo-calls are reported
    too; clients that only care about MPI events filter them with
    {!Call.is_compute}.

    When fault injection is active ({!Fault}), [on_fault] additionally
    reports transport-level incidents invisible to the application: a
    transmission attempt lost in flight, and the retransmission that
    follows its timeout.

    [on_collective_complete] fires once per collective operation — when
    the last participant has arrived and the operation's completion time
    is known — rather than once per rank, giving aggregate observers
    (trace exporters, convergence monitors) a single event per barrier,
    broadcast, reduction, etc.  This holds under every {!Coll_alg}
    strategy: a collective expanded into a schedule of rounds still
    produces exactly one completion event for the logical operation,
    never one per round.

    Build hooks with [{ nil with ... }] so adding observation points stays
    source-compatible; combine independent clients with {!compose}. *)

(** A transport incident under fault injection.  [attempt] is 0 for the
    original transmission, [n] for the n-th retransmission. *)
type fault_event =
  | F_drop of { src : int; dst : int; bytes : int; attempt : int }
  | F_retransmit of { src : int; dst : int; bytes : int; attempt : int }

type t = {
  on_enter : world_rank:int -> time:float -> Call.t -> unit;
  on_return : world_rank:int -> time:float -> Call.t -> Call.value -> unit;
  on_fault : time:float -> fault_event -> unit;
  on_collective_complete :
    time:float -> comm:int -> name:string -> participants:int array -> unit;
      (** [time] is the operation's completion time; [comm] the
          communicator id; [name] the operation ([Call.op_name]);
          [participants] the world ranks involved, in arrival order. *)
  on_p2p_match :
    time:float -> src:int -> dst:int -> tag:int -> bytes:int -> comm:int -> unit;
      (** Fires once per point-to-point message, at the moment it pairs
          with a posted receive.  [src]/[dst] are world ranks; per-channel
          firing order is the message-matching (happens-before) order. *)
}

(** A hook that does nothing; override the fields you need. *)
val nil : t

(** [compose a b] runs [a]'s callback before [b]'s at every observation
    point. *)
val compose : t -> t -> t

(** [observer sink] bridges engine-level incidents into an observability
    sink: fault events become ["fault.drop"] / ["fault.retransmit"]
    instants on the sender's engine track, collective completions become
    ["collective.<name>"] instants.  Timestamps are virtual microseconds.
    Returns {!nil} when the sink is disabled. *)
val observer : Obs.Sink.t -> t
