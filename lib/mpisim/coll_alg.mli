(** Pluggable collective algorithm schedules.

    The engine historically priced every collective with one analytic
    {!Netmodel} formula.  This module turns that formula into one strategy
    among several: a collective call can instead be {e expanded} into a
    schedule of point-to-point rounds — ring, recursive doubling, binomial
    tree, or Rabenseifner (reduce-scatter + allgather) — whose per-round
    costs come from the same wire parameters the p2p engine charges
    ([overhead], [latency], [byte_time]).

    Schedules are expanded {e below} the message-matching layer, at
    collective-completion time: no round injects an application-visible
    message, so tag/wildcard matching, FIFO channel orders,
    deadlock-freedom, and the one-event-per-logical-collective contract of
    {!Hooks.on_collective_complete} are preserved by construction.  What
    changes between strategies is only {e when} each participant's fiber
    resumes.  [`Monolithic] — the original analytic model — remains the
    reference strategy and the semantic oracle for differential
    verification (lib/check).

    All ranks in schedules are communicator-local, in [0 .. p-1]. *)

(** A concrete schedule strategy. *)
type alg =
  [ `Monolithic  (** the original analytic {!Netmodel} cost (reference) *)
  | `Ring  (** p-1 rounds around a ring: allreduce (full vector),
               allgather (one block per round) *)
  | `Recursive_doubling
    (** log2 p pairwise-exchange rounds (XOR partners): allreduce,
        barrier, allgather.  Power-of-two communicators only. *)
  | `Binomial  (** binomial tree, ceil(log2 p) rounds: bcast, reduce *)
  | `Rabenseifner
    (** recursive-halving reduce-scatter then recursive-doubling
        allgather: allreduce on power-of-two communicators; per-rank
        traffic 2 * bytes * (p-1)/p *) ]

(** A selection: either a concrete strategy or [`Auto], which picks per
    operation, message size, and communicator size (see {!select}). *)
type t = [ alg | `Auto ]

(** One point-to-point transfer inside a round; ranks are
    communicator-local. *)
type xfer = { x_src : int; x_dst : int; x_bytes : int }

(** Transfers in one round proceed concurrently (full-duplex links); a
    rank may both send and receive in the same round. *)
type round = xfer list

(** Rounds execute in order; each rank enters a round only when its part
    of every earlier round has completed. *)
type schedule = round list

val name : t -> string

(** Parse a CLI spelling ([name] spellings, case-sensitive):
    ["monolithic"], ["ring"], ["recursive-doubling"], ["binomial"],
    ["rabenseifner"], ["auto"]. *)
val of_string : string -> (t, string) result

(** Every selectable strategy, [`Monolithic] first, [`Auto] last —
    the order the CLI listing and the differential harness use. *)
val all : t list

(** The four schedule-expanding strategies (everything but [`Monolithic]
    and [`Auto]) — what differential verification sweeps. *)
val schedules : alg list

(** One-line description for CLI listings. *)
val describe : t -> string

(** [applies a ~op ~p] — can strategy [a] expand [op] on a [p]-member
    communicator?  [`Monolithic] applies to everything.  Strategies never
    apply for [p < 2], to communicator management ([Comm_split],
    [Comm_dup]), or to [Finalize]. *)
val applies : alg -> op:Call.op -> p:int -> bool

(** [select t ~op ~p] — resolve a selection to a concrete strategy.
    A concrete [t] that does not apply falls back to [`Monolithic] (so
    e.g. [`Recursive_doubling] on a 6-rank communicator still runs).
    [`Auto] maps operation, payload, and communicator size to a
    strategy; the mapping is documented in the README's selection
    table. *)
val select : t -> op:Call.op -> p:int -> alg

(** [expand a ~op ~p] — the round schedule, or [None] when [a] does not
    apply (callers then take the monolithic path).  [`Monolithic] always
    returns [None]. *)
val expand : alg -> op:Call.op -> p:int -> schedule option

(** [timings net sched ~start] — per-rank completion times of [sched]
    when rank [l] enters it at [start.(l)].  Departures in a round are
    computed against the state at round entry (full-duplex pairwise
    exchange); each transfer charges sender overhead, then
    [latency + bytes * byte_time] on the wire, then receiver overhead —
    exactly {!Netmodel.round_cost} per round under equal starts.
    [Netmodel.collective_dispatch] is {e not} charged here: the engine
    charges it once per logical collective (see {!Netmodel}). *)
val timings : Netmodel.t -> schedule -> start:float array -> float array

(** {2 Sparse neighborhood schedules}

    Message-combining schedules for neighborhood collectives (arxiv
    1606.07676).  Participants are indexed by position in the declared
    participant set; an offset [o] means "the participant [o] positions
    after me, cyclically".  [per_rank.(i)] is participant [i]'s (sorted
    offset array, bytes per neighbor). *)

(** [neighbor_combined ~p ~offsets ~bytes] — the isomorphic fast path:
    one round per offset, each round a full cyclic shift of the
    participant group. *)
val neighbor_combined : p:int -> offsets:int list -> bytes:int -> schedule

(** [neighbor_naive ~per_rank] — the general expansion: every
    per-participant transfer issued concurrently in a single round.
    Sends exactly the same per-rank byte totals as the combined form
    when the topology is isomorphic. *)
val neighbor_naive : per_rank:(int array * int) array -> schedule

(** [Some (offsets, bytes)] when every participant declares the same
    offset set and payload (a rank-relative stencil). *)
val neighbor_isomorphic :
  per_rank:(int array * int) array -> (int list * int) option

(** Combined schedule when the topology is isomorphic, naive otherwise. *)
val neighbor_schedule : per_rank:(int array * int) array -> schedule

(** {2 Schedule-shape helpers (tests, bench)} *)

val round_count : schedule -> int

(** Total bytes sent by each local rank over the whole schedule. *)
val bytes_sent_per_rank : p:int -> schedule -> int array
