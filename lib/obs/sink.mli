(** The observability event stream.

    Every instrumented layer — the pipeline stages in {!Benchgen}, the
    discrete-event engine, the {!Mpisim.Hooks.observer} interposition
    client — pushes {!event}s into a {!t}.  A sink is a plain record of a
    flag plus an emit function; the {!nil} sink is disabled, and hot
    paths guard on {!field-enabled} so an uninstrumented run pays a single
    branch per candidate observation point.

    Timestamps ([ts]) are microseconds on a *deterministic* timeline:
    engine events carry virtual time, pipeline-stage spans carry a
    monotonic tick clock.  No wall-clock value ever enters the stream, so
    two runs with the same seed emit byte-identical traces. *)

(** Argument payload attached to spans and instants. *)
type arg = A_str of string | A_int of int | A_float of float

(** Events mirror the Chrome trace-event phases the exporter targets:
    [B]/[E] duration spans, [i] instants, and [C] counters (a counter
    event carries one or more named series sampled at [ts]).  [pid]/[tid]
    address a track; see {!pipeline_pid} / {!engine_pid}. *)
type event =
  | Span_begin of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Span_end of { pid : int; tid : int; name : string; ts : float }
  | Instant of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Counter of {
      pid : int;
      tid : int;
      name : string;
      ts : float;
      series : (string * float) list;
    }

type t = { enabled : bool; emit : event -> unit }

(** Disabled sink: [emit] is [ignore] and [enabled] is [false], so guarded
    call sites compile to a load and a branch. *)
val nil : t

(** Conventional track ids: pipeline-stage spans live on [pid]
    {!pipeline_pid} (tid 0); per-rank engine samples live on [pid]
    {!engine_pid} with [tid] = world rank. *)

val pipeline_pid : int
val engine_pid : int

(** [tee a b] forwards every event to both sinks; enabled iff either is. *)
val tee : t -> t -> t

(** Emission helpers; each is a no-op on a disabled sink. *)

val span_begin :
  t -> pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  ts:float -> string -> unit

val span_end : t -> pid:int -> tid:int -> ts:float -> string -> unit

val instant :
  t -> pid:int -> tid:int -> ?cat:string -> ?args:(string * arg) list ->
  ts:float -> string -> unit

val counter :
  t -> pid:int -> tid:int -> ts:float -> string -> (string * float) list -> unit
