type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let escape_into b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w then
      pos := !pos + String.length w
    else fail (Printf.sprintf "expected %s" w)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'
          | Some '\\' -> advance (); Buffer.add_char b '\\'
          | Some '/' -> advance (); Buffer.add_char b '/'
          | Some 'n' -> advance (); Buffer.add_char b '\n'
          | Some 't' -> advance (); Buffer.add_char b '\t'
          | Some 'r' -> advance (); Buffer.add_char b '\r'
          | Some ('b' | 'f') -> advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "short \\u escape";
              pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' ->
        literal "true";
        Bool true
    | Some 'f' ->
        literal "false";
        Bool false
    | Some 'n' ->
        literal "null";
        Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
