(** Turning recorded event streams into artifacts.

    A {!recorder} buffers {!Sink.event}s in emission order;
    {!to_chrome_string} renders them as Chrome trace-event JSON (the
    format Perfetto and [chrome://tracing] load), and
    {!validate_chrome_string} re-parses such output and checks its
    structural invariants — used by the dune smoke test against real CLI
    output. *)

type recorder

val recorder : unit -> recorder

(** An enabled sink that appends into the recorder. *)
val sink : recorder -> Sink.t

val events : recorder -> Sink.event list
val event_count : recorder -> int

(** Chrome trace-event document:
    [{"traceEvents":[...],"displayTimeUnit":"ms"}].  Emits one
    [ph:"M"] [process_name] metadata event per pid present (pipeline /
    engine / pid N), then the buffered events in order as [ph]
    ["B"]/["E"]/["i"]/["C"].  Purely a function of the recorded stream,
    so same-seed runs serialize byte-identically. *)
val to_chrome : recorder -> Json.t

val to_chrome_string : recorder -> string

(** Structural validation of a Chrome trace document: top-level object
    with a [traceEvents] array; every event has string [ph]+[name] and
    numeric [pid]/[tid]/[ts] (metadata events excepted for [ts]); every
    ["B"] is closed by a matching ["E"] on the same (pid, tid), properly
    nested.  Returns [Error msg] instead of raising. *)
val validate_chrome : Json.t -> (unit, string) result

(** Parses then validates. [Error] covers parse failures too. *)
val validate_chrome_string : string -> (unit, string) result

(** Distinct [name]s of ["B"] span events in a parsed trace, in first-seen
    order — lets checks assert that every pipeline stage opened a span. *)
val span_names : Json.t -> string list
