type recorder = { mutable rev_events : Sink.event list; mutable count : int }

let recorder () = { rev_events = []; count = 0 }

let sink r : Sink.t =
  {
    enabled = true;
    emit =
      (fun ev ->
        r.rev_events <- ev :: r.rev_events;
        r.count <- r.count + 1);
  }

let events r = List.rev r.rev_events
let event_count r = r.count

let arg_json : Sink.arg -> Json.t = function
  | Sink.A_str s -> Json.Str s
  | Sink.A_int i -> Json.Num (float_of_int i)
  | Sink.A_float f -> Json.Num f

let args_json args = Json.Obj (List.map (fun (k, a) -> (k, arg_json a)) args)

let base ~ph ~pid ~tid ~name ~ts =
  [
    ("name", Json.Str name);
    ("ph", Json.Str ph);
    ("pid", Json.Num (float_of_int pid));
    ("tid", Json.Num (float_of_int tid));
    ("ts", Json.Num ts);
  ]

let with_cat cat fields =
  if cat = "" then fields else fields @ [ ("cat", Json.Str cat) ]

let with_args args fields =
  if args = [] then fields else fields @ [ ("args", args_json args) ]

let event_json : Sink.event -> Json.t = function
  | Sink.Span_begin { pid; tid; name; cat; ts; args } ->
      Json.Obj (base ~ph:"B" ~pid ~tid ~name ~ts |> with_cat cat |> with_args args)
  | Sink.Span_end { pid; tid; name; ts } ->
      Json.Obj (base ~ph:"E" ~pid ~tid ~name ~ts)
  | Sink.Instant { pid; tid; name; cat; ts; args } ->
      Json.Obj
        (base ~ph:"i" ~pid ~tid ~name ~ts
        |> with_cat cat |> with_args args
        |> fun fs -> fs @ [ ("s", Json.Str "t") ])
  | Sink.Counter { pid; tid; name; ts; series } ->
      Json.Obj
        (base ~ph:"C" ~pid ~tid ~name ~ts
        @ [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) series)) ])

let pid_name pid =
  if pid = Sink.pipeline_pid then "pipeline"
  else if pid = Sink.engine_pid then "engine"
  else "pid " ^ string_of_int pid

let metadata_events evs =
  let seen = Hashtbl.create 4 in
  let pids =
    List.filter_map
      (fun (ev : Sink.event) ->
        let pid =
          match ev with
          | Sink.Span_begin { pid; _ }
          | Sink.Span_end { pid; _ }
          | Sink.Instant { pid; _ }
          | Sink.Counter { pid; _ } ->
              pid
        in
        if Hashtbl.mem seen pid then None
        else begin
          Hashtbl.replace seen pid ();
          Some pid
        end)
      evs
  in
  List.map
    (fun pid ->
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Num (float_of_int pid));
          ("tid", Json.Num 0.);
          ("args", Json.Obj [ ("name", Json.Str (pid_name pid)) ]);
        ])
    (List.sort compare pids)

let to_chrome r =
  let evs = events r in
  Json.Obj
    [
      ("traceEvents", Json.Arr (metadata_events evs @ List.map event_json evs));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_chrome_string r = Json.to_string (to_chrome r)

let validate_chrome j =
  let ( let* ) = Result.bind in
  let* evs =
    match Json.member "traceEvents" j with
    | Some (Json.Arr evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents"
  in
  (* Per-(pid,tid) stack of open B spans; E must match the innermost. *)
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack key =
    match Hashtbl.find_opt stacks key with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.replace stacks key s;
        s
  in
  let str k ev =
    match Json.member k ev with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "event missing string %S" k)
  in
  let num k ev =
    match Json.member k ev with
    | Some (Json.Num f) -> Ok f
    | _ -> Error (Printf.sprintf "event missing number %S" k)
  in
  let check ev =
    let* ph = str "ph" ev in
    let* name = str "name" ev in
    let* pid = num "pid" ev in
    let* tid = num "tid" ev in
    if ph = "M" then Ok ()
    else
      let* _ts = num "ts" ev in
      let key = (int_of_float pid, int_of_float tid) in
      match ph with
      | "B" ->
          let s = stack key in
          s := name :: !s;
          Ok ()
      | "E" -> (
          let s = stack key in
          match !s with
          | top :: rest when top = name ->
              s := rest;
              Ok ()
          | top :: _ ->
              Error
                (Printf.sprintf "E %S does not close innermost span %S" name top)
          | [] -> Error (Printf.sprintf "E %S with no open span" name))
      | "i" | "C" -> Ok ()
      | _ -> Error (Printf.sprintf "unknown phase %S" ph)
  in
  let rec go = function
    | [] -> Ok ()
    | ev :: rest ->
        let* () = check ev in
        go rest
  in
  let* () = go evs in
  Hashtbl.fold
    (fun (pid, tid) s acc ->
      let* () = acc in
      match !s with
      | [] -> Ok ()
      | top :: _ ->
          Error
            (Printf.sprintf "unclosed span %S on pid %d tid %d" top pid tid))
    stacks (Ok ())

let validate_chrome_string s =
  match Json.parse s with
  | j -> validate_chrome j
  | exception Json.Parse_error msg -> Error ("parse error: " ^ msg)

let span_names j =
  match Json.member "traceEvents" j with
  | Some (Json.Arr evs) ->
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun ev ->
          match (Json.member "ph" ev, Json.member "name" ev) with
          | Some (Json.Str "B"), Some (Json.Str name) ->
              if Hashtbl.mem seen name then None
              else begin
                Hashtbl.replace seen name ();
                Some name
              end
          | _ -> None)
        evs
  | _ -> []
