(** A metrics registry: counters, gauges, and histograms keyed by
    name + labels.

    Each instrument is identified by a metric name plus a label set
    (e.g. [("rank", "3")]); labels are sorted internally so the two
    orders of [[("a","1");("b","2")]] address the same instrument.
    Histograms reuse {!Util.Histogram} (exact count/sum/min/max/mean
    plus bounded exponential buckets).

    The dump format is JSONL — one JSON object per line, sorted by
    (name, labels) — so outputs are byte-stable and diffable.

    {b Concurrency guarantee.}  Every registry operation ([inc], [set],
    [observe], the accessors, [merge_into], [to_jsonl]) is guarded by a
    per-registry mutex, so one registry may be shared freely by
    concurrent serve jobs, OS threads, and OCaml 5 domains: updates are
    never torn and never lost.  Individual operations are atomic;
    read-modify-write sequences composed from several calls are not.
    [merge_into dst src] locks [dst] only — [src] must be quiescent
    (merging is a collection step, not a concurrent operation). *)

type t

val create : unit -> t

(** [inc t ?labels ?by name] bumps counter [name] (default [by] 1).
    Counters are monotone integers. *)
val inc : t -> ?labels:(string * string) list -> ?by:int -> string -> unit

(** [set t ?labels name v] sets gauge [name] to [v] (last write wins). *)
val set : t -> ?labels:(string * string) list -> string -> float -> unit

(** [observe t ?labels name x] records sample [x >= 0.] into histogram
    [name]. *)
val observe : t -> ?labels:(string * string) list -> string -> float -> unit

(** Accessors for tests and report code; [None] when the instrument was
    never touched (or is of another kind). *)

val counter_value : t -> ?labels:(string * string) list -> string -> int option
val gauge_value : t -> ?labels:(string * string) list -> string -> float option

val histogram_stats :
  t ->
  ?labels:(string * string) list ->
  string ->
  (int * float * float * float * float) option
(** [histogram_stats t name] is [(count, sum, min, max, mean)]. *)

(** [merge_into dst src] folds every instrument of [src] into [dst]:
    counters add, gauges take [src]'s value, histograms merge. *)
val merge_into : t -> t -> unit

(** One JSON object per instrument, one per line, sorted by (name,
    labels):
    {v
    {"name":"...","labels":{...},"type":"counter","value":N}
    {"name":"...","labels":{...},"type":"gauge","value":X}
    {"name":"...","labels":{...},"type":"histogram","count":N,"sum":S,"min":M,"max":M,"mean":A}
    v} *)
val to_jsonl : t -> string

(** Parse one JSONL line back into (name, labels, kind-specific json).
    @raise Json.Parse_error on malformed input. *)
val line_of_string : string -> string * (string * string) list * Json.t
