type arg = A_str of string | A_int of int | A_float of float

type event =
  | Span_begin of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Span_end of { pid : int; tid : int; name : string; ts : float }
  | Instant of {
      pid : int;
      tid : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * arg) list;
    }
  | Counter of {
      pid : int;
      tid : int;
      name : string;
      ts : float;
      series : (string * float) list;
    }

type t = { enabled : bool; emit : event -> unit }

let nil = { enabled = false; emit = ignore }
let pipeline_pid = 1
let engine_pid = 2

let tee a b =
  if not a.enabled then b
  else if not b.enabled then a
  else
    {
      enabled = true;
      emit =
        (fun ev ->
          a.emit ev;
          b.emit ev);
    }

let span_begin t ~pid ~tid ?(cat = "") ?(args = []) ~ts name =
  if t.enabled then t.emit (Span_begin { pid; tid; name; cat; ts; args })

let span_end t ~pid ~tid ~ts name =
  if t.enabled then t.emit (Span_end { pid; tid; name; ts })

let instant t ~pid ~tid ?(cat = "") ?(args = []) ~ts name =
  if t.enabled then t.emit (Instant { pid; tid; name; cat; ts; args })

let counter t ~pid ~tid ~ts name series =
  if t.enabled then t.emit (Counter { pid; tid; name; ts; series })
