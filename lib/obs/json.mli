(** A minimal JSON value: enough to emit the observability artifacts
    (Chrome trace, metrics JSONL) deterministically and to re-parse them
    in self-checks.  No external JSON library exists in the tree; every
    exporter and validator shares this one implementation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Deterministic compact rendering: object members keep their list
    order, numbers print as integers when exactly integral (see
    {!num_to_string}), strings are escaped per RFC 8259. *)
val to_string : t -> string

val to_buffer : Buffer.t -> t -> unit

(** Integral values in (-1e15, 1e15) render with no fraction or exponent;
    everything else uses ["%.6g"].  The mapping is a pure function of the
    double, so identical runs serialize byte-identically. *)
val num_to_string : float -> string

(** @raise Parse_error on malformed input (with an offset). *)
val parse : string -> t

(** [member k j] — field [k] of object [j]; [None] when absent or [j] is
    not an object. *)
val member : string -> t -> t option
