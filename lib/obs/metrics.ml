type instrument =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of Util.Histogram.t

(* Key: metric name + label set sorted by label key, so label order at the
   call site doesn't split an instrument in two. *)
type key = string * (string * string) list

(* Every registry operation runs under [mu], so one registry can be
   shared by concurrent serve jobs and by Domain-parallel pipeline
   stages without torn hashtable state.  The lock is uncontended (and
   cheap) in the single-threaded pipeline. *)
type t = { tbl : (key, instrument) Hashtbl.t; mu : Mutex.t }

let create () : t = { tbl = Hashtbl.create 64; mu = Mutex.create () }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let key name labels : key =
  (name, List.sort (fun (a, _) (b, _) -> String.compare a b) labels)

let find_or_add t k mk =
  match Hashtbl.find_opt t.tbl k with
  | Some i -> i
  | None ->
      let i = mk () in
      Hashtbl.replace t.tbl k i;
      i

let inc t ?(labels = []) ?(by = 1) name =
  locked t @@ fun () ->
  match find_or_add t (key name labels) (fun () -> Counter (ref 0)) with
  | Counter r -> r := !r + by
  | _ -> invalid_arg ("Obs.Metrics.inc: " ^ name ^ " is not a counter")

let set t ?(labels = []) name v =
  locked t @@ fun () ->
  match find_or_add t (key name labels) (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r := v
  | _ -> invalid_arg ("Obs.Metrics.set: " ^ name ^ " is not a gauge")

let observe t ?(labels = []) name x =
  locked t @@ fun () ->
  match
    find_or_add t (key name labels) (fun () ->
        Histogram (Util.Histogram.create ()))
  with
  | Histogram h -> Util.Histogram.add h x
  | _ -> invalid_arg ("Obs.Metrics.observe: " ^ name ^ " is not a histogram")

let counter_value t ?(labels = []) name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl (key name labels) with
  | Some (Counter r) -> Some !r
  | _ -> None

let gauge_value t ?(labels = []) name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl (key name labels) with
  | Some (Gauge r) -> Some !r
  | _ -> None

let histogram_stats t ?(labels = []) name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl (key name labels) with
  | Some (Histogram h) ->
      let open Util.Histogram in
      Some (count h, sum h, min_value h, max_value h, mean h)
  | _ -> None

(* Lock order: [dst] only.  [src] must be quiescent for the duration —
   merging is a collection step, not a concurrent operation. *)
let merge_into dst src =
  locked dst @@ fun () ->
  Hashtbl.iter
    (fun k i ->
      match (i, Hashtbl.find_opt dst.tbl k) with
      | Counter r, Some (Counter r') -> r' := !r' + !r
      | Counter r, None -> Hashtbl.replace dst.tbl k (Counter (ref !r))
      | Gauge r, (Some (Gauge _) | None) ->
          Hashtbl.replace dst.tbl k (Gauge (ref !r))
      | Histogram h, Some (Histogram h') -> Util.Histogram.merge_into h' h
      | Histogram h, None ->
          Hashtbl.replace dst.tbl k (Histogram (Util.Histogram.copy h))
      | _, Some _ ->
          invalid_arg "Obs.Metrics.merge_into: instrument kind mismatch")
    src.tbl

let compare_key ((n1, l1) : key) ((n2, l2) : key) =
  match String.compare n1 n2 with 0 -> compare l1 l2 | c -> c

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let line_json (name, labels) instrument =
  let base = [ ("name", Json.Str name); ("labels", labels_json labels) ] in
  let rest =
    match instrument with
    | Counter r ->
        [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int !r)) ]
    | Gauge r -> [ ("type", Json.Str "gauge"); ("value", Json.Num !r) ]
    | Histogram h ->
        let open Util.Histogram in
        [
          ("type", Json.Str "histogram");
          ("count", Json.Num (float_of_int (count h)));
          ("sum", Json.Num (sum h));
          ("min", Json.Num (min_value h));
          ("max", Json.Num (max_value h));
          ("mean", Json.Num (mean h));
        ]
  in
  Json.Obj (base @ rest)

let to_jsonl t =
  let entries =
    locked t @@ fun () ->
    Hashtbl.fold (fun k i acc -> (k, i) :: acc) t.tbl []
  in
  let entries = List.sort (fun (k1, _) (k2, _) -> compare_key k1 k2) entries in
  let b = Buffer.create 1024 in
  List.iter
    (fun (k, i) ->
      Json.to_buffer b (line_json k i);
      Buffer.add_char b '\n')
    entries;
  Buffer.contents b

let line_of_string line =
  let j = Json.parse line in
  let name =
    match Json.member "name" j with
    | Some (Json.Str s) -> s
    | _ -> raise (Json.Parse_error "metrics line: missing name")
  in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj kvs) ->
        List.map
          (function
            | k, Json.Str v -> (k, v)
            | _ -> raise (Json.Parse_error "metrics line: non-string label"))
          kvs
    | _ -> raise (Json.Parse_error "metrics line: missing labels")
  in
  (name, labels, j)
