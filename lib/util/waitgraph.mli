(** Wait-for graphs: who is blocked in what, waiting on whom.

    The shared diagnostic vocabulary for every "cannot make progress"
    report in the system: the alignment pass uses it when a collective's
    participant set can never complete (a member's trace stream ended),
    and the simulator's watchdog uses it when a run exceeds its budgets.
    One formatter means the two reports read identically. *)

type edge = {
  e_rank : int;  (** the blocked rank *)
  e_what : string;  (** operation + call site, e.g. ["MPI_Allreduce at lu.f:42"] *)
  e_waiting_on : int list;  (** ranks whose arrival would unblock it *)
  e_missing : int list;
      (** subset of [e_waiting_on] that can never arrive (stream ended,
          rank ablated, ...) *)
}

(** Sorted/deduped constructor. *)
val edge :
  rank:int ->
  what:string ->
  ?waiting_on:int list ->
  ?missing:int list ->
  unit ->
  edge

val edge_to_string : edge -> string

(** Multi-line rendering, one indented edge per line under [header],
    sorted by rank. *)
val format : ?header:string -> edge list -> string

(** All ranks named missing by any edge, sorted and deduplicated. *)
val missing_ranks : edge list -> int list
