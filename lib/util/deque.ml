(* Growable ring buffer.  [head] indexes the oldest element; the [len]
   live elements occupy buf.[(head + i) mod cap].  Empty slots hold
   [dummy] so popped values do not leak through the array. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;
  mutable len : int;
}

let create ?(capacity = 16) () =
  { buf = Array.make (max 1 capacity) None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- Some x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let peek_front t = if t.len = 0 then None else t.buf.(t.head)

let get t i = Option.get t.buf.((t.head + i) mod Array.length t.buf)

let find_index pred t =
  let rec go i = if i >= t.len then None else if pred (get t i) then Some i else go (i + 1) in
  go 0

let find_first pred t = Option.map (get t) (find_index pred t)

let exists pred t = find_index pred t <> None

let remove_first pred t =
  match find_index pred t with
  | None -> None
  | Some i ->
      let cap = Array.length t.buf in
      let x = get t i in
      (* shift the elements after [i] down by one slot *)
      for j = i to t.len - 2 do
        t.buf.((t.head + j) mod cap) <- t.buf.((t.head + j + 1) mod cap)
      done;
      t.buf.((t.head + t.len - 1) mod cap) <- None;
      t.len <- t.len - 1;
      Some x

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
