(** Wall-clock time for budgets and deadlines.

    [Sys.time] measures CPU time, which stands still while a process
    waits on I/O, sleeps between retries, or blocks in [select] — so it
    is the wrong clock for every budget in this repository (fuzz-campaign
    time budgets, serve-mode deadlines, retry backoff).  This module is
    the one shared wall-clock source: seconds since an arbitrary origin,
    guaranteed never to step backwards within a process even if the
    system clock is adjusted.

    Deterministic code paths (the simulator, the serve fuzzer) never
    call this module; they run on virtual clocks instead. *)

(** Monotonic wall-clock seconds.  Successive calls never decrease. *)
val monotonic_s : unit -> float

(** [earliest a b] is the earlier of two optional wakeup times ([None]
    means "no wakeup needed").  Event loops use it to fold per-source
    deadlines (pool wakeups, connection idle expiries) into one
    [select] timeout. *)
val earliest : float option -> float option -> float option

(** [sleep_s s] blocks the calling thread for [s] wall-clock seconds
    ([s <= 0.] returns immediately); restarts after [EINTR] so the full
    duration always elapses. *)
val sleep_s : float -> unit
