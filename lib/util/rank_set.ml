(* Sorted list of disjoint strided intervals.  Invariants:
   - for each interval, stride >= 1, first <= last,
     and (last - first) mod stride = 0;
   - a singleton interval is stored with stride = 1;
   - intervals are sorted by [first] and never "adjacent-mergeable":
     the normalizing smart constructors below re-establish this. *)

type interval = { first : int; last : int; stride : int }

type t = interval list

let empty = []
let is_empty t = t = []

let interval_mem r { first; last; stride } =
  r >= first && r <= last && (r - first) mod stride = 0

let interval_card { first; last; stride } = ((last - first) / stride) + 1

let singleton r = [ { first = r; last = r; stride = 1 } ]

let range ?(stride = 1) first last =
  if stride <= 0 then invalid_arg "Rank_set.range: stride <= 0";
  if last < first then invalid_arg "Rank_set.range: last < first";
  let last = first + ((last - first) / stride * stride) in
  if first = last then singleton first else [ { first; last; stride } ]

let all n = if n <= 0 then empty else range 0 (n - 1)

(* Merge an ascending, duplicate-free list of ranks into strided intervals
   greedily: extend the current run while the stride is constant. *)
let of_sorted_ranks ranks =
  let close first prev stride acc =
    if first = prev then { first; last = prev; stride = 1 } :: acc
    else { first; last = prev; stride } :: acc
  in
  let rec go acc first prev stride = function
    | [] -> List.rev (close first prev stride acc)
    | r :: rest ->
        if stride = 0 then go acc first r (r - prev) rest
        else if r - prev = stride then go acc first r stride rest
        else if first = prev then go acc first r (r - prev) rest
        else go (close first prev stride acc) r r 0 rest
  in
  match ranks with [] -> [] | r :: rest -> go [] r r 0 rest

let to_list t =
  List.concat_map
    (fun { first; last; stride } ->
      let rec up r acc = if r > last then List.rev acc else up (r + stride) (r :: acc) in
      up first [])
    t

let of_list ranks = of_sorted_ranks (List.sort_uniq compare ranks)

(* Most set operations fall back to rank lists; sets in traces are small in
   interval count, and these operations run at trace-processing time, not in
   the simulator's hot path. *)
let lift2 f a b = of_sorted_ranks (f (to_list a) (to_list b))

let mem r t = List.exists (interval_mem r) t

(* [append_rank t r]: add [r], known to lie past every element of [t],
   without materializing rank lists.  Only the final interval can change,
   and the result is exactly what [of_sorted_ranks] would build for the
   extended sequence: a fresh stride forms against a trailing singleton, a
   matching stride extends the trailing run, anything else opens a new
   singleton.  This is the hot path of inter-node merging, where a node's
   rank set grows in ascending rank order — one absorb per rank — and a
   list-based union would make that O(p^2) per RSD. *)
let rec append_rank t r =
  match t with
  | [] -> singleton r
  | [ ({ first; last; stride } as iv) ] ->
      if first = last then [ { first; last = r; stride = r - first } ]
      else if r = last + stride then [ { iv with last = r } ]
      else [ iv; { first = r; last = r; stride = 1 } ]
  | iv :: rest -> iv :: append_rank rest r

let union a b =
  let merge la lb =
    let rec go acc la lb =
      match (la, lb) with
      | [], l | l, [] -> List.rev_append acc l
      | x :: xs, y :: ys ->
          if x < y then go (x :: acc) xs lb
          else if y < x then go (y :: acc) la ys
          else go (x :: acc) xs ys
    in
    go [] la lb
  in
  match (a, b) with
  | [], t | t, [] -> t
  | _, [ { first = r; last = r'; _ } ] when r = r' ->
      let m = List.fold_left (fun acc iv -> max acc iv.last) min_int a in
      if r > m then append_rank a r
      else if r = m then a
      else lift2 merge a b
  | _ -> lift2 merge a b

let inter a b =
  let isect la lb =
    let rec go acc la lb =
      match (la, lb) with
      | [], _ | _, [] -> List.rev acc
      | x :: xs, y :: ys ->
          if x < y then go acc xs lb
          else if y < x then go acc la ys
          else go (x :: acc) xs ys
    in
    go [] la lb
  in
  lift2 isect a b

let diff a b =
  let sub la lb =
    let rec go acc la lb =
      match (la, lb) with
      | [], _ -> List.rev acc
      | l, [] -> List.rev_append acc l
      | x :: xs, y :: ys ->
          if x < y then go (x :: acc) xs lb
          else if y < x then go acc la ys
          else go acc xs ys
    in
    go [] la lb
  in
  lift2 sub a b

let add r t = union (singleton r) t
let remove r t = diff t (singleton r)

let cardinal t = List.fold_left (fun n iv -> n + interval_card iv) 0 t

(* The interval representation is canonical — every constructor funnels
   through [of_sorted_ranks] or builds the form it would ([append_rank],
   [range], [singleton]) — so set equality is structural equality, O(#intervals)
   instead of O(cardinal). *)
let equal (a : t) (b : t) = a = b

let subset a b = is_empty (diff a b)

let min_elt = function [] -> None | iv :: _ -> Some iv.first

let max_elt t =
  List.fold_left (fun acc iv -> match acc with
      | None -> Some iv.last
      | Some m -> Some (max m iv.last))
    None t

let iter f t = List.iter f (to_list t)
let fold f t init = List.fold_left (fun acc r -> f r acc) init (to_list t)
let for_all p t = List.for_all p (to_list t)
let exists p t = List.exists p (to_list t)
let filter p t = of_sorted_ranks (List.filter p (to_list t))
let map f t = of_list (List.map f (to_list t))

let interval_count t = List.length t
let intervals t = List.map (fun { first; last; stride } -> (first, last, stride)) t

let pp ppf t =
  let pp_iv ppf { first; last; stride } =
    if first = last then Format.fprintf ppf "%d" first
    else if stride = 1 then Format.fprintf ppf "%d-%d" first last
    else Format.fprintf ppf "%d-%d:%d" first last stride
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_iv)
    t

let to_string t = Format.asprintf "%a" pp t

let compare a b = compare (to_list a) (to_list b)
