(* splitmix64 (Steele, Lea, Flood 2014): tiny state, passes BigCrush, and
   trivially splittable — ideal for reproducible per-rank streams. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t ~index =
  (* Derive a child stream by hashing one draw of the parent together with
     [index].  The draw advances the parent, so repeated splits at the same
     index yield distinct child streams, while two parents with identical
     seed and draw history produce identical children for equal indices. *)
  let s = bits64 t in
  { state = mix (Int64.logxor s (mix (Int64.of_int index))) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling over the top 62 bits (non-negative on 63-bit OCaml
     ints): draws past the largest multiple of [bound] representable in the
     range are retried, so [v mod bound] is exactly uniform.  max_int here
     is 2^62 - 1, hence the range size 2^62 mod bound is
     (max_int mod bound + 1) mod bound. *)
  let cutoff = max_int - ((max_int mod bound + 1) mod bound) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    if v > cutoff then draw () else v mod bound
  in
  draw ()

let float t =
  (* 53 high bits -> [0,1) *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. (1. /. 9007199254740992.)

let uniform t a b = a +. ((b -. a) *. float t)

let exponential t ~mean =
  let u = float t in
  -. mean *. log (1. -. u)

let gaussian t ?(truncate_at_zero = false) ~mean ~stddev () =
  let u1 = float t and u2 = float t in
  let u1 = if u1 <= 0. then Float.min_float else u1 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  let x = mean +. (stddev *. z) in
  if truncate_at_zero && x < 0. then 0. else x

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
