(* The system clock can be stepped backwards (NTP, manual adjustment);
   budgets and deadlines must not.  Latch the high-water mark so the
   reported time is non-decreasing within the process. *)
let last = ref neg_infinity

let monotonic_s () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let earliest a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (Float.min x y)

let sleep_s s =
  if s > 0. then begin
    let until = monotonic_s () +. s in
    let rec go remaining =
      if remaining > 0. then begin
        (try Unix.sleepf remaining
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go (until -. monotonic_s ())
      end
    in
    go s
  end
