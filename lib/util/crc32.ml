(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) —
   the checksum guarding each frame of the v2 trace container.  Pure
   OCaml, no external deps; values are masked to 32 bits so results are
   identical on 32- and 64-bit hosts. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let t = Lazy.force table in
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask32 land mask32

let string s = update 0 s ~pos:0 ~len:(String.length s)

let to_hex crc = Printf.sprintf "%08x" (crc land mask32)

let of_hex s =
  if String.length s <> 8 then None
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 && v <= mask32 -> Some v
    | _ -> None
