(** CRC-32 (IEEE 802.3), for framing integrity checks in trace files.

    The standard reflected-polynomial CRC used by zip/png; implemented
    in pure OCaml so corrupted trace frames can be detected without any
    external dependency.  All values are 32-bit non-negative ints. *)

(** CRC of a whole string. *)
val string : string -> int

(** [update crc s ~pos ~len] extends [crc] with a substring; start from
    [0] for a fresh checksum.  @raise Invalid_argument on bad bounds. *)
val update : int -> string -> pos:int -> len:int -> int

(** Fixed-width lowercase hex (8 chars), the frame-header spelling. *)
val to_hex : int -> string

(** Inverse of {!to_hex}; [None] when not 8 hex chars. *)
val of_hex : string -> int option
