(** Deterministic, seedable pseudo-random numbers (splitmix64).

    Every stochastic choice in the repository — workload generation, compute
    jitter, histogram reconstruction draws — goes through an explicit [Rng.t]
    so that all experiments are bit-reproducible.  The stdlib [Random] state
    is never used. *)

type t

val create : seed:int -> t

(** [split t ~index] derives an independent child stream by hashing one
    draw of [t] together with [index].  The draw advances the parent, so:
    two parents with the same seed and draw history yield bit-identical
    children for equal indices, and repeated [split] calls on one parent —
    even with the same index — yield distinct streams. *)
val split : t -> index:int -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] is exactly uniform in [0, bound) (rejection sampling —
    no modulo bias); may consume more than one draw. @raise Invalid_argument
    if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [uniform t a b] is uniform in [a, b). *)
val uniform : t -> float -> float -> float

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** Normal via Box–Muller; truncated below at 0 when [truncate_at_zero]. *)
val gaussian : t -> ?truncate_at_zero:bool -> mean:float -> stddev:float -> unit -> float

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
