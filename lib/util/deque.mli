(** Growable ring-buffer FIFO.

    The simulation engine's per-rank message queues (posted receives,
    unexpected messages, flow-controlled senders) append at the tail and
    consume from the head; a ring buffer makes both ends O(1) amortized
    where the previous list representation paid O(n) per tail append.
    Order of insertion is preserved; [remove_first] exists for the rare
    mid-queue extraction (wildcard and flow-control matching) and is O(n). *)

type 'a t

(** [create ()] — an empty deque. [capacity] pre-sizes the backing array. *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** O(1) amortized tail append. *)
val push_back : 'a t -> 'a -> unit

(** O(1) head removal; [None] when empty. *)
val pop_front : 'a t -> 'a option

(** Head element without removing it. *)
val peek_front : 'a t -> 'a option

(** [remove_first pred t] removes and returns the first (oldest) element
    satisfying [pred], shifting later elements up; O(n). *)
val remove_first : ('a -> bool) -> 'a t -> 'a option

(** [find_first pred t] — first element satisfying [pred], not removed. *)
val find_first : ('a -> bool) -> 'a t -> 'a option

val exists : ('a -> bool) -> 'a t -> bool

(** Front-to-back iteration. *)
val iter : ('a -> unit) -> 'a t -> unit

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** Front-to-back element list. *)
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
