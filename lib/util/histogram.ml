(* Exponential buckets: bucket i covers [base * r^i, base * r^(i+1)) with
   base = 1 ns and ratio r = 2^(1/2), giving ~4% worst-case relative error
   on reconstructed means over a 1ns .. >1e9s range with 128 buckets. *)

let n_buckets = 128
let base = 1e-9
let log_ratio = 0.5 *. log 2.

type t = {
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable first : float;
  mutable blo : int; (* lowest possibly-nonzero bucket; n_buckets when none *)
  mutable bhi : int; (* highest possibly-nonzero bucket; -1 when none *)
  buckets : int array; (* bucket 0 additionally holds all x < base *)
}

let create () =
  { count = 0; sum = 0.; sumsq = 0.; min_v = infinity; max_v = neg_infinity;
    first = 0.; blo = n_buckets; bhi = -1; buckets = Array.make n_buckets 0 }

let note_bucket t i =
  if i < t.blo then t.blo <- i;
  if i > t.bhi then t.bhi <- i

let bucket_index x =
  if x < base then 0
  else
    let i = int_of_float (log (x /. base) /. log_ratio) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

(* Midpoint (geometric mean) of bucket i, used for reconstruction. *)
let bucket_mid i = base *. exp ((float_of_int i +. 0.5) *. log_ratio)

let add t x =
  if not (Float.is_finite x) || x < 0. then
    invalid_arg "Histogram.add: sample must be finite and non-negative";
  if t.count = 0 then t.first <- x;
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  let i = bucket_index x in
  t.buckets.(i) <- t.buckets.(i) + 1;
  note_bucket t i

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0. else t.min_v
let max_value t = if t.count = 0 then 0. else t.max_v
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

let variance t =
  if t.count = 0 then 0.
  else
    let m = mean t in
    let v = (t.sumsq /. float_of_int t.count) -. (m *. m) in
    if v < 0. then 0. else v

let stddev t = sqrt (variance t)

let first_sample t = t.first

let rest_mean t =
  if t.count <= 1 then mean t
  else (t.sum -. t.first) /. float_of_int (t.count - 1)

let quantile t q =
  if t.count = 0 then 0.
  else if q <= 0. then min_value t
  else if q >= 1. then max_value t
  else begin
    let target = q *. float_of_int t.count in
    let rec find i seen =
      if i >= n_buckets then max_value t
      else
        let seen' = seen +. float_of_int t.buckets.(i) in
        if seen' >= target then bucket_mid i else find (i + 1) seen'
    in
    let v = find 0 0. in
    Float.min (Float.max v (min_value t)) (max_value t)
  end

let draw t ~u =
  if t.count = 0 then 0.
  else
    let u = if u < 0. then 0. else if u >= 1. then Float.pred 1. else u in
    quantile t u

let of_stats ~count ~sum ~min ~max ~first =
  let t = create () in
  if count > 0 then begin
    t.count <- count;
    t.sum <- sum;
    let mean = sum /. float_of_int count in
    t.sumsq <- float_of_int count *. mean *. mean;
    t.min_v <- min;
    t.max_v <- max;
    t.first <- first;
    let i = bucket_index mean in
    t.buckets.(i) <- count;
    note_bucket t i
  end;
  t

let merge_into t other =
  if other.count > 0 then begin
    if t.count = 0 then t.first <- other.first;
    t.count <- t.count + other.count;
    t.sum <- t.sum +. other.sum;
    t.sumsq <- t.sumsq +. other.sumsq;
    if other.min_v < t.min_v then t.min_v <- other.min_v;
    if other.max_v > t.max_v then t.max_v <- other.max_v;
    (* only the other side's occupied bucket range needs touching — merge
       runs once per absorbed RSD instance, so a full 128-bucket walk here
       dominates inter-node merging of high-RSD traces *)
    for i = other.blo to other.bhi do
      t.buckets.(i) <- t.buckets.(i) + other.buckets.(i)
    done;
    if other.blo < t.blo then t.blo <- other.blo;
    if other.bhi > t.bhi then t.bhi <- other.bhi
  end

let copy t = { t with buckets = Array.copy t.buckets }

let scale t k =
  if k < 0. then invalid_arg "Histogram.scale: negative factor";
  let s = create () in
  if t.count > 0 then begin
    s.count <- t.count;
    s.sum <- t.sum *. k;
    s.sumsq <- t.sumsq *. k *. k;
    s.min_v <- t.min_v *. k;
    s.max_v <- t.max_v *. k;
    s.first <- t.first *. k;
    (* Rebucket by shifting: scaling by k moves log(x) by log(k). *)
    let shift = if k = 0. then - n_buckets else int_of_float (Float.round (log k /. log_ratio)) in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          let j = i + shift in
          let j = if j < 0 then 0 else if j >= n_buckets then n_buckets - 1 else j in
          s.buckets.(j) <- s.buckets.(j) + n;
          note_bucket s j
        end)
      t.buckets
  end;
  s

let equal_stats a b =
  a.count = b.count
  && Float.abs (a.sum -. b.sum) <= 1e-9 *. (1. +. Float.abs a.sum)
  && Float.abs (min_value a -. min_value b) <= 1e-12
  && Float.abs (max_value a -. max_value b) <= 1e-12

let pp ppf t =
  Format.fprintf ppf "{n=%d mean=%.3es min=%.3es max=%.3es}"
    t.count (mean t) (min_value t) (max_value t)
