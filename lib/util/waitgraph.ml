type edge = {
  e_rank : int;
  e_what : string;
  e_waiting_on : int list;
  e_missing : int list;
}

let edge ~rank ~what ?(waiting_on = []) ?(missing = []) () =
  {
    e_rank = rank;
    e_what = what;
    e_waiting_on = List.sort_uniq compare waiting_on;
    e_missing = List.sort_uniq compare missing;
  }

let ranks_str = function
  | [] -> "-"
  | rs -> String.concat "," (List.map string_of_int rs)

let edge_to_string e =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "rank %d blocked in %s" e.e_rank e.e_what);
  if e.e_waiting_on <> [] then
    Buffer.add_string b
      (Printf.sprintf " <- waiting on rank(s) %s" (ranks_str e.e_waiting_on));
  if e.e_missing <> [] then
    Buffer.add_string b
      (Printf.sprintf " (missing: %s)" (ranks_str e.e_missing));
  Buffer.contents b

let format ?(header = "wait-for graph:") edges =
  let edges = List.sort (fun a b -> compare a.e_rank b.e_rank) edges in
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  List.iter
    (fun e ->
      Buffer.add_string b "\n  ";
      Buffer.add_string b (edge_to_string e))
    edges;
  Buffer.contents b

let missing_ranks edges =
  List.sort_uniq compare (List.concat_map (fun e -> e.e_missing) edges)
