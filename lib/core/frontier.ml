open Scalatrace

(* Consistent-cut selection for degraded-mode generation.

   A salvaged trace can end mid-conversation: a send whose matching recv
   was lost with the receiver's truncated stream would make the generated
   benchmark hang at replay.  The cut rule: truncate every rank to the
   last world-spanning collective anchor ("globally consistent frontier"
   — after a world collective all ranks are provably at the same program
   point), then *verify* the cut by channel accounting — per
   (src, dst, tag, comm), loop-weighted send and recv counts must cover
   each other, with MPI wildcards handled conservatively.  If a frontier
   fails the check (e.g. a conversation straddles the collective), probe
   the next-earlier one. *)

(* Per-destination channel ledger.  Tag [-1] encodes MPI_ANY_TAG and a
   wildcard source is tracked separately, mirroring the event model. *)
type ledger = {
  sends : (int * int, int ref) Hashtbl.t; (* (src, tag) -> n *)
  r_exact : (int * int, int ref) Hashtbl.t; (* (src, tag) -> n *)
  r_src_any : (int, int ref) Hashtbl.t; (* tag -> n, src wildcard *)
  r_tag_any : (int, int ref) Hashtbl.t; (* src -> n, tag wildcard *)
  mutable r_any : int; (* both wildcard *)
}

let fresh_ledger () =
  {
    sends = Hashtbl.create 8;
    r_exact = Hashtbl.create 8;
    r_src_any = Hashtbl.create 4;
    r_tag_any = Hashtbl.create 4;
    r_any = 0;
  }

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let balanced (trace : Trace.t) =
  let nranks = Trace.nranks trace in
  let ledgers : (int * int, ledger) Hashtbl.t = Hashtbl.create 16 in
  let ledger_for ~dst ~comm =
    match Hashtbl.find_opt ledgers (dst, comm) with
    | Some l -> l
    | None ->
        let l = fresh_ledger () in
        Hashtbl.replace ledgers (dst, comm) l;
        l
  in
  (* loop-weighted channel counts, one visit per RSD per participant *)
  let rec walk mult nodes =
    List.iter
      (fun node ->
        match node with
        | Tnode.Loop { count; body; _ } -> walk (mult * count) body
        | Tnode.Leaf (e : Event.t) -> (
            match e.kind with
            | Event.E_send | Event.E_isend ->
                Util.Rank_set.iter
                  (fun src ->
                    match Event.peer_of e ~rank:src ~nranks with
                    | Some dst ->
                        bump (ledger_for ~dst ~comm:e.comm).sends (src, e.tag)
                          mult
                    | None -> ())
                  e.ranks
            | Event.E_recv | Event.E_irecv ->
                Util.Rank_set.iter
                  (fun dst ->
                    let l = ledger_for ~dst ~comm:e.comm in
                    match e.peer with
                    | Event.P_any ->
                        if e.tag < 0 then l.r_any <- l.r_any + mult
                        else bump l.r_src_any e.tag mult
                    | _ -> (
                        match Event.peer_of e ~rank:dst ~nranks with
                        | Some src ->
                            if e.tag < 0 then bump l.r_tag_any src mult
                            else bump l.r_exact (src, e.tag) mult
                        | None -> ()))
                  e.ranks
            | _ -> ()))
      nodes
  in
  walk 1 (Trace.nodes trace);
  (* Greedy cover, most-specific receives first.  The order is a
     heuristic (full credit assignment is bipartite matching); a false
     negative only makes the caller cut one anchor earlier, which is
     always safe. *)
  let check_ledger l =
    let ok = ref true in
    Hashtbl.iter
      (fun (src, tag) r ->
        match Hashtbl.find_opt l.sends (src, tag) with
        | Some s when !s >= !r -> s := !s - !r
        | _ -> ok := false)
      l.r_exact;
    let drain_matching pred need =
      let left = ref need in
      Hashtbl.iter
        (fun key s ->
          if !left > 0 && pred key && !s > 0 then begin
            let take = min !s !left in
            s := !s - take;
            left := !left - take
          end)
        l.sends;
      if !left > 0 then ok := false
    in
    Hashtbl.iter (fun src r -> drain_matching (fun (s, _) -> s = src) !r) l.r_tag_any;
    Hashtbl.iter (fun tag r -> drain_matching (fun (_, t) -> t = tag) !r) l.r_src_any;
    if l.r_any > 0 then drain_matching (fun _ -> true) l.r_any;
    Hashtbl.iter (fun _ s -> if !s > 0 then ok := false) l.sends;
    !ok
  in
  Hashtbl.fold (fun _ l acc -> acc && check_ledger l) ledgers true

let cut ~(rebuild : Traversal.rebuild) () =
  let rec probe k =
    if k <= 0 then (Traversal.rebuild_finish ~upto_world_anchor:0 rebuild, 0)
    else
      let t = Traversal.rebuild_finish ~upto_world_anchor:k rebuild in
      if balanced t then (t, k) else probe (k - 1)
  in
  probe (Traversal.world_anchor_count rebuild)
