open Scalatrace

exception Potential_deadlock of string
exception Wildcard_error of string

(* A pending (unmatched) point-to-point operation instance. *)
type entry = {
  owner : int;
  is_send : bool;
  peer : int option; (* None: wildcard receive *)
  tag : int; (* -1 on receives: any tag *)
  comm : int;
  ev : Event.t; (* physical RSD event, for resolution recording *)
}

type blocked_reason =
  | B_send of entry
  | B_recv of { e : entry; mutable tried : int }
      (* [tried] cycles over candidate unblockers for wildcard receives *)
  | B_wait of { mutable tried : int (* proxy pointer into pending list *) }
  | B_coll of (int * string * int)
      (* (comm, participant signature, slot); the signature is "" for
         full-communicator collectives and the comma-joined declared
         participant set for neighborhood collectives — same keying as
         {!Align} *)

type node_state = {
  rank : int;
  mutable cursor : Traversal.cursor;
  mutable after : Traversal.cursor; (* cursor past the blocking event *)
  mutable finished : bool;
  mutable blocked : blocked_reason option;
  mutable pending : entry list; (* L1: own unmatched ops, oldest first *)
  coll_seq : (int * string, int) Hashtbl.t;
}

let psig_of (e : Event.t) =
  match e.Event.parts with
  | None -> ""
  | Some ps -> String.concat "," (List.map string_of_int (Array.to_list ps))

type coll_wait = {
  members : Util.Rank_set.t;
  n_members : int; (* cardinal of [members], computed once *)
  mutable n_arrived : int;
  mutable arrivals : (int * Event.t * Traversal.cursor) list;
}

let tag_accepts ~recv_tag ~send_tag = recv_tag = -1 || recv_tag = send_tag

let describe_entry e =
  Printf.sprintf "%s by rank %d (peer %s, comm %d)"
    (if e.is_send then "send" else "receive")
    e.owner
    (match e.peer with Some p -> string_of_int p | None -> "ANY")
    e.comm

type strategy = [ `Traversal | `Timed | `Auto ]

(* Phase 2 shared by both strategies: rewrite the trace, pinning each
   wildcard receive *instance* to its matched sender.  [queues] maps
   (leaf index, rank) to the senders in instance order.

   The rewrite is in place and local: RSDs whose instances all resolved to
   the same source just get their peer replaced; a loop that contains a
   wildcard RSD is unrolled and immediately recompressed, so alternating
   resolutions split the RSD (preserving per-sender message counts — the
   generated benchmark cannot hang on a count mismatch) while consistent
   ones fold back to the original structure. *)
let rebuild_resolved (trace : Trace.t) queues =
  let nranks = Trace.nranks trace in
  let leaf_ids =
    let ids = ref [] and n = ref 0 in
    Tnode.iter_leaves
      (fun e ->
        ids := (e, !n) :: !ids;
        incr n)
      (Trace.nodes trace);
    !ids
  in
  let id_of e =
    match List.find_opt (fun (e', _) -> e' == e) leaf_ids with
    | Some (_, i) -> i
    | None -> raise (Wildcard_error "internal: event not part of the trace")
  in
  let pop ~leaf ~rank =
    match Hashtbl.find_opt queues (leaf, rank) with
    | Some q -> (
        match !q with
        | src :: rest ->
            q := rest;
            src
        | [] ->
            raise
              (Wildcard_error "wildcard receive instance without a matched sender"))
    | None ->
        raise (Wildcard_error "wildcard receive never matched during traversal")
  in
  let rec has_wildcard nodes =
    List.exists
      (function
        | Tnode.Leaf e -> e.Event.peer = Event.P_any
        | Tnode.Loop { body; _ } -> has_wildcard body)
      nodes
  in
  (* Emit one instance of a wildcard RSD with this instance's sources. *)
  let resolve_instance (e : Event.t) =
    let leaf = id_of e in
    let obs =
      Util.Rank_set.fold (fun r acc -> (r, pop ~leaf ~rank:r) :: acc) e.Event.ranks []
      |> List.sort compare
    in
    let e' = Event.copy e in
    e'.Event.peer <- Event.P_map obs;
    Event.generalize ~nranks e';
    e'
  in
  let rec rewrite_into out nodes =
    List.iter
      (fun node ->
        match node with
        | Tnode.Leaf e ->
            if e.Event.peer = Event.P_any then
              Compress.push out (resolve_instance e)
            else Compress.push_node out (Tnode.copy node)
        | Tnode.Loop { count; body; _ } ->
            if has_wildcard body then
              (* unroll: each iteration consumes one resolution per
                 wildcard leaf per rank; the compressor folds consistent
                 iterations back together *)
              for _ = 1 to count do
                rewrite_into out body
              done
            else Compress.push_node out (Tnode.copy node))
      nodes
  in
  let out = Compress.create ~nranks () in
  rewrite_into out (Trace.nodes trace);
  Trace.with_nodes trace (Compress.contents out)

(* Phase 1, untimed: the paper's Algorithm 2 traversal.  Returns the
   resolution queues. *)
let traversal_resolve (trace : Trace.t) =
  let nranks = Trace.nranks trace in
  let comms = Trace.comms trace in
  let members_of cid =
    match List.assoc_opt cid comms with
    | Some m -> m
    | None -> raise (Wildcard_error (Printf.sprintf "unknown communicator %d" cid))
  in
  let states =
    Array.init nranks (fun rank ->
        {
          rank;
          cursor = Traversal.start (Trace.project trace ~rank);
          after = Traversal.start [];
          finished = false;
          blocked = None;
          pending = [];
          coll_seq = Hashtbl.create 8;
        })
  in
  (* L2: operations awaiting a match, indexed by the rank that must match
     them.  pending_sends.(d) are sends destined for d; pending_recvs.(r)
     are receives posted by r (so a send to r scans them). *)
  let pending_sends = Array.make nranks ([] : entry list) in
  let pending_recvs = Array.make nranks ([] : entry list) in
  let waits : (int * string * int, coll_wait) Hashtbl.t = Hashtbl.create 64 in
  (* RSD identity: structural hashing would conflate distinct-but-equal
     events, so leaves get explicit ids by physical identity. *)
  let leaf_ids =
    let ids = ref [] and n = ref 0 in
    Tnode.iter_leaves
      (fun e ->
        ids := (e, !n) :: !ids;
        incr n)
      (Trace.nodes trace);
    !ids
  in
  let id_of e =
    match List.find_opt (fun (e', _) -> e' == e) leaf_ids with
    | Some (_, i) -> i
    | None -> raise (Wildcard_error "internal: event not part of the trace")
  in
  (* Matching senders per (wildcard RSD, receiving rank), one per instance
     in match order — which equals instance order, since receives of one
     RSD are posted and matched FIFO. *)
  let resolutions : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let push_resolution key src =
    match Hashtbl.find_opt resolutions key with
    | Some q -> q := src :: !q
    | None -> Hashtbl.replace resolutions key (ref [ src ])
  in
  let remove_entry arr idx e =
    arr.(idx) <- List.filter (fun x -> x != e) arr.(idx)
  in
  let unblock s =
    s.blocked <- None;
    s.cursor <- s.after
  in
  (* Both sides of a match are removed from all lists; blocked owners whose
     condition is now satisfied resume past their blocking event. *)
  let do_match (send : entry) (recv : entry) =
    remove_entry pending_sends recv.owner send;
    remove_entry pending_recvs recv.owner recv;
    let strip s e = s.pending <- List.filter (fun x -> x != e) s.pending in
    strip states.(send.owner) send;
    strip states.(recv.owner) recv;
    (if recv.ev.Event.peer = Event.P_any then
       push_resolution (id_of recv.ev, recv.owner) send.owner);
    let maybe_unblock owner (matched : entry) =
      let s = states.(owner) in
      match s.blocked with
      | Some (B_send e) when e == matched -> unblock s
      | Some (B_recv { e; _ }) when e == matched -> unblock s
      | Some (B_wait _) when s.pending = [] -> unblock s
      | _ -> ()
    in
    maybe_unblock send.owner send;
    maybe_unblock recv.owner recv
  in
  (* matched-count per (sender, wildcard receiver): used to balance
     wildcard matching across senders, mirroring the round-robin arrival
     pattern of wavefront codes *)
  let channel_counts : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump_channel src dst =
    Hashtbl.replace channel_counts (src, dst)
      (1 + Option.value ~default:0 (Hashtbl.find_opt channel_counts (src, dst)))
  in
  (* Matching attempts for a newly traversed op (the L2 lookup). *)
  let try_match_send (send : entry) =
    let dst = Option.get send.peer in
    let candidate =
      List.find_opt
        (fun (r : entry) ->
          r.comm = send.comm
          && tag_accepts ~recv_tag:r.tag ~send_tag:send.tag
          && match r.peer with None -> true | Some p -> p = send.owner)
        pending_recvs.(dst)
    in
    match candidate with
    | Some recv ->
        if recv.peer = None then bump_channel send.owner recv.owner;
        do_match send recv;
        true
    | None -> false
  in
  let try_match_recv (recv : entry) =
    let compatible (s : entry) =
      s.comm = recv.comm
      && tag_accepts ~recv_tag:recv.tag ~send_tag:s.tag
      && match recv.peer with None -> true | Some p -> p = s.owner
    in
    let candidate =
      match recv.peer with
      | Some _ -> List.find_opt compatible pending_sends.(recv.owner)
      | None ->
          (* wildcard: prefer the sender least used on this channel so
             far, breaking ties by pending order *)
          List.fold_left
            (fun best (s : entry) ->
              if not (compatible s) then best
              else
                let c =
                  Option.value ~default:0
                    (Hashtbl.find_opt channel_counts (s.owner, recv.owner))
                in
                match best with
                | Some (_, bc) when bc <= c -> best
                | _ -> Some (s, c))
            None pending_sends.(recv.owner)
          |> Option.map fst
    in
    match candidate with
    | Some send ->
        if recv.peer = None then bump_channel send.owner recv.owner;
        do_match send recv;
        true
    | None -> false
  in
  let world_peer (e : Event.t) rank =
    match Event.peer_of e ~rank ~nranks with
    | Some p -> p
    | None ->
        raise
          (Wildcard_error
             (Printf.sprintf "rank %d: unresolvable peer in %s" rank
                (Event.kind_name e.kind)))
  in
  (* Advance rank [r] until it blocks or finishes.  Returns unit; the
     caller inspects the state. *)
  let advance r =
    let s = states.(r) in
    let running = ref true in
    while !running do
      match Traversal.peek s.cursor with
      | None ->
          s.finished <- true;
          running := false
      | Some (e, after) -> (
          match e.kind with
          | Event.E_send | Event.E_isend ->
              let dst = world_peer e r in
              let entry =
                { owner = r; is_send = true; peer = Some dst; tag = e.tag;
                  comm = e.comm; ev = e }
              in
              if try_match_send entry then s.cursor <- after
              else begin
                pending_sends.(dst) <- pending_sends.(dst) @ [ entry ];
                s.pending <- s.pending @ [ entry ];
                if e.kind = Event.E_send then begin
                  s.blocked <- Some (B_send entry);
                  s.after <- after;
                  running := false
                end
                else s.cursor <- after
              end
          | Event.E_recv | Event.E_irecv ->
              (* wildcard RSDs keep matching as wildcards on every loop
                 iteration; only the first match pins the recorded source *)
              let peer =
                match e.peer with
                | Event.P_any -> None
                | _ -> Some (world_peer e r)
              in
              let entry =
                { owner = r; is_send = false; peer; tag = e.tag; comm = e.comm;
                  ev = e }
              in
              if try_match_recv entry then s.cursor <- after
              else begin
                pending_recvs.(r) <- pending_recvs.(r) @ [ entry ];
                s.pending <- s.pending @ [ entry ];
                if e.kind = Event.E_recv then begin
                  s.blocked <- Some (B_recv { e = entry; tried = 0 });
                  s.after <- after;
                  running := false
                end
                else s.cursor <- after
              end
          | Event.E_wait | Event.E_waitall _ ->
              if s.pending = [] then s.cursor <- after
              else begin
                s.blocked <- Some (B_wait { tried = 0 });
                s.after <- after;
                running := false
              end
          | _ when Event.is_collective e.kind ->
              let psig = psig_of e in
              let seq_key = (e.comm, psig) in
              let slot =
                Option.value ~default:0 (Hashtbl.find_opt s.coll_seq seq_key)
              in
              Hashtbl.replace s.coll_seq seq_key (slot + 1);
              let key = (e.comm, psig, slot) in
              let w =
                match Hashtbl.find_opt waits key with
                | Some w -> w
                | None ->
                    let members =
                      match e.Event.parts with
                      | Some ps ->
                          Util.Rank_set.of_list (Array.to_list ps)
                      | None -> members_of e.comm
                    in
                    let w =
                      {
                        members;
                        n_members = Util.Rank_set.cardinal members;
                        n_arrived = 0;
                        arrivals = [];
                      }
                    in
                    Hashtbl.replace waits key w;
                    w
              in
              w.arrivals <- (r, e, after) :: w.arrivals;
              w.n_arrived <- w.n_arrived + 1;
              if w.n_arrived = w.n_members then begin
                Hashtbl.remove waits key;
                List.iter
                  (fun (r', _, after') ->
                    let s' = states.(r') in
                    s'.blocked <- None;
                    s'.cursor <- after')
                  w.arrivals
                (* s.cursor updated through the loop above; keep running *)
              end
              else begin
                s.blocked <- Some (B_coll key);
                s.after <- after;
                running := false
              end
          | _ ->
              raise (Wildcard_error "unhandled event kind in traversal"))
    done
  in
  let deadlock_message () =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "potential deadlock: every unfinished rank is blocked:";
    Array.iter
      (fun s ->
        if not s.finished then begin
          let what =
            match s.blocked with
            | Some (B_send e) -> "blocking " ^ describe_entry e
            | Some (B_recv { e; _ }) -> "blocking " ^ describe_entry e
            | Some (B_wait _) ->
                Printf.sprintf "a wait on %d pending operations" (List.length s.pending)
            | Some (B_coll (c, _, slot)) ->
                Printf.sprintf "a collective on communicator %d (slot %d)" c slot
            | None -> "<runnable>"
          in
          Buffer.add_string buf (Printf.sprintf "\n  rank %d blocked on %s" s.rank what)
        end)
      states;
    Buffer.contents buf
  in
  (* Scheduling: always advance the least-progressed runnable rank.  This
     keeps the per-rank traversals in near-lockstep, so wildcard receives
     match sends from the same logical phase (approximating the real
     arrival order) instead of letting one sender run iterations ahead —
     the property that keeps the resolved receive assignment *valid* (the
     generated benchmark cannot starve an iteration).  Matching unblocks
     ranks eagerly, so "every unfinished rank is blocked" is exactly the
     paper's sufficient deadlock condition: the traversal has returned to
     a blocked node with no unblocking event possible. *)
  let all_done () = Array.for_all (fun s -> s.finished) states in
  while not (all_done ()) do
    let candidate = ref None in
    Array.iter
      (fun s ->
        if (not s.finished) && s.blocked = None then
          match !candidate with
          | Some (best : node_state)
            when Traversal.consumed best.cursor <= Traversal.consumed s.cursor ->
              ()
          | _ -> candidate := Some s)
      states;
    match !candidate with
    | Some s -> advance s.rank
    | None -> raise (Potential_deadlock (deadlock_message ()))
  done;
  Hashtbl.fold
    (fun k q acc ->
      Hashtbl.replace acc k (ref (List.rev !q));
      acc)
    resolutions
    (Hashtbl.create (Hashtbl.length resolutions))

let timed_resolve ?net (trace : Trace.t) =
  let result =
    try Replay.run ?net trace
    with Mpisim.Engine.Deadlock msg ->
      raise (Potential_deadlock ("replay of the traced execution hangs: " ^ msg))
  in
  let queues = Hashtbl.create 64 in
  List.iter
    (fun (key, srcs) -> Hashtbl.replace queues key (ref srcs))
    result.Replay.wildcard_matches;
  queues

let run ?(strategy = `Auto) ?net ?(on_fallback = fun _ -> ()) (trace : Trace.t) =
  match strategy with
  | `Traversal -> rebuild_resolved trace (traversal_resolve trace)
  | `Timed -> rebuild_resolved trace (timed_resolve ?net trace)
  | `Auto -> (
      match traversal_resolve trace with
      | exception Potential_deadlock msg ->
          (* The untimed traversal wedged.  Replaying the trace decides
             whether that is a genuine hazard: a hanging replay re-raises
             from timed_resolve; a completing one resolves the wildcards
             from an actual execution. *)
          on_fallback
            ("untimed traversal reported a potential deadlock; falling back \
              to timed resolution: " ^ msg);
          rebuild_resolved trace (timed_resolve ?net trace)
      | queues -> (
          let resolved = rebuild_resolved trace queues in
          (* Validity check: an assignment is acceptable only if the
             resolved trace actually executes.  Untimed matching can
             occasionally pick an unrealizable sender order in pipelined
             codes. *)
          match Replay.run ?net resolved with
          | _ -> resolved
          | exception Mpisim.Engine.Deadlock _ ->
              on_fallback
                "untimed wildcard assignment failed replay validation; \
                 falling back to timed resolution";
              rebuild_resolved trace (timed_resolve ?net trace)))


let resolve_if_needed ?strategy ?net ?on_fallback trace =
  if Trace.has_wildcards trace then (run ?strategy ?net ?on_fallback trace, true)
  else (trace, false)
