(** Per-rank traversal of compressed traces.

    Both of the paper's algorithms walk the trace "on behalf of" each rank,
    suspending and resuming at arbitrary events.  A {!cursor} is a purely
    functional position in one rank's projection of the trace: it expands
    PRSD loops lazily (so traversal is O(events), not O(trace size)) and
    can be stored in per-rank contexts and advanced independently — the
    "traversal context" of Algorithm 1. *)

type cursor

(** Cursor at the beginning of a node sequence (normally
    [Trace.project t ~rank]). *)
val start : Scalatrace.Tnode.t list -> cursor

(** The event under the cursor and the cursor just past it; [None] at the
    end.  The returned event is the physical [Event.t] stored in the
    trace — every iteration of a loop yields the same object, which lets
    clients key per-RSD state (e.g. wildcard resolutions) on physical
    identity. *)
val peek : cursor -> (Scalatrace.Event.t * cursor) option

(** Events already consumed before this position — a stable identifier for
    "the k-th event of this rank" used by deadlock bookkeeping. *)
val consumed : cursor -> int

(** {1 Output rebuilding}

    Algorithm 1 rewrites the trace by re-emitting events in traversal
    order into a single output queue (the paper's [T_out]), compressed on
    the fly ("Compress T_out").  Every event instance is appended exactly
    once — shared collectives with their full participant set — so the
    per-rank projections of the result are correct by construction. *)

type rebuild

val rebuild_create : nranks:int -> comms:(int * Util.Rank_set.t) list -> rebuild

(** Emit an event instance executed by a single rank (peers are narrowed
    to that rank's concrete value). *)
val emit_single : rebuild -> rank:int -> Scalatrace.Event.t -> unit

(** Emit one collective RSD covering all of [ranks]; call it exactly once
    per collective instance, when all participants have arrived. *)
val emit_group : rebuild -> ranks:Util.Rank_set.t -> Scalatrace.Event.t -> unit

(** Number of world-spanning collective anchors emitted so far — the
    candidate cut points for degraded-mode truncation. *)
val world_anchor_count : rebuild -> int

(** Build the output trace.  With [upto_world_anchor:k], keep only the
    emission prefix up to and including the [k]-th world-spanning anchor
    and drop the open per-rank segments beyond it — the "globally
    consistent frontier" cut of degraded-mode generation.  May be called
    more than once on the same rebuild (e.g. probing successively earlier
    frontiers). *)
val rebuild_finish : ?upto_world_anchor:int -> rebuild -> Scalatrace.Trace.t
