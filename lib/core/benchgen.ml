module Traversal = Traversal
module Align = Align
module Wildcard = Wildcard
module Collective_map = Collective_map
module Codegen = Codegen
module Cgen = Cgen
module Extrap = Extrap
module Pipeline = Pipeline

type report = Pipeline.report = {
  program : Conceptual.Ast.program;
  text : string;
  aligned : bool;
  resolved : bool;
  input_rsds : int;
  final_rsds : int;
  statements : int;
}

type warning = Pipeline.warning =
  | W_aligned of { input_rsds : int; output_rsds : int }
  | W_wildcard_resolved
  | W_wildcard_fallback of string
  | W_salvaged of Scalatrace.Salvage.report
  | W_truncated_frontier of { anchors : int; dropped_events : int }
  | W_missing_participants of { missing : int list; detail : string }

type gen_error = Pipeline.gen_error =
  | E_potential_deadlock of string
  | E_align of string
  | E_wildcard of string
  | E_trace_format of string
  | E_io of string
  | E_codegen of string
  | E_unrecoverable_trace of string

let warning_to_string = Pipeline.warning_to_string
let error_to_string = Pipeline.error_to_string

(* The historical entry points raised; reconstruct the exception each
   typed error stands for. *)
let raise_gen_error : gen_error -> 'a = function
  | E_potential_deadlock msg -> raise (Wildcard.Potential_deadlock msg)
  | E_align msg -> raise (Align.Align_error msg)
  | E_wildcard msg -> raise (Wildcard.Wildcard_error msg)
  | E_trace_format msg -> raise (Scalatrace.Trace_io.Format_error msg)
  | E_io msg -> raise (Sys_error msg)
  | E_codegen msg -> raise (Codegen.Codegen_error msg)
  | E_unrecoverable_trace msg -> raise (Scalatrace.Trace_io.Format_error msg)

let generate ?name ?compute_floor_usecs trace =
  match
    Pipeline.run
      { Pipeline.default with name; compute_floor_usecs }
      (Pipeline.From_trace trace)
  with
  | Ok (a, _) -> a.Pipeline.report
  | Error e -> raise_gen_error e

let generate_text ?name ?compute_floor_usecs trace =
  (generate ?name ?compute_floor_usecs trace).text

let from_app ?name ?net ?fault ?max_events ?max_virtual_time
    ?compute_floor_usecs ~nranks app =
  match
    Pipeline.run
      {
        Pipeline.default with
        name;
        net;
        fault;
        max_events;
        max_virtual_time;
        compute_floor_usecs;
      }
      (Pipeline.From_app { nranks; app })
  with
  | Ok (a, _) -> (a.Pipeline.report, Option.get a.Pipeline.trace_outcome)
  | Error e -> raise_gen_error e

let generate_checked ?name ?compute_floor_usecs ?strategy trace =
  Result.map
    (fun ((a : Pipeline.artifact), ws) -> (a.Pipeline.report, ws))
    (Pipeline.run
       { Pipeline.default with name; compute_floor_usecs; strategy }
       (Pipeline.From_trace trace))

let generate_checked_file ?name ?compute_floor_usecs ?strategy ~path () =
  Result.map
    (fun ((a : Pipeline.artifact), ws) -> (a.Pipeline.report, ws))
    (Pipeline.run
       { Pipeline.default with name; compute_floor_usecs; strategy }
       (Pipeline.From_file path))

(* ------------------------------------------------------------------ *)
(* Fidelity under noise: does the generated benchmark still track the
   original application when the machine misbehaves?  Every trial draws
   a perturbed network (scaled latency/bandwidth) plus a seeded fault
   plan, runs both programs under identical conditions, and records the
   signed timing error — the paper's Fig. 6/7 comparison, now with a
   distribution instead of a single clean run.                          *)

type noise_sample = {
  ns_seed : int;
  ns_latency_factor : float;
  ns_bandwidth_factor : float;
  ns_original : float;
  ns_generated : float;
  ns_error_pct : float;
}

type noise_report = {
  nr_baseline_error_pct : float;
  nr_samples : noise_sample list;
  nr_mean_abs_error_pct : float;
  nr_max_abs_error_pct : float;
  nr_stddev_error_pct : float;
}

let validate_under_noise ?(net = Mpisim.Netmodel.bluegene_l) ?(trials = 5)
    ?(base_seed = 1) ?fault ~nranks app (report : report) =
  if trials < 1 then invalid_arg "validate_under_noise: trials must be >= 1";
  let template =
    match fault with
    | Some f -> f
    | None ->
        Mpisim.Fault.make ~seed:base_seed
          ~jitter_mean:(2. *. net.Mpisim.Netmodel.latency) ~os_noise:0.05 ()
  in
  let err ~reference ~measured = Util.Stats.pct_error ~reference ~measured in
  let baseline_orig = Mpisim.Mpi.run ~net ~nranks app in
  let baseline_gen = Conceptual.Lower.run ~net ~nranks report.program in
  let rng = Util.Rng.create ~seed:base_seed in
  let samples =
    List.init trials (fun i ->
        let lat_f = Util.Rng.uniform rng 1.0 2.0 in
        let bw_f = Util.Rng.uniform rng 0.5 1.0 in
        let tnet = Mpisim.Netmodel.scale ~latency:lat_f ~bandwidth:bw_f net in
        let f = { template with Mpisim.Fault.seed = base_seed + i } in
        let o = Mpisim.Mpi.run ~net:tnet ~fault:f ~nranks app in
        let g = Conceptual.Lower.run ~net:tnet ~fault:f ~nranks report.program in
        {
          ns_seed = f.Mpisim.Fault.seed;
          ns_latency_factor = lat_f;
          ns_bandwidth_factor = bw_f;
          ns_original = o.Mpisim.Engine.elapsed;
          ns_generated = g.Conceptual.Lower.outcome.Mpisim.Engine.elapsed;
          ns_error_pct =
            err ~reference:o.Mpisim.Engine.elapsed
              ~measured:g.Conceptual.Lower.outcome.Mpisim.Engine.elapsed;
        })
  in
  let errs = List.map (fun s -> s.ns_error_pct) samples in
  let mean_signed = Util.Stats.mean errs in
  let stddev =
    sqrt
      (Util.Stats.mean
         (List.map (fun e -> (e -. mean_signed) *. (e -. mean_signed)) errs))
  in
  {
    nr_baseline_error_pct =
      err ~reference:baseline_orig.Mpisim.Engine.elapsed
        ~measured:baseline_gen.Conceptual.Lower.outcome.Mpisim.Engine.elapsed;
    nr_samples = samples;
    nr_mean_abs_error_pct = Util.Stats.mean (List.map Float.abs errs);
    nr_max_abs_error_pct = Util.Stats.max_abs errs;
    nr_stddev_error_pct = stddev;
  }
