open Scalatrace

type target =
  | T_sync
  | T_multicast of { root : int; bytes : int }
  | T_reduce of { root : int; bytes : int }
  | T_reduce_all of { bytes : int }
  | T_alltoall of { bytes : int }
  | T_reduce_multicast of { root : int; reduce_bytes : int; multicast_bytes : int }
  | T_reduce_per_member of { bytes_per_member : int array }
  | T_neighbor of { gather : bool; bytes : int; offsets : int array }
  | T_skip

exception Unmappable of string

let root_of (e : Event.t) =
  match e.peer with
  | Event.P_abs r -> r
  | _ ->
      raise
        (Unmappable
           (Printf.sprintf "%s without a concrete root" (Event.kind_name e.kind)))

let avg total p = if p <= 0 then total else (total + (p / 2)) / p

let map ~p (e : Event.t) =
  match e.kind with
  | Event.E_barrier -> T_sync
  | Event.E_bcast -> T_multicast { root = root_of e; bytes = e.bytes }
  | Event.E_reduce -> T_reduce { root = root_of e; bytes = e.bytes }
  | Event.E_allreduce -> T_reduce_all { bytes = e.bytes }
  | Event.E_gather -> T_reduce { root = root_of e; bytes = e.bytes }
  | Event.E_gatherv ->
      (* REDUCE with averaged message size *)
      T_reduce { root = root_of e; bytes = avg e.bytes p }
  | Event.E_allgather ->
      (* REDUCE + MULTICAST: everyone contributes one slice, everyone
         receives the full vector *)
      T_reduce_multicast
        { root = -1; reduce_bytes = e.bytes; multicast_bytes = e.bytes * p }
  | Event.E_allgatherv ->
      T_reduce_multicast
        { root = -1; reduce_bytes = avg e.bytes p; multicast_bytes = e.bytes }
  | Event.E_scatter -> T_multicast { root = root_of e; bytes = e.bytes }
  | Event.E_scatterv -> T_multicast { root = root_of e; bytes = avg e.bytes p }
  | Event.E_alltoall -> T_alltoall { bytes = e.bytes }
  | Event.E_alltoallv ->
      (* many-to-many MULTICAST with averaged message size: every member
         fans the average row out to the group, preserving each rank's
         exchanged volume *)
      T_alltoall { bytes = avg e.bytes p }
  | Event.E_reduce_scatter ->
      let vec =
        match e.vec with
        | Some v -> Array.copy v
        | None -> Array.make p (avg e.bytes p)
      in
      T_reduce_per_member { bytes_per_member = vec }
  | Event.E_neighbor_alltoall | Event.E_neighbor_allgather ->
      if p <= 1 then T_skip
      else
        (* The offset vector survives RSD merging exactly when the
           neighborhood is a rank-relative stencil; a lossy merge drops
           it, leaving only the degree (in [tag]), for which we
           substitute a ring stencil of the same degree — fan-out shape
           and per-rank volume are preserved, the precise topology is
           not. *)
        let sanitize v =
          Array.to_list v
          |> List.map (fun o -> ((o mod p) + p) mod p)
          |> List.filter (fun o -> o <> 0)
          |> List.sort_uniq compare
        in
        let offsets =
          match Option.map sanitize e.vec with
          | Some (_ :: _ as l) -> Array.of_list l
          | Some [] | None ->
              let deg = min (max e.tag 1) (p - 1) in
              Array.init deg (fun i -> i + 1)
        in
        T_neighbor
          { gather = e.kind = Event.E_neighbor_allgather; bytes = e.bytes; offsets }
  | Event.E_comm_split | Event.E_comm_dup | Event.E_finalize -> T_skip
  | Event.E_send | Event.E_isend | Event.E_recv | Event.E_irecv | Event.E_wait
  | Event.E_waitall _ ->
      raise (Unmappable (Event.kind_name e.kind ^ " is not a collective"))

let describe = function
  | Event.E_barrier -> "SYNCHRONIZE"
  | Event.E_bcast -> "MULTICAST"
  | Event.E_reduce -> "REDUCE"
  | Event.E_allreduce -> "REDUCE to all members"
  | Event.E_gather -> "REDUCE"
  | Event.E_gatherv -> "REDUCE with averaged message size"
  | Event.E_allgather -> "REDUCE + MULTICAST"
  | Event.E_allgatherv -> "REDUCE with averaged message size + MULTICAST"
  | Event.E_scatter -> "MULTICAST"
  | Event.E_scatterv -> "MULTICAST with averaged message size"
  | Event.E_alltoall -> "native all-to-all exchange"
  | Event.E_alltoallv -> "MULTICAST with averaged message size"
  | Event.E_reduce_scatter ->
      "n many-to-one REDUCEs with different message sizes and roots"
  | Event.E_neighbor_alltoall -> "EXCHANGE WITH NEIGHBORS at the traced offsets"
  | Event.E_neighbor_allgather -> "GATHER FROM NEIGHBORS at the traced offsets"
  | Event.E_comm_split | Event.E_comm_dup -> "(communicator management: omitted)"
  | Event.E_finalize -> "(end of benchmark)"
  | Event.E_send | Event.E_isend -> "SEND"
  | Event.E_recv | Event.E_irecv -> "RECEIVE"
  | Event.E_wait | Event.E_waitall _ -> "AWAIT COMPLETION"

let table =
  [
    ("Allgather", "REDUCE + MULTICAST");
    ("Allgatherv", "REDUCE with averaged message size + MULTICAST");
    ("Alltoallv", "MULTICAST with averaged message size");
    ("Gather", "REDUCE");
    ("Gatherv", "REDUCE with averaged message size");
    ("Neighbor_allgather", "GATHER FROM NEIGHBORS at the traced offsets");
    ("Neighbor_alltoall", "EXCHANGE WITH NEIGHBORS at the traced offsets");
    ( "Reduce_scatter",
      "n many-to-one REDUCEs with different message sizes and roots, where n \
       is the communicator size" );
    ("Scatter", "MULTICAST");
    ("Scatterv", "MULTICAST with averaged message size");
  ]
