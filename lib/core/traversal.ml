open Scalatrace

type frame = { todo : Tnode.t list; restart : (int * Tnode.t list) option }

type cursor = { frames : frame list; seen : int }

let start nodes = { frames = [ { todo = nodes; restart = None } ]; seen = 0 }

let rec peek c =
  match c.frames with
  | [] -> None
  | { todo = []; restart = Some (k, body) } :: outer when k > 0 ->
      peek
        { c with frames = { todo = body; restart = Some (k - 1, body) } :: outer }
  | { todo = []; _ } :: outer -> peek { c with frames = outer }
  | { todo = Tnode.Leaf e :: rest; restart } :: outer ->
      Some (e, { frames = { todo = rest; restart } :: outer; seen = c.seen + 1 })
  | { todo = Tnode.Loop { count; body; _ } :: rest; restart } :: outer ->
      if count <= 0 then peek { c with frames = { todo = rest; restart } :: outer }
      else
        peek
          {
            c with
            frames =
              { todo = body; restart = Some (count - 1, body) }
              :: { todo = rest; restart }
              :: outer;
          }

let consumed c = c.seen

(* ------------------------------------------------------------------ *)

(* The rebuild collects per-rank compressed segments between *anchors* —
   the shared (multi-participant) RSDs that Algorithm 1 emits exactly once
   per collective instance.  At finish time, the segments each anchor's
   participants accumulated since their previous anchor are merged across
   ranks (they contain only singleton-rank nodes, so no shared RSD can
   ever be duplicated), the anchor is appended once, and the resulting
   global queue is tail-compressed.  This keeps the output sublinear in
   the rank count while making per-rank projections correct by
   construction. *)

type item = {
  anchor : Event.t; (* carries its full participant set *)
  pre : Tnode.t list list; (* participants' segments since their last anchor *)
}

type rebuild = {
  nranks : int;
  comms : (int * Util.Rank_set.t) list;
  mutable per_rank : Compress.t array; (* open segment of each rank *)
  mutable items : item list; (* reversed emission order *)
}

let fresh_compressor ~nranks () =
  (* anchors never enter these segment compressors, so no foldable
     restriction is needed *)
  Compress.create ~nranks ()

let rebuild_create ~nranks ~comms =
  {
    nranks;
    comms;
    per_rank = Array.init nranks (fun _ -> fresh_compressor ~nranks ());
    items = [];
  }

(* Narrow generalized peers to this rank: keeping a multi-rank P_map on a
   singleton-rank event would misrepresent the participant set. *)
let narrowed ~nranks rank (e : Event.t) =
  let e' = Event.copy e in
  e'.ranks <- Util.Rank_set.singleton rank;
  (match e'.peer with
  | Event.P_map _ | Event.P_rel _ -> (
      match Event.peer_of e ~rank ~nranks with
      | Some p -> e'.peer <- Event.P_abs p
      | None -> ())
  | Event.P_none | Event.P_any | Event.P_abs _ -> ());
  e'

let emit_single t ~rank e =
  Compress.push t.per_rank.(rank) (narrowed ~nranks:t.nranks rank e)

let emit_group t ~ranks e =
  let e' = Event.copy e in
  e'.ranks <- ranks;
  let pre =
    Util.Rank_set.fold
      (fun rank acc ->
        let seg = Compress.contents t.per_rank.(rank) in
        t.per_rank.(rank) <- fresh_compressor ~nranks:t.nranks ();
        if seg = [] then acc else seg :: acc)
      ranks []
  in
  t.items <- { anchor = e'; pre } :: t.items

let is_world_anchor t { anchor; _ } =
  Util.Rank_set.cardinal anchor.Event.ranks = t.nranks

let world_anchor_count t =
  List.fold_left
    (fun acc it -> if is_world_anchor t it then acc + 1 else acc)
    0 t.items

(* When [upto_world_anchor = Some k], keep only the emission prefix up to
   and including the k-th world-spanning anchor — the "globally consistent
   frontier" of degraded-mode generation: every rank is provably at the
   same program point right after a world collective, so cutting there
   leaves all send/recv channels balanced. *)
let rebuild_finish ?upto_world_anchor t =
  let items = List.rev t.items in
  let items, truncating =
    match upto_world_anchor with
    | None -> (items, false)
    | Some k when k <= 0 -> ([], true)
    | Some k ->
        let rec take n = function
          | [] -> []
          | it :: rest ->
              if is_world_anchor t it then
                if n <= 1 then [ it ] else it :: take (n - 1) rest
              else it :: take n rest
        in
        (take k items, true)
  in
  let out = Compress.create ~nranks:t.nranks () in
  let flush_segments segments =
    List.iter
      (fun node -> Compress.push_node out node)
      (Merge.merge_node_lists ~nranks:t.nranks segments)
  in
  List.iter
    (fun { anchor; pre } ->
      flush_segments pre;
      (* anchors are copied so finish can run more than once (the
         degraded-mode driver probes successively earlier frontiers) *)
      Compress.push_node out (Tnode.Leaf (Event.copy anchor)))
    items;
  (* events of ranks whose stream ends without a final anchor; dropped
     when truncating to a frontier — they lie beyond the cut *)
  if not truncating then
    flush_segments
      (Array.to_list t.per_rank
      |> List.filter_map (fun c ->
             match Compress.contents c with [] -> None | seg -> Some seg));
  let nodes =
    Tnode.map_leaves
      (fun e ->
        Event.generalize ~nranks:t.nranks e;
        e)
      (Compress.contents out)
  in
  Trace.make ~nranks:t.nranks ~comms:t.comms ~nodes
