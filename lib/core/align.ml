open Scalatrace

exception Align_error of string

type policy = [ `Strict | `Best_effort ]

type stall = {
  st_edges : Util.Waitgraph.edge list;
  st_missing : int list;
}

exception Incomplete of stall

type outcome = {
  out : Trace.t;
  stall : stall option;
  cut_anchors : int option;
  dropped_events : int;
}

(* A collective wait is keyed by (communicator, participant signature,
   slot).  The signature is "" for full-communicator collectives — the
   historical key, byte-compatible behavior — and the comma-joined sorted
   world participant set for neighborhood collectives, so disjoint
   participant groups on one communicator advance independently instead
   of mis-accounting each other's arrival bitmap. *)
type coll_key = int * string * int

type node_state = {
  rank : int;
  mutable cursor : Traversal.cursor;
  mutable finished : bool;
  mutable blocked : coll_key option;
  coll_seq : (int * string, int) Hashtbl.t; (* (comm, psig) -> next slot *)
}

let psig_of (e : Event.t) =
  match e.Event.parts with
  | None -> ""
  | Some ps ->
      String.concat "," (List.map string_of_int (Array.to_list ps))

(* Collective-wait state is indexed so the hot per-arrival operations are
   sublinear in the communicator size: arrivals are marked in a bool array
   over the sorted member list (completion is an O(1) counter compare, not
   [List.length] vs [cardinal]), and the smallest not-yet-arrived member is
   found by a monotone scan pointer that advances O(members) in total per
   wait instead of O(members) per probe. *)
type coll_wait = {
  members : Util.Rank_set.t;
  member_arr : int array; (* members, ascending *)
  arrived : bool array; (* by [member_arr] position *)
  partial : bool; (* declared participant set, not the whole communicator *)
  mutable n_arrived : int;
  mutable scan : int; (* all positions < scan have arrived *)
  mutable arrivals : (int * Event.t * Traversal.cursor) list;
      (* rank, event, cursor past the event *)
}

let make_wait ?(partial = false) members =
  let member_arr = Array.of_list (Util.Rank_set.to_list members) in
  {
    members;
    member_arr;
    arrived = Array.make (Array.length member_arr) false;
    partial;
    n_arrived = 0;
    scan = 0;
    arrivals = [];
  }

(* Position of [r] in [w.member_arr], or [None] for a non-member. *)
let member_pos w r =
  let arr = w.member_arr in
  let rec go lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) = r then Some mid
      else if arr.(mid) < r then go (mid + 1) hi
      else go lo (mid - 1)
  in
  go 0 (Array.length arr - 1)

let record_arrival (key : coll_key) w rank event after =
  let comm, _, slot = key in
  (match member_pos w rank with
  | Some pos ->
      if not w.arrived.(pos) then begin
        w.arrived.(pos) <- true;
        w.n_arrived <- w.n_arrived + 1
      end
  | None ->
      if w.partial then
        raise
          (Align_error
             (Printf.sprintf
                "rank %d arrives at %s on communicator %d (slot %d) but is \
                 outside the declared participant set {%s}"
                rank
                (Event.kind_name event.Event.kind)
                comm slot
                (String.concat ","
                   (List.map string_of_int (Array.to_list w.member_arr)))))
      else
        raise
          (Align_error
             (Printf.sprintf
                "rank %d reaches a collective on communicator %d (slot %d) but \
                 is not a member of that communicator"
                rank comm slot)));
  w.arrivals <- (rank, event, after) :: w.arrivals

(* One RSD for the complete participant set, hoisted to a single call
   point (the smallest rank's site). *)
let merge_collective (key : coll_key) arrivals members =
  let comm, _, slot = key in
  let arrivals = List.sort (fun (a, _, _) (b, _, _) -> compare a b) arrivals in
  match arrivals with
  | [] ->
      raise
        (Align_error
           (Printf.sprintf
              "internal: collective on communicator %d (slot %d) completed \
               with no arrivals"
              comm slot))
  | (_, first, _) :: rest ->
      List.iter
        (fun (r, (e : Event.t), _) ->
          if e.Event.kind <> first.Event.kind then
            raise
              (Align_error
                 (Printf.sprintf
                    "collective mismatch on communicator %d (slot %d): rank %d \
                     calls %s but rank 0 of the group calls %s"
                    comm slot r (Event.kind_name e.kind)
                    (Event.kind_name first.kind)));
          if Event.is_p2p e.kind then
            raise (Align_error "internal: p2p event in collective merge"))
        rest;
      let n = List.length arrivals in
      let all_bytes = List.map (fun (_, (e : Event.t), _) -> e.bytes) arrivals in
      let bytes =
        if List.for_all (fun b -> b = first.bytes) all_bytes then first.bytes
        else begin
          (* Rounded (half-up) mean, overflow-safe: accumulate quotients and
             remainders separately instead of summing the raw byte counts,
             which can exceed [max_int] on wide communicators. *)
          let q = ref 0 and r = ref 0 in
          List.iter
            (fun b ->
              q := !q + (b / n);
              r := !r + (b mod n))
            all_bytes;
          let mean = !q + (!r / n) in
          if 2 * (!r mod n) >= n then mean + 1 else mean
        end
      in
      let vec =
        if
          List.for_all
            (fun (_, (e : Event.t), _) -> e.vec = first.vec)
            arrivals
        then Option.map Array.copy first.vec
        else None
      in
      let peer =
        (* rooted collectives must agree on the root *)
        match first.peer with
        | Event.P_abs root ->
            List.iter
              (fun (r, (e : Event.t), _) ->
                match e.peer with
                | Event.P_abs root' when root' = root -> ()
                | Event.P_map _ when e.kind = Event.E_comm_split -> ()
                | _ ->
                    if e.kind <> Event.E_comm_split then
                      raise
                        (Align_error
                           (Printf.sprintf
                              "root mismatch in %s on communicator %d (rank %d)"
                              (Event.kind_name e.kind) comm r)))
              arrivals;
            first.peer
        | p -> p
      in
      let dtime = Util.Histogram.create () in
      List.iter
        (fun (_, (e : Event.t), _) -> Util.Histogram.merge_into dtime e.dtime)
        arrivals;
      {
        Event.site = first.site;
        kind = first.kind;
        peer;
        bytes;
        vec;
        tag = first.tag;
        comm = first.comm;
        parts = Option.map Array.copy first.parts;
        dtime;
        ranks = members;
        hcache = 0;
      }

(* The wait-for graph at a stall: one edge per rank parked at a pending
   collective, naming the members whose arrival it still needs and — as
   [missing] — those that can never arrive because their stream ended. *)
let stall_of_waits waits states =
  let edges = ref [] in
  Hashtbl.iter
    (fun ((comm, _, slot) : coll_key) (w : coll_wait) ->
      let absent = ref [] in
      for i = Array.length w.member_arr - 1 downto 0 do
        if not w.arrived.(i) then absent := w.member_arr.(i) :: !absent
      done;
      let absent = !absent in
      let dead = List.filter (fun r -> states.(r).finished) absent in
      List.iter
        (fun (r, (e : Event.t), _) ->
          edges :=
            Util.Waitgraph.edge ~rank:r
              ~what:
                (Printf.sprintf "%s at %s (communicator %d, slot %d)"
                   (Event.kind_name e.kind)
                   (Util.Callsite.to_string e.site)
                   comm slot)
              ~waiting_on:absent ~missing:dead ()
            :: !edges)
        w.arrivals)
    waits;
  let edges = !edges in
  { st_edges = edges; st_missing = Util.Waitgraph.missing_ranks edges }

let stall_message stall =
  Util.Waitgraph.format
    ~header:
      "alignment cannot complete: collective participants will never arrive \
       (trace truncated?)"
    stall.st_edges

(* Algorithm 1 with a safety net: the traversal carries an iteration
   budget (it is linear in the event count when the trace is well-formed,
   so the budget only trips on internal errors) and detects *dead waits*
   — a parked collective whose missing member's stream already ended —
   instead of spinning on them.  Under [`Strict] a dead wait raises; under
   [`Best_effort] the traversal stops and the output is cut back to the
   last channel-balanced world frontier (see {!Frontier}). *)
let run_policy ?(policy : policy = `Strict) (trace : Trace.t) =
  let nranks = Trace.nranks trace in
  let comms = Trace.comms trace in
  let members_of cid =
    match List.assoc_opt cid comms with
    | Some m -> m
    | None -> raise (Align_error (Printf.sprintf "unknown communicator %d" cid))
  in
  let states =
    Array.init nranks (fun rank ->
        {
          rank;
          cursor = Traversal.start (Trace.project trace ~rank);
          finished = false;
          blocked = None;
          coll_seq = Hashtbl.create 8;
        })
  in
  let waits : (coll_key, coll_wait) Hashtbl.t = Hashtbl.create 64 in
  let rebuild = Traversal.rebuild_create ~nranks ~comms in
  let next_unfinished from =
    let rec go i tried =
      if tried >= nranks then None
      else
        let r = (from + i) mod nranks in
        if not states.(r).finished then Some r else go (i + 1) (tried + 1)
    in
    go 0 0
  in
  (* Smallest group member that has not yet arrived at the collective.
     Arrivals are permanent for the lifetime of a wait, so the scan
     pointer only moves forward: total cost O(members) per wait rather
     than O(members) per probe. *)
  let next_missing key =
    let w = Hashtbl.find waits key in
    let nmem = Array.length w.member_arr in
    while w.scan < nmem && w.arrived.(w.scan) do
      w.scan <- w.scan + 1
    done;
    if w.scan < nmem then w.member_arr.(w.scan) else assert false
  in
  (* Jump over nodes blocked on other collectives.  [`Run r] — r can make
     progress; [`Dead] — the chain reached a rank whose stream already
     ended, so the wait can never complete; cycles mean mismatched
     collective ordering in the application and always raise. *)
  let resolve_runnable start =
    let rec go r seen =
      let s = states.(r) in
      match s.blocked with
      | None -> if s.finished then `Dead else `Run r
      | Some key ->
          if List.mem r seen then
            raise
              (Align_error
                 "cyclic collective dependency across communicators (mismatched \
                  collective ordering in the application)")
          else go (next_missing key) (r :: seen)
    in
    go start []
  in
  let finish_collective key =
    let w = Hashtbl.find waits key in
    Hashtbl.remove waits key;
    let merged = merge_collective key w.arrivals w.members in
    Traversal.emit_group rebuild ~ranks:w.members merged;
    List.iter
      (fun (r, _, after) ->
        states.(r).blocked <- None;
        states.(r).cursor <- after)
      w.arrivals;
    (* resume at the first (smallest) node blocked on this collective *)
    List.fold_left (fun acc (r, _, _) -> min acc r) max_int w.arrivals
  in
  (* Linear in events for well-formed traces; generous slack for the
     park/resume bookkeeping.  Tripping it means an internal invariant
     broke — better a typed error than a hang. *)
  let budget = ref ((2 * Trace.event_count trace) + (16 * nranks) + 64) in
  let stall = ref None in
  let current = ref (Some 0) in
  while !current <> None && !stall = None do
    decr budget;
    if !budget < 0 then
      raise (Align_error "internal: alignment exceeded its traversal budget");
    let r = Option.get !current in
    let s = states.(r) in
    let continue_at step =
      match step with
      | Some (`Run r') -> current := Some r'
      | Some `Dead -> stall := Some (stall_of_waits waits states)
      | None -> current := None
    in
    match Traversal.peek s.cursor with
    | None ->
        s.finished <- true;
        continue_at (Option.map resolve_runnable (next_unfinished r))
    | Some (e, after) ->
        if not (Event.is_collective e.kind) then begin
          Traversal.emit_single rebuild ~rank:r e;
          s.cursor <- after
        end
        else begin
          let psig = psig_of e in
          let seq_key = (e.comm, psig) in
          let slot =
            Option.value ~default:0 (Hashtbl.find_opt s.coll_seq seq_key)
          in
          Hashtbl.replace s.coll_seq seq_key (slot + 1);
          let key = (e.comm, psig, slot) in
          let w =
            match Hashtbl.find_opt waits key with
            | Some w -> w
            | None ->
                let w =
                  match e.Event.parts with
                  | Some ps ->
                      make_wait ~partial:true
                        (Util.Rank_set.of_list (Array.to_list ps))
                  | None -> make_wait (members_of e.comm)
                in
                Hashtbl.replace waits key w;
                w
          in
          record_arrival key w r e after;
          if w.n_arrived = Array.length w.member_arr then
            current := Some (finish_collective key)
          else begin
            s.blocked <- Some key;
            continue_at (Some (resolve_runnable (next_missing key)))
          end
        end
  done;
  match (!stall, policy) with
  | Some st, `Strict -> raise (Incomplete st)
  | Some st, `Best_effort ->
      let out, anchors = Frontier.cut ~rebuild () in
      {
        out;
        stall = Some st;
        cut_anchors = Some anchors;
        dropped_events = Trace.event_count trace - Trace.event_count out;
      }
  | None, _ ->
      let out = Traversal.rebuild_finish rebuild in
      if policy = `Best_effort && not (Frontier.balanced out) then
        (* no collective ever went unanswered, but a p2p conversation was
           cut mid-flight (pure point-to-point truncation) *)
        let out', anchors = Frontier.cut ~rebuild () in
        {
          out = out';
          stall = None;
          cut_anchors = Some anchors;
          dropped_events = Trace.event_count trace - Trace.event_count out';
        }
      else { out; stall = None; cut_anchors = None; dropped_events = 0 }

let run trace =
  try (run_policy ~policy:`Strict trace).out
  with Incomplete st -> raise (Align_error (stall_message st))

let align_if_needed trace =
  if Trace.has_unaligned_collectives trace then (run trace, true)
  else (trace, false)
