open Scalatrace

exception Align_error of string

type node_state = {
  rank : int;
  mutable cursor : Traversal.cursor;
  mutable finished : bool;
  mutable blocked : (int * int) option; (* collective key (comm, slot) *)
  coll_seq : (int, int) Hashtbl.t; (* comm id -> next slot *)
}

type coll_wait = {
  members : Util.Rank_set.t;
  mutable arrivals : (int * Event.t * Traversal.cursor) list;
      (* rank, event, cursor past the event *)
}

(* One RSD for the complete participant set, hoisted to a single call
   point (the smallest rank's site). *)
let merge_collective key arrivals members =
  let arrivals = List.sort (fun (a, _, _) (b, _, _) -> compare a b) arrivals in
  match arrivals with
  | [] -> assert false
  | (_, first, _) :: rest ->
      List.iter
        (fun (r, (e : Event.t), _) ->
          if e.Event.kind <> first.Event.kind then
            raise
              (Align_error
                 (Printf.sprintf
                    "collective mismatch on communicator %d (slot %d): rank %d \
                     calls %s but rank 0 of the group calls %s"
                    (fst key) (snd key) r (Event.kind_name e.kind)
                    (Event.kind_name first.kind)));
          if Event.is_p2p e.kind then
            raise (Align_error "internal: p2p event in collective merge"))
        rest;
      let n = List.length arrivals in
      let all_bytes = List.map (fun (_, (e : Event.t), _) -> e.bytes) arrivals in
      let bytes =
        if List.for_all (fun b -> b = first.bytes) all_bytes then first.bytes
        else List.fold_left ( + ) 0 all_bytes / n
      in
      let vec =
        if
          List.for_all
            (fun (_, (e : Event.t), _) -> e.vec = first.vec)
            arrivals
        then Option.map Array.copy first.vec
        else None
      in
      let peer =
        (* rooted collectives must agree on the root *)
        match first.peer with
        | Event.P_abs root ->
            List.iter
              (fun (r, (e : Event.t), _) ->
                match e.peer with
                | Event.P_abs root' when root' = root -> ()
                | Event.P_map _ when e.kind = Event.E_comm_split -> ()
                | _ ->
                    if e.kind <> Event.E_comm_split then
                      raise
                        (Align_error
                           (Printf.sprintf
                              "root mismatch in %s on communicator %d (rank %d)"
                              (Event.kind_name e.kind) (fst key) r)))
              arrivals;
            first.peer
        | p -> p
      in
      let dtime = Util.Histogram.create () in
      List.iter
        (fun (_, (e : Event.t), _) -> Util.Histogram.merge_into dtime e.dtime)
        arrivals;
      {
        Event.site = first.site;
        kind = first.kind;
        peer;
        bytes;
        vec;
        tag = first.tag;
        comm = first.comm;
        dtime;
        ranks = members;
        hcache = 0;
      }

let run (trace : Trace.t) =
  let nranks = Trace.nranks trace in
  let comms = Trace.comms trace in
  let members_of cid =
    match List.assoc_opt cid comms with
    | Some m -> m
    | None -> raise (Align_error (Printf.sprintf "unknown communicator %d" cid))
  in
  let states =
    Array.init nranks (fun rank ->
        {
          rank;
          cursor = Traversal.start (Trace.project trace ~rank);
          finished = false;
          blocked = None;
          coll_seq = Hashtbl.create 8;
        })
  in
  let waits : (int * int, coll_wait) Hashtbl.t = Hashtbl.create 64 in
  let rebuild = Traversal.rebuild_create ~nranks ~comms in
  let next_unfinished from =
    let rec go i tried =
      if tried >= nranks then None
      else
        let r = (from + i) mod nranks in
        if not states.(r).finished then Some r else go (i + 1) (tried + 1)
    in
    go 0 0
  in
  (* Next group member that has not yet arrived at the collective. *)
  let next_missing key =
    let w = Hashtbl.find waits key in
    let arrived = List.map (fun (r, _, _) -> r) w.arrivals in
    match
      Util.Rank_set.to_list w.members
      |> List.find_opt (fun r -> not (List.mem r arrived))
    with
    | Some r -> r
    | None -> assert false
  in
  (* Jump over nodes blocked on other collectives, detecting cycles. *)
  let resolve_runnable start =
    let rec go r seen =
      match states.(r).blocked with
      | None -> r
      | Some key ->
          if List.mem r seen then
            raise
              (Align_error
                 "cyclic collective dependency across communicators (mismatched \
                  collective ordering in the application)")
          else go (next_missing key) (r :: seen)
    in
    go start []
  in
  let finish_collective key =
    let w = Hashtbl.find waits key in
    Hashtbl.remove waits key;
    let merged = merge_collective key w.arrivals w.members in
    Traversal.emit_group rebuild ~ranks:w.members merged;
    List.iter
      (fun (r, _, after) ->
        states.(r).blocked <- None;
        states.(r).cursor <- after)
      w.arrivals;
    (* resume at the first (smallest) node blocked on this collective *)
    List.fold_left (fun acc (r, _, _) -> min acc r) max_int w.arrivals
  in
  let current = ref (Some 0) in
  while !current <> None do
    let r = Option.get !current in
    let s = states.(r) in
    match Traversal.peek s.cursor with
    | None ->
        s.finished <- true;
        current :=
          Option.map resolve_runnable (next_unfinished r)
    | Some (e, after) ->
        if not (Event.is_collective e.kind) then begin
          Traversal.emit_single rebuild ~rank:r e;
          s.cursor <- after
        end
        else begin
          let slot =
            Option.value ~default:0 (Hashtbl.find_opt s.coll_seq e.comm)
          in
          Hashtbl.replace s.coll_seq e.comm (slot + 1);
          let key = (e.comm, slot) in
          let w =
            match Hashtbl.find_opt waits key with
            | Some w -> w
            | None ->
                let w = { members = members_of e.comm; arrivals = [] } in
                Hashtbl.replace waits key w;
                w
          in
          w.arrivals <- (r, e, after) :: w.arrivals;
          if List.length w.arrivals = Util.Rank_set.cardinal w.members then
            current := Some (finish_collective key)
          else begin
            s.blocked <- Some key;
            current := Some (resolve_runnable (next_missing key))
          end
        end
  done;
  (match next_unfinished 0 with
  | Some r ->
      raise
        (Align_error
           (Printf.sprintf "rank %d never reached MPI_Finalize during alignment" r))
  | None -> ());
  Traversal.rebuild_finish rebuild

let align_if_needed trace =
  if Trace.has_unaligned_collectives trace then (run trace, true)
  else (trace, false)
