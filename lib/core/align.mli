(** Algorithm 1 — aligning collective operations (paper Section 4.3).

    MPI lets different source lines issue what is dynamically one
    collective operation; ScalaTrace then records one partial-participant
    RSD per call site.  This pass walks the trace on behalf of every rank,
    parking each rank at each collective until all other members of the
    communicator arrive, then re-emits a single RSD covering the full
    participant set — the trace-level equivalent of hoisting the collective
    out of rank conditionals.  Point-to-point events pass through
    unchanged; per-rank event order is preserved; the output is
    recompressed.  Complexity O(p·e); use {!Scalatrace.Trace.has_unaligned_collectives}
    (O(r)) to decide whether the pass is needed.

    The traversal is bounded: on damaged (salvaged) traces where a
    collective participant's stream ended before arriving, the pass
    detects the dead wait instead of spinning, reports it as a wait-for
    graph, and — under [`Best_effort] — cuts the output back to the last
    channel-balanced world frontier (see {!Frontier}) so generation can
    still proceed. *)

exception Align_error of string
(** Collective mismatch: members of one communicator reach different
    collective operations at the same logical slot, or their parameters
    disagree on the root.  Under [`Strict] also raised (with the
    formatted wait-for graph) when a collective can never complete. *)

type policy = [ `Strict | `Best_effort ]

type stall = {
  st_edges : Util.Waitgraph.edge list;
      (** one edge per rank parked at a pending collective *)
  st_missing : int list;  (** ranks that can never arrive *)
}

exception Incomplete of stall
(** Raised by {!run_policy} under [`Strict] when a collective can never
    complete — distinct from {!Align_error} so callers can map trace
    truncation and application bugs to different outcomes.  {!run} folds
    it into {!Align_error} for the simple API. *)

type outcome = {
  out : Scalatrace.Trace.t;
  stall : stall option;  (** [Some] when a dead wait was detected *)
  cut_anchors : int option;
      (** [Some k] when the output was truncated to the [k]-th world
          frontier (best-effort mode only) *)
  dropped_events : int;  (** input events not carried into [out] *)
}

val stall_message : stall -> string
(** The formatted wait-for graph, as used in errors and diagnostics. *)

val run_policy : ?policy:policy -> Scalatrace.Trace.t -> outcome
(** Full alignment under a recovery policy.  [`Strict] (default) raises
    {!Align_error} on dead waits; [`Best_effort] never raises on
    truncation — it returns a cut, channel-balanced output instead. *)

val run : Scalatrace.Trace.t -> Scalatrace.Trace.t
(** [run t] = [(run_policy ~policy:`Strict t).out]. *)

(** [align_if_needed t] runs the O(r) pre-check and the pass only when
    required; returns the (possibly unchanged) trace and whether the pass
    ran. *)
val align_if_needed : Scalatrace.Trace.t -> Scalatrace.Trace.t * bool
