(** Table 1 — mapping MPI collectives onto coNCePTuaL collectives.

    coNCePTuaL offers SYNCHRONIZE, REDUCE, and MULTICAST (plus native
    all-to-all exchange); MPI collectives without a direct counterpart are
    substituted by combinations that preserve the fan-in/fan-out shape and
    the data volume, averaging per-rank sizes for the v-variants — exactly
    the paper's Table 1. *)

(** The coNCePTuaL statements a collective maps to. *)
type target =
  | T_sync  (** SYNCHRONIZE *)
  | T_multicast of { root : int; bytes : int }
  | T_reduce of { root : int; bytes : int }
  | T_reduce_all of { bytes : int }  (** REDUCE to all members *)
  | T_alltoall of { bytes : int }
  | T_reduce_multicast of { root : int; reduce_bytes : int; multicast_bytes : int }
  | T_reduce_per_member of { bytes_per_member : int array }
      (** n many-to-one REDUCEs with different roots/sizes (Reduce_scatter) *)
  | T_neighbor of { gather : bool; bytes : int; offsets : int array }
      (** sparse neighborhood collective: [offsets] are sorted nonzero
          relative positions within the participant group (exact when the
          traced stencil survived merging; a same-degree ring otherwise);
          [bytes] is the per-neighbor payload *)
  | T_skip  (** communicator management: not part of the benchmark *)

exception Unmappable of string
(** The event is not a collective, or a wildcard/malformed field remains. *)

(** [map ~p event] — [p] is the participant count; roots in the result are
    world-absolute ranks taken from the event. *)
val map : p:int -> Scalatrace.Event.t -> target

(** Human-readable right-hand column of Table 1 for documentation and the
    bench harness. *)
val describe : Scalatrace.Event.kind -> string

(** The rows of Table 1, as (MPI collective, coNCePTuaL implementation). *)
val table : (string * string) list
