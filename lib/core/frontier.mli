(** Globally consistent frontiers for degraded-mode generation.

    When a salvaged trace cannot be fully aligned (a rank's stream ended
    early), the benchmark must be cut so that no message crosses the cut
    — otherwise replay hangs on a receive whose sender was lost.  The
    frontier rule: truncate to the last world-spanning collective anchor
    and verify the result by loop-weighted channel accounting; probe
    earlier anchors until the accounting closes. *)

(** [balanced t] — true when every point-to-point channel closes: for
    each destination and communicator, loop-weighted receive counts are
    covered by matching sends (tags exact, [-1] and [P_any] treated as
    wildcards, greedily most-specific-first) and no send is left over. *)
val balanced : Scalatrace.Trace.t -> bool

(** [cut ~rebuild ()] — the latest world-anchor truncation of [rebuild]
    that passes {!balanced}, with the number of anchors kept (0 means the
    empty trace). *)
val cut : rebuild:Traversal.rebuild -> unit -> Scalatrace.Trace.t * int
