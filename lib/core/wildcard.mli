(** Algorithm 2 — resolving wildcard receives (paper Section 4.4).

    Replaces every [MPI_ANY_SOURCE] in the trace with a concrete sender,
    chosen by simulating the send/receive matching over a per-rank
    traversal: each rank keeps a list of its unmatched point-to-point
    operations ([L1] in the paper) and every operation arriving at a rank
    is looked up against the pending operations destined for it ([L2]).
    A wildcard receive is pinned to the first sender that matches it; the
    trace structure is otherwise unchanged (peers are rewritten in place,
    to an absolute rank or a per-rank map).

    The traversal blocks at blocking sends/receives, waits, and
    collectives, switching to the peer that can unblock it.  A transfer
    log (the paper's [L3]/unblock events) detects cyclic dependencies: if
    the traversal returns to a node still blocked on the same event with
    no unblocking in between, a *potential deadlock* of the original
    application has been found — a sufficient (not necessary) condition —
    and {!Potential_deadlock} is raised rather than hanging.

    Complexity O(p·e); gate the pass with the O(r)
    {!Scalatrace.Trace.has_wildcards} pre-check. *)

exception Potential_deadlock of string

exception Wildcard_error of string
(** Malformed trace: e.g. a send whose destination cannot be resolved. *)

(** How to choose the concrete sender for each wildcard instance:

    - [`Traversal] — the paper's untimed Algorithm 2 exactly.  Sufficient
      deadlock detection included; however, for deeply pipelined wavefront
      codes the untimed matching can occasionally produce an assignment no
      real execution could realize (one neighbor's future-iteration sends
      consumed early), yielding a generated benchmark that hangs.
    - [`Timed] — replay the trace on the simulator and record which sender
      each wildcard matched: the assignment is an actual execution, hence
      always valid.
    - [`Auto] (default) — run [`Traversal]; validate its output by
      replaying the resolved trace; fall back to [`Timed] when validation
      fails or when the untimed traversal itself wedges on a program that
      a real execution completes (the fallback replay re-raises
      {!Potential_deadlock} when the hazard is genuine).  Use
      [`Traversal] directly for the paper's exact Figure 5 behaviour,
      which reports rather than resolves. *)
type strategy = [ `Traversal | `Timed | `Auto ]

(** [?on_fallback] is invoked (with a human-readable reason) each time the
    [`Auto] strategy abandons the untimed traversal for the timed replay —
    callers surface this as a degradation warning rather than a failure. *)
val run :
  ?strategy:strategy -> ?net:Mpisim.Netmodel.t ->
  ?on_fallback:(string -> unit) -> Scalatrace.Trace.t ->
  Scalatrace.Trace.t

(** Run the pass only when the O(r) pre-check finds wildcard receives;
    returns the trace and whether the pass ran. *)
val resolve_if_needed :
  ?strategy:strategy -> ?net:Mpisim.Netmodel.t ->
  ?on_fallback:(string -> unit) -> Scalatrace.Trace.t ->
  Scalatrace.Trace.t * bool
