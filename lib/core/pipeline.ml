(* Deliberate pipeline defects, for differential-fuzzing self-tests
   (lib/check): each one breaks a distinct fidelity property so the
   oracle and shrinker can be exercised against a known-bad pipeline.
   [None] (the default) is the production pipeline. *)
type defect =
  | D_skip_wildcard  (** leave ANY_SOURCE receives unresolved (no Algorithm 2) *)
  | D_scale_bytes of int  (** multiply every point-to-point payload *)
  | D_drop_tail  (** silently drop the trace's last communication node *)

let defect_to_string = function
  | D_skip_wildcard -> "skip-wildcard"
  | D_scale_bytes k -> Printf.sprintf "scale-bytes:%d" k
  | D_drop_tail -> "drop-tail"

let defect_of_string s =
  match String.split_on_char ':' s with
  | [ "skip-wildcard" ] -> Ok D_skip_wildcard
  | [ "drop-tail" ] -> Ok D_drop_tail
  | [ "scale-bytes" ] -> Ok (D_scale_bytes 2)
  | [ "scale-bytes"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 2 -> Ok (D_scale_bytes k)
      | _ -> Error (Printf.sprintf "bad scale-bytes factor %S (want int >= 2)" k))
  | _ ->
      Error
        (Printf.sprintf
           "unknown defect %S (expected skip-wildcard, scale-bytes[:K], \
            drop-tail)"
           s)

type recovery = [ `Strict | `Salvage | `Best_effort ]

let recovery_to_string = function
  | `Strict -> "strict"
  | `Salvage -> "salvage"
  | `Best_effort -> "best-effort"

let recovery_of_string = function
  | "strict" -> Ok `Strict
  | "salvage" -> Ok `Salvage
  | "best-effort" | "best_effort" -> Ok `Best_effort
  | s ->
      Error
        (Printf.sprintf
           "unknown recovery mode %S (expected strict, salvage, best-effort)" s)

type config = {
  name : string option;
  net : Mpisim.Netmodel.t option;
  fault : Mpisim.Fault.t option;
  max_events : int option;
  max_virtual_time : float option;
  strategy : Wildcard.strategy option;
  compute_floor_usecs : float option;
  obs : Obs.Sink.t;
  defect : defect option;
  recovery : recovery;
  coll_alg : Mpisim.Coll_alg.t;
}

let default =
  {
    name = None;
    net = None;
    fault = None;
    max_events = None;
    max_virtual_time = None;
    strategy = None;
    compute_floor_usecs = None;
    obs = Obs.Sink.nil;
    defect = None;
    recovery = `Strict;
    coll_alg = `Monolithic;
  }

type source =
  | From_trace of Scalatrace.Trace.t
  | From_file of string
  | From_app of { nranks : int; app : Mpisim.Mpi.ctx -> unit }

type report = {
  program : Conceptual.Ast.program;
  text : string;
  aligned : bool;
  resolved : bool;
  input_rsds : int;
  final_rsds : int;
  statements : int;
}

type warning =
  | W_aligned of { input_rsds : int; output_rsds : int }
  | W_wildcard_resolved
  | W_wildcard_fallback of string
  | W_salvaged of Scalatrace.Salvage.report
  | W_truncated_frontier of { anchors : int; dropped_events : int }
  | W_missing_participants of { missing : int list; detail : string }

type gen_error =
  | E_potential_deadlock of string
  | E_align of string
  | E_wildcard of string
  | E_trace_format of string
  | E_io of string
  | E_codegen of string
  | E_unrecoverable_trace of string

let warning_to_string = function
  | W_aligned { input_rsds; output_rsds } ->
      Printf.sprintf
        "collective alignment rewrote the trace (%d -> %d RSDs)" input_rsds
        output_rsds
  | W_wildcard_resolved ->
      "wildcard receives were pinned to concrete senders (Algorithm 2)"
  | W_wildcard_fallback msg -> "wildcard resolution degraded: " ^ msg
  | W_salvaged report ->
      "trace was damaged; loaded what survived — "
      ^ Scalatrace.Salvage.report_to_string report
  | W_truncated_frontier { anchors; dropped_events } ->
      Printf.sprintf
        "benchmark truncated to the last globally consistent frontier (%d \
         world collective%s kept, %d trace events dropped)"
        anchors
        (if anchors = 1 then "" else "s")
        dropped_events
  | W_missing_participants { missing; detail } ->
      Printf.sprintf
        "collective participants missing from the trace (rank%s %s): %s"
        (if List.length missing = 1 then "" else "s")
        (String.concat "," (List.map string_of_int missing))
        detail

let error_to_string = function
  | E_potential_deadlock msg -> "potential deadlock: " ^ msg
  | E_align msg -> "collective alignment failed: " ^ msg
  | E_wildcard msg -> "wildcard resolution failed: " ^ msg
  | E_trace_format msg -> "malformed trace: " ^ msg
  | E_io msg -> "I/O error: " ^ msg
  | E_codegen msg -> "code generation failed: " ^ msg
  | E_unrecoverable_trace msg -> "unrecoverable trace: " ^ msg

(* Stable machine-readable tags.  These are a wire contract (serve-mode
   responses, metrics labels): never rename one, only add. *)
let warning_tag = function
  | W_aligned _ -> "aligned"
  | W_wildcard_resolved -> "wildcard_resolved"
  | W_wildcard_fallback _ -> "wildcard_fallback"
  | W_salvaged _ -> "salvaged"
  | W_truncated_frontier _ -> "truncated_frontier"
  | W_missing_participants _ -> "missing_participants"

let error_tag = function
  | E_potential_deadlock _ -> "potential_deadlock"
  | E_align _ -> "align"
  | E_wildcard _ -> "wildcard"
  | E_trace_format _ -> "trace_format"
  | E_io _ -> "io"
  | E_codegen _ -> "codegen"
  | E_unrecoverable_trace _ -> "unrecoverable_trace"

type artifact = {
  report : report;
  resolved_trace : Scalatrace.Trace.t;
  trace_outcome : Mpisim.Engine.outcome option;
  metrics : Obs.Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Instrumentation plumbing                                            *)

(* Stage spans are timestamped by a per-run tick clock (one microsecond
   per emission, starting at 0) rather than the wall clock, so exported
   traces are a pure function of the run and stay byte-identical across
   same-seed repetitions. *)
type clock = { mutable ticks : float }

let fresh_clock () = { ticks = 0. }

let tick c =
  let t = c.ticks in
  c.ticks <- t +. 1.;
  t

(* Open a pipeline-stage span around [f], closing it on any exit. *)
let with_span (obs : Obs.Sink.t) clock ?(args = []) name f =
  if not obs.enabled then f ()
  else begin
    Obs.Sink.span_begin obs ~pid:Obs.Sink.pipeline_pid ~tid:0 ~cat:"stage"
      ~args ~ts:(tick clock) name;
    Fun.protect
      ~finally:(fun () ->
        Obs.Sink.span_end obs ~pid:Obs.Sink.pipeline_pid ~tid:0
          ~ts:(tick clock) name)
      f
  end

(* Count completed collectives per operation via the engine's
   [on_collective_complete] observation point; composed with the mpiP
   profiler hook below. *)
let collective_counter metrics =
  {
    Mpisim.Hooks.nil with
    on_collective_complete =
      (fun ~time:_ ~comm:_ ~name ~participants:_ ->
        Obs.Metrics.inc metrics ~labels:[ ("op", name) ] "sim.collectives");
  }

let record_outcome metrics prefix (o : Mpisim.Engine.outcome) =
  let c name v = Obs.Metrics.inc metrics ~by:v (prefix ^ "." ^ name) in
  c "events" o.events;
  c "messages" o.messages;
  c "p2p_bytes" o.p2p_bytes;
  c "unexpected" o.unexpected;
  c "flow_stalls" o.flow_stalls;
  c "retries" o.retries;
  c "timeouts" o.timeouts;
  c "dropped" o.dropped;
  Obs.Metrics.set metrics (prefix ^ ".elapsed_s") o.elapsed

(* ------------------------------------------------------------------ *)
(* Defect injection (differential-fuzzing self-tests)                  *)

let scale_p2p_bytes k trace =
  let nodes =
    Scalatrace.Tnode.map_leaves
      (fun (e : Scalatrace.Event.t) ->
        if Scalatrace.Event.is_p2p e.kind && e.bytes > 0 then
          (* [hcache] covers [bytes]; reset it on the altered copy. *)
          { (Scalatrace.Event.copy e) with bytes = e.bytes * k; hcache = 0 }
        else e)
      (Scalatrace.Trace.nodes trace)
  in
  Scalatrace.Trace.with_nodes trace nodes

(* Drop the last communication node, keeping any trailing MPI_Finalize
   (which generates no code, so dropping it would be a no-op defect). *)
let drop_tail_node trace =
  let is_finalize = function
    | Scalatrace.Tnode.Leaf e -> e.Scalatrace.Event.kind = Scalatrace.Event.E_finalize
    | Scalatrace.Tnode.Loop _ -> false
  in
  let rec drop_first_non_finalize = function
    | [] -> []
    | x :: tl when is_finalize x -> x :: drop_first_non_finalize tl
    | _ :: tl -> tl
  in
  let nodes =
    List.rev (drop_first_non_finalize (List.rev (Scalatrace.Trace.nodes trace)))
  in
  Scalatrace.Trace.with_nodes trace nodes

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)

(* Internal escape from [acquire] when even the salvage loader finds
   nothing usable; surfaced as [E_unrecoverable_trace]. *)
exception Unrecoverable of string

(* Load a trace file under the configured recovery mode: [`Strict] takes
   the fast strict parser (any damage is a format error); the tolerant
   modes fall back to the salvage loader and report what was recovered. *)
let load_with_recovery cfg ~warn metrics path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  match cfg.recovery with
  | `Strict -> Scalatrace.Trace_io.of_string ~path text
  | `Salvage | `Best_effort -> (
      match Scalatrace.Trace_io.of_string ~path text with
      | trace -> trace
      | exception Scalatrace.Trace_io.Format_error _ -> (
          match Scalatrace.Salvage.of_string ~path text with
          | Error msg -> raise (Unrecoverable (path ^ ": " ^ msg))
          | Ok (trace, report) ->
              Obs.Metrics.inc metrics ~by:report.frames_dropped
                "salvage.frames_dropped";
              Obs.Metrics.inc metrics
                ~by:(List.length report.ranks_missing)
                "salvage.ranks_missing";
              (match Scalatrace.Salvage.events_lost report with
              | Some n -> Obs.Metrics.inc metrics ~by:n "salvage.events_lost"
              | None -> ());
              if Scalatrace.Salvage.is_degraded report then
                warn (W_salvaged report);
              trace))

let acquire cfg ~warn clock metrics source =
  with_span cfg.obs clock "trace" (fun () ->
      match source with
      | From_trace trace -> (trace, None)
      | From_file path -> (load_with_recovery cfg ~warn metrics path, None)
      | From_app { nranks; app } ->
          let profile = Mpip.create () in
          let hooks =
            Mpisim.Hooks.compose (Mpip.hook profile)
              (collective_counter metrics)
          in
          let trace, outcome =
            Scalatrace.Tracer.trace_run ?net:cfg.net ?fault:cfg.fault
              ?max_events:cfg.max_events ?max_virtual_time:cfg.max_virtual_time
              ~coll_alg:cfg.coll_alg ~obs:cfg.obs ~extra_hooks:[ hooks ] ~nranks
              app
          in
          Mpip.record_metrics profile metrics;
          record_outcome metrics "sim" outcome;
          (trace, Some outcome))

let run cfg source =
  let clock = fresh_clock () in
  let metrics = Obs.Metrics.create () in
  let warnings = ref [] in
  let warn w =
    warnings := w :: !warnings;
    Obs.Metrics.inc metrics
      ~labels:[ ("kind", warning_tag w) ]
      "pipeline.warnings"
  in
  let name =
    match source with
    | From_file path -> Some (Option.value ~default:path cfg.name)
    | From_trace _ | From_app _ -> cfg.name
  in
  match acquire cfg ~warn clock metrics source with
  | exception Scalatrace.Trace_io.Format_error msg -> Error (E_trace_format msg)
  | exception Sys_error msg -> Error (E_io msg)
  | exception Unrecoverable msg -> Error (E_unrecoverable_trace msg)
  | trace, trace_outcome -> (
      try
        let input_rsds = Scalatrace.Trace.rsd_count trace in
        Obs.Metrics.set metrics "trace.input_rsds" (float_of_int input_rsds);
        let trace, aligned =
          with_span cfg.obs clock "align" (fun () ->
              let needs_align =
                Scalatrace.Trace.has_unaligned_collectives trace
              in
              (* Under best-effort recovery, a trace whose channels do not
                 close (truncated streams) is cut back to the last
                 globally consistent frontier even when no collective
                 needs aligning. *)
              let needs_cut =
                cfg.recovery = `Best_effort
                && (not needs_align)
                && not (Frontier.balanced trace)
              in
              if not (needs_align || needs_cut) then (trace, false)
              else
                let policy =
                  match cfg.recovery with
                  | `Best_effort -> `Best_effort
                  | `Strict | `Salvage -> `Strict
                in
                let o = Align.run_policy ~policy trace in
                (match o.Align.stall with
                | Some st ->
                    warn
                      (W_missing_participants
                         {
                           missing = st.Align.st_missing;
                           detail = Align.stall_message st;
                         })
                | None -> ());
                (match o.Align.cut_anchors with
                | Some anchors ->
                    Obs.Metrics.inc metrics ~by:o.Align.dropped_events
                      "salvage.events_truncated";
                    warn
                      (W_truncated_frontier
                         { anchors; dropped_events = o.Align.dropped_events })
                | None -> ());
                (o.Align.out, needs_align))
        in
        if aligned then
          warn
            (W_aligned
               { input_rsds; output_rsds = Scalatrace.Trace.rsd_count trace });
        let trace, resolved =
          with_span cfg.obs clock "wildcard" (fun () ->
              match cfg.defect with
              | Some D_skip_wildcard -> (trace, false)
              | _ ->
                  Wildcard.resolve_if_needed ?strategy:cfg.strategy
                    ~on_fallback:(fun msg -> warn (W_wildcard_fallback msg))
                    trace)
        in
        if resolved then warn W_wildcard_resolved;
        let trace =
          match cfg.defect with
          | Some (D_scale_bytes k) -> scale_p2p_bytes k trace
          | Some D_drop_tail -> drop_tail_node trace
          | Some D_skip_wildcard | None -> trace
        in
        let report =
          with_span cfg.obs clock "codegen" (fun () ->
              let program =
                Codegen.program ?name
                  ?compute_floor_usecs:cfg.compute_floor_usecs trace
              in
              let text = Conceptual.Pretty.program program in
              {
                program;
                text;
                aligned;
                resolved;
                input_rsds;
                final_rsds = Scalatrace.Trace.rsd_count trace;
                statements = Conceptual.Ast.size program;
              })
        in
        Obs.Metrics.set metrics "trace.final_rsds"
          (float_of_int report.final_rsds);
        Obs.Metrics.set metrics "program.statements"
          (float_of_int report.statements);
        Ok
          ( { report; resolved_trace = trace; trace_outcome; metrics },
            List.rev !warnings )
      with
      | Wildcard.Potential_deadlock msg -> Error (E_potential_deadlock msg)
      | Align.Incomplete st -> Error (E_unrecoverable_trace (Align.stall_message st))
      | Align.Align_error msg -> Error (E_align msg)
      | Wildcard.Wildcard_error msg -> Error (E_wildcard msg)
      | Codegen.Codegen_error msg -> Error (E_codegen msg)
      | Sys_error msg -> Error (E_io msg))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

type fidelity = {
  f_original : Mpisim.Engine.outcome;
  f_generated : Mpisim.Engine.outcome;
  f_error_pct : float;
  f_mpip_diff : string list;
}

let validate cfg ~nranks app (artifact : artifact) =
  let clock = fresh_clock () in
  let metrics = artifact.metrics in
  let generated =
    with_span cfg.obs clock "replay" (fun () ->
        let profile = Mpip.create () in
        let hooks =
          Mpisim.Hooks.compose (Mpip.hook profile) (collective_counter metrics)
        in
        let r =
          Conceptual.Lower.run ?net:cfg.net ?fault:cfg.fault
            ?max_events:cfg.max_events ?max_virtual_time:cfg.max_virtual_time
            ~coll_alg:cfg.coll_alg ~hooks:[ hooks ] ~nranks
            artifact.report.program
        in
        (r.Conceptual.Lower.outcome, profile))
  in
  with_span cfg.obs clock "compare" (fun () ->
      let gen_outcome, gen_profile = generated in
      let orig_profile = Mpip.create () in
      let orig_outcome =
        Mpisim.Mpi.run ?net:cfg.net ?fault:cfg.fault ?max_events:cfg.max_events
          ?max_virtual_time:cfg.max_virtual_time ~coll_alg:cfg.coll_alg
          ~hooks:[ Mpip.hook orig_profile ]
          ~nranks app
      in
      record_outcome metrics "replay" gen_outcome;
      let error_pct =
        Util.Stats.pct_error ~reference:orig_outcome.Mpisim.Engine.elapsed
          ~measured:gen_outcome.Mpisim.Engine.elapsed
      in
      let mpip_diff = Mpip.diff orig_profile gen_profile in
      Obs.Metrics.set metrics "fidelity.error_pct" error_pct;
      Obs.Metrics.inc metrics ~by:(List.length mpip_diff)
        "fidelity.mpip_discrepancies";
      {
        f_original = orig_outcome;
        f_generated = gen_outcome;
        f_error_pct = error_pct;
        f_mpip_diff = mpip_diff;
      })
