(** End-to-end benchmark generation (paper Figure 1, right half).

    trace → \[collective alignment if needed\] → \[wildcard resolution if
    needed\] → coNCePTuaL code generation.  Both trace-rewriting passes are
    gated by their O(r) pre-checks.

    The pipeline lives in {!Pipeline}: one {!Pipeline.config} record, one
    {!Pipeline.run} entry point, observability built in.  The historical
    entry points below ({!generate}, {!generate_text}, {!from_app},
    {!generate_checked}, {!generate_checked_file}) remain as thin
    deprecated wrappers; new code should build a [Pipeline.config] and
    call [Pipeline.run]. *)

(** Re-exported pipeline stages. *)

module Traversal = Traversal
module Align = Align
module Wildcard = Wildcard
module Collective_map = Collective_map
module Codegen = Codegen
module Cgen = Cgen
module Extrap = Extrap

(** The unified entry point. *)
module Pipeline = Pipeline

(** The result/diagnostic types are {!Pipeline}'s, re-exported with
    equality so existing constructors keep working. *)

type report = Pipeline.report = {
  program : Conceptual.Ast.program;
  text : string;  (** pretty-printed .ncptl source *)
  aligned : bool;  (** Algorithm 1 ran *)
  resolved : bool;  (** Algorithm 2 ran *)
  input_rsds : int;
  final_rsds : int;  (** RSDs after the rewriting passes *)
  statements : int;  (** statements in the generated program *)
}

type warning = Pipeline.warning =
  | W_aligned of { input_rsds : int; output_rsds : int }
      (** Algorithm 1 merged partial-participant collectives *)
  | W_wildcard_resolved  (** Algorithm 2 pinned wildcard receives *)
  | W_wildcard_fallback of string
      (** the [`Auto] strategy abandoned the untimed traversal *)
  | W_salvaged of Scalatrace.Salvage.report
      (** the trace file was damaged; generation continued from what the
          salvage loader recovered *)
  | W_truncated_frontier of { anchors : int; dropped_events : int }
      (** best-effort recovery cut the benchmark at the last globally
          consistent collective frontier *)
  | W_missing_participants of { missing : int list; detail : string }
      (** a collective could never complete ([detail] is the wait-for
          graph) *)

type gen_error = Pipeline.gen_error =
  | E_potential_deadlock of string  (** paper Figure 5: input can hang *)
  | E_align of string  (** collective misuse in the trace *)
  | E_wildcard of string  (** malformed point-to-point structure *)
  | E_trace_format of string  (** unparseable trace file *)
  | E_io of string  (** file-system failure *)
  | E_codegen of string  (** code generation rejected the trace *)
  | E_unrecoverable_trace of string
      (** the damaged trace kept nothing usable, or recovery policy
          forbids generating from what remains *)

val warning_to_string : warning -> string
val error_to_string : gen_error -> string

(** {1 Deprecated entry points}

    Thin wrappers over {!Pipeline.run}; each is one [config] away from the
    unified API.

    {b Removal schedule:} these five wrappers are frozen and will be
    deleted two releases after the collective-algorithm redesign that
    froze them.  They gain no new {!Pipeline.config} knobs — in
    particular no [coll_alg] selector; they always run with the
    [`Monolithic] default — and until removal the differential test in
    [test/test_obs.ml] holds each one byte-identical to [Pipeline.run]
    under an all-defaults config. *)

(** Frozen wrapper, see the removal schedule above.
    @raise Wildcard.Potential_deadlock when the input application can
    deadlock (paper Figure 5) — reported rather than generating a hanging
    benchmark.
    @raise Align.Align_error on collective misuse in the trace. *)
val generate :
  ?name:string -> ?compute_floor_usecs:float -> Scalatrace.Trace.t -> report
[@@deprecated "use Pipeline.run { Pipeline.default with ... } (From_trace t)"]

(** [generate_text] — just the .ncptl source.  Frozen wrapper, see the
    removal schedule above. *)
val generate_text :
  ?name:string -> ?compute_floor_usecs:float -> Scalatrace.Trace.t -> string
[@@deprecated "use Pipeline.run and read report.text from the artifact"]

(** Trace an application under the given network model and generate its
    benchmark in one call.  Returns the report plus the original run's
    outcome (for timing-fidelity comparisons).  Frozen wrapper, see the
    removal schedule above. *)
val from_app :
  ?name:string ->
  ?net:Mpisim.Netmodel.t ->
  ?fault:Mpisim.Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?compute_floor_usecs:float ->
  nranks:int ->
  (Mpisim.Mpi.ctx -> unit) ->
  report * Mpisim.Engine.outcome
[@@deprecated "use Pipeline.run { Pipeline.default with ... } (From_app ...)"]

(** Frozen wrapper, see the removal schedule above. *)
val generate_checked :
  ?name:string ->
  ?compute_floor_usecs:float ->
  ?strategy:Wildcard.strategy ->
  Scalatrace.Trace.t ->
  (report * warning list, gen_error) result
[@@deprecated "use Pipeline.run { Pipeline.default with ... } (From_trace t)"]

(** Load a trace file and generate from it; file-level failures map to
    [E_trace_format] / [E_io]. [?name] defaults to [path].  Frozen
    wrapper, see the removal schedule above. *)
val generate_checked_file :
  ?name:string ->
  ?compute_floor_usecs:float ->
  ?strategy:Wildcard.strategy ->
  path:string ->
  unit ->
  (report * warning list, gen_error) result
[@@deprecated "use Pipeline.run { Pipeline.default with ... } (From_file path)"]

(** {1 Fidelity under noise}

    The paper validates a generated benchmark with one clean run per
    platform (Fig. 6/7).  [validate_under_noise] instead samples a
    distribution: each trial perturbs the network (latency scaled by a
    factor in [1, 2), bandwidth by a factor in [0.5, 1)) and applies a
    seeded fault plan, then runs the original application and the
    generated benchmark under identical perturbed conditions and records
    the signed timing error between them.  (For a single clean
    timing/semantics check with span instrumentation, see
    {!Pipeline.validate}.) *)

type noise_sample = {
  ns_seed : int;  (** fault seed used for this trial *)
  ns_latency_factor : float;
  ns_bandwidth_factor : float;
  ns_original : float;  (** original application elapsed, seconds *)
  ns_generated : float;  (** generated benchmark elapsed, seconds *)
  ns_error_pct : float;  (** signed percentage error, generated vs original *)
}

type noise_report = {
  nr_baseline_error_pct : float;  (** error of the clean, unperturbed run *)
  nr_samples : noise_sample list;
  nr_mean_abs_error_pct : float;
  nr_max_abs_error_pct : float;
  nr_stddev_error_pct : float;  (** stddev of the signed errors *)
}

(** [validate_under_noise ~nranks app report] — [report] must have been
    generated from [app] at the same rank count.  All randomness derives
    from [base_seed]; the result is bit-reproducible.
    @param trials number of perturbed runs (default 5).
    @param fault template plan applied to every trial (its [seed] is
      overridden per trial); default: mild latency jitter plus 5% OS
      noise.
    @raise Invalid_argument when [trials < 1]. *)
val validate_under_noise :
  ?net:Mpisim.Netmodel.t ->
  ?trials:int ->
  ?base_seed:int ->
  ?fault:Mpisim.Fault.t ->
  nranks:int ->
  (Mpisim.Mpi.ctx -> unit) ->
  report ->
  noise_report
