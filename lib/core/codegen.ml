open Scalatrace
module A = Conceptual.Ast

type 's generator = {
  gen_rsd : Event.t -> 's list;
  gen_loop : count:int -> 's list -> 's list;
}

exception Codegen_error of string

let walk trace g =
  let rec gen_nodes nodes = List.concat_map gen_node nodes
  and gen_node = function
    | Tnode.Leaf e -> g.gen_rsd e
    | Tnode.Loop { count; body; _ } -> g.gen_loop ~count (gen_nodes body)
  in
  gen_nodes (Trace.nodes trace)

(* ------------------------------------------------------------------ *)
(* coNCePTuaL generator                                                 *)

(* Group a per-rank peer map into few (task set, peer expression) pairs:
   prefer grouping by relative offset (stencils), fall back to grouping by
   absolute peer, pick whichever needs fewer statements. *)
let peer_groups ~nranks (e : Event.t) =
  let ranks = e.ranks in
  match e.peer with
  | Event.P_abs a -> [ (ranks, `Abs a) ]
  | Event.P_rel d -> [ (ranks, `Rel d) ]
  | Event.P_any ->
      raise
        (Codegen_error
           "unresolved MPI_ANY_SOURCE in trace; run wildcard resolution first")
  | Event.P_none ->
      raise (Codegen_error "point-to-point event without a peer")
  | Event.P_map m ->
      (* only participants matter; stale observations are dropped *)
      let m = List.filter (fun (r, _) -> Util.Rank_set.mem r ranks) m in
      let group_by f tag =
        let keys = List.sort_uniq compare (List.map f m) in
        List.map
          (fun k ->
            let rs =
              List.filter_map (fun (r, p) -> if f (r, p) = k then Some r else None) m
            in
            (Util.Rank_set.of_list rs, tag k))
          keys
      in
      let by_offset =
        group_by (fun (r, p) -> (p - r + nranks) mod nranks) (fun d -> `Rel d)
      in
      let by_abs = group_by (fun (_, p) -> p) (fun a -> `Abs a) in
      if List.length by_offset <= List.length by_abs then by_offset else by_abs

(* Peer expression for a task subset.  For a singleton subset everything is
   a constant; otherwise relative peers use the set's binder variable with
   modular arithmetic, printed as t+d or t-d', whichever is smaller. *)
let peer_expr ~nranks tasks_subset form =
  match (form, tasks_subset) with
  | `Abs a, _ -> A.Int a
  | `Rel d, A.Single (A.Int r) -> A.Int ((r + d) mod nranks)
  | `Rel d, ts -> (
      let var =
        match A.binder ts with
        | Some v -> v
        | None -> raise (Codegen_error "relative peer over unbound task set")
      in
      let t = A.Var var in
      let inner =
        if d <= nranks / 2 then A.Bin (A.Add, t, A.Int d)
        else A.Bin (A.Sub, t, A.Int (nranks - d))
      in
      A.Bin (A.Mod, inner, A.Int nranks))

let conceptual ?(compute_floor_usecs = 0.05) trace =
  let nranks = Trace.nranks trace in
  let tasks_of ranks = A.tasks_of_rank_set ~nranks ranks in
  let members_of (e : Event.t) =
    match e.parts with
    | Some ps ->
        (* a declared participant set overrides communicator membership *)
        Util.Rank_set.of_list (Array.to_list ps)
    | None -> (
        match List.assoc_opt e.comm (Trace.comms trace) with
        | Some m -> m
        | None -> e.ranks)
  in
  let compute_stmts (e : Event.t) =
    let usecs = Util.Histogram.mean e.dtime *. 1e6 in
    if usecs >= compute_floor_usecs then
      [
        A.Compute
          {
            tasks = tasks_of e.ranks;
            usecs = A.Float (Float.round (usecs *. 1000.) /. 1000.);
          };
      ]
    else []
  in
  let p2p_stmts (e : Event.t) =
    let bytes = A.Int e.bytes in
    peer_groups ~nranks e
    |> List.map (fun (subset, form) ->
           let tasks = tasks_of subset in
           let peer = peer_expr ~nranks tasks form in
           match e.kind with
           | Event.E_send ->
               A.Send
                 { src = tasks; async = false; bytes; dst = peer; tag = e.tag;
                   implicit_recv = false }
           | Event.E_isend ->
               A.Send
                 { src = tasks; async = true; bytes; dst = peer; tag = e.tag;
                   implicit_recv = false }
           | Event.E_recv ->
               A.Receive { dst = tasks; async = false; bytes; src = peer; tag = e.tag }
           | Event.E_irecv ->
               A.Receive { dst = tasks; async = true; bytes; src = peer; tag = e.tag }
           | _ -> assert false)
  in
  let coll_stmts (e : Event.t) =
    let members = members_of e in
    let p = Util.Rank_set.cardinal members in
    let m_list = Util.Rank_set.to_list members in
    let first_member =
      match m_list with
      | m :: _ -> m
      | [] -> raise (Codegen_error "collective with empty membership")
    in
    let group = tasks_of members in
    let resolve_root r = if r < 0 then first_member else r in
    match Collective_map.map ~p e with
    | Collective_map.T_sync -> [ A.Sync group ]
    | Collective_map.T_multicast { root; bytes } ->
        [
          A.Multicast
            { src = A.Single (A.Int (resolve_root root)); bytes = A.Int bytes; dst = group };
        ]
    | Collective_map.T_reduce { root; bytes } ->
        [
          A.Reduce
            { src = group; bytes = A.Int bytes; dst = A.Single (A.Int (resolve_root root)) };
        ]
    | Collective_map.T_reduce_all { bytes } ->
        [ A.Reduce { src = group; bytes = A.Int bytes; dst = group } ]
    | Collective_map.T_alltoall { bytes } ->
        [ A.Alltoall { tasks = group; bytes = A.Int bytes } ]
    | Collective_map.T_reduce_multicast { root; reduce_bytes; multicast_bytes } ->
        let root = resolve_root root in
        [
          A.Reduce
            { src = group; bytes = A.Int reduce_bytes; dst = A.Single (A.Int root) };
          A.Multicast
            { src = A.Single (A.Int root); bytes = A.Int multicast_bytes; dst = group };
        ]
    | Collective_map.T_reduce_per_member { bytes_per_member } ->
        List.mapi
          (fun i m ->
            let bytes =
              if i < Array.length bytes_per_member then bytes_per_member.(i)
              else 0
            in
            A.Reduce { src = group; bytes = A.Int bytes; dst = A.Single (A.Int m) })
          m_list
    | Collective_map.T_neighbor { gather; bytes; offsets } ->
        [
          A.Neighbor
            { tasks = group; bytes = A.Int bytes;
              offsets = Array.to_list offsets; gather };
        ]
    | Collective_map.T_skip -> []
  in
  {
    gen_rsd =
      (fun e ->
        let comm_part =
          match e.kind with
          | Event.E_send | Event.E_isend | Event.E_recv | Event.E_irecv ->
              p2p_stmts e
          | Event.E_wait | Event.E_waitall _ -> [ A.Await (tasks_of e.ranks) ]
          | _ -> coll_stmts e
        in
        (* The computation gap precedes the event even when the event
           itself generates no code (e.g. MPI_Finalize). *)
        compute_stmts e @ comm_part);
    gen_loop = (fun ~count body -> [ A.For { count = A.Int count; body } ]);
  }

let program ?name ?compute_floor_usecs trace =
  let g = conceptual ?compute_floor_usecs trace in
  let body = walk trace g in
  let nranks = Trace.nranks trace in
  let comments =
    [
      Printf.sprintf "benchmark generated from %s"
        (Option.value ~default:"an application trace" name);
      Printf.sprintf "tasks: %d; source trace: %d RSDs covering %d MPI events"
        nranks (Trace.rsd_count trace) (Trace.event_count trace);
      "all task numbers are absolute ranks in MPI_COMM_WORLD";
    ]
  in
  {
    A.comments;
    body =
      (A.Reset (A.All None) :: body)
      @ [ A.Log { tasks = A.Single (A.Int 0); agg = None; label = "Total elapsed (us)" } ];
  }
