open Scalatrace

exception Extrap_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Extrap_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Scaling-model fitting                                                *)

(* Candidate features, most specific constant first.  A model is
   v(p) = a * f(p) + b; two samples determine (a, b), the rest verify. *)
let features =
  [
    ("p", fun p -> float_of_int p);
    ("sqrt(p)", fun p -> sqrt (float_of_int p));
    ("log2(p)", fun p -> log (float_of_int p) /. log 2.);
    ("1/p", fun p -> 1. /. float_of_int p);
    ("1/sqrt(p)", fun p -> 1. /. sqrt (float_of_int p));
    ("1/p^2", fun p -> 1. /. float_of_int (p * p));
    ("p^2", fun p -> float_of_int (p * p));
  ]

let fit samples =
  match samples with
  | [] | [ _ ] -> None
  | (p1, v1) :: rest ->
      let tolerance v = 1e-6 +. (1e-9 *. Float.abs v) in
      if List.for_all (fun (_, v) -> Float.abs (v -. v1) <= tolerance v1) rest then
        Some ((fun _ -> v1), Printf.sprintf "%g" v1)
      else
        let p2, v2 = List.hd rest in
        let try_feature (fname, f) =
          let f1 = f p1 and f2 = f p2 in
          if Float.abs (f2 -. f1) < 1e-12 then None
          else
            let a = (v2 -. v1) /. (f2 -. f1) in
            let b = v1 -. (a *. f1) in
            let predict p = (a *. f p) +. b in
            if
              List.for_all
                (fun (p, v) -> Float.abs (v -. predict p) <= tolerance v)
                samples
            then
              let form =
                if Float.abs b <= 1e-9 then Printf.sprintf "%g*%s" a fname
                else Printf.sprintf "%g*%s%+g" a fname b
              in
              Some (predict, form)
            else None
        in
        List.find_map try_feature features

let fit_int ~what samples ~target =
  let samples_f = List.map (fun (p, v) -> (p, float_of_int v)) samples in
  match fit samples_f with
  | Some (predict, form) ->
      let v = Float.round (predict target) in
      if Float.is_finite v && v >= 0. then (int_of_float v, form)
      else fail "%s extrapolates to an invalid value (%g) at p=%d" what v target
  | None ->
      fail "%s values %s fit no scaling model" what
        (String.concat ", "
           (List.map (fun (p, v) -> Printf.sprintf "%d@p%d" v p) samples))

(* Computation times are statistical; accept the best model within 25%. *)
let fit_float_loose samples ~target =
  match samples with
  | [] -> 0.
  | (_, v1) :: _ -> (
      match fit samples with
      | Some (predict, _) -> Float.max 0. (predict target)
      | None ->
          (* fall back to the best of the candidates by worst-case error *)
          let best = ref None in
          let consider predict =
            let err =
              List.fold_left
                (fun acc (p, v) ->
                  let d =
                    Float.abs (v -. predict p) /. Float.max 1e-12 (Float.abs v)
                  in
                  Float.max acc d)
                0. samples
            in
            match !best with
            | Some (e, _) when e <= err -> ()
            | _ -> best := Some (err, predict)
          in
          consider (fun _ -> v1);
          List.iter
            (fun (_, f) ->
              match samples with
              | (p1, w1) :: (p2, w2) :: _ when Float.abs (f p2 -. f p1) > 1e-12 ->
                  let a = (w2 -. w1) /. (f p2 -. f p1) in
                  let b = w1 -. (a *. f p1) in
                  consider (fun p -> (a *. f p) +. b)
              | _ -> ())
            features;
          (match !best with
          | Some (err, predict) when err <= 0.25 -> Float.max 0. (predict target)
          | _ ->
              (* no stable model: keep the largest-p observation *)
              Float.max 0. (snd (List.nth samples (List.length samples - 1)))))

(* ------------------------------------------------------------------ *)
(* Rank-set extrapolation: per-interval bounds and strides are fitted.  *)

let extrap_rank_set ~what samples ~target =
  (* samples : (p, Rank_set.t) list *)
  let interval_lists = List.map (fun (p, s) -> (p, Util.Rank_set.intervals s)) samples in
  let n_intervals =
    match interval_lists with (_, l) :: _ -> List.length l | [] -> 0
  in
  List.iter
    (fun (p, l) ->
      if List.length l <> n_intervals then
        fail "%s: participant sets have different interval structure at p=%d" what p)
    interval_lists;
  let nth_components i =
    List.map
      (fun (p, l) ->
        let f, t, s = List.nth l i in
        (p, f, t, s))
      interval_lists
  in
  let intervals =
    List.init n_intervals (fun i ->
        let comps = nth_components i in
        let firsts = List.map (fun (p, f, _, _) -> (p, f)) comps in
        let lasts = List.map (fun (p, _, t, _) -> (p, t)) comps in
        let strides = List.map (fun (p, _, _, s) -> (p, s)) comps in
        let first, _ = fit_int ~what:(what ^ " interval start") firsts ~target in
        let last, _ = fit_int ~what:(what ^ " interval end") lasts ~target in
        let stride, _ = fit_int ~what:(what ^ " interval stride") strides ~target in
        if stride < 1 || last < first then
          fail "%s: extrapolated interval [%d..%d:%d] is malformed" what first last
            stride;
        Util.Rank_set.range ~stride first last)
  in
  List.fold_left Util.Rank_set.union Util.Rank_set.empty intervals

(* ------------------------------------------------------------------ *)
(* Peer extrapolation                                                   *)

let extrap_peer ~what samples ~target =
  (* all inputs must agree on the peer *form* *)
  let forms =
    List.map
      (fun (p, peer) ->
        match (peer : Event.peer) with
        | Event.P_none -> `None
        | Event.P_any -> `Any
        | Event.P_abs a -> `Abs (p, a)
        | Event.P_rel d -> `Rel (p, d)
        | Event.P_map _ -> `Map)
      samples
  in
  match forms with
  | `None :: rest when List.for_all (( = ) `None) rest -> Event.P_none
  | `Any :: rest when List.for_all (( = ) `Any) rest -> Event.P_any
  | `Abs _ :: _ ->
      let vals =
        List.map
          (function `Abs (p, a) -> (p, a) | _ -> fail "%s: mixed peer forms" what)
          forms
      in
      let a, _ = fit_int ~what:(what ^ " peer") vals ~target in
      Event.P_abs a
  | `Rel _ :: _ ->
      (* offsets are modular: fit both the raw offset and its negative
         complement, preferring whichever is rank-count invariant *)
      let vals =
        List.map
          (function `Rel (p, d) -> (p, d) | _ -> fail "%s: mixed peer forms" what)
          forms
      in
      let neg = List.map (fun (p, d) -> (p, d - p)) vals in
      let candidates = [ vals; neg ] in
      let fitted =
        List.find_map
          (fun s ->
            match fit (List.map (fun (p, v) -> (p, float_of_int v)) s) with
            | Some (predict, _) ->
                Some (int_of_float (Float.round (predict target)))
            | None -> None)
          candidates
      in
      (match fitted with
      | Some d -> Event.P_rel (((d mod target) + target) mod target)
      | None -> fail "%s: relative peer offsets fit no model" what)
  | `Map :: _ -> fail "%s: explicit per-rank peer maps are not extrapolable" what
  | [] -> fail "%s: no peer samples" what
  | (`None | `Any) :: _ -> fail "%s: mixed peer forms" what

(* ------------------------------------------------------------------ *)
(* Structural alignment                                                 *)

let kind_skeleton (k : Event.kind) =
  (* E_waitall's width is a fitted quantity, not part of the skeleton *)
  match k with Event.E_waitall _ -> Event.E_waitall 0 | k -> k

let extrap_event ~target (samples : (int * Event.t) list) =
  let _, e0 = List.hd samples in
  let what = Event.kind_name e0.Event.kind in
  List.iter
    (fun (p, (e : Event.t)) ->
      if not (Util.Callsite.equal e.site e0.Event.site) then
        fail "call sites diverge at p=%d near %s" p what;
      if kind_skeleton e.kind <> kind_skeleton e0.Event.kind then
        fail "operation kinds diverge at p=%d near %s" p what;
      if e.tag <> e0.Event.tag then fail "tags diverge at p=%d near %s" p what;
      if e.comm <> e0.Event.comm then
        fail "communicators diverge at p=%d near %s" p what)
    samples;
  let kind =
    match e0.Event.kind with
    | Event.E_waitall _ ->
        let widths =
          List.map
            (fun (p, (e : Event.t)) ->
              match e.Event.kind with
              | Event.E_waitall k -> (p, k)
              | _ -> assert false)
            samples
        in
        let k, _ = fit_int ~what:"waitall width" widths ~target in
        Event.E_waitall k
    | k -> k
  in
  let bytes, _ =
    fit_int ~what:(what ^ " size")
      (List.map (fun (p, (e : Event.t)) -> (p, e.Event.bytes)) samples)
      ~target
  in
  let ranks =
    extrap_rank_set ~what:(what ^ " participants")
      (List.map (fun (p, (e : Event.t)) -> (p, e.Event.ranks)) samples)
      ~target
  in
  let peer =
    extrap_peer ~what
      (List.map (fun (p, (e : Event.t)) -> (p, e.Event.peer)) samples)
      ~target
  in
  let mean =
    fit_float_loose
      (List.map
         (fun (p, (e : Event.t)) -> (p, Util.Histogram.mean e.Event.dtime))
         samples)
      ~target
  in
  let dtime = Util.Histogram.create () in
  Util.Histogram.add dtime mean;
  (* per-rank size vectors have length p and cannot be carried over; the
     averaged total in [bytes] subsumes them *)
  { e0 with Event.kind; bytes; ranks; peer; dtime; vec = None }

let rec extrap_nodes ~target (samples : (int * Tnode.t list) list) =
  let lengths = List.map (fun (p, l) -> (p, List.length l)) samples in
  (match lengths with
  | (_, n0) :: rest ->
      List.iter
        (fun (p, n) ->
          if n <> n0 then
            fail
              "trace structure varies with rank count (%d vs %d top-level nodes \
               at p=%d): this code is outside the extrapolable (SPMD-uniform) \
               class"
              n0 n p)
        rest
  | [] -> ());
  match samples with
  | (_, []) :: _ -> []
  | _ ->
      let heads = List.map (fun (p, l) -> (p, List.hd l)) samples in
      let tails = List.map (fun (p, l) -> (p, List.tl l)) samples in
      let node =
        match heads with
        | (_, Tnode.Leaf _) :: _ ->
            let events =
              List.map
                (fun (p, n) ->
                  match n with
                  | Tnode.Leaf e -> (p, e)
                  | Tnode.Loop _ -> fail "node shapes diverge (leaf vs loop) at p=%d" p)
                heads
            in
            Tnode.Leaf (extrap_event ~target events)
        | (_, Tnode.Loop _) :: _ ->
            let loops =
              List.map
                (fun (p, n) ->
                  match n with
                  | Tnode.Loop { count; body; _ } -> (p, count, body)
                  | Tnode.Leaf _ -> fail "node shapes diverge (loop vs leaf) at p=%d" p)
                heads
            in
            let count, _ =
              fit_int ~what:"loop count"
                (List.map (fun (p, c, _) -> (p, c)) loops)
                ~target
            in
            let body =
              extrap_nodes ~target (List.map (fun (p, _, b) -> (p, b)) loops)
            in
            Tnode.loop ~count body
        | [] -> assert false
      in
      node :: extrap_nodes ~target tails

let extrapolate traces ~target =
  let traces =
    List.sort_uniq (fun a b -> compare (Trace.nranks a) (Trace.nranks b)) traces
  in
  if List.length traces < 2 then
    fail "extrapolation needs at least two traces at distinct rank counts";
  let largest = Trace.nranks (List.nth traces (List.length traces - 1)) in
  if target <= largest then
    fail "target rank count %d must exceed the largest traced count %d" target
      largest;
  let samples = List.map (fun t -> (Trace.nranks t, Trace.nodes t)) traces in
  let nodes = extrap_nodes ~target samples in
  (* communicator table: extrapolate each membership like a rank set *)
  let comm_ids =
    List.sort_uniq compare
      (List.concat_map (fun t -> List.map fst (Trace.comms t)) traces)
  in
  let comms =
    List.map
      (fun cid ->
        let membership =
          List.map
            (fun t ->
              match List.assoc_opt cid (Trace.comms t) with
              | Some m -> (Trace.nranks t, m)
              | None -> fail "communicator %d missing from one input trace" cid)
            traces
        in
        (cid, extrap_rank_set ~what:(Printf.sprintf "comm %d" cid) membership ~target))
      comm_ids
  in
  Trace.make ~nranks:target ~comms ~nodes
