(** The unified benchmark-generation pipeline.

    One configuration record and one entry point subsume the historical
    [Benchgen.generate] / [generate_text] / [from_app] /
    [generate_checked] / [generate_checked_file] family: every knob those
    functions exposed lives in {!config}, every input shape in {!source},
    and every product in {!artifact}.  The old functions survive as
    deprecated one-line wrappers over {!run}.

    The pipeline is instrumented: each stage ([trace] → [align] →
    [wildcard] → [codegen]; [replay] and [compare] under {!validate})
    opens a span on the configured {!Obs.Sink.t}, the simulator emits
    per-rank queue-depth samples on its own track, and per-run aggregates
    accumulate in the artifact's {!Obs.Metrics.t} registry.  Stage spans
    are timestamped by a monotonic per-run tick clock and engine events by
    virtual time, so with a fixed seed two runs produce byte-identical
    exports; with {!Obs.Sink.nil} (the default) instrumentation costs one
    flag test per observation point. *)

(** {1 Configuration} *)

(** A deliberate pipeline defect, for differential-fuzzing self-tests
    ({!page-index} lib/check): each constructor breaks one fidelity
    property, so the oracle and shrinker can be validated against a
    known-bad pipeline.  Production code never sets one. *)
type defect =
  | D_skip_wildcard
      (** skip Algorithm 2: [ANY_SOURCE] receives reach codegen unresolved
          and fail with {!gen_error.E_codegen} *)
  | D_scale_bytes of int
      (** multiply every point-to-point payload (byte-volume infidelity) *)
  | D_drop_tail
      (** drop the trace's last communication node (count infidelity) *)

val defect_to_string : defect -> string

(** Parse a CLI spelling: ["skip-wildcard"], ["scale-bytes"] (factor 2),
    ["scale-bytes:<k>"], ["drop-tail"]. *)
val defect_of_string : string -> (defect, string) result

(** How much damage the pipeline tolerates in its input trace:
    - [`Strict] — any corruption or truncation is an error (the default);
    - [`Salvage] — load what survives of a damaged file (with a
      {!warning.W_salvaged} report), but refuse to generate if the
      surviving trace cannot be fully aligned;
    - [`Best_effort] — additionally cut a truncated trace back to its
      last globally consistent collective frontier so a runnable (if
      shorter) benchmark is still generated. *)
type recovery = [ `Strict | `Salvage | `Best_effort ]

val recovery_to_string : recovery -> string

(** Parse a CLI spelling: ["strict"], ["salvage"], ["best-effort"]. *)
val recovery_of_string : string -> (recovery, string) result

type config = {
  name : string option;  (** benchmark name in the generated program *)
  net : Mpisim.Netmodel.t option;
      (** network model for tracing / validation runs (default
          [Netmodel.bluegene_l]) *)
  fault : Mpisim.Fault.t option;  (** seeded fault-injection plan *)
  max_events : int option;  (** simulator watchdog budget *)
  max_virtual_time : float option;  (** simulator watchdog budget, seconds *)
  strategy : Wildcard.strategy option;
      (** wildcard-resolution strategy (default [`Auto]) *)
  compute_floor_usecs : float option;
      (** drop compute statements shorter than this *)
  obs : Obs.Sink.t;  (** observability sink (default {!Obs.Sink.nil}) *)
  defect : defect option;
      (** deliberately broken pipeline for fuzzing self-tests (default
          [None] — the correct pipeline) *)
  recovery : recovery;
      (** damage tolerance for input traces (default [`Strict]) *)
  coll_alg : Mpisim.Coll_alg.t;
      (** collective algorithm selection for every simulator run the
          pipeline performs (tracing, replay, validation) — a concrete
          {!Mpisim.Coll_alg.alg} or [`Auto].  Default [`Monolithic], the
          analytic reference model, which keeps same-seed artifacts
          byte-identical with earlier releases. *)
}

(** All-defaults configuration; build variants with
    [{ default with ... }]. *)
val default : config

(** {1 Inputs and outputs} *)

type source =
  | From_trace of Scalatrace.Trace.t  (** an already-collected trace *)
  | From_file of string  (** path to a serialized trace *)
  | From_app of { nranks : int; app : Mpisim.Mpi.ctx -> unit }
      (** trace this application first (under [config.net] / [fault] /
          watchdogs), then generate *)

type report = {
  program : Conceptual.Ast.program;
  text : string;  (** pretty-printed .ncptl source *)
  aligned : bool;  (** Algorithm 1 ran *)
  resolved : bool;  (** Algorithm 2 ran *)
  input_rsds : int;
  final_rsds : int;  (** RSDs after the rewriting passes *)
  statements : int;  (** statements in the generated program *)
}

type warning =
  | W_aligned of { input_rsds : int; output_rsds : int }
      (** Algorithm 1 merged partial-participant collectives *)
  | W_wildcard_resolved  (** Algorithm 2 pinned wildcard receives *)
  | W_wildcard_fallback of string
      (** the [`Auto] strategy abandoned the untimed traversal *)
  | W_salvaged of Scalatrace.Salvage.report
      (** the trace file was damaged; generation continued from what the
          salvage loader recovered *)
  | W_truncated_frontier of { anchors : int; dropped_events : int }
      (** best-effort mode cut the benchmark at the last globally
          consistent world-collective frontier *)
  | W_missing_participants of { missing : int list; detail : string }
      (** a collective could never complete: [missing] ranks' streams
          ended before arriving; [detail] is the formatted wait-for
          graph *)

type gen_error =
  | E_potential_deadlock of string  (** paper Figure 5: input can hang *)
  | E_align of string  (** collective misuse in the trace *)
  | E_wildcard of string  (** malformed point-to-point structure *)
  | E_trace_format of string  (** unparseable trace file *)
  | E_io of string  (** file-system failure *)
  | E_codegen of string
      (** code generation rejected the trace (e.g. unresolved wildcards
          under {!defect.D_skip_wildcard}) *)
  | E_unrecoverable_trace of string
      (** nothing usable survived the damage, or the surviving trace
          cannot be aligned and [config.recovery] forbids truncation *)

val warning_to_string : warning -> string
val error_to_string : gen_error -> string

(** Stable machine-readable tags for the typed diagnostics — a wire
    contract shared by serve-mode JSON responses and metrics labels
    ([pipeline.warnings{kind}], [serve.outcomes{class}]).  Tags are
    never renamed, only added: clients may triage on them without
    parsing prose.  Warnings: ["aligned"], ["wildcard_resolved"],
    ["wildcard_fallback"], ["salvaged"], ["truncated_frontier"],
    ["missing_participants"].  Errors: ["potential_deadlock"],
    ["align"], ["wildcard"], ["trace_format"], ["io"], ["codegen"],
    ["unrecoverable_trace"]. *)
val warning_tag : warning -> string

val error_tag : gen_error -> string

type artifact = {
  report : report;
  resolved_trace : Scalatrace.Trace.t;
      (** the trace after both rewriting passes — what [report.program]
          was generated from; downstream consumers (C code generation,
          extrapolation, replay) start here instead of re-running the
          passes *)
  trace_outcome : Mpisim.Engine.outcome option;
      (** the tracing run's outcome ([From_app] only) *)
  metrics : Obs.Metrics.t;
      (** per-run aggregates: trace/program shape gauges, simulator and
          per-operation mpiP counters ([From_app]), warning counts;
          {!validate} appends fidelity figures *)
}

(** {1 Running} *)

(** [run config source] executes the pipeline: acquire the trace (simulate
    and trace, load, or take as given), align collectives if needed,
    resolve wildcard receives if needed, generate coNCePTuaL code.
    Recoverable conditions come back as {!warning}s alongside the
    artifact; expected failures as typed {!gen_error}s — no exception
    escapes for any malformed-but-parseable input.

    For [From_file], [config.name] defaults to the path. *)
val run : config -> source -> (artifact * warning list, gen_error) result

(** {1 Validation} *)

type fidelity = {
  f_original : Mpisim.Engine.outcome;
      (** original application under [config]'s conditions *)
  f_generated : Mpisim.Engine.outcome;  (** generated benchmark, ditto *)
  f_error_pct : float;
      (** signed timing error of the generated benchmark vs the
          original *)
  f_mpip_diff : string list;
      (** mpiP profile discrepancies; empty = the generated benchmark
          reproduces the original's per-operation call counts and byte
          volumes exactly (the paper's Section 5.2 check) *)
}

(** [validate config ~nranks app artifact] — run the generated benchmark
    ([replay] span) and the original application ([compare] span) under
    identical conditions, both profiled by {!Mpip}, and report timing and
    semantic fidelity.  Fidelity figures are also appended to
    [artifact.metrics].  [artifact] must have been produced from [app] at
    the same rank count. *)
val validate :
  config -> nranks:int -> (Mpisim.Mpi.ctx -> unit) -> artifact -> fidelity
