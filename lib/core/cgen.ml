open Scalatrace

(* Statements are plain strings here; indentation is applied when the
   final unit is assembled. *)
type frag = { depth : int; line : string }

let fragment depth line = { depth; line }

(* Guard expression for "does my rank belong to this RSD's participants":
   renders the strided intervals of the rank set. *)
let rank_guard ~nranks set =
  if Util.Rank_set.equal set (Util.Rank_set.all nranks) then None
  else
    match Util.Rank_set.to_list set with
    | [ r ] -> Some (Printf.sprintf "rank == %d" r)
    | _ ->
        let clause (first, last, stride) =
          if first = last then Printf.sprintf "rank == %d" first
          else if stride = 1 then
            Printf.sprintf "(rank >= %d && rank <= %d)" first last
          else
            Printf.sprintf "(rank >= %d && rank <= %d && (rank - %d) %% %d == 0)"
              first last first stride
        in
        Some (String.concat " || " (List.map clause (Util.Rank_set.intervals set)))

let peer_expr ~nranks (e : Event.t) =
  match e.peer with
  | Event.P_abs a -> string_of_int a
  | Event.P_rel d ->
      if d <= nranks / 2 then Printf.sprintf "(rank + %d) %% %d" d nranks
      else Printf.sprintf "(rank + %d - %d) %% %d" nranks (nranks - d) nranks
  | Event.P_map m ->
      (* expressed as a lookup table in real output; abbreviated here *)
      Printf.sprintf "peer_table_%d[rank]" (Hashtbl.hash m land 0xffff)
  | Event.P_any -> "MPI_ANY_SOURCE"
  | Event.P_none -> "/*none*/0"

let leaf_lines ~nranks depth (e : Event.t) =
  let peer = peer_expr ~nranks e in
  let tag = max 0 e.tag in
  let gap = Util.Histogram.mean e.dtime in
  let compute =
    if gap *. 1e6 >= 0.05 then
      [ fragment depth (Printf.sprintf "spin_for_usecs(%.3f);" (gap *. 1e6)) ]
    else []
  in
  let body =
    match e.kind with
    | Event.E_send ->
        [ Printf.sprintf
            "MPI_Send(buf, %d, MPI_BYTE, %s, %d, MPI_COMM_WORLD);" e.bytes peer tag ]
    | Event.E_isend ->
        [ Printf.sprintf
            "MPI_Isend(buf, %d, MPI_BYTE, %s, %d, MPI_COMM_WORLD, &req[nreq++]);"
            e.bytes peer tag ]
    | Event.E_recv ->
        [ Printf.sprintf
            "MPI_Recv(buf, %d, MPI_BYTE, %s, %d, MPI_COMM_WORLD, MPI_STATUS_IGNORE);"
            e.bytes peer tag ]
    | Event.E_irecv ->
        [ Printf.sprintf
            "MPI_Irecv(buf, %d, MPI_BYTE, %s, %d, MPI_COMM_WORLD, &req[nreq++]);"
            e.bytes peer tag ]
    | Event.E_wait -> [ "MPI_Wait(&req[--nreq], MPI_STATUS_IGNORE);" ]
    | Event.E_waitall _ ->
        [ "MPI_Waitall(nreq, req, MPI_STATUSES_IGNORE); nreq = 0;" ]
    | Event.E_barrier -> [ "MPI_Barrier(MPI_COMM_WORLD);" ]
    | Event.E_bcast ->
        [ Printf.sprintf "MPI_Bcast(buf, %d, MPI_BYTE, %s, MPI_COMM_WORLD);" e.bytes peer ]
    | Event.E_reduce ->
        [ Printf.sprintf
            "MPI_Reduce(buf, buf2, %d, MPI_BYTE, MPI_BOR, %s, MPI_COMM_WORLD);" e.bytes peer ]
    | Event.E_allreduce ->
        [ Printf.sprintf
            "MPI_Allreduce(buf, buf2, %d, MPI_BYTE, MPI_BOR, MPI_COMM_WORLD);" e.bytes ]
    | Event.E_gather ->
        [ Printf.sprintf
            "MPI_Gather(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, %s, MPI_COMM_WORLD);"
            e.bytes e.bytes peer ]
    | Event.E_gatherv -> [ Printf.sprintf "MPI_Gatherv(/* %d bytes total */);" e.bytes ]
    | Event.E_allgather ->
        [ Printf.sprintf
            "MPI_Allgather(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, MPI_COMM_WORLD);"
            e.bytes e.bytes ]
    | Event.E_allgatherv ->
        [ Printf.sprintf "MPI_Allgatherv(/* %d bytes total */);" e.bytes ]
    | Event.E_scatter ->
        [ Printf.sprintf
            "MPI_Scatter(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, %s, MPI_COMM_WORLD);"
            e.bytes e.bytes peer ]
    | Event.E_scatterv -> [ Printf.sprintf "MPI_Scatterv(/* %d bytes total */);" e.bytes ]
    | Event.E_alltoall ->
        [ Printf.sprintf
            "MPI_Alltoall(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, MPI_COMM_WORLD);"
            e.bytes e.bytes ]
    | Event.E_alltoallv -> [ Printf.sprintf "MPI_Alltoallv(/* %d bytes total */);" e.bytes ]
    | Event.E_reduce_scatter ->
        [ Printf.sprintf "MPI_Reduce_scatter(/* %d bytes total */);" e.bytes ]
    | Event.E_neighbor_alltoall ->
        [ Printf.sprintf
            "MPI_Neighbor_alltoall(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, graph_comm /* degree %d */);"
            e.bytes e.bytes (max 0 e.tag) ]
    | Event.E_neighbor_allgather ->
        [ Printf.sprintf
            "MPI_Neighbor_allgather(buf, %d, MPI_BYTE, buf2, %d, MPI_BYTE, graph_comm /* degree %d */);"
            e.bytes e.bytes (max 0 e.tag) ]
    | Event.E_comm_split -> [ "/* communicator creation elided */" ]
    | Event.E_comm_dup -> [ "/* communicator duplication elided */" ]
    | Event.E_finalize -> [ "/* MPI_Finalize emitted in epilogue */" ]
  in
  match rank_guard ~nranks e.ranks with
  | None -> compute @ List.map (fragment depth) body
  | Some guard ->
      compute
      @ [ fragment depth (Printf.sprintf "if (%s) {" guard) ]
      @ List.map (fragment (depth + 1)) body
      @ [ fragment depth "}" ]

let program ?(name = "trace") trace =
  let nranks = Trace.nranks trace in
  (* The same language-independent walk that drives the coNCePTuaL backend
     drives this one; fragments carry relative depth, and each enclosing
     loop indents its body by one level. *)
  let generator : frag Codegen.generator =
    {
      gen_rsd = (fun e -> leaf_lines ~nranks 0 e);
      gen_loop =
        (fun ~count body ->
          [ fragment 0 (Printf.sprintf "for (int it = 0; it < %d; it++) {" count) ]
          @ List.map (fun f -> { f with depth = f.depth + 1 }) body
          @ [ fragment 0 "}" ]);
    }
  in
  let body =
    List.map (fun f -> { f with depth = f.depth + 1 }) (Codegen.walk trace generator)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "/* C+MPI benchmark generated from %s (%d tasks).\n\
       \ * Produced by the pluggable-generator interface for contrast with\n\
       \ * the coNCePTuaL backend; see DESIGN.md. */\n\
        #include <mpi.h>\n\
        #include <stdlib.h>\n\n\
        static char buf[1 << 24], buf2[1 << 24];\n\
        static MPI_Request req[4096];\n\
        static int nreq;\n\n\
        static void spin_for_usecs(double us) {\n\
       \  double t0 = MPI_Wtime();\n\
       \  while ((MPI_Wtime() - t0) * 1e6 < us) ;\n\
        }\n\n\
        int main(int argc, char **argv) {\n\
       \  int rank, size;\n\
       \  MPI_Init(&argc, &argv);\n\
       \  MPI_Comm_rank(MPI_COMM_WORLD, &rank);\n\
       \  MPI_Comm_size(MPI_COMM_WORLD, &size);  /* expects size == %d */\n"
       name nranks nranks);
  List.iter
    (fun f ->
      Buffer.add_string buf (String.make (2 * f.depth) ' ');
      Buffer.add_string buf f.line;
      Buffer.add_char buf '\n')
    body;
  Buffer.add_string buf "  MPI_Finalize();\n  return 0;\n}\n";
  Buffer.contents buf
