(** ScalaReplay: execute a compressed trace on the simulator.

    Each rank walks its projection of the trace, re-issuing every MPI
    event with computation gaps reconstructed from the per-RSD timing
    summaries.  Used for (a) the Section 5.2 semantic comparison between
    original applications and generated benchmarks, and (b) timed wildcard
    resolution: replaying a trace that still contains [MPI_ANY_SOURCE]
    lets the simulator's arrival-order matching decide the senders, and
    the per-instance matches can be recorded via [on_wildcard]. *)

exception Replay_error of string

type result = {
  outcome : Mpisim.Engine.outcome;
  wildcard_matches : ((int * int) * int list) list;
      (** per (leaf index, rank): matched world senders in instance order;
          leaf indices count {!Scalatrace.Tnode.iter_leaves} order *)
}

(** How computation gaps are reconstructed from the per-RSD timing
    summaries: the histogram mean for every instance (deterministic,
    total-time preserving — the default and what generated benchmarks do),
    or per-instance draws from the histogram's distribution, seeded (adds
    back the variability that summarization flattens). *)
type compute_mode = Mean | Draw of int

(** [run trace] — replay and return the outcome.

    @param net network model (default bluegene_l)
    @param hooks extra interposition clients
    @param compute_scale multiply reconstructed compute gaps (default 1.0)
    @param compute reconstruction mode (default [Mean])
    @param fault seeded fault-injection plan forwarded to the simulator
    @param max_events / max_virtual_time watchdog budgets forwarded to the
      simulator (a wedged replay raises {!Mpisim.Engine.Stalled})
    @param coll_alg collective algorithm selection forwarded to the
      simulator (default [`Monolithic])
    @param obs observability sink forwarded to the simulator *)
val run :
  ?net:Mpisim.Netmodel.t ->
  ?hooks:Mpisim.Hooks.t list ->
  ?fault:Mpisim.Fault.t ->
  ?max_events:int ->
  ?max_virtual_time:float ->
  ?coll_alg:Mpisim.Coll_alg.t ->
  ?obs:Obs.Sink.t ->
  ?compute_scale:float ->
  ?compute:compute_mode ->
  Scalatrace.Trace.t ->
  result
