open Scalatrace

exception Replay_error of string

type result = {
  outcome : Mpisim.Engine.outcome;
  wildcard_matches : ((int * int) * int list) list;
}

(* Outstanding nonblocking requests, oldest first, with the leaf index of
   the wildcard receive they belong to (if any) so the matched source can
   be recorded when the wait completes. *)
type pending = { req : Mpisim.Call.request; wild_leaf : int option }

let uniform_vec ~p ~total =
  let base = total / max 1 p in
  Array.init p (fun i -> if i < p - 1 then base else total - (base * (p - 1)))

type compute_mode = Mean | Draw of int

let run ?(net = Mpisim.Netmodel.bluegene_l) ?(hooks = []) ?fault ?max_events
    ?max_virtual_time ?coll_alg ?obs ?(compute_scale = 1.0) ?(compute = Mean)
    trace =
  let nranks = Trace.nranks trace in
  let comm_table = List.filter (fun (id, _) -> id <> 0) (Trace.comms trace) in
  (* leaf index by physical identity (iter_leaves order) *)
  let leaf_ids =
    let ids = ref [] and n = ref 0 in
    Tnode.iter_leaves
      (fun e ->
        ids := (e, !n) :: !ids;
        incr n)
      (Trace.nodes trace);
    !ids
  in
  let id_of e =
    match List.find_opt (fun (e', _) -> e' == e) leaf_ids with
    | Some (_, i) -> i
    | None -> raise (Replay_error "event not part of the trace")
  in
  let matches : (int * int, int list ref) Hashtbl.t = Hashtbl.create 32 in
  let record ~leaf ~rank ~src =
    let key = (leaf, rank) in
    match Hashtbl.find_opt matches key with
    | Some q -> q := src :: !q
    | None -> Hashtbl.replace matches key (ref [ src ])
  in
  let program (ctx : Mpisim.Mpi.ctx) =
    let r = ctx.rank in
    let gap_rng =
      match compute with
      | Mean -> None
      | Draw seed -> Some (Util.Rng.split (Util.Rng.create ~seed) ~index:r)
    in
    (* recreate the application's communicators deterministically *)
    let comms = Hashtbl.create 8 in
    Hashtbl.replace comms 0 ctx.world;
    List.iter
      (fun (cid, members) ->
        let color = if Util.Rank_set.mem r members then 1 else 0 in
        let c =
          Mpisim.Mpi.comm_split
            ~site:(Util.Callsite.synthetic (Printf.sprintf "replay_comm_%d" cid))
            ctx ~color ~key:r
        in
        if color = 1 then Hashtbl.replace comms cid c)
      comm_table;
    let comm_of cid =
      match Hashtbl.find_opt comms cid with
      | Some c -> c
      | None -> raise (Replay_error (Printf.sprintf "communicator %d not recreated" cid))
    in
    let local comm world =
      match Mpisim.Comm.local_of_world comm world with
      | Some l -> l
      | None -> raise (Replay_error "peer outside communicator during replay")
    in
    let outstanding : pending list ref = ref [] in
    let push p = outstanding := !outstanding @ [ p ] in
    let pop_oldest k =
      let rec go k acc rest =
        if k = 0 then (List.rev acc, rest)
        else match rest with [] -> (List.rev acc, []) | p :: tl -> go (k - 1) (p :: acc) tl
      in
      let taken, rest = go k [] !outstanding in
      outstanding := rest;
      taken
    in
    let record_status (p : pending) (st : Mpisim.Call.status) comm =
      match p.wild_leaf with
      | Some leaf ->
          let src_world = Mpisim.Comm.world_of_local comm st.actual_source in
          record ~leaf ~rank:r ~src:src_world
      | None -> ()
    in
    let exec (e : Event.t) =
      let site = e.site in
      let comm = comm_of e.comm in
      let p = Mpisim.Comm.size comm in
      let gap =
        (match gap_rng with
        | None -> Util.Histogram.mean e.dtime
        | Some rng -> Util.Histogram.draw e.dtime ~u:(Util.Rng.float rng))
        *. compute_scale
      in
      if gap > 0. then Mpisim.Mpi.compute ctx gap;
      let peer_world () =
        match Event.peer_of e ~rank:r ~nranks with
        | Some w -> w
        | None -> raise (Replay_error ("unresolved peer in " ^ Event.kind_name e.kind))
      in
      let src_of_peer () =
        match e.peer with
        | Event.P_any -> Mpisim.Call.Any_source
        | _ -> Mpisim.Call.Rank (local comm (peer_world ()))
      in
      let tag_match = if e.tag < 0 then Mpisim.Call.Any_tag else Mpisim.Call.Tag e.tag in
      let root_local () = local comm (peer_world ()) in
      match e.kind with
      | Event.E_send ->
          Mpisim.Mpi.send ~site ~comm ~tag:(max 0 e.tag) ctx
            ~dst:(local comm (peer_world ())) ~bytes:e.bytes
      | Event.E_isend ->
          let req =
            Mpisim.Mpi.isend ~site ~comm ~tag:(max 0 e.tag) ctx
              ~dst:(local comm (peer_world ())) ~bytes:e.bytes
          in
          push { req; wild_leaf = None }
      | Event.E_recv ->
          let st = Mpisim.Mpi.recv ~site ~comm ~tag:tag_match ctx ~src:(src_of_peer ()) ~bytes:e.bytes in
          if e.peer = Event.P_any then
            record ~leaf:(id_of e) ~rank:r
              ~src:(Mpisim.Comm.world_of_local comm st.actual_source)
      | Event.E_irecv ->
          let req =
            Mpisim.Mpi.irecv ~site ~comm ~tag:tag_match ctx ~src:(src_of_peer ()) ~bytes:e.bytes
          in
          let wild_leaf = if e.peer = Event.P_any then Some (id_of e) else None in
          push { req; wild_leaf }
      | Event.E_wait -> (
          match pop_oldest 1 with
          | [ pnd ] ->
              let st = Mpisim.Mpi.wait ~site ctx pnd.req in
              record_status pnd st comm
          | _ -> ())
      | Event.E_waitall k ->
          let taken = pop_oldest k in
          if taken <> [] then begin
            let sts = Mpisim.Mpi.waitall ~site ctx (List.map (fun p -> p.req) taken) in
            List.iteri (fun i pnd -> record_status pnd sts.(i) comm) taken
          end
      | Event.E_barrier -> Mpisim.Mpi.barrier ~site ~comm ctx
      | Event.E_bcast -> Mpisim.Mpi.bcast ~site ~comm ctx ~root:(root_local ()) ~bytes:e.bytes
      | Event.E_reduce -> Mpisim.Mpi.reduce ~site ~comm ctx ~root:(root_local ()) ~bytes:e.bytes
      | Event.E_allreduce -> Mpisim.Mpi.allreduce ~site ~comm ctx ~bytes:e.bytes
      | Event.E_gather ->
          Mpisim.Mpi.gather ~site ~comm ctx ~root:(root_local ()) ~bytes_per_rank:e.bytes
      | Event.E_gatherv ->
          let v = match e.vec with Some v -> v | None -> uniform_vec ~p ~total:e.bytes in
          Mpisim.Mpi.gatherv ~site ~comm ctx ~root:(root_local ()) ~bytes_from:v
      | Event.E_allgather ->
          Mpisim.Mpi.allgather ~site ~comm ctx ~bytes_per_rank:e.bytes
      | Event.E_allgatherv ->
          let v = match e.vec with Some v -> v | None -> uniform_vec ~p ~total:e.bytes in
          Mpisim.Mpi.allgatherv ~site ~comm ctx ~bytes_from:v
      | Event.E_scatter ->
          Mpisim.Mpi.scatter ~site ~comm ctx ~root:(root_local ()) ~bytes_per_rank:e.bytes
      | Event.E_scatterv ->
          let v = match e.vec with Some v -> v | None -> uniform_vec ~p ~total:e.bytes in
          Mpisim.Mpi.scatterv ~site ~comm ctx ~root:(root_local ()) ~bytes_to:v
      | Event.E_alltoall ->
          Mpisim.Mpi.alltoall ~site ~comm ctx ~bytes_per_pair:e.bytes
      | Event.E_alltoallv ->
          let v = match e.vec with Some v -> v | None -> uniform_vec ~p ~total:e.bytes in
          Mpisim.Mpi.alltoallv ~site ~comm ctx ~bytes_to:v
      | Event.E_reduce_scatter ->
          let v = match e.vec with Some v -> v | None -> uniform_vec ~p ~total:e.bytes in
          Mpisim.Mpi.reduce_scatter ~site ~comm ctx ~bytes_per_rank:v
      | Event.E_neighbor_alltoall | Event.E_neighbor_allgather ->
          (* Reconstruct this rank's neighbor list from the participant
             set and the offset vector; a merged trace that lost the
             stencil (vec = None) falls back to a ring of the traced
             degree, preserving participant set and per-rank volume. *)
          let parts_world =
            match e.parts with
            | Some ps -> ps
            | None -> Mpisim.Comm.members comm
          in
          let q = Array.length parts_world in
          if q > 1 then begin
            let me =
              let rec find i =
                if i >= q then
                  raise (Replay_error "rank outside neighbor participant set")
                else if parts_world.(i) = r then i
                else find (i + 1)
              in
              find 0
            in
            let offsets =
              let sanitized =
                match e.vec with
                | None -> []
                | Some v ->
                    Array.to_list v
                    |> List.map (fun o -> ((o mod q) + q) mod q)
                    |> List.filter (fun o -> o <> 0)
                    |> List.sort_uniq compare
              in
              match sanitized with
              | _ :: _ -> sanitized
              | [] ->
                  let deg = min (max e.tag 1) (q - 1) in
                  List.init deg (fun i -> i + 1)
            in
            let neighbors =
              List.map
                (fun o -> local comm parts_world.((me + o) mod q))
                offsets
              |> List.sort_uniq compare |> Array.of_list
            in
            let parts_local =
              match e.parts with
              | None -> [||]
              | Some ps ->
                  let l = Array.map (local comm) ps in
                  Array.sort compare l;
                  l
            in
            if e.kind = Event.E_neighbor_alltoall then
              Mpisim.Mpi.neighbor_alltoall ~site ~comm ~parts:parts_local ctx
                ~neighbors ~bytes_per_neighbor:e.bytes
            else
              Mpisim.Mpi.neighbor_allgather ~site ~comm ~parts:parts_local ctx
                ~neighbors ~bytes:e.bytes
          end
      | Event.E_comm_split | Event.E_comm_dup ->
          () (* communicators are pre-created *)
      | Event.E_finalize -> Mpisim.Mpi.finalize ~site ctx
    in
    let rec walk nodes =
      List.iter
        (fun n ->
          match n with
          | Tnode.Leaf e -> exec e
          | Tnode.Loop { count; body; _ } ->
              for _ = 1 to count do
                walk body
              done)
        nodes
    in
    walk (Trace.project trace ~rank:r)
  in
  let outcome =
    Mpisim.Mpi.run ~hooks ~net ?fault ?max_events ?max_virtual_time ?coll_alg
      ?obs ~nranks program
  in
  let wildcard_matches =
    Hashtbl.fold (fun k q acc -> ((k, List.rev !q) : (int * int) * int list) :: acc) matches []
    |> List.sort compare
  in
  { outcome; wildcard_matches }
