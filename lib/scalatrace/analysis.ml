type matrix = { nranks : int; messages : int array array; bytes : int array array }

(* Walk leaves once; expand per (loop multiplicity, participating rank). *)
let fold_instances trace f init =
  let rec go mult nodes acc =
    List.fold_left
      (fun acc node ->
        match node with
        | Tnode.Leaf e -> f acc ~mult e
        | Tnode.Loop { count; body; _ } -> go (mult * count) body acc)
      acc nodes
  in
  go 1 (Trace.nodes trace) init

let comm_matrix trace =
  let n = Trace.nranks trace in
  let m = { nranks = n; messages = Array.make_matrix n n 0; bytes = Array.make_matrix n n 0 } in
  let record ~mult e =
    Util.Rank_set.iter
      (fun rank ->
        match Event.peer_of e ~rank ~nranks:n with
        | Some peer when peer >= 0 && peer < n ->
            let src, dst =
              match e.Event.kind with
              | Event.E_send | Event.E_isend -> (rank, peer)
              | _ -> (peer, rank)
            in
            (* receives are counted only when sends cannot be (wildcards
               resolved to maps cover both sides; avoid double counting by
               attributing at the send side only *)
            if e.Event.kind = Event.E_send || e.Event.kind = Event.E_isend then begin
              m.messages.(src).(dst) <- m.messages.(src).(dst) + mult;
              m.bytes.(src).(dst) <- m.bytes.(src).(dst) + (mult * e.Event.bytes)
            end
        | _ -> ())
      e.Event.ranks
  in
  fold_instances trace
    (fun () ~mult e ->
      if Event.is_p2p e.Event.kind then record ~mult e)
    ();
  m

let op_totals trace =
  let tbl = Hashtbl.create 16 in
  fold_instances trace
    (fun () ~mult e ->
      let name = Event.kind_name e.Event.kind in
      let participants = Util.Rank_set.cardinal e.Event.ranks in
      let calls, bytes =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl name)
      in
      Hashtbl.replace tbl name
        ( calls + (mult * participants),
          bytes + (mult * participants * e.Event.bytes) ))
    ();
  Hashtbl.fold (fun name (c, b) acc -> (name, c, b) :: acc) tbl []
  |> List.sort compare

let total_compute trace =
  let sum = ref 0. in
  Tnode.iter_leaves
    (fun e -> sum := !sum +. Util.Histogram.sum e.Event.dtime)
    (Trace.nodes trace);
  !sum

let short_bytes b =
  if b >= 10_000_000 then Printf.sprintf "%dM" (b / 1_000_000)
  else if b >= 10_000 then Printf.sprintf "%dK" (b / 1_000)
  else string_of_int b

let matrix_to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "bytes sent (rows: sender, columns: receiver)\n";
  let header =
    "     " :: List.init m.nranks (fun j -> Printf.sprintf "%6d" j)
  in
  Buffer.add_string buf (String.concat "" header);
  Buffer.add_char buf '\n';
  for i = 0 to m.nranks - 1 do
    Buffer.add_string buf (Printf.sprintf "%5d" i);
    for j = 0 to m.nranks - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%6s" (if m.bytes.(i).(j) = 0 then "." else short_bytes m.bytes.(i).(j)))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
