type peer =
  | P_none
  | P_abs of int
  | P_rel of int
  | P_any
  | P_map of (int * int) list

type kind =
  | E_send
  | E_isend
  | E_recv
  | E_irecv
  | E_wait
  | E_waitall of int
  | E_barrier
  | E_bcast
  | E_reduce
  | E_allreduce
  | E_gather
  | E_gatherv
  | E_allgather
  | E_allgatherv
  | E_scatter
  | E_scatterv
  | E_alltoall
  | E_alltoallv
  | E_reduce_scatter
  | E_neighbor_alltoall
  | E_neighbor_allgather
  | E_comm_split
  | E_comm_dup
  | E_finalize

type t = {
  site : Util.Callsite.t;
  kind : kind;
  mutable peer : peer;
  bytes : int;
  vec : int array option;
  tag : int;
  comm : int;
  parts : int array option;
  dtime : Util.Histogram.t;
  mutable ranks : Util.Rank_set.t;
  mutable hcache : int; (* 0 = not yet computed; see [hash] *)
}

let is_collective = function
  | E_barrier | E_bcast | E_reduce | E_allreduce | E_gather | E_gatherv
  | E_allgather | E_allgatherv | E_scatter | E_scatterv | E_alltoall
  | E_alltoallv | E_reduce_scatter | E_neighbor_alltoall | E_neighbor_allgather
  | E_comm_split | E_comm_dup | E_finalize ->
      true
  | E_send | E_isend | E_recv | E_irecv | E_wait | E_waitall _ -> false

let is_p2p = function
  | E_send | E_isend | E_recv | E_irecv -> true
  | _ -> false

let kind_name = function
  | E_send -> "MPI_Send"
  | E_isend -> "MPI_Isend"
  | E_recv -> "MPI_Recv"
  | E_irecv -> "MPI_Irecv"
  | E_wait -> "MPI_Wait"
  | E_waitall _ -> "MPI_Waitall"
  | E_barrier -> "MPI_Barrier"
  | E_bcast -> "MPI_Bcast"
  | E_reduce -> "MPI_Reduce"
  | E_allreduce -> "MPI_Allreduce"
  | E_gather -> "MPI_Gather"
  | E_gatherv -> "MPI_Gatherv"
  | E_allgather -> "MPI_Allgather"
  | E_allgatherv -> "MPI_Allgatherv"
  | E_scatter -> "MPI_Scatter"
  | E_scatterv -> "MPI_Scatterv"
  | E_alltoall -> "MPI_Alltoall"
  | E_alltoallv -> "MPI_Alltoallv"
  | E_reduce_scatter -> "MPI_Reduce_scatter"
  | E_neighbor_alltoall -> "MPI_Neighbor_alltoall"
  | E_neighbor_allgather -> "MPI_Neighbor_allgather"
  | E_comm_split -> "MPI_Comm_split"
  | E_comm_dup -> "MPI_Comm_dup"
  | E_finalize -> "MPI_Finalize"

let sum = Array.fold_left ( + ) 0

let make ~world_rank ~time_gap ~site ~kind ~peer ~bytes ~vec ~tag ~comm =
  let dtime = Util.Histogram.create () in
  Util.Histogram.add dtime (Float.max 0. time_gap);
  { site; kind; peer; bytes; vec; tag; comm; parts = None;
    dtime; ranks = Util.Rank_set.singleton world_rank; hcache = 0 }

let of_call ~world_rank ~time_gap (call : Mpisim.Call.t) =
  let comm = Mpisim.Comm.id call.comm in
  let site = call.site in
  let world_of r = Mpisim.Comm.world_of_local call.comm r in
  let mk = make ~world_rank ~time_gap ~site ~comm in
  (* Neighbor offsets are positions in the declared participant set:
     offset o from participant i reaches participant (i + o) mod q.  A
     rank-relative stencil therefore produces the same [vec] on every
     rank, which is what lets RSD merging keep it exact. *)
  let neighbor_fields ~parts ~neighbors =
    let q, pos_of =
      if Array.length parts = 0 then
        (Mpisim.Comm.size call.comm, fun l -> l)
      else
        ( Array.length parts,
          fun l ->
            let rec find i = if parts.(i) = l then i else find (i + 1) in
            find 0 )
    in
    let me =
      match Mpisim.Comm.local_of_world call.comm world_rank with
      | Some l -> pos_of l
      | None -> 0
    in
    let offsets =
      Array.map (fun nb -> (pos_of nb - me + q) mod q) neighbors
    in
    Array.sort compare offsets;
    let parts =
      if Array.length parts = 0 then None
      else Some (Array.map world_of parts)
    in
    (offsets, parts)
  in
  let p2p_tag t = t in
  match call.op with
  | Compute _ | Wtime -> None
  | Send { dst; bytes; tag } ->
      Some (mk ~kind:E_send ~peer:(P_abs (world_of dst)) ~bytes ~vec:None ~tag:(p2p_tag tag))
  | Isend { dst; bytes; tag } ->
      Some (mk ~kind:E_isend ~peer:(P_abs (world_of dst)) ~bytes ~vec:None ~tag:(p2p_tag tag))
  | Recv { src; bytes; tag } ->
      let peer = match src with Mpisim.Call.Any_source -> P_any | Rank r -> P_abs (world_of r) in
      let tag = match tag with Mpisim.Call.Any_tag -> -1 | Tag t -> t in
      Some (mk ~kind:E_recv ~peer ~bytes ~vec:None ~tag)
  | Irecv { src; bytes; tag } ->
      let peer = match src with Mpisim.Call.Any_source -> P_any | Rank r -> P_abs (world_of r) in
      let tag = match tag with Mpisim.Call.Any_tag -> -1 | Tag t -> t in
      Some (mk ~kind:E_irecv ~peer ~bytes ~vec:None ~tag)
  | Wait _ -> Some (mk ~kind:E_wait ~peer:P_none ~bytes:0 ~vec:None ~tag:0)
  | Waitall reqs ->
      Some (mk ~kind:(E_waitall (List.length reqs)) ~peer:P_none ~bytes:0 ~vec:None ~tag:0)
  | Barrier -> Some (mk ~kind:E_barrier ~peer:P_none ~bytes:0 ~vec:None ~tag:0)
  | Bcast { root; bytes } ->
      Some (mk ~kind:E_bcast ~peer:(P_abs (world_of root)) ~bytes ~vec:None ~tag:0)
  | Reduce { root; bytes } ->
      Some (mk ~kind:E_reduce ~peer:(P_abs (world_of root)) ~bytes ~vec:None ~tag:0)
  | Allreduce { bytes } -> Some (mk ~kind:E_allreduce ~peer:P_none ~bytes ~vec:None ~tag:0)
  | Gather { root; bytes_per_rank } ->
      Some (mk ~kind:E_gather ~peer:(P_abs (world_of root)) ~bytes:bytes_per_rank ~vec:None ~tag:0)
  | Gatherv { root; bytes_from } ->
      Some
        (mk ~kind:E_gatherv ~peer:(P_abs (world_of root)) ~bytes:(sum bytes_from)
           ~vec:(Some (Array.copy bytes_from)) ~tag:0)
  | Allgather { bytes_per_rank } ->
      Some (mk ~kind:E_allgather ~peer:P_none ~bytes:bytes_per_rank ~vec:None ~tag:0)
  | Allgatherv { bytes_from } ->
      Some
        (mk ~kind:E_allgatherv ~peer:P_none ~bytes:(sum bytes_from)
           ~vec:(Some (Array.copy bytes_from)) ~tag:0)
  | Scatter { root; bytes_per_rank } ->
      Some (mk ~kind:E_scatter ~peer:(P_abs (world_of root)) ~bytes:bytes_per_rank ~vec:None ~tag:0)
  | Scatterv { root; bytes_to } ->
      Some
        (mk ~kind:E_scatterv ~peer:(P_abs (world_of root)) ~bytes:(sum bytes_to)
           ~vec:(Some (Array.copy bytes_to)) ~tag:0)
  | Alltoall { bytes_per_pair } ->
      Some (mk ~kind:E_alltoall ~peer:P_none ~bytes:bytes_per_pair ~vec:None ~tag:0)
  | Alltoallv { bytes_to } ->
      Some
        (mk ~kind:E_alltoallv ~peer:P_none ~bytes:(sum bytes_to)
           ~vec:(Some (Array.copy bytes_to)) ~tag:0)
  | Reduce_scatter { bytes_per_rank } ->
      Some
        (mk ~kind:E_reduce_scatter ~peer:P_none ~bytes:(sum bytes_per_rank)
           ~vec:(Some (Array.copy bytes_per_rank)) ~tag:0)
  | Neighbor_alltoall { parts; neighbors; bytes_per_neighbor } ->
      let offsets, parts = neighbor_fields ~parts ~neighbors in
      Some
        { (mk ~kind:E_neighbor_alltoall ~peer:P_none ~bytes:bytes_per_neighbor
             ~vec:(Some offsets) ~tag:(Array.length neighbors))
          with parts }
  | Neighbor_allgather { parts; neighbors; bytes } ->
      let offsets, parts = neighbor_fields ~parts ~neighbors in
      Some
        { (mk ~kind:E_neighbor_allgather ~peer:P_none ~bytes
             ~vec:(Some offsets) ~tag:(Array.length neighbors))
          with parts }
  | Comm_split { color; key } ->
      (* color/key preserved as a per-rank map entry so splits replay *)
      Some (mk ~kind:E_comm_split ~peer:(P_map [ (world_rank, color) ]) ~bytes:key ~vec:None ~tag:0)
  | Comm_dup -> Some (mk ~kind:E_comm_dup ~peer:P_none ~bytes:0 ~vec:None ~tag:0)
  | Finalize -> Some (mk ~kind:E_finalize ~peer:P_none ~bytes:0 ~vec:None ~tag:0)

let same_vec a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x = y
  | _ -> false

let same_parts = same_vec

(* Wildcardness must survive merging, so P_any only merges with P_any. *)
let peer_class = function
  | P_any -> `Any
  | P_none -> `None
  | P_abs _ | P_rel _ | P_map _ -> `Concrete

(* Structural hash over exactly the fields [mergeable] compares.  Those
   fields are immutable (peer_class is stable under [absorb]/[generalize]:
   both preserve `Concrete), so the hash is computed once and cached.
   [mergeable a b] implies [hash a = hash b]. *)
let hash e =
  if e.hcache <> 0 then e.hcache
  else begin
    let pc = match peer_class e.peer with `Any -> 1 | `None -> 2 | `Concrete -> 3 in
    let h =
      Hashtbl.hash
        (Util.Callsite.hash e.site, e.kind, e.bytes, e.tag, e.comm, e.vec,
         e.parts, pc)
    in
    let h = if h = 0 then 1 else h in
    e.hcache <- h;
    h
  end

let mergeable a b =
  hash a = hash b
  && Util.Callsite.equal a.site b.site
  && a.kind = b.kind && a.bytes = b.bytes && a.tag = b.tag && a.comm = b.comm
  && same_vec a.vec b.vec
  && same_parts a.parts b.parts
  && peer_class a.peer = peer_class b.peer

(* Expand a generalized peer back to explicit (rank, peer) observations. *)
let observations e ~nranks =
  match e.peer with
  | P_none | P_any -> []
  | P_abs a -> Util.Rank_set.fold (fun r acc -> (r, a) :: acc) e.ranks []
  | P_rel d ->
      Util.Rank_set.fold (fun r acc -> (r, (r + d + nranks) mod nranks) :: acc) e.ranks []
  | P_map m -> m

let absorb ~nranks ~into e =
  Util.Histogram.merge_into into.dtime e.dtime;
  (* Peer combination: an identical generalized form covers the union of
     both rank sets unchanged; anything else falls back to an explicit
     per-rank map (re-simplified later by [generalize]).  The map is
     accumulated unsorted: absorbed events cover disjoint rank sets, so
     observations are unique by rank, and re-sorting the growing map on
     every absorb would make merging a p-rank trace O(p^2 log p) per RSD.
     [generalize] normalizes once at the end. *)
  (match (into.peer, e.peer) with
  | P_none, P_none | P_any, P_any -> ()
  | pa, pb when pa = pb -> ()
  | _ ->
      let merged = observations e ~nranks @ observations into ~nranks in
      into.peer <- (if merged = [] then into.peer else P_map merged));
  into.ranks <- Util.Rank_set.union into.ranks e.ranks

let generalize ~nranks e =
  match e.peer with
  | P_none | P_any | P_abs _ | P_rel _ -> ()
  | P_map [] -> ()
  | P_map m0 -> (
      (* normalize the accumulated map (see [absorb]) so the stored form
         is deterministic even when no generalization applies *)
      let m = List.sort_uniq compare m0 in
      e.peer <- P_map m;
      match m with
      | [] -> ()
      | (r0, p0) :: rest ->
          if e.kind = E_comm_split then ()
          else if List.for_all (fun (_, p) -> p = p0) rest then
            e.peer <- P_abs p0
          else begin
            let d0 = (p0 - r0 + nranks) mod nranks in
            if List.for_all (fun (r, p) -> (p - r + nranks) mod nranks = d0) m
            then e.peer <- P_rel d0
          end)

let peer_of e ~rank ~nranks =
  match e.peer with
  | P_none | P_any -> None
  | P_abs a -> Some a
  | P_rel d -> Some ((rank + d + nranks) mod nranks)
  | P_map m -> List.assoc_opt rank m

let copy e =
  {
    e with
    dtime = Util.Histogram.copy e.dtime;
    vec = Option.map Array.copy e.vec;
    parts = Option.map Array.copy e.parts;
  }

let pp_peer ppf = function
  | P_none -> ()
  | P_abs a -> Format.fprintf ppf " peer=%d" a
  | P_rel d -> Format.fprintf ppf " peer=self%+d" d
  | P_any -> Format.fprintf ppf " peer=ANY"
  | P_map m -> Format.fprintf ppf " peer=map(%d)" (List.length m)

let pp ppf e =
  Format.fprintf ppf "%s%a bytes=%d tag=%d comm=%d ranks=%a dt=%a" (kind_name e.kind)
    pp_peer e.peer e.bytes e.tag e.comm Util.Rank_set.pp e.ranks Util.Histogram.pp
    e.dtime;
  match e.parts with
  | None -> ()
  | Some ps -> Format.fprintf ppf " parts=|%d|" (Array.length ps)
